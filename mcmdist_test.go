package mcmdist

import (
	"bytes"
	"strings"
	"testing"
)

func mustRMAT(t *testing.T, class RMATClass, scale, ef int, seed int64) *Graph {
	t.Helper()
	g, err := RMAT(class, scale, ef, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, 3, [][2]int{{0, 0}, {1, 1}, {2, 2}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 3 || g.Cols() != 3 || g.Edges() != 3 {
		t.Fatalf("graph = %v", g)
	}
	if !g.HasEdge(1, 1) || g.HasEdge(0, 1) || g.HasEdge(-1, 0) || g.HasEdge(0, 9) {
		t.Fatal("HasEdge wrong")
	}
	if _, err := FromEdges(2, 2, [][2]int{{2, 0}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := FromEdges(-1, 2, nil); err == nil {
		t.Fatal("negative dims accepted")
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g, _ := FromEdges(4, 5, [][2]int{{0, 0}, {3, 4}, {1, 2}})
	var buf bytes.Buffer
	if err := g.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := FromMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Edges() != 3 || !back.HasEdge(3, 4) {
		t.Fatal("round trip lost edges")
	}
	if _, err := FromMatrixMarket(strings.NewReader("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := FromMatrixMarketFile("/nonexistent/x.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRMATClasses(t *testing.T) {
	for _, c := range []RMATClass{G500, SSCA, ER} {
		g := mustRMAT(t, c, 6, 0, 1) // edgeFactor 0 = paper default
		n := 1 << 6
		if g.Rows() != n || g.Cols() != n {
			t.Fatalf("%v: dims %dx%d", c, g.Rows(), g.Cols())
		}
	}
	if _, err := RMAT(RMATClass(99), 6, 8, 1); err == nil {
		t.Fatal("unknown class accepted")
	}
	if G500.String() != "G500" || SSCA.String() != "SSCA" || ER.String() != "ER" {
		t.Fatal("class names wrong")
	}
	if RMATClass(7).String() != "RMATClass(7)" {
		t.Fatal("unknown class name wrong")
	}
}

func TestTableIIAccess(t *testing.T) {
	names := TableIINames()
	if len(names) != 13 {
		t.Fatalf("TableII has %d entries", len(names))
	}
	g, err := TableII("road_usa", 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() == 0 {
		t.Fatal("empty road_usa stand-in")
	}
	if _, err := TableII("not-a-matrix", 8); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := TableII("road_usa", 1); err == nil {
		t.Fatal("tiny scale accepted")
	}
}

func TestMaximumMatchingEndToEnd(t *testing.T) {
	g := mustRMAT(t, G500, 8, 4, 7)
	m, st, err := MaximumMatching(g, Options{Procs: 4, Init: DynamicMindegreeInit, Permute: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(m); err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMaximum(m); err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != st.Cardinality {
		t.Fatalf("cardinality mismatch %d vs %d", m.Cardinality(), st.Cardinality)
	}
	oracle, err := MaximumMatchingSerial(g, HopcroftKarp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != oracle.Cardinality() {
		t.Fatalf("distributed %d != oracle %d", m.Cardinality(), oracle.Cardinality())
	}
	if st.Procs != 4 || st.Threads != 1 {
		t.Fatalf("stats config echo wrong: %+v", st)
	}
	if len(st.PerRank) != 4 {
		t.Fatalf("PerRank %d", len(st.PerRank))
	}
	if st.ModeledSeconds(EdisonXC30) <= 0 {
		t.Fatal("modeled time not positive")
	}
	if len(st.ModeledBreakdown(EdisonXC30)) == 0 {
		t.Fatal("empty modeled breakdown")
	}
}

func TestMaximumMatchingRejectsNonSquare(t *testing.T) {
	g := mustRMAT(t, ER, 5, 4, 1)
	if _, _, err := MaximumMatching(g, Options{Procs: 7}); err == nil {
		t.Fatal("non-square Procs accepted")
	}
}

func TestAllOptionCombinations(t *testing.T) {
	g := mustRMAT(t, ER, 6, 3, 9)
	oracle, _ := MaximumMatchingSerial(g, HopcroftKarp, nil)
	want := oracle.Cardinality()
	for _, init := range []Initializer{NoInit, GreedyInit, KarpSipserInit, DynamicMindegreeInit} {
		for _, sr := range []Semiring{MinParent, RandRoot, RandParent} {
			for _, aug := range []Augmentation{AutoAugment, LevelParallel, PathParallel} {
				m, _, err := MaximumMatching(g, Options{
					Procs: 4, Init: init, Semiring: sr, Augment: aug,
				})
				if err != nil {
					t.Fatalf("init=%d sr=%d aug=%d: %v", init, sr, aug, err)
				}
				if m.Cardinality() != want {
					t.Fatalf("init=%d sr=%d aug=%d: %d want %d", init, sr, aug, m.Cardinality(), want)
				}
			}
		}
	}
}

func TestSerialAlgorithmsAgree(t *testing.T) {
	g := mustRMAT(t, SSCA, 8, 4, 3)
	want := -1
	for _, alg := range []SerialAlgorithm{HopcroftKarp, PothenFan, MSBFS, MSBFSGraft, PushRelabelAlg} {
		m, err := MaximumMatchingSerial(g, alg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.VerifyMaximum(m); err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		if want == -1 {
			want = m.Cardinality()
		} else if m.Cardinality() != want {
			t.Fatalf("alg %d: %d want %d", alg, m.Cardinality(), want)
		}
	}
	if _, err := MaximumMatchingSerial(g, SerialAlgorithm(99), nil); err == nil {
		t.Fatal("unknown serial algorithm accepted")
	}
}

func TestSerialWithWarmStart(t *testing.T) {
	g := mustRMAT(t, G500, 8, 4, 4)
	init, err := MaximalMatching(g, DynamicMindegreeMaximal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(init); err != nil {
		t.Fatal(err)
	}
	m, err := MaximumMatchingSerial(g, MSBFSGraft, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMaximum(m); err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() < init.Cardinality() {
		t.Fatal("warm start lost cardinality")
	}
}

func TestMaximalAlgorithms(t *testing.T) {
	g := mustRMAT(t, ER, 7, 3, 6)
	for _, alg := range []MaximalAlgorithm{GreedyMaximal, KarpSipserMaximal, DynamicMindegreeMaximal} {
		m, err := MaximalMatching(g, alg, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Verify(m); err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		if m.Cardinality() == 0 {
			t.Fatalf("alg %d: empty maximal matching", alg)
		}
	}
	if _, err := MaximalMatching(g, MaximalAlgorithm(9), 0); err == nil {
		t.Fatal("unknown maximal algorithm accepted")
	}
}

func TestGraphString(t *testing.T) {
	g, _ := FromEdges(2, 3, [][2]int{{0, 0}})
	if got := g.String(); got != "bipartite graph 2 x 3, 1 edges" {
		t.Fatalf("String = %q", got)
	}
}

func TestThreadsAffectModeledTimeOnly(t *testing.T) {
	g := mustRMAT(t, G500, 8, 4, 8)
	_, st1, err := MaximumMatching(g, Options{Procs: 4, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, st12, err := MaximumMatching(g, Options{Procs: 4, Threads: 12})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cardinality != st12.Cardinality {
		t.Fatal("threads changed the answer")
	}
	if st12.ModeledSeconds(EdisonXC30) >= st1.ModeledSeconds(EdisonXC30) {
		t.Fatal("12 threads not faster in the model")
	}
}

func TestDirectionOptimizedPublicAPI(t *testing.T) {
	g := mustRMAT(t, ER, 9, 6, 2)
	base, _, err := MaximumMatching(g, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	opt, st, err := MaximumMatching(g, Options{Procs: 4, DirectionOptimized: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cardinality() != opt.Cardinality() {
		t.Fatalf("direction optimization changed |M|: %d vs %d",
			base.Cardinality(), opt.Cardinality())
	}
	if err := g.VerifyMaximum(opt); err != nil {
		t.Fatal(err)
	}
	if st.PushIterations+st.PullIterations != st.Iterations {
		t.Fatalf("direction accounting: %d + %d != %d",
			st.PushIterations, st.PullIterations, st.Iterations)
	}
	if st.PullIterations == 0 {
		t.Fatal("full-frontier first phase should have used pull")
	}
}

func TestDulmageMendelsohnPublicAPI(t *testing.T) {
	g := mustRMAT(t, G500, 9, 4, 17)
	m, _, err := MaximumMatching(g, Options{Procs: 4, Init: DynamicMindegreeInit})
	if err != nil {
		t.Fatal(err)
	}
	btf, err := g.DulmageMendelsohn(m)
	if err != nil {
		t.Fatal(err)
	}
	if btf.StructuralRank() != m.Cardinality() {
		t.Fatalf("structural rank %d != |M| %d", btf.StructuralRank(), m.Cardinality())
	}
	if len(btf.SquareRows) != len(btf.SquareCols) {
		t.Fatal("square block not square")
	}
	if len(btf.RowOrder()) != g.Rows() || len(btf.ColOrder()) != g.Cols() {
		t.Fatal("orders have wrong length")
	}
	// Orders must be permutations.
	seen := make([]bool, g.Rows())
	for _, i := range btf.RowOrder() {
		if seen[i] {
			t.Fatalf("row %d twice in order", i)
		}
		seen[i] = true
	}

	// Rejects non-maximum matchings.
	sub, err := MaximalMatching(g, GreedyMaximal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Cardinality() < m.Cardinality() {
		if _, err := g.DulmageMendelsohn(sub); err == nil {
			t.Fatal("non-maximum matching accepted")
		}
	}
}

func TestTraceOutput(t *testing.T) {
	g := mustRMAT(t, ER, 7, 4, 3)
	var buf bytes.Buffer
	_, st, err := MaximumMatching(g, Options{Procs: 4, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != st.Iterations {
		t.Fatalf("%d trace lines for %d iterations", lines, st.Iterations)
	}
	if !strings.Contains(buf.String(), "phase 1 iter 1") {
		t.Fatalf("trace malformed: %q", buf.String())
	}
}

func TestTreeGraftingPublicAPI(t *testing.T) {
	g := mustRMAT(t, G500, 9, 4, 27)
	plain, _, err := MaximumMatching(g, Options{Procs: 4, Init: GreedyInit})
	if err != nil {
		t.Fatal(err)
	}
	graft, _, err := MaximumMatching(g, Options{Procs: 4, Init: GreedyInit, TreeGrafting: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cardinality() != graft.Cardinality() {
		t.Fatalf("grafting changed |M|: %d vs %d", plain.Cardinality(), graft.Cardinality())
	}
	if err := g.VerifyMaximum(graft); err != nil {
		t.Fatal(err)
	}
}

func TestHallViolatorPublicAPI(t *testing.T) {
	// Power-law graphs are heavily deficient.
	g, err := TableII("wb-edu", 8)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := MaximumMatching(g, Options{Procs: 4, Init: DynamicMindegreeInit})
	if err != nil {
		t.Fatal(err)
	}
	def := g.Cols() - m.Cardinality()
	s := g.HallViolator(m)
	if def > 0 && len(s) == 0 {
		t.Fatalf("deficiency %d but no Hall violator", def)
	}
	if def == 0 && s != nil {
		t.Fatal("violator on saturated graph")
	}
}

func TestFineBlocksPublicAPI(t *testing.T) {
	g, err := TableII("Freescale1", 8)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := MaximumMatching(g, Options{Procs: 4, Init: DynamicMindegreeInit})
	if err != nil {
		t.Fatal(err)
	}
	btf, err := g.DulmageMendelsohn(m)
	if err != nil {
		t.Fatal(err)
	}
	blocks := g.FineBlocks(m, btf)
	total := 0
	for _, b := range blocks {
		if len(b.Rows) != len(b.Cols) {
			t.Fatal("non-square diagonal block")
		}
		total += len(b.Cols)
	}
	if total != len(btf.SquareCols) {
		t.Fatalf("fine blocks cover %d of %d", total, len(btf.SquareCols))
	}
}

func TestMaximumTransversal(t *testing.T) {
	g, err := TableII("nlpkkt200", 8)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := MaximumMatching(g, Options{Procs: 4, Init: DynamicMindegreeInit})
	if err != nil {
		t.Fatal(err)
	}
	perm := MaximumTransversal(g, m)
	// perm is a permutation.
	seen := make([]bool, g.Rows())
	for _, p := range perm {
		if p < 0 || p >= g.Rows() || seen[p] {
			t.Fatalf("not a permutation: %d", p)
		}
		seen[p] = true
	}
	// Diagonal nonzeros equal the matching cardinality.
	diag := 0
	for i := 0; i < g.Rows(); i++ {
		if perm[i] < g.Cols() && g.HasEdge(i, perm[i]) {
			diag++
		}
	}
	if diag != m.Cardinality() {
		t.Fatalf("diagonal nonzeros %d != |M| %d", diag, m.Cardinality())
	}
}

// TestThreadsUnderRace exercises the intra-rank worker pool with several
// threads; run with -race to catch sharing bugs in the parallel local loops.
func TestThreadsUnderRace(t *testing.T) {
	g := mustRMAT(t, ER, 9, 6, 5)
	m, _, err := MaximumMatching(g, Options{Procs: 4, Threads: 4, Init: DynamicMindegreeInit})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyMaximum(m); err != nil {
		t.Fatal(err)
	}
}

// TestSoakAllVariantsAgree is the wide differential sweep, skipped in
// -short mode: every distributed variant against the oracle on the full
// stand-in suite at a moderate scale.
func TestSoakAllVariantsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, name := range TableIINames() {
		g, err := TableII(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := MaximumMatchingSerial(g, HopcroftKarp, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.Cardinality()
		for _, opt := range []Options{
			{Procs: 9, Init: DynamicMindegreeInit, Permute: true},
			{Procs: 16, Init: GreedyInit, TreeGrafting: true},
			{Procs: 4, Init: KarpSipserInit, DirectionOptimized: true},
			{Procs: 16, Init: NoInit, Semiring: RandRoot, Augment: LevelParallel},
		} {
			m, _, err := MaximumMatching(g, opt)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opt, err)
			}
			if m.Cardinality() != want {
				t.Fatalf("%s %+v: %d, oracle %d", name, opt, m.Cardinality(), want)
			}
		}
	}
}

func TestRectangularGridPublicAPI(t *testing.T) {
	g := mustRMAT(t, ER, 8, 5, 31)
	oracle, _ := MaximumMatchingSerial(g, HopcroftKarp, nil)
	m, st, err := MaximumMatching(g, Options{GridRows: 2, GridCols: 3, Init: GreedyInit})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != oracle.Cardinality() {
		t.Fatalf("2x3 grid: %d, oracle %d", m.Cardinality(), oracle.Cardinality())
	}
	if st.Procs != 6 {
		t.Fatalf("procs %d, want 6", st.Procs)
	}
	if _, _, err := MaximumMatching(g, Options{GridCols: 3}); err == nil {
		t.Fatal("half-specified grid accepted")
	}
}

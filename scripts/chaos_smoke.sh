#!/usr/bin/env bash
# Chaos smoke test: SIGKILL a worker in the middle of a supervised 4-process
# TCP solve and require the recovered matching to be byte-identical to the
# in-process oracle.
#
#   make chaos-smoke              # or: scripts/chaos_smoke.sh
#   CHAOS_SCALE=10 scripts/chaos_smoke.sh
#
# The victim (rank 2) runs with a deterministic slow-link injector on its
# frames to the coordinator, so generation 0 reliably outlasts the kill —
# the SIGKILL always lands mid-solve, never after a fast clean finish. The
# coordinator's read loop sees the dead socket, aborts the generation, and
# re-runs the rendezvous; ranks 1 and 3 rejoin and a freshly started clean
# replacement takes over rank 2. docs/FAULTS.md has the full protocol.
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${CHAOS_SCALE:-9}"
procs=4
addr="127.0.0.1:${CHAOS_PORT:-$((9200 + RANDOM % 200))}"
kill_after="${CHAOS_KILL_AFTER:-1}"
work="$(mktemp -d 2>/dev/null || mktemp -d .chaos-smoke.XXXXXX)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/" ./cmd/mcm ./cmd/mcmrank ./cmd/tracelint

graph=(-rmat g500 -scale "$scale" -seed 1 -procs "$procs")

"$work/mcm" "${graph[@]}" -out "$work/oracle.txt" >/dev/null

mkdir -p "$work/flight"
"$work/mcm" "${graph[@]}" -transport tcp -addr "$addr" \
  -recover -checkpoint-every 1 -flight-dir "$work/flight" \
  -out "$work/rank0.txt" >"$work/coord.log" 2>&1 &
coord=$!
"$work/mcmrank" -addr "$addr" -rank 1 -quiet &
w1=$!
"$work/mcmrank" -addr "$addr" -rank 2 -quiet -slow-to 0 -slow-delay 40ms &
victim=$!
"$work/mcmrank" -addr "$addr" -rank 3 -quiet -out "$work/rank3.txt" &
w3=$!

sleep "$kill_after"
if ! kill -0 "$victim" 2>/dev/null; then
  echo "chaos-smoke: victim exited before the kill — raise -slow-delay or lower CHAOS_KILL_AFTER" >&2
  cat "$work/coord.log" >&2
  exit 1
fi
kill -9 "$victim"
wait "$victim" 2>/dev/null || true

# The replacement dials the same rendezvous address; mcmrank keeps retrying
# until the restarted generation starts listening.
"$work/mcmrank" -addr "$addr" -rank 2 -quiet &
w2=$!

if ! wait "$coord"; then
  echo "chaos-smoke: coordinator failed:" >&2
  cat "$work/coord.log" >&2
  exit 1
fi
wait "$w1" "$w2" "$w3"

if ! grep -q "restarting" "$work/coord.log"; then
  echo "chaos-smoke: coordinator never restarted — the kill missed the solve:" >&2
  cat "$work/coord.log" >&2
  exit 1
fi

cmp "$work/oracle.txt" "$work/rank0.txt"
cmp "$work/oracle.txt" "$work/rank3.txt"

# The killed generation must have left a flight-recorder bundle: each
# surviving process persisted its span-ring tail, meters and abort cause
# before rejoining. Every dump has to decode (tracelint doubles as the
# decoder), and at least one cause has to name the dead rank.
dumps=("$work"/flight/flight-g*.dump)
if [ ! -e "${dumps[0]}" ]; then
  echo "chaos-smoke: no flight dumps in $work/flight after a killed generation" >&2
  cat "$work/coord.log" >&2
  exit 1
fi
: >"$work/flight.txt"
for d in "${dumps[@]}"; do
  "$work/tracelint" "$d" >>"$work/flight.txt"
done
if ! grep -q "rank 2" "$work/flight.txt"; then
  echo "chaos-smoke: no flight dump cause names the killed rank 2:" >&2
  cat "$work/flight.txt" >&2
  exit 1
fi
echo "chaos-smoke: solve survived a SIGKILLed worker; recovered matching is byte-identical to the oracle, ${#dumps[@]} flight dump(s) decoded (scale $scale, $addr)"

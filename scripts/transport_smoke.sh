#!/usr/bin/env bash
# Transport smoke test: run one solve as four OS processes over loopback
# TCP (mcm coordinating, three mcmrank workers) and require the matching
# each process writes to be byte-identical to the in-process oracle's.
#
#   make transport-smoke          # or: scripts/transport_smoke.sh
#   SMOKE_SCALE=11 scripts/transport_smoke.sh
#
# The CI test-transport job runs this script; docs/TRANSPORT.md explains
# why bit-identical output across backends is the expected invariant, not
# a lucky coincidence.
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${SMOKE_SCALE:-9}"
procs=4
addr="127.0.0.1:${SMOKE_PORT:-$((9400 + RANDOM % 512))}"
# Fall back to a repo-local scratch dir when /tmp is unavailable.
work="$(mktemp -d 2>/dev/null || mktemp -d .transport-smoke.XXXXXX)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/" ./cmd/mcm ./cmd/mcmrank ./cmd/tracelint

graph=(-rmat g500 -scale "$scale" -seed 1 -procs "$procs")

"$work/mcm" "${graph[@]}" -out "$work/oracle.txt" >/dev/null

"$work/mcm" "${graph[@]}" -transport tcp -addr "$addr" \
  -out "$work/rank0.txt" >"$work/coord.log" 2>&1 &
coord=$!
"$work/mcmrank" -addr "$addr" -rank 1 -quiet &
"$work/mcmrank" -addr "$addr" -rank 2 -quiet &
"$work/mcmrank" -addr "$addr" -rank 3 -quiet -out "$work/rank3.txt"
if ! wait "$coord"; then
  echo "transport-smoke: coordinator failed:" >&2
  cat "$work/coord.log" >&2
  exit 1
fi
wait

cmp "$work/oracle.txt" "$work/rank0.txt"
cmp "$work/oracle.txt" "$work/rank3.txt"
echo "transport-smoke: 4-process tcp matching is byte-identical to the in-process oracle (scale $scale, $addr)"

# Second pass: same solve with delta-varint wire compression and the
# adaptive direction heuristic on. The spec ships both knobs to the workers
# through the rendezvous config blob; the output must still be byte-identical
# to the uncompressed oracle (compression is a transport encoding, direction
# is bit-identical under MinParent — docs/KERNELS.md).
addr2="127.0.0.1:${SMOKE_PORT2:-$((9912 + RANDOM % 88))}"
"$work/mcm" "${graph[@]}" -transport tcp -addr "$addr2" \
  -compress -direction auto \
  -out "$work/rank0c.txt" >"$work/coordc.log" 2>&1 &
coord=$!
"$work/mcmrank" -addr "$addr2" -rank 1 -quiet &
"$work/mcmrank" -addr "$addr2" -rank 2 -quiet &
"$work/mcmrank" -addr "$addr2" -rank 3 -quiet -out "$work/rank3c.txt"
if ! wait "$coord"; then
  echo "transport-smoke: compressed coordinator failed:" >&2
  cat "$work/coordc.log" >&2
  exit 1
fi
wait

cmp "$work/oracle.txt" "$work/rank0c.txt"
cmp "$work/oracle.txt" "$work/rank3c.txt"
echo "transport-smoke: compressed+auto 4-process matching is byte-identical to the oracle (scale $scale, $addr2)"

# Third pass: the auction engine. The engine name ships to the workers in the
# job spec (distjob v2), every process resolves it identically, and the
# 4-process result must be byte-identical to the auction engine's own
# in-process oracle (the auction visits different matchings than BFS, so it
# gets its own oracle file rather than comparing against oracle.txt).
addr3="127.0.0.1:${SMOKE_PORT3:-$((9700 + RANDOM % 200))}"
"$work/mcm" "${graph[@]}" -engine auction -out "$work/oracle_auction.txt" >/dev/null

"$work/mcm" "${graph[@]}" -engine auction -transport tcp -addr "$addr3" \
  -out "$work/rank0a.txt" >"$work/coorda.log" 2>&1 &
coord=$!
"$work/mcmrank" -addr "$addr3" -rank 1 -quiet &
"$work/mcmrank" -addr "$addr3" -rank 2 -quiet &
"$work/mcmrank" -addr "$addr3" -rank 3 -quiet -out "$work/rank3a.txt"
if ! wait "$coord"; then
  echo "transport-smoke: auction coordinator failed:" >&2
  cat "$work/coorda.log" >&2
  exit 1
fi
wait

cmp "$work/oracle_auction.txt" "$work/rank0a.txt"
cmp "$work/oracle_auction.txt" "$work/rank3a.txt"
echo "transport-smoke: auction-engine 4-process matching is byte-identical to its in-process oracle (scale $scale, $addr3)"

# Fourth pass: whole-world observability. The coordinator requests spans,
# time-series and metrics; the workers enable the same planes from the job
# spec, ship their observations back at solve end, and the coordinator
# writes ONE merged trace covering all four ranks. tracelint then enforces
# the world-level invariants: a compute/comm track pair per rank, per-track
# timestamp monotonicity after clock-offset alignment, and paired flow
# chains. The matching must still be byte-identical — tracing is passive.
addr4="127.0.0.1:${SMOKE_PORT4:-$((9530 + RANDOM % 170))}"
"$work/mcm" "${graph[@]}" -transport tcp -addr "$addr4" \
  -trace-out "$work/world.json" -timeseries "$work/world.csv" -metrics-out "$work/world.prom" \
  -out "$work/rank0t.txt" >"$work/coordt.log" 2>&1 &
coord=$!
"$work/mcmrank" -addr "$addr4" -rank 1 -quiet &
"$work/mcmrank" -addr "$addr4" -rank 2 -quiet &
"$work/mcmrank" -addr "$addr4" -rank 3 -quiet -out "$work/rank3t.txt"
if ! wait "$coord"; then
  echo "transport-smoke: traced coordinator failed:" >&2
  cat "$work/coordt.log" >&2
  exit 1
fi
wait

cmp "$work/oracle.txt" "$work/rank0t.txt"
cmp "$work/oracle.txt" "$work/rank3t.txt"
"$work/tracelint" "$work/world.json" "$work/world.csv"
# The merged time-series carries rows from every rank, and the aggregated
# registry carries the per-link heartbeat RTT histograms the workers shipped.
for r in 0 1 2 3; do
  grep -q "^$r," "$work/world.csv" || { echo "transport-smoke: no series rows for rank $r" >&2; exit 1; }
done
grep -q "mcm_heartbeat_rtt_seconds_link_1_0" "$work/world.prom" || {
  echo "transport-smoke: worker RTT histograms missing from the aggregated registry" >&2; exit 1; }
echo "transport-smoke: traced 4-process solve produced one tracelint-clean world trace (scale $scale, $addr4)"

package mcmdist

import (
	"io"
	"net/http"
	"time"

	"mcmdist/internal/obs"
)

// Observe configures the observability plane of a distributed run: per-rank
// span tracing (Chrome trace_event / Perfetto export), a per-iteration
// time-series, and a live Prometheus-style metrics registry. Attach one via
// Options.Observe; the resulting data is returned on Stats.Obs. All layers
// default to off, and a nil Observe keeps the solver hot path at its
// untraced cost.
type Observe struct {
	// Spans records begin/end spans of every solve, phase, BFS iteration,
	// Table I primitive, collective, and RMA operation into a fixed-capacity
	// per-rank ring buffer (oldest spans are overwritten once full).
	Spans bool
	// SpanCap overrides the per-rank ring capacity; 0 means the default
	// (65536 spans per rank).
	SpanCap int
	// TimeSeries records one sample per rank per BFS iteration: frontier
	// size, paths found, bytes moved, exposed vs hidden communication time,
	// and worker-pool utilization.
	TimeSeries bool
	// Metrics maintains a live metrics registry (counters, gauges,
	// histograms) during the run, exposable in Prometheus text format via
	// ObsReport.WriteMetrics.
	Metrics bool
	// OnLive, when non-nil, receives the run's ObsReport the moment the
	// observability plane is built — before the solve launches, while the
	// report is still empty. It lets a caller serve live data during the
	// run (ObsReport.MetricsHandler over HTTP is the intended use); the
	// same report keeps accumulating and is returned on Stats.Obs.
	OnLive func(*ObsReport)
}

// collector builds the internal collector for an effective rank count, or
// nil when o is nil.
func (o *Observe) collector(procs int) *obs.Collector {
	if o == nil {
		return nil
	}
	if procs < 1 {
		procs = 1
	}
	var reg *obs.Registry
	if o.Metrics {
		reg = obs.NewRegistry()
	}
	return obs.NewCollector(procs, obs.Options{
		Spans:      o.Spans,
		SpanCap:    o.SpanCap,
		TimeSeries: o.TimeSeries,
		Metrics:    reg,
	})
}

// live invokes the OnLive hook, if any, with the freshly built collector's
// report — the moment the observability plane exists, before the solve
// launches.
func (o *Observe) live(col *obs.Collector) {
	if o == nil || o.OnLive == nil || col == nil {
		return
	}
	o.OnLive(newObsReport(col))
}

// IterSample is one BFS iteration's observation. Per-rank samples carry the
// observing rank; merged samples (Rank = -1) take the rank maximum of the
// wall and communication times (critical path) and the rank sum of the
// volume counters.
type IterSample struct {
	// Rank is the observing rank, or -1 for a cross-rank merged sample.
	Rank int
	// Phase is the 1-based MS-BFS phase and Iteration the 1-based global
	// iteration number (monotone across phases).
	Phase, Iteration int
	// Frontier is the column-frontier size entering the iteration, NewPaths
	// the augmenting paths discovered by it, and Matched the matching
	// cardinality the run had found when it ended (initializer included).
	Frontier, NewPaths, Matched int
	// Pull reports whether the bottom-up SpMV direction was used.
	Pull bool
	// Wall is the iteration's wall-clock time; Comm the time its
	// communication requests were in flight, of which Exposed was actually
	// spent blocked (the rest hid behind computation).
	Wall, Comm, Exposed time.Duration
	// Msgs and Words count the messages and 8-byte words the iteration moved.
	Msgs, Words int64
	// PoolBusy is the worker-pool busy time inside the iteration and
	// PoolSpan the pool's capacity over the same interval (busy/span is
	// utilization).
	PoolBusy, PoolSpan time.Duration
}

func sampleFromInternal(s obs.IterSample) IterSample {
	return IterSample{
		Rank:      s.Rank,
		Phase:     s.Phase,
		Iteration: s.Iteration,
		Frontier:  s.Frontier,
		NewPaths:  s.NewPaths,
		Matched:   s.Matched,
		Pull:      s.Pull,
		Wall:      time.Duration(s.WallNs),
		Comm:      time.Duration(s.CommNs),
		Exposed:   time.Duration(s.ExposedNs),
		Msgs:      s.Msgs,
		Words:     s.Words,
		PoolBusy:  time.Duration(s.PoolBusyNs),
		PoolSpan:  time.Duration(s.PoolSpanNs),
	}
}

// ObsReport is the observability data of one run, returned on Stats.Obs
// when Options.Observe was set.
//
// In-process runs observe every rank directly. Over a multi-process
// transport each process observes only its own ranks during the solve, but
// at solve end the workers ship their observations to the coordinator,
// which aligns the timestamps with its heartbeat-estimated clock offsets
// and merges everything: rank 0's report then covers the whole world —
// one trace with a track pair per world rank, a rank-merged time-series,
// and world-aggregated metrics — while a worker's report keeps covering
// only its local ranks. See docs/OBSERVABILITY.md.
type ObsReport struct {
	col *obs.Collector
}

func newObsReport(col *obs.Collector) *ObsReport {
	if col == nil {
		return nil
	}
	return &ObsReport{col: col}
}

// WriteTrace writes the recorded spans as Chrome trace_event JSON — one
// compute track and one communication track per rank, flow arrows tying
// each collective's participants together — loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Requires Observe.Spans.
func (r *ObsReport) WriteTrace(w io.Writer) error {
	return r.col.WriteTrace(w)
}

// WriteTimeSeriesCSV writes the per-iteration time-series as CSV: every
// rank's samples first, then the cross-rank merged samples (rank -1).
// Requires Observe.TimeSeries.
func (r *ObsReport) WriteTimeSeriesCSV(w io.Writer) error {
	return r.col.WriteSeriesCSV(w)
}

// Samples returns the merged per-iteration time-series (one sample per BFS
// iteration, Rank = -1). Requires Observe.TimeSeries.
func (r *ObsReport) Samples() []IterSample {
	return samplesFromInternal(r.col.Series())
}

// PerRankSamples returns every rank's per-iteration samples, ordered by
// iteration then rank. Requires Observe.TimeSeries.
func (r *ObsReport) PerRankSamples() []IterSample {
	return samplesFromInternal(r.col.PerRankSeries())
}

func samplesFromInternal(in []obs.IterSample) []IterSample {
	out := make([]IterSample, len(in))
	for i, s := range in {
		out[i] = sampleFromInternal(s)
	}
	return out
}

// DroppedSpans reports how many spans the per-rank rings overwrote; nonzero
// means the trace shows only the most recent Observe.SpanCap spans per rank.
func (r *ObsReport) DroppedSpans() uint64 {
	return r.col.Dropped()
}

// WriteMetrics writes the run's metrics registry in Prometheus text
// exposition format. Requires Observe.Metrics.
func (r *ObsReport) WriteMetrics(w io.Writer) error {
	reg := r.col.Registry()
	if reg == nil {
		return nil
	}
	return reg.WritePrometheus(w)
}

// MetricsHandler returns an http.Handler serving the run's live metrics
// registry in Prometheus text format, or nil without Observe.Metrics.
// Combined with Observe.OnLive it gives a scrape endpoint that is live for
// the duration of the run; on a multi-process coordinator the registry
// absorbs every worker's metrics at solve end, so the endpoint ends up
// reporting world-aggregated values.
func (r *ObsReport) MetricsHandler() http.Handler {
	reg := r.col.Registry()
	if reg == nil {
		return nil
	}
	return reg.Handler()
}

// Command bench regenerates the tables and figures of the paper's
// evaluation section (Azad & Buluç, IPDPS 2016, Section VI) on the
// simulated distributed-memory runtime.
//
// Usage:
//
//	bench -exp table2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|augment|all [-scale N] [-procs P]
//
// Scaling figures report times from the alpha-beta cost model (see
// internal/costmodel); EXPERIMENTS.md compares their shapes against the
// paper's. Larger -scale values sharpen the shapes but take longer.
package main

import (
	"flag"
	"fmt"
	"os"

	"mcmdist/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table2, fig3..fig9, augment, direction, gridshape, graft, quality, balance, ssms, dynamics, all")
	scale := flag.Int("scale", 12, "matrix scale (~2^scale vertices per side)")
	procs := flag.Int("procs", 16, "simulated ranks for single-p experiments (perfect square)")
	flag.Parse()

	w := os.Stdout
	runOne := func(name string) bool {
		switch name {
		case "table2":
			experiments.Table2(w, *scale)
		case "fig3":
			experiments.Fig3(w, min(*scale, 9), *procs)
		case "fig4":
			experiments.Fig4(w, *scale, nil, nil)
		case "fig5":
			experiments.Fig5(w, *scale, nil)
		case "fig6":
			experiments.Fig6(w, []int{*scale - 2, *scale}, nil)
		case "fig7":
			experiments.Fig7(w, *scale, nil)
		case "fig8":
			experiments.Fig8(w, min(*scale, 9), *procs, nil)
		case "fig9":
			experiments.Fig9(w, nil, 2048, 8)
		case "augment":
			experiments.AugmentCrossover(w, 4, 16, nil)
		case "direction":
			experiments.DirectionAblation(w, *scale, *procs, nil)
		case "gridshape":
			experiments.GridShapeAblation(w, *scale, *procs)
		case "graft":
			experiments.GraftAblation(w, *scale, *procs, nil)
		case "quality":
			experiments.InitQuality(w, *scale, nil)
		case "balance":
			experiments.BalanceAblation(w, *scale, *procs, nil)
		case "ssms":
			experiments.SingleVsMultiSource(w, min(*scale, 10), *procs, nil)
		case "treebalance":
			experiments.TreeBalance(w, *scale, *procs, nil)
		case "dynamics":
			experiments.FrontierDynamics(w, "road_usa", *scale, *procs)
		default:
			return false
		}
		fmt.Fprintln(w)
		return true
	}

	if *exp == "all" {
		for _, name := range []string{"table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "augment", "direction", "gridshape", "graft", "quality", "balance", "ssms", "treebalance"} {
			fmt.Fprintf(w, "=== %s ===\n", name)
			runOne(name)
		}
		return
	}
	if !runOne(*exp) {
		fmt.Fprintf(os.Stderr, "bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

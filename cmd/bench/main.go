// Command bench regenerates the tables and figures of the paper's
// evaluation section (Azad & Buluç, IPDPS 2016, Section VI) on the
// simulated distributed-memory runtime.
//
// Usage:
//
//	bench -exp table2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|augment|enginesweep|recovery|profile|all
//	      [-scale N] [-procs P] [-threads T] [-no-overlap] [-transport inproc|tcp]
//	      [-direction push|pull|auto|default] [-compress off|on]
//	      [-checkpoint-every K] [-fault none|crash|straggler|rma]
//	      [-fault-rank R] [-fault-at N] [-fault-delay D] [-watchdog D]
//	      [-json out.json] [-trace out.json] [-timeseries out.csv]
//	      [-metrics-addr :9090] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Scaling figures report times from the alpha-beta cost model (see
// internal/costmodel) next to measured host wall clock where the figure
// calls for it (fig7); EXPERIMENTS.md compares their shapes against the
// paper's. Larger -scale values sharpen the shapes but take longer.
//
// -json writes a machine-readable envelope: every experiment's row structs
// keyed by name, plus a measured solve profile (per-op wall seconds, exact
// communication meters, worker-pool utilization, heap traffic, and the
// per-iteration time-series) at the requested scale/procs/threads. When
// checkpointing or fault injection is requested (-checkpoint-every, -fault,
// or -exp recovery) the envelope also carries a recovery section:
// checkpoint wall time, bytes serialized, and retry count next to the clean
// solve's wall clock. -cpuprofile and -memprofile write pprof profiles
// covering the experiment runs. -transport selects the backend the measured
// profile solve runs on (inproc, or tcp for a loopback-socket world) and is
// recorded in the envelope; results are bit-identical across backends, only
// the wall clocks change.
//
// The observability plane (docs/OBSERVABILITY.md) instruments the measured
// profile solve: -trace writes its span timeline as Chrome trace_event JSON
// (load in ui.perfetto.dev), -timeseries writes the per-iteration series as
// CSV, and -metrics-addr serves live Prometheus metrics at /metrics while
// the bench runs. With -transport tcp each loopback endpoint records into
// its own collector and the rank-0 endpoint collects the world at solve end
// — the real multi-process shipping protocol — so the trace, the series
// (including the envelope's time_series), and the registry are whole-world
// merges exactly as a distributed deployment would produce. -exp profile
// runs only that measured solve — the quickest way to produce a trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"time"

	"mcmdist/internal/core"
	"mcmdist/internal/experiments"
	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table2, fig3..fig9, augment, direction, dirsweep, enginesweep, gridshape, graft, quality, balance, ssms, dynamics, recovery, profile, all")
	scale := flag.Int("scale", 12, "matrix scale (~2^scale vertices per side)")
	procs := flag.Int("procs", 16, "simulated ranks for single-p experiments (perfect square)")
	threads := flag.Int("threads", 0, "threads per rank for hybrid configurations (0 = paper default of 12)")
	noOverlap := flag.Bool("no-overlap", false, "disable the split-phase compute/communication overlap (results are bit-identical; wall clocks and the exposed-comm ledger change)")
	matrix := flag.String("matrix", "road_usa", "matrix for the -json measured solve profile: a Table II stand-in name or g500/er/ssca (RMAT)")
	transport := flag.String("transport", "inproc", "transport backend for the measured solve profile: inproc, or tcp (loopback sockets, one endpoint per rank)")
	direction := flag.String("direction", "default", "SpMV kernel policy for the measured solve profile: push, pull, auto, or default (follow the config's direction-optimized setting)")
	engine := flag.String("engine", "", "matching engine for the measured solve profile: bfs, bfs-ss, bfs-graft, auction, auto (cost-model selection), or empty for the default (bfs); graft is a deprecated alias for bfs-graft")
	compress := flag.String("compress", "off", "delta-varint wire compression for the measured solve profile: off or on (results are bit-identical; wire volume and the WordsEnc meters change)")
	jsonPath := flag.String("json", "", "write machine-readable results (experiment rows + measured solve profile) to this path")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint stride (phases) for the recovery benchmark; 0 means every phase")
	fault := flag.String("fault", "none", "fault injected into the recovery benchmark: none, crash, straggler, rma")
	faultRank := flag.Int("fault-rank", 1, "rank the fault is injected on")
	faultAt := flag.Int("fault-at", 8, "1-based collective (crash) or RMA op (rma) index that triggers the fault")
	faultDelay := flag.Duration("fault-delay", 100*time.Microsecond, "straggler sleep per triggering collective")
	watchdog := flag.Duration("watchdog", 0, "progress-watchdog timeout for the recovery benchmark; 0 leaves it off")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment runs to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile taken after the experiment runs to this path")
	tracePath := flag.String("trace", "", "write the measured profile solve's span timeline as Chrome trace_event JSON (Perfetto-loadable) to this path")
	seriesPath := flag.String("timeseries", "", "write the measured profile solve's per-iteration time-series as CSV to this path")
	metricsAddr := flag.String("metrics-addr", "", "serve live Prometheus metrics at this address's /metrics while the bench runs (e.g. :9090)")
	flag.Parse()

	if *threads > 0 {
		experiments.DefaultThreads = *threads
	}
	experiments.DisableOverlap = *noOverlap
	if !slices.Contains(mpi.Transports(), *transport) {
		fmt.Fprintf(os.Stderr, "bench: unknown -transport %q (have %v)\n", *transport, mpi.Transports())
		os.Exit(1)
	}
	experiments.TransportBackend = *transport
	dir, err := core.ParseDirection(*direction)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	experiments.DefaultDirection = dir
	eng, err := core.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	experiments.Engine = eng
	switch *compress {
	case "off":
	case "on":
		experiments.Compress = true
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown -compress %q (want off or on)\n", *compress)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	w := os.Stdout
	results := make(map[string]any)
	recOpts := experiments.RecoveryOptions{
		FaultKind:       *fault,
		FaultRank:       *faultRank,
		FaultAt:         *faultAt,
		FaultDelay:      *faultDelay,
		CheckpointEvery: *checkpointEvery,
		Watchdog:        *watchdog,
	}
	var recProfile *experiments.RecoveryProfile
	runOne := func(name string) bool {
		var rows any
		switch name {
		case "table2":
			rows = experiments.Table2(w, *scale)
		case "fig3":
			rows = experiments.Fig3(w, min(*scale, 9), *procs)
		case "fig4":
			rows = experiments.Fig4(w, *scale, nil, nil)
		case "fig5":
			rows = experiments.Fig5(w, *scale, nil)
		case "fig6":
			rows = experiments.Fig6(w, []int{*scale - 2, *scale}, nil)
		case "fig7":
			rows = experiments.Fig7(w, *scale, nil)
		case "fig8":
			rows = experiments.Fig8(w, min(*scale, 9), *procs, nil)
		case "fig9":
			rows = experiments.Fig9(w, nil, 2048, 8)
		case "augment":
			rows = experiments.AugmentCrossover(w, 4, 16, nil)
		case "direction":
			rows = experiments.DirectionAblation(w, *scale, *procs, nil)
		case "dirsweep":
			rows = experiments.DirectionSweep(w, []int{min(*scale, 14), min(*scale+1, 15), min(*scale+2, 16)}, *procs)
		case "enginesweep":
			rows = experiments.EngineSweep(w, *matrix, *scale, *procs)
		case "gridshape":
			rows = experiments.GridShapeAblation(w, *scale, *procs)
		case "graft":
			rows = experiments.GraftAblation(w, *scale, *procs, nil)
		case "quality":
			rows = experiments.InitQuality(w, *scale, nil)
		case "balance":
			rows = experiments.BalanceAblation(w, *scale, *procs, nil)
		case "ssms":
			rows = experiments.SingleVsMultiSource(w, min(*scale, 10), *procs, nil)
		case "treebalance":
			rows = experiments.TreeBalance(w, *scale, *procs, nil)
		case "dynamics":
			experiments.FrontierDynamics(w, "road_usa", *scale, *procs)
		case "recovery":
			p := experiments.RecoveryBench(w, *matrix, *scale, *procs, recOpts)
			recProfile = &p
			rows = p
		case "profile":
			// Only the measured (observed) solve profile, handled below —
			// the quickest path to a trace or time-series artifact.
		default:
			return false
		}
		if rows != nil {
			results[name] = rows
		}
		fmt.Fprintln(w)
		return true
	}

	ok := true
	if *exp == "all" {
		for _, name := range []string{"table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "augment", "direction", "gridshape", "graft", "quality", "balance", "ssms", "treebalance"} {
			fmt.Fprintf(w, "=== %s ===\n", name)
			runOne(name)
		}
	} else if !runOne(*exp) {
		fmt.Fprintf(os.Stderr, "bench: unknown experiment %q\n", *exp)
		ok = false
	}

	// The measured profile solve runs whenever a consumer wants its output:
	// the -json envelope, a trace or time-series artifact, a live metrics
	// endpoint, or -exp profile itself.
	needProfile := ok && (*jsonPath != "" || *tracePath != "" || *seriesPath != "" ||
		*metricsAddr != "" || *exp == "profile")
	if needProfile {
		t := experiments.DefaultThreads
		var reg *obs.Registry
		if *metricsAddr != "" {
			reg = obs.NewRegistry()
			mux := http.NewServeMux()
			mux.Handle("/metrics", reg.Handler())
			go func() {
				if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
					fmt.Fprintf(os.Stderr, "bench: metrics server: %v\n", err)
				}
			}()
			fmt.Fprintf(w, "serving metrics at http://%s/metrics\n", *metricsAddr)
		}
		col := obs.NewCollector(*procs, obs.Options{
			Spans:      *tracePath != "",
			TimeSeries: true,
			Metrics:    reg,
		})
		prof := experiments.ProfileObserved(*matrix, *scale, *procs, t, col)
		if reg != nil {
			reg.Counter("mcm_solves_total", "Solves completed by this bench process.").Inc()
		}
		if *tracePath != "" {
			if err := writeArtifact(*tracePath, col.WriteTrace); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
			prof.TraceFile = *tracePath
			fmt.Fprintf(w, "wrote %s (load in ui.perfetto.dev)\n", *tracePath)
		}
		if *seriesPath != "" {
			if err := writeArtifact(*seriesPath, col.WriteSeriesCSV); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
			prof.SeriesFile = *seriesPath
			fmt.Fprintf(w, "wrote %s\n", *seriesPath)
		}
		fmt.Fprintf(w, "profile: %s scale=%d p=%d t=%d |M|=%d iters=%d wall=%.3fs\n",
			*matrix, *scale, prof.Procs, prof.Threads, prof.Cardinality,
			prof.Iterations, prof.WallSeconds)

		if *jsonPath != "" {
			if recProfile == nil && (*fault != "none" || *checkpointEvery > 0) {
				// Recovery instrumentation was requested but no recovery
				// experiment ran: measure it now (quietly) for the envelope.
				p := experiments.RecoveryBench(io.Discard, *matrix, *scale, *procs, recOpts)
				recProfile = &p
			}
			envelope := struct {
				Exp       string                       `json:"exp"`
				Scale     int                          `json:"scale"`
				Procs     int                          `json:"procs"`
				Threads   int                          `json:"threads"`
				Transport string                       `json:"transport"`
				Direction string                       `json:"direction"`
				Engine    string                       `json:"engine"`
				Compress  bool                         `json:"compress"`
				HostCPUs  int                          `json:"host_cpus"`
				Results   map[string]any               `json:"results"`
				Profile   experiments.SolveProfile     `json:"profile"`
				Recovery  *experiments.RecoveryProfile `json:"recovery,omitempty"`
			}{
				Exp:       *exp,
				Scale:     *scale,
				Procs:     *procs,
				Threads:   t,
				Transport: *transport,
				Direction: dir.String(),
				Engine:    prof.Engine,
				Compress:  experiments.Compress,
				HostCPUs:  runtime.NumCPU(),
				Results:   results,
				Profile:   prof,
				Recovery:  recProfile,
			}
			buf, err := json.MarshalIndent(envelope, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
			buf = append(buf, '\n')
			if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(w, "wrote %s\n", *jsonPath)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	if !ok {
		os.Exit(2)
	}
}

// writeArtifact creates path and streams write into it.
func writeArtifact(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

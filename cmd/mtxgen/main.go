// Command mtxgen writes synthetic test matrices to Matrix Market files: the
// R-MAT classes of the paper's Section V-B (G500, SSCA, ER) and the 13
// Table II structural stand-ins.
//
// Examples:
//
//	mtxgen -rmat g500 -scale 16 -out g500-16.mtx
//	mtxgen -matrix nlpkkt200 -scale 14 -out nlpkkt200-mini.mtx
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"mcmdist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mtxgen: ")

	rmatClass := flag.String("rmat", "", "R-MAT class: g500, ssca or er")
	matrix := flag.String("matrix", "", "Table II stand-in name (see -list)")
	list := flag.Bool("list", false, "list stand-in names and exit")
	scale := flag.Int("scale", 14, "2^scale vertices per side")
	edgeFactor := flag.Int("ef", 0, "R-MAT edge factor (0 = paper default)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output .mtx path (required unless -suite)")
	suite := flag.String("suite", "", "write the whole Table II stand-in suite into this directory")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(mcmdist.TableIINames(), "\n"))
		return
	}
	if *suite != "" {
		if err := os.MkdirAll(*suite, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, name := range mcmdist.TableIINames() {
			g, err := mcmdist.TableII(name, *scale)
			if err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*suite, name+".mtx")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := g.WriteMatrixMarket(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s: %v\n", path, g)
		}
		return
	}
	if *out == "" {
		log.Fatal("missing -out")
	}

	var (
		g   *mcmdist.Graph
		err error
	)
	switch {
	case *rmatClass != "" && *matrix != "":
		log.Fatal("specify only one of -rmat, -matrix")
	case *matrix != "":
		g, err = mcmdist.TableII(*matrix, *scale)
	case *rmatClass != "":
		var class mcmdist.RMATClass
		switch strings.ToLower(*rmatClass) {
		case "g500":
			class = mcmdist.G500
		case "ssca":
			class = mcmdist.SSCA
		case "er":
			class = mcmdist.ER
		default:
			log.Fatalf("unknown -rmat class %q", *rmatClass)
		}
		g, err = mcmdist.RMAT(class, *scale, *edgeFactor, *seed)
	default:
		log.Fatal("specify one of -rmat, -matrix")
	}
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.WriteMatrixMarket(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %v\n", *out, g)
}

// Command tracelint validates the observability artifacts cmd/bench and
// cmd/mcm emit: Chrome trace_event JSON files, per-iteration time-series
// CSVs, and crash flight-recorder dumps.
//
// For traces it checks the JSON object form with a traceEvents array,
// per-event required keys by phase type, pairing AND file ordering of flow
// start/step/finish chains, per-track timestamp monotonicity of the
// complete events (the property the clock-offset alignment of merged
// multi-process traces must preserve), and — when otherData carries the
// world size — exactly one compute/comm track pair per world rank. A trace
// that passes loads in Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// For CSVs (dispatched on the .csv extension) it checks the exact header
// obs.WriteSeriesCSV writes, row arity, numeric fields, and the direction
// column's push/pull vocabulary.
//
// For flight dumps (dispatched on the .dump extension) it decodes the
// MCMFDR1 payload and prints the generation, the cause, and each rank's
// last span — the post-mortem view `make chaos-smoke` asserts on.
//
// It is the CI gate behind the trace-smoke, bench-smoke, transport-smoke
// and chaos-smoke steps.
//
// Usage:
//
//	tracelint trace.json [series.csv ...] [flight.dump ...]
//
// Exits nonzero, printing one line per problem, if any file fails.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mcmdist/internal/obs"
)

// event mirrors the trace_event fields tracelint checks. Unknown fields are
// ignored; absent optional numbers are distinguished via pointers.
type event struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Cat  string          `json:"cat"`
	ID   string          `json:"id"`
	S    string          `json:"s"`
	Bp   string          `json:"bp"`
	Args json.RawMessage `json:"args"`
}

// traceFile is the object form of the format: the only form Perfetto's
// legacy JSON importer fully supports metadata on.
type traceFile struct {
	TraceEvents     []event         `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	OtherData       json.RawMessage `json:"otherData"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracelint trace.json [more.json ...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		check := lint
		switch {
		case strings.HasSuffix(path, ".csv"):
			check = lintCSV
		case strings.HasSuffix(path, ".dump"):
			check = lintDump
		}
		if n := check(path); n > 0 {
			fmt.Fprintf(os.Stderr, "tracelint: %s: %d problem(s)\n", path, n)
			bad = true
		} else {
			fmt.Printf("tracelint: %s: ok\n", path)
		}
	}
	if bad {
		os.Exit(1)
	}
}

// lint checks one file and returns the number of problems found, printing
// each to stderr.
func lint(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %v\n", err)
		return 1
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %s: not valid JSON: %v\n", path, err)
		return 1
	}
	problems := 0
	bad := func(i int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tracelint: %s: event %d: %s\n", path, i, fmt.Sprintf(format, args...))
		problems++
	}
	if len(tf.TraceEvents) == 0 {
		fmt.Fprintf(os.Stderr, "tracelint: %s: empty traceEvents array\n", path)
		return problems + 1
	}

	// flows[id] tracks the state machine of one flow chain: started ("s"),
	// continued ("t"), finished ("f"). File order inside a chain must be
	// s, t*, f with non-decreasing timestamps.
	type flowState struct {
		starts, steps, finishes int
		lastTs                  float64
	}
	flows := make(map[string]*flowState)

	// lastX[tid] is the previous complete event's timestamp on that track:
	// the writer sorts each track by start, and the clock-offset alignment
	// of merged multi-process traces must keep it that way, so a complete
	// event older than its predecessor is a lint failure, not a style nit.
	lastX := make(map[int]float64)
	// threadNames[tid] collects the thread_name metadata for the
	// one-track-pair-per-rank check.
	threadNames := make(map[int][]string)

	for i, ev := range tf.TraceEvents {
		if ev.Ph == "" {
			bad(i, "missing ph")
			continue
		}
		if ev.Name == "" {
			bad(i, "ph %q missing name", ev.Ph)
		}
		if ev.Pid == nil {
			bad(i, "%q missing pid", ev.Name)
		}
		if ev.Tid == nil && ev.Ph != "M" {
			bad(i, "%q missing tid", ev.Name)
		}
		if ev.Ts == nil && ev.Ph != "M" {
			bad(i, "%q (ph %q) missing ts", ev.Name, ev.Ph)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur == nil {
				bad(i, "complete event %q missing dur", ev.Name)
			} else if *ev.Dur < 0 {
				bad(i, "complete event %q has negative dur %g", ev.Name, *ev.Dur)
			}
			if ev.Ts != nil && ev.Tid != nil {
				if prev, ok := lastX[*ev.Tid]; ok && *ev.Ts < prev {
					bad(i, "complete event %q on tid %d goes back in time (ts %.3f after %.3f)",
						ev.Name, *ev.Tid, *ev.Ts, prev)
				} else {
					lastX[*ev.Tid] = *ev.Ts
				}
			}
		case "i", "I":
			if ev.S != "" && ev.S != "t" && ev.S != "p" && ev.S != "g" {
				bad(i, "instant %q has bad scope %q", ev.Name, ev.S)
			}
		case "s", "t", "f":
			if ev.ID == "" {
				bad(i, "flow event %q missing id", ev.Name)
				continue
			}
			st := flows[ev.ID]
			if st == nil {
				st = &flowState{}
				flows[ev.ID] = st
			}
			if ev.Ts != nil {
				if total := st.starts + st.steps + st.finishes; total > 0 && *ev.Ts < st.lastTs {
					bad(i, "flow %s event %q goes back in time (ts %.3f after %.3f)",
						ev.ID, ev.Ph, *ev.Ts, st.lastTs)
				}
				st.lastTs = *ev.Ts
			}
			switch ev.Ph {
			case "s":
				if st.steps > 0 || st.finishes > 0 {
					bad(i, "flow %s start after a step or finish", ev.ID)
				}
				st.starts++
			case "t":
				if st.starts == 0 {
					bad(i, "flow %s step before its start", ev.ID)
				}
				if st.finishes > 0 {
					bad(i, "flow %s step after its finish", ev.ID)
				}
				st.steps++
			case "f":
				if st.starts == 0 {
					bad(i, "flow %s finish before its start", ev.ID)
				}
				if ev.Bp != "e" {
					bad(i, "flow %s finish missing binding point bp=e", ev.ID)
				}
				st.finishes++
			}
		case "M":
			if ev.Name == "thread_name" && ev.Tid != nil {
				var args struct {
					Name string `json:"name"`
				}
				json.Unmarshal(ev.Args, &args)
				threadNames[*ev.Tid] = append(threadNames[*ev.Tid], args.Name)
			}
		case "B", "E", "b", "e", "n", "C":
			// Legal phases this writer does not emit; nothing more to check.
		default:
			bad(i, "%q has unknown ph %q", ev.Name, ev.Ph)
		}
	}
	for id, st := range flows {
		if st.starts != 1 {
			fmt.Fprintf(os.Stderr, "tracelint: %s: flow %s has %d start events, want 1\n", path, id, st.starts)
			problems++
		}
		if st.finishes != 1 {
			fmt.Fprintf(os.Stderr, "tracelint: %s: flow %s has %d finish events, want 1\n", path, id, st.finishes)
			problems++
		}
	}
	problems += lintTracks(path, tf.OtherData, threadNames)
	return problems
}

// lintTracks checks the world-rank track layout when the trace declares its
// world size in otherData: exactly one compute/comm thread_name pair per
// rank — "rank r" on tid 2r, "rank r comm" on tid 2r+1 — plus the runtime
// track, and nothing else. A merged multi-process trace that installed a
// peer twice (or not at all) fails here.
func lintTracks(path string, otherData json.RawMessage, threadNames map[int][]string) int {
	var od struct {
		Ranks *int `json:"ranks"`
	}
	if len(otherData) == 0 || json.Unmarshal(otherData, &od) != nil || od.Ranks == nil {
		return 0 // a foreign trace without the world-size declaration
	}
	problems := 0
	bad := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tracelint: %s: %s\n", path, fmt.Sprintf(format, args...))
		problems++
	}
	ranks := *od.Ranks
	if ranks <= 0 {
		bad("otherData declares %d ranks", ranks)
		return problems
	}
	for r := 0; r < ranks; r++ {
		for half, want := range [2]string{fmt.Sprintf("rank %d", r), fmt.Sprintf("rank %d comm", r)} {
			tid := 2*r + half
			switch names := threadNames[tid]; {
			case len(names) == 0:
				bad("rank %d: no thread_name for tid %d (want %q)", r, tid, want)
			case len(names) > 1:
				bad("rank %d: %d thread_name events for tid %d, want exactly 1", r, len(names), tid)
			case names[0] != want:
				bad("rank %d: tid %d named %q, want %q", r, tid, names[0], want)
			}
		}
	}
	if names := threadNames[2*ranks]; len(names) != 1 || names[0] != "runtime" {
		bad("runtime track (tid %d) missing or misnamed: %v", 2*ranks, names)
	}
	for tid := range threadNames {
		if tid < 0 || tid > 2*ranks {
			bad("unexpected track tid %d beyond the %d-rank layout", tid, ranks)
		}
	}
	return problems
}

// lintDump decodes one crash flight-recorder dump and prints the
// post-mortem view: generation, cause, and each rank's final span. The
// decode itself is the check — chaos-smoke asserts a SIGKILLed world left a
// dump this function accepts.
func lintDump(path string) int {
	d, err := obs.ReadFlightDump(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("tracelint: %s: flight dump, generation %d, cause: %s\n", path, d.Gen, d.Cause)
	for _, ro := range d.Ranks {
		line := fmt.Sprintf("  rank %d: %d span(s)", ro.Rank, len(ro.Spans))
		if ro.Dropped > 0 {
			line += fmt.Sprintf(" (%d dropped)", ro.Dropped)
		}
		if sp, ok := d.LastSpan(ro.Rank); ok {
			line += fmt.Sprintf(", last span %q at +%v for %v", sp.Name,
				time.Duration(sp.Start), time.Duration(sp.Dur))
		}
		fmt.Println(line)
	}
	return 0
}

// seriesHeader is the exact header obs.WriteSeriesCSV emits; tracelint
// fails a CSV whose header drifts so the schema stays load-bearing.
const seriesHeader = "rank,phase,iteration,frontier,new_paths,matched,pull,direction,wall_ns,msgs,words,words_encoded,comm_ns,exposed_ns,pool_busy_ns,pool_span_ns"

// lintCSV checks one time-series CSV and returns the number of problems
// found, printing each to stderr.
func lintCSV(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %v\n", err)
		return 1
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != seriesHeader {
		fmt.Fprintf(os.Stderr, "tracelint: %s: bad or missing series header\n", path)
		return 1
	}
	if len(lines) < 2 {
		fmt.Fprintf(os.Stderr, "tracelint: %s: header but no samples\n", path)
		return 1
	}
	cols := strings.Split(seriesHeader, ",")
	pullCol, dirCol := -1, -1
	for i, c := range cols {
		switch c {
		case "pull":
			pullCol = i
		case "direction":
			dirCol = i
		}
	}
	problems := 0
	bad := func(ln int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tracelint: %s: line %d: %s\n", path, ln+1, fmt.Sprintf(format, args...))
		problems++
	}
	for ln := 1; ln < len(lines); ln++ {
		fields := strings.Split(lines[ln], ",")
		if len(fields) != len(cols) {
			bad(ln, "%d fields, want %d", len(fields), len(cols))
			continue
		}
		for i, f := range fields {
			if i == dirCol {
				if f != "push" && f != "pull" {
					bad(ln, "direction %q, want push or pull", f)
				}
				continue
			}
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				bad(ln, "column %s: %q is not an integer", cols[i], f)
				continue
			}
			if i == pullCol && v != 0 && v != 1 {
				bad(ln, "pull %d, want 0 or 1", v)
			}
		}
		if pullCol >= 0 && dirCol >= 0 {
			wantDir := "push"
			if fields[pullCol] == "1" {
				wantDir = "pull"
			}
			if fields[dirCol] != wantDir && (fields[dirCol] == "push" || fields[dirCol] == "pull") {
				bad(ln, "direction %q disagrees with pull %s", fields[dirCol], fields[pullCol])
			}
		}
	}
	return problems
}

// Command tracelint validates the observability artifacts cmd/bench emits:
// Chrome trace_event JSON files (-trace) and per-iteration time-series CSVs
// (-series). For traces it checks the JSON object form with a traceEvents
// array, per-event required keys by phase type, and pairing of flow
// start/finish events — a trace that passes loads in Perfetto
// (ui.perfetto.dev) and chrome://tracing. For CSVs (dispatched on the .csv
// extension) it checks the exact header obs.WriteSeriesCSV writes, row
// arity, numeric fields, and the direction column's push/pull vocabulary.
// It is the CI gate behind the trace-smoke and bench-smoke steps.
//
// Usage:
//
//	tracelint trace.json [series.csv ...]
//
// Exits nonzero, printing one line per problem, if any file fails.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// event mirrors the trace_event fields tracelint checks. Unknown fields are
// ignored; absent optional numbers are distinguished via pointers.
type event struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Cat  string          `json:"cat"`
	ID   string          `json:"id"`
	S    string          `json:"s"`
	Args json.RawMessage `json:"args"`
}

// traceFile is the object form of the format: the only form Perfetto's
// legacy JSON importer fully supports metadata on.
type traceFile struct {
	TraceEvents     []event         `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	OtherData       json.RawMessage `json:"otherData"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracelint trace.json [more.json ...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		check := lint
		if strings.HasSuffix(path, ".csv") {
			check = lintCSV
		}
		if n := check(path); n > 0 {
			fmt.Fprintf(os.Stderr, "tracelint: %s: %d problem(s)\n", path, n)
			bad = true
		} else {
			fmt.Printf("tracelint: %s: ok\n", path)
		}
	}
	if bad {
		os.Exit(1)
	}
}

// lint checks one file and returns the number of problems found, printing
// each to stderr.
func lint(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %v\n", err)
		return 1
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %s: not valid JSON: %v\n", path, err)
		return 1
	}
	problems := 0
	bad := func(i int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tracelint: %s: event %d: %s\n", path, i, fmt.Sprintf(format, args...))
		problems++
	}
	if len(tf.TraceEvents) == 0 {
		fmt.Fprintf(os.Stderr, "tracelint: %s: empty traceEvents array\n", path)
		return problems + 1
	}

	// flows[id] tracks the state machine of one flow chain: started ("s"),
	// continued ("t"), finished ("f").
	type flowState struct{ starts, steps, finishes int }
	flows := make(map[string]*flowState)

	for i, ev := range tf.TraceEvents {
		if ev.Ph == "" {
			bad(i, "missing ph")
			continue
		}
		if ev.Name == "" {
			bad(i, "ph %q missing name", ev.Ph)
		}
		if ev.Pid == nil {
			bad(i, "%q missing pid", ev.Name)
		}
		if ev.Tid == nil && ev.Ph != "M" {
			bad(i, "%q missing tid", ev.Name)
		}
		if ev.Ts == nil && ev.Ph != "M" {
			bad(i, "%q (ph %q) missing ts", ev.Name, ev.Ph)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur == nil {
				bad(i, "complete event %q missing dur", ev.Name)
			} else if *ev.Dur < 0 {
				bad(i, "complete event %q has negative dur %g", ev.Name, *ev.Dur)
			}
		case "i", "I":
			if ev.S != "" && ev.S != "t" && ev.S != "p" && ev.S != "g" {
				bad(i, "instant %q has bad scope %q", ev.Name, ev.S)
			}
		case "s", "t", "f":
			if ev.ID == "" {
				bad(i, "flow event %q missing id", ev.Name)
				continue
			}
			st := flows[ev.ID]
			if st == nil {
				st = &flowState{}
				flows[ev.ID] = st
			}
			switch ev.Ph {
			case "s":
				st.starts++
			case "t":
				st.steps++
			case "f":
				st.finishes++
			}
		case "M":
			// Metadata names a known field in args; checked loosely.
		case "B", "E", "b", "e", "n", "C":
			// Legal phases this writer does not emit; nothing more to check.
		default:
			bad(i, "%q has unknown ph %q", ev.Name, ev.Ph)
		}
	}
	for id, st := range flows {
		if st.starts != 1 {
			fmt.Fprintf(os.Stderr, "tracelint: %s: flow %s has %d start events, want 1\n", path, id, st.starts)
			problems++
		}
		if st.finishes != 1 {
			fmt.Fprintf(os.Stderr, "tracelint: %s: flow %s has %d finish events, want 1\n", path, id, st.finishes)
			problems++
		}
	}
	return problems
}

// seriesHeader is the exact header obs.WriteSeriesCSV emits; tracelint
// fails a CSV whose header drifts so the schema stays load-bearing.
const seriesHeader = "rank,phase,iteration,frontier,new_paths,matched,pull,direction,wall_ns,msgs,words,words_encoded,comm_ns,exposed_ns,pool_busy_ns,pool_span_ns"

// lintCSV checks one time-series CSV and returns the number of problems
// found, printing each to stderr.
func lintCSV(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %v\n", err)
		return 1
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != seriesHeader {
		fmt.Fprintf(os.Stderr, "tracelint: %s: bad or missing series header\n", path)
		return 1
	}
	if len(lines) < 2 {
		fmt.Fprintf(os.Stderr, "tracelint: %s: header but no samples\n", path)
		return 1
	}
	cols := strings.Split(seriesHeader, ",")
	pullCol, dirCol := -1, -1
	for i, c := range cols {
		switch c {
		case "pull":
			pullCol = i
		case "direction":
			dirCol = i
		}
	}
	problems := 0
	bad := func(ln int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tracelint: %s: line %d: %s\n", path, ln+1, fmt.Sprintf(format, args...))
		problems++
	}
	for ln := 1; ln < len(lines); ln++ {
		fields := strings.Split(lines[ln], ",")
		if len(fields) != len(cols) {
			bad(ln, "%d fields, want %d", len(fields), len(cols))
			continue
		}
		for i, f := range fields {
			if i == dirCol {
				if f != "push" && f != "pull" {
					bad(ln, "direction %q, want push or pull", f)
				}
				continue
			}
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				bad(ln, "column %s: %q is not an integer", cols[i], f)
				continue
			}
			if i == pullCol && v != 0 && v != 1 {
				bad(ln, "pull %d, want 0 or 1", v)
			}
		}
		if pullCol >= 0 && dirCol >= 0 {
			wantDir := "push"
			if fields[pullCol] == "1" {
				wantDir = "pull"
			}
			if fields[dirCol] != wantDir && (fields[dirCol] == "push" || fields[dirCol] == "pull") {
				bad(ln, "direction %q disagrees with pull %s", fields[dirCol], fields[pullCol])
			}
		}
	}
	return problems
}

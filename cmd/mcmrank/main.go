// Command mcmrank is the worker process of a multi-process solve: it joins
// a TCP world being coordinated by `mcm -transport tcp` (or any other
// coordinator speaking the rendezvous protocol of internal/mpi/tcpnet),
// receives the job spec in the roster exchange, rebuilds the same input
// matrix and configuration locally, and runs its rank of MCM-DIST.
//
// The final mate vectors are allgathered, so a worker holds the full
// matching when the solve completes; -out makes it write the matching just
// like mcm does, which is how the transport smoke test cross-checks the
// backends.
//
// Example (one coordinator plus three workers, any order):
//
//	mcm -rmat g500 -scale 10 -procs 4 -transport tcp -addr 127.0.0.1:9301 &
//	mcmrank -addr 127.0.0.1:9301 -rank 1 &
//	mcmrank -addr 127.0.0.1:9301 -rank 2 &
//	mcmrank -addr 127.0.0.1:9301 -rank 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mcmdist/internal/distjob"
	"mcmdist/internal/matching"
	"mcmdist/internal/mpi"
	"mcmdist/internal/mpi/tcpnet"
	"mcmdist/internal/semiring"
)

func main() {
	log.SetFlags(0)

	addr := flag.String("addr", "", "coordinator address to join (host:port)")
	rank := flag.Int("rank", -1, "world rank this process hosts (1..procs-1)")
	out := flag.String("out", "", "write the matching as 'row col' lines to this file")
	timeout := flag.Duration("timeout", 30*time.Second, "how long to keep dialing the coordinator")
	quiet := flag.Bool("quiet", false, "suppress the progress lines")
	slowTo := flag.Int("slow-to", -1, "chaos testing: delay every outbound data frame on the link to this rank")
	slowDelay := flag.Duration("slow-delay", 2*time.Millisecond, "chaos testing: per-frame delay for -slow-to")
	dropTo := flag.Int("drop-to", -1, "chaos testing: sever the link to this rank at the -drop-at-th outbound data frame")
	dropAt := flag.Int("drop-at", 5, "chaos testing: 1-based data frame whose send severs the -drop-to link")
	flag.Parse()

	if *addr == "" || *rank < 1 {
		log.Fatal("mcmrank: -addr and -rank (>= 1) are required; rank 0 is the coordinator (mcm -transport tcp)")
	}
	log.SetPrefix(fmt.Sprintf("mcmrank[%d]: ", *rank))
	say := func(format string, args ...any) {
		if !*quiet {
			log.Printf(format, args...)
		}
	}

	opts := tcpnet.Options{DialTimeout: *timeout}
	// The chaos flags attach the deterministic network fault injector to this
	// worker's endpoint — scripts/chaos_smoke.sh uses the slow link to keep a
	// solve running long enough to SIGKILL this process mid-flight, and the
	// drop to reproduce a link failure at an exact frame.
	if *slowTo >= 0 || *dropTo >= 0 {
		f := &mpi.NetFaultSpec{}
		if *slowTo >= 0 {
			f.SlowFrom, f.SlowTo, f.SlowDelay = *rank, *slowTo, *slowDelay
		}
		if *dropTo >= 0 {
			f.DropFrom, f.DropTo, f.DropAtFrame = *rank, *dropTo, *dropAt
		}
		opts.Faults = f
	}

	say("joining %s", *addr)
	// WorkLoop behaves exactly like a single join-and-solve for ordinary
	// jobs; when the coordinator runs with -recover it also rejoins each
	// restarted generation until one completes (see internal/distjob).
	res, err := distjob.WorkLoop(*addr, *rank, opts, say)
	if err != nil {
		log.Fatal(err)
	}
	say("|M| = %d, phases %d, iterations %d",
		res.Stats.Cardinality, res.Stats.Phases, res.Stats.Iterations)

	if *out != "" {
		if err := writeMatching(*out, res.Matching); err != nil {
			log.Fatal(err)
		}
		say("matching written to %s", *out)
	}
}

// writeMatching stores the matched pairs in cmd/mcm's format, one
// "row col" line each, so outputs from the two binaries can be compared
// byte for byte.
func writeMatching(path string, m *matching.Matching) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for i, j := range m.MateR {
		if j == semiring.None {
			continue
		}
		if _, err := fmt.Fprintf(f, "%d %d\n", i, j); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

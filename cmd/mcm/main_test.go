package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadGraphSources(t *testing.T) {
	// Exactly one source required.
	if _, err := loadGraph("", "", "", 8, 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadGraph("x.mtx", "er", "", 8, 1); err == nil {
		t.Error("two sources accepted")
	}

	// RMAT classes.
	for _, class := range []string{"g500", "ssca", "er", "G500", "ER"} {
		g, err := loadGraph("", class, "", 6, 1)
		if err != nil {
			t.Errorf("class %q: %v", class, err)
			continue
		}
		if g.Rows() != 64 {
			t.Errorf("class %q: %d rows", class, g.Rows())
		}
	}
	if _, err := loadGraph("", "bogus", "", 6, 1); err == nil {
		t.Error("unknown rmat class accepted")
	}

	// Table II stand-in.
	g, err := loadGraph("", "", "road_usa", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() == 0 {
		t.Error("empty stand-in")
	}
	if _, err := loadGraph("", "", "nope", 6, 1); err == nil {
		t.Error("unknown matrix accepted")
	}

	// Matrix Market file.
	path := filepath.Join(t.TempDir(), "g.mtx")
	content := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err = loadGraph(path, "", "", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 2 {
		t.Errorf("mtx load: %d edges", g.Edges())
	}
	if _, err := loadGraph(filepath.Join(t.TempDir(), "missing.mtx"), "", "", 6, 1); err == nil {
		t.Error("missing file accepted")
	}
}

// Command mcm computes a maximum cardinality matching of a bipartite graph
// with the distributed MCM-DIST algorithm on simulated ranks.
//
// The input is either a Matrix Market file (-in), a synthetic R-MAT matrix
// (-rmat g500|ssca|er -scale N), or a Table II stand-in (-matrix name
// -scale N).
//
// By default every rank is a goroutine of this process (the in-process
// transport). With -transport tcp the solve spans OS processes: rank 0
// (this binary) listens on -addr, coordinates the rendezvous, and ships the
// job spec to the cmd/mcmrank workers that join; `mcm -transport tcp
// -rank N` is an alternative worker spelling. See docs/TRANSPORT.md.
//
// Observability (docs/OBSERVABILITY.md): -trace-out writes the solve's span
// timeline as Perfetto-loadable trace JSON, -timeseries the per-iteration
// series as CSV, -metrics-out a Prometheus text snapshot, and -metrics-addr
// serves the live registry at /metrics while the solve runs. On a tcp world
// the artifacts are whole-world merges: the workers ship their observations
// at solve end and the coordinator aligns and merges them. -flight-dir arms
// the crash flight recorder — a failed generation leaves
// flight-g<gen>-r<rank>.dump post-mortems there (decode with cmd/tracelint).
//
// Examples:
//
//	mcm -rmat g500 -scale 14 -procs 16 -init mindegree
//	mcm -in graph.mtx -procs 4 -breakdown
//	mcm -matrix road_usa -scale 12 -procs 16 -verify
//	mcm -rmat g500 -scale 10 -procs 4 -transport tcp -addr 127.0.0.1:9301
//	mcm -rmat g500 -scale 10 -procs 4 -transport tcp -addr 127.0.0.1:9301 \
//	    -trace-out world.json -timeseries world.csv -metrics-out world.prom
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"mcmdist"
	"mcmdist/internal/distjob"
	"mcmdist/internal/matching"
	"mcmdist/internal/mpi/tcpnet"
	"mcmdist/internal/obs"
	"mcmdist/internal/semiring"
	"mcmdist/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcm: ")

	in := flag.String("in", "", "Matrix Market input file")
	rmatClass := flag.String("rmat", "", "generate an R-MAT matrix: g500, ssca or er")
	matrix := flag.String("matrix", "", "generate a Table II stand-in by name (see -list)")
	list := flag.Bool("list", false, "list the Table II stand-in names and exit")
	scale := flag.Int("scale", 12, "scale of generated matrices (2^scale vertices per side)")
	seed := flag.Int64("seed", 1, "generator / permutation seed")
	procs := flag.Int("procs", 4, "simulated ranks (perfect square)")
	threads := flag.Int("threads", 12, "worker threads per rank (also divides the modeled work term)")
	initAlg := flag.String("init", "mindegree", "initializer: none, greedy, karpsipser, mindegree")
	semiringFlag := flag.String("semiring", "minparent", "SpMV semiring: minparent, randroot, randparent")
	augment := flag.String("augment", "auto", "augmentation: auto, level, path")
	noPrune := flag.Bool("no-prune", false, "disable tree pruning (Fig. 8 ablation)")
	dirOpt := flag.Bool("direction-optimized", false, "enable bottom-up BFS for large frontiers")
	direction := flag.String("direction", "default", "SpMV kernel policy: push, pull, auto, or default (follow -direction-optimized)")
	compress := flag.Bool("compress", false, "enable the delta-varint wire codec (tcp payload compression; all backends meter the encoded volume)")
	engine := flag.String("engine", "", "matching engine: bfs, bfs-ss, bfs-graft, auction, or auto (cost-model selection); empty follows -graft")
	graft := flag.Bool("graft", false, "use the tree-grafting MCM variant (deprecated alias for -engine bfs-graft)")
	serial := flag.String("serial", "", "also run a serial baseline for comparison: hk, pf, msbfs, graft, pr")
	noPermute := flag.Bool("no-permute", false, "skip the load-balancing random permutation")
	verify := flag.Bool("verify", false, "certify the result with the König vertex-cover certificate")
	breakdown := flag.Bool("breakdown", false, "print the per-primitive runtime breakdown")
	trace := flag.Bool("trace", false, "print one line per BFS iteration")
	traceOut := flag.String("trace-out", "", "write a Perfetto/Chrome trace of the solve to this file (tcp coordinator: one merged world trace, all ranks)")
	timeseries := flag.String("timeseries", "", "write the per-iteration time-series CSV to this file (tcp coordinator: rank-merged across the world)")
	metricsAddr := flag.String("metrics-addr", "", "serve the metrics registry in Prometheus text format at this address for the duration of the run (tcp coordinator: world-aggregated at solve end)")
	metricsOut := flag.String("metrics-out", "", "write the final metrics registry in Prometheus text format to this file")
	flightDir := flag.String("flight-dir", "", "tcp transport: crash flight recorder directory — on a failed attempt every surviving process dumps its span-ring tail, meters and generation here")
	out := flag.String("out", "", "write the matching as 'row col' lines to this file")
	transport := flag.String("transport", "inproc", "transport backend: inproc (ranks are goroutines) or tcp (ranks are OS processes)")
	addr := flag.String("addr", "", "tcp transport: rendezvous address (rank 0 listens, workers dial)")
	rank := flag.Int("rank", 0, "tcp transport: the world rank this process hosts; rank 0 coordinates and ships the job, ranks >= 1 join as workers and ignore the graph/solver flags")
	recoverFlag := flag.Bool("recover", false, "tcp transport: supervise the world across failures — restart it up to -max-restarts times, resuming from the last checkpoint")
	maxRestarts := flag.Int("max-restarts", 3, "tcp transport: world restarts before giving up (with -recover)")
	ckptEvery := flag.Int("checkpoint-every", 1, "tcp transport: checkpoint every Nth phase (with -recover); 0 restarts from scratch")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(mcmdist.TableIINames(), "\n"))
		return
	}

	switch *transport {
	case "inproc":
		if *addr != "" || *rank != 0 {
			log.Fatal("-addr and -rank require -transport tcp")
		}
	case "tcp":
		if *addr == "" {
			log.Fatal("-transport tcp requires -addr")
		}
		if *rank < 0 {
			log.Fatalf("-rank %d out of range", *rank)
		}
	default:
		log.Fatalf("unknown -transport %q", *transport)
	}
	if *recoverFlag && *transport != "tcp" {
		log.Fatal("-recover requires -transport tcp (in-process recovery is the library's SolveRecoverable)")
	}
	if *flightDir != "" && *transport != "tcp" {
		log.Fatal("-flight-dir requires -transport tcp (the flight recorder captures multi-process failures)")
	}
	if *transport == "tcp" && *rank > 0 {
		// Worker mode: the coordinator ships the job spec, so every graph
		// and solver flag is ignored here — mcmrank with mcm's clothes on.
		runWorker(*addr, *rank, *out)
		return
	}

	g, err := loadGraph(*in, *rmatClass, *matrix, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	opts := mcmdist.Options{
		Procs:              *procs,
		Threads:            *threads,
		DisablePrune:       *noPrune,
		DirectionOptimized: *dirOpt,
		Direction:          *direction,
		Compress:           *compress,
		Engine:             *engine,
		TreeGrafting:       *graft,
		Permute:            !*noPermute,
		Seed:               *seed,
	}
	switch *initAlg {
	case "none":
		opts.Init = mcmdist.NoInit
	case "greedy":
		opts.Init = mcmdist.GreedyInit
	case "karpsipser":
		opts.Init = mcmdist.KarpSipserInit
	case "mindegree":
		opts.Init = mcmdist.DynamicMindegreeInit
	default:
		log.Fatalf("unknown -init %q", *initAlg)
	}
	switch *semiringFlag {
	case "minparent":
		opts.Semiring = mcmdist.MinParent
	case "randroot":
		opts.Semiring = mcmdist.RandRoot
	case "randparent":
		opts.Semiring = mcmdist.RandParent
	default:
		log.Fatalf("unknown -semiring %q", *semiringFlag)
	}
	if *trace {
		opts.Trace = os.Stdout
	}
	wantMetrics := *metricsAddr != "" || *metricsOut != ""
	if *traceOut != "" || *timeseries != "" || wantMetrics {
		opts.Observe = &mcmdist.Observe{
			Spans:      *traceOut != "",
			TimeSeries: *timeseries != "",
			Metrics:    wantMetrics,
		}
	}
	var msrv metricsServer
	if *metricsAddr != "" {
		bound, err := msrv.listen(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("serving metrics at http://%s/metrics\n", bound)
		opts.Observe.OnLive = func(r *mcmdist.ObsReport) { msrv.install(r.MetricsHandler()) }
	}
	switch *augment {
	case "auto":
		opts.Augment = mcmdist.AutoAugment
	case "level":
		opts.Augment = mcmdist.LevelParallel
	case "path":
		opts.Augment = mcmdist.PathParallel
	default:
		log.Fatalf("unknown -augment %q", *augment)
	}

	var tr *mcmdist.Transport
	if *transport == "tcp" {
		spec := &distjob.Spec{
			RMAT: *rmatClass, Matrix: *matrix, Scale: *scale, Seed: *seed,
			Procs: *procs, Threads: *threads,
			Init: *initAlg, Semiring: *semiringFlag, Augment: *augment,
			NoPrune: *noPrune, DirectionOptimized: *dirOpt, Direction: *direction,
			Compress: *compress, Engine: *engine, Graft: *graft, NoPermute: *noPermute,
			ObsSpans: *traceOut != "", ObsSeries: *timeseries != "", ObsMetrics: wantMetrics,
			FlightDir: *flightDir,
		}
		if *in != "" {
			// Workers may not share our filesystem: embed the file.
			content, err := os.ReadFile(*in)
			if err != nil {
				log.Fatal(err)
			}
			spec.MTX = string(content)
		}
		if *recoverFlag {
			runSupervisor(*addr, spec, *maxRestarts, *ckptEvery, *verify, *out,
				obsOutputs{trace: *traceOut, series: *timeseries, metrics: *metricsOut, srv: &msrv})
			return
		}
		blob, err := spec.Encode()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("coordinating %d-rank tcp world at %s (waiting for %d workers)\n",
			*procs, *addr, *procs-1)
		if tr, err = mcmdist.CoordinateTCPWithConfig(*addr, *procs, blob); err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
	}

	m, st, err := mcmdist.MaximumMatchingOn(tr, g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|M| = %d (initializer found %d), deficiency %d, engine %s\n",
		st.Cardinality, st.InitCardinality, g.Cols()-st.Cardinality, st.Engine)
	fmt.Printf("phases %d, iterations %d (push %d / pull %d), augmenting paths %d (level-parallel %d, path-parallel %d)\n",
		st.Phases, st.Iterations, st.PushIterations, st.PullIterations,
		st.AugmentedPaths, st.LevelParallelAugments, st.PathParallelAugments)
	fmt.Printf("modeled time on %s with p=%d t=%d: %.3gs\n",
		mcmdist.EdisonXC30.Name, st.Procs, st.Threads, st.ModeledSeconds(mcmdist.EdisonXC30))

	if *breakdown {
		bd := st.ModeledBreakdown(mcmdist.EdisonXC30)
		keys := make([]string, 0, len(bd))
		for k := range bd {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("breakdown (modeled seconds):")
		for _, k := range keys {
			fmt.Printf("  %-8s %.3g  (wall %v)\n", k, bd[k], st.WallByOp[k])
		}
	}

	if st.Obs != nil {
		writeObsOutputs(st.Obs, *traceOut, *timeseries, *metricsOut)
	}

	if *verify {
		if err := g.VerifyMaximum(m); err != nil {
			log.Fatalf("verification FAILED: %v", err)
		}
		fmt.Println("verified: König certificate confirms the matching is maximum")
	}

	if *out != "" {
		if err := writeMatching(*out, m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("matching written to %s\n", *out)
	}

	if *serial != "" {
		alg, ok := map[string]mcmdist.SerialAlgorithm{
			"hk": mcmdist.HopcroftKarp, "pf": mcmdist.PothenFan,
			"msbfs": mcmdist.MSBFS, "graft": mcmdist.MSBFSGraft,
			"pr": mcmdist.PushRelabelAlg,
		}[*serial]
		if !ok {
			log.Fatalf("unknown -serial %q", *serial)
		}
		start := time.Now()
		sm, err := mcmdist.MaximumMatchingSerial(g, alg, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("serial %s: |M| = %d in %v", *serial, sm.Cardinality(), time.Since(start))
		if sm.Cardinality() == st.Cardinality {
			fmt.Println(" (agrees with MCM-DIST)")
		} else {
			fmt.Println(" (DISAGREES with MCM-DIST!)")
		}
	}
}

// runSupervisor is the coordinator side of a recoverable multi-process
// solve: it supervises the world across generations, restarting failed
// worlds from the last phase-boundary checkpoint (see internal/distjob).
func runSupervisor(addr string, spec *distjob.Spec, maxRestarts, ckptEvery int, verifyFlag bool, out string, oo obsOutputs) {
	spec.CheckpointEvery = ckptEvery
	pol := distjob.SupervisePolicy{MaxRestarts: maxRestarts, Log: log.Printf}
	fmt.Printf("supervising %d-rank tcp world at %s (waiting for %d workers, up to %d restarts)\n",
		spec.Procs, addr, spec.Procs-1, maxRestarts)
	res, stats, err := distjob.Supervise(addr, spec, tcpnet.Options{}, pol)
	reportFlightDumps(stats, spec.FlightDir)
	if err != nil {
		for _, ge := range stats.Errors {
			log.Printf("generation error: %v", ge)
		}
		log.Fatal(err)
	}
	fmt.Printf("|M| = %d after %d generation(s), %d restart(s)",
		res.Stats.Cardinality, stats.Generations, stats.Restarts)
	if stats.Restarts > 0 {
		fmt.Printf(" (resumed from phase %d)", stats.ResumedPhase)
	}
	fmt.Println()
	if stats.Obs != nil {
		oo.srv.install(collectorOutputs{stats.Obs}.metricsHandler())
		writeObsOutputs(collectorOutputs{stats.Obs}, oo.trace, oo.series, oo.metrics)
	}
	if verifyFlag {
		a, err := spec.BuildMatrix()
		if err != nil {
			log.Fatal(err)
		}
		if err := verify.Maximum(a, res.Matching); err != nil {
			log.Fatalf("verification FAILED: %v", err)
		}
		fmt.Println("verified: König certificate confirms the matching is maximum")
	}
	if out != "" {
		if err := writeMateVector(out, res.Matching); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("matching written to %s\n", out)
	}
}

// runWorker joins a TCP world as a non-coordinator rank: the job spec
// arrives in the roster exchange, and the graph and configuration are
// rebuilt locally from it (see internal/distjob). A supervised job makes
// the worker rejoin restarted generations until one completes.
func runWorker(addr string, rank int, out string) {
	log.SetPrefix(fmt.Sprintf("mcm[rank %d]: ", rank))
	res, err := distjob.WorkLoop(addr, rank, tcpnet.Options{}, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|M| = %d (worker rank %d of %d)\n",
		res.Stats.Cardinality, rank, res.Procs)
	if out != "" {
		if err := writeMateVector(out, res.Matching); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("matching written to %s\n", out)
	}
}

// obsOutputs carries the observability artifact destinations into the
// supervisor path.
type obsOutputs struct {
	trace, series, metrics string
	srv                    *metricsServer
}

// obsWriter is the slice of the observability report the artifact writer
// needs; *mcmdist.ObsReport and collectorOutputs both satisfy it.
type obsWriter interface {
	WriteTrace(io.Writer) error
	WriteTimeSeriesCSV(io.Writer) error
	WriteMetrics(io.Writer) error
}

// collectorOutputs adapts the supervisor path's internal collector (the
// final generation's merged world observation) to obsWriter.
type collectorOutputs struct{ col *obs.Collector }

func (c collectorOutputs) WriteTrace(w io.Writer) error          { return c.col.WriteTrace(w) }
func (c collectorOutputs) WriteTimeSeriesCSV(w io.Writer) error  { return c.col.WriteSeriesCSV(w) }
func (c collectorOutputs) WriteMetrics(w io.Writer) error {
	reg := c.col.Registry()
	if reg == nil {
		return nil
	}
	return reg.WritePrometheus(w)
}

func (c collectorOutputs) metricsHandler() http.Handler {
	reg := c.col.Registry()
	if reg == nil {
		return nil
	}
	return reg.Handler()
}

// writeObsOutputs writes whichever observability artifacts were requested:
// the merged Perfetto trace, the rank-merged time-series CSV, and the final
// metrics registry in Prometheus text format.
func writeObsOutputs(r obsWriter, traceOut, seriesOut, metricsOut string) {
	write := func(path, what string, f func(io.Writer) error) {
		if path == "" {
			return
		}
		fh, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := f(fh); err != nil {
			fh.Close()
			log.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s written to %s\n", what, path)
	}
	write(traceOut, "trace", r.WriteTrace)
	write(seriesOut, "time-series", r.WriteTimeSeriesCSV)
	write(metricsOut, "metrics", r.WriteMetrics)
}

// reportFlightDumps points the operator at the post-mortem bundle a
// supervised solve accumulated, whether or not it recovered.
func reportFlightDumps(stats *distjob.SuperviseStats, dir string) {
	if len(stats.FlightDumps) == 0 {
		return
	}
	fmt.Printf("flight recorder: %d dump(s) in %s\n", len(stats.FlightDumps), dir)
	for _, p := range stats.FlightDumps {
		fmt.Printf("  %s\n", p)
	}
}

// metricsServer serves /metrics for the duration of the run. Until the
// solve's registry comes live it answers 503, so a scrape during bootstrap
// fails soft instead of hanging.
type metricsServer struct {
	h atomic.Value // http.Handler
}

func (s *metricsServer) listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", s)
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}

func (s *metricsServer) install(h http.Handler) {
	if h != nil {
		s.h.Store(h)
	}
}

func (s *metricsServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h, _ := s.h.Load().(http.Handler)
	if h == nil {
		http.Error(w, "registry not live yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// writeMateVector is writeMatching for the internal representation the
// worker path holds; both produce identical files for identical matchings.
func writeMateVector(path string, m *matching.Matching) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for i, j := range m.MateR {
		if j == semiring.None {
			continue
		}
		if _, err := fmt.Fprintf(f, "%d %d\n", i, j); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// writeMatching stores the matched pairs, one "row col" line each.
func writeMatching(path string, m *mcmdist.Matching) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for i, j := range m.MateR {
		if j == mcmdist.Unmatched {
			continue
		}
		if _, err := fmt.Fprintf(f, "%d %d\n", i, j); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func loadGraph(in, rmatClass, matrix string, scale int, seed int64) (*mcmdist.Graph, error) {
	nSources := 0
	for _, s := range []string{in, rmatClass, matrix} {
		if s != "" {
			nSources++
		}
	}
	if nSources != 1 {
		return nil, fmt.Errorf("specify exactly one of -in, -rmat, -matrix (got %d); see -h", nSources)
	}
	switch {
	case in != "":
		return mcmdist.FromMatrixMarketFile(in)
	case matrix != "":
		return mcmdist.TableII(matrix, scale)
	default:
		var class mcmdist.RMATClass
		switch strings.ToLower(rmatClass) {
		case "g500":
			class = mcmdist.G500
		case "ssca":
			class = mcmdist.SSCA
		case "er":
			class = mcmdist.ER
		default:
			return nil, fmt.Errorf("unknown -rmat class %q", rmatClass)
		}
		return mcmdist.RMAT(class, scale, 0, seed)
	}
}

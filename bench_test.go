package mcmdist

// One benchmark per table and figure of the paper's evaluation section,
// driving the same experiment code as cmd/bench at reduced scale, plus
// micro-benchmarks for the Table I primitives. Run them all with
//
//	go test -bench=. -benchmem
//
// Shapes (who wins, how results scale) are what reproduce the paper;
// cmd/bench prints the full tables and EXPERIMENTS.md records the
// comparison.

import (
	"io"
	"sync"
	"testing"

	"mcmdist/internal/experiments"
)

// BenchmarkTableIPrimitives exercises the primitive set of Table I through
// one full distributed solve per iteration (SpMV, SELECT, SET, INVERT,
// PRUNE are all on the hot path of Algorithm 2).
func BenchmarkTableIPrimitives(b *testing.B) {
	g, err := RMAT(ER, 10, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaximumMatching(g, Options{Procs: 4, Init: GreedyInit}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Suite regenerates the Table II inventory.
func BenchmarkTable2Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard, 8)
	}
}

// BenchmarkFig3Initializers runs the initializer comparison (greedy vs
// Karp-Sipser vs dynamic mindegree) on the figure's representative graphs.
func BenchmarkFig3Initializers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3(io.Discard, 7, 4)
	}
}

// BenchmarkFig4StrongScaling runs the real-matrix strong-scaling sweep.
func BenchmarkFig4StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(io.Discard, 10, []int{4, 16}, []string{"road_usa", "amazon-2008"})
	}
}

// BenchmarkFig5Breakdown runs the per-primitive runtime decomposition.
func BenchmarkFig5Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(io.Discard, 9, []int{4, 16})
	}
}

// BenchmarkFig6SyntheticScaling runs the ER/G500/SSCA scaling sweep.
func BenchmarkFig6SyntheticScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(io.Discard, []int{10}, []int{4, 16})
	}
}

// BenchmarkFig7HybridVsFlat runs the multithreading comparison.
func BenchmarkFig7HybridVsFlat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(io.Discard, 10, []int{48})
	}
}

// BenchmarkFig8PruneAblation runs the pruning on/off ablation.
func BenchmarkFig8PruneAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(io.Discard, 8, 4, []string{"road_usa", "kkt_power"})
	}
}

// BenchmarkFig9GatherScatter runs the gather-to-one-node cost experiment.
func BenchmarkFig9GatherScatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(io.Discard, []int{1 << 18, 1 << 20}, 2048, 4)
	}
}

// BenchmarkAugmentVariants runs the Section IV-B level- vs path-parallel
// crossover sweep.
func BenchmarkAugmentVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AugmentCrossover(io.Discard, 4, 8, []int{1, 16})
	}
}

// BenchmarkSerialBaselines measures the shared-memory algorithms the paper
// compares against (Section VI-E).
func BenchmarkSerialBaselines(b *testing.B) {
	g, err := RMAT(G500, 13, 8, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		alg  SerialAlgorithm
	}{
		{"hopcroft-karp", HopcroftKarp},
		{"pothen-fan", PothenFan},
		{"ms-bfs", MSBFS},
		{"ms-bfs-graft", MSBFSGraft},
		{"push-relabel", PushRelabelAlg},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MaximumMatchingSerial(g, tc.alg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMCMDistByProcs measures wall time of the full distributed solve
// at several simulated grid sizes (in-process; communication is metered,
// wall time includes simulation overhead).
func BenchmarkMCMDistByProcs(b *testing.B) {
	g, err := RMAT(G500, 12, 8, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 4, 16} {
		b.Run("p="+itoa(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := MaximumMatching(g, Options{Procs: p, Init: DynamicMindegreeInit}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableIChain drives the full Table I primitive chain (SpMV,
// SELECT, INVERT, SET, PRUNE per BFS iteration) through end-to-end MCM-DIST
// solves on the RMAT scale-16 workload, flat (t=1) against hybrid (t=4).
// The worker pools are real, so on a host with >= 4 cores the hybrid run
// shows measured wall-time speedup; on smaller hosts the sub-benchmarks
// still verify the threaded path end to end. The matchings are bit-identical
// across thread counts (asserted by TestHybridMeasuredSpeedup and the core
// oracle sweep).
func BenchmarkTableIChain(b *testing.B) {
	g, err := RMAT(G500, 16, 8, 5)
	if err != nil {
		b.Fatal(err)
	}
	dg, err := Distribute(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer dg.Close()
	for _, threads := range []int{1, 4} {
		b.Run("t="+itoa(threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dg.MaximumMatching(Options{Init: DynamicMindegreeInit, Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkSolveAllocs measures end-to-end allocations of one full
// MCM-DIST solve on a pre-distributed graph — the hot path a long-lived
// session pays per matching request. EXPERIMENTS.md records the
// before/after numbers for the runtime-context buffer-reuse refactor.
func BenchmarkSolveAllocs(b *testing.B) {
	g, err := RMAT(ER, 10, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	dg, err := Distribute(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dg.MaximumMatching(Options{Init: GreedyInit}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveTraceOverhead measures the cost of the observability plane
// (ISSUE 5) on a full distributed solve: "off" is the baseline with no
// Observe config and must stay within noise of the seed solve; "spans" adds
// per-rank span tracing; "full" adds the iteration time-series and metrics
// registry on top. EXPERIMENTS.md records the enabled overhead (<5%
// target).
func BenchmarkSolveTraceOverhead(b *testing.B) {
	g, err := RMAT(G500, 12, 8, 5)
	if err != nil {
		b.Fatal(err)
	}
	dg, err := Distribute(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer dg.Close()
	for _, tc := range []struct {
		name string
		obs  *Observe
	}{
		{"off", nil},
		{"spans", &Observe{Spans: true}},
		{"full", &Observe{Spans: true, TimeSeries: true, Metrics: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dg.MaximumMatching(Options{Init: GreedyInit, Observe: tc.obs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveObsCollection measures the cost of whole-world observation
// collection on the tcp backend: a 4-endpoint loopback world runs one full
// solve per iteration, once untraced and once with every observability
// plane on — spans, time-series, metrics, plus the solve-end shipping and
// the coordinator-side merge that the single-process benchmark above never
// pays. EXPERIMENTS.md records the collected overhead (<5% target; the
// disabled plane must stay within noise of "off").
func BenchmarkSolveObsCollection(b *testing.B) {
	g, err := RMAT(G500, 12, 8, 5)
	if err != nil {
		b.Fatal(err)
	}
	const procs = 4
	for _, tc := range []struct {
		name string
		obs  *Observe
	}{
		{"off", nil},
		{"collected", &Observe{Spans: true, TimeSeries: true, Metrics: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			opts := Options{Procs: procs, Init: GreedyInit, Observe: tc.obs}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// An endpoint binds one world and one solve; bootstrap and
				// teardown happen off the clock so the measured delta is the
				// observability plane, not socket setup.
				b.StopTimer()
				trs, err := LoopbackTCP(procs)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var wg sync.WaitGroup
				errs := make([]error, procs)
				for r := 1; r < procs; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						_, _, errs[r] = MaximumMatchingOn(trs[r], g, opts)
					}(r)
				}
				_, _, errs[0] = MaximumMatchingOn(trs[0], g, opts)
				wg.Wait()
				b.StopTimer()
				// Close concurrently: BYE drains are mutual, so sequential
				// closes would each wait out the full close timeout.
				var cwg sync.WaitGroup
				for _, tr := range trs {
					cwg.Add(1)
					go func(tr *Transport) {
						defer cwg.Done()
						tr.Close()
					}(tr)
				}
				cwg.Wait()
				for _, e := range errs {
					if e != nil {
						b.Fatal(e)
					}
				}
				b.StartTimer()
			}
		})
	}
}

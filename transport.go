package mcmdist

// The public transport surface: run one MaximumMatching across OS processes
// instead of goroutines. Every participating process builds (or joins) a
// Transport endpoint, then calls MaximumMatchingOn with a bit-identical
// Graph and Options; results are deterministic, so the returned matching is
// identical in every process. See docs/TRANSPORT.md for the contract, the
// wire format and the bootstrap protocol.

import (
	"fmt"

	"mcmdist/internal/core"
	"mcmdist/internal/mpi"
	"mcmdist/internal/mpi/tcpnet"
)

// Transport is one process's endpoint of a multi-process world. The
// in-process simulation used by MaximumMatching is the degenerate case
// (every rank in one process); a TCP endpoint hosts one rank and reaches
// its peers over sockets.
type Transport struct {
	t mpi.Transport
}

// Backend returns the backend name ("inproc", "tcp").
func (t *Transport) Backend() string { return t.t.Name() }

// WorldSize returns the total rank count of the world.
func (t *Transport) WorldSize() int { return t.t.WorldSize() }

// LocalRanks returns the world ranks this process hosts.
func (t *Transport) LocalRanks() []int { return append([]int(nil), t.t.LocalRanks()...) }

// Close tears the endpoint down. Call it after the last MaximumMatchingOn;
// the drain is graceful (bounded by the backend's close timeout), so peers
// still finishing their result gathering are not cut off.
func (t *Transport) Close() error { return t.t.Close() }

// CoordinateTCP bootstraps a procs-rank TCP world as rank 0: listen on addr,
// wait for the procs-1 workers to JoinTCP, and exchange the roster. The
// returned endpoint hosts rank 0.
func CoordinateTCP(addr string, procs int) (*Transport, error) {
	return CoordinateTCPWithConfig(addr, procs, nil)
}

// CoordinateTCPWithConfig is CoordinateTCP with an opaque config blob that
// every worker receives in the roster exchange (cmd/mcmrank workers expect
// an internal job spec there; custom harnesses may ship anything). Nil
// sends no blob.
func CoordinateTCPWithConfig(addr string, procs int, config []byte) (tr *Transport, err error) {
	defer guard(&err)
	rv, err := tcpnet.Listen(addr, tcpnet.Options{})
	if err != nil {
		return nil, err
	}
	n, err := rv.Coordinate(procs, config)
	if err != nil {
		return nil, err
	}
	return &Transport{t: n}, nil
}

// JoinTCP joins a TCP world being coordinated at addr, hosting the given
// rank (1 ≤ rank < world size; rank 0 is the coordinator).
func JoinTCP(addr string, rank int) (tr *Transport, err error) {
	defer guard(&err)
	n, _, err := tcpnet.Join(addr, rank, tcpnet.Options{})
	if err != nil {
		return nil, err
	}
	return &Transport{t: n}, nil
}

// LoopbackTCP builds all procs endpoints of a TCP world over 127.0.0.1 in
// this process — the socket path without the process separation, for tests
// and experiments. Endpoint i hosts rank i; each must be driven from its own
// goroutine and all of them closed.
func LoopbackTCP(procs int) (trs []*Transport, err error) {
	defer guard(&err)
	eps, err := tcpnet.Loopback(procs)
	if err != nil {
		return nil, err
	}
	out := make([]*Transport, len(eps))
	for i, ep := range eps {
		out[i] = &Transport{t: ep}
	}
	return out, nil
}

// MaximumMatchingOn is MaximumMatching over an explicit transport endpoint.
// Every process of the world calls it with its own endpoint and the same
// graph and options (opts.Procs must equal the world size). The full
// matching comes back in every process. Stats cover only the ranks this
// process hosts; Observe data does too on a worker, but on the coordinator
// (the process hosting rank 0) the solve-end collection merges every
// worker's shipped observations — clock-offset aligned — so rank 0's
// Stats.Obs covers the whole world (see ObsReport).
func MaximumMatchingOn(tr *Transport, g *Graph, opts Options) (m *Matching, st *Stats, err error) {
	defer guard(&err)
	if tr == nil {
		return MaximumMatching(g, opts)
	}
	cfg := opts.toConfig()
	procs := opts.Procs
	if opts.GridRows > 0 && opts.GridCols > 0 {
		procs = opts.GridRows * opts.GridCols
	}
	if procs == 0 {
		procs = 1
	}
	if procs != tr.WorldSize() {
		return nil, nil, fmt.Errorf("mcmdist: Options.Procs %d != transport world size %d", procs, tr.WorldSize())
	}
	col := opts.Observe.collector(procs)
	opts.Observe.live(col)
	cfg.Obs = col
	res, err := core.SolveOn(tr.t, g.a, cfg)
	if err != nil {
		return nil, nil, err
	}
	st = statsFromCore(res.Stats, res.PerRank, res.Procs, res.Threads)
	st.Obs = newObsReport(col)
	return fromInternal(res.Matching), st, nil
}

package mcmdist

import (
	"fmt"
	"time"

	"mcmdist/internal/core"
	"mcmdist/internal/grid"
	"mcmdist/internal/matching"
	"mcmdist/internal/mpi"
	"mcmdist/internal/rt"
	"mcmdist/internal/spmat"
)

// DistributedGraph is a graph pre-distributed onto a fixed process grid.
// Distribution (blocking A and Aᵀ across the grid) is the expensive setup
// step; a DistributedGraph pays it once and can then run many matching
// computations — the usage pattern of a sparse solver that factorizes many
// matrices with one nonzero pattern, and the "already distributed" premise
// of the paper's Section VI-E.
//
// Each rank's runtime context (buffer arena, dense scratch, per-op ledger)
// is also cached here and rebound to every solve's fresh in-process world,
// so repeated solves run allocation-quiet: the buffers grown by the first
// solve serve all later ones. Like the rest of the struct this is safe for
// sequential reuse, not for concurrent solves on one DistributedGraph.
//
// A DistributedGraph always solves on the in-process transport backend —
// the cached contexts assume one address space. To span OS processes, use
// MaximumMatchingOn with a Transport endpoint instead (every process
// re-derives the distribution deterministically; see docs/TRANSPORT.md).
type DistributedGraph struct {
	g       *Graph
	procs   int
	side    int
	blocks  [][]*spmat.LocalMatrix
	blocksT [][]*spmat.LocalMatrix
	ctxs    []*rt.Ctx // per-rank runtime contexts, reused across solves
}

// Distribute blocks the graph onto procs simulated ranks (a perfect
// square). The returned DistributedGraph is immutable and safe for
// sequential reuse across solves.
func Distribute(g *Graph, procs int) (dg *DistributedGraph, err error) {
	defer guard(&err)
	if procs <= 0 {
		procs = 1
	}
	side := grid.Square(procs)
	if side*side != procs {
		return nil, fmt.Errorf("mcmdist: Procs = %d is not a perfect square", procs)
	}
	ctxs := make([]*rt.Ctx, procs)
	for r := range ctxs {
		ctxs[r] = rt.New(nil) // bound to each solve's communicator at run time
	}
	return &DistributedGraph{
		g:       g,
		procs:   procs,
		side:    side,
		blocks:  spmat.Distribute2D(g.a, side, side),
		blocksT: spmat.Distribute2D(g.a.Transpose(), side, side),
		ctxs:    ctxs,
	}, nil
}

// Procs returns the number of ranks the graph is distributed over.
func (dg *DistributedGraph) Procs() int { return dg.procs }

// Close releases the per-rank runtime contexts' worker pools. The pools'
// goroutines park between solves (that is what makes repeated solves cheap)
// but are never garbage collected, so a DistributedGraph that ran solves
// with Threads > 1 should be Closed when no more solves are coming. Safe to
// call more than once; the graph remains usable afterwards — the next solve
// simply re-parks fresh workers.
func (dg *DistributedGraph) Close() {
	for _, ctx := range dg.ctxs {
		ctx.Close()
	}
}

// Graph returns the underlying graph.
func (dg *DistributedGraph) Graph() *Graph { return dg.g }

// MaximumMatching runs MCM-DIST on the pre-distributed blocks. opts.Procs
// and opts.Permute are ignored (fixed at distribution time; permute before
// calling Distribute when load balancing is wanted).
func (dg *DistributedGraph) MaximumMatching(opts Options) (m *Matching, st *Stats, err error) {
	defer guard(&err)
	opts.Procs = dg.procs
	cfg := opts.toConfig()
	// Resolve the engine (legacy knobs, "auto" via the cost model) once,
	// against the cached distribution, so every rank runs the same concrete
	// engine and Stats/checkpoints name it.
	cfg, err = core.ResolveEngineConfig(cfg, dg.g.Rows(), dg.g.Cols(), dg.blocks)
	if err != nil {
		return nil, nil, err
	}
	col := opts.Observe.collector(dg.procs)
	opts.Observe.live(col)
	cfg.Obs = col

	perRankStats := make([]*core.Stats, dg.procs)
	perRankMeter := make([]mpi.Meter, dg.procs)
	var mateR, mateC []int64
	err = core.RunDistributedGridCtx(dg.side, dg.side, dg.g.Rows(), dg.g.Cols(), dg.blocks, dg.blocksT,
		cfg, dg.ctxs, func(s *core.Solver) error {
			mater, matec := s.MaximalInit()
			if err := s.RunEngineByName(cfg.Engine, mater, matec); err != nil {
				return err
			}
			fullR := mater.Gather()
			fullC := matec.Gather()
			if s.G.World.Rank() == 0 {
				mateR, mateC = fullR, fullC
			}
			perRankStats[s.G.World.Rank()] = s.Stats
			perRankMeter[s.G.World.Rank()] = s.G.World.MeterSnapshot()
			return nil
		})
	if err != nil {
		return nil, nil, err
	}

	merged := perRankStats[0]
	for _, cs := range perRankStats[1:] {
		merged.MergeMax(cs)
	}
	m = &Matching{MateR: mateR, MateC: mateC}
	st = statsFromCore(merged, perRankMeter, dg.procs, cfg.Threads)
	st.Obs = newObsReport(col)
	return m, st, nil
}

// MaximalMatchingDistributed runs only the distributed maximal-matching
// initializer (the paper's companion algorithms [21]): a fast 1/2-or-better
// approximation without the MCM phases.
func (dg *DistributedGraph) MaximalMatchingDistributed(init Initializer, threads int) (m *Matching, st *Stats, err error) {
	defer guard(&err)
	opts := Options{Procs: dg.procs, Threads: threads, Init: init}
	cfg := opts.toConfig()
	if cfg.Init == core.InitNone {
		return nil, nil, fmt.Errorf("mcmdist: maximal matching needs an initializer other than NoInit")
	}

	perRankStats := make([]*core.Stats, dg.procs)
	perRankMeter := make([]mpi.Meter, dg.procs)
	var mateR, mateC []int64
	err = core.RunDistributedGridCtx(dg.side, dg.side, dg.g.Rows(), dg.g.Cols(), dg.blocks, dg.blocksT,
		cfg, dg.ctxs, func(s *core.Solver) error {
			mater, matec := s.MaximalInit()
			fullR := mater.Gather()
			fullC := matec.Gather()
			if s.G.World.Rank() == 0 {
				mateR, mateC = fullR, fullC
			}
			s.Stats.Cardinality = s.Stats.InitCardinality
			perRankStats[s.G.World.Rank()] = s.Stats
			perRankMeter[s.G.World.Rank()] = s.G.World.MeterSnapshot()
			return nil
		})
	if err != nil {
		return nil, nil, err
	}
	merged := perRankStats[0]
	for _, cs := range perRankStats[1:] {
		merged.MergeMax(cs)
	}
	m = &Matching{MateR: mateR, MateC: mateC}
	return m, statsFromCore(merged, perRankMeter, dg.procs, cfg.Threads), nil
}

// IsMaximal reports whether no edge of g joins two unmatched vertices.
func (g *Graph) IsMaximal(m *Matching) bool {
	return (&matching.Matching{MateR: m.MateR, MateC: m.MateC}).IsMaximal(g.a)
}

// statsFromCore converts merged per-rank core stats into the public form.
func statsFromCore(cs *core.Stats, perRank []mpi.Meter, procs, threads int) *Stats {
	st := &Stats{
		Engine:                cs.Engine,
		Cardinality:           cs.Cardinality,
		InitCardinality:       cs.InitCardinality,
		Phases:                cs.Phases,
		Iterations:            cs.Iterations,
		PushIterations:        cs.PushIterations,
		PullIterations:        cs.PullIterations,
		AugmentedPaths:        cs.AugmentedPaths,
		LevelParallelAugments: cs.LevelParallelAugments,
		PathParallelAugments:  cs.PathParallelAugments,
		Procs:                 procs,
		Threads:               threads,
		Checkpoints:           cs.Checkpoints,
		CheckpointBytes:       cs.CheckpointBytes,
		CheckpointWall:        cs.CheckpointWall,
		WallByOp:              make(map[string]time.Duration),
		CommByOp:              make(map[string]CommStats),
		CommTimeByOp:          make(map[string]CommTime),
	}
	for op, d := range cs.Wall {
		st.WallByOp[string(op)] = d
	}
	for op, m := range cs.Meter {
		st.CommByOp[string(op)] = CommStats{Msgs: m.Msgs, Words: m.Words, Work: m.Work}
	}
	st.PeakFrontier = cs.PeakFrontier
	st.PeakFrontierIteration = cs.PeakFrontierIteration
	for op, ct := range cs.Comm {
		st.CommTimeByOp[string(op)] = CommTime{Total: ct.Total, Exposed: ct.Exposed}
	}
	for _, m := range perRank {
		st.PerRank = append(st.PerRank, CommStats{Msgs: m.Msgs, Words: m.Words, Work: m.Work})
	}
	return st
}

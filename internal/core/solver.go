package core

import (
	"mcmdist/internal/dvec"
	"mcmdist/internal/grid"
	"mcmdist/internal/mpi"
	"mcmdist/internal/parallel"
	"mcmdist/internal/rt"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// Solver is one rank's handle on a distributed matching computation: its
// grid position, its local blocks of A and Aᵀ, the vector layouts, and the
// per-rank statistics.
type Solver struct {
	G    *grid.Grid
	Cfg  Config
	A    *spmat.LocalMatrix // my block of A (global n1 x n2)
	AT   *spmat.LocalMatrix // my block of Aᵀ (global n2 x n1)
	N1   int                // global rows |R|
	N2   int                // global columns |C|
	RowL dvec.Layout        // row-vertex vectors (length n1, row-aligned)
	ColL dvec.Layout        // column-vertex vectors (length n2, col-aligned)
	// Transpose-side layouts: when multiplying with Aᵀ, row-vertex vectors
	// act as the frontier and must be column-aligned, and vice versa.
	RowTL dvec.Layout // length n1, col-aligned
	ColTL dvec.Layout // length n2, row-aligned

	// rowAdj is the local block in row-major (CSR) form, built lazily for
	// the bottom-up SpMV direction (Config.DirectionOptimized).
	rowAdj *spmat.CSC

	Stats *Stats
	tr    *tracker
}

// NewSolver builds a rank's solver from pre-distributed blocks. blocks and
// blocksT are indexed [gridRow][gridCol] and produced by
// spmat.Distribute2D(a, s, s) and spmat.Distribute2D(a.Transpose(), s, s).
func NewSolver(g *grid.Grid, cfg Config, n1, n2 int, a, at *spmat.LocalMatrix) *Solver {
	st := newStats()
	return &Solver{
		G:     g,
		Cfg:   cfg.withDefaults(),
		A:     a,
		AT:    at,
		N1:    n1,
		N2:    n2,
		RowL:  dvec.NewLayout(g, n1, dvec.RowAligned),
		ColL:  dvec.NewLayout(g, n2, dvec.ColAligned),
		RowTL: dvec.NewLayout(g, n1, dvec.ColAligned),
		ColTL: dvec.NewLayout(g, n2, dvec.RowAligned),
		Stats: st,
		tr:    &tracker{ctx: g.RT, stats: st},
	}
}

// countMul computes y = Aᵀ·x over the (plus, times=1) counting semiring:
// y[j] is the number of frontier entries adjacent to column-vertex j. The
// frontier x must be col-aligned over rows (RowTL); the result is
// row-aligned over columns (ColTL). Used by the Karp–Sipser and dynamic
// mindegree initializers to maintain residual degrees.
func (s *Solver) countMul(x *dvec.SparseInt) *dvec.SparseInt {
	g := s.G
	ctx := g.RT
	payload := ctx.GetInts(2 * len(x.Idx))
	for _, gi := range x.Idx {
		payload = append(payload, int64(gi), 1)
	}
	slab := g.Col.AllgathervInto(payload, ctx.GetInts(2*len(x.Idx)*g.PR))
	ctx.PutInts(payload)

	// Per-column hit counters in the persistent scratch; the Parent field
	// carries the count, the epoch stamp replaces zero-initialization.
	sc := ctx.Scratch("count.cols", s.AT.Rows.Len())
	work := 0
	for off := 0; off < len(slab); off += 2 {
		lcol := int(slab[off]) - s.AT.Cols.Lo
		rows := s.AT.M.FindCol(lcol)
		work += len(rows) + 1
		for _, r := range rows {
			if !sc.Has(r) {
				sc.Set(r, semiring.Vertex{Parent: 1})
			} else {
				sc.Val[r].Parent++
			}
		}
	}
	g.World.AddWork(work)
	ctx.PutInts(slab)

	parts := ctx.GetParts(g.PC)
	for r := 0; r < s.AT.Rows.Len(); r++ {
		if !sc.Has(r) {
			continue
		}
		gidx := s.AT.Rows.Lo + r
		_, j := s.ColTL.OwnerCoords(gidx)
		parts[j] = append(parts[j], int64(gidx), sc.Val[r].Parent)
	}
	flat := g.Row.AlltoallvFlat(parts, ctx.GetInts(0))
	ctx.PutParts(parts)
	// Each sender emits its (index, count) pairs in increasing index order;
	// sort the union and sum duplicates arriving from different senders.
	rt.SortRecords(flat, 2)
	out := dvec.NewSparseInt(s.ColTL)
	for off := 0; off < len(flat); off += 2 {
		gi := int(flat[off])
		if n := len(out.Idx); n > 0 && out.Idx[n-1] == gi {
			out.Val[n-1] += flat[off+1]
		} else {
			out.Append(gi, flat[off+1])
		}
	}
	g.World.AddWork(out.LocalNnz())
	ctx.PutInts(flat)
	return out
}

// unmatchedColFrontier builds the initial frontier of a phase: every
// unmatched column with itself as parent and root (Algorithm 2, lines 6-8).
// The scan is multithreaded across the rank's worker pool (the paper's
// OpenMP loops); the ordered append stays serial.
func (s *Solver) unmatchedColFrontier(matec *dvec.Dense) *dvec.SparseV {
	f := dvec.NewSparseV(s.ColL)
	lo := s.ColL.MyRange().Lo
	// Arena-borrowed mask: contents are undefined on borrow, but the
	// parallel scan overwrites every element before the serial pass reads it.
	mask := s.G.RT.GetBools(len(matec.Local))
	parallel.For(len(matec.Local), s.Cfg.Threads, func(clo, chi int) {
		for i := clo; i < chi; i++ {
			mask[i] = matec.Local[i] == semiring.None
		}
	})
	for i, un := range mask {
		if un {
			f.Append(lo+i, semiring.Self(int64(lo+i)))
		}
	}
	s.G.RT.PutBools(mask)
	s.G.World.AddWork(len(matec.Local))
	return f
}

// countUnmatched returns the global number of unmatched entries of a mate
// vector, with the local scan multithreaded. Collective.
func (s *Solver) countUnmatched(mate *dvec.Dense) int {
	local := parallel.MapReduce(len(mate.Local), s.Cfg.Threads, func(lo, hi int) int64 {
		var n int64
		for i := lo; i < hi; i++ {
			if mate.Local[i] == semiring.None {
				n++
			}
		}
		return n
	}, func(a, b int64) int64 { return a + b })
	s.G.World.AddWork(len(mate.Local))
	return int(s.G.World.Allreduce(mpi.OpSum, local))
}

// gatherMeter returns this rank's cumulative meter; used by drivers to
// compute modeled times.
func (s *Solver) gatherMeter() mpi.Meter {
	return s.G.World.MeterSnapshot()
}

package core

import (
	"mcmdist/internal/dvec"
	"mcmdist/internal/grid"
	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
	"mcmdist/internal/parallel"
	"mcmdist/internal/rt"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// countGrain is the minimum expanded (index, 1) pairs per chunk of the
// threaded counting SpMV; below it the multiply runs inline.
const countGrain = 256

// Solver is one rank's handle on a distributed matching computation: its
// grid position, its local blocks of A and Aᵀ, the vector layouts, and the
// per-rank statistics.
type Solver struct {
	G    *grid.Grid
	Cfg  Config
	A    *spmat.LocalMatrix // my block of A (global n1 x n2)
	AT   *spmat.LocalMatrix // my block of Aᵀ (global n2 x n1)
	N1   int                // global rows |R|
	N2   int                // global columns |C|
	RowL dvec.Layout        // row-vertex vectors (length n1, row-aligned)
	ColL dvec.Layout        // column-vertex vectors (length n2, col-aligned)
	// Transpose-side layouts: when multiplying with Aᵀ, row-vertex vectors
	// act as the frontier and must be column-aligned, and vice versa.
	RowTL dvec.Layout // length n1, col-aligned
	ColTL dvec.Layout // length n2, row-aligned

	// rowAdj is the local block in row-major (CSR) form, built lazily for
	// the bottom-up SpMV direction (Config.DirectionOptimized).
	rowAdj *spmat.CSC

	Stats *Stats
	tr    *tracker

	// threadBase is the worker pool's cumulative telemetry at solver
	// construction, so this solve's Stats report a delta even when the pool
	// is a long-lived session context's.
	threadBase parallel.Stats

	// rec is the rank's iteration time-series recorder (nil = off) and
	// iterBase the counter snapshot taken at the top of the current
	// iteration (see obs.go).
	rec      *obs.IterRecorder
	iterBase iterBaseline
}

// NewSolver builds a rank's solver from pre-distributed blocks. blocks and
// blocksT are indexed [gridRow][gridCol] and produced by
// spmat.Distribute2D(a, s, s) and spmat.Distribute2D(a.Transpose(), s, s).
func NewSolver(g *grid.Grid, cfg Config, n1, n2 int, a, at *spmat.LocalMatrix) *Solver {
	st := newStats()
	cfg = cfg.withDefaults()
	// Size the rank's persistent worker pool to the configured thread count:
	// this is where "hybrid MPI+OpenMP" becomes real rather than modeled.
	g.RT.EnsureThreads(cfg.Threads)
	return &Solver{
		G:          g,
		Cfg:        cfg,
		A:          a,
		AT:         at,
		N1:         n1,
		N2:         n2,
		RowL:       dvec.NewLayout(g, n1, dvec.RowAligned),
		ColL:       dvec.NewLayout(g, n2, dvec.ColAligned),
		RowTL:      dvec.NewLayout(g, n1, dvec.ColAligned),
		ColTL:      dvec.NewLayout(g, n2, dvec.RowAligned),
		Stats:      st,
		tr:         &tracker{ctx: g.RT, stats: st},
		threadBase: g.RT.ThreadStats(),
		rec:        cfg.Obs.Recorder(g.World.WorldRank()),
	}
}

// captureThreadStats snapshots the worker pool's telemetry delta since
// solver construction into this solve's Stats. Called at the end of every
// top-level algorithm entry point; later calls simply extend the delta.
func (s *Solver) captureThreadStats() {
	s.Stats.Threading = s.G.RT.ThreadStats().Sub(s.threadBase)
}

// countMul computes y = Aᵀ·x over the (plus, times=1) counting semiring:
// y[j] is the number of frontier entries adjacent to column-vertex j. The
// frontier x must be col-aligned over rows (RowTL); the result is
// row-aligned over columns (ColTL). Used by the Karp–Sipser and dynamic
// mindegree initializers to maintain residual degrees.
func (s *Solver) countMul(x *dvec.SparseInt) *dvec.SparseInt {
	g := s.G
	ctx := g.RT
	payload := ctx.GetInts(2 * len(x.Idx))
	for _, gi := range x.Idx {
		payload = append(payload, int64(gi), 1)
	}
	slab := g.Col.AllgathervInto(payload, ctx.GetInts(2*len(x.Idx)*g.PR))
	ctx.PutInts(payload)

	// Per-column hit counters in the persistent scratch; the Parent field
	// carries the count, the epoch stamp replaces zero-initialization. Like
	// spmv.Mul, each pool worker counts its run of slab entries into a
	// private shard; integer addition is associative and commutative, so
	// summing the shards gives the serial counts exactly.
	pool := ctx.Pool()
	nent := len(slab) / 2
	width := pool.Width(nent, countGrain)
	shards := ctx.ScratchShards("count.cols", width, s.AT.Rows.Len())
	sc := shards[0]
	if width <= 1 {
		g.World.AddWork(s.countRange(slab, 0, nent, sc))
	} else {
		works := make([]int64, width)
		pool.ForChunked(nent, countGrain, func(w, lo, hi int) {
			works[w] = int64(s.countRange(slab, lo, hi, shards[w]))
		})
		var work int64
		for _, wk := range works {
			work += wk
		}
		g.World.AddWork(int(work))
		pool.For(s.AT.Rows.Len(), func(lo, hi int) {
			for sh := 1; sh < width; sh++ {
				shard := shards[sh]
				for r := lo; r < hi; r++ {
					if !shard.Has(r) {
						continue
					}
					if !sc.Has(r) {
						sc.Set(r, shard.Val[r])
					} else {
						sc.Val[r].Parent += shard.Val[r].Parent
					}
				}
			}
		})
	}
	ctx.PutInts(slab)

	parts := ctx.GetParts(g.PC)
	for r := 0; r < s.AT.Rows.Len(); r++ {
		if !sc.Has(r) {
			continue
		}
		gidx := s.AT.Rows.Lo + r
		_, j := s.ColTL.OwnerCoords(gidx)
		parts[j] = append(parts[j], int64(gidx), sc.Val[r].Parent)
	}
	flat := g.Row.AlltoallvFlat(parts, ctx.GetInts(0))
	ctx.PutParts(parts)
	// Each sender emits its (index, count) pairs in increasing index order;
	// sort the union and sum duplicates arriving from different senders.
	ctx.SortRecords(flat, 2)
	out := dvec.NewSparseInt(s.ColTL)
	for off := 0; off < len(flat); off += 2 {
		gi := int(flat[off])
		if n := len(out.Idx); n > 0 && out.Idx[n-1] == gi {
			out.Val[n-1] += flat[off+1]
		} else {
			out.Append(gi, flat[off+1])
		}
	}
	g.World.AddWork(out.LocalNnz())
	ctx.PutInts(flat)
	return out
}

// countRange counts slab (index, 1) pairs [lo, hi) into sc's Parent field
// and returns the work performed. Concurrent calls must target distinct
// scratch shards.
func (s *Solver) countRange(slab []int64, lo, hi int, sc *rt.Scratch) int {
	work := 0
	for k := lo; k < hi; k++ {
		lcol := int(slab[2*k]) - s.AT.Cols.Lo
		rows := s.AT.M.FindCol(lcol)
		work += len(rows) + 1
		for _, r := range rows {
			if !sc.Has(r) {
				sc.Set(r, semiring.Vertex{Parent: 1})
			} else {
				sc.Val[r].Parent++
			}
		}
	}
	return work
}

// fillFiltered runs the classic two-pass parallel compaction: count the
// selected indices per chunk, prefix-sum the counts, then fill each chunk's
// output run — emitting indices in increasing order without a serial append
// pass. pred(i) decides selection; emit(o, i) writes element i at output
// slot o. Returns the number selected.
func fillFiltered(pool *parallel.Pool, n int, pred func(i int) bool,
	alloc func(total int), emit func(o, i int)) int {
	bounds := pool.Chunks(n, parallel.DefaultMinChunk)
	w := len(bounds) - 1
	offsets := make([]int, w+1)
	pool.ForChunked(n, parallel.DefaultMinChunk, func(wi, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		offsets[wi+1] = c
	})
	for i := 1; i <= w; i++ {
		offsets[i] += offsets[i-1]
	}
	total := offsets[w]
	alloc(total)
	pool.ForChunked(n, parallel.DefaultMinChunk, func(wi, lo, hi int) {
		o := offsets[wi]
		for i := lo; i < hi; i++ {
			if pred(i) {
				emit(o, i)
				o++
			}
		}
	})
	return total
}

// unmatchedColFrontier builds the initial frontier of a phase: every
// unmatched column with itself as parent and root (Algorithm 2, lines 6-8).
// Both the scan and the ordered fill run across the rank's worker pool (the
// paper's OpenMP loops) via the two-pass compaction.
func (s *Solver) unmatchedColFrontier(matec *dvec.Dense) *dvec.SparseV {
	f := dvec.NewSparseV(s.ColL)
	lo := s.ColL.MyRange().Lo
	fillFiltered(s.G.RT.Pool(), len(matec.Local),
		func(i int) bool { return matec.Local[i] == semiring.None },
		func(total int) {
			f.Idx = make([]int, total)
			f.Val = make([]semiring.Vertex, total)
		},
		func(o, i int) {
			f.Idx[o] = lo + i
			f.Val[o] = semiring.Self(int64(lo + i))
		})
	s.G.World.AddWork(len(matec.Local))
	return f
}

// countUnmatched returns the global number of unmatched entries of a mate
// vector, with the local scan multithreaded. Collective.
func (s *Solver) countUnmatched(mate *dvec.Dense) int {
	local := s.G.RT.Pool().MapReduce(len(mate.Local), func(lo, hi int) int64 {
		var n int64
		for i := lo; i < hi; i++ {
			if mate.Local[i] == semiring.None {
				n++
			}
		}
		return n
	}, func(a, b int64) int64 { return a + b })
	s.G.World.AddWork(len(mate.Local))
	return int(s.G.World.Allreduce(mpi.OpSum, local))
}

// gatherMeter returns this rank's cumulative meter; used by drivers to
// compute modeled times.
func (s *Solver) gatherMeter() mpi.Meter {
	return s.G.World.MeterSnapshot()
}

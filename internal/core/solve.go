package core

import (
	"fmt"
	"sync"

	"mcmdist/internal/grid"
	"mcmdist/internal/matching"
	"mcmdist/internal/mpi"
	"mcmdist/internal/rmat"
	"mcmdist/internal/rt"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// Result reports a completed distributed matching run.
type Result struct {
	// Matching holds the final mate vectors in the caller's (unpermuted)
	// index space.
	Matching *matching.Matching
	// Stats is the rank-maximum merge of per-rank measurements with the
	// SPMD counters (phases, iterations, cardinality).
	Stats *Stats
	// PerRank holds every rank's final cumulative communication meter.
	PerRank []mpi.Meter
	// PerRankComm holds every rank's split-phase communication-time ledger:
	// total request-in-flight wall time vs the exposed part the rank
	// actually spent blocked. The gap is the latency hidden behind local
	// computation by the overlapped schedules.
	PerRankComm []mpi.CommTimes
	// Procs and Threads echo the effective configuration.
	Procs, Threads int
}

// Solve computes a maximum cardinality matching of the bipartite graph a on
// cfg.Procs simulated distributed-memory ranks. It distributes the matrix on
// a square process grid, runs the configured maximal-matching initializer
// and then MCM-DIST, and returns the matching with run statistics.
func Solve(a *spmat.CSC, cfg Config) (*Result, error) {
	return SolveOn(nil, a, cfg)
}

// SolveOn is Solve over an explicit transport endpoint, the entry point that
// lets one solve span OS processes. Every participating process calls it
// with its own endpoint and a bit-identical (a, cfg) pair: distribution,
// permutation and seeding are deterministic, so each process derives the
// same global blocks and runs only the ranks its endpoint hosts. The final
// mate vectors are allgathered, so every process returns the full Matching;
// Stats, PerRank and PerRankComm cover only locally hosted ranks (remote
// entries stay zero — observability is per-process, see docs/TRANSPORT.md).
// A nil tr means the in-process backend hosting all cfg.Procs ranks, which
// is exactly Solve.
func SolveOn(tr mpi.Transport, a *spmat.CSC, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	pr, pc, err := cfg.gridShape()
	if err != nil {
		return nil, err
	}
	cfg.Procs = pr * pc

	// Load balancing (Section IV-A): random row/column permutation.
	work := a
	var rowPerm, colPerm []int
	if cfg.Permute {
		rowPerm = rmat.RandomPermutation(a.NRows, cfg.Seed*2+1)
		colPerm = rmat.RandomPermutation(a.NCols, cfg.Seed*2+2)
		work = a.Permute(rowPerm, colPerm)
	}

	blocks := spmat.Distribute2D(work, pr, pc)
	blocksT := spmat.Distribute2D(work.Transpose(), pr, pc)

	res, err := runAttemptGrid(tr, pr, pc, work.NRows, work.NCols, blocks, blocksT, cfg, nil)
	if err != nil {
		return nil, err
	}
	if cfg.Permute {
		res.Matching = unpermute(res.Matching, rowPerm, colPerm)
	}
	return res, nil
}

// SolveEndpoints runs one solve over every endpoint of a pre-built
// transport set concurrently in this process — the loopback form of a
// multi-process deployment, used by tests and the conformance suite. It
// returns one Result per endpoint, in eps order, and the first error. The
// caller retains ownership of the endpoints (and must Close them).
func SolveEndpoints(eps []mpi.Transport, a *spmat.CSC, cfg Config) ([]*Result, error) {
	results := make([]*Result, len(eps))
	errs := make([]error, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep mpi.Transport) {
			defer wg.Done()
			results[i], errs[i] = SolveOn(ep, a, cfg)
		}(i, ep)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// runAttemptGrid runs one complete solve attempt on pre-distributed blocks:
// launch the world (under the configured fault plane and watchdog), restore
// or initialize the mate vectors, run the MCM phases, gather the result and
// merge statistics. SolveOn calls it once; SolveRecoverableGrid calls it in
// a retry loop, setting cfg.Resume between attempts. A nil tr runs on the
// in-process backend; otherwise fn runs only on tr's locally hosted ranks
// and the mate vectors are captured on the lowest of them (they are
// allgathered, so every rank holds the full vectors).
func runAttemptGrid(tr mpi.Transport, pr, pc, n1, n2 int, blocks, blocksT [][]*spmat.LocalMatrix,
	cfg Config, ctxs []*rt.Ctx) (*Result, error) {
	// Pin the engine before anything else: the resolution is deterministic
	// from SPMD-replicated inputs, so every process of a multi-process solve
	// derives the same choice, and checkpoint hashes see the concrete name.
	cfg, err := ResolveEngineConfig(cfg, n1, n2, blocks)
	if err != nil {
		return nil, err
	}
	eng, ok := EngineByName(cfg.Engine)
	if !ok {
		return nil, fmt.Errorf("core: engine %q is not registered (have %v)", cfg.Engine, EngineNames())
	}
	if tr == nil {
		tr = mpi.NewInproc(cfg.Procs)
	}
	if tr.WorldSize() != cfg.Procs {
		return nil, fmt.Errorf("core: transport world size %d != configured procs %d", tr.WorldSize(), cfg.Procs)
	}
	localRoot := tr.LocalRanks()[0]
	obsAttach(tr, cfg.Obs)
	perRankStats := make([]*Stats, cfg.Procs)
	perRankMeter := make([]mpi.Meter, cfg.Procs)
	perRankComm := make([]mpi.CommTimes, cfg.Procs)
	var mateR, mateC []int64

	w, err := mpi.RunTransport(mpi.RunConfig{Faults: cfg.Fault, WatchdogTimeout: cfg.WatchdogTimeout, Compress: cfg.Compress},
		tr, func(c *mpi.Comm) error {
			if cfg.Obs != nil {
				// Capture the rank's final meter on every exit path — success
				// or unwind — so shipped observations and flight dumps carry
				// what the rank had moved when the world ended.
				defer func() {
					cfg.Obs.SetRankMeter(c.Rank(), obsMeterPoints(c.MeterSnapshot()))
				}()
			}
			ctx := newRankCtx(c, cfg, ctxs, c.Rank())
			if ctxs == nil {
				defer ctx.Close() // fresh context: release the worker pool with the rank
			}
			g, err := grid.NewWithRT(c, pr, pc, ctx)
			if err != nil {
				return err
			}
			s := NewSolver(g, cfg, n1, n2, blocks[g.MyRow][g.MyCol], blocksT[g.MyRow][g.MyCol])
			mater, matec, err := s.InitOrRestore()
			if err != nil {
				return err
			}
			if err := s.RunEngine(eng, mater, matec); err != nil {
				return err
			}

			fullR := mater.Gather()
			fullC := matec.Gather()
			if c.Rank() == localRoot {
				mateR, mateC = fullR, fullC
			}
			perRankStats[c.Rank()] = s.Stats
			perRankMeter[c.Rank()] = s.gatherMeter()
			perRankComm[c.Rank()] = c.CommTimes()
			return nil
		})
	if w != nil {
		cfg.Obs.AddEvents(w.ObsEvents())
	}
	if err != nil {
		return nil, err
	}
	obsFinish(tr, cfg.Obs)

	// Merge the locally hosted ranks' stats (on the in-process backend that
	// is every rank; remote ranks report in their own process).
	var merged *Stats
	for _, st := range perRankStats {
		if st == nil {
			continue
		}
		if merged == nil {
			merged = st
			continue
		}
		merged.MergeMax(st)
	}
	return &Result{
		Matching:    &matching.Matching{MateR: mateR, MateC: mateC},
		Stats:       merged,
		PerRank:     perRankMeter,
		PerRankComm: perRankComm,
		Procs:       cfg.Procs,
		Threads:     cfg.Threads,
	}, nil
}

// unpermute maps a matching of P·A·Q back to A's index space: if row i was
// sent to rowPerm[i] and column j to colPerm[j], then the matching of the
// permuted matrix at (rowPerm[i], colPerm[j]) corresponds to (i, j).
func unpermute(m *matching.Matching, rowPerm, colPerm []int) *matching.Matching {
	out := matching.NewMatching(len(rowPerm), len(colPerm))
	colInv := make([]int, len(colPerm))
	for j, pj := range colPerm {
		colInv[pj] = j
	}
	for i, pi := range rowPerm {
		pj := m.MateR[pi]
		if pj == semiring.None {
			continue
		}
		out.Match(i, colInv[pj])
	}
	return out
}

// SolveSerialEquivalent returns the oracle cardinality via Hopcroft–Karp,
// for callers wanting a one-line cross-check of Solve's result.
func SolveSerialEquivalent(a *spmat.CSC) int {
	return matching.HopcroftKarp(a, nil).Cardinality()
}

// String renders a compact one-line summary of the result.
func (r *Result) String() string {
	return fmt.Sprintf("|M|=%d (init %d) phases=%d iters=%d p=%d t=%d",
		r.Stats.Cardinality, r.Stats.InitCardinality, r.Stats.Phases,
		r.Stats.Iterations, r.Procs, r.Threads)
}

// RunDistributed launches side*side ranks on a square grid over
// pre-distributed matrix blocks and invokes fn with each rank's solver.
// It is the low-level entry point used by benchmarks and by callers that
// manage mate vectors themselves; Solve wraps it with distribution and
// result gathering.
func RunDistributed(side, n1, n2 int, blocks, blocksT [][]*spmat.LocalMatrix,
	cfg Config, fn func(*Solver) error) error {
	return RunDistributedGrid(side, side, n1, n2, blocks, blocksT, cfg, fn)
}

// RunDistributedGrid is RunDistributed for an arbitrary pr x pc grid.
// Both blocks and blocksT (the transposed matrix) must be distributed as
// pr x pc.
func RunDistributedGrid(pr, pc, n1, n2 int, blocks, blocksT [][]*spmat.LocalMatrix,
	cfg Config, fn func(*Solver) error) error {
	return RunDistributedGridCtx(pr, pc, n1, n2, blocks, blocksT, cfg, nil, fn)
}

// RunDistributedGridCtx is RunDistributedGrid with caller-supplied runtime
// contexts, one per rank (indexed by world rank). A session that solves
// repeatedly on the same distributed graph passes the same contexts every
// time, so the arena and scratch warmed up by one solve serve the next. A
// nil ctxs builds fresh contexts, honoring cfg.DisableReuse.
func RunDistributedGridCtx(pr, pc, n1, n2 int, blocks, blocksT [][]*spmat.LocalMatrix,
	cfg Config, ctxs []*rt.Ctx, fn func(*Solver) error) error {
	w, err := mpi.RunWith(mpi.RunConfig{Faults: cfg.Fault, WatchdogTimeout: cfg.WatchdogTimeout, Compress: cfg.Compress},
		pr*pc, func(c *mpi.Comm) error {
			ctx := newRankCtx(c, cfg, ctxs, c.Rank())
			if ctxs == nil {
				// Fresh context: its worker pool dies with the rank. A caller-
				// supplied context keeps its pool warm across solves; the caller
				// releases it (e.g. DistributedGraph.Close).
				defer ctx.Close()
			}
			g, err := grid.NewWithRT(c, pr, pc, ctx)
			if err != nil {
				return err
			}
			s := NewSolver(g, cfg, n1, n2, blocks[g.MyRow][g.MyCol], blocksT[g.MyRow][g.MyCol])
			return fn(s)
		})
	if w != nil {
		cfg.Obs.AddEvents(w.ObsEvents())
	}
	return err
}

// newRankCtx picks the runtime context for one rank: the caller-supplied
// one when present, otherwise a fresh context that is enabled or disabled
// per cfg.DisableReuse.
func newRankCtx(c *mpi.Comm, cfg Config, ctxs []*rt.Ctx, rank int) *rt.Ctx {
	var ctx *rt.Ctx
	switch {
	case ctxs != nil:
		ctx = ctxs[rank]
	case cfg.DisableReuse:
		ctx = rt.NewDisabled(c)
	default:
		ctx = rt.New(c)
	}
	ctx.SetOverlap(!cfg.DisableOverlap)
	// Attach (or, for a reused session context, detach) the rank's span
	// tracer on both the runtime context (op spans via Track) and the comm
	// (collective/RMA/fault spans inside internal/mpi).
	tr := cfg.Obs.Tracer(c.Rank())
	ctx.SetTracer(tr)
	c.SetTracer(tr)
	return ctx
}

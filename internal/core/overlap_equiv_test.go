package core

// Overlap on/off equivalence: the split-phase schedules (overlapped SpMV
// expand/fold, progressive dvec exchanges, the pipelined frontier count)
// must be invisible to the algorithm — bit-identical mate vectors and
// identical per-rank communication meters whether compute/communication
// overlap is enabled or forced off (Config.DisableOverlap). Any divergence
// means an overlapped consumer depended on arrival order or a request
// metered differently from its blocking counterpart.

import (
	"fmt"
	"math/rand"
	"testing"

	"mcmdist/internal/matching"
	"mcmdist/internal/rmat"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// solveOverlapBothWays runs cfg with overlap on and off and asserts
// bit-identical matchings, oracle agreement, and identical per-rank meters.
func solveOverlapBothWays(t *testing.T, name string, a *spmat.CSC, cfg Config) {
	t.Helper()
	want := matching.HopcroftKarp(a, nil).Cardinality()
	on := mustSolve(t, a, cfg)
	cfgOff := cfg
	cfgOff.DisableOverlap = true
	off := mustSolve(t, a, cfgOff)
	if on.Stats.Cardinality != want {
		t.Fatalf("%s: cardinality %d, oracle %d", name, on.Stats.Cardinality, want)
	}
	for i := range on.Matching.MateR {
		if on.Matching.MateR[i] != off.Matching.MateR[i] {
			t.Fatalf("%s: MateR[%d] overlapped %d, blocking %d",
				name, i, on.Matching.MateR[i], off.Matching.MateR[i])
		}
	}
	for j := range on.Matching.MateC {
		if on.Matching.MateC[j] != off.Matching.MateC[j] {
			t.Fatalf("%s: MateC[%d] overlapped %d, blocking %d",
				name, j, on.Matching.MateC[j], off.Matching.MateC[j])
		}
	}
	for r := range on.PerRank {
		if on.PerRank[r] != off.PerRank[r] {
			t.Fatalf("%s rank %d: overlapped meter %+v, blocking %+v",
				name, r, on.PerRank[r], off.PerRank[r])
		}
	}
}

func TestOverlapOnOffEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 4; trial++ {
		nr, nc := 10+rng.Intn(40), 10+rng.Intn(40)
		a := randomBipartite(rng, nr, nc, rng.Intn(4*(nr+nc))+nr)
		for _, procs := range []int{1, 4, 9} {
			for _, init := range []Init{InitNone, InitGreedy} {
				name := fmt.Sprintf("trial %d p=%d init=%v", trial, procs, init)
				solveOverlapBothWays(t, name, a, Config{Procs: procs, Init: init})
			}
		}
	}
}

func TestOverlapOnOffEquivalenceVariants(t *testing.T) {
	// The schedules that diverge most from their blocking forms: every
	// initializer, the randomized semirings, tree grafting (its own
	// pipelined frontier count), direction optimization (MulPull's dual
	// concurrent gathers), permutation, and rectangular grids where the
	// row and column communicators have different sizes.
	rng := rand.New(rand.NewSource(18))
	graphs := []struct {
		name string
		a    *spmat.CSC
	}{
		{"random", randomBipartite(rng, 60, 60, 260)},
		{"g500", rmat.MustGenerate(rmat.G500, 7, 4, 33)},
		{"er", rmat.MustGenerate(rmat.ER, 7, 4, 33)},
	}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"karp-sipser", Config{Procs: 4, Init: InitKarpSipser}},
		{"dyn-mindegree", Config{Procs: 4, Init: InitDynMinDegree}},
		{"rand-root", Config{Procs: 4, AddOp: semiring.RandRoot}},
		{"rand-parent", Config{Procs: 4, AddOp: semiring.RandParent}},
		{"graft-permuted", Config{Procs: 4, Init: InitDynMinDegree, TreeGrafting: true, Permute: true, Seed: 6}},
		{"dir-opt", Config{Procs: 4, Init: InitGreedy, DirectionOptimized: true}},
		{"dir-opt-ks", Config{Procs: 4, Init: InitKarpSipser, DirectionOptimized: true, Permute: true, Seed: 6}},
		{"grid-2x3", Config{GridRows: 2, GridCols: 3, Init: InitDynMinDegree, Permute: true, Seed: 6}},
		{"grid-1x4", Config{GridRows: 1, GridCols: 4, Init: InitGreedy}},
		{"grid-3x2", Config{GridRows: 3, GridCols: 2, Init: InitGreedy, TreeGrafting: true}},
	}
	for _, g := range graphs {
		for _, c := range configs {
			solveOverlapBothWays(t, g.name+"/"+c.name, g.a, c.cfg)
		}
	}
}

package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"mcmdist/internal/dvec"
	"mcmdist/internal/semiring"
)

// checkpointMagic opens every encoded checkpoint (format version 1).
const checkpointMagic = "MCMCKPT1"

// Checkpoint is a phase-boundary snapshot of a distributed matching run.
// MCM-DIST's invariant (the observation this subsystem exploits) is that
// between augmentation phases the mate vectors always encode a valid
// matching — the same property that lets the paper seed MCM from any
// maximal matching — so a solve killed mid-phase can restart from the last
// snapshot and lose at most one phase of work. The vectors are stored in
// the solver's (possibly permuted) global index space.
type Checkpoint struct {
	Phase       int    // augmentation phases completed when taken (0 = just initialized)
	Cardinality int    // matching cardinality at the snapshot
	ConfigHash  uint64 // hash binding the snapshot to its Config and problem shape
	N1, N2      int    // global rows and columns
	MateR       []int64
	MateC       []int64
}

// EncodedSize returns the byte length Encode will produce for an n1 x n2
// problem: magic, five uint64 header words, then the two mate vectors.
func EncodedSize(n1, n2 int) int {
	return len(checkpointMagic) + 5*8 + 8*(n1+n2)
}

// Encode serializes the checkpoint into the fixed little-endian format
// (magic, header, MateR, MateC) — suitable for a file or an object store.
func (ck *Checkpoint) Encode() []byte {
	buf := make([]byte, 0, EncodedSize(ck.N1, ck.N2))
	buf = append(buf, checkpointMagic...)
	for _, v := range []uint64{ck.ConfigHash, uint64(ck.Phase), uint64(ck.Cardinality), uint64(ck.N1), uint64(ck.N2)} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	for _, v := range ck.MateR {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	for _, v := range ck.MateC {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

// DecodeCheckpoint parses an Encode result, validating magic and length.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(checkpointMagic)+5*8 {
		return nil, fmt.Errorf("core: checkpoint too short (%d bytes)", len(data))
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("core: bad checkpoint magic %q", data[:len(checkpointMagic)])
	}
	off := len(checkpointMagic)
	word := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	ck := &Checkpoint{}
	ck.ConfigHash = word()
	ck.Phase = int(word())
	ck.Cardinality = int(word())
	ck.N1 = int(word())
	ck.N2 = int(word())
	if want := EncodedSize(ck.N1, ck.N2); len(data) != want {
		return nil, fmt.Errorf("core: checkpoint length %d, want %d for %dx%d", len(data), want, ck.N1, ck.N2)
	}
	ck.MateR = make([]int64, ck.N1)
	for i := range ck.MateR {
		ck.MateR[i] = int64(word())
	}
	ck.MateC = make([]int64, ck.N2)
	for i := range ck.MateC {
		ck.MateC[i] = int64(word())
	}
	return ck, nil
}

// CheckpointHash fingerprints the parts of the configuration that determine
// the solve trajectory for an n1 x n2 problem, so a restore onto a changed
// configuration is rejected instead of silently diverging. AddOp is a
// function value and deliberately excluded; callers that vary the semiring
// across restarts must carry that discipline themselves.
func (c Config) CheckpointHash(n1, n2 int) uint64 {
	c = c.withDefaults()
	h := fnv.New64a()
	fmt.Fprintf(h, "v2|%d|%d|%d|%d|%d|%v|%v|%v|%g|%d|%v|%d|%d",
		n1, n2, c.Procs, int(c.Init), int(c.Augment),
		c.DisablePrune, c.TreeGrafting, c.DirectionOptimized,
		c.PullThreshold, int(c.Direction), c.Permute, c.Seed, c.GridRows*1000+c.GridCols)
	return h.Sum64()
}

// maybeCheckpoint takes a phase-boundary checkpoint when the configuration
// asks for one: after the initializer (phase 0) and after every
// CheckpointEvery-th augmentation phase. Collective — the gate is
// SPMD-replicated, every rank joins the gathers, and rank 0 packages the
// snapshot and delivers it to OnCheckpoint. All ranks account the overhead
// in Stats (Checkpoints, CheckpointBytes, CheckpointWall).
func (s *Solver) maybeCheckpoint(phase int, mater, matec *dvec.Dense) {
	if s.Cfg.CheckpointEvery <= 0 || s.Cfg.OnCheckpoint == nil {
		return
	}
	if phase != 0 && phase%s.Cfg.CheckpointEvery != 0 {
		return
	}
	begin := time.Now()
	s.tr.track(OpOther, func() {
		card := s.N2 - s.countUnmatched(matec)
		fullR := mater.Gather()
		fullC := matec.Gather()
		if s.G.World.Rank() == 0 {
			s.Cfg.OnCheckpoint(&Checkpoint{
				Phase:       phase,
				Cardinality: card,
				ConfigHash:  s.Cfg.CheckpointHash(s.N1, s.N2),
				N1:          s.N1,
				N2:          s.N2,
				MateR:       fullR,
				MateC:       fullC,
			})
		}
	})
	s.Stats.Checkpoints++
	s.Stats.CheckpointBytes += int64(EncodedSize(s.N1, s.N2))
	s.Stats.CheckpointWall += time.Since(begin)
	s.G.RT.Tracer().Instant("checkpoint", int64(phase))
}

// RestoreMates rebuilds this rank's mate-vector pieces from a checkpoint,
// the restart half of the phase-boundary protocol. The snapshot's shape and
// config hash must match; the restored cardinality becomes this attempt's
// InitCardinality (the checkpoint plays the role of the initializer).
func (s *Solver) RestoreMates(ck *Checkpoint) (mater, matec *dvec.Dense, err error) {
	if ck.N1 != s.N1 || ck.N2 != s.N2 {
		return nil, nil, fmt.Errorf("core: checkpoint is %dx%d, solver is %dx%d", ck.N1, ck.N2, s.N1, s.N2)
	}
	if len(ck.MateR) != ck.N1 || len(ck.MateC) != ck.N2 {
		return nil, nil, fmt.Errorf("core: checkpoint mate vectors are %dx%d, header says %dx%d",
			len(ck.MateR), len(ck.MateC), ck.N1, ck.N2)
	}
	if want := s.Cfg.CheckpointHash(s.N1, s.N2); ck.ConfigHash != want {
		return nil, nil, fmt.Errorf("core: checkpoint config hash %#x does not match current config %#x", ck.ConfigHash, want)
	}
	s.tr.track(OpInit, func() {
		mater = dvec.NewDenseFrom(s.RowL, ck.MateR)
		matec = dvec.NewDenseFrom(s.ColL, ck.MateC)
	})
	s.Stats.InitCardinality = ck.Cardinality
	return mater, matec, nil
}

// InitOrRestore is the attempt entry point of a recoverable solve: restore
// from Config.Resume when one is set, otherwise run the configured maximal
// initializer and take the phase-0 checkpoint. Collective.
func (s *Solver) InitOrRestore() (mater, matec *dvec.Dense, err error) {
	if s.Cfg.Resume != nil {
		return s.RestoreMates(s.Cfg.Resume)
	}
	mater, matec = s.MaximalInit()
	s.maybeCheckpoint(0, mater, matec)
	return mater, matec, nil
}

// countMatched returns how many entries of a full mate vector are matched
// (used to cross-check a checkpoint's recorded cardinality).
func countMatched(mate []int64) int {
	n := 0
	for _, v := range mate {
		if v != semiring.None {
			n++
		}
	}
	return n
}

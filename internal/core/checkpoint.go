package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"mcmdist/internal/dvec"
	"mcmdist/internal/semiring"
	"mcmdist/internal/wire"
)

// checkpointMagic opens every encoded checkpoint. Format version 2: the
// header gained the engine id (recovery refuses cross-engine resumes) and
// the mate vectors are stored delta-varint compressed (internal/wire, the
// same codec the tcp transport applies to id streams) instead of as raw
// 8-byte words — mate vectors are mostly sorted-ish small integers with
// long None runs, so the payload typically shrinks 4-6x. Version 1 blobs
// ("MCMCKPT1") are rejected loudly by DecodeCheckpoint.
const checkpointMagic = "MCMCKPT2"

// checkpointMagicV1 is recognized only to produce a clear version error.
const checkpointMagicV1 = "MCMCKPT1"

// Checkpoint is a phase-boundary snapshot of a distributed matching run.
// MCM-DIST's invariant (the observation this subsystem exploits) is that
// between augmentation phases the mate vectors always encode a valid
// matching — the same property that lets the paper seed MCM from any
// maximal matching — so a solve killed mid-phase can restart from the last
// snapshot and lose at most one phase of work. The auction engine keeps the
// same invariant at bidding-round boundaries (prices reset to zero on
// restore, which any matching satisfies). The vectors are stored in the
// solver's (possibly permuted) global index space.
type Checkpoint struct {
	Phase       int    // augmentation phases (or auction rounds) completed when taken (0 = just initialized)
	Cardinality int    // matching cardinality at the snapshot
	ConfigHash  uint64 // hash binding the snapshot to its Config and problem shape
	Engine      string // registry name of the engine that produced the snapshot
	N1, N2      int    // global rows and columns
	MateR       []int64
	MateC       []int64
}

// EncodedSize returns the exact byte length Encode produces for this
// checkpoint: magic, five uint64 header words, the engine id, then the two
// delta-varint mate payloads, each with a uvarint byte-length prefix.
// Unlike the fixed v1 size it depends on the vector contents, which is the
// point of the compression.
func (ck *Checkpoint) EncodedSize() int {
	rlen := wire.EncodedLen(ck.MateR)
	clen := wire.EncodedLen(ck.MateC)
	return len(checkpointMagic) + 5*8 +
		uvarintSize(uint64(len(ck.Engine))) + len(ck.Engine) +
		uvarintSize(uint64(rlen)) + rlen +
		uvarintSize(uint64(clen)) + clen
}

// uvarintSize is the encoded size of one uvarint, without writing it.
func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Encode serializes the checkpoint into the little-endian v2 format
// (magic, header, engine id, compressed MateR, compressed MateC) —
// suitable for a file or an object store.
func (ck *Checkpoint) Encode() []byte {
	buf := make([]byte, 0, ck.EncodedSize())
	buf = append(buf, checkpointMagic...)
	for _, v := range []uint64{ck.ConfigHash, uint64(ck.Phase), uint64(ck.Cardinality), uint64(ck.N1), uint64(ck.N2)} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.Engine)))
	buf = append(buf, ck.Engine...)
	for _, mate := range [][]int64{ck.MateR, ck.MateC} {
		buf = binary.AppendUvarint(buf, uint64(wire.EncodedLen(mate)))
		buf = wire.AppendEncoded(buf, mate)
	}
	return buf
}

// DecodeCheckpoint parses an Encode result, validating the magic, every
// length prefix, and exact consumption: a blob that is truncated, padded,
// or bit-flipped inside a varint decodes to an error, never to a silently
// wrong matching (the recovery driver additionally verifies restored
// matchings against the matrix).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) >= len(checkpointMagicV1) && string(data[:len(checkpointMagicV1)]) == checkpointMagicV1 {
		return nil, fmt.Errorf("core: checkpoint is format version 1 (%q), which this version no longer reads; re-take the checkpoint", checkpointMagicV1)
	}
	if len(data) < len(checkpointMagic)+5*8 {
		return nil, fmt.Errorf("core: checkpoint too short (%d bytes)", len(data))
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("core: bad checkpoint magic %q", data[:len(checkpointMagic)])
	}
	off := len(checkpointMagic)
	word := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	ck := &Checkpoint{}
	ck.ConfigHash = word()
	ck.Phase = int(word())
	ck.Cardinality = int(word())
	ck.N1 = int(word())
	ck.N2 = int(word())
	if ck.N1 < 0 || ck.N2 < 0 {
		return nil, fmt.Errorf("core: checkpoint header claims negative shape %dx%d", ck.N1, ck.N2)
	}
	rest := data[off:]
	elen, n := binary.Uvarint(rest)
	if n <= 0 || elen > uint64(len(rest)-n) {
		return nil, fmt.Errorf("core: checkpoint engine id truncated")
	}
	ck.Engine = string(rest[n : n+int(elen)])
	rest = rest[n+int(elen):]

	for i, want := range []int{ck.N1, ck.N2} {
		blen, n := binary.Uvarint(rest)
		if n <= 0 || blen > uint64(len(rest)-n) {
			return nil, fmt.Errorf("core: checkpoint mate vector %d length prefix truncated", i)
		}
		vals, err := wire.Decode(make([]int64, 0, want), want, rest[n:n+int(blen)])
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint mate vector %d corrupt: %w", i, err)
		}
		if i == 0 {
			ck.MateR = vals
		} else {
			ck.MateC = vals
		}
		rest = rest[n+int(blen):]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after checkpoint payload", len(rest))
	}
	return ck, nil
}

// CheckpointHash fingerprints the parts of the configuration that determine
// the solve trajectory for an n1 x n2 problem, so a restore onto a changed
// configuration is rejected instead of silently diverging. The engine name
// (resolved from the legacy TreeGrafting knob when Engine is unset)
// replaces the v2 TreeGrafting boolean, which it subsumes. AddOp is a
// function value and deliberately excluded; callers that vary the semiring
// across restarts must carry that discipline themselves.
func (c Config) CheckpointHash(n1, n2 int) uint64 {
	c = c.withDefaults()
	h := fnv.New64a()
	fmt.Fprintf(h, "v3|%s|%d|%d|%d|%d|%d|%v|%v|%g|%d|%v|%d|%d",
		c.engineOrDefault(), n1, n2, c.Procs, int(c.Init), int(c.Augment),
		c.DisablePrune, c.DirectionOptimized,
		c.PullThreshold, int(c.Direction), c.Permute, c.Seed, c.GridRows*1000+c.GridCols)
	return h.Sum64()
}

// maybeCheckpoint takes a phase-boundary checkpoint when the configuration
// asks for one: after the initializer (phase 0) and after every
// CheckpointEvery-th augmentation phase. Collective — the gate is
// SPMD-replicated, every rank joins the gathers, and rank 0 packages the
// snapshot and delivers it to OnCheckpoint. All ranks account the overhead
// in Stats (Checkpoints, CheckpointBytes, CheckpointWall); the gathered
// vectors are full on every rank, so the compressed encoded size is exact
// everywhere.
func (s *Solver) maybeCheckpoint(phase int, mater, matec *dvec.Dense) {
	if s.Cfg.CheckpointEvery <= 0 || s.Cfg.OnCheckpoint == nil {
		return
	}
	if phase != 0 && phase%s.Cfg.CheckpointEvery != 0 {
		return
	}
	begin := time.Now()
	s.tr.track(OpOther, func() {
		card := s.N2 - s.countUnmatched(matec)
		fullR := mater.Gather()
		fullC := matec.Gather()
		ck := &Checkpoint{
			Phase:       phase,
			Cardinality: card,
			ConfigHash:  s.Cfg.CheckpointHash(s.N1, s.N2),
			Engine:      s.Cfg.engineOrDefault(),
			N1:          s.N1,
			N2:          s.N2,
			MateR:       fullR,
			MateC:       fullC,
		}
		s.Stats.CheckpointBytes += int64(ck.EncodedSize())
		if s.G.World.Rank() == 0 {
			s.Cfg.OnCheckpoint(ck)
		}
	})
	s.Stats.Checkpoints++
	s.Stats.CheckpointWall += time.Since(begin)
	s.G.RT.Tracer().Instant("checkpoint", int64(phase))
}

// RestoreMates rebuilds this rank's mate-vector pieces from a checkpoint,
// the restart half of the phase-boundary protocol. The snapshot's shape,
// engine and config hash must match — a checkpoint taken by one engine is
// never resumed by another, even when both could continue from the matching
// (their Stats and trajectories would silently diverge). The restored
// cardinality becomes this attempt's InitCardinality (the checkpoint plays
// the role of the initializer).
func (s *Solver) RestoreMates(ck *Checkpoint) (mater, matec *dvec.Dense, err error) {
	if ck.N1 != s.N1 || ck.N2 != s.N2 {
		return nil, nil, fmt.Errorf("core: checkpoint is %dx%d, solver is %dx%d", ck.N1, ck.N2, s.N1, s.N2)
	}
	if len(ck.MateR) != ck.N1 || len(ck.MateC) != ck.N2 {
		return nil, nil, fmt.Errorf("core: checkpoint mate vectors are %dx%d, header says %dx%d",
			len(ck.MateR), len(ck.MateC), ck.N1, ck.N2)
	}
	if want := s.Cfg.engineOrDefault(); ck.Engine != "" && ck.Engine != want {
		return nil, nil, fmt.Errorf("core: checkpoint was taken by engine %q, refusing cross-engine resume with %q", ck.Engine, want)
	}
	if want := s.Cfg.CheckpointHash(s.N1, s.N2); ck.ConfigHash != want {
		return nil, nil, fmt.Errorf("core: checkpoint config hash %#x does not match current config %#x", ck.ConfigHash, want)
	}
	s.tr.track(OpInit, func() {
		mater = dvec.NewDenseFrom(s.RowL, ck.MateR)
		matec = dvec.NewDenseFrom(s.ColL, ck.MateC)
	})
	s.Stats.InitCardinality = ck.Cardinality
	return mater, matec, nil
}

// InitOrRestore is the attempt entry point of a recoverable solve: restore
// from Config.Resume when one is set, otherwise run the configured maximal
// initializer and take the phase-0 checkpoint. Collective.
func (s *Solver) InitOrRestore() (mater, matec *dvec.Dense, err error) {
	if s.Cfg.Resume != nil {
		return s.RestoreMates(s.Cfg.Resume)
	}
	mater, matec = s.MaximalInit()
	s.maybeCheckpoint(0, mater, matec)
	return mater, matec, nil
}

// countMatched returns how many entries of a full mate vector are matched
// (used to cross-check a checkpoint's recorded cardinality).
func countMatched(mate []int64) int {
	n := 0
	for _, v := range mate {
		if v != semiring.None {
			n++
		}
	}
	return n
}

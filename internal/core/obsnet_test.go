package core

// Tests for whole-world observability collection over the tcp backend:
// traced and untraced solves stay bit-identical, the coordinator's
// collector ends up holding every rank's spans and samples after the
// solve-end shipping, its registry reports world-aggregated counters equal
// to the in-process (already world-summed) values, and injected slow-link
// latency shows up in the per-link heartbeat RTT histograms.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"mcmdist/internal/mpi"
	"mcmdist/internal/mpi/tcpnet"
	"mcmdist/internal/obs"
	"mcmdist/internal/rmat"
)

// solveLoopbackCollected runs one solve over loopback TCP with a separate
// collector per endpoint — the real multi-process shape, exercising the OBS
// shipping and the coordinator-side merge — and returns the per-endpoint
// results and collectors, indexed by rank.
func solveLoopbackCollected(t *testing.T, procs int, cfg Config, netOpts tcpnet.Options) ([]*Result, []*obs.Collector) {
	t.Helper()
	eps, err := tcpnet.LoopbackOpts(procs, nil, netOpts)
	if err != nil {
		t.Fatalf("loopback endpoints: %v", err)
	}
	a := rmat.MustGenerate(rmat.G500, 7, 4, 21)
	results := make([]*Result, procs)
	cols := make([]*obs.Collector, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for i, ep := range eps {
		cfgI := cfg
		cfgI.Obs = obs.NewCollector(procs, obs.Options{
			Spans: true, TimeSeries: true, Metrics: obs.NewRegistry(),
		})
		r := ep.LocalRanks()[0]
		cols[r] = cfgI.Obs
		wg.Add(1)
		go func(i, r int, ep mpi.Transport, cfgI Config) {
			defer wg.Done()
			results[r], errs[i] = SolveOn(ep, a, cfgI)
		}(i, r, ep, cfgI)
	}
	wg.Wait()
	if err := mpi.CloseAll(eps); err != nil {
		t.Errorf("closing endpoints: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("endpoint %d solve: %v", i, err)
		}
	}
	return results, cols
}

func TestObsCollectionTCPBitIdentity(t *testing.T) {
	const procs = 4
	cfg := Config{Procs: procs, Seed: 3}
	a := rmat.MustGenerate(rmat.G500, 7, 4, 21)

	untraced, err := Solve(a, cfg)
	if err != nil {
		t.Fatalf("untraced oracle: %v", err)
	}

	results, cols := solveLoopbackCollected(t, procs, cfg, tcpnet.Options{
		HeartbeatInterval: 2 * time.Millisecond,
	})

	// Observability plus collection must not perturb the algorithm: every
	// endpoint's mate vectors are bit-identical to the untraced oracle.
	for r, res := range results {
		if want, got := fmt.Sprint(untraced.Matching.MateR), fmt.Sprint(res.Matching.MateR); want != got {
			t.Errorf("rank %d MateR diverges from untraced oracle:\n untraced: %s\n traced:   %s", r, want, got)
		}
		if want, got := fmt.Sprint(untraced.Matching.MateC), fmt.Sprint(res.Matching.MateC); want != got {
			t.Errorf("rank %d MateC diverges from untraced oracle", r)
		}
	}

	// The coordinator's collector now holds the whole world: spans and
	// samples for all ranks, not just rank 0.
	coord := cols[0]
	for r := 0; r < procs; r++ {
		if len(coord.Tracer(r).Spans()) == 0 {
			t.Errorf("coordinator has no spans for rank %d after collection", r)
		}
		if len(coord.Recorder(r).Samples()) == 0 {
			t.Errorf("coordinator has no samples for rank %d after collection", r)
		}
	}
	// A worker's collector keeps covering only its local rank.
	if len(cols[1].Tracer(0).Spans()) != 0 {
		t.Error("worker collector grew rank-0 spans; collection should be coordinator-only")
	}

	// The merged trace declares all ranks and passes the structural checks
	// tracelint applies in CI.
	var buf bytes.Buffer
	if err := coord.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var tf struct {
		OtherData struct {
			Ranks int `json:"ranks"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	if tf.OtherData.Ranks != procs {
		t.Errorf("merged trace declares %d ranks, want %d", tf.OtherData.Ranks, procs)
	}

	// World-aggregated counters: the in-process solve feeds one registry
	// from all ranks, so its counters ARE the world sums; the coordinator's
	// registry must agree after absorbing the workers (the run is
	// deterministic, so volumes are bit-identical across backends).
	inprocCol := obs.NewCollector(procs, obs.Options{TimeSeries: true, Metrics: obs.NewRegistry()})
	cfgIn := cfg
	cfgIn.Obs = inprocCol
	if _, err := Solve(a, cfgIn); err != nil {
		t.Fatalf("inproc metrics solve: %v", err)
	}
	for _, name := range []string{"mcm_comm_words_total", "mcm_comm_msgs_total", "mcm_iterations_total", "mcm_paths_total"} {
		want := inprocCol.Registry().Counter(name, "").Value()
		got := coord.Registry().Counter(name, "").Value()
		if want == 0 {
			t.Errorf("%s: world sum is 0; the assertion is vacuous", name)
		}
		if got != want {
			t.Errorf("%s: coordinator aggregate %d, world sum %d", name, got, want)
		}
	}
	// Sanity on the same property stated as the acceptance criterion: the
	// coordinator's counter equals the sum of the per-process values.
	var sum int64
	for r := 1; r < procs; r++ {
		sum += cols[r].Registry().Counter("mcm_comm_words_total", "").Value()
	}
	coordOwn := inprocCol.Registry().Counter("mcm_comm_words_total", "").Value() - sum
	if got := coord.Registry().Counter("mcm_comm_words_total", "").Value(); got != coordOwn+sum {
		t.Errorf("coordinator words %d != own %d + workers %d", got, coordOwn, sum)
	}
}

func TestHeartbeatRTTSlowLinkVisibility(t *testing.T) {
	const procs = 4
	const slow = 2 * time.Millisecond
	_, cols := solveLoopbackCollected(t, procs, Config{Procs: procs, Seed: 3}, tcpnet.Options{
		HeartbeatInterval: 3 * time.Millisecond,
		Faults: &mpi.NetFaultSpec{
			Seed: 9, SlowFrom: 0, SlowTo: 1, SlowDelay: slow, SlowEvery: 1,
		},
	})
	coord := cols[0]

	// The slow link's RTT histogram must exist on the coordinator and every
	// observation must carry at least the injected delay.
	h := coord.Registry().Histogram("mcm_heartbeat_rtt_seconds_link_0_1", "", nil)
	if h.Count() == 0 {
		t.Fatal("no RTT observations on the slow link 0->1")
	}
	if mean := h.Sum() / float64(h.Count()); mean < slow.Seconds() {
		t.Errorf("slow link mean RTT %.6fs, want >= injected %.6fs", mean, slow.Seconds())
	}

	// Heartbeat RTTs also land as instant events in the world trace, so the
	// injection is visible in Perfetto too — including the workers' links,
	// which arrive through the OBS shipping.
	byName := map[string]int{}
	for _, ev := range coord.Events() {
		byName[ev.Name]++
	}
	if byName["hb.rtt to 1"] == 0 {
		t.Error("no hb.rtt instant events for the slow link")
	}
	if byName["hb.rtt to 0"] == 0 {
		t.Error("no worker-side hb.rtt events arrived; event shipping broken")
	}
}

package core

import (
	"mcmdist/internal/dvec"
	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
	"mcmdist/internal/semiring"
)

// MCMGraft runs the tree-grafting variant of MCM-DIST — the distributed
// form of MS-BFS-Graft [Azad, Buluç, Pothen], which the paper names as
// future work ("implementing the tree grafting technique ... in distributed
// memory"). The difference from MCM (Algorithm 2): the parent and
// tree-ownership vectors persist across phases, so alternating trees that
// found no augmenting path keep their traversal; only the trees that were
// augmented release their vertices, and released rows are grafted onto
// surviving trees when rediscovered. This eliminates most redundant edge
// re-traversals across phases.
//
// Rendition note (same as the serial matching.MSBFSGraft): when a grafted
// phase discovers nothing, all state is reset and one plain MS-BFS phase
// runs; only if that fresh sweep also finds nothing is the matching
// declared maximum, which keeps the termination condition identical to
// Algorithm 2's. Collective.
func (s *Solver) MCMGraft(mater, matec *dvec.Dense) {
	trc := s.G.RT.Tracer()
	solve0 := trc.Begin()
	// Persistent across phases: parents of visited rows and the root of
	// the alternating tree owning each row (None = unowned).
	pir := dvec.NewDense(s.RowL, semiring.None)
	rootR := dvec.NewDense(s.RowL, semiring.None)
	// Direction state mirrors rootR's lifetime, not the phase's: tree
	// ownership persists across grafted phases, so the discovered-row count
	// feeding the heuristic only resets when the trees do.
	var dir dirState

	fresh := false // true while running the full-reset verification phase
	phase := 0     // sweeps started, fresh verification sweeps included
	for {
		phase++
		phase0 := trc.Begin()
		pathc := dvec.NewDense(s.ColL, semiring.None)
		var fc *dvec.SparseV
		var fcCount *mpi.ValueRequest
		s.tr.track(OpOther, func() {
			fc = s.unmatchedColFrontier(matec)
			fcCount = s.startFrontierCount(fc)
		})
		pathsFound := 0

		for {
			var frontierSize int
			s.tr.track(OpOther, func() {
				frontierSize = s.waitFrontierCount(fcCount, fc)
				fcCount = nil
			})
			if frontierSize == 0 {
				break
			}
			s.Stats.Iterations++
			iter0 := s.obsIterBegin()

			// The pull direction's visited set is rootR — exactly the set the
			// grafting filter below drops — so rows owned by any surviving
			// tree are skipped before the scan rather than after.
			var fr *dvec.SparseV
			usePull := s.chooseDirection(&dir, frontierSize)
			s.tr.track(OpSpMV, func() {
				fr = s.mulDirected(usePull, &dir, fc, rootR)
			})

			// Grafting filter: skip rows owned by ANY tree, from this phase
			// or an earlier one. Fresh rows are claimed for the discovering
			// tree (ownership recorded in rootR, parents in pi_r).
			var ufr *dvec.SparseV
			s.tr.track(OpSelect, func() {
				fr = fr.Select(rootR, func(v int64) bool { return v == semiring.None })
				pir.ScatterParents(fr)
				rootR.ScatterRoots(fr)
				ufr = fr.Select(mater, func(v int64) bool { return v == semiring.None })
				fr = fr.Select(mater, func(v int64) bool { return v != semiring.None })
			})
			if s.adaptiveDirection() {
				s.tr.track(OpOther, func() {
					dir.noteDiscovered(fr.Nnz() + ufr.Nnz())
				})
			}

			var newPaths int
			s.tr.track(OpOther, func() { newPaths = ufr.Nnz() })
			if newPaths > 0 {
				var tc *dvec.SparseV
				s.tr.track(OpInvert, func() {
					tc = ufr.InvertRoots(s.ColL)
				})
				s.tr.track(OpSelect, func() {
					pathc.ScatterParents(tc)
				})
				s.tr.track(OpOther, func() {
					pathsFound += tc.Nnz()
				})
				if !s.Cfg.DisablePrune {
					s.tr.track(OpPrune, func() {
						roots := ufr.RootVals(s.G.RT.GetInts(ufr.LocalNnz()))
						fr = fr.PruneRoots(roots)
						s.G.RT.PutInts(roots)
					})
				}
			}

			s.tr.track(OpSelect, func() {
				fr.SetParentsFrom(mater)
			})
			s.tr.track(OpInvert, func() {
				fc = fr.InvertParents(s.ColL)
				fcCount = s.startFrontierCount(fc)
			})
			s.obsIterEnd(iter0, phase, frontierSize, newPaths, usePull)
		}

		if pathsFound == 0 {
			trc.End(obs.KindPhase, "phase", phase0, int64(phase))
			if fresh {
				break // a full fresh sweep found nothing: maximum reached
			}
			// Grafted state may be blocking paths; reset and verify with
			// one plain phase.
			s.tr.track(OpOther, func() {
				pir.Fill(semiring.None)
				rootR.Fill(semiring.None)
				s.G.World.AddWork(len(pir.Local) + len(rootR.Local))
			})
			dir.resetPhase()
			s.Stats.GraftResets++
			fresh = true
			continue
		}
		fresh = false
		s.Stats.Phases++
		s.Stats.AugmentedPaths += pathsFound

		s.tr.track(OpAugment, func() {
			s.augment(pathc, pir, mater, matec, pathsFound)
		})
		s.maybeCheckpoint(s.Stats.Phases, mater, matec)

		// Release the augmented (dead) trees: their vertices become
		// graftable. Dead roots are the pathc entries; every rank gathers
		// the full set (the same allgather pattern as PRUNE) and scans its
		// local pieces.
		s.tr.track(OpOther, func() {
			var local []int64
			lo := s.ColL.MyRange().Lo
			for i, end := range pathc.Local {
				if end != semiring.None {
					local = append(local, int64(lo+i))
				}
			}
			parts := s.G.World.Allgatherv(local)
			dead := make(map[int64]struct{})
			for _, p := range parts {
				for _, r := range p {
					dead[r] = struct{}{}
				}
			}
			released := 0
			for i, root := range rootR.Local {
				if root == semiring.None {
					continue
				}
				if _, ok := dead[root]; ok {
					rootR.Local[i] = semiring.None
					pir.Local[i] = semiring.None
					released++
				}
			}
			globalReleased := int(s.G.World.Allreduce(mpi.OpSum, int64(released)))
			s.Stats.GraftReleasedRows += globalReleased
			// Released rows are unowned again: fold them back into the
			// direction heuristic's unvisited count.
			dir.noteDiscovered(-globalReleased)
			s.G.World.AddWork(len(rootR.Local) + len(dead))
		})
		trc.End(obs.KindPhase, "phase", phase0, int64(phase))
	}
	s.Stats.Cardinality = s.N2 - s.countUnmatched(matec)
	s.captureThreadStats()
	trc.End(obs.KindSolve, "mcm-graft", solve0, int64(s.Stats.Cardinality))
}

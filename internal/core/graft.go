package core

import (
	"mcmdist/internal/dvec"
)

// MCMGraft runs the tree-grafting variant of MCM-DIST — the distributed
// form of MS-BFS-Graft [Azad, Buluç, Pothen], which the paper names as
// future work ("implementing the tree grafting technique ... in distributed
// memory"). Collective.
//
// Deprecated: MCMGraft is a thin alias for the "bfs-graft" engine
// (engine_bfs.go); new callers should route through the engine registry
// (Config.Engine, Solver.RunEngineByName) so the solve path stays pluggable.
func (s *Solver) MCMGraft(mater, matec *dvec.Dense) {
	s.mustRunEngine(EngineBFSGraft, mater, matec)
}

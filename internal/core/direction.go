package core

import (
	"mcmdist/internal/costmodel"
	"mcmdist/internal/dvec"
	"mcmdist/internal/mpi"
	"mcmdist/internal/spmv"
)

// pullEdgeFactor is the Beamer-style edge-count condition: pull is only
// considered when the frontier's outgoing edges outnumber the unvisited
// rows by this factor, so rows scanning for a parent mostly hit early.
const pullEdgeFactor = 14

// dirState carries the adaptive direction choice's state across the
// iterations of one solver entry point. Every field is SPMD-replicated —
// the per-iteration decision must be identical on all ranks, because push
// and pull issue different collective sequences.
type dirState struct {
	// pullDisabled turns off the bottom-up direction once a pull scan
	// proves unproductive. It is sticky across phases: unproductive scans
	// come from frontier columns that are structurally deficient (no
	// augmenting path will ever leave them), and that set only grows as
	// the matching converges.
	pullDisabled bool
	// visitedRows counts rows discovered so far in the current phase; the
	// heuristic compares it against the frontier's edge reach.
	visitedRows int
	// threshold is the resolved pull frontier-fraction threshold: the
	// configured PullThreshold, or the alpha-beta model's crossover when
	// unset. Zero means not yet resolved.
	threshold float64
}

// resetPhase clears the per-phase discovery count (pullDisabled is sticky).
func (d *dirState) resetPhase() { d.visitedRows = 0 }

// adaptiveDirection reports whether the per-iteration heuristic is live —
// the case that needs visited-row tracking and scan-productivity feedback.
func (s *Solver) adaptiveDirection() bool {
	return s.Cfg.Direction == DirectionAuto ||
		(s.Cfg.Direction == DirectionDefault && s.Cfg.DirectionOptimized)
}

// chooseDirection decides the SpMV direction for one iteration: true means
// bottom-up (spmv.MulPull), false top-down (spmv.Mul). A pinned
// Config.Direction short-circuits the heuristic so tests can hold either
// kernel deterministically; otherwise the choice is Beamer-style — pull when
// the frontier exceeds the threshold fraction of the columns AND its
// outgoing edges outnumber the unvisited rows' by pullEdgeFactor. Collective
// on the first adaptive call (it sizes the global nnz for the modeled
// crossover threshold); pure local arithmetic afterwards.
func (s *Solver) chooseDirection(d *dirState, frontierSize int) bool {
	switch s.Cfg.Direction {
	case DirectionPush:
		return false
	case DirectionPull:
		return true
	}
	if !s.adaptiveDirection() || d.pullDisabled {
		return false
	}
	if d.threshold == 0 {
		d.threshold = s.resolveThreshold()
	}
	unvisited := s.N1 - d.visitedRows
	return float64(frontierSize) > d.threshold*float64(s.N2) &&
		pullEdgeFactor*frontierSize > unvisited
}

// resolveThreshold picks the pull frontier-fraction threshold: the
// configured PullThreshold when set, else the alpha-beta cost model's
// push/pull crossover for the host machine at this run's thread count and
// the graph's average degree. The degree comes from a one-time allreduce of
// the local block sizes (collective — every rank resolves together), so the
// threshold is bit-identical on every rank.
func (s *Solver) resolveThreshold() float64 {
	if s.Cfg.PullThreshold > 0 {
		return s.Cfg.PullThreshold
	}
	nnz := s.G.World.Allreduce(mpi.OpSum, int64(s.A.M.NNZ()))
	avgDeg := float64(nnz) / float64(max(s.N2, 1))
	return costmodel.PullCrossover(costmodel.Laptop, s.Cfg.Threads, avgDeg)
}

// noteDiscovered folds one iteration's newly discovered rows into the
// heuristic state (the same frontier-size bookkeeping real
// direction-optimized BFS implementations perform each level).
func (d *dirState) noteDiscovered(n int) { d.visitedRows += n }

// notePullScan applies the hit-rate feedback after a pull iteration:
// matching frontiers can be full of structurally deficient columns whose
// neighborhoods never hit; if the global scan productivity drops below 1/4,
// fall back to push for the rest of the solve. Collective. A pinned
// DirectionPull skips the feedback — the caller asked for pull
// unconditionally.
func (s *Solver) notePullScan(d *dirState, ps spmv.PullStats) {
	if s.Cfg.Direction == DirectionPull {
		return
	}
	scanned := s.G.World.Allreduce(mpi.OpSum, int64(ps.Scanned))
	hits := s.G.World.Allreduce(mpi.OpSum, int64(ps.Hits))
	if scanned > 0 && hits*4 < scanned {
		d.pullDisabled = true
	}
}

// mulDirected runs one SpMV in the chosen direction, maintaining the lazy
// row-major adjacency and the per-direction iteration counters — the single
// selection site all three MCM variants flow through.
func (s *Solver) mulDirected(usePull bool, d *dirState, fc *dvec.SparseV, visited *dvec.Dense) *dvec.SparseV {
	if usePull {
		if s.rowAdj == nil {
			s.rowAdj = spmv.RowMajor(s.A)
		}
		fr, ps := spmv.MulPull(s.A, s.rowAdj, fc, visited, s.Cfg.AddOp, s.RowL)
		s.Stats.PullIterations++
		s.notePullScan(d, ps)
		return fr
	}
	fr := spmv.Mul(s.A, fc, s.Cfg.AddOp, s.RowL)
	s.Stats.PushIterations++
	return fr
}

package core

import (
	"mcmdist/internal/dvec"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmv"
)

// MaximalInit computes the configured distributed maximal matching and
// returns the mate vectors (mater row-aligned, matec col-aligned) with
// semiring.None at unmatched vertices. Collective. These are the
// matrix-algebraic initializers of the paper's prior work [21], compared in
// Fig. 3; all are built from the Table I primitive subset.
func (s *Solver) MaximalInit() (mater, matec *dvec.Dense) {
	mater = dvec.NewDense(s.RowL, semiring.None)
	matec = dvec.NewDense(s.ColL, semiring.None)
	s.tr.track(OpInit, func() {
		switch s.Cfg.Init {
		case InitNone:
		case InitGreedy:
			s.greedyInit(mater, matec)
		case InitKarpSipser:
			s.karpSipserInit(mater, matec)
		case InitDynMinDegree:
			s.dynMinDegreeInit(mater, matec)
		default:
			s.dynMinDegreeInit(mater, matec)
		}
	})
	s.Stats.InitCardinality = s.N2 - s.countUnmatched(matec)
	s.captureThreadStats()
	return mater, matec
}

// greedyRound matches each frontier column (all assumed unmatched) to an
// unmatched row if possible: one SpMV (rows pick a winning column), one
// SELECT (keep unmatched rows), and two INVERTs to deduplicate per column
// and flip the pairs back to rows. Returns the number of new matches.
// Collective.
func (s *Solver) greedyRound(mater, matec *dvec.Dense, fc *dvec.SparseV, op semiring.AddOp) int {
	fr := spmv.Mul(s.A, fc, op, s.RowL)
	fr = fr.Select(mater, func(v int64) bool { return v == semiring.None })
	// One row per column: INVERT by parent keeps the smallest row index.
	tc := fr.InvertParents(s.ColL)
	matec.ScatterParents(tc)
	// Flip (column -> row) pairs to (row -> column) to update mate_r.
	mr := tc.InvertParents(s.RowL)
	mater.ScatterParents(mr)
	return tc.Nnz()
}

// greedyInit runs greedy rounds until no unmatched column can be matched.
func (s *Solver) greedyInit(mater, matec *dvec.Dense) {
	for {
		fc := s.unmatchedColFrontier(matec)
		if fc.Nnz() == 0 {
			return
		}
		if s.greedyRound(mater, matec, fc, semiring.MinParent) == 0 {
			return
		}
	}
}

// residualColDegrees returns, col-aligned, the number of unmatched row
// neighbors of every column (matched columns included; callers filter).
// One counting SpMV with Aᵀ plus two redistributions. Collective.
func (s *Solver) residualColDegrees(mater *dvec.Dense) *dvec.SparseInt {
	urows := dvec.NewSparseInt(s.RowL)
	lo := s.RowL.MyRange().Lo
	fillFiltered(s.G.RT.Pool(), len(mater.Local),
		func(i int) bool { return mater.Local[i] == semiring.None },
		func(total int) {
			urows.Idx = make([]int, total)
			urows.Val = make([]int64, total)
		},
		func(o, i int) {
			urows.Idx[o] = lo + i
			urows.Val[o] = 1
		})
	s.G.World.AddWork(len(mater.Local))
	deg := s.countMul(urows.Redistribute(s.RowTL))
	return deg.Redistribute(s.ColL)
}

// frontierFromCols builds a frontier with Self(j) at each index of cols,
// filled in parallel (every entry is kept, so the output slot is the input
// slot and no compaction pass is needed).
func (s *Solver) frontierFromCols(cols *dvec.SparseInt) *dvec.SparseV {
	f := dvec.NewSparseV(s.ColL)
	f.Idx = make([]int, len(cols.Idx))
	f.Val = make([]semiring.Vertex, len(cols.Idx))
	s.G.RT.Pool().For(len(cols.Idx), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			g := cols.Idx[k]
			f.Idx[k] = g
			f.Val[k] = semiring.Self(int64(g))
		}
	})
	s.G.World.AddWork(len(cols.Idx))
	return f
}

// karpSipserInit is the distributed Karp–Sipser rendition: every round
// recomputes residual column degrees; if any unmatched column has residual
// degree exactly 1, only those (forced, always-safe) columns are matched
// this round; otherwise one general greedy round runs. The per-round
// counting SpMV over the whole residual graph is what makes Karp–Sipser
// expensive on distributed memory (the Fig. 3 observation).
func (s *Solver) karpSipserInit(mater, matec *dvec.Dense) {
	for {
		deg := s.residualColDegrees(mater)
		degU := deg.Select(matec, func(v int64) bool { return v == semiring.None })
		if degU.Nnz() == 0 {
			return // every unmatched column has zero unmatched neighbors
		}
		d1 := degU.Filter(func(v int64) bool { return v == 1 })
		var fc *dvec.SparseV
		if d1.Nnz() > 0 {
			fc = s.frontierFromCols(d1)
		} else {
			fc = s.frontierFromCols(degU)
		}
		if s.greedyRound(mater, matec, fc, semiring.MinParent) == 0 {
			return
		}
	}
}

// dynMinDegreeInit is the distributed dynamic-mindegree rendition: greedy
// rounds in which each row picks its minimum-residual-degree neighbor
// column, with degrees recomputed every round ("dynamic"). Degrees ride in
// the root field of the frontier, keyed (degree, column) so ties break by
// index, and the SpMV runs over the (select2nd, minRoot) semiring.
func (s *Solver) dynMinDegreeInit(mater, matec *dvec.Dense) {
	for {
		deg := s.residualColDegrees(mater)
		degU := deg.Select(matec, func(v int64) bool { return v == semiring.None })
		if degU.Nnz() == 0 {
			return
		}
		fc := dvec.NewSparseV(s.ColL)
		fc.Idx = make([]int, len(degU.Idx))
		fc.Val = make([]semiring.Vertex, len(degU.Idx))
		s.G.RT.Pool().For(len(degU.Idx), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				g := degU.Idx[k]
				// Root encodes (degree, column) lexicographically.
				key := degU.Val[k]*int64(s.N2) + int64(g)
				fc.Idx[k] = g
				fc.Val[k] = semiring.Vertex{Parent: int64(g), Root: key}
			}
		})
		s.G.World.AddWork(len(degU.Idx))
		if s.greedyRound(mater, matec, fc, semiring.MinRoot) == 0 {
			return
		}
	}
}

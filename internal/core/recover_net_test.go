package core

// The network half of the failure matrix: the retry engine crossed with
// wire-level faults on the tcp backend. Where recover_test.go pins recovery
// from process faults (crash, straggler, RMA failure) on the in-process
// world, this file pins the same bit-identical-recovery contract when each
// attempt is a loopback TCP world and the injected failures are a dropped
// link, a partition, a slow link — and a process crash observed through
// sockets instead of channels.

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"mcmdist/internal/mpi"
	"mcmdist/internal/mpi/tcpnet"
)

// tcpWorlds returns a Worlds provider building one loopback TCP world per
// attempt, every endpoint sharing the one fault spec — the same sharing
// SolveRecoverable's public wiring uses, so the terminal budget spans
// attempts.
func tcpWorlds(procs int, f *mpi.NetFaultSpec) func(int) ([]mpi.Transport, error) {
	return func(int) ([]mpi.Transport, error) {
		return tcpnet.LoopbackOpts(procs, nil, tcpnet.Options{Faults: f})
	}
}

// netFaultCases is the network fault matrix: for each case a fresh injector,
// whether it is terminal (must cost exactly one retry) and an optional
// process-fault plan to cross with it.
type netFaultCase struct {
	net      func() *mpi.NetFaultSpec
	fault    func() *mpi.FaultPlan
	terminal bool
}

func netFaultCases() map[string]netFaultCase {
	return map[string]netFaultCase{
		"drop": {
			net: func() *mpi.NetFaultSpec {
				return &mpi.NetFaultSpec{DropFrom: 0, DropTo: 1, DropAtFrame: 4}
			},
			terminal: true,
		},
		"partition": {
			net: func() *mpi.NetFaultSpec {
				return &mpi.NetFaultSpec{Partition: []int{0, 1}, PartitionAtFrame: 3}
			},
			terminal: true,
		},
		"slow": {
			net: func() *mpi.NetFaultSpec {
				return &mpi.NetFaultSpec{
					Seed: 5, SlowFrom: 0, SlowTo: 1,
					SlowDelay: 100 * time.Microsecond, SlowEvery: 2, SlowJitter: 50 * time.Microsecond,
				}
			},
			terminal: false,
		},
		"crash-over-tcp": {
			// A process fault observed through the socket plane: rank 1's
			// goroutine dies mid-collective and its peers see genuine link
			// death, not an injected wire fault.
			fault: func() *mpi.FaultPlan {
				return &mpi.FaultPlan{CrashRank: 1, CrashAtCollective: 6}
			},
			terminal: true,
		},
		"straggler-over-tcp": {
			fault: func() *mpi.FaultPlan {
				return &mpi.FaultPlan{
					Seed: 1, StragglerRank: 2,
					StragglerDelay: 100 * time.Microsecond, StragglerEvery: 3,
				}
			},
			terminal: false,
		},
		"drop-and-straggler": {
			// Crossed axes: a timing perturbation on one rank while a link
			// drops — recovery must still converge to the clean matching.
			net: func() *mpi.NetFaultSpec {
				return &mpi.NetFaultSpec{DropFrom: 1, DropTo: 0, DropAtFrame: 5}
			},
			fault: func() *mpi.FaultPlan {
				return &mpi.FaultPlan{
					Seed: 2, StragglerRank: 3,
					StragglerDelay: 50 * time.Microsecond, StragglerEvery: 4,
				}
			},
			terminal: true,
		},
	}
}

// TestRecoverableNetFaultMatrix is the acceptance sweep over the tcp
// backend: every network fault case must recover to the exact matching of
// the clean in-process solve — same cardinality, bit-for-bit identical mate
// vectors — with the retry accounting matching what fired.
func TestRecoverableNetFaultMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a := randomBipartite(rng, 60, 60, 140)
	base := Config{Procs: 4, Init: InitGreedy, CheckpointEvery: 1}
	clean := mustSolve(t, a, base)
	for name, tc := range netFaultCases() {
		t.Run(name, func(t *testing.T) {
			var nf *mpi.NetFaultSpec
			if tc.net != nil {
				nf = tc.net()
			}
			var plan *mpi.FaultPlan
			cfg := base
			if tc.fault != nil {
				plan = tc.fault()
				cfg.Fault = plan
			}
			pol := RecoveryPolicy{
				Backoff: time.Millisecond, MaxBackoff: time.Millisecond,
				Worlds: tcpWorlds(4, nf),
			}
			res, rec, err := SolveRecoverable(a, cfg, pol)
			if err != nil {
				t.Fatalf("recoverable solve over tcp failed: %v (recovery %+v)", err, rec)
			}
			if err := res.Matching.Validate(a); err != nil {
				t.Fatal(err)
			}
			if res.Stats.Cardinality != clean.Stats.Cardinality {
				t.Fatalf("recovered cardinality %d, clean %d", res.Stats.Cardinality, clean.Stats.Cardinality)
			}
			for i := range clean.Matching.MateR {
				if res.Matching.MateR[i] != clean.Matching.MateR[i] {
					t.Fatalf("MateR[%d] = %d, clean %d", i, res.Matching.MateR[i], clean.Matching.MateR[i])
				}
			}
			for j := range clean.Matching.MateC {
				if res.Matching.MateC[j] != clean.Matching.MateC[j] {
					t.Fatalf("MateC[%d] = %d, clean %d", j, res.Matching.MateC[j], clean.Matching.MateC[j])
				}
			}
			fired := 0
			if nf != nil {
				fired += nf.Fired()
			}
			if plan != nil {
				fired += plan.Fired()
			}
			if tc.terminal {
				if fired != 1 {
					t.Fatalf("terminal case fired %d faults, want exactly 1", fired)
				}
				if rec.Retries != 1 {
					t.Fatalf("one terminal fault cost %d retries", rec.Retries)
				}
			} else {
				if fired != 0 || rec.Retries != 0 {
					t.Fatalf("timing-only case fired %d, retried %d — want 0/0", fired, rec.Retries)
				}
			}
			if rec.Attempts != rec.Retries+1 || len(rec.Errors) != rec.Retries {
				t.Fatalf("inconsistent accounting: %+v", rec)
			}
		})
	}
}

// TestRecoverableNetFaultDeterministicErrors pins the retry engine's error
// stream on the tcp backend: the same drop spec produces the same recorded
// attempt error, run after run — the property that makes recovery failures
// diagnosable from a single log line.
func TestRecoverableNetFaultDeterministicErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := randomBipartite(rng, 50, 50, 120)
	texts := make([]string, 2)
	for run := range texts {
		f := &mpi.NetFaultSpec{DropFrom: 0, DropTo: 1, DropAtFrame: 4}
		cfg := Config{Procs: 4, Init: InitGreedy, CheckpointEvery: 1}
		pol := RecoveryPolicy{
			Backoff: time.Millisecond, MaxBackoff: time.Millisecond,
			Worlds: tcpWorlds(4, f),
		}
		_, rec, err := SolveRecoverable(a, cfg, pol)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if len(rec.Errors) != 1 {
			t.Fatalf("run %d: %d attempt errors, want 1", run, len(rec.Errors))
		}
		if !errors.Is(rec.Errors[0], mpi.ErrInjectedNetFault) {
			t.Fatalf("run %d: attempt error lost the injected sentinel: %v", run, rec.Errors[0])
		}
		texts[run] = rec.Errors[0].Error()
	}
	if texts[0] != texts[1] {
		t.Fatalf("attempt errors differ across identical runs:\n run 0: %s\n run 1: %s", texts[0], texts[1])
	}
	if !strings.Contains(texts[0], "dropped at data frame") {
		t.Fatalf("attempt error names no trigger point: %s", texts[0])
	}
}

package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"mcmdist/internal/costmodel"
	"mcmdist/internal/dvec"
	"mcmdist/internal/spmat"
)

// Canonical engine names. The three BFS engines are implemented in this
// package (their phase kernels share core's private SpMV/select/augment
// machinery and core's own tests exercise them without an extra import);
// EngineAuction is implemented and registered by internal/engine, the
// external plug-in path the seam exists for. EngineAuto is not an engine:
// ResolveEngineConfig replaces it with a concrete choice from the cost
// model before a solver is built.
const (
	// EngineBFS is the paper's MCM-DIST (Algorithm 2): multi-source BFS
	// phases with pruning, per-phase parent vectors.
	EngineBFS = "bfs"
	// EngineBFSSingleSource is the single-source ablation variant (one
	// unmatched column per phase).
	EngineBFSSingleSource = "bfs-ss"
	// EngineBFSGraft is the tree-grafting variant: alternating trees
	// persist across phases, only augmented trees release their rows.
	EngineBFSGraft = "bfs-graft"
	// EngineAuction is the distributed auction engine (internal/engine).
	EngineAuction = "auction"
	// EngineAuto asks ResolveEngineConfig to pick an engine per instance
	// via costmodel.SelectEngine.
	EngineAuto = "auto"
)

// EngineCaps declares what a registered engine supports, so drivers can
// refuse configurations the engine cannot honor instead of silently
// ignoring them.
type EngineCaps struct {
	// Checkpointable: the engine's mate vectors encode a valid matching at
	// every Iterate boundary, so phase-boundary checkpoint/restart works.
	Checkpointable bool
	// DirectionOptimized: the engine consults the push/pull direction
	// heuristic (Config.Direction / DirectionOptimized have an effect).
	DirectionOptimized bool
	// Augmenting: the engine applies augmenting paths (Config.Augment has
	// an effect).
	Augmenting bool
	// Weighted: the engine can maximize edge weight, not only cardinality
	// (reserved for the weighted extension; no registered engine sets it
	// for solving yet, but the auction's price machinery is weight-ready).
	Weighted bool
}

// Engine is the pluggable solver seam: one maximum-matching algorithm
// family, instantiated per solve via Start. Implementations must be
// stateless values (all per-solve state lives in the EngineRun) and must be
// SPMD-collective exactly like the rest of core: every rank of the grid
// calls Start/Iterate/Finish in lockstep with an identical sequence of
// collectives.
type Engine interface {
	// Name returns the canonical registry name.
	Name() string
	// Caps returns the engine's capability flags.
	Caps() EngineCaps
	// Start begins one solve on this rank's solver and mate-vector pieces
	// (already initialized to a valid matching by InitOrRestore).
	Start(s *Solver, mater, matec *dvec.Dense) EngineRun
}

// EngineRun is one in-progress solve. Iterate executes one phase (a unit of
// progress after which the mate vectors again encode a valid matching — the
// checkpoint boundary) and reports whether the matching is maximum. Finish
// seals the run's statistics.
type EngineRun interface {
	Iterate() (done bool, err error)
	Finish() error
}

var engineRegistry = struct {
	sync.RWMutex
	byName map[string]Engine
}{byName: map[string]Engine{}}

// RegisterEngine adds an engine to the registry, panicking on an empty or
// duplicate name (registration happens in init functions, where a panic is
// the loudest available diagnostic).
func RegisterEngine(e Engine) {
	name := e.Name()
	if name == "" || name == EngineAuto {
		panic(fmt.Sprintf("core: cannot register engine with reserved name %q", name))
	}
	engineRegistry.Lock()
	defer engineRegistry.Unlock()
	if _, dup := engineRegistry.byName[name]; dup {
		panic(fmt.Sprintf("core: engine %q registered twice", name))
	}
	engineRegistry.byName[name] = e
}

// EngineByName looks up a registered engine.
func EngineByName(name string) (Engine, bool) {
	engineRegistry.RLock()
	defer engineRegistry.RUnlock()
	e, ok := engineRegistry.byName[name]
	return e, ok
}

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string {
	engineRegistry.RLock()
	defer engineRegistry.RUnlock()
	out := make([]string, 0, len(engineRegistry.byName))
	for name := range engineRegistry.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseEngine canonicalizes an engine spelling: the empty string (defer to
// the legacy Config knobs), "auto", a canonical engine name, or one of the
// deprecated aliases that the old boolean flags collapse into ("graft",
// "ss"). It validates spelling only; whether the engine is registered in
// this binary is checked by ResolveEngineConfig, so flag parsing does not
// depend on package import order.
func ParseEngine(s string) (string, error) {
	switch s {
	case "":
		return "", nil
	case EngineAuto:
		return EngineAuto, nil
	case EngineBFS, "ms-bfs":
		return EngineBFS, nil
	case EngineBFSSingleSource, "ss", "single-source":
		return EngineBFSSingleSource, nil
	case EngineBFSGraft, "graft":
		return EngineBFSGraft, nil
	case EngineAuction:
		return EngineAuction, nil
	}
	return "", fmt.Errorf("core: unknown engine %q (want %s, %s, %s, %s or %s)",
		s, EngineBFS, EngineBFSSingleSource, EngineBFSGraft, EngineAuction, EngineAuto)
}

// engineOrDefault maps the legacy boolean knob onto the engine enum: an
// explicit Engine wins, otherwise TreeGrafting selects bfs-graft and the
// zero config keeps the historical default, plain MCM-DIST.
func (c Config) engineOrDefault() string {
	if c.Engine != "" {
		return c.Engine
	}
	if c.TreeGrafting {
		return EngineBFSGraft
	}
	return EngineBFS
}

// ResolveEngineConfig pins cfg.Engine to a concrete registered engine:
// it canonicalizes the spelling, maps the legacy TreeGrafting knob, and
// replaces "auto" with the cost model's per-instance choice computed from
// the distributed blocks (degree distribution, density, grid size, thread
// count — all SPMD-replicated, so every rank resolves identically). The
// solve drivers call it once before building solvers, so checkpoint hashes
// and Stats always see the concrete engine.
func ResolveEngineConfig(cfg Config, n1, n2 int, blocks [][]*spmat.LocalMatrix) (Config, error) {
	cfg = cfg.withDefaults()
	name, err := ParseEngine(cfg.Engine)
	if err != nil {
		return cfg, err
	}
	switch name {
	case "":
		name = cfg.engineOrDefault()
	case EngineAuto:
		choice := costmodel.SelectEngine(costmodel.Laptop, engineFeatures(cfg, n1, n2, blocks))
		name = choice.Engine
	}
	if _, ok := EngineByName(name); !ok {
		return cfg, fmt.Errorf("core: engine %q is not registered in this binary (have %v)", name, EngineNames())
	}
	cfg.Engine = name
	// Keep the deprecated alias coherent so CheckpointHash and any residual
	// reader of the old knob agree with the resolved engine.
	cfg.TreeGrafting = name == EngineBFSGraft
	return cfg, nil
}

// engineFeatures summarizes the distributed instance for the online
// selector: shape, density, and the column-degree coefficient of variation
// (the skew signal — auction rounds degrade on power-law degree
// distributions while BFS phases do not).
func engineFeatures(cfg Config, n1, n2 int, blocks [][]*spmat.LocalMatrix) costmodel.GraphFeatures {
	deg := make([]int, n2)
	nnz := 0
	for _, row := range blocks {
		for _, b := range row {
			d := b.M
			for k, j := range d.JC {
				cnt := d.CP[k+1] - d.CP[k]
				deg[b.Cols.Lo+j] += cnt
				nnz += cnt
			}
		}
	}
	cv := 0.0
	if n2 > 0 && nnz > 0 {
		mean := float64(nnz) / float64(n2)
		var ss float64
		for _, d := range deg {
			diff := float64(d) - mean
			ss += diff * diff
		}
		cv = math.Sqrt(ss/float64(n2)) / mean
	}
	return costmodel.GraphFeatures{
		N1: n1, N2: n2, NNZ: nnz, DegCV: cv,
		Procs: cfg.Procs, Threads: cfg.Threads,
	}
}

// RunEngine drives one engine to completion on this rank: record the engine
// in Stats, then Iterate until the matching is maximum. Collective.
func (s *Solver) RunEngine(e Engine, mater, matec *dvec.Dense) error {
	s.Stats.Engine = e.Name()
	run := e.Start(s, mater, matec)
	for {
		done, err := run.Iterate()
		if err != nil {
			return err
		}
		if done {
			break
		}
	}
	return run.Finish()
}

// RunEngineByName is RunEngine with a registry lookup.
func (s *Solver) RunEngineByName(name string, mater, matec *dvec.Dense) error {
	e, ok := EngineByName(name)
	if !ok {
		return fmt.Errorf("core: engine %q is not registered in this binary (have %v)", name, EngineNames())
	}
	return s.RunEngine(e, mater, matec)
}

// mustRunEngine backs the deprecated MCM* wrapper methods, whose signatures
// predate error returns; the BFS engines never error.
func (s *Solver) mustRunEngine(name string, mater, matec *dvec.Dense) {
	if err := s.RunEngineByName(name, mater, matec); err != nil {
		panic(err)
	}
}

// Track runs fn, attributing its wall time, meter delta and comm-time delta
// to op in this solve's Stats — the hook external engine packages use to
// meter their phases exactly like the in-core ones.
func (s *Solver) Track(op Op, fn func()) { s.tr.track(op, fn) }

// ObsIterBegin opens one engine iteration's observation window. See
// obsIterBegin.
func (s *Solver) ObsIterBegin() int64 { return s.obsIterBegin() }

// ObsIterEnd closes an iteration opened by ObsIterBegin, updating the
// peak-frontier summary and the per-iteration time-series. See obsIterEnd.
func (s *Solver) ObsIterEnd(t0 int64, phase, frontier, newPaths int, pull bool) {
	s.obsIterEnd(t0, phase, frontier, newPaths, pull)
}

// MaybeCheckpoint takes a phase-boundary checkpoint when the configuration
// asks for one. Engines call it whenever their mate vectors re-enter the
// valid-matching invariant. Collective.
func (s *Solver) MaybeCheckpoint(phase int, mater, matec *dvec.Dense) {
	s.maybeCheckpoint(phase, mater, matec)
}

// CountUnmatched returns the global number of unmatched entries of a mate
// vector. Collective.
func (s *Solver) CountUnmatched(mate *dvec.Dense) int { return s.countUnmatched(mate) }

// CaptureThreadStats snapshots the worker pool's telemetry delta into this
// solve's Stats; engines call it from Finish.
func (s *Solver) CaptureThreadStats() { s.captureThreadStats() }

package core

import (
	"mcmdist/internal/dvec"
	"mcmdist/internal/mpi"
	"mcmdist/internal/semiring"
)

// augment applies the k vertex-disjoint augmenting paths recorded in pathc
// (root column -> unmatched end row) by flipping matched and unmatched
// edges along each path. It dispatches between the two variants of Section
// IV-B: the bulk-synchronous level-parallel Algorithm 3 and the one-sided
// path-parallel Algorithm 4, switching automatically at k < 2p² under
// AugmentAuto. Collective.
func (s *Solver) augment(pathc, pir, mater, matec *dvec.Dense, k int) {
	p := s.G.World.Size()
	mode := s.Cfg.Augment
	if mode == AugmentAuto {
		if k < 2*p*p {
			mode = AugmentPathParallel
		} else {
			mode = AugmentLevelParallel
		}
	}
	if mode == AugmentPathParallel {
		s.Stats.PathParallelAugments++
		s.augmentPathParallel(pathc, pir, mater, matec)
	} else {
		s.Stats.LevelParallelAugments++
		s.augmentLevelParallel(pathc, pir, mater, matec)
	}
}

// augmentLevelParallel is Algorithm 3: all paths advance together, two
// matched edges per level-synchronous iteration, expressed entirely with
// INVERT and SET. Each iteration costs two personalized all-to-alls, which
// is why its latency term grows as alpha*p*h for path length h.
func (s *Solver) augmentLevelParallel(pathc, pir, mater, matec *dvec.Dense) {
	// v_c: sparse vector from path_c by removing -1 entries (line 2); then
	// flip to the unmatched end rows, where augmentation starts.
	vc := pathc.SparseWhere(func(v int64) bool { return v != semiring.None })
	fronts := vc.Invert(s.RowL) // fronts[end row] = root column

	for fronts.Nnz() > 0 {
		// Row fronts adopt their parents (SET with pi_r)...
		parents := fronts.Clone()
		parents.GatherFrom(pir)
		// ...and flip to those parent columns (INVERT): jc[j] = front row.
		jc := parents.Invert(s.ColL)
		// Remember the parent columns' previous mates (SET with mate_c)
		// before overwriting them: they are the next level's fronts.
		oldMates := jc.Clone()
		oldMates.GatherFrom(matec)
		// Update both mate vectors (lines 8-9).
		matec.Scatter(jc)
		mater.Scatter(parents)
		// Paths whose parent column was the (unmatched) root are finished.
		fronts = oldMates.Filter(func(v int64) bool { return v != semiring.None }).Invert(s.RowL)
	}
}

// augmentPathParallel is Algorithm 4: each rank walks the paths whose
// endpoint record it owns, asynchronously editing the remote mate vectors
// with one-sided operations — one MPI_GET (parent lookup), one MPI_PUT
// (mate_r update) and one MPI_FETCH_AND_OP (atomic mate_c swap that also
// returns the previous mate) per matched pair, the 3-RMA-calls-per-
// iteration cost of Section IV-B.
func (s *Solver) augmentPathParallel(pathc, pir, mater, matec *dvec.Dense) {
	winPir := mpi.WinCreate(s.G.World, pir.Local)
	winMater := mpi.WinCreate(s.G.World, mater.Local)
	winMatec := mpi.WinCreate(s.G.World, matec.Local)

	for _, end := range pathc.Local {
		if end == semiring.None {
			continue
		}
		r := end
		for {
			rRank, rOff := s.RowL.Owner(int(r))
			j := winPir.Get1(rRank, rOff)
			winMater.Put1(rRank, rOff, j)
			jRank, jOff := s.ColL.Owner(int(j))
			prev := winMatec.FetchAndOp(jRank, jOff, mpi.OpReplace, r)
			if prev == semiring.None {
				break // reached the root column
			}
			r = prev
		}
	}
	// Close the RMA epoch: all one-sided updates visible everywhere.
	winMatec.Fence()
}

package core

import (
	"time"

	"mcmdist/internal/mpi"
	"mcmdist/internal/parallel"
	"mcmdist/internal/rt"
)

// Op labels the primitive categories of the runtime breakdown (Fig. 5).
type Op string

// Breakdown categories. "Other" absorbs frontier bookkeeping and reductions.
const (
	OpSpMV    Op = "spmv"
	OpSelect  Op = "select"
	OpInvert  Op = "invert"
	OpPrune   Op = "prune"
	OpAugment Op = "augment"
	OpInit    Op = "init"
	OpOther   Op = "other"
)

// Ops lists the categories in display order.
var Ops = []Op{OpInit, OpSpMV, OpSelect, OpInvert, OpPrune, OpAugment, OpOther}

// Stats aggregates one rank's (and after merging, the whole run's)
// measurements.
type Stats struct {
	// Engine is the registry name of the engine that ran the solve
	// (SPMD-replicated; set by RunEngine).
	Engine     string
	Phases     int // MS-BFS phases executed (repeat-until rounds)
	Iterations int // level-synchronous frontier iterations, all phases
	// PushIterations and PullIterations split the iterations by SpMV
	// direction when direction optimization is enabled.
	PushIterations, PullIterations int
	// Augmentations counts how many times each variant ran.
	LevelParallelAugments int
	PathParallelAugments  int
	AugmentedPaths        int // total augmenting paths applied
	InitCardinality       int // matching size after the initializer
	Cardinality           int // final matching size
	// Tree-grafting counters (MCMGraft): full resets performed and total
	// rows released from augmented trees.
	GraftResets       int
	GraftReleasedRows int
	// Checkpoint counters (Config.CheckpointEvery): checkpoints taken,
	// bytes their encodings total, and wall time spent gathering and
	// packaging them — the recovery overhead a bench run reports.
	Checkpoints     int
	CheckpointBytes int64
	CheckpointWall  time.Duration
	// PeakFrontier is the largest column frontier any iteration entered and
	// PeakFrontierIteration the global iteration number it occurred at —
	// the one-line summary of the iteration time-series, kept even when the
	// full per-iteration series (Config.Obs) is not recorded.
	PeakFrontier          int
	PeakFrontierIteration int

	// Threading is this rank's worker-pool telemetry for the solve: team
	// size, parallel regions fanned out vs. run inline, busy time, and
	// (via Utilization) how much of the team's capacity was used. After
	// MergeMax it holds the per-field maximum across ranks.
	Threading parallel.Stats

	// Wall is wall-clock time per category for this rank (in-process
	// simulation time, useful for relative breakdown).
	Wall map[Op]time.Duration
	// Meter is the communication/work meter delta per category for this
	// rank, the input to the alpha-beta cost model.
	Meter map[Op]mpi.Meter
	// Comm is the split-phase communication-time ledger per category:
	// total request-in-flight time vs the part this rank actually spent
	// blocked (exposed). Total minus exposed is the latency hidden behind
	// local computation by the overlapped schedules.
	Comm map[Op]mpi.CommTimes
}

// newStats returns a zeroed Stats with allocated maps.
func newStats() *Stats {
	return &Stats{
		Wall:  make(map[Op]time.Duration),
		Meter: make(map[Op]mpi.Meter),
		Comm:  make(map[Op]mpi.CommTimes),
	}
}

// TotalWall sums wall time across categories.
func (s *Stats) TotalWall() time.Duration {
	var t time.Duration
	for _, d := range s.Wall {
		t += d
	}
	return t
}

// TotalMeter sums the per-category meters.
func (s *Stats) TotalMeter() mpi.Meter {
	var m mpi.Meter
	for _, d := range s.Meter {
		m = m.Add(d)
	}
	return m
}

// MergeMax folds another rank's stats into s, taking per-category maxima for
// wall time and meters (critical-path approximation) and verifying the
// SPMD-replicated counters agree.
func (s *Stats) MergeMax(o *Stats) {
	if s.Engine == "" {
		s.Engine = o.Engine
	}
	s.Threading = s.Threading.Max(o.Threading)
	if o.Checkpoints > s.Checkpoints {
		s.Checkpoints = o.Checkpoints
	}
	if o.CheckpointBytes > s.CheckpointBytes {
		s.CheckpointBytes = o.CheckpointBytes
	}
	if o.CheckpointWall > s.CheckpointWall {
		s.CheckpointWall = o.CheckpointWall
	}
	if o.PeakFrontier > s.PeakFrontier {
		s.PeakFrontier = o.PeakFrontier
		s.PeakFrontierIteration = o.PeakFrontierIteration
	}
	for op, d := range o.Wall {
		if d > s.Wall[op] {
			s.Wall[op] = d
		}
	}
	for op, m := range o.Meter {
		s.Meter[op] = s.Meter[op].Max(m)
	}
	for op, ct := range o.Comm {
		s.Comm[op] = s.Comm[op].Max(ct)
	}
}

// TotalComm sums the per-category communication-time ledgers.
func (s *Stats) TotalComm() mpi.CommTimes {
	var t mpi.CommTimes
	for _, ct := range s.Comm {
		t = t.Add(ct)
	}
	return t
}

// tracker measures one rank's per-category wall time and meter deltas. The
// measurement itself lives in the runtime context's ledger (rt.Ctx.Track),
// which survives across solves when a context is reused; the tracker
// additionally writes each delta into this solve's Stats.
type tracker struct {
	ctx   *rt.Ctx
	stats *Stats
}

// track runs fn, attributing its wall time, meter delta and comm-time
// delta to op.
func (t *tracker) track(op Op, fn func()) {
	delta := t.ctx.Track(string(op), fn)
	t.stats.Wall[op] += delta.Wall
	t.stats.Meter[op] = t.stats.Meter[op].Add(delta.Meter)
	t.stats.Comm[op] = t.stats.Comm[op].Add(delta.Comm)
}

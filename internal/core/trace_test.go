package core

// Trace-correctness tests for the observability plane (ISSUE 5): spans must
// be properly nested per rank, collective spans must rendezvous across ranks
// through shared flow ids, and attaching a collector must not perturb the
// solve (bit-identical mate vectors). A MergeMax regression test pins the
// rank-maximum merge across every Stats category, including the Comm map.

import (
	"sort"
	"testing"
	"time"

	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
	"mcmdist/internal/rmat"
)

// solveTraced runs one RMAT solve with a span-recording collector attached
// and returns the collector.
func solveTraced(t *testing.T, procs int, cfg Config) *obs.Collector {
	t.Helper()
	a := rmat.MustGenerate(rmat.G500, 8, 8, 5)
	col := obs.NewCollector(procs, obs.Options{Spans: true, TimeSeries: true})
	cfg.Procs = procs
	cfg.Obs = col
	mustSolve(t, a, cfg)
	return col
}

// computeKind reports whether k lives on a rank's compute track, where
// spans must nest properly. Collective and RMA spans live on the separate
// comm track because split-phase requests legitimately straddle op
// boundaries (started inside one op, completed inside a later one).
func computeKind(k obs.Kind) bool {
	switch k {
	case obs.KindSolve, obs.KindPhase, obs.KindIteration, obs.KindOp:
		return true
	}
	return false
}

func TestTraceSpansNestPerRank(t *testing.T) {
	t.Run("mcm", func(t *testing.T) { checkNesting(t, Config{}) })
	t.Run("graft", func(t *testing.T) { checkNesting(t, Config{TreeGrafting: true}) })
}

// checkNesting solves with cfg under a collector and asserts every rank's
// compute-track spans form a proper forest.
func checkNesting(t *testing.T, cfg Config) {
	t.Helper()
	const procs = 4
	col := solveTraced(t, procs, cfg)
	if col.Dropped() != 0 {
		t.Fatalf("ring dropped %d spans at default capacity", col.Dropped())
	}
	for r := 0; r < procs; r++ {
		spans := col.Tracer(r).Spans()
		if len(spans) == 0 {
			t.Fatalf("rank %d recorded no spans", r)
		}
		var solves, iters, ops int
		// Spans are recorded at End, so the ring holds children before
		// their parents. Re-sort into document order (start ascending,
		// longer span first on ties) and run the stack containment check:
		// each span must either start after every open ancestor ended
		// (sibling) or lie fully inside the innermost still-open one.
		type ival struct {
			name       string
			start, end int64
		}
		var ivals []ival
		for _, sp := range spans {
			if !computeKind(sp.Kind) {
				continue
			}
			switch sp.Kind {
			case obs.KindSolve:
				solves++
			case obs.KindIteration:
				iters++
			case obs.KindOp:
				ops++
			}
			ivals = append(ivals, ival{sp.Name, sp.Start, sp.Start + sp.Dur})
		}
		sort.Slice(ivals, func(i, j int) bool {
			if ivals[i].start != ivals[j].start {
				return ivals[i].start < ivals[j].start
			}
			return ivals[i].end > ivals[j].end
		})
		var stack []ival
		for _, cur := range ivals {
			for len(stack) > 0 && stack[len(stack)-1].end <= cur.start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if cur.end > top.end {
					t.Fatalf("rank %d: span %q [%d,%d) partially overlaps %q [%d,%d)",
						r, cur.name, cur.start, cur.end, top.name, top.start, top.end)
				}
			}
			stack = append(stack, cur)
		}
		if solves != 1 {
			t.Fatalf("rank %d: %d solve spans, want 1", r, solves)
		}
		if iters == 0 || ops == 0 {
			t.Fatalf("rank %d: iters=%d ops=%d, want both > 0", r, iters, ops)
		}
	}
}

func TestTraceFlowPairsAcrossRanks(t *testing.T) {
	const procs = 4
	col := solveTraced(t, procs, Config{})
	type member struct {
		rank int
		name string
	}
	groups := make(map[uint64][]member)
	for r := 0; r < procs; r++ {
		for _, sp := range col.Tracer(r).Spans() {
			if sp.Kind == obs.KindCollective && sp.Flow != 0 {
				groups[sp.Flow] = append(groups[sp.Flow], member{r, sp.Name})
			}
		}
	}
	if len(groups) == 0 {
		t.Fatal("no collective flow groups recorded")
	}
	for id, ms := range groups {
		// Every member of the comm records the same (name, generation)
		// rendezvous: at least two distinct ranks, no rank twice, one name.
		if len(ms) < 2 {
			t.Fatalf("flow %#x has a single member %+v: no rendezvous", id, ms[0])
		}
		seen := map[int]bool{}
		for _, m := range ms {
			if m.name != ms[0].name {
				t.Fatalf("flow %#x mixes ops %q and %q", id, ms[0].name, m.name)
			}
			if seen[m.rank] {
				t.Fatalf("flow %#x has rank %d twice", id, m.rank)
			}
			seen[m.rank] = true
		}
	}
}

// TestTraceBitIdentical checks that attaching the observability plane does
// not perturb the algorithm: the same instance solved with and without a
// collector must produce identical mate vectors, not merely equal
// cardinality.
func TestTraceBitIdentical(t *testing.T) {
	a := rmat.MustGenerate(rmat.G500, 8, 8, 11)
	for _, procs := range []int{1, 4} {
		cfg := Config{Procs: procs, Seed: 3}
		plain := mustSolve(t, a, cfg)
		traced := cfg
		traced.Obs = obs.NewCollector(procs, obs.Options{Spans: true, TimeSeries: true})
		obsRes := mustSolve(t, a, traced)
		for i, v := range plain.Matching.MateR {
			if obsRes.Matching.MateR[i] != v {
				t.Fatalf("procs=%d: MateR[%d] = %d traced, %d plain",
					procs, i, obsRes.Matching.MateR[i], v)
			}
		}
		for j, v := range plain.Matching.MateC {
			if obsRes.Matching.MateC[j] != v {
				t.Fatalf("procs=%d: MateC[%d] = %d traced, %d plain",
					procs, j, obsRes.Matching.MateC[j], v)
			}
		}
	}
}

// TestMergeMaxAllCategories pins the rank-maximum merge across every
// measured category, in particular the per-op Comm ledger map.
func TestMergeMaxAllCategories(t *testing.T) {
	a := newStats()
	a.Wall[OpSpMV] = 10 * time.Millisecond
	a.Meter[OpSpMV] = mpi.Meter{Msgs: 5, Words: 100, Work: 7}
	a.Comm[OpSpMV] = mpi.CommTimes{Total: 8 * time.Millisecond, Exposed: 2 * time.Millisecond}
	a.PeakFrontier, a.PeakFrontierIteration = 40, 2
	a.Checkpoints, a.CheckpointBytes = 1, 100

	b := newStats()
	b.Wall[OpSpMV] = 4 * time.Millisecond
	b.Wall[OpAugment] = 6 * time.Millisecond
	b.Meter[OpSpMV] = mpi.Meter{Msgs: 9, Words: 50, Work: 3}
	b.Comm[OpSpMV] = mpi.CommTimes{Total: 12 * time.Millisecond, Exposed: 1 * time.Millisecond}
	b.Comm[OpAugment] = mpi.CommTimes{Total: 3 * time.Millisecond, Exposed: 3 * time.Millisecond}
	b.PeakFrontier, b.PeakFrontierIteration = 90, 5

	a.MergeMax(b)

	if a.Wall[OpSpMV] != 10*time.Millisecond || a.Wall[OpAugment] != 6*time.Millisecond {
		t.Fatalf("Wall merge wrong: %+v", a.Wall)
	}
	// Meters max element-wise, not whole-struct.
	if m := a.Meter[OpSpMV]; m.Msgs != 9 || m.Words != 100 || m.Work != 7 {
		t.Fatalf("Meter merge wrong: %+v", m)
	}
	// The Comm map must max-merge per key, including keys only one side has.
	if ct := a.Comm[OpSpMV]; ct.Total != 12*time.Millisecond || ct.Exposed != 2*time.Millisecond {
		t.Fatalf("Comm[spmv] merge wrong: %+v", ct)
	}
	if ct := a.Comm[OpAugment]; ct.Total != 3*time.Millisecond || ct.Exposed != 3*time.Millisecond {
		t.Fatalf("Comm[augment] merge wrong: %+v", ct)
	}
	if a.PeakFrontier != 90 || a.PeakFrontierIteration != 5 {
		t.Fatalf("PeakFrontier merge wrong: %d@%d", a.PeakFrontier, a.PeakFrontierIteration)
	}
	if a.Checkpoints != 1 || a.CheckpointBytes != 100 {
		t.Fatalf("checkpoint merge wrong: %d/%d", a.Checkpoints, a.CheckpointBytes)
	}
}

package core

// Pooling on/off equivalence: MCM-DIST must compute the same matching
// cardinality (and, the algorithm being deterministic, the same per-rank
// communication meters) whether the runtime context's arena is enabled or
// in pass-through mode (Config.DisableReuse). Any divergence means a pooled
// buffer leaked state between borrows. The sweep mirrors the generator,
// seed, and grid-shape combinations of the oracle tests in core_test.go.

import (
	"fmt"
	"math/rand"
	"testing"

	"mcmdist/internal/matching"
	"mcmdist/internal/rmat"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// solveBothWays runs cfg pooled and unpooled and asserts identical
// cardinality, oracle agreement, and identical per-rank meters.
func solveBothWays(t *testing.T, name string, a *spmat.CSC, cfg Config) {
	t.Helper()
	want := matching.HopcroftKarp(a, nil).Cardinality()
	on := mustSolve(t, a, cfg)
	cfgOff := cfg
	cfgOff.DisableReuse = true
	off := mustSolve(t, a, cfgOff)
	if on.Stats.Cardinality != off.Stats.Cardinality {
		t.Fatalf("%s: pooled cardinality %d, unpooled %d",
			name, on.Stats.Cardinality, off.Stats.Cardinality)
	}
	if on.Stats.Cardinality != want {
		t.Fatalf("%s: cardinality %d, oracle %d", name, on.Stats.Cardinality, want)
	}
	for r := range on.PerRank {
		if on.PerRank[r] != off.PerRank[r] {
			t.Fatalf("%s rank %d: pooled meter %+v, unpooled %+v",
				name, r, on.PerRank[r], off.PerRank[r])
		}
	}
}

func TestPoolingOnOffEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 4; trial++ {
		nr, nc := 10+rng.Intn(40), 10+rng.Intn(40)
		a := randomBipartite(rng, nr, nc, rng.Intn(4*(nr+nc))+nr)
		for _, procs := range []int{1, 4, 9} {
			for _, init := range []Init{InitNone, InitGreedy} {
				name := fmt.Sprintf("trial %d p=%d init=%v", trial, procs, init)
				solveBothWays(t, name, a, Config{Procs: procs, Init: init})
			}
		}
	}
}

func TestPoolingOnOffEquivalenceVariants(t *testing.T) {
	// The harder configurations: every initializer, the randomized
	// semirings, tree grafting, direction optimization, permutation, and
	// rectangular grids — each compared pooled vs unpooled on random and
	// RMAT generators.
	rng := rand.New(rand.NewSource(10))
	graphs := []struct {
		name string
		a    *spmat.CSC
	}{
		{"random", randomBipartite(rng, 60, 60, 260)},
		{"g500", rmat.MustGenerate(rmat.G500, 7, 4, 21)},
		{"er", rmat.MustGenerate(rmat.ER, 7, 4, 21)},
	}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"karp-sipser", Config{Procs: 4, Init: InitKarpSipser}},
		{"dyn-mindegree", Config{Procs: 4, Init: InitDynMinDegree}},
		{"rand-root", Config{Procs: 4, AddOp: semiring.RandRoot}},
		{"rand-parent", Config{Procs: 4, AddOp: semiring.RandParent}},
		{"graft-permuted", Config{Procs: 4, Init: InitDynMinDegree, TreeGrafting: true, Permute: true, Seed: 4}},
		{"dir-opt", Config{Procs: 4, Init: InitGreedy, DirectionOptimized: true}},
		{"grid-2x3", Config{GridRows: 2, GridCols: 3, Init: InitDynMinDegree, Permute: true, Seed: 4}},
		{"grid-1x4", Config{GridRows: 1, GridCols: 4, Init: InitGreedy}},
	}
	for _, g := range graphs {
		for _, c := range configs {
			solveBothWays(t, g.name+"/"+c.name, g.a, c.cfg)
		}
	}
}

package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mcmdist/internal/matching"
	"mcmdist/internal/mpi"
	"mcmdist/internal/rmat"
	"mcmdist/internal/rt"
	"mcmdist/internal/spmat"
	"mcmdist/internal/verify"
)

// RecoveryPolicy bounds the retry loop of a recoverable solve.
type RecoveryPolicy struct {
	// MaxRetries is how many times a faulted attempt is retried before the
	// last error is surfaced. Zero means the default of 3.
	MaxRetries int
	// Backoff is the sleep before the first retry; each further retry
	// doubles it up to MaxBackoff. Zero means 5ms (capped at 500ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// DisableVerify skips the validity check on restored checkpoints.
	// Verification is the safety net that keeps a corrupted snapshot from
	// silently poisoning the restarted solve; leave it on outside of tests.
	DisableVerify bool
	// Worlds provisions the transport endpoints for attempt generation gen
	// (0 for the first attempt, 1 for the first retry, ...). Nil keeps the
	// historical in-process behavior: a fresh inproc world per attempt.
	// When set, the retry engine runs every returned endpoint concurrently
	// in this process — the loopback form of a multi-process deployment —
	// taking the result from the endpoint hosting rank 0 and Closing every
	// endpoint when the attempt ends, success or failure. (A solve that
	// actually spans OS processes restarts through distjob.Supervise, which
	// re-runs rendezvous per generation; this hook is the same engine
	// exercised in one process.)
	Worlds func(gen int) ([]mpi.Transport, error)
}

func (p RecoveryPolicy) withDefaults() RecoveryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	return p
}

// RecoveryStats reports what the retry engine did: attempts run, retries
// (attempts minus one, unless the first try succeeded), checkpoints taken
// across all attempts with their encoded volume, the wall time the
// successful attempt spent checkpointing, and the phase the final attempt
// resumed from (0 when it started fresh).
type RecoveryStats struct {
	Attempts        int
	Retries         int
	Checkpoints     int
	CheckpointBytes int64
	CheckpointWall  time.Duration
	ResumedPhase    int
	// Errors collects each failed attempt's error, in order.
	Errors []error
}

// SolveRecoverable is Solve with checkpoint/restart: it runs the solve under
// the configured fault plane and, when an attempt dies (injected fault,
// genuine panic, watchdog abort), restarts it from the last phase-boundary
// checkpoint with exponential backoff, up to pol.MaxRetries times. Restored
// checkpoints are verified to encode a valid matching of a before resuming
// (unless pol.DisableVerify). cfg.CheckpointEvery should be positive; with
// checkpointing disabled the retry simply restarts from scratch.
func SolveRecoverable(a *spmat.CSC, cfg Config, pol RecoveryPolicy) (*Result, *RecoveryStats, error) {
	cfg = cfg.withDefaults()
	pr, pc, err := cfg.gridShape()
	if err != nil {
		return nil, nil, err
	}
	cfg.Procs = pr * pc

	// Permute once, outside the retry loop, so every attempt (and every
	// checkpoint) lives in one consistent permuted index space.
	work := a
	var rowPerm, colPerm []int
	if cfg.Permute {
		rowPerm = rmat.RandomPermutation(a.NRows, cfg.Seed*2+1)
		colPerm = rmat.RandomPermutation(a.NCols, cfg.Seed*2+2)
		work = a.Permute(rowPerm, colPerm)
	}
	blocks := spmat.Distribute2D(work, pr, pc)
	blocksT := spmat.Distribute2D(work.Transpose(), pr, pc)

	res, rec, err := SolveRecoverableGrid(work, pr, pc, work.NRows, work.NCols, blocks, blocksT, cfg, nil, pol)
	if err != nil {
		return nil, rec, err
	}
	if cfg.Permute {
		res.Matching = unpermute(res.Matching, rowPerm, colPerm)
	}
	return res, rec, nil
}

// SolveRecoverableGrid is the retry engine behind SolveRecoverable, for
// callers whose matrix is already distributed (the session API). a is the
// assembled matrix in the same index space as the blocks, used only to
// verify restored checkpoints; nil skips that check. ctxs optionally reuses
// per-rank runtime contexts across attempts and solves (worker pools hold
// no communicator state, so a context that survived an aborted attempt is
// safe to rebind); nil builds fresh contexts per attempt.
func SolveRecoverableGrid(a *spmat.CSC, pr, pc, n1, n2 int, blocks, blocksT [][]*spmat.LocalMatrix,
	cfg Config, ctxs []*rt.Ctx, pol RecoveryPolicy) (*Result, *RecoveryStats, error) {
	cfg = cfg.withDefaults()
	cfg.Procs = pr * pc
	// Resolve the engine once, up front, so validateCheckpoint compares
	// hashes against the same concrete engine every attempt runs (an "auto"
	// choice must not drift between attempts of one recoverable solve).
	cfg, err := ResolveEngineConfig(cfg, n1, n2, blocks)
	if err != nil {
		return nil, nil, err
	}
	pol = pol.withDefaults()
	rec := &RecoveryStats{}

	// Capture the freshest checkpoint as it is produced (rank 0 writes it
	// inside the attempt; mpi.Run's completion orders that write before the
	// driver's read), chaining to any caller-supplied handler.
	var last *Checkpoint
	if cfg.CheckpointEvery > 0 {
		userCB := cfg.OnCheckpoint
		if userCB == nil {
			userCB = func(*Checkpoint) {}
		}
		cfg.OnCheckpoint = func(ck *Checkpoint) {
			last = ck
			rec.Checkpoints++
			rec.CheckpointBytes += int64(ck.EncodedSize())
			userCB(ck)
		}
	}

	backoff := pol.Backoff
	for gen := 0; ; gen++ {
		rec.Attempts++
		// Each attempt gets a fresh world: a nil pol.Worlds selects the
		// inproc backend; otherwise the provider builds the generation's
		// endpoints (tcpnet loopback in tests, distjob.Supervise across real
		// processes — see docs/TRANSPORT.md).
		res, err := runRecoveryAttempt(pr, pc, n1, n2, blocks, blocksT, cfg, ctxs, pol, gen)
		if err == nil {
			rec.CheckpointWall = res.Stats.CheckpointWall
			return res, rec, nil
		}
		rec.Errors = append(rec.Errors, err)
		if rec.Retries >= pol.MaxRetries {
			return nil, rec, fmt.Errorf("core: solve failed after %d attempts: %w", rec.Attempts, err)
		}
		if last != nil {
			if verr := validateCheckpoint(a, cfg, n1, n2, last, pol); verr != nil {
				return nil, rec, fmt.Errorf("core: cannot restart, checkpoint rejected: %w (attempt failed with %v)", verr, err)
			}
			cfg.Resume = last
			rec.ResumedPhase = last.Phase
		}
		rec.Retries++
		time.Sleep(backoff)
		backoff *= 2
		if backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}

// runRecoveryAttempt runs one attempt generation of the retry engine. With
// no Worlds provider it is exactly the historical in-process attempt. With
// one, every endpoint of the generation runs concurrently (each hosting its
// own ranks), the result comes from the endpoint hosting rank 0 — mate
// vectors are allgathered, so it holds the full matching — and all endpoints
// are Closed before returning, so a failed generation leaves no goroutines
// or sockets behind for the next one to trip over.
func runRecoveryAttempt(pr, pc, n1, n2 int, blocks, blocksT [][]*spmat.LocalMatrix,
	cfg Config, ctxs []*rt.Ctx, pol RecoveryPolicy, gen int) (*Result, error) {
	if pol.Worlds == nil {
		return runAttemptGrid(nil, pr, pc, n1, n2, blocks, blocksT, cfg, ctxs)
	}
	eps, err := pol.Worlds(gen)
	if err != nil {
		return nil, fmt.Errorf("core: provisioning attempt generation %d: %w", gen, err)
	}
	results := make([]*Result, len(eps))
	errs := make([]error, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep mpi.Transport) {
			defer wg.Done()
			defer ep.Close()
			results[i], errs[i] = runAttemptGrid(ep, pr, pc, n1, n2, blocks, blocksT, cfg, ctxs)
		}(i, ep)
	}
	wg.Wait()
	if err := pickAttemptError(errs); err != nil {
		return nil, err
	}
	for i, ep := range eps {
		for _, r := range ep.LocalRanks() {
			if r == 0 {
				return results[i], nil
			}
		}
	}
	return nil, fmt.Errorf("core: no endpoint of generation %d hosted rank 0", gen)
}

// pickAttemptError selects the error a failed multi-endpoint attempt
// surfaces: the first injected-fault error when one exists (the endpoint
// where the fault actually fired, rather than a peer's view of the ensuing
// abort), otherwise the first non-nil error in endpoint order. Both rules
// are deterministic given deterministic faults, which keeps the retry
// engine's error stream reproducible.
func pickAttemptError(errs []error) error {
	for _, e := range errs {
		if e != nil && (errors.Is(e, mpi.ErrInjectedNetFault) ||
			errors.Is(e, mpi.ErrInjectedCrash) || errors.Is(e, mpi.ErrInjectedRMAFailure)) {
			return e
		}
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// validateCheckpoint is the pre-restart safety net: shape, config hash,
// internally consistent cardinality, and (when the matrix is available and
// verification is on) a full validity check that every matched pair is an
// edge and the two mate vectors agree.
func validateCheckpoint(a *spmat.CSC, cfg Config, n1, n2 int, ck *Checkpoint, pol RecoveryPolicy) error {
	if ck.N1 != n1 || ck.N2 != n2 {
		return fmt.Errorf("checkpoint is %dx%d, problem is %dx%d", ck.N1, ck.N2, n1, n2)
	}
	if len(ck.MateR) != n1 || len(ck.MateC) != n2 {
		return fmt.Errorf("checkpoint mate vectors are %dx%d, want %dx%d", len(ck.MateR), len(ck.MateC), n1, n2)
	}
	if want := cfg.engineOrDefault(); ck.Engine != "" && ck.Engine != want {
		return fmt.Errorf("checkpoint was taken by engine %q, refusing cross-engine resume with %q", ck.Engine, want)
	}
	if want := cfg.CheckpointHash(n1, n2); ck.ConfigHash != want {
		return fmt.Errorf("checkpoint config hash %#x does not match current config %#x", ck.ConfigHash, want)
	}
	if got := countMatched(ck.MateC); got != ck.Cardinality {
		return fmt.Errorf("checkpoint says cardinality %d but mate vector holds %d matches", ck.Cardinality, got)
	}
	if !pol.DisableVerify && a != nil {
		if err := verify.Valid(a, &matching.Matching{MateR: ck.MateR, MateC: ck.MateC}); err != nil {
			return fmt.Errorf("checkpoint is not a valid matching: %w", err)
		}
	}
	return nil
}

package core

import (
	"mcmdist/internal/dvec"
	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
	"mcmdist/internal/semiring"
)

// startFrontierCount begins the split-phase allreduce that sizes the next
// column frontier. The solver loops start it the moment a frontier is
// produced and consume it at the top of the next iteration, so the
// reduction's latency hides behind the bookkeeping in between (and, for the
// phase-final frontier, behind nothing — the request is simply waited).
// With overlap disabled it returns nil and the loop-top check falls back to
// the blocking fc.Nnz(); the meters are identical either way because a
// split-phase collective meters at completion, inside the same tracked
// loop-top section where the blocking allreduce would run.
func (s *Solver) startFrontierCount(fc *dvec.SparseV) *mpi.ValueRequest {
	if !s.G.RT.Overlap() {
		return nil
	}
	return s.G.World.IAllreduce(mpi.OpSum, int64(fc.LocalNnz()))
}

// waitFrontierCount resolves a loop-top frontier size: the pipelined
// request when one is in flight, the blocking collective otherwise.
func (s *Solver) waitFrontierCount(rq *mpi.ValueRequest, fc *dvec.SparseV) int {
	if rq != nil {
		return int(rq.Wait())
	}
	return fc.Nnz()
}

// MCM runs Algorithm 2 (MCM-DIST) on the given mate vectors, updating them
// in place to a maximum cardinality matching. Collective: every rank of the
// grid calls it together with its own mate vector pieces.
func (s *Solver) MCM(mater, matec *dvec.Dense) {
	trc := s.G.RT.Tracer()
	solve0 := trc.Begin()
	// dir carries the adaptive direction choice (see direction.go): the
	// sticky pull-disable, the per-phase discovery count, and the resolved
	// switch threshold.
	var dir dirState
	phase := 0
	for {
		phase++
		dir.resetPhase()
		phase0 := trc.Begin()
		// Per-phase state: parents of visited rows and endpoints of
		// discovered augmenting paths (Algorithm 2, lines 3-5).
		pir := dvec.NewDense(s.RowL, semiring.None)
		pathc := dvec.NewDense(s.ColL, semiring.None)

		var fc *dvec.SparseV
		var fcCount *mpi.ValueRequest
		s.tr.track(OpOther, func() {
			fc = s.unmatchedColFrontier(matec)
			fcCount = s.startFrontierCount(fc)
		})
		pathsFound := 0

		for {
			var frontierSize int
			s.tr.track(OpOther, func() {
				frontierSize = s.waitFrontierCount(fcCount, fc)
				fcCount = nil
			})
			if frontierSize == 0 {
				break
			}
			s.Stats.Iterations++
			iter0 := s.obsIterBegin()

			// Step 1: explore neighbors of the column frontier in the
			// direction chooseDirection picks for this iteration (see
			// direction.go and docs/KERNELS.md for the heuristic).
			var fr *dvec.SparseV
			usePull := s.chooseDirection(&dir, frontierSize)
			s.tr.track(OpSpMV, func() {
				fr = s.mulDirected(usePull, &dir, fc, pir)
			})

			// Steps 2-4: unvisited rows; record parents; split into
			// unmatched (path endpoints) and matched rows.
			var ufr *dvec.SparseV
			s.tr.track(OpSelect, func() {
				fr = fr.Select(pir, func(v int64) bool { return v == semiring.None })
				pir.ScatterParents(fr)
				ufr = fr.Select(mater, func(v int64) bool { return v == semiring.None })
				fr = fr.Select(mater, func(v int64) bool { return v != semiring.None })
			})
			if s.adaptiveDirection() {
				// Track discovered rows for the direction heuristic (the
				// same frontier-size allreduce real direction-optimized
				// BFS implementations perform each level).
				s.tr.track(OpOther, func() {
					dir.noteDiscovered(fr.Nnz() + ufr.Nnz())
				})
			}

			var newPaths int
			s.tr.track(OpOther, func() { newPaths = ufr.Nnz() })
			if newPaths > 0 {
				// Step 5: store endpoints of newly discovered augmenting
				// paths, one per alternating tree (INVERT keeps one).
				var tc *dvec.SparseV
				s.tr.track(OpInvert, func() {
					tc = ufr.InvertRoots(s.ColL)
				})
				s.tr.track(OpSelect, func() {
					pathc.ScatterParents(tc)
				})
				s.tr.track(OpOther, func() {
					pathsFound += tc.Nnz()
				})

				// Step 6: prune vertices in trees that already yielded a
				// path (the Fig. 8 ablation switch).
				if !s.Cfg.DisablePrune {
					s.tr.track(OpPrune, func() {
						roots := ufr.RootVals(s.G.RT.GetInts(ufr.LocalNnz()))
						fr = fr.PruneRoots(roots)
						s.G.RT.PutInts(roots)
					})
				}
			}

			// Step 7: next column frontier from the mates of the matched
			// rows that remain.
			s.tr.track(OpSelect, func() {
				fr.SetParentsFrom(mater)
			})
			s.tr.track(OpInvert, func() {
				fc = fr.InvertParents(s.ColL)
				fcCount = s.startFrontierCount(fc)
			})

			s.obsIterEnd(iter0, phase, frontierSize, newPaths, usePull)
			if s.Cfg.OnIteration != nil && s.G.World.Rank() == 0 {
				s.Cfg.OnIteration(IterInfo{
					Phase:        phase,
					Iteration:    s.Stats.Iterations,
					FrontierSize: frontierSize,
					NewPaths:     newPaths,
					Pull:         usePull,
				})
			}
		}

		if pathsFound == 0 {
			trc.End(obs.KindPhase, "phase", phase0, int64(phase))
			break // no augmenting path in this phase: matching is maximum
		}
		s.Stats.Phases++
		s.Stats.AugmentedPaths += pathsFound

		// Step 8: augment by all paths found in this phase. The mate
		// vectors re-enter the "valid matching" invariant here, making the
		// phase boundary a restart point for checkpoint/restart.
		s.tr.track(OpAugment, func() {
			s.augment(pathc, pir, mater, matec, pathsFound)
		})
		s.maybeCheckpoint(s.Stats.Phases, mater, matec)
		trc.End(obs.KindPhase, "phase", phase0, int64(phase))
	}
	s.Stats.Cardinality = s.N2 - s.countUnmatched(matec)
	s.captureThreadStats()
	trc.End(obs.KindSolve, "mcm", solve0, int64(s.Stats.Cardinality))
}

// MCMSingleSource runs the single-source (SS-BFS) variant the paper's
// Section III-A dismisses: each phase searches from ONE unmatched column
// instead of all of them. It exists to quantify that argument — the
// level-synchronous machinery is identical, but the algorithm needs ~|C|
// phases of ~diameter iterations each, so its synchronization count (and
// hence its latency term) explodes while every SpMV does trivial work.
// Collective.
func (s *Solver) MCMSingleSource(mater, matec *dvec.Dense) {
	trc := s.G.RT.Tracer()
	solve0 := trc.Begin()
	var dir dirState
	// retired marks columns proven unmatchable: once no augmenting path
	// leaves a vertex, none ever will again (augmentations only grow the
	// reachable matching), so retirement is permanent.
	retired := dvec.NewDense(s.ColL, 0)
	for {
		dir.resetPhase()
		pir := dvec.NewDense(s.RowL, semiring.None)
		pathc := dvec.NewDense(s.ColL, semiring.None)

		// Frontier: the single globally-smallest unmatched, unretired column.
		var fc *dvec.SparseV
		var src int64
		s.tr.track(OpOther, func() {
			lo := s.ColL.MyRange().Lo
			local := int64(s.N2)
			for i, v := range matec.Local {
				if v == semiring.None && retired.Local[i] == 0 {
					local = int64(lo + i)
					break
				}
			}
			src = s.G.World.Allreduce(mpi.OpMin, local)
			fc = dvec.NewSparseV(s.ColL)
			if src < int64(s.N2) && s.ColL.MyRange().Contains(int(src)) {
				fc.Append(int(src), semiring.Self(src))
			}
			s.G.World.AddWork(len(matec.Local))
		})
		if src >= int64(s.N2) {
			break // every unmatched column is retired: maximum reached
		}
		pathsFound := 0

		for {
			var frontierSize int
			s.tr.track(OpOther, func() { frontierSize = fc.Nnz() })
			if frontierSize == 0 {
				break
			}
			s.Stats.Iterations++
			iter0 := s.obsIterBegin()

			var fr *dvec.SparseV
			usePull := s.chooseDirection(&dir, frontierSize)
			s.tr.track(OpSpMV, func() {
				fr = s.mulDirected(usePull, &dir, fc, pir)
			})
			var ufr *dvec.SparseV
			s.tr.track(OpSelect, func() {
				fr = fr.Select(pir, func(v int64) bool { return v == semiring.None })
				pir.ScatterParents(fr)
				ufr = fr.Select(mater, func(v int64) bool { return v == semiring.None })
				fr = fr.Select(mater, func(v int64) bool { return v != semiring.None })
			})
			if s.adaptiveDirection() {
				s.tr.track(OpOther, func() {
					dir.noteDiscovered(fr.Nnz() + ufr.Nnz())
				})
			}
			var newPaths int
			s.tr.track(OpOther, func() { newPaths = ufr.Nnz() })
			if newPaths > 0 {
				var tc *dvec.SparseV
				s.tr.track(OpInvert, func() { tc = ufr.InvertRoots(s.ColL) })
				s.tr.track(OpSelect, func() { pathc.ScatterParents(tc) })
				s.tr.track(OpOther, func() { pathsFound += tc.Nnz() })
				s.obsIterEnd(iter0, s.Stats.Phases+1, frontierSize, newPaths, usePull)
				break // single source: the first augmenting path ends the phase
			}
			s.tr.track(OpSelect, func() { fr.SetParentsFrom(mater) })
			s.tr.track(OpInvert, func() { fc = fr.InvertParents(s.ColL) })
			s.obsIterEnd(iter0, s.Stats.Phases+1, frontierSize, newPaths, usePull)
		}

		if pathsFound == 0 {
			// The source is unmatchable now, hence forever: retire it.
			if s.ColL.MyRange().Contains(int(src)) {
				retired.SetAt(int(src), 1)
			}
			continue
		}
		s.Stats.Phases++
		s.Stats.AugmentedPaths += pathsFound
		s.tr.track(OpAugment, func() {
			s.augment(pathc, pir, mater, matec, pathsFound)
		})
		s.maybeCheckpoint(s.Stats.Phases, mater, matec)
	}
	s.Stats.Cardinality = s.N2 - s.countUnmatched(matec)
	s.captureThreadStats()
	trc.End(obs.KindSolve, "mcm-ss", solve0, int64(s.Stats.Cardinality))
}

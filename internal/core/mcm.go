package core

import (
	"mcmdist/internal/dvec"
	"mcmdist/internal/mpi"
)

// startFrontierCount begins the split-phase allreduce that sizes the next
// column frontier. The solver loops start it the moment a frontier is
// produced and consume it at the top of the next iteration, so the
// reduction's latency hides behind the bookkeeping in between (and, for the
// phase-final frontier, behind nothing — the request is simply waited).
// With overlap disabled it returns nil and the loop-top check falls back to
// the blocking fc.Nnz(); the meters are identical either way because a
// split-phase collective meters at completion, inside the same tracked
// loop-top section where the blocking allreduce would run.
func (s *Solver) startFrontierCount(fc *dvec.SparseV) *mpi.ValueRequest {
	if !s.G.RT.Overlap() {
		return nil
	}
	return s.G.World.IAllreduce(mpi.OpSum, int64(fc.LocalNnz()))
}

// waitFrontierCount resolves a loop-top frontier size: the pipelined
// request when one is in flight, the blocking collective otherwise.
func (s *Solver) waitFrontierCount(rq *mpi.ValueRequest, fc *dvec.SparseV) int {
	if rq != nil {
		return int(rq.Wait())
	}
	return fc.Nnz()
}

// MCM runs Algorithm 2 (MCM-DIST) on the given mate vectors, updating them
// in place to a maximum cardinality matching. Collective: every rank of the
// grid calls it together with its own mate vector pieces.
//
// Deprecated: MCM is a thin alias for the "bfs" engine (engine_bfs.go);
// new callers should route through the engine registry (Config.Engine,
// Solver.RunEngineByName) so the solve path stays pluggable.
func (s *Solver) MCM(mater, matec *dvec.Dense) {
	s.mustRunEngine(EngineBFS, mater, matec)
}

// MCMSingleSource runs the single-source (SS-BFS) variant the paper's
// Section III-A dismisses: each phase searches from ONE unmatched column
// instead of all of them. Collective.
//
// Deprecated: MCMSingleSource is a thin alias for the "bfs-ss" engine
// (engine_bfs.go); new callers should route through the engine registry.
func (s *Solver) MCMSingleSource(mater, matec *dvec.Dense) {
	s.mustRunEngine(EngineBFSSingleSource, mater, matec)
}

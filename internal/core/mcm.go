package core

import (
	"mcmdist/internal/dvec"
	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmv"
)

// startFrontierCount begins the split-phase allreduce that sizes the next
// column frontier. The solver loops start it the moment a frontier is
// produced and consume it at the top of the next iteration, so the
// reduction's latency hides behind the bookkeeping in between (and, for the
// phase-final frontier, behind nothing — the request is simply waited).
// With overlap disabled it returns nil and the loop-top check falls back to
// the blocking fc.Nnz(); the meters are identical either way because a
// split-phase collective meters at completion, inside the same tracked
// loop-top section where the blocking allreduce would run.
func (s *Solver) startFrontierCount(fc *dvec.SparseV) *mpi.ValueRequest {
	if !s.G.RT.Overlap() {
		return nil
	}
	return s.G.World.IAllreduce(mpi.OpSum, int64(fc.LocalNnz()))
}

// waitFrontierCount resolves a loop-top frontier size: the pipelined
// request when one is in flight, the blocking collective otherwise.
func (s *Solver) waitFrontierCount(rq *mpi.ValueRequest, fc *dvec.SparseV) int {
	if rq != nil {
		return int(rq.Wait())
	}
	return fc.Nnz()
}

// MCM runs Algorithm 2 (MCM-DIST) on the given mate vectors, updating them
// in place to a maximum cardinality matching. Collective: every rank of the
// grid calls it together with its own mate vector pieces.
func (s *Solver) MCM(mater, matec *dvec.Dense) {
	trc := s.G.RT.Tracer()
	solve0 := trc.Begin()
	// pullDisabled turns off the bottom-up direction once a pull scan
	// proves unproductive. It is sticky across phases: unproductive scans
	// come from frontier columns that are structurally deficient (no
	// augmenting path will ever leave them), and that set only grows as
	// the matching converges.
	pullDisabled := false
	phase := 0
	for {
		phase++
		phase0 := trc.Begin()
		// Per-phase state: parents of visited rows and endpoints of
		// discovered augmenting paths (Algorithm 2, lines 3-5).
		pir := dvec.NewDense(s.RowL, semiring.None)
		pathc := dvec.NewDense(s.ColL, semiring.None)

		var fc *dvec.SparseV
		var fcCount *mpi.ValueRequest
		s.tr.track(OpOther, func() {
			fc = s.unmatchedColFrontier(matec)
			fcCount = s.startFrontierCount(fc)
		})
		pathsFound := 0
		visitedRows := 0 // rows discovered so far in this phase

		for {
			var frontierSize int
			s.tr.track(OpOther, func() {
				frontierSize = s.waitFrontierCount(fcCount, fc)
				fcCount = nil
			})
			if frontierSize == 0 {
				break
			}
			s.Stats.Iterations++
			iter0 := s.obsIterBegin()

			// Step 1: explore neighbors of the column frontier, choosing
			// the SpMV direction when direction optimization is on. The
			// heuristic is Beamer-style: pull (bottom-up) when the frontier
			// is a substantial fraction of the columns AND its outgoing
			// edges outnumber the unvisited rows' edges by the usual factor
			// of ~14, so rows scanning for a parent mostly hit early.
			var fr *dvec.SparseV
			unvisited := s.N1 - visitedRows
			usePull := s.Cfg.DirectionOptimized && !pullDisabled &&
				float64(frontierSize) > s.Cfg.PullThreshold*float64(s.N2) &&
				14*frontierSize > unvisited
			s.tr.track(OpSpMV, func() {
				if usePull {
					if s.rowAdj == nil {
						s.rowAdj = spmv.RowMajor(s.A)
					}
					var ps spmv.PullStats
					fr, ps = spmv.MulPull(s.A, s.rowAdj, fc, pir, s.Cfg.AddOp, s.RowL)
					s.Stats.PullIterations++
					// Hit-rate feedback: matching frontiers can be full of
					// structurally deficient columns whose neighborhoods
					// never hit; if the global scan productivity drops
					// below 1/8, fall back to push for the rest of the
					// phase.
					scanned := s.G.World.Allreduce(mpi.OpSum, int64(ps.Scanned))
					hits := s.G.World.Allreduce(mpi.OpSum, int64(ps.Hits))
					if scanned > 0 && hits*4 < scanned {
						pullDisabled = true
					}
				} else {
					fr = spmv.Mul(s.A, fc, s.Cfg.AddOp, s.RowL)
					s.Stats.PushIterations++
				}
			})

			// Steps 2-4: unvisited rows; record parents; split into
			// unmatched (path endpoints) and matched rows.
			var ufr *dvec.SparseV
			s.tr.track(OpSelect, func() {
				fr = fr.Select(pir, func(v int64) bool { return v == semiring.None })
				pir.ScatterParents(fr)
				ufr = fr.Select(mater, func(v int64) bool { return v == semiring.None })
				fr = fr.Select(mater, func(v int64) bool { return v != semiring.None })
			})
			if s.Cfg.DirectionOptimized {
				// Track discovered rows for the direction heuristic (the
				// same frontier-size allreduce real direction-optimized
				// BFS implementations perform each level).
				s.tr.track(OpOther, func() {
					visitedRows += fr.Nnz() + ufr.Nnz()
				})
			}

			var newPaths int
			s.tr.track(OpOther, func() { newPaths = ufr.Nnz() })
			if newPaths > 0 {
				// Step 5: store endpoints of newly discovered augmenting
				// paths, one per alternating tree (INVERT keeps one).
				var tc *dvec.SparseV
				s.tr.track(OpInvert, func() {
					tc = ufr.InvertRoots(s.ColL)
				})
				s.tr.track(OpSelect, func() {
					pathc.ScatterParents(tc)
				})
				s.tr.track(OpOther, func() {
					pathsFound += tc.Nnz()
				})

				// Step 6: prune vertices in trees that already yielded a
				// path (the Fig. 8 ablation switch).
				if !s.Cfg.DisablePrune {
					s.tr.track(OpPrune, func() {
						roots := ufr.RootVals(s.G.RT.GetInts(ufr.LocalNnz()))
						fr = fr.PruneRoots(roots)
						s.G.RT.PutInts(roots)
					})
				}
			}

			// Step 7: next column frontier from the mates of the matched
			// rows that remain.
			s.tr.track(OpSelect, func() {
				fr.SetParentsFrom(mater)
			})
			s.tr.track(OpInvert, func() {
				fc = fr.InvertParents(s.ColL)
				fcCount = s.startFrontierCount(fc)
			})

			s.obsIterEnd(iter0, phase, frontierSize, newPaths, usePull)
			if s.Cfg.OnIteration != nil && s.G.World.Rank() == 0 {
				s.Cfg.OnIteration(IterInfo{
					Phase:        phase,
					Iteration:    s.Stats.Iterations,
					FrontierSize: frontierSize,
					NewPaths:     newPaths,
					Pull:         usePull,
				})
			}
		}

		if pathsFound == 0 {
			trc.End(obs.KindPhase, "phase", phase0, int64(phase))
			break // no augmenting path in this phase: matching is maximum
		}
		s.Stats.Phases++
		s.Stats.AugmentedPaths += pathsFound

		// Step 8: augment by all paths found in this phase. The mate
		// vectors re-enter the "valid matching" invariant here, making the
		// phase boundary a restart point for checkpoint/restart.
		s.tr.track(OpAugment, func() {
			s.augment(pathc, pir, mater, matec, pathsFound)
		})
		s.maybeCheckpoint(s.Stats.Phases, mater, matec)
		trc.End(obs.KindPhase, "phase", phase0, int64(phase))
	}
	s.Stats.Cardinality = s.N2 - s.countUnmatched(matec)
	s.captureThreadStats()
	trc.End(obs.KindSolve, "mcm", solve0, int64(s.Stats.Cardinality))
}

// MCMSingleSource runs the single-source (SS-BFS) variant the paper's
// Section III-A dismisses: each phase searches from ONE unmatched column
// instead of all of them. It exists to quantify that argument — the
// level-synchronous machinery is identical, but the algorithm needs ~|C|
// phases of ~diameter iterations each, so its synchronization count (and
// hence its latency term) explodes while every SpMV does trivial work.
// Collective.
func (s *Solver) MCMSingleSource(mater, matec *dvec.Dense) {
	trc := s.G.RT.Tracer()
	solve0 := trc.Begin()
	// retired marks columns proven unmatchable: once no augmenting path
	// leaves a vertex, none ever will again (augmentations only grow the
	// reachable matching), so retirement is permanent.
	retired := dvec.NewDense(s.ColL, 0)
	for {
		pir := dvec.NewDense(s.RowL, semiring.None)
		pathc := dvec.NewDense(s.ColL, semiring.None)

		// Frontier: the single globally-smallest unmatched, unretired column.
		var fc *dvec.SparseV
		var src int64
		s.tr.track(OpOther, func() {
			lo := s.ColL.MyRange().Lo
			local := int64(s.N2)
			for i, v := range matec.Local {
				if v == semiring.None && retired.Local[i] == 0 {
					local = int64(lo + i)
					break
				}
			}
			src = s.G.World.Allreduce(mpi.OpMin, local)
			fc = dvec.NewSparseV(s.ColL)
			if src < int64(s.N2) && s.ColL.MyRange().Contains(int(src)) {
				fc.Append(int(src), semiring.Self(src))
			}
			s.G.World.AddWork(len(matec.Local))
		})
		if src >= int64(s.N2) {
			break // every unmatched column is retired: maximum reached
		}
		pathsFound := 0

		for {
			var frontierSize int
			s.tr.track(OpOther, func() { frontierSize = fc.Nnz() })
			if frontierSize == 0 {
				break
			}
			s.Stats.Iterations++
			iter0 := s.obsIterBegin()

			var fr *dvec.SparseV
			s.tr.track(OpSpMV, func() {
				fr = spmv.Mul(s.A, fc, s.Cfg.AddOp, s.RowL)
				s.Stats.PushIterations++
			})
			var ufr *dvec.SparseV
			s.tr.track(OpSelect, func() {
				fr = fr.Select(pir, func(v int64) bool { return v == semiring.None })
				pir.ScatterParents(fr)
				ufr = fr.Select(mater, func(v int64) bool { return v == semiring.None })
				fr = fr.Select(mater, func(v int64) bool { return v != semiring.None })
			})
			var newPaths int
			s.tr.track(OpOther, func() { newPaths = ufr.Nnz() })
			if newPaths > 0 {
				var tc *dvec.SparseV
				s.tr.track(OpInvert, func() { tc = ufr.InvertRoots(s.ColL) })
				s.tr.track(OpSelect, func() { pathc.ScatterParents(tc) })
				s.tr.track(OpOther, func() { pathsFound += tc.Nnz() })
				s.obsIterEnd(iter0, s.Stats.Phases+1, frontierSize, newPaths, false)
				break // single source: the first augmenting path ends the phase
			}
			s.tr.track(OpSelect, func() { fr.SetParentsFrom(mater) })
			s.tr.track(OpInvert, func() { fc = fr.InvertParents(s.ColL) })
			s.obsIterEnd(iter0, s.Stats.Phases+1, frontierSize, newPaths, false)
		}

		if pathsFound == 0 {
			// The source is unmatchable now, hence forever: retire it.
			if s.ColL.MyRange().Contains(int(src)) {
				retired.SetAt(int(src), 1)
			}
			continue
		}
		s.Stats.Phases++
		s.Stats.AugmentedPaths += pathsFound
		s.tr.track(OpAugment, func() {
			s.augment(pathc, pir, mater, matec, pathsFound)
		})
		s.maybeCheckpoint(s.Stats.Phases, mater, matec)
	}
	s.Stats.Cardinality = s.N2 - s.countUnmatched(matec)
	s.captureThreadStats()
	trc.End(obs.KindSolve, "mcm-ss", solve0, int64(s.Stats.Cardinality))
}

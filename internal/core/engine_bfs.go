package core

import (
	"mcmdist/internal/dvec"
	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
	"mcmdist/internal/semiring"
)

// This file holds the three MS-BFS engines behind the Engine seam. Each
// Iterate() executes exactly one phase of the historical MCM, MCMSingleSource
// or MCMGraft loop — same statements, same collective order, same tracer
// spans — so the engines are bit-identical to the pre-seam solver (the
// direction × compression × backend × threads sweep tests pin this). The
// engines live in core rather than internal/engine because their phase
// kernels are core's private SpMV/select/augment machinery and because
// core's own in-package tests drive them through Solve; internal/engine
// hosts the external plug-ins (docs/ENGINES.md discusses the trade-off).

func init() {
	RegisterEngine(bfsEngine{})
	RegisterEngine(bfsSSEngine{})
	RegisterEngine(bfsGraftEngine{})
}

// bfsEngine is MCM-DIST (Algorithm 2): every phase searches from all
// unmatched columns at once and augments by every vertex-disjoint path found.
type bfsEngine struct{}

// Name returns "bfs".
func (bfsEngine) Name() string { return EngineBFS }

// Caps reports the full BFS capability set.
func (bfsEngine) Caps() EngineCaps {
	return EngineCaps{Checkpointable: true, DirectionOptimized: true, Augmenting: true}
}

// Start begins one MCM-DIST solve.
func (bfsEngine) Start(s *Solver, mater, matec *dvec.Dense) EngineRun {
	trc := s.G.RT.Tracer()
	return &bfsRun{s: s, mater: mater, matec: matec, solve0: trc.Begin()}
}

type bfsRun struct {
	s            *Solver
	mater, matec *dvec.Dense
	solve0       int64
	// dir carries the adaptive direction choice (see direction.go): the
	// sticky pull-disable, the per-phase discovery count, and the resolved
	// switch threshold.
	dir   dirState
	phase int
}

// Iterate runs one MS-BFS phase: grow alternating trees level by level from
// every unmatched column, then augment by all vertex-disjoint paths found.
// Returns done when a phase discovers no path (the matching is maximum).
func (r *bfsRun) Iterate() (bool, error) {
	s := r.s
	trc := s.G.RT.Tracer()
	mater, matec := r.mater, r.matec
	r.phase++
	phase := r.phase
	r.dir.resetPhase()
	phase0 := trc.Begin()
	// Per-phase state: parents of visited rows and endpoints of
	// discovered augmenting paths (Algorithm 2, lines 3-5).
	pir := dvec.NewDense(s.RowL, semiring.None)
	pathc := dvec.NewDense(s.ColL, semiring.None)

	var fc *dvec.SparseV
	var fcCount *mpi.ValueRequest
	s.tr.track(OpOther, func() {
		fc = s.unmatchedColFrontier(matec)
		fcCount = s.startFrontierCount(fc)
	})
	pathsFound := 0

	for {
		var frontierSize int
		s.tr.track(OpOther, func() {
			frontierSize = s.waitFrontierCount(fcCount, fc)
			fcCount = nil
		})
		if frontierSize == 0 {
			break
		}
		s.Stats.Iterations++
		iter0 := s.obsIterBegin()

		// Step 1: explore neighbors of the column frontier in the
		// direction chooseDirection picks for this iteration (see
		// direction.go and docs/KERNELS.md for the heuristic).
		var fr *dvec.SparseV
		usePull := s.chooseDirection(&r.dir, frontierSize)
		s.tr.track(OpSpMV, func() {
			fr = s.mulDirected(usePull, &r.dir, fc, pir)
		})

		// Steps 2-4: unvisited rows; record parents; split into
		// unmatched (path endpoints) and matched rows.
		var ufr *dvec.SparseV
		s.tr.track(OpSelect, func() {
			fr = fr.Select(pir, func(v int64) bool { return v == semiring.None })
			pir.ScatterParents(fr)
			ufr = fr.Select(mater, func(v int64) bool { return v == semiring.None })
			fr = fr.Select(mater, func(v int64) bool { return v != semiring.None })
		})
		if s.adaptiveDirection() {
			// Track discovered rows for the direction heuristic (the
			// same frontier-size allreduce real direction-optimized
			// BFS implementations perform each level).
			s.tr.track(OpOther, func() {
				r.dir.noteDiscovered(fr.Nnz() + ufr.Nnz())
			})
		}

		var newPaths int
		s.tr.track(OpOther, func() { newPaths = ufr.Nnz() })
		if newPaths > 0 {
			// Step 5: store endpoints of newly discovered augmenting
			// paths, one per alternating tree (INVERT keeps one).
			var tc *dvec.SparseV
			s.tr.track(OpInvert, func() {
				tc = ufr.InvertRoots(s.ColL)
			})
			s.tr.track(OpSelect, func() {
				pathc.ScatterParents(tc)
			})
			s.tr.track(OpOther, func() {
				pathsFound += tc.Nnz()
			})

			// Step 6: prune vertices in trees that already yielded a
			// path (the Fig. 8 ablation switch).
			if !s.Cfg.DisablePrune {
				s.tr.track(OpPrune, func() {
					roots := ufr.RootVals(s.G.RT.GetInts(ufr.LocalNnz()))
					fr = fr.PruneRoots(roots)
					s.G.RT.PutInts(roots)
				})
			}
		}

		// Step 7: next column frontier from the mates of the matched
		// rows that remain.
		s.tr.track(OpSelect, func() {
			fr.SetParentsFrom(mater)
		})
		s.tr.track(OpInvert, func() {
			fc = fr.InvertParents(s.ColL)
			fcCount = s.startFrontierCount(fc)
		})

		s.obsIterEnd(iter0, phase, frontierSize, newPaths, usePull)
		if s.Cfg.OnIteration != nil && s.G.World.Rank() == 0 {
			s.Cfg.OnIteration(IterInfo{
				Phase:        phase,
				Iteration:    s.Stats.Iterations,
				FrontierSize: frontierSize,
				NewPaths:     newPaths,
				Pull:         usePull,
			})
		}
	}

	if pathsFound == 0 {
		trc.End(obs.KindPhase, "phase", phase0, int64(phase))
		return true, nil // no augmenting path in this phase: matching is maximum
	}
	s.Stats.Phases++
	s.Stats.AugmentedPaths += pathsFound

	// Step 8: augment by all paths found in this phase. The mate
	// vectors re-enter the "valid matching" invariant here, making the
	// phase boundary a restart point for checkpoint/restart.
	s.tr.track(OpAugment, func() {
		s.augment(pathc, pir, mater, matec, pathsFound)
	})
	s.maybeCheckpoint(s.Stats.Phases, mater, matec)
	trc.End(obs.KindPhase, "phase", phase0, int64(phase))
	return false, nil
}

// Finish seals the run: final cardinality, thread telemetry, solve span.
func (r *bfsRun) Finish() error {
	s := r.s
	s.Stats.Cardinality = s.N2 - s.countUnmatched(r.matec)
	s.captureThreadStats()
	s.G.RT.Tracer().End(obs.KindSolve, "mcm", r.solve0, int64(s.Stats.Cardinality))
	return nil
}

// bfsSSEngine is the single-source (SS-BFS) variant the paper's Section
// III-A dismisses: each phase searches from ONE unmatched column instead of
// all of them. It exists to quantify that argument — the level-synchronous
// machinery is identical, but the algorithm needs ~|C| phases of ~diameter
// iterations each, so its synchronization count (and hence its latency
// term) explodes while every SpMV does trivial work.
type bfsSSEngine struct{}

// Name returns "bfs-ss".
func (bfsSSEngine) Name() string { return EngineBFSSingleSource }

// Caps matches bfs except that pruning never engages (one tree per phase).
func (bfsSSEngine) Caps() EngineCaps {
	return EngineCaps{Checkpointable: true, DirectionOptimized: true, Augmenting: true}
}

// Start begins one single-source solve.
func (bfsSSEngine) Start(s *Solver, mater, matec *dvec.Dense) EngineRun {
	return &bfsSSRun{
		s: s, mater: mater, matec: matec,
		solve0: s.G.RT.Tracer().Begin(),
		// retired marks columns proven unmatchable: once no augmenting path
		// leaves a vertex, none ever will again (augmentations only grow the
		// reachable matching), so retirement is permanent.
		retired: dvec.NewDense(s.ColL, 0),
	}
}

type bfsSSRun struct {
	s            *Solver
	mater, matec *dvec.Dense
	solve0       int64
	dir          dirState
	retired      *dvec.Dense
}

// Iterate runs one single-source phase: pick the globally smallest
// unmatched, unretired column, search until the first augmenting path, and
// apply it (or retire the source). Returns done when no source remains.
func (r *bfsSSRun) Iterate() (bool, error) {
	s := r.s
	mater, matec := r.mater, r.matec
	r.dir.resetPhase()
	pir := dvec.NewDense(s.RowL, semiring.None)
	pathc := dvec.NewDense(s.ColL, semiring.None)

	// Frontier: the single globally-smallest unmatched, unretired column.
	var fc *dvec.SparseV
	var src int64
	s.tr.track(OpOther, func() {
		lo := s.ColL.MyRange().Lo
		local := int64(s.N2)
		for i, v := range matec.Local {
			if v == semiring.None && r.retired.Local[i] == 0 {
				local = int64(lo + i)
				break
			}
		}
		src = s.G.World.Allreduce(mpi.OpMin, local)
		fc = dvec.NewSparseV(s.ColL)
		if src < int64(s.N2) && s.ColL.MyRange().Contains(int(src)) {
			fc.Append(int(src), semiring.Self(src))
		}
		s.G.World.AddWork(len(matec.Local))
	})
	if src >= int64(s.N2) {
		return true, nil // every unmatched column is retired: maximum reached
	}
	pathsFound := 0

	for {
		var frontierSize int
		s.tr.track(OpOther, func() { frontierSize = fc.Nnz() })
		if frontierSize == 0 {
			break
		}
		s.Stats.Iterations++
		iter0 := s.obsIterBegin()

		var fr *dvec.SparseV
		usePull := s.chooseDirection(&r.dir, frontierSize)
		s.tr.track(OpSpMV, func() {
			fr = s.mulDirected(usePull, &r.dir, fc, pir)
		})
		var ufr *dvec.SparseV
		s.tr.track(OpSelect, func() {
			fr = fr.Select(pir, func(v int64) bool { return v == semiring.None })
			pir.ScatterParents(fr)
			ufr = fr.Select(mater, func(v int64) bool { return v == semiring.None })
			fr = fr.Select(mater, func(v int64) bool { return v != semiring.None })
		})
		if s.adaptiveDirection() {
			s.tr.track(OpOther, func() {
				r.dir.noteDiscovered(fr.Nnz() + ufr.Nnz())
			})
		}
		var newPaths int
		s.tr.track(OpOther, func() { newPaths = ufr.Nnz() })
		if newPaths > 0 {
			var tc *dvec.SparseV
			s.tr.track(OpInvert, func() { tc = ufr.InvertRoots(s.ColL) })
			s.tr.track(OpSelect, func() { pathc.ScatterParents(tc) })
			s.tr.track(OpOther, func() { pathsFound += tc.Nnz() })
			s.obsIterEnd(iter0, s.Stats.Phases+1, frontierSize, newPaths, usePull)
			break // single source: the first augmenting path ends the phase
		}
		s.tr.track(OpSelect, func() { fr.SetParentsFrom(mater) })
		s.tr.track(OpInvert, func() { fc = fr.InvertParents(s.ColL) })
		s.obsIterEnd(iter0, s.Stats.Phases+1, frontierSize, newPaths, usePull)
	}

	if pathsFound == 0 {
		// The source is unmatchable now, hence forever: retire it.
		if s.ColL.MyRange().Contains(int(src)) {
			r.retired.SetAt(int(src), 1)
		}
		return false, nil
	}
	s.Stats.Phases++
	s.Stats.AugmentedPaths += pathsFound
	s.tr.track(OpAugment, func() {
		s.augment(pathc, pir, mater, matec, pathsFound)
	})
	s.maybeCheckpoint(s.Stats.Phases, mater, matec)
	return false, nil
}

// Finish seals the run under the historical "mcm-ss" solve span.
func (r *bfsSSRun) Finish() error {
	s := r.s
	s.Stats.Cardinality = s.N2 - s.countUnmatched(r.matec)
	s.captureThreadStats()
	s.G.RT.Tracer().End(obs.KindSolve, "mcm-ss", r.solve0, int64(s.Stats.Cardinality))
	return nil
}

// bfsGraftEngine is the tree-grafting variant of MCM-DIST — the distributed
// form of MS-BFS-Graft [Azad, Buluç, Pothen], which the paper names as
// future work. The difference from bfs: the parent and tree-ownership
// vectors persist across phases, so alternating trees that found no
// augmenting path keep their traversal; only the trees that were augmented
// release their vertices, and released rows are grafted onto surviving
// trees when rediscovered.
//
// Rendition note (same as the serial matching.MSBFSGraft): when a grafted
// phase discovers nothing, all state is reset and one plain MS-BFS phase
// runs; only if that fresh sweep also finds nothing is the matching
// declared maximum, which keeps the termination condition identical to
// Algorithm 2's.
type bfsGraftEngine struct{}

// Name returns "bfs-graft".
func (bfsGraftEngine) Name() string { return EngineBFSGraft }

// Caps reports the full BFS capability set.
func (bfsGraftEngine) Caps() EngineCaps {
	return EngineCaps{Checkpointable: true, DirectionOptimized: true, Augmenting: true}
}

// Start begins one tree-grafting solve.
func (bfsGraftEngine) Start(s *Solver, mater, matec *dvec.Dense) EngineRun {
	return &bfsGraftRun{
		s: s, mater: mater, matec: matec,
		solve0: s.G.RT.Tracer().Begin(),
		// Persistent across phases: parents of visited rows and the root of
		// the alternating tree owning each row (None = unowned).
		pir:   dvec.NewDense(s.RowL, semiring.None),
		rootR: dvec.NewDense(s.RowL, semiring.None),
	}
}

type bfsGraftRun struct {
	s            *Solver
	mater, matec *dvec.Dense
	solve0       int64
	pir, rootR   *dvec.Dense
	// dir mirrors rootR's lifetime, not the phase's: tree ownership persists
	// across grafted phases, so the discovered-row count feeding the
	// heuristic only resets when the trees do.
	dir   dirState
	fresh bool // true while running the full-reset verification phase
	phase int  // sweeps started, fresh verification sweeps included
}

// Iterate runs one grafted sweep. An empty grafted sweep triggers the
// full-reset verification phase; only an empty fresh sweep reports done.
func (r *bfsGraftRun) Iterate() (bool, error) {
	s := r.s
	trc := s.G.RT.Tracer()
	mater, matec := r.mater, r.matec
	pir, rootR := r.pir, r.rootR
	r.phase++
	phase := r.phase
	phase0 := trc.Begin()
	pathc := dvec.NewDense(s.ColL, semiring.None)
	var fc *dvec.SparseV
	var fcCount *mpi.ValueRequest
	s.tr.track(OpOther, func() {
		fc = s.unmatchedColFrontier(matec)
		fcCount = s.startFrontierCount(fc)
	})
	pathsFound := 0

	for {
		var frontierSize int
		s.tr.track(OpOther, func() {
			frontierSize = s.waitFrontierCount(fcCount, fc)
			fcCount = nil
		})
		if frontierSize == 0 {
			break
		}
		s.Stats.Iterations++
		iter0 := s.obsIterBegin()

		// The pull direction's visited set is rootR — exactly the set the
		// grafting filter below drops — so rows owned by any surviving
		// tree are skipped before the scan rather than after.
		var fr *dvec.SparseV
		usePull := s.chooseDirection(&r.dir, frontierSize)
		s.tr.track(OpSpMV, func() {
			fr = s.mulDirected(usePull, &r.dir, fc, rootR)
		})

		// Grafting filter: skip rows owned by ANY tree, from this phase
		// or an earlier one. Fresh rows are claimed for the discovering
		// tree (ownership recorded in rootR, parents in pi_r).
		var ufr *dvec.SparseV
		s.tr.track(OpSelect, func() {
			fr = fr.Select(rootR, func(v int64) bool { return v == semiring.None })
			pir.ScatterParents(fr)
			rootR.ScatterRoots(fr)
			ufr = fr.Select(mater, func(v int64) bool { return v == semiring.None })
			fr = fr.Select(mater, func(v int64) bool { return v != semiring.None })
		})
		if s.adaptiveDirection() {
			s.tr.track(OpOther, func() {
				r.dir.noteDiscovered(fr.Nnz() + ufr.Nnz())
			})
		}

		var newPaths int
		s.tr.track(OpOther, func() { newPaths = ufr.Nnz() })
		if newPaths > 0 {
			var tc *dvec.SparseV
			s.tr.track(OpInvert, func() {
				tc = ufr.InvertRoots(s.ColL)
			})
			s.tr.track(OpSelect, func() {
				pathc.ScatterParents(tc)
			})
			s.tr.track(OpOther, func() {
				pathsFound += tc.Nnz()
			})
			if !s.Cfg.DisablePrune {
				s.tr.track(OpPrune, func() {
					roots := ufr.RootVals(s.G.RT.GetInts(ufr.LocalNnz()))
					fr = fr.PruneRoots(roots)
					s.G.RT.PutInts(roots)
				})
			}
		}

		s.tr.track(OpSelect, func() {
			fr.SetParentsFrom(mater)
		})
		s.tr.track(OpInvert, func() {
			fc = fr.InvertParents(s.ColL)
			fcCount = s.startFrontierCount(fc)
		})
		s.obsIterEnd(iter0, phase, frontierSize, newPaths, usePull)
	}

	if pathsFound == 0 {
		trc.End(obs.KindPhase, "phase", phase0, int64(phase))
		if r.fresh {
			return true, nil // a full fresh sweep found nothing: maximum reached
		}
		// Grafted state may be blocking paths; reset and verify with
		// one plain phase.
		s.tr.track(OpOther, func() {
			pir.Fill(semiring.None)
			rootR.Fill(semiring.None)
			s.G.World.AddWork(len(pir.Local) + len(rootR.Local))
		})
		r.dir.resetPhase()
		s.Stats.GraftResets++
		r.fresh = true
		return false, nil
	}
	r.fresh = false
	s.Stats.Phases++
	s.Stats.AugmentedPaths += pathsFound

	s.tr.track(OpAugment, func() {
		s.augment(pathc, pir, mater, matec, pathsFound)
	})
	s.maybeCheckpoint(s.Stats.Phases, mater, matec)

	// Release the augmented (dead) trees: their vertices become
	// graftable. Dead roots are the pathc entries; every rank gathers
	// the full set (the same allgather pattern as PRUNE) and scans its
	// local pieces.
	s.tr.track(OpOther, func() {
		var local []int64
		lo := s.ColL.MyRange().Lo
		for i, end := range pathc.Local {
			if end != semiring.None {
				local = append(local, int64(lo+i))
			}
		}
		parts := s.G.World.Allgatherv(local)
		dead := make(map[int64]struct{})
		for _, p := range parts {
			for _, root := range p {
				dead[root] = struct{}{}
			}
		}
		released := 0
		for i, root := range rootR.Local {
			if root == semiring.None {
				continue
			}
			if _, ok := dead[root]; ok {
				rootR.Local[i] = semiring.None
				pir.Local[i] = semiring.None
				released++
			}
		}
		globalReleased := int(s.G.World.Allreduce(mpi.OpSum, int64(released)))
		s.Stats.GraftReleasedRows += globalReleased
		// Released rows are unowned again: fold them back into the
		// direction heuristic's unvisited count.
		r.dir.noteDiscovered(-globalReleased)
		s.G.World.AddWork(len(rootR.Local) + len(dead))
	})
	trc.End(obs.KindPhase, "phase", phase0, int64(phase))
	return false, nil
}

// Finish seals the run under the historical "mcm-graft" solve span.
func (r *bfsGraftRun) Finish() error {
	s := r.s
	s.Stats.Cardinality = s.N2 - s.countUnmatched(r.matec)
	s.captureThreadStats()
	s.G.RT.Tracer().End(obs.KindSolve, "mcm-graft", r.solve0, int64(s.Stats.Cardinality))
	return nil
}

package core

import (
	"fmt"
	"sort"
	"time"

	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
)

// obsCollectTimeout bounds how long the coordinator waits for its peers'
// observability payloads at solve end. Workers ship the moment their ranks
// return, so the wait is normally a few milliseconds; the bound only
// matters when a peer dies in the window between solving and shipping.
const obsCollectTimeout = 5 * time.Second

// rttBuckets is the bucket ladder of the heartbeat RTT histograms: loopback
// round trips sit in the tens of microseconds, injected slow links in the
// tens of milliseconds, so the ladder spans both.
var rttBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1,
}

// obsMeterPoints renders a communication meter as the leaf obs package's
// generic name/value pairs, the form meters take in shipped observations
// and flight dumps.
func obsMeterPoints(m mpi.Meter) []obs.MeterPoint {
	return []obs.MeterPoint{
		{Name: "msgs", Value: m.Msgs},
		{Name: "words", Value: m.Words},
		{Name: "work", Value: m.Work},
		{Name: "words_enc", Value: m.WordsEnc},
	}
}

// obsAttach wires the observability plane into a capable transport before
// the world launches: the payload provider that ShipObs (or the BYE-drain
// fallback in Close) renders, and the heartbeat RTT observer feeding one
// histogram per directed link — which is what makes NetFaultSpec slow-link
// injection visible on the metrics endpoint. No-op on backends without the
// optional capabilities (the in-process oracle needs neither).
func obsAttach(tr mpi.Transport, col *obs.Collector) {
	if col == nil {
		return
	}
	if sh, ok := tr.(mpi.ObsShipper); ok {
		sh.SetObsProvider(func() []byte {
			return col.Export(tr.LocalRanks(), 0).Encode()
		})
	}
	ro, ok := tr.(mpi.RTTObservable)
	if !ok {
		return
	}
	reg := col.Registry()
	if reg == nil {
		return
	}
	local := tr.LocalRanks()[0]
	ro.SetRTTObserver(func(peer int, rttNs int64) {
		reg.Histogram(
			fmt.Sprintf("mcm_heartbeat_rtt_seconds_link_%d_%d", local, peer),
			"Heartbeat PING round-trip time on the directed link.",
			rttBuckets).Observe(float64(rttNs) / 1e9)
	})
}

// obsFinish completes the cross-process collection after a successful
// solve: a worker ships its payload to the coordinator; the coordinator
// gathers every peer's payload and merges each into its collector under
// that peer's clock offset. Afterwards the coordinator's collector holds
// the whole world, so the ordinary exporters (WriteTrace, WriteSeriesCSV,
// WritePrometheus) produce world-level artifacts unchanged.
func obsFinish(tr mpi.Transport, col *obs.Collector) {
	if col == nil {
		return
	}
	sh, ok := tr.(mpi.ObsShipper)
	if !ok {
		return
	}
	if tr.LocalRanks()[0] != 0 {
		sh.ShipObs()
		return
	}
	payloads := sh.CollectObs(obsCollectTimeout)
	offsets := sh.ClockOffsets()
	ranks := make([]int, 0, len(payloads))
	for r := range payloads {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks) // deterministic merge order
	for _, r := range ranks {
		po, err := obs.DecodeProcObs(payloads[r])
		if err != nil {
			continue // a malformed payload loses that peer's view, not the solve
		}
		col.InstallRemote(po, offsets[r])
	}
}

package core

// Solver-level backend conformance: the same instance solved over loopback
// TCP (one endpoint per rank, separate worlds in this process) must produce
// mate vectors bit-identical to the in-process oracle, with identical
// per-rank meter ledgers. This is the in-test twin of the CI transport-smoke
// job, which does the same across real OS processes via cmd/mcmrank.

import (
	"fmt"
	"testing"

	"mcmdist/internal/mpi"
	_ "mcmdist/internal/mpi/tcpnet" // register the "tcp" backend
	"mcmdist/internal/rmat"
	"mcmdist/internal/verify"
)

func TestSolveOnLoopbackTCPMatchesOracle(t *testing.T) {
	a := rmat.MustGenerate(rmat.G500, 7, 4, 21)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{Procs: 4, Seed: 3}},
		{"permute-init", Config{Procs: 4, Init: InitKarpSipser, Permute: true, Seed: 3}},
		{"grafting", Config{Procs: 4, TreeGrafting: true, Seed: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			oracle, err := Solve(a, tc.cfg)
			if err != nil {
				t.Fatalf("oracle solve: %v", err)
			}
			if err := verify.Maximum(a, oracle.Matching); err != nil {
				t.Fatalf("oracle not maximum: %v", err)
			}

			eps, err := mpi.NewTransportSet("tcp", tc.cfg.Procs)
			if err != nil {
				t.Fatalf("building tcp endpoints: %v", err)
			}
			results, err := SolveEndpoints(eps, a, tc.cfg)
			if cerr := mpi.CloseAll(eps); cerr != nil {
				t.Errorf("closing endpoints: %v", cerr)
			}
			if err != nil {
				t.Fatalf("tcp solve: %v", err)
			}

			for i, res := range results {
				if want, got := fmt.Sprint(oracle.Matching.MateR), fmt.Sprint(res.Matching.MateR); want != got {
					t.Errorf("endpoint %d MateR diverges from oracle:\n  oracle: %s\n  tcp:    %s", i, want, got)
				}
				if want, got := fmt.Sprint(oracle.Matching.MateC), fmt.Sprint(res.Matching.MateC); want != got {
					t.Errorf("endpoint %d MateC diverges from oracle", i)
				}
				if want, got := oracle.Stats.Cardinality, res.Stats.Cardinality; want != got {
					t.Errorf("endpoint %d cardinality %d, oracle %d", i, got, want)
				}
				// Each endpoint hosts exactly one rank; its ledger must match
				// the oracle's ledger for that rank bit-for-bit.
				r := eps[i].LocalRanks()[0]
				if want, got := oracle.PerRank[r], res.PerRank[r]; want != got {
					t.Errorf("rank %d meter: oracle %+v, tcp %+v", r, want, got)
				}
			}
		})
	}
}

// TestSolveEndpointsSizeMismatch pins the procs/world-size validation.
func TestSolveEndpointsSizeMismatch(t *testing.T) {
	a := rmat.MustGenerate(rmat.ER, 5, 4, 9)
	if _, err := SolveOn(mpi.NewInproc(2), a, Config{Procs: 4}); err == nil {
		t.Fatal("SolveOn accepted a transport smaller than cfg.Procs")
	}
}

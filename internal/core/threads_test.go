package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mcmdist/internal/matching"
	"mcmdist/internal/rmat"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// matesEqual reports whether two mate slices are bit-identical.
func matesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSolveThreadInvariant is the thread-count oracle sweep: the worker
// pools regroup but never reorder the serial combine sequences, so every
// solve must produce the exact matching — not just the cardinality — of the
// single-threaded run, for any thread count. The sweep crosses generators,
// grid shapes (including rectangular), initializers, and both MCM variants.
func TestSolveThreadInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name string
		a    *spmat.CSC
	}{
		{"square-sparse", randomBipartite(rng, 60, 60, 240)},
		{"rect-wide", randomBipartite(rng, 48, 70, 300)},
		{"rect-tall", randomBipartite(rng, 75, 50, 280)},
		{"rmat-g500", rmat.MustGenerate(rmat.G500, 7, 8, 33)},
	}
	shapes := []struct{ procs, gr, gc int }{
		{1, 0, 0}, {4, 0, 0}, {0, 2, 3}, {0, 3, 2},
	}

	for _, c := range cases {
		oracle := matching.HopcroftKarp(c.a, nil).Cardinality()
		for _, sh := range shapes {
			for _, init := range []Init{InitGreedy, InitDynMinDegree} {
				for _, graft := range []bool{false, true} {
					cfg := Config{
						Procs: sh.procs, GridRows: sh.gr, GridCols: sh.gc,
						Init: init, AddOp: semiring.MinParent,
						TreeGrafting: graft, Permute: true, Seed: 9,
					}
					name := fmt.Sprintf("%s/p%d-%dx%d/%s/graft=%v", c.name, sh.procs, sh.gr, sh.gc, init, graft)
					cfg.Threads = 1
					base := mustSolve(t, c.a, cfg)
					if base.Stats.Cardinality != oracle {
						t.Fatalf("%s: cardinality %d, oracle %d", name, base.Stats.Cardinality, oracle)
					}
					for _, threads := range []int{2, 4, 8} {
						cfg.Threads = threads
						res := mustSolve(t, c.a, cfg)
						if res.Stats.Cardinality != base.Stats.Cardinality {
							t.Fatalf("%s: t=%d cardinality %d, t=1 gave %d",
								name, threads, res.Stats.Cardinality, base.Stats.Cardinality)
						}
						if !matesEqual(res.Matching.MateR, base.Matching.MateR) ||
							!matesEqual(res.Matching.MateC, base.Matching.MateC) {
							t.Fatalf("%s: t=%d matching differs from t=1", name, threads)
						}
					}
				}
			}
		}
	}
}

// TestSolveThreadInvariantAddOps covers the remaining semiring add ops on
// one configuration: their tie-breaks are deterministic (hash-based for the
// randomized ops), so thread count must not change the matching.
func TestSolveThreadInvariantAddOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomBipartite(rng, 64, 64, 300)
	for _, op := range []semiring.AddOp{semiring.RandParent, semiring.RandRoot} {
		cfg := Config{Procs: 4, Init: InitDynMinDegree, AddOp: op, Permute: true, Seed: 3, Threads: 1}
		base := mustSolve(t, a, cfg)
		for _, threads := range []int{2, 8} {
			cfg.Threads = threads
			res := mustSolve(t, a, cfg)
			if res.Stats.Cardinality != base.Stats.Cardinality ||
				!matesEqual(res.Matching.MateR, base.Matching.MateR) ||
				!matesEqual(res.Matching.MateC, base.Matching.MateC) {
				t.Fatalf("op %v t=%d: matching differs from t=1", op, threads)
			}
		}
	}
}

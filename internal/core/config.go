// Package core implements the paper's primary contribution: MCM-DIST
// (Algorithm 2), the distributed-memory maximum cardinality matching
// algorithm built from the matrix-algebraic primitives of Table I, together
// with its distributed maximal-matching initializers (Section VI-A) and the
// two augmentation strategies — level-parallel (Algorithm 3) and
// path-parallel via one-sided RMA (Algorithm 4) — with the automatic
// k < 2p² switch of Section IV-B.
package core

import (
	"fmt"
	"time"

	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
	"mcmdist/internal/semiring"
)

// Init selects the maximal-matching initializer run before the MCM phases
// (Section VI-A compares these; the paper defaults to dynamic mindegree).
type Init int

const (
	// InitNone starts from the empty matching.
	InitNone Init = iota
	// InitGreedy is the distributed greedy maximal matching.
	InitGreedy
	// InitKarpSipser is the distributed Karp–Sipser maximal matching with
	// the degree-1 rule; expensive on distributed memory (Fig. 3).
	InitKarpSipser
	// InitDynMinDegree is the distributed dynamic-mindegree maximal
	// matching, the paper's default initializer.
	InitDynMinDegree
)

// String names the initializer like the paper's figures.
func (in Init) String() string {
	switch in {
	case InitNone:
		return "none"
	case InitGreedy:
		return "greedy"
	case InitKarpSipser:
		return "karp-sipser"
	case InitDynMinDegree:
		return "dynamic-mindegree"
	default:
		return fmt.Sprintf("Init(%d)", int(in))
	}
}

// AugmentMode selects how discovered augmenting paths are applied.
type AugmentMode int

const (
	// AugmentAuto switches between the two variants with the paper's
	// criterion: path-parallel when k < 2p², level-parallel otherwise.
	AugmentAuto AugmentMode = iota
	// AugmentLevelParallel always uses Algorithm 3 (bulk-synchronous
	// INVERT/SET chains, level by level).
	AugmentLevelParallel
	// AugmentPathParallel always uses Algorithm 4 (asynchronous RMA walks,
	// one path at a time per owner).
	AugmentPathParallel
)

// String names the mode.
func (am AugmentMode) String() string {
	switch am {
	case AugmentAuto:
		return "auto"
	case AugmentLevelParallel:
		return "level-parallel"
	case AugmentPathParallel:
		return "path-parallel"
	default:
		return fmt.Sprintf("AugmentMode(%d)", int(am))
	}
}

// Direction pins or frees the per-iteration SpMV kernel choice (top-down
// spmv.Mul vs bottom-up spmv.MulPull). See docs/KERNELS.md.
type Direction int

const (
	// DirectionDefault preserves the historical behavior: the per-iteration
	// heuristic when DirectionOptimized is set, static push otherwise.
	DirectionDefault Direction = iota
	// DirectionPush pins every iteration to the top-down kernel.
	DirectionPush
	// DirectionPull pins every iteration to the bottom-up kernel.
	DirectionPull
	// DirectionAuto enables the per-iteration heuristic regardless of
	// DirectionOptimized.
	DirectionAuto
)

// String names the direction mode like the cmd/bench flag values.
func (d Direction) String() string {
	switch d {
	case DirectionDefault:
		return "default"
	case DirectionPush:
		return "push"
	case DirectionPull:
		return "pull"
	case DirectionAuto:
		return "auto"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// ParseDirection maps the flag spellings to a Direction.
func ParseDirection(s string) (Direction, error) {
	switch s {
	case "", "default":
		return DirectionDefault, nil
	case "push":
		return DirectionPush, nil
	case "pull":
		return DirectionPull, nil
	case "auto":
		return DirectionAuto, nil
	}
	return DirectionDefault, fmt.Errorf("core: unknown direction %q (want push, pull or auto)", s)
}

// Config controls a distributed matching run.
type Config struct {
	// Engine names the matching engine to run: a registered engine name
	// ("bfs", "bfs-ss", "bfs-graft", "auction" — see EngineNames), "auto"
	// to let ResolveEngineConfig pick per instance via the cost model, or
	// "" to defer to the legacy TreeGrafting knob (the historical default,
	// so existing configurations behave identically). Parse user input
	// with ParseEngine.
	Engine string
	// Procs is the number of simulated MPI ranks. Unless GridRows/GridCols
	// are set it must be a perfect square (the configuration the paper
	// evaluates; its CombBLAS build "does not support rectangular grids" —
	// this implementation does, see GridRows). 0 means 1.
	Procs int
	// GridRows and GridCols select an explicit (possibly rectangular)
	// process grid; both must be set together and their product becomes
	// the rank count. Zero means the square grid derived from Procs.
	GridRows, GridCols int
	// Threads is the number of compute threads modeled per rank (the
	// paper's OpenMP threads, 12 per socket on Edison). It divides the
	// local-work term of the cost model. 0 means 1.
	Threads int
	// Init selects the maximal-matching initializer.
	Init Init
	// AddOp selects the SpMV semiring addition (minParent, randRoot,
	// randParent).
	AddOp semiring.AddOp
	// Augment selects the augmentation strategy.
	Augment AugmentMode
	// DisablePrune turns off Step 6 of Algorithm 2 (the Fig. 8 ablation).
	DisablePrune bool
	// TreeGrafting selects the tree-grafting MCM variant (MCMGraft), the
	// distributed MS-BFS-Graft the paper lists as future work: alternating
	// trees persist across phases and only augmented trees release their
	// vertices.
	TreeGrafting bool
	// DirectionOptimized enables the bottom-up ("pull") BFS step for large
	// frontiers — the direction optimization the paper lists as future
	// work. When the frontier exceeds PullThreshold of the columns, the
	// SpMV switches from scattering frontier columns to having unvisited
	// rows scan their own adjacency with early exit.
	DirectionOptimized bool
	// PullThreshold is the minimum frontier fraction (of n2) for the pull
	// direction to be considered; 0 derives the threshold online from the
	// alpha-beta cost model's push/pull crossover at the run's thread count
	// and average degree (costmodel.PullCrossover). The pull choice
	// additionally requires the Beamer-style edge-count condition (see
	// internal/core/direction.go and docs/KERNELS.md).
	PullThreshold float64
	// Direction pins the SpMV kernel choice: DirectionPush or DirectionPull
	// hold one kernel for every iteration (deterministic for tests and
	// ablations), DirectionAuto runs the per-iteration heuristic, and the
	// zero value DirectionDefault defers to DirectionOptimized.
	Direction Direction
	// Compress enables the delta-varint wire codec (internal/wire) on the
	// communication layer: id-stream payloads are delta+varint encoded on
	// the tcp backend and the encoded volume is metered as Meter.WordsEnc on
	// every backend. Results are bit-identical with it on or off.
	Compress bool
	// Permute applies a random symmetric permutation before distributing,
	// the load-balancing step of Section IV-A.
	Permute bool
	// DisableReuse turns off the per-rank runtime context's buffer arena
	// and scratch reuse: every borrow falls back to a fresh allocation.
	// The pooling on/off equivalence tests use this; production runs leave
	// it false.
	DisableReuse bool
	// DisableOverlap turns off the split-phase compute/communication
	// overlap: every collective runs in its blocking start-then-wait form
	// and the solver's pipelined frontier count reverts to the loop-top
	// allreduce. Results and communication meters are bit-identical either
	// way (the overlap-equivalence tests assert this); the switch exists
	// for those tests and for measuring how much latency the overlapped
	// schedules hide. Production runs leave it false.
	DisableOverlap bool
	// Seed drives the permutation and any randomized initializer.
	Seed int64
	// OnIteration, when non-nil, is invoked by rank 0 after every
	// level-synchronous iteration with SPMD-replicated counters — a
	// lightweight trace for debugging and teaching.
	OnIteration func(IterInfo)
	// Obs attaches the observability plane (internal/obs) to the run: span
	// tracing onto per-rank ring buffers, per-iteration time-series, and an
	// optional live metrics registry, per the collector's own options. The
	// collector must be built for at least the run's rank count. Nil (the
	// default) records nothing and keeps the hot path at its untraced cost.
	Obs *obs.Collector

	// Fault attaches a deterministic fault injector to the run's simulated
	// world (crash at the Nth collective, straggler latency, RMA failure);
	// nil injects nothing. See mpi.FaultPlan.
	Fault *mpi.FaultPlan
	// WatchdogTimeout arms the runtime's progress watchdog: a run making no
	// communication progress for this long is aborted with an
	// mpi.DeadlockError naming the stuck collective and lagging ranks. It
	// must comfortably exceed the longest communication-free compute stretch
	// and any injected straggler delay. Zero disables the watchdog.
	WatchdogTimeout time.Duration
	// CheckpointEvery takes a phase-boundary checkpoint after every Nth
	// augmentation phase (and after the initializer). Between phases the
	// mate vectors always encode a valid matching, which is what makes the
	// phase boundary a restart point. Zero disables checkpointing.
	CheckpointEvery int
	// OnCheckpoint receives each checkpoint on rank 0. Required for
	// CheckpointEvery to take effect; the recovery driver installs its own
	// handler and chains to any caller-supplied one.
	OnCheckpoint func(*Checkpoint)
	// Resume restarts the solve from a prior checkpoint instead of running
	// the maximal-matching initializer: the checkpointed mate vectors are
	// scattered back over the grid and the MCM phases continue from there.
	Resume *Checkpoint
}

// IterInfo is one iteration's trace record.
type IterInfo struct {
	Phase        int  // 1-based phase number
	Iteration    int  // 1-based iteration within the run
	FrontierSize int  // columns in the frontier entering the iteration
	NewPaths     int  // augmenting paths discovered this iteration
	Pull         bool // whether the bottom-up SpMV direction was used
}

// withDefaults normalizes zero values.
func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 1
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	// PullThreshold 0 is meaningful (resolve from the cost model online);
	// negative values are normalized to it.
	if c.PullThreshold < 0 {
		c.PullThreshold = 0
	}
	return c
}

// validate rejects configurations the algorithm does not support and
// returns the grid shape to use.
func (c Config) gridShape() (pr, pc int, err error) {
	if c.GridRows != 0 || c.GridCols != 0 {
		if c.GridRows <= 0 || c.GridCols <= 0 {
			return 0, 0, fmt.Errorf("core: GridRows and GridCols must both be positive (got %d x %d)",
				c.GridRows, c.GridCols)
		}
		return c.GridRows, c.GridCols, nil
	}
	s := 1
	for s*s < c.Procs {
		s++
	}
	if s*s != c.Procs {
		return 0, 0, fmt.Errorf("core: Procs = %d is not a perfect square (set GridRows/GridCols for a rectangular grid)", c.Procs)
	}
	return s, s, nil
}

package core

import (
	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
	"mcmdist/internal/parallel"
)

// iterBaseline snapshots the cumulative per-rank counters at the top of one
// BFS iteration so obsIterEnd can turn them into per-iteration deltas.
type iterBaseline struct {
	meter mpi.Meter
	comm  mpi.CommTimes
	pool  parallel.Stats
	wall  int64
}

// obsIterBegin opens one iteration's observation: the iteration span's
// start timestamp plus, when a time-series recorder is attached, the meter
// and pool baselines. Near-free when the observability plane is off (two
// nil checks).
func (s *Solver) obsIterBegin() int64 {
	if s.rec != nil {
		s.iterBase = iterBaseline{
			meter: s.G.World.MeterSnapshot(),
			comm:  s.G.World.CommTimes(),
			pool:  s.G.RT.ThreadStats(),
			wall:  obs.Now(),
		}
	}
	return s.G.RT.Tracer().Begin()
}

// obsIterEnd closes one iteration's observation: it updates the Stats
// frontier summary, records the iteration span, and appends a time-series
// sample with this rank's meter/comm/pool deltas since obsIterBegin.
// Always called (it is nil-safe), so the peak-frontier summary is
// maintained even with observability off.
func (s *Solver) obsIterEnd(t0 int64, phase, frontier, newPaths int, pull bool) {
	if frontier > s.Stats.PeakFrontier {
		s.Stats.PeakFrontier = frontier
		s.Stats.PeakFrontierIteration = s.Stats.Iterations
	}
	s.G.RT.Tracer().End(obs.KindIteration, "iteration", t0, int64(frontier))
	if s.rec == nil {
		return
	}
	meter := s.G.World.MeterSnapshot().Sub(s.iterBase.meter)
	comm := s.G.World.CommTimes().Sub(s.iterBase.comm)
	pool := s.G.RT.ThreadStats().Sub(s.iterBase.pool)
	direction := "push"
	if pull {
		direction = "pull"
	}
	s.rec.Record(obs.IterSample{
		Phase:        phase,
		Iteration:    s.Stats.Iterations,
		Frontier:     frontier,
		NewPaths:     newPaths,
		Matched:      s.Stats.InitCardinality + s.Stats.AugmentedPaths,
		Pull:         pull,
		Direction:    direction,
		WallNs:       obs.Now() - s.iterBase.wall,
		Msgs:         meter.Msgs,
		Words:        meter.Words,
		WordsEncoded: meter.WordsEnc,
		CommNs:       int64(comm.Total),
		ExposedNs:    int64(comm.Exposed),
		PoolBusyNs:   int64(pool.Busy),
		PoolSpanNs:   int64(pool.Span),
	})
}

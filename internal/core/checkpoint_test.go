package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mcmdist/internal/matching"
	"mcmdist/internal/semiring"
	"mcmdist/internal/verify"
)

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	ck := &Checkpoint{
		Phase:       3,
		Cardinality: 2,
		ConfigHash:  0xdeadbeefcafef00d,
		Engine:      EngineBFS,
		N1:          4,
		N2:          3,
		MateR:       []int64{1, semiring.None, 0, 2},
		MateC:       []int64{2, 0, 3},
	}
	data := ck.Encode()
	if len(data) != ck.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(data), ck.EncodedSize())
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != ck.Phase || got.Cardinality != ck.Cardinality ||
		got.ConfigHash != ck.ConfigHash || got.Engine != ck.Engine ||
		got.N1 != ck.N1 || got.N2 != ck.N2 {
		t.Fatalf("header mismatch: %+v vs %+v", got, ck)
	}
	for i := range ck.MateR {
		if got.MateR[i] != ck.MateR[i] {
			t.Fatalf("MateR[%d] = %d, want %d", i, got.MateR[i], ck.MateR[i])
		}
	}
	for j := range ck.MateC {
		if got.MateC[j] != ck.MateC[j] {
			t.Fatalf("MateC[%d] = %d, want %d", j, got.MateC[j], ck.MateC[j])
		}
	}
}

func TestDecodeCheckpointRejectsGarbage(t *testing.T) {
	ck := &Checkpoint{Engine: EngineBFS, N1: 2, N2: 2, MateR: []int64{0, 1}, MateC: []int64{0, 1}}
	good := ck.Encode()

	if _, err := DecodeCheckpoint(good[:10]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeCheckpoint(good[:len(good)-2]); err == nil {
		t.Fatal("short mate vectors accepted")
	}
	if _, err := DecodeCheckpoint(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// A version-1 blob must be rejected with a version error, not
	// misdecoded: fake one by splicing the old magic in.
	v1 := append([]byte(nil), good...)
	copy(v1, "MCMCKPT1")
	if _, err := DecodeCheckpoint(v1); err == nil {
		t.Fatal("format version 1 blob accepted")
	}
}

// TestCheckpointRoundtripShapes mirrors the tcpnet TestPartRoundtrip: the
// delta-varint mate payloads must survive arbitrary vector contents —
// mostly-None runs, sorted runs, hostile random values — and the encoding
// must actually be smaller than the 8-bytes-per-entry v1 layout on the
// mostly-matched vectors real checkpoints hold.
func TestCheckpointRoundtripShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sortedish := make([]int64, 2048)
	for i := range sortedish {
		sortedish[i] = int64(i)*3 + rng.Int63n(3)
	}
	hostile := make([]int64, 257)
	for i := range hostile {
		hostile[i] = rng.Int63() - rng.Int63()
	}
	allNone := make([]int64, 512)
	for i := range allNone {
		allNone[i] = semiring.None
	}
	vectors := [][]int64{nil, {}, {0}, {semiring.None}, sortedish, hostile, allNone}
	for vi, v := range vectors {
		ck := &Checkpoint{
			Engine: EngineBFSGraft,
			N1:     len(v), N2: len(v),
			MateR: v, MateC: append([]int64(nil), v...),
		}
		data := ck.Encode()
		if len(data) != ck.EncodedSize() {
			t.Fatalf("vector %d: encoded %d bytes, EncodedSize says %d", vi, len(data), ck.EncodedSize())
		}
		got, err := DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("vector %d: %v", vi, err)
		}
		if fmt.Sprint(got.MateR) != fmt.Sprint([]int64(v)) && len(v) > 0 {
			t.Fatalf("vector %d: roundtrip %v != %v", vi, got.MateR, v)
		}
	}
	// The v1 format spent 8*(n1+n2) bytes on the vectors; the identity-run
	// and all-None vectors must compress at least 4x below that.
	run := &Checkpoint{Engine: EngineBFS, N1: 2048, N2: 2048, MateR: sortedish, MateC: allNone[:0:0]}
	run.MateC = make([]int64, 2048)
	for i := range run.MateC {
		run.MateC[i] = semiring.None
	}
	if raw := 8 * (run.N1 + run.N2); run.EncodedSize()*4 >= raw {
		t.Fatalf("compressed checkpoint is %d bytes, want <1/4 of the raw %d", run.EncodedSize(), raw)
	}
}

// TestCheckpointRejectsEveryTruncation mirrors the tcpnet
// TestPartDecodeRejectsTruncation: a checkpoint cut at ANY byte boundary
// must decode to an error, never to garbage mate vectors.
func TestCheckpointRejectsEveryTruncation(t *testing.T) {
	ck := &Checkpoint{
		Phase: 2, Cardinality: 3, ConfigHash: 0xabcd, Engine: EngineAuction,
		N1: 5, N2: 5,
		MateR: []int64{5, 9, semiring.None, 12, 40},
		MateC: []int64{41, semiring.None, 0, 2, 1},
	}
	data := ck.Encode()
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeCheckpoint(data[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", cut, len(data))
		}
	}
}

func TestCheckpointHashSensitivity(t *testing.T) {
	base := Config{Procs: 4, Init: InitGreedy}
	h := base.CheckpointHash(50, 50)
	if h != base.CheckpointHash(50, 50) {
		t.Fatal("hash not deterministic")
	}
	variants := []Config{
		{Procs: 9, Init: InitGreedy},
		{Procs: 4, Init: InitKarpSipser},
		{Procs: 4, Init: InitGreedy, Augment: AugmentPathParallel},
		{Procs: 4, Init: InitGreedy, DisablePrune: true},
		{Procs: 4, Init: InitGreedy, TreeGrafting: true},
		{Procs: 4, Init: InitGreedy, Permute: true},
		{Procs: 4, Init: InitGreedy, Seed: 7},
	}
	for i, v := range variants {
		if v.CheckpointHash(50, 50) == h {
			t.Fatalf("variant %d hashes like the base config: %+v", i, v)
		}
	}
	if base.CheckpointHash(51, 50) == h || base.CheckpointHash(50, 51) == h {
		t.Fatal("hash insensitive to problem shape")
	}
	// Fields that do NOT change the solve trajectory must not change the
	// hash, or a restart with different threading would be rejected.
	same := Config{Procs: 4, Init: InitGreedy, Threads: 8, DisableOverlap: true}
	if same.CheckpointHash(50, 50) != h {
		t.Fatal("hash sensitive to execution-only knobs (Threads/DisableOverlap)")
	}
}

func TestSolveEmitsValidCheckpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomBipartite(rng, 50, 50, 120) // sparse: greedy leaves augmenting work
	var cks []*Checkpoint
	cfg := Config{
		Procs:           4,
		Init:            InitGreedy,
		CheckpointEvery: 1,
		OnCheckpoint:    func(ck *Checkpoint) { cks = append(cks, ck) },
	}
	res := mustSolve(t, a, cfg)
	if res.Stats.Phases == 0 {
		t.Skip("no augmentation phases; checkpoint stream trivial")
	}
	if len(cks) != res.Stats.Phases+1 {
		t.Fatalf("%d checkpoints for %d phases (want phases+1 incl. phase 0)", len(cks), res.Stats.Phases)
	}
	prev := -1
	for _, ck := range cks {
		if ck.Phase <= prev {
			t.Fatalf("checkpoint phases not increasing: %d after %d", ck.Phase, prev)
		}
		prev = ck.Phase
		if ck.N1 != 50 || ck.N2 != 50 {
			t.Fatalf("checkpoint shape %dx%d", ck.N1, ck.N2)
		}
		if got := countMatched(ck.MateC); got != ck.Cardinality {
			t.Fatalf("phase %d: recorded cardinality %d, mate vector holds %d", ck.Phase, ck.Cardinality, got)
		}
		// The tentpole invariant: every phase boundary is a valid matching.
		m := &matching.Matching{MateR: ck.MateR, MateC: ck.MateC}
		if err := verify.Valid(a, m); err != nil {
			t.Fatalf("phase %d checkpoint is not a valid matching: %v", ck.Phase, err)
		}
	}
	final := cks[len(cks)-1]
	if final.Cardinality != res.Stats.Cardinality {
		t.Fatalf("final checkpoint cardinality %d, solve reached %d", final.Cardinality, res.Stats.Cardinality)
	}
	if res.Stats.Checkpoints != len(cks) {
		t.Fatalf("Stats.Checkpoints = %d, observed %d", res.Stats.Checkpoints, len(cks))
	}
	var wantBytes int64
	for _, ck := range cks {
		wantBytes += int64(ck.EncodedSize())
	}
	if res.Stats.CheckpointBytes != wantBytes {
		t.Fatalf("Stats.CheckpointBytes = %d, encodings total %d", res.Stats.CheckpointBytes, wantBytes)
	}
	for _, ck := range cks {
		if ck.Engine != EngineBFS {
			t.Fatalf("checkpoint carries engine %q, want %q", ck.Engine, EngineBFS)
		}
	}
}

func TestResumeFromCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomBipartite(rng, 60, 60, 140)
	var cks []*Checkpoint
	cfg := Config{
		Procs:           4,
		Init:            InitGreedy,
		CheckpointEvery: 1,
		OnCheckpoint:    func(ck *Checkpoint) { cks = append(cks, ck) },
	}
	clean := mustSolve(t, a, cfg)
	if len(cks) < 2 {
		t.Skip("not enough phases to test a mid-run resume")
	}

	// Resume from the first mid-run snapshot: the restarted solve must land
	// on the exact same mate vectors as the uninterrupted one (MCM-DIST is
	// deterministic, so the tail of the trajectory replays bit-for-bit).
	resume := cfg
	resume.OnCheckpoint = nil
	resume.Resume = cks[1]
	res, err := Solve(a, resume)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.InitCardinality != cks[1].Cardinality {
		t.Fatalf("resumed InitCardinality %d, checkpoint had %d", res.Stats.InitCardinality, cks[1].Cardinality)
	}
	if res.Stats.Cardinality != clean.Stats.Cardinality {
		t.Fatalf("resumed cardinality %d, clean %d", res.Stats.Cardinality, clean.Stats.Cardinality)
	}
	for i := range clean.Matching.MateR {
		if res.Matching.MateR[i] != clean.Matching.MateR[i] {
			t.Fatalf("MateR[%d] differs after resume: %d vs %d", i, res.Matching.MateR[i], clean.Matching.MateR[i])
		}
	}
	for j := range clean.Matching.MateC {
		if res.Matching.MateC[j] != clean.Matching.MateC[j] {
			t.Fatalf("MateC[%d] differs after resume: %d vs %d", j, res.Matching.MateC[j], clean.Matching.MateC[j])
		}
	}
}

func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randomBipartite(rng, 40, 40, 100)
	var last *Checkpoint
	cfg := Config{
		Procs:           4,
		Init:            InitGreedy,
		CheckpointEvery: 1,
		OnCheckpoint:    func(ck *Checkpoint) { last = ck },
	}
	mustSolve(t, a, cfg)
	if last == nil {
		t.Fatal("no checkpoint produced")
	}

	// Same snapshot, different algorithm configuration: hash must not match.
	bad := cfg
	bad.OnCheckpoint = nil
	bad.Init = InitKarpSipser
	bad.Resume = last
	if _, err := Solve(a, bad); err == nil {
		t.Fatal("resume under a different config accepted")
	}

	// Corrupted hash must be rejected even under the original config.
	forged := *last
	forged.ConfigHash ^= 1
	good := cfg
	good.OnCheckpoint = nil
	good.Resume = &forged
	if _, err := Solve(a, good); err == nil {
		t.Fatal("resume with forged config hash accepted")
	}
}

package core

import (
	"math/rand"
	"testing"

	"mcmdist/internal/matching"
	"mcmdist/internal/semiring"
	"mcmdist/internal/verify"
)

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	ck := &Checkpoint{
		Phase:       3,
		Cardinality: 2,
		ConfigHash:  0xdeadbeefcafef00d,
		N1:          4,
		N2:          3,
		MateR:       []int64{1, semiring.None, 0, 2},
		MateC:       []int64{2, 0, 3},
	}
	data := ck.Encode()
	if len(data) != EncodedSize(ck.N1, ck.N2) {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(data), EncodedSize(ck.N1, ck.N2))
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != ck.Phase || got.Cardinality != ck.Cardinality ||
		got.ConfigHash != ck.ConfigHash || got.N1 != ck.N1 || got.N2 != ck.N2 {
		t.Fatalf("header mismatch: %+v vs %+v", got, ck)
	}
	for i := range ck.MateR {
		if got.MateR[i] != ck.MateR[i] {
			t.Fatalf("MateR[%d] = %d, want %d", i, got.MateR[i], ck.MateR[i])
		}
	}
	for j := range ck.MateC {
		if got.MateC[j] != ck.MateC[j] {
			t.Fatalf("MateC[%d] = %d, want %d", j, got.MateC[j], ck.MateC[j])
		}
	}
}

func TestDecodeCheckpointRejectsGarbage(t *testing.T) {
	ck := &Checkpoint{N1: 2, N2: 2, MateR: []int64{0, 1}, MateC: []int64{0, 1}}
	good := ck.Encode()

	if _, err := DecodeCheckpoint(good[:10]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeCheckpoint(good[:len(good)-8]); err == nil {
		t.Fatal("short mate vectors accepted")
	}
}

func TestCheckpointHashSensitivity(t *testing.T) {
	base := Config{Procs: 4, Init: InitGreedy}
	h := base.CheckpointHash(50, 50)
	if h != base.CheckpointHash(50, 50) {
		t.Fatal("hash not deterministic")
	}
	variants := []Config{
		{Procs: 9, Init: InitGreedy},
		{Procs: 4, Init: InitKarpSipser},
		{Procs: 4, Init: InitGreedy, Augment: AugmentPathParallel},
		{Procs: 4, Init: InitGreedy, DisablePrune: true},
		{Procs: 4, Init: InitGreedy, TreeGrafting: true},
		{Procs: 4, Init: InitGreedy, Permute: true},
		{Procs: 4, Init: InitGreedy, Seed: 7},
	}
	for i, v := range variants {
		if v.CheckpointHash(50, 50) == h {
			t.Fatalf("variant %d hashes like the base config: %+v", i, v)
		}
	}
	if base.CheckpointHash(51, 50) == h || base.CheckpointHash(50, 51) == h {
		t.Fatal("hash insensitive to problem shape")
	}
	// Fields that do NOT change the solve trajectory must not change the
	// hash, or a restart with different threading would be rejected.
	same := Config{Procs: 4, Init: InitGreedy, Threads: 8, DisableOverlap: true}
	if same.CheckpointHash(50, 50) != h {
		t.Fatal("hash sensitive to execution-only knobs (Threads/DisableOverlap)")
	}
}

func TestSolveEmitsValidCheckpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomBipartite(rng, 50, 50, 120) // sparse: greedy leaves augmenting work
	var cks []*Checkpoint
	cfg := Config{
		Procs:           4,
		Init:            InitGreedy,
		CheckpointEvery: 1,
		OnCheckpoint:    func(ck *Checkpoint) { cks = append(cks, ck) },
	}
	res := mustSolve(t, a, cfg)
	if res.Stats.Phases == 0 {
		t.Skip("no augmentation phases; checkpoint stream trivial")
	}
	if len(cks) != res.Stats.Phases+1 {
		t.Fatalf("%d checkpoints for %d phases (want phases+1 incl. phase 0)", len(cks), res.Stats.Phases)
	}
	prev := -1
	for _, ck := range cks {
		if ck.Phase <= prev {
			t.Fatalf("checkpoint phases not increasing: %d after %d", ck.Phase, prev)
		}
		prev = ck.Phase
		if ck.N1 != 50 || ck.N2 != 50 {
			t.Fatalf("checkpoint shape %dx%d", ck.N1, ck.N2)
		}
		if got := countMatched(ck.MateC); got != ck.Cardinality {
			t.Fatalf("phase %d: recorded cardinality %d, mate vector holds %d", ck.Phase, ck.Cardinality, got)
		}
		// The tentpole invariant: every phase boundary is a valid matching.
		m := &matching.Matching{MateR: ck.MateR, MateC: ck.MateC}
		if err := verify.Valid(a, m); err != nil {
			t.Fatalf("phase %d checkpoint is not a valid matching: %v", ck.Phase, err)
		}
	}
	final := cks[len(cks)-1]
	if final.Cardinality != res.Stats.Cardinality {
		t.Fatalf("final checkpoint cardinality %d, solve reached %d", final.Cardinality, res.Stats.Cardinality)
	}
	if res.Stats.Checkpoints != len(cks) {
		t.Fatalf("Stats.Checkpoints = %d, observed %d", res.Stats.Checkpoints, len(cks))
	}
	if res.Stats.CheckpointBytes != int64(len(cks)*EncodedSize(50, 50)) {
		t.Fatalf("Stats.CheckpointBytes = %d", res.Stats.CheckpointBytes)
	}
}

func TestResumeFromCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomBipartite(rng, 60, 60, 140)
	var cks []*Checkpoint
	cfg := Config{
		Procs:           4,
		Init:            InitGreedy,
		CheckpointEvery: 1,
		OnCheckpoint:    func(ck *Checkpoint) { cks = append(cks, ck) },
	}
	clean := mustSolve(t, a, cfg)
	if len(cks) < 2 {
		t.Skip("not enough phases to test a mid-run resume")
	}

	// Resume from the first mid-run snapshot: the restarted solve must land
	// on the exact same mate vectors as the uninterrupted one (MCM-DIST is
	// deterministic, so the tail of the trajectory replays bit-for-bit).
	resume := cfg
	resume.OnCheckpoint = nil
	resume.Resume = cks[1]
	res, err := Solve(a, resume)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.InitCardinality != cks[1].Cardinality {
		t.Fatalf("resumed InitCardinality %d, checkpoint had %d", res.Stats.InitCardinality, cks[1].Cardinality)
	}
	if res.Stats.Cardinality != clean.Stats.Cardinality {
		t.Fatalf("resumed cardinality %d, clean %d", res.Stats.Cardinality, clean.Stats.Cardinality)
	}
	for i := range clean.Matching.MateR {
		if res.Matching.MateR[i] != clean.Matching.MateR[i] {
			t.Fatalf("MateR[%d] differs after resume: %d vs %d", i, res.Matching.MateR[i], clean.Matching.MateR[i])
		}
	}
	for j := range clean.Matching.MateC {
		if res.Matching.MateC[j] != clean.Matching.MateC[j] {
			t.Fatalf("MateC[%d] differs after resume: %d vs %d", j, res.Matching.MateC[j], clean.Matching.MateC[j])
		}
	}
}

func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randomBipartite(rng, 40, 40, 100)
	var last *Checkpoint
	cfg := Config{
		Procs:           4,
		Init:            InitGreedy,
		CheckpointEvery: 1,
		OnCheckpoint:    func(ck *Checkpoint) { last = ck },
	}
	mustSolve(t, a, cfg)
	if last == nil {
		t.Fatal("no checkpoint produced")
	}

	// Same snapshot, different algorithm configuration: hash must not match.
	bad := cfg
	bad.OnCheckpoint = nil
	bad.Init = InitKarpSipser
	bad.Resume = last
	if _, err := Solve(a, bad); err == nil {
		t.Fatal("resume under a different config accepted")
	}

	// Corrupted hash must be rejected even under the original config.
	forged := *last
	forged.ConfigHash ^= 1
	good := cfg
	good.OnCheckpoint = nil
	good.Resume = &forged
	if _, err := Solve(a, good); err == nil {
		t.Fatal("resume with forged config hash accepted")
	}
}

package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mcmdist/internal/mpi"
)

// faultPlans returns the fault matrix rows: one fresh plan per call because a
// plan carries its fired-budget across runs (that is the point).
func faultPlans() map[string]func() *mpi.FaultPlan {
	return map[string]func() *mpi.FaultPlan{
		"crash": func() *mpi.FaultPlan {
			return &mpi.FaultPlan{CrashRank: 1, CrashAtCollective: 6}
		},
		"straggler": func() *mpi.FaultPlan {
			return &mpi.FaultPlan{
				Seed:            1,
				StragglerRank:   2,
				StragglerDelay:  100 * time.Microsecond,
				StragglerEvery:  3,
				StragglerJitter: 100 * time.Microsecond,
			}
		},
		"rma": func() *mpi.FaultPlan {
			return &mpi.FaultPlan{RMAFailRank: 1, RMAFailAt: 2}
		},
	}
}

// TestRecoverableFaultMatrix is the acceptance sweep from the issue: every
// fault kind crossed with initializer and augmentation strategy must recover
// to the exact matching of the corresponding clean solve — same cardinality
// and bit-for-bit identical mate vectors.
func TestRecoverableFaultMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomBipartite(rng, 60, 60, 140) // sparse: initializers leave augmenting work
	for _, init := range []Init{InitGreedy, InitKarpSipser} {
		for _, aug := range []AugmentMode{AugmentLevelParallel, AugmentPathParallel} {
			base := Config{Procs: 4, Init: init, Augment: aug}
			clean := mustSolve(t, a, base)
			for kind, mk := range faultPlans() {
				t.Run(fmt.Sprintf("%s/%v/%v", kind, init, aug), func(t *testing.T) {
					plan := mk()
					cfg := base
					cfg.Fault = plan
					cfg.CheckpointEvery = 1
					res, rec, err := SolveRecoverable(a, cfg, RecoveryPolicy{})
					if err != nil {
						t.Fatalf("recoverable solve failed: %v (recovery %+v)", err, rec)
					}
					if err := res.Matching.Validate(a); err != nil {
						t.Fatal(err)
					}
					if res.Stats.Cardinality != clean.Stats.Cardinality {
						t.Fatalf("recovered cardinality %d, clean %d", res.Stats.Cardinality, clean.Stats.Cardinality)
					}
					for i := range clean.Matching.MateR {
						if res.Matching.MateR[i] != clean.Matching.MateR[i] {
							t.Fatalf("MateR[%d] = %d, clean %d", i, res.Matching.MateR[i], clean.Matching.MateR[i])
						}
					}
					for j := range clean.Matching.MateC {
						if res.Matching.MateC[j] != clean.Matching.MateC[j] {
							t.Fatalf("MateC[%d] = %d, clean %d", j, res.Matching.MateC[j], clean.Matching.MateC[j])
						}
					}
					// A terminal fault (crash, rma) fires exactly once and
					// costs exactly one retry; a straggler (or a fault whose
					// trigger point is never reached, e.g. an RMA fault under
					// a collective-only augmenter) costs none.
					if (rec.Retries > 0) != (plan.Fired() > 0) {
						t.Fatalf("retries %d vs fired %d", rec.Retries, plan.Fired())
					}
					if plan.Fired() > 0 && rec.Retries != 1 {
						t.Fatalf("one injected fault cost %d retries", rec.Retries)
					}
					if rec.Attempts != rec.Retries+1 {
						t.Fatalf("attempts %d, retries %d", rec.Attempts, rec.Retries)
					}
					if len(rec.Errors) != rec.Retries {
						t.Fatalf("%d errors recorded for %d retries", len(rec.Errors), rec.Retries)
					}
				})
			}
		}
	}
}

// TestRecoverableResumesMidRun drives crashes at progressively later
// collectives until one lands after an augmentation-phase checkpoint, proving
// the restart actually resumes mid-run (ResumedPhase > 0) rather than always
// replaying from scratch.
func TestRecoverableResumesMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomBipartite(rng, 80, 80, 180)
	clean := mustSolve(t, a, Config{Procs: 4, Init: InitGreedy})
	resumedMidRun := false
	for _, at := range []int{40, 80, 120, 160} {
		plan := &mpi.FaultPlan{CrashRank: 2, CrashAtCollective: at}
		cfg := Config{Procs: 4, Init: InitGreedy, CheckpointEvery: 1, Fault: plan}
		res, rec, err := SolveRecoverable(a, cfg, RecoveryPolicy{})
		if err != nil {
			t.Fatalf("crash at collective %d: %v", at, err)
		}
		if res.Stats.Cardinality != clean.Stats.Cardinality {
			t.Fatalf("crash at collective %d: cardinality %d, clean %d",
				at, res.Stats.Cardinality, clean.Stats.Cardinality)
		}
		if plan.Fired() > 0 && rec.ResumedPhase > 0 {
			resumedMidRun = true
		}
	}
	if !resumedMidRun {
		t.Fatal("no crash point produced a mid-run resume (ResumedPhase > 0)")
	}
}

// TestRecoverableExhaustsRetries checks the failure path: a plan with a
// budget larger than the retry allowance must surface the injected error.
func TestRecoverableExhaustsRetries(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomBipartite(rng, 40, 40, 100)
	plan := &mpi.FaultPlan{CrashRank: 0, CrashAtCollective: 2, MaxFires: 10}
	cfg := Config{Procs: 4, Init: InitGreedy, CheckpointEvery: 1, Fault: plan}
	pol := RecoveryPolicy{MaxRetries: 2, Backoff: time.Millisecond, MaxBackoff: time.Millisecond}
	_, rec, err := SolveRecoverable(a, cfg, pol)
	if err == nil {
		t.Fatal("solve succeeded despite an inexhaustible fault")
	}
	if rec.Attempts != 3 || rec.Retries != 2 {
		t.Fatalf("attempts %d retries %d, want 3/2", rec.Attempts, rec.Retries)
	}
	if plan.Fired() != 3 {
		t.Fatalf("plan fired %d times, want one per attempt", plan.Fired())
	}
}

// TestRecoverableWithoutCheckpointing: recovery must still work (restart from
// scratch) when checkpointing is disabled.
func TestRecoverableWithoutCheckpointing(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randomBipartite(rng, 50, 50, 120)
	clean := mustSolve(t, a, Config{Procs: 4, Init: InitGreedy})
	plan := &mpi.FaultPlan{CrashRank: 1, CrashAtCollective: 10}
	cfg := Config{Procs: 4, Init: InitGreedy, Fault: plan}
	res, rec, err := SolveRecoverable(a, cfg, RecoveryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cardinality != clean.Stats.Cardinality {
		t.Fatalf("cardinality %d, clean %d", res.Stats.Cardinality, clean.Stats.Cardinality)
	}
	if rec.Checkpoints != 0 || rec.ResumedPhase != 0 {
		t.Fatalf("checkpointing disabled but recovery saw %d checkpoints, resumed phase %d",
			rec.Checkpoints, rec.ResumedPhase)
	}
	if rec.Retries != 1 {
		t.Fatalf("retries %d, want 1", rec.Retries)
	}
}

// TestRecoverableUnderPermutation: the permute-once-outside-the-retry-loop
// design means checkpoints and restarts share one index space and the final
// result still maps back to the caller's.
func TestRecoverableUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := randomBipartite(rng, 45, 50, 200)
	clean := mustSolve(t, a, Config{Procs: 4, Init: InitGreedy, Permute: true, Seed: 3})
	plan := &mpi.FaultPlan{CrashRank: 3, CrashAtCollective: 12}
	cfg := Config{Procs: 4, Init: InitGreedy, Permute: true, Seed: 3, CheckpointEvery: 1, Fault: plan}
	res, rec, err := SolveRecoverable(a, cfg, RecoveryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(a); err != nil {
		t.Fatal(err)
	}
	if got, want := res.Matching.Cardinality(), clean.Matching.Cardinality(); got != want {
		t.Fatalf("cardinality %d, clean %d", got, want)
	}
	if plan.Fired() != 1 || rec.Retries != 1 {
		t.Fatalf("fired %d retries %d, want 1/1", plan.Fired(), rec.Retries)
	}
}

package core

// The direction/compression sweep: the solver's output is a function of the
// instance and seed alone, never of the SpMV direction, the wire codec, the
// thread count, or the backend. Under the MinParent semiring the pull kernel
// is bit-identical to push (ascending row-major adjacency makes first-hit ==
// min parent — docs/KERNELS.md), compression is a pure transport encoding,
// and threads only partition work. So every cell of
// {push,pull,auto} x {compress off,on} x {inproc,tcp} x threads 1..4
// must reproduce the static-push oracle's mate vectors exactly.

import (
	"fmt"
	"testing"

	"mcmdist/internal/mpi"
	_ "mcmdist/internal/mpi/tcpnet" // register the "tcp" backend
	"mcmdist/internal/rmat"
	"mcmdist/internal/verify"
)

func TestDirectionCompressionSweepBitIdentical(t *testing.T) {
	a := rmat.MustGenerate(rmat.G500, 7, 4, 21)
	base := Config{Procs: 4, Init: InitKarpSipser, Permute: true, Seed: 3}

	oracleCfg := base
	oracleCfg.Direction = DirectionPush
	oracle, err := Solve(a, oracleCfg)
	if err != nil {
		t.Fatalf("oracle solve: %v", err)
	}
	if err := verify.Maximum(a, oracle.Matching); err != nil {
		t.Fatalf("oracle not maximum: %v", err)
	}
	wantR := fmt.Sprint(oracle.Matching.MateR)
	wantC := fmt.Sprint(oracle.Matching.MateC)

	for _, dir := range []Direction{DirectionPush, DirectionPull, DirectionAuto} {
		for _, compress := range []bool{false, true} {
			for threads := 1; threads <= 4; threads++ {
				for _, backend := range []string{"inproc", "tcp"} {
					name := fmt.Sprintf("%s/compress=%v/t=%d/%s", dir, compress, threads, backend)
					t.Run(name, func(t *testing.T) {
						cfg := base
						cfg.Direction = dir
						cfg.Compress = compress
						cfg.Threads = threads

						var results []*Result
						if backend == "inproc" {
							res, err := Solve(a, cfg)
							if err != nil {
								t.Fatalf("solve: %v", err)
							}
							results = []*Result{res}
						} else {
							eps, err := mpi.NewTransportSet("tcp", cfg.Procs)
							if err != nil {
								t.Fatalf("building tcp endpoints: %v", err)
							}
							results, err = SolveEndpoints(eps, a, cfg)
							if cerr := mpi.CloseAll(eps); cerr != nil {
								t.Errorf("closing endpoints: %v", cerr)
							}
							if err != nil {
								t.Fatalf("tcp solve: %v", err)
							}
						}
						for i, res := range results {
							if got := fmt.Sprint(res.Matching.MateR); got != wantR {
								t.Errorf("endpoint %d MateR diverges from push oracle:\n  oracle: %s\n  got:    %s", i, wantR, got)
							}
							if got := fmt.Sprint(res.Matching.MateC); got != wantC {
								t.Errorf("endpoint %d MateC diverges from push oracle", i)
							}
							if res.Stats.Cardinality != oracle.Stats.Cardinality {
								t.Errorf("endpoint %d cardinality %d, oracle %d", i, res.Stats.Cardinality, oracle.Stats.Cardinality)
							}
							// WordsEnc is the one meter column allowed to
							// move with compression; it must track it.
							for r, m := range res.PerRank {
								if compress && m.Words > 0 && m.WordsEnc <= 0 {
									t.Errorf("endpoint %d rank %d: compression on but WordsEnc=%d", i, r, m.WordsEnc)
								}
								if !compress && m.WordsEnc != 0 {
									t.Errorf("endpoint %d rank %d: compression off but WordsEnc=%d", i, r, m.WordsEnc)
								}
							}
						}
					})
				}
			}
		}
	}
}

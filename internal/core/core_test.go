package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mcmdist/internal/dvec"
	"mcmdist/internal/gen"
	"mcmdist/internal/matching"
	"mcmdist/internal/mpi"
	"mcmdist/internal/rmat"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

func randomBipartite(rng *rand.Rand, nr, nc, m int) *spmat.CSC {
	c := spmat.NewCOO(nr, nc)
	for k := 0; k < m; k++ {
		c.Add(rng.Intn(nr), rng.Intn(nc))
	}
	return c.ToCSC()
}

// mustSolve runs Solve and fails the test on error or invalid matching.
func mustSolve(t *testing.T, a *spmat.CSC, cfg Config) *Result {
	t.Helper()
	res, err := Solve(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(a); err != nil {
		t.Fatalf("cfg %+v: %v", cfg, err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	a := randomBipartite(rand.New(rand.NewSource(1)), 5, 5, 10)
	if _, err := Solve(a, Config{Procs: 3}); err == nil {
		t.Fatal("non-square Procs accepted")
	}
	if _, err := Solve(a, Config{Procs: 8}); err == nil {
		t.Fatal("non-square Procs accepted")
	}
	if _, err := Solve(a, Config{Procs: 0}); err != nil {
		t.Fatalf("Procs 0 should default to 1: %v", err)
	}
}

func TestEnumStrings(t *testing.T) {
	if InitNone.String() != "none" || InitGreedy.String() != "greedy" ||
		InitKarpSipser.String() != "karp-sipser" || InitDynMinDegree.String() != "dynamic-mindegree" {
		t.Fatal("Init names wrong")
	}
	if Init(42).String() != "Init(42)" {
		t.Fatal("unknown Init name wrong")
	}
	if AugmentAuto.String() != "auto" || AugmentLevelParallel.String() != "level-parallel" ||
		AugmentPathParallel.String() != "path-parallel" {
		t.Fatal("AugmentMode names wrong")
	}
	if AugmentMode(9).String() != "AugmentMode(9)" {
		t.Fatal("unknown AugmentMode name wrong")
	}
}

// TestWorkedExample is the Fig. 1 / Fig. 2 style worked example: a 5x5
// bipartite graph with initial matching {(r1,c2), (r3,c3)} and unmatched
// columns {c0, c1, c4}. One MS-BFS phase discovers three vertex-disjoint
// augmenting paths (all single edges) and the matching becomes perfect.
func TestWorkedExample(t *testing.T) {
	coo := spmat.NewCOO(5, 5)
	for _, e := range [][2]int{
		{0, 0}, {1, 0}, // c0: r0, r1
		{1, 1}, {2, 1}, // c1: r1, r2
		{1, 2}, {2, 2}, {3, 2}, // c2: r1, r2, r3
		{3, 3}, {4, 3}, // c3: r3, r4
		{4, 4}, // c4: r4
	} {
		coo.Add(e[0], e[1])
	}
	a := coo.ToCSC()

	for _, procs := range []int{1, 4} {
		res, err := Solve(a, Config{Procs: procs, Init: InitNone, AddOp: semiring.MinParent})
		if err != nil {
			t.Fatal(err)
		}
		// With InitNone the first phase starts from the empty matching and
		// must drive cardinality to the perfect 5.
		if res.Stats.Cardinality != 5 {
			t.Fatalf("p=%d: cardinality %d, want 5", procs, res.Stats.Cardinality)
		}
		if err := res.Matching.Validate(a); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWorkedExamplePhase checks the exact per-step behavior of one MS-BFS
// phase on the worked example with the initial matching of the figure:
// the phase finds exactly 3 augmenting paths, prunes r1's continuation, and
// finishes in a single iteration.
func TestWorkedExamplePhase(t *testing.T) {
	coo := spmat.NewCOO(5, 5)
	for _, e := range [][2]int{
		{0, 0}, {1, 0}, {1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 2}, {3, 3}, {4, 3}, {4, 4},
	} {
		coo.Add(e[0], e[1])
	}
	a := coo.ToCSC()

	// Seed mate vectors with the figure's initial matching via a custom run.
	side := 2
	blocks := spmat.Distribute2D(a, side, side)
	blocksT := spmat.Distribute2D(a.Transpose(), side, side)
	stats := make([]*Stats, side*side)
	var mateR, mateC []int64
	err := RunDistributed(side, a.NRows, a.NCols, blocks, blocksT,
		Config{Procs: side * side, AddOp: semiring.MinParent}, func(s *Solver) error {
			mater := dvec.NewDenseFrom(s.RowL, []int64{-1, 2, -1, 3, -1})
			matec := dvec.NewDenseFrom(s.ColL, []int64{-1, -1, 1, 3, -1})
			s.MCM(mater, matec)
			fullR := mater.Gather()
			fullC := matec.Gather()
			if s.G.World.Rank() == 0 {
				mateR, mateC = fullR, fullC
			}
			stats[s.G.World.Rank()] = s.Stats
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	st := stats[0]
	if st.Cardinality != 5 {
		t.Fatalf("cardinality %d, want 5", st.Cardinality)
	}
	if st.Phases != 1 {
		t.Fatalf("phases %d, want 1 (all paths found in the first phase)", st.Phases)
	}
	if st.AugmentedPaths != 3 {
		t.Fatalf("paths %d, want 3", st.AugmentedPaths)
	}
	// The pruning of r1 ends the phase after one iteration: the second
	// phase's scan plus the first phase's single level gives 1 iteration.
	if st.Iterations != 1 {
		t.Fatalf("iterations %d, want 1", st.Iterations)
	}
	m := &matching.Matching{MateR: mateR, MateC: mateC}
	if err := m.Validate(a); err != nil {
		t.Fatal(err)
	}
	// The figure's deterministic minParent outcome.
	want := []int64{0, 2, 1, 3, 4} // mateR
	for i, w := range want {
		if mateR[i] != w {
			t.Fatalf("mateR = %v, want %v", mateR, want)
		}
	}
}

func TestMCMDistMatchesOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		nr, nc := 10+rng.Intn(40), 10+rng.Intn(40)
		a := randomBipartite(rng, nr, nc, rng.Intn(4*(nr+nc))+nr)
		want := matching.HopcroftKarp(a, nil).Cardinality()
		for _, procs := range []int{1, 4, 9} {
			for _, init := range []Init{InitNone, InitGreedy} {
				res := mustSolve(t, a, Config{Procs: procs, Init: init})
				if res.Stats.Cardinality != want {
					t.Fatalf("trial %d p=%d init=%v: %d, oracle %d",
						trial, procs, init, res.Stats.Cardinality, want)
				}
				if got := res.Matching.Cardinality(); got != want {
					t.Fatalf("matching cardinality %d != stats %d", got, want)
				}
			}
		}
	}
}

func TestMCMDistAllInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomBipartite(rng, 60, 60, 260)
	want := matching.HopcroftKarp(a, nil).Cardinality()
	for _, init := range []Init{InitNone, InitGreedy, InitKarpSipser, InitDynMinDegree} {
		res := mustSolve(t, a, Config{Procs: 4, Init: init})
		if res.Stats.Cardinality != want {
			t.Fatalf("init=%v: %d, oracle %d", init, res.Stats.Cardinality, want)
		}
		if init != InitNone {
			// Initializer must already be a sizable matching (>= half of MCM).
			if 2*res.Stats.InitCardinality < want {
				t.Fatalf("init=%v: init cardinality %d below maximal bound %d/2",
					init, res.Stats.InitCardinality, want)
			}
		}
	}
}

func TestMCMDistSemirings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomBipartite(rng, 50, 55, 240)
	want := matching.HopcroftKarp(a, nil).Cardinality()
	for _, op := range []semiring.AddOp{semiring.MinParent, semiring.RandRoot, semiring.RandParent} {
		res := mustSolve(t, a, Config{Procs: 4, AddOp: op})
		if res.Stats.Cardinality != want {
			t.Fatalf("op=%v: %d, oracle %d", op, res.Stats.Cardinality, want)
		}
	}
}

func TestMCMDistAugmentModes(t *testing.T) {
	// Ladder graph: unique long augmenting path (exercises multi-level
	// augmentation in both variants).
	const n = 60
	coo := spmat.NewCOO(n, n)
	for k := 0; k < n; k++ {
		coo.Add(k, k)
		if k+1 < n {
			coo.Add(k+1, k)
		}
	}
	a := coo.ToCSC()
	for _, mode := range []AugmentMode{AugmentAuto, AugmentLevelParallel, AugmentPathParallel} {
		for _, procs := range []int{1, 4} {
			res := mustSolve(t, a, Config{Procs: procs, Augment: mode, Init: InitGreedy})
			if res.Stats.Cardinality != n {
				t.Fatalf("mode=%v p=%d: %d, want perfect %d", mode, procs, res.Stats.Cardinality, n)
			}
			switch mode {
			case AugmentLevelParallel:
				if res.Stats.PathParallelAugments > 0 {
					t.Fatalf("mode=%v used path-parallel", mode)
				}
			case AugmentPathParallel:
				if res.Stats.LevelParallelAugments > 0 {
					t.Fatalf("mode=%v used level-parallel", mode)
				}
			}
		}
	}
}

func TestAutoSwitchUsesPathParallelForFewPaths(t *testing.T) {
	// k is always < 2p^2 at these sizes, so auto must pick path-parallel.
	rng := rand.New(rand.NewSource(12))
	a := randomBipartite(rng, 40, 40, 160)
	res := mustSolve(t, a, Config{Procs: 4, Augment: AugmentAuto, Init: InitGreedy})
	if res.Stats.Phases > 0 && res.Stats.PathParallelAugments == 0 {
		t.Fatalf("auto mode never used path-parallel with k << 2p²: %+v", res.Stats)
	}
	if res.Stats.LevelParallelAugments > 0 {
		t.Fatalf("auto picked level-parallel for k < 2p²")
	}
}

func TestMCMDistPruneAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomBipartite(rng, 70, 70, 300)
	want := matching.HopcroftKarp(a, nil).Cardinality()
	on := mustSolve(t, a, Config{Procs: 4})
	off := mustSolve(t, a, Config{Procs: 4, DisablePrune: true})
	if on.Stats.Cardinality != want || off.Stats.Cardinality != want {
		t.Fatalf("prune on/off cardinalities %d/%d, oracle %d",
			on.Stats.Cardinality, off.Stats.Cardinality, want)
	}
	if on.Stats.Meter[OpPrune].Msgs == 0 && on.Stats.Phases > 0 {
		t.Fatal("prune enabled but no prune communication recorded")
	}
	if off.Stats.Meter[OpPrune] != (on.Stats.Meter[OpPrune].Sub(on.Stats.Meter[OpPrune])) {
		t.Fatal("prune disabled but prune meter nonzero")
	}
}

func TestMCMDistPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randomBipartite(rng, 45, 50, 200)
	want := matching.HopcroftKarp(a, nil).Cardinality()
	res := mustSolve(t, a, Config{Procs: 4, Permute: true, Seed: 3})
	if got := res.Matching.Cardinality(); got != want {
		t.Fatalf("permuted solve: %d, oracle %d", got, want)
	}
}

func TestMCMDistOnSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite in -short mode")
	}
	for _, sp := range gen.Suite()[:6] {
		a := gen.MustGenerate(sp, 6)
		want := matching.HopcroftKarp(a, nil).Cardinality()
		res := mustSolve(t, a, Config{Procs: 4, Permute: true, Seed: 1})
		if got := res.Matching.Cardinality(); got != want {
			t.Fatalf("%s: %d, oracle %d", sp.Name, got, want)
		}
	}
}

func TestMCMDistOnRMAT(t *testing.T) {
	for _, p := range []rmat.Params{rmat.G500, rmat.ER} {
		a := rmat.MustGenerate(p, 7, 4, 21)
		want := matching.HopcroftKarp(a, nil).Cardinality()
		res := mustSolve(t, a, Config{Procs: 9, Init: InitDynMinDegree})
		if res.Stats.Cardinality != want {
			t.Fatalf("rmat %+v: %d, oracle %d", p, res.Stats.Cardinality, want)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randomBipartite(rng, 50, 50, 120) // sparse: greedy leaves gaps
	res := mustSolve(t, a, Config{Procs: 4, Init: InitGreedy})
	st := res.Stats
	if st.Wall[OpInit] <= 0 {
		t.Error("no init wall time recorded")
	}
	if st.Phases > 0 {
		if st.Wall[OpSpMV] <= 0 || st.Meter[OpSpMV].Msgs == 0 {
			t.Error("no SpMV activity recorded despite phases")
		}
		if st.Wall[OpAugment] <= 0 {
			t.Error("no augment wall time recorded")
		}
	}
	if st.TotalWall() <= 0 {
		t.Error("total wall zero")
	}
	if len(res.PerRank) != 4 {
		t.Errorf("PerRank has %d entries", len(res.PerRank))
	}
	if res.String() == "" {
		t.Error("empty String()")
	}
}

func TestRectangularGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, dims := range [][2]int{{10, 80}, {80, 10}, {1, 50}, {50, 1}} {
		a := randomBipartite(rng, dims[0], dims[1], 3*(dims[0]+dims[1]))
		want := matching.HopcroftKarp(a, nil).Cardinality()
		res := mustSolve(t, a, Config{Procs: 4})
		if res.Stats.Cardinality != want {
			t.Fatalf("%v: %d, oracle %d", dims, res.Stats.Cardinality, want)
		}
	}
}

func TestEmptyAndEdgeCaseGraphs(t *testing.T) {
	empty := spmat.NewCOO(6, 6).ToCSC()
	res := mustSolve(t, empty, Config{Procs: 4})
	if res.Stats.Cardinality != 0 {
		t.Fatalf("empty graph: %d", res.Stats.Cardinality)
	}
	single := spmat.NewCOO(1, 1)
	single.Add(0, 0)
	res = mustSolve(t, single.ToCSC(), Config{Procs: 4})
	if res.Stats.Cardinality != 1 {
		t.Fatalf("single edge: %d", res.Stats.Cardinality)
	}
}

func TestDeterministicAcrossGridSizes(t *testing.T) {
	// Cardinality (not the specific matching) must be grid-invariant.
	rng := rand.New(rand.NewSource(18))
	a := randomBipartite(rng, 64, 64, 256)
	want := -1
	for _, procs := range []int{1, 4, 9, 16} {
		res := mustSolve(t, a, Config{Procs: procs})
		if want == -1 {
			want = res.Stats.Cardinality
		} else if res.Stats.Cardinality != want {
			t.Fatalf("p=%d: cardinality %d, others %d", procs, res.Stats.Cardinality, want)
		}
	}
}

func TestDirectionOptimizedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5; trial++ {
		nr, nc := 20+rng.Intn(60), 20+rng.Intn(60)
		a := randomBipartite(rng, nr, nc, 4*(nr+nc))
		want := matching.HopcroftKarp(a, nil).Cardinality()
		for _, procs := range []int{1, 4, 9} {
			res := mustSolve(t, a, Config{Procs: procs, DirectionOptimized: true})
			if res.Stats.Cardinality != want {
				t.Fatalf("trial %d p=%d: %d, oracle %d", trial, procs, res.Stats.Cardinality, want)
			}
		}
	}
}

func TestDirectionOptimizedUsesBothDirections(t *testing.T) {
	// With InitNone the first phase starts from all columns unmatched: the
	// frontier is 100% of the columns, forcing pull; later phases have tiny
	// frontiers, forcing push.
	rng := rand.New(rand.NewSource(24))
	a := randomBipartite(rng, 200, 200, 900)
	res := mustSolve(t, a, Config{Procs: 4, DirectionOptimized: true, Init: InitNone})
	if res.Stats.PullIterations == 0 {
		t.Fatal("direction optimization never used pull despite full initial frontier")
	}
	if res.Stats.PushIterations == 0 {
		t.Fatal("direction optimization never fell back to push")
	}
	if res.Stats.PullIterations+res.Stats.PushIterations != res.Stats.Iterations {
		t.Fatalf("direction split %d+%d != iterations %d",
			res.Stats.PullIterations, res.Stats.PushIterations, res.Stats.Iterations)
	}
}

func TestDirectionOptimizedOffUsesOnlyPush(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := randomBipartite(rng, 50, 50, 200)
	res := mustSolve(t, a, Config{Procs: 4})
	if res.Stats.PullIterations != 0 {
		t.Fatal("pull used without DirectionOptimized")
	}
	if res.Stats.PushIterations != res.Stats.Iterations {
		t.Fatal("push iteration accounting wrong")
	}
}

func TestPullThresholdRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := randomBipartite(rng, 100, 100, 500)
	// Threshold above 1.0 can never trigger: all pushes.
	res := mustSolve(t, a, Config{Procs: 4, DirectionOptimized: true, PullThreshold: 1.5})
	if res.Stats.PullIterations != 0 {
		t.Fatal("pull used despite impossible threshold")
	}
}

// TestDistributedInitializersAreMaximal gathers each initializer's result
// and checks maximality and validity against the serial definitions.
func TestDistributedInitializersAreMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 4; trial++ {
		a := randomBipartite(rng, 30+rng.Intn(40), 30+rng.Intn(40), 300)
		side := 2
		blocks := spmat.Distribute2D(a, side, side)
		blocksT := spmat.Distribute2D(a.Transpose(), side, side)
		for _, init := range []Init{InitGreedy, InitKarpSipser, InitDynMinDegree} {
			var mateR, mateC []int64
			err := RunDistributed(side, a.NRows, a.NCols, blocks, blocksT,
				Config{Procs: side * side, Init: init}, func(s *Solver) error {
					mater, matec := s.MaximalInit()
					fullR := mater.Gather()
					fullC := matec.Gather()
					if s.G.World.Rank() == 0 {
						mateR, mateC = fullR, fullC
					}
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			m := &matching.Matching{MateR: mateR, MateC: mateC}
			if err := m.Validate(a); err != nil {
				t.Fatalf("trial %d init=%v: %v", trial, init, err)
			}
			if !m.IsMaximal(a) {
				t.Fatalf("trial %d init=%v: matching not maximal", trial, init)
			}
		}
	}
}

// TestCountMulMatchesSerialDegrees: the counting SpMV used by the degree-
// based initializers must reproduce exact residual column degrees.
func TestCountMulMatchesSerialDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomBipartite(rng, 40, 50, 400)
	side := 2
	blocks := spmat.Distribute2D(a, side, side)
	blocksT := spmat.Distribute2D(a.Transpose(), side, side)

	// Serial reference: column degree counting all rows.
	want := make([]int64, a.NCols)
	for j := 0; j < a.NCols; j++ {
		want[j] = int64(a.ColDegree(j))
	}

	err := RunDistributed(side, a.NRows, a.NCols, blocks, blocksT,
		Config{Procs: side * side}, func(s *Solver) error {
			// Indicator over all rows.
			urows := dvec.NewSparseInt(s.RowTL)
			r := s.RowTL.MyRange()
			for gi := r.Lo; gi < r.Hi; gi++ {
				urows.Append(gi, 1)
			}
			deg := s.countMul(urows)
			got := deg.GatherInt()
			for j := 0; j < a.NCols; j++ {
				w := want[j]
				g := got[j]
				if w == 0 {
					if g != semiring.None {
						return fmt.Errorf("col %d: got %d, want missing", j, g)
					}
					continue
				}
				if g != w {
					return fmt.Errorf("col %d: got %d, want %d", j, g, w)
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTreeGraftingMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		nr, nc := 20+rng.Intn(60), 20+rng.Intn(60)
		a := randomBipartite(rng, nr, nc, rng.Intn(4*(nr+nc))+nr)
		want := matching.HopcroftKarp(a, nil).Cardinality()
		for _, procs := range []int{1, 4, 9} {
			for _, init := range []Init{InitNone, InitGreedy, InitDynMinDegree} {
				res := mustSolve(t, a, Config{Procs: procs, Init: init, TreeGrafting: true})
				if res.Stats.Cardinality != want {
					t.Fatalf("trial %d p=%d init=%v: graft %d, oracle %d",
						trial, procs, init, res.Stats.Cardinality, want)
				}
			}
		}
	}
}

func TestTreeGraftingOnStructuredGraphs(t *testing.T) {
	for _, sp := range gen.Suite()[:5] {
		a := gen.MustGenerate(sp, 6)
		want := matching.HopcroftKarp(a, nil).Cardinality()
		res := mustSolve(t, a, Config{Procs: 4, Init: InitGreedy, TreeGrafting: true, Permute: true})
		if res.Stats.Cardinality != want {
			t.Fatalf("%s: graft %d, oracle %d", sp.Name, res.Stats.Cardinality, want)
		}
	}
}

func TestTreeGraftingAllAugmentModes(t *testing.T) {
	// Long augmenting paths through persistent trees exercise the
	// cross-phase parent chains in both augmentation variants.
	const n = 50
	coo := spmat.NewCOO(n, n)
	for k := 0; k < n; k++ {
		coo.Add(k, k)
		if k+1 < n {
			coo.Add(k+1, k)
		}
	}
	a := coo.ToCSC()
	for _, mode := range []AugmentMode{AugmentLevelParallel, AugmentPathParallel} {
		res := mustSolve(t, a, Config{Procs: 4, Init: InitGreedy, TreeGrafting: true, Augment: mode})
		if res.Stats.Cardinality != n {
			t.Fatalf("mode=%v: %d, want %d", mode, res.Stats.Cardinality, n)
		}
	}
}

func TestTreeGraftingStats(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomBipartite(rng, 120, 120, 400) // sparse enough for several phases
	res := mustSolve(t, a, Config{Procs: 4, Init: InitGreedy, TreeGrafting: true})
	if res.Stats.Phases > 0 && res.Stats.GraftReleasedRows == 0 {
		t.Error("phases augmented but no rows ever released")
	}
	if res.Stats.GraftResets == 0 {
		t.Error("termination requires at least one full-reset verification phase... unless first sweep found nothing")
	}
}

// TestAugmentedPathsAccounting: the symmetric-difference invariant of
// Section II — every applied path raises cardinality by one — shows up in
// the stats: final = initial + total augmenting paths, on every variant.
func TestAugmentedPathsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 5; trial++ {
		a := randomBipartite(rng, 60, 60, 250)
		for _, cfg := range []Config{
			{Procs: 4, Init: InitGreedy},
			{Procs: 4, Init: InitGreedy, TreeGrafting: true},
			{Procs: 9, Init: InitNone, Augment: AugmentLevelParallel},
			{Procs: 4, Init: InitDynMinDegree, DirectionOptimized: true},
		} {
			res := mustSolve(t, a, cfg)
			if res.Stats.Cardinality != res.Stats.InitCardinality+res.Stats.AugmentedPaths {
				t.Fatalf("trial %d cfg %+v: %d != %d + %d", trial, cfg,
					res.Stats.Cardinality, res.Stats.InitCardinality, res.Stats.AugmentedPaths)
			}
		}
	}
}

// TestSectionIVBBounds validates the paper's Section IV-B aggregate
// communication analysis against the exact meters, within constant factors:
//
//	SpMV   per rank per phase: O(m/p + n/sqrt(p)) words
//	INVERT per rank per phase: O(n/p) words (frontier sum is O(n))
//	PRUNE  per rank per phase: O(n) words gathered, usually far less
func TestSectionIVBBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := randomBipartite(rng, 256, 256, 1600)
	const procs = 16
	res := mustSolve(t, a, Config{Procs: procs, Init: InitNone, Permute: true, Seed: 2})

	phases := res.Stats.Phases + 1 // count the final empty phase's scan
	n := float64(a.NCols + a.NRows)
	m := float64(a.NNZ())
	p := float64(procs)
	sqrtP := 4.0

	// Constant factors absorb the (parent, root) pair width (3 words per
	// element) and implementation slack.
	const c = 8.0

	spmvWords := float64(res.Stats.Meter[OpSpMV].Words)
	if bound := c * float64(phases) * (m/p + n/sqrtP); spmvWords > bound {
		t.Errorf("SpMV words %g exceed IV-B bound %g", spmvWords, bound)
	}
	invertWords := float64(res.Stats.Meter[OpInvert].Words)
	if bound := c * float64(phases) * n; invertWords > bound { // O(n) aggregate per phase
		t.Errorf("INVERT words %g exceed IV-B bound %g", invertWords, bound)
	}
	pruneWords := float64(res.Stats.Meter[OpPrune].Words)
	if bound := c * float64(phases) * n; pruneWords > bound {
		t.Errorf("PRUNE words %g exceed IV-B bound %g", pruneWords, bound)
	}
	// The paper: "the bandwidth cost for PRUNE is usually insignificant to
	// that of SpMV".
	if res.Stats.Phases > 0 && pruneWords > spmvWords {
		t.Errorf("PRUNE words %g exceed SpMV words %g", pruneWords, spmvWords)
	}
}

// TestEmptyRowsAndColumns: isolated vertices must not confuse any stage.
func TestEmptyRowsAndColumns(t *testing.T) {
	coo := spmat.NewCOO(10, 10)
	// Only a 3x3 corner has edges; rows/cols 3..9 are isolated.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			coo.Add(i, j)
		}
	}
	a := coo.ToCSC()
	for _, cfg := range []Config{
		{Procs: 4},
		{Procs: 4, TreeGrafting: true},
		{Procs: 4, DirectionOptimized: true},
		{Procs: 4, Init: InitKarpSipser},
	} {
		res := mustSolve(t, a, cfg)
		if res.Stats.Cardinality != 3 {
			t.Fatalf("cfg %+v: %d, want 3", cfg, res.Stats.Cardinality)
		}
	}
}

// TestCommKindAttribution uses the per-collective telemetry to confirm the
// paper's pattern mapping: SpMV expand and PRUNE ride allgathers, INVERT
// and SpMV fold ride personalized all-to-alls, and only the path-parallel
// augmentation issues one-sided RMA operations.
func TestCommKindAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := randomBipartite(rng, 80, 80, 300)
	side := 2
	blocks := spmat.Distribute2D(a, side, side)
	blocksT := spmat.Distribute2D(a.Transpose(), side, side)

	runAndMeter := func(mode AugmentMode) (rma, a2a, ag mpi.Meter) {
		var w *mpi.World
		err := RunDistributed(side, a.NRows, a.NCols, blocks, blocksT,
			Config{Procs: side * side, Init: InitGreedy, Augment: mode},
			func(s *Solver) error {
				mater, matec := s.MaximalInit()
				s.MCM(mater, matec)
				if s.G.World.Rank() == 0 {
					w = s.G.World.World()
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < side*side; r++ {
			rma = rma.Add(w.RankKindMeter(r, mpi.KindRMA))
			a2a = a2a.Add(w.RankKindMeter(r, mpi.KindAlltoall))
			ag = ag.Add(w.RankKindMeter(r, mpi.KindAllgather))
		}
		return rma, a2a, ag
	}

	rmaPath, a2aPath, agPath := runAndMeter(AugmentPathParallel)
	if a2aPath.Msgs == 0 || agPath.Msgs == 0 {
		t.Fatal("SpMV/INVERT collectives not recorded")
	}
	if rmaPath.Msgs == 0 {
		t.Fatal("path-parallel augmentation issued no RMA operations")
	}
	rmaLevel, _, _ := runAndMeter(AugmentLevelParallel)
	if rmaLevel.Msgs != 0 {
		t.Fatalf("level-parallel augmentation issued %d RMA messages", rmaLevel.Msgs)
	}
}

// TestRectangularGrids: this implementation supports the rectangular
// process grids the paper's CombBLAS build could not ("we only used square
// process grids because rectangular grids are not supported").
func TestRectangularGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a := randomBipartite(rng, 70, 50, 320)
	want := matching.HopcroftKarp(a, nil).Cardinality()
	for _, shape := range [][2]int{{1, 4}, {4, 1}, {2, 3}, {3, 2}, {2, 8}, {1, 9}} {
		for _, graft := range []bool{false, true} {
			cfg := Config{GridRows: shape[0], GridCols: shape[1],
				Init: InitDynMinDegree, TreeGrafting: graft, Permute: true, Seed: 4}
			res := mustSolve(t, a, cfg)
			if res.Stats.Cardinality != want {
				t.Fatalf("grid %v graft=%v: %d, oracle %d", shape, graft, res.Stats.Cardinality, want)
			}
			if res.Procs != shape[0]*shape[1] {
				t.Fatalf("grid %v: procs %d", shape, res.Procs)
			}
		}
	}
	// Bad shapes rejected.
	if _, err := Solve(a, Config{GridRows: 2}); err == nil {
		t.Fatal("half-specified grid accepted")
	}
	if _, err := Solve(a, Config{GridRows: -1, GridCols: 2}); err == nil {
		t.Fatal("negative grid accepted")
	}
}

func TestSingleSourceMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 4; trial++ {
		a := randomBipartite(rng, 40, 40, 180)
		want := matching.HopcroftKarp(a, nil).Cardinality()
		side := 2
		blocks := spmat.Distribute2D(a, side, side)
		blocksT := spmat.Distribute2D(a.Transpose(), side, side)
		var card int
		err := RunDistributed(side, a.NRows, a.NCols, blocks, blocksT,
			Config{Procs: 4, Init: InitGreedy}, func(s *Solver) error {
				mater, matec := s.MaximalInit()
				s.MCMSingleSource(mater, matec)
				if s.G.World.Rank() == 0 {
					card = s.Stats.Cardinality
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if card != want {
			t.Fatalf("trial %d: SS-BFS %d, oracle %d", trial, card, want)
		}
	}
}

// TestSingleSourceNeedsFarMoreIterations quantifies Section III-A's
// argument against single-source algorithms: at equal inputs, SS-BFS
// executes many times more level-synchronous iterations (each a full round
// of collectives) than MS-BFS.
func TestSingleSourceNeedsFarMoreIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	a := randomBipartite(rng, 150, 150, 450) // sparse: many augmenting phases
	side := 2
	blocks := spmat.Distribute2D(a, side, side)
	blocksT := spmat.Distribute2D(a.Transpose(), side, side)

	iters := func(single bool) int {
		var n int
		err := RunDistributed(side, a.NRows, a.NCols, blocks, blocksT,
			Config{Procs: 4, Init: InitNone}, func(s *Solver) error {
				mater, matec := s.MaximalInit()
				if single {
					s.MCMSingleSource(mater, matec)
				} else {
					s.MCM(mater, matec)
				}
				if s.G.World.Rank() == 0 {
					n = s.Stats.Iterations
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	ms := iters(false)
	ss := iters(true)
	if ss < 3*ms {
		t.Fatalf("SS-BFS used %d iterations vs MS-BFS %d — expected a large multiple", ss, ms)
	}
}

// TestMoreRanksThanVertices: zero-length blocks on most ranks must work.
func TestMoreRanksThanVertices(t *testing.T) {
	coo := spmat.NewCOO(2, 2)
	coo.Add(0, 0)
	coo.Add(1, 0)
	coo.Add(1, 1)
	a := coo.ToCSC()
	for _, procs := range []int{9, 16} {
		res := mustSolve(t, a, Config{Procs: procs, Init: InitGreedy})
		if res.Stats.Cardinality != 2 {
			t.Fatalf("p=%d: %d, want 2", procs, res.Stats.Cardinality)
		}
	}
}

package spmat

// DCSC is the doubly compressed sparse columns format used by CombBLAS for
// local submatrices (Buluç & Gilbert). Unlike CSC it does not spend O(ncols)
// storage on empty columns: only the nzc columns that contain at least one
// nonzero are represented.
//
//	JC[k]          = index of the k-th nonempty column (strictly increasing)
//	CP[k]..CP[k+1] = range of IR holding the row indices of column JC[k]
//	IR             = row indices, sorted within each column
//
// DCSC matters in the 2D distribution because a local submatrix of an
// n/√p-column slab frequently has far fewer than n/√p nonempty columns
// (hypersparsity), and iterating over it must cost O(nzc), not O(ncols).
type DCSC struct {
	NRows, NCols int
	JC           []int // nonempty column indices, len nzc
	CP           []int // column pointers, len nzc+1
	IR           []int // row indices, len nnz
}

// ToDCSC converts a CSC matrix to DCSC form.
func (m *CSC) ToDCSC() *DCSC {
	d := &DCSC{NRows: m.NRows, NCols: m.NCols, IR: m.RowIdx}
	for j := 0; j < m.NCols; j++ {
		if m.ColPtr[j+1] > m.ColPtr[j] {
			d.JC = append(d.JC, j)
			d.CP = append(d.CP, m.ColPtr[j])
		}
	}
	d.CP = append(d.CP, len(m.RowIdx))
	return d
}

// ToCSC expands the DCSC matrix back to plain CSC form.
func (d *DCSC) ToCSC() *CSC {
	m := &CSC{
		NRows:  d.NRows,
		NCols:  d.NCols,
		ColPtr: make([]int, d.NCols+1),
		RowIdx: d.IR,
	}
	for k, j := range d.JC {
		m.ColPtr[j+1] = d.CP[k+1] - d.CP[k]
	}
	for j := 0; j < d.NCols; j++ {
		m.ColPtr[j+1] += m.ColPtr[j]
	}
	return m
}

// NNZ returns the number of nonzeros.
func (d *DCSC) NNZ() int { return len(d.IR) }

// NZC returns the number of nonempty columns.
func (d *DCSC) NZC() int { return len(d.JC) }

// ColByIndex returns the j-th nonempty column: its column index and its
// sorted row indices. The slice aliases the matrix storage.
func (d *DCSC) ColByIndex(k int) (col int, rows []int) {
	return d.JC[k], d.IR[d.CP[k]:d.CP[k+1]]
}

// FindCol returns the sorted row indices of column j, or nil when the column
// is empty, using binary search over JC in O(log nzc).
func (d *DCSC) FindCol(j int) []int {
	lo, hi := 0, len(d.JC)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.JC[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.JC) && d.JC[lo] == j {
		return d.IR[d.CP[lo]:d.CP[lo+1]]
	}
	return nil
}

package spmat

// Block describes one contiguous block of a 1D index range that has been
// split across processes: global indices [Lo, Hi) map to local 0..Hi-Lo.
type Block struct {
	Lo, Hi int
}

// Len returns the number of indices in the block.
func (b Block) Len() int { return b.Hi - b.Lo }

// Contains reports whether global index g falls inside the block.
func (b Block) Contains(g int) bool { return g >= b.Lo && g < b.Hi }

// SplitRange partitions [0, n) into parts near-equal contiguous blocks, the
// first n%parts blocks being one longer, matching the usual MPI block
// distribution.
func SplitRange(n, parts int) []Block {
	if parts <= 0 {
		panic("spmat: SplitRange with parts <= 0")
	}
	out := make([]Block, parts)
	base, rem := n/parts, n%parts
	lo := 0
	for k := 0; k < parts; k++ {
		size := base
		if k < rem {
			size++
		}
		out[k] = Block{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// BlockAt returns block k of SplitRange(n, parts) in closed form, without
// materializing the partition. O(1) and allocation-free — this sits on the
// per-element path of vector Appends and owner lookups.
func BlockAt(n, parts, k int) Block {
	base, rem := n/parts, n%parts
	if k < rem {
		lo := k * (base + 1)
		return Block{Lo: lo, Hi: lo + base + 1}
	}
	lo := rem*(base+1) + (k-rem)*base
	return Block{Lo: lo, Hi: lo + base}
}

// OwnerOf returns the index of the block containing global index g, for
// blocks produced by SplitRange(n, parts). O(1).
func OwnerOf(n, parts, g int) int {
	base, rem := n/parts, n%parts
	cut := rem * (base + 1)
	if g < cut {
		return g / (base + 1)
	}
	if base == 0 {
		return parts - 1 // g >= cut impossible unless n==cut; defensive
	}
	return rem + (g-cut)/base
}

// LocalMatrix is the submatrix owned by one process of the 2D grid: the
// intersection of one row slab and one column slab of the global matrix,
// stored in DCSC with local (block-relative) indices.
type LocalMatrix struct {
	Rows, Cols Block // global index ranges of this block
	M          *DCSC // local submatrix, indices relative to Rows.Lo/Cols.Lo
}

// Distribute2D splits the global matrix into pr x pc local matrices.
// Element (i, j) of the result is the block owned by grid process (i, j):
// global rows in rowBlocks[i], global columns in colBlocks[j].
func Distribute2D(a *CSC, pr, pc int) [][]*LocalMatrix {
	rowBlocks := SplitRange(a.NRows, pr)
	colBlocks := SplitRange(a.NCols, pc)

	coos := make([][]*COO, pr)
	for i := range coos {
		coos[i] = make([]*COO, pc)
		for j := range coos[i] {
			coos[i][j] = NewCOO(rowBlocks[i].Len(), colBlocks[j].Len())
		}
	}
	for j := 0; j < a.NCols; j++ {
		pj := OwnerOf(a.NCols, pc, j)
		lj := j - colBlocks[pj].Lo
		for _, i := range a.Col(j) {
			pi := OwnerOf(a.NRows, pr, i)
			coos[pi][pj].Add(i-rowBlocks[pi].Lo, lj)
		}
	}

	out := make([][]*LocalMatrix, pr)
	for i := range out {
		out[i] = make([]*LocalMatrix, pc)
		for j := range out[i] {
			out[i][j] = &LocalMatrix{
				Rows: rowBlocks[i],
				Cols: colBlocks[j],
				M:    coos[i][j].ToCSC().ToDCSC(),
			}
		}
	}
	return out
}

// Package spmat provides the sparse-matrix substrate used by the matching
// algorithms: coordinate (COO) construction, compressed sparse columns (CSC),
// doubly compressed sparse columns (DCSC, the CombBLAS local format), row and
// column permutations, transposition, and 2D block distribution onto a
// process grid.
//
// All matrices in this package are binary (pattern) matrices: a nonzero at
// (i, j) records an edge between row vertex i and column vertex j of a
// bipartite graph G = (R, C, E), following the representation of Azad &
// Buluç (IPDPS 2016), Section II.
package spmat

import (
	"fmt"
	"sort"
)

// Triple is one nonzero coordinate of a pattern matrix.
type Triple struct {
	Row, Col int
}

// COO is an unordered coordinate-format pattern matrix, used as a staging
// area while generating or reading matrices.
type COO struct {
	NRows, NCols int
	Entries      []Triple
}

// NewCOO returns an empty COO matrix with the given dimensions.
func NewCOO(nrows, ncols int) *COO {
	if nrows < 0 || ncols < 0 {
		panic(fmt.Sprintf("spmat: negative dimension %dx%d", nrows, ncols))
	}
	return &COO{NRows: nrows, NCols: ncols}
}

// Add appends the nonzero (i, j). Duplicates are tolerated and removed when
// the COO is compiled to CSC.
func (c *COO) Add(i, j int) {
	if i < 0 || i >= c.NRows || j < 0 || j >= c.NCols {
		panic(fmt.Sprintf("spmat: entry (%d,%d) outside %dx%d", i, j, c.NRows, c.NCols))
	}
	c.Entries = append(c.Entries, Triple{Row: i, Col: j})
}

// NNZ returns the number of stored entries, including duplicates.
func (c *COO) NNZ() int { return len(c.Entries) }

// CSC is a compressed-sparse-columns pattern matrix. RowIdx holds the row
// indices of nonzeros column by column; ColPtr[j]..ColPtr[j+1] delimits
// column j. Row indices are strictly increasing within each column and the
// matrix contains no duplicate entries.
type CSC struct {
	NRows, NCols int
	ColPtr       []int
	RowIdx       []int
}

// ToCSC sorts, deduplicates and compresses the COO matrix into CSC form.
func (c *COO) ToCSC() *CSC {
	ent := make([]Triple, len(c.Entries))
	copy(ent, c.Entries)
	sort.Slice(ent, func(a, b int) bool {
		if ent[a].Col != ent[b].Col {
			return ent[a].Col < ent[b].Col
		}
		return ent[a].Row < ent[b].Row
	})
	m := &CSC{
		NRows:  c.NRows,
		NCols:  c.NCols,
		ColPtr: make([]int, c.NCols+1),
		RowIdx: make([]int, 0, len(ent)),
	}
	prevRow, prevCol := -1, -1
	for _, e := range ent {
		if e.Col == prevCol && e.Row == prevRow {
			continue // duplicate
		}
		m.RowIdx = append(m.RowIdx, e.Row)
		m.ColPtr[e.Col+1]++
		prevRow, prevCol = e.Row, e.Col
	}
	for j := 0; j < c.NCols; j++ {
		m.ColPtr[j+1] += m.ColPtr[j]
	}
	return m
}

// NNZ returns the number of nonzeros.
func (m *CSC) NNZ() int { return len(m.RowIdx) }

// Col returns the (sorted) row indices of column j. The returned slice
// aliases the matrix storage and must not be modified.
func (m *CSC) Col(j int) []int {
	return m.RowIdx[m.ColPtr[j]:m.ColPtr[j+1]]
}

// ColDegree returns the number of nonzeros in column j.
func (m *CSC) ColDegree(j int) int { return m.ColPtr[j+1] - m.ColPtr[j] }

// Has reports whether entry (i, j) is nonzero, by binary search in column j.
func (m *CSC) Has(i, j int) bool {
	col := m.Col(j)
	k := sort.SearchInts(col, i)
	return k < len(col) && col[k] == i
}

// RowDegrees returns the per-row nonzero counts.
func (m *CSC) RowDegrees() []int {
	deg := make([]int, m.NRows)
	for _, i := range m.RowIdx {
		deg[i]++
	}
	return deg
}

// Transpose returns the transpose of m in CSC form (equivalently, m in CSR
// form), computed by counting sort in O(nnz + n).
func (m *CSC) Transpose() *CSC {
	t := &CSC{
		NRows:  m.NCols,
		NCols:  m.NRows,
		ColPtr: make([]int, m.NRows+1),
		RowIdx: make([]int, m.NNZ()),
	}
	for _, i := range m.RowIdx {
		t.ColPtr[i+1]++
	}
	for i := 0; i < m.NRows; i++ {
		t.ColPtr[i+1] += t.ColPtr[i]
	}
	next := make([]int, m.NRows)
	copy(next, t.ColPtr[:m.NRows])
	for j := 0; j < m.NCols; j++ {
		for _, i := range m.Col(j) {
			t.RowIdx[next[i]] = j
			next[i]++
		}
	}
	return t
}

// Permute returns P·A·Q for permutations given as rowPerm and colPerm, where
// rowPerm[i] is the new index of old row i and colPerm[j] the new index of
// old column j. A nil permutation means identity.
func (m *CSC) Permute(rowPerm, colPerm []int) *CSC {
	if rowPerm != nil && len(rowPerm) != m.NRows {
		panic("spmat: rowPerm length mismatch")
	}
	if colPerm != nil && len(colPerm) != m.NCols {
		panic("spmat: colPerm length mismatch")
	}
	out := NewCOO(m.NRows, m.NCols)
	out.Entries = make([]Triple, 0, m.NNZ())
	for j := 0; j < m.NCols; j++ {
		nj := j
		if colPerm != nil {
			nj = colPerm[j]
		}
		for _, i := range m.Col(j) {
			ni := i
			if rowPerm != nil {
				ni = rowPerm[i]
			}
			out.Entries = append(out.Entries, Triple{Row: ni, Col: nj})
		}
	}
	return out.ToCSC()
}

// Equal reports whether two CSC matrices have identical dimensions and
// nonzero structure.
func (m *CSC) Equal(o *CSC) bool {
	if m.NRows != o.NRows || m.NCols != o.NCols || m.NNZ() != o.NNZ() {
		return false
	}
	for j := range m.ColPtr {
		if m.ColPtr[j] != o.ColPtr[j] {
			return false
		}
	}
	for k := range m.RowIdx {
		if m.RowIdx[k] != o.RowIdx[k] {
			return false
		}
	}
	return true
}

// Triples returns the nonzeros of m in column-major order.
func (m *CSC) Triples() []Triple {
	out := make([]Triple, 0, m.NNZ())
	for j := 0; j < m.NCols; j++ {
		for _, i := range m.Col(j) {
			out = append(out, Triple{Row: i, Col: j})
		}
	}
	return out
}

package spmat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustCSC(t *testing.T, nrows, ncols int, entries ...[2]int) *CSC {
	t.Helper()
	c := NewCOO(nrows, ncols)
	for _, e := range entries {
		c.Add(e[0], e[1])
	}
	return c.ToCSC()
}

func TestCOOToCSCBasic(t *testing.T) {
	m := mustCSC(t, 3, 4, [2]int{2, 0}, [2]int{0, 0}, [2]int{1, 2}, [2]int{0, 3}, [2]int{2, 3})
	if m.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", m.NNZ())
	}
	wantPtr := []int{0, 2, 2, 3, 5}
	if !reflect.DeepEqual(m.ColPtr, wantPtr) {
		t.Fatalf("ColPtr = %v, want %v", m.ColPtr, wantPtr)
	}
	wantIdx := []int{0, 2, 1, 0, 2}
	if !reflect.DeepEqual(m.RowIdx, wantIdx) {
		t.Fatalf("RowIdx = %v, want %v", m.RowIdx, wantIdx)
	}
}

func TestCOODuplicatesRemoved(t *testing.T) {
	m := mustCSC(t, 2, 2, [2]int{0, 1}, [2]int{0, 1}, [2]int{1, 0}, [2]int{0, 1})
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 after dedup", m.NNZ())
	}
	if !m.Has(0, 1) || !m.Has(1, 0) || m.Has(0, 0) || m.Has(1, 1) {
		t.Fatal("wrong structure after dedup")
	}
}

func TestCOOAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Add")
		}
	}()
	NewCOO(2, 2).Add(2, 0)
}

func TestEmptyMatrix(t *testing.T) {
	m := NewCOO(0, 0).ToCSC()
	if m.NNZ() != 0 || len(m.ColPtr) != 1 {
		t.Fatalf("empty matrix malformed: %+v", m)
	}
	tr := m.Transpose()
	if tr.NNZ() != 0 {
		t.Fatal("transpose of empty not empty")
	}
	d := m.ToDCSC()
	if d.NZC() != 0 || d.NNZ() != 0 {
		t.Fatal("DCSC of empty not empty")
	}
}

func TestHasBinarySearch(t *testing.T) {
	m := mustCSC(t, 6, 1, [2]int{0, 0}, [2]int{2, 0}, [2]int{5, 0})
	for i := 0; i < 6; i++ {
		want := i == 0 || i == 2 || i == 5
		if m.Has(i, 0) != want {
			t.Errorf("Has(%d,0) = %v, want %v", i, m.Has(i, 0), want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		nr, nc := 1+rng.Intn(40), 1+rng.Intn(40)
		c := NewCOO(nr, nc)
		for k := 0; k < rng.Intn(200); k++ {
			c.Add(rng.Intn(nr), rng.Intn(nc))
		}
		m := c.ToCSC()
		tt := m.Transpose().Transpose()
		if !m.Equal(tt) {
			t.Fatalf("trial %d: transpose not an involution", trial)
		}
	}
}

func TestTransposeStructure(t *testing.T) {
	m := mustCSC(t, 3, 2, [2]int{0, 0}, [2]int{2, 0}, [2]int{1, 1})
	tr := m.Transpose()
	if tr.NRows != 2 || tr.NCols != 3 {
		t.Fatalf("transpose dims %dx%d", tr.NRows, tr.NCols)
	}
	for _, e := range m.Triples() {
		if !tr.Has(e.Col, e.Row) {
			t.Fatalf("transpose missing (%d,%d)", e.Col, e.Row)
		}
	}
}

func TestRowDegrees(t *testing.T) {
	m := mustCSC(t, 3, 3, [2]int{0, 0}, [2]int{0, 1}, [2]int{0, 2}, [2]int{2, 1})
	want := []int{3, 0, 1}
	if got := m.RowDegrees(); !reflect.DeepEqual(got, want) {
		t.Fatalf("RowDegrees = %v, want %v", got, want)
	}
}

func TestPermuteIdentity(t *testing.T) {
	m := mustCSC(t, 4, 4, [2]int{0, 1}, [2]int{3, 2}, [2]int{2, 0})
	if !m.Equal(m.Permute(nil, nil)) {
		t.Fatal("identity permutation changed matrix")
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		nr, nc := 2+rng.Intn(30), 2+rng.Intn(30)
		c := NewCOO(nr, nc)
		for k := 0; k < rng.Intn(150); k++ {
			c.Add(rng.Intn(nr), rng.Intn(nc))
		}
		m := c.ToCSC()
		rp := rng.Perm(nr)
		cp := rng.Perm(nc)
		inv := func(p []int) []int {
			q := make([]int, len(p))
			for i, v := range p {
				q[v] = i
			}
			return q
		}
		back := m.Permute(rp, cp).Permute(inv(rp), inv(cp))
		if !m.Equal(back) {
			t.Fatalf("trial %d: permute round-trip failed", trial)
		}
	}
}

func TestPermutePreservesEntries(t *testing.T) {
	m := mustCSC(t, 3, 3, [2]int{0, 0}, [2]int{1, 1}, [2]int{2, 2})
	rp := []int{2, 0, 1}
	cp := []int{1, 2, 0}
	pm := m.Permute(rp, cp)
	for _, e := range m.Triples() {
		if !pm.Has(rp[e.Row], cp[e.Col]) {
			t.Fatalf("permuted matrix missing image of (%d,%d)", e.Row, e.Col)
		}
	}
}

func TestDCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		nr, nc := 1+rng.Intn(50), 1+rng.Intn(50)
		c := NewCOO(nr, nc)
		for k := 0; k < rng.Intn(100); k++ {
			c.Add(rng.Intn(nr), rng.Intn(nc))
		}
		m := c.ToCSC()
		back := m.ToDCSC().ToCSC()
		if !m.Equal(back) {
			t.Fatalf("trial %d: DCSC round trip failed", trial)
		}
	}
}

func TestDCSCHypersparse(t *testing.T) {
	// 1000 columns but only 2 nonempty: DCSC must store 2 columns.
	m := mustCSC(t, 10, 1000, [2]int{3, 17}, [2]int{5, 900}, [2]int{7, 900})
	d := m.ToDCSC()
	if d.NZC() != 2 {
		t.Fatalf("NZC = %d, want 2", d.NZC())
	}
	if got := d.FindCol(900); len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("FindCol(900) = %v", got)
	}
	if d.FindCol(16) != nil {
		t.Fatal("FindCol(16) should be nil for empty column")
	}
	if d.FindCol(999) != nil {
		t.Fatal("FindCol(999) should be nil past last nonempty column")
	}
}

func TestDCSCColByIndex(t *testing.T) {
	m := mustCSC(t, 4, 6, [2]int{1, 2}, [2]int{0, 2}, [2]int{3, 5})
	d := m.ToDCSC()
	col0, rows0 := d.ColByIndex(0)
	if col0 != 2 || len(rows0) != 2 {
		t.Fatalf("ColByIndex(0) = %d %v", col0, rows0)
	}
	col1, rows1 := d.ColByIndex(1)
	if col1 != 5 || len(rows1) != 1 || rows1[0] != 3 {
		t.Fatalf("ColByIndex(1) = %d %v", col1, rows1)
	}
}

func TestSplitRangeCoversExactly(t *testing.T) {
	f := func(n uint16, parts uint8) bool {
		p := int(parts%32) + 1
		blocks := SplitRange(int(n), p)
		if len(blocks) != p {
			return false
		}
		prev := 0
		for _, b := range blocks {
			if b.Lo != prev || b.Hi < b.Lo {
				return false
			}
			prev = b.Hi
		}
		return prev == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRangeBalanced(t *testing.T) {
	blocks := SplitRange(10, 3)
	sizes := []int{blocks[0].Len(), blocks[1].Len(), blocks[2].Len()}
	if !reflect.DeepEqual(sizes, []int{4, 3, 3}) {
		t.Fatalf("sizes = %v, want [4 3 3]", sizes)
	}
}

func TestOwnerOfMatchesSplitRange(t *testing.T) {
	f := func(n uint16, parts uint8) bool {
		p := int(parts%32) + 1
		nn := int(n%500) + 1
		blocks := SplitRange(nn, p)
		for g := 0; g < nn; g++ {
			o := OwnerOf(nn, p, g)
			if o < 0 || o >= p || !blocks[o].Contains(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistribute2DPartitionsNonzeros(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, gridDim := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {1, 4}, {4, 1}} {
		pr, pc := gridDim[0], gridDim[1]
		nr, nc := 17, 23
		c := NewCOO(nr, nc)
		for k := 0; k < 120; k++ {
			c.Add(rng.Intn(nr), rng.Intn(nc))
		}
		m := c.ToCSC()
		dist := Distribute2D(m, pr, pc)

		total := 0
		rebuilt := NewCOO(nr, nc)
		for i := 0; i < pr; i++ {
			for j := 0; j < pc; j++ {
				lm := dist[i][j]
				total += lm.M.NNZ()
				local := lm.M.ToCSC()
				for _, e := range local.Triples() {
					rebuilt.Add(e.Row+lm.Rows.Lo, e.Col+lm.Cols.Lo)
				}
			}
		}
		if total != m.NNZ() {
			t.Fatalf("grid %dx%d: nonzeros split to %d, want %d", pr, pc, total, m.NNZ())
		}
		if !rebuilt.ToCSC().Equal(m) {
			t.Fatalf("grid %dx%d: reassembled matrix differs", pr, pc)
		}
	}
}

func TestDistribute2DBlockBounds(t *testing.T) {
	m := mustCSC(t, 10, 10, [2]int{0, 0}, [2]int{9, 9}, [2]int{4, 6})
	dist := Distribute2D(m, 3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			lm := dist[i][j]
			if lm.M.NRows != lm.Rows.Len() || lm.M.NCols != lm.Cols.Len() {
				t.Fatalf("block (%d,%d) dims %dx%d, want %dx%d",
					i, j, lm.M.NRows, lm.M.NCols, lm.Rows.Len(), lm.Cols.Len())
			}
		}
	}
}

func BenchmarkToCSC(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	c := NewCOO(1<<14, 1<<14)
	for k := 0; k < 1<<18; k++ {
		c.Add(rng.Intn(1<<14), rng.Intn(1<<14))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.ToCSC()
	}
}

func BenchmarkTranspose(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	c := NewCOO(1<<14, 1<<14)
	for k := 0; k < 1<<18; k++ {
		c.Add(rng.Intn(1<<14), rng.Intn(1<<14))
	}
	m := c.ToCSC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}

package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactly(t *testing.T) {
	f := func(n uint16, threads uint8) bool {
		nn := int(n)
		tt := int(threads%16) + 1
		seen := make([]int32, nn)
		For(nn, tt, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
	For(-3, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for negative n")
	}
}

func TestForSingleThreadInline(t *testing.T) {
	calls := 0
	For(1000, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 1000 {
			t.Fatalf("inline chunk [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("%d calls, want 1", calls)
	}
}

func TestForLargeParallelSum(t *testing.T) {
	const n = 100_000
	var sum atomic.Int64
	For(n, 8, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		sum.Add(local)
	})
	want := int64(n) * (n - 1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestMapReduceSum(t *testing.T) {
	const n = 50_000
	got := MapReduce(n, 8, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	}, func(a, b int64) int64 { return a + b })
	want := int64(n) * (n - 1) / 2
	if got != want {
		t.Fatalf("MapReduce = %d, want %d", got, want)
	}
}

func TestMapReduceMax(t *testing.T) {
	vals := []int64{3, 9, 1, 7, 9, 2}
	got := MapReduce(len(vals), 4, func(lo, hi int) int64 {
		best := int64(-1 << 62)
		for i := lo; i < hi; i++ {
			if vals[i] > best {
				best = vals[i]
			}
		}
		return best
	}, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
	if got != 9 {
		t.Fatalf("max = %d", got)
	}
}

func TestMapReduceEmpty(t *testing.T) {
	if got := MapReduce(0, 4, func(lo, hi int) int64 { return 99 },
		func(a, b int64) int64 { return a + b }); got != 0 {
		t.Fatalf("empty MapReduce = %d", got)
	}
}

func TestMapReduceMatchesSerial(t *testing.T) {
	f := func(n uint16, threads uint8) bool {
		nn := int(n)
		tt := int(threads%8) + 1
		sum := func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i * i)
			}
			return s
		}
		add := func(a, b int64) int64 { return a + b }
		return MapReduce(nn, tt, sum, add) == MapReduce(nn, 1, sum, add)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForSerialVsParallel(b *testing.B) {
	const n = 1 << 20
	data := make([]int64, n)
	for _, threads := range []int{1, 4} {
		name := "t=1"
		if threads == 4 {
			name = "t=4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				For(n, threads, func(lo, hi int) {
					for k := lo; k < hi; k++ {
						data[k]++
					}
				})
			}
		})
	}
}

func TestForManyThreadsFewItems(t *testing.T) {
	// threads > n/minChunk collapses the pool; all elements still covered.
	var sum atomic.Int64
	For(300, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(1)
		}
	})
	if sum.Load() != 300 {
		t.Fatalf("covered %d of 300", sum.Load())
	}
}

func TestMapReduceManyThreadsFewItems(t *testing.T) {
	got := MapReduce(300, 64, func(lo, hi int) int64 { return int64(hi - lo) },
		func(a, b int64) int64 { return a + b })
	if got != 300 {
		t.Fatalf("sum %d", got)
	}
}

func TestMapReduceNegativeN(t *testing.T) {
	if got := MapReduce(-5, 4, func(lo, hi int) int64 { return 1 },
		func(a, b int64) int64 { return a + b }); got != 0 {
		t.Fatalf("negative n gave %d", got)
	}
}

// Package parallel provides the intra-rank worker pool that plays the role
// of the paper's OpenMP threading: local computation inside each simulated
// MPI rank is "fully multithreaded" while communication stays funneled
// through the rank itself (MPI_THREAD_FUNNELED).
//
// The center of the package is Pool: a persistent set of worker goroutines
// parked on a task channel, owned by the rank's runtime context (rt.Ctx) and
// reused for every parallel region of a solve — the analogue of an OpenMP
// thread team that lives for the process, not for one loop. Spawning
// goroutines per loop (the old For) costs a stack and a scheduler round-trip
// per chunk per call; a parked worker costs one channel send.
//
// On the simulation host the workers share physical cores with the other
// ranks' goroutines, so the wall-clock benefit is bounded by the hardware
// (GOMAXPROCS); the cost model additionally accounts for the modeled t-way
// speedup of the local-work term (costmodel.Machine.Time). The pool's Stats
// report what actually happened: regions run, busy time, and utilization.
package parallel

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMinChunk is the grain below which a range is not worth splitting:
// under ~256 elements per chunk, dispatch overhead dominates the work.
const DefaultMinChunk = 256

// task is one dispatched chunk of a parallel region.
type task struct {
	fn        func(w, lo, hi int)
	w, lo, hi int
	wg        *sync.WaitGroup
	panics    *panicBox
	busy      *cell
}

// panicBox captures the first panic raised inside a worker so the region's
// dispatcher can re-raise it on its own goroutine (matching the behavior of
// the same loop run inline).
type panicBox struct {
	mu  sync.Mutex
	val any
	set bool
}

func (b *panicBox) store(v any) {
	b.mu.Lock()
	if !b.set {
		b.val, b.set = v, true
	}
	b.mu.Unlock()
}

func (b *panicBox) get() (any, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val, b.set
}

// cell is a cache-line padded atomic counter. Per-worker counters (busy
// nanoseconds, MapReduce partials) sit one per line so concurrent updates
// from different workers never contend on the same line (false sharing).
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Pool is a persistent team of worker goroutines for one rank. A Pool
// belongs to exactly one rank goroutine: only that goroutine may dispatch
// regions (ForChunked, For, MapReduce, Run) or Close it. The workers
// themselves are internal. A nil *Pool is valid and runs everything inline
// on the caller, which is the Threads=1 configuration.
type Pool struct {
	threads int
	tasks   chan task
	busy    []cell // per-worker busy ns; index 0 is the dispatching rank
	closed  bool

	// Region telemetry; written only by the dispatching rank goroutine.
	regions int64 // regions that actually fanned out
	inline  int64 // regions run inline (width 1 after the grain clamp)
	span    int64 // total wall ns the dispatcher spent inside fanned regions
}

// NewPool starts a pool of `threads` workers: threads-1 parked goroutines
// plus the dispatching rank itself, which always executes chunk 0 of every
// region. threads <= 1 returns nil (the inline pool).
func NewPool(threads int) *Pool {
	if threads <= 1 {
		return nil
	}
	p := &Pool{
		threads: threads,
		tasks:   make(chan task),
		busy:    make([]cell, threads),
	}
	for i := 1; i < threads; i++ {
		go p.worker()
	}
	return p
}

// worker parks on the task channel until Close.
func (p *Pool) worker() {
	for t := range p.tasks {
		start := time.Now()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.panics.store(r)
				}
			}()
			t.fn(t.w, t.lo, t.hi)
		}()
		t.busy.v.Add(int64(time.Since(start)))
		t.wg.Done()
	}
}

// Close releases the parked workers. Safe on a nil pool and idempotent; the
// pool must not be used after Close.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	close(p.tasks)
}

// Threads returns the team size (1 for a nil pool).
func (p *Pool) Threads() int {
	if p == nil {
		return 1
	}
	return p.threads
}

// Width returns the number of chunks a region over n elements with the
// given grain will fan out to: at most Threads(), at least 1, and never so
// many that a chunk falls under minChunk. Callers sizing per-worker scratch
// (e.g. SpMV shards) call Width first and ForChunked with the same
// arguments after; the two always agree.
func (p *Pool) Width(n, minChunk int) int {
	if minChunk < 1 {
		minChunk = 1
	}
	t := p.Threads()
	if t > n/minChunk {
		t = n / minChunk
	}
	if t < 1 {
		t = 1
	}
	return t
}

// chunkBounds splits [0, n) into t near-equal contiguous chunks and returns
// the t+1 boundary offsets.
func chunkBounds(n, t int) []int {
	bounds := make([]int, t+1)
	base, rem := n/t, n%t
	off := 0
	for w := 0; w < t; w++ {
		bounds[w] = off
		off += base
		if w < rem {
			off++
		}
	}
	bounds[t] = n
	return bounds
}

// Chunks returns the boundary offsets ForChunked would use for a region of
// n elements at the given grain: Width+1 offsets with chunk w spanning
// [Chunks[w], Chunks[w+1]). Exported so multi-pass kernels (sort merges,
// shard merges) can line up later passes with an earlier split.
func (p *Pool) Chunks(n, minChunk int) []int {
	return chunkBounds(n, p.Width(n, minChunk))
}

// ForChunked splits [0, n) into Width(n, minChunk) contiguous chunks and
// runs fn(w, lo, hi) on each, where w is the chunk (worker) index — the key
// for striped scratch. Chunk 0 runs on the calling goroutine; the rest on
// parked workers. Returns after every chunk completes. A panic in any chunk
// is re-raised on the caller. Width 1 runs fn(0, 0, n) inline with no
// synchronization at all.
func (p *Pool) ForChunked(n, minChunk int, fn func(w, lo, hi int)) {
	t := p.Width(n, minChunk)
	if t <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		if p != nil {
			p.inline++
		}
		return
	}
	start := time.Now()
	bounds := chunkBounds(n, t)
	var wg sync.WaitGroup
	box := &panicBox{}
	wg.Add(t - 1)
	for w := 1; w < t; w++ {
		p.tasks <- task{fn: fn, w: w, lo: bounds[w], hi: bounds[w+1], wg: &wg, panics: box, busy: &p.busy[w]}
	}
	callerStart := time.Now()
	fn(0, bounds[0], bounds[1])
	p.busy[0].v.Add(int64(time.Since(callerStart)))
	wg.Wait()
	p.regions++
	p.span += int64(time.Since(start))
	if v, ok := box.get(); ok {
		panic(v)
	}
}

// For runs fn(lo, hi) over near-equal chunks of [0, n) at the default
// grain. The chunked form of the paper's `#pragma omp parallel for`.
func (p *Pool) For(n int, fn func(lo, hi int)) {
	p.ForChunked(n, DefaultMinChunk, func(_, lo, hi int) { fn(lo, hi) })
}

// MapReduce runs fn over chunks of [0, n), each chunk producing a partial
// int64, and combines the partials in chunk order with combine (associative;
// commutativity is then not needed for determinism). The zero partial is the
// identity for an empty range. Partials live in padded per-worker cells.
func (p *Pool) MapReduce(n int, fn func(lo, hi int) int64, combine func(a, b int64) int64) int64 {
	t := p.Width(n, DefaultMinChunk)
	if t <= 1 {
		if n <= 0 {
			return 0
		}
		if p != nil {
			p.inline++
		}
		return fn(0, n)
	}
	partials := make([]cell, t)
	p.ForChunked(n, DefaultMinChunk, func(w, lo, hi int) {
		partials[w].v.Store(fn(lo, hi))
	})
	acc := partials[0].v.Load()
	for w := 1; w < t; w++ {
		acc = combine(acc, partials[w].v.Load())
	}
	return acc
}

// Run executes the given closures concurrently across the team (fns[0] on
// the caller) and returns when all complete. For regions whose tasks are
// not an index range — e.g. the pairwise merge passes of a parallel sort.
// Panics propagate to the caller. len(fns) may exceed the team size; the
// dispatcher hands excess closures to whichever worker frees first.
func (p *Pool) Run(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if p == nil || len(fns) == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	start := time.Now()
	var wg sync.WaitGroup
	box := &panicBox{}
	wg.Add(len(fns) - 1)
	for i := 1; i < len(fns); i++ {
		fn := fns[i]
		w := 1 + (i-1)%(p.threads-1)
		p.tasks <- task{
			fn: func(_, _, _ int) { fn() },
			wg: &wg, panics: box, busy: &p.busy[w],
		}
	}
	callerStart := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				box.store(r)
			}
		}()
		fns[0]()
	}()
	p.busy[0].v.Add(int64(time.Since(callerStart)))
	wg.Wait()
	p.regions++
	p.span += int64(time.Since(start))
	if v, ok := box.get(); ok {
		panic(v)
	}
}

// Stats is a snapshot of a pool's lifetime telemetry.
type Stats struct {
	Threads int           // team size
	Regions int64         // regions that fanned out to workers
	Inline  int64         // regions that ran inline (below the grain)
	Busy    time.Duration // summed busy time across all team members
	Span    time.Duration // summed dispatcher wall time of fanned regions
}

// Utilization is the fraction of the team's theoretical capacity that was
// busy during fanned regions: Busy / (Span * Threads). 1.0 means every
// worker computed for the whole span of every region; low values mean
// chunks were imbalanced or the grain too fine.
func (s Stats) Utilization() float64 {
	if s.Span <= 0 || s.Threads <= 0 {
		return 0
	}
	return float64(s.Busy) / (float64(s.Span) * float64(s.Threads))
}

// Sub returns the element-wise difference s - o (Threads kept from s), for
// per-solve deltas of a long-lived pool's cumulative stats.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Threads: s.Threads,
		Regions: s.Regions - o.Regions,
		Inline:  s.Inline - o.Inline,
		Busy:    s.Busy - o.Busy,
		Span:    s.Span - o.Span,
	}
}

// Max returns the element-wise maximum (critical-path merge across ranks).
func (s Stats) Max(o Stats) Stats {
	out := s
	if o.Threads > out.Threads {
		out.Threads = o.Threads
	}
	if o.Regions > out.Regions {
		out.Regions = o.Regions
	}
	if o.Inline > out.Inline {
		out.Inline = o.Inline
	}
	if o.Busy > out.Busy {
		out.Busy = o.Busy
	}
	if o.Span > out.Span {
		out.Span = o.Span
	}
	return out
}

// Stats returns the pool's cumulative telemetry (zero for a nil pool).
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{Threads: 1}
	}
	var busy int64
	for i := range p.busy {
		busy += p.busy[i].v.Load()
	}
	return Stats{
		Threads: p.threads,
		Regions: p.regions,
		Inline:  p.inline,
		Busy:    time.Duration(busy),
		Span:    time.Duration(p.span),
	}
}

// For splits the index range [0, n) into near-equal contiguous chunks and
// runs fn(lo, hi) on each with `threads` goroutines spawned for this call.
// Pool-less convenience for code without a runtime context; hot paths use
// Pool.For. threads <= 1 or n at or below the grain runs fn inline with no
// goroutine, WaitGroup, or channel at all — including when the grain clamp
// collapses the width to 1.
func For(n, threads int, fn func(lo, hi int)) {
	if threads > n/DefaultMinChunk {
		threads = n / DefaultMinChunk
	}
	if threads <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	bounds := chunkBounds(n, threads)
	wg.Add(threads - 1)
	for w := 1; w < threads; w++ {
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(bounds[w], bounds[w+1])
	}
	fn(bounds[0], bounds[1])
	wg.Wait()
}

// MapReduce runs fn over [0, n) chunks in parallel with per-call
// goroutines, each chunk producing a partial int64, and combines the
// partials in chunk order with combine (which must be associative). The
// zero partial must be the identity. The degenerate width-1 case runs
// inline like For.
func MapReduce(n, threads int, fn func(lo, hi int) int64, combine func(a, b int64) int64) int64 {
	if threads > n/DefaultMinChunk {
		threads = n / DefaultMinChunk
	}
	if threads <= 1 {
		if n <= 0 {
			return 0
		}
		return fn(0, n)
	}
	partials := make([]cell, threads)
	var wg sync.WaitGroup
	bounds := chunkBounds(n, threads)
	wg.Add(threads - 1)
	for w := 1; w < threads; w++ {
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w].v.Store(fn(lo, hi))
		}(w, bounds[w], bounds[w+1])
	}
	partials[0].v.Store(fn(bounds[0], bounds[1]))
	wg.Wait()
	acc := partials[0].v.Load()
	for w := 1; w < threads; w++ {
		acc = combine(acc, partials[w].v.Load())
	}
	return acc
}

// Package parallel provides the intra-rank worker pool that plays the role
// of the paper's OpenMP threading: local computation inside each simulated
// MPI rank is "fully multithreaded" while communication stays funneled
// through the rank itself (MPI_THREAD_FUNNELED). On the simulation host the
// goroutines share physical cores, so the wall-clock benefit is bounded by
// the hardware; the cost model accounts for the modeled t-way speedup of
// the local-work term separately (costmodel.Machine.Time).
package parallel

import "sync"

// For splits the index range [0, n) into near-equal contiguous chunks and
// runs fn(lo, hi) on each with `threads` goroutines. threads <= 1 or tiny n
// runs inline with no goroutine overhead. fn must not assume any chunk
// ordering; chunks never overlap and cover [0, n) exactly.
func For(n, threads int, fn func(lo, hi int)) {
	const minChunk = 256 // below this, goroutine overhead dominates
	if threads <= 1 || n <= minChunk {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	if threads > n/minChunk {
		threads = n / minChunk
		if threads < 1 {
			threads = 1
		}
	}
	var wg sync.WaitGroup
	base, rem := n/threads, n%threads
	lo := 0
	for w := 0; w < threads; w++ {
		size := base
		if w < rem {
			size++
		}
		hi := lo + size
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// MapReduce runs fn over [0, n) chunks in parallel, each chunk producing a
// partial int64, and combines the partials with combine (which must be
// associative and commutative). The zero partial must be the identity.
func MapReduce(n, threads int, fn func(lo, hi int) int64, combine func(a, b int64) int64) int64 {
	const minChunk = 256
	if threads <= 1 || n <= minChunk {
		if n <= 0 {
			return 0
		}
		return fn(0, n)
	}
	if threads > n/minChunk {
		threads = n / minChunk
		if threads < 1 {
			threads = 1
		}
	}
	partials := make([]int64, threads)
	var wg sync.WaitGroup
	base, rem := n/threads, n%threads
	lo := 0
	for w := 0; w < threads; w++ {
		size := base
		if w < rem {
			size++
		}
		hi := lo + size
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w] = fn(lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = combine(acc, p)
	}
	return acc
}

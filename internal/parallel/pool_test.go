package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolForChunkedCoversRangeExactly(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	f := func(n uint16, grain uint8) bool {
		nn := int(n)
		g := int(grain) + 1
		seen := make([]int32, nn)
		p.ForChunked(nn, g, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolWidthMatchesForChunked(t *testing.T) {
	p := NewPool(6)
	defer p.Close()
	for _, tc := range []struct{ n, grain int }{
		{0, 16}, {1, 16}, {15, 16}, {16, 16}, {17, 16}, {96, 16}, {97, 16}, {10_000, 16}, {10_000, 5000},
	} {
		want := p.Width(tc.n, tc.grain)
		var maxW int64 = -1
		var calls int64
		p.ForChunked(tc.n, tc.grain, func(w, lo, hi int) {
			atomic.AddInt64(&calls, 1)
			for {
				cur := atomic.LoadInt64(&maxW)
				if int64(w) <= cur || atomic.CompareAndSwapInt64(&maxW, cur, int64(w)) {
					break
				}
			}
		})
		if tc.n == 0 {
			if calls != 0 {
				t.Fatalf("n=0 made %d calls", calls)
			}
			continue
		}
		if int(calls) != want {
			t.Fatalf("n=%d grain=%d: %d chunks, Width says %d", tc.n, tc.grain, calls, want)
		}
		if int(maxW) != want-1 {
			t.Fatalf("n=%d grain=%d: max worker id %d, want %d", tc.n, tc.grain, maxW, want-1)
		}
	}
}

func TestPoolChunksTileRange(t *testing.T) {
	p := NewPool(5)
	defer p.Close()
	for _, n := range []int{0, 1, 7, 99, 100, 101, 12345} {
		b := p.Chunks(n, 10)
		if b[0] != 0 || b[len(b)-1] != n {
			t.Fatalf("n=%d: bounds %v", n, b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Fatalf("n=%d: decreasing bounds %v", n, b)
			}
		}
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	calls := 0
	p.ForChunked(1000, 1, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 1000 {
			t.Fatalf("inline chunk w=%d [%d,%d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("%d calls, want 1", calls)
	}
	if got := p.MapReduce(5000, func(lo, hi int) int64 { return int64(hi - lo) },
		func(a, b int64) int64 { return a + b }); got != 5000 {
		t.Fatalf("nil-pool MapReduce = %d", got)
	}
	if p.Threads() != 1 || p.Width(1<<20, 1) != 1 {
		t.Fatal("nil pool must report width 1")
	}
	p.Run(func() { calls++ })
	if calls != 2 {
		t.Fatal("nil-pool Run did not execute")
	}
	p.Close() // must not panic
}

func TestPoolMapReduceMatchesSerial(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	f := func(n uint16) bool {
		nn := int(n)
		sum := func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i * i)
			}
			return s
		}
		add := func(a, b int64) int64 { return a + b }
		return p.MapReduce(nn, sum, add) == MapReduce(nn, 1, sum, add)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
		// The pool must survive a panicking region.
		var sum atomic.Int64
		p.ForChunked(4096, 1, func(w, lo, hi int) { sum.Add(int64(hi - lo)) })
		if sum.Load() != 4096 {
			t.Fatalf("pool broken after panic: covered %d", sum.Load())
		}
	}()
	p.ForChunked(4096, 1, func(w, lo, hi int) {
		if lo >= 2048 { // lands on a worker chunk, not the caller's
			panic("boom")
		}
	})
	t.Fatal("unreachable: panic must propagate")
}

func TestPoolRunExecutesAll(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var sum atomic.Int64
	var fns []func()
	for i := 1; i <= 10; i++ { // more closures than workers
		v := int64(i)
		fns = append(fns, func() { sum.Add(v) })
	}
	p.Run(fns...)
	if sum.Load() != 55 {
		t.Fatalf("Run sum = %d, want 55", sum.Load())
	}
}

func TestPoolStats(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.ForChunked(10, 256, func(w, lo, hi int) {}) // inline: below grain
	p.ForChunked(1<<16, 1, func(w, lo, hi int) {
		var s int
		for i := lo; i < hi; i++ {
			s += i
		}
		_ = s
	})
	st := p.Stats()
	if st.Threads != 4 {
		t.Fatalf("threads %d", st.Threads)
	}
	if st.Inline != 1 {
		t.Fatalf("inline regions %d, want 1", st.Inline)
	}
	if st.Regions != 1 {
		t.Fatalf("fanned regions %d, want 1", st.Regions)
	}
	if st.Span <= 0 {
		t.Fatalf("span %v", st.Span)
	}
	if u := st.Utilization(); u < 0 || u > 1.5 {
		t.Fatalf("utilization %v out of range", u)
	}
	if d := st.Sub(Stats{Regions: 1}); d.Regions != 0 {
		t.Fatalf("Sub regions %d", d.Regions)
	}
	if m := st.Max(Stats{Regions: 99}); m.Regions != 99 {
		t.Fatalf("Max regions %d", m.Regions)
	}
}

// TestPoolConcurrentRanksStress is the -race stress test for the persistent
// pool: many "ranks" (as in the simulated MPI runtime) each own a private
// pool and drive overlapping regions concurrently. Pools share nothing, so
// the race detector verifies the dispatch/park protocol itself.
func TestPoolConcurrentRanksStress(t *testing.T) {
	const ranks = 8
	const regions = 200
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := NewPool(1 + r%4)
			defer p.Close()
			data := make([]int64, 4096)
			for g := 0; g < regions; g++ {
				p.ForChunked(len(data), 64, func(w, lo, hi int) {
					for i := lo; i < hi; i++ {
						data[i]++
					}
				})
				got := p.MapReduce(len(data), func(lo, hi int) int64 {
					var s int64
					for i := lo; i < hi; i++ {
						s += data[i]
					}
					return s
				}, func(a, b int64) int64 { return a + b })
				if want := int64(len(data)) * int64(g+1); got != want {
					t.Errorf("rank %d region %d: sum %d, want %d", r, g, got, want)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func BenchmarkPoolForVsSpawn(b *testing.B) {
	const n = 1 << 20
	data := make([]int64, n)
	body := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			data[k]++
		}
	}
	b.Run("pool-t=4", func(b *testing.B) {
		p := NewPool(4)
		defer p.Close()
		for i := 0; i < b.N; i++ {
			p.For(n, body)
		}
	})
	b.Run("spawn-t=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			For(n, 4, body)
		}
	})
}

// Package mtx reads and writes sparse matrices in the Matrix Market exchange
// format, the format used by the University of Florida (SuiteSparse) matrix
// collection from which the paper draws its real-world test set (Table II).
//
// Supported headers: "matrix coordinate" with field pattern/real/integer and
// symmetry general/symmetric. Values of real/integer matrices are discarded:
// the matching algorithms operate on the nonzero pattern only. Symmetric
// matrices are expanded (both (i,j) and (j,i) are materialized), matching how
// the paper treats symmetric inputs as bipartite row/column vertex sets.
package mtx

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mcmdist/internal/spmat"
)

// header holds the parsed %%MatrixMarket banner.
type header struct {
	object   string
	format   string
	field    string
	symmetry string
}

func parseHeader(line string) (header, error) {
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" {
		return header{}, fmt.Errorf("mtx: malformed banner %q", line)
	}
	h := header{object: fields[1], format: fields[2], field: fields[3], symmetry: fields[4]}
	if h.object != "matrix" {
		return h, fmt.Errorf("mtx: unsupported object %q", h.object)
	}
	if h.format != "coordinate" {
		return h, fmt.Errorf("mtx: unsupported format %q (only coordinate)", h.format)
	}
	switch h.field {
	case "pattern", "real", "integer":
	default:
		return h, fmt.Errorf("mtx: unsupported field %q", h.field)
	}
	switch h.symmetry {
	case "general", "symmetric":
	default:
		return h, fmt.Errorf("mtx: unsupported symmetry %q", h.symmetry)
	}
	return h, nil
}

// Read parses a Matrix Market stream into a CSC pattern matrix.
func Read(r io.Reader) (*spmat.CSC, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	if !sc.Scan() {
		return nil, fmt.Errorf("mtx: empty input")
	}
	h, err := parseHeader(sc.Text())
	if err != nil {
		return nil, err
	}

	// Skip comments, find the size line.
	var nrows, ncols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("mtx: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &nrows, &ncols, &nnz); err != nil {
			return nil, fmt.Errorf("mtx: bad size line %q: %v", line, err)
		}
		break
	}
	if nrows < 0 || ncols < 0 || nnz < 0 {
		return nil, fmt.Errorf("mtx: negative size %d %d %d", nrows, ncols, nnz)
	}

	coo := spmat.NewCOO(nrows, ncols)
	coo.Entries = make([]spmat.Triple, 0, nnz)
	seen := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("mtx: bad entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("mtx: bad row index %q: %v", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("mtx: bad column index %q: %v", fields[1], err)
		}
		if i < 1 || i > nrows || j < 1 || j > ncols {
			return nil, fmt.Errorf("mtx: entry (%d,%d) outside %dx%d", i, j, nrows, ncols)
		}
		if h.field != "pattern" && len(fields) < 3 {
			return nil, fmt.Errorf("mtx: missing value on line %q", line)
		}
		coo.Add(i-1, j-1)
		if h.symmetry == "symmetric" && i != j {
			coo.Add(j-1, i-1)
		}
		seen++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mtx: read: %w", err)
	}
	if seen != nnz {
		return nil, fmt.Errorf("mtx: expected %d entries, read %d", nnz, seen)
	}
	return coo.ToCSC(), nil
}

// ReadFile reads a Matrix Market file from disk.
func ReadFile(path string) (*spmat.CSC, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write serializes m as a general pattern coordinate matrix.
func Write(w io.Writer, m *spmat.CSC) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.NRows, m.NCols, m.NNZ()); err != nil {
		return err
	}
	for j := 0; j < m.NCols; j++ {
		for _, i := range m.Col(j) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", i+1, j+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes m to path in Matrix Market format.
func WriteFile(path string, m *spmat.CSC) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package mtx

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"mcmdist/internal/spmat"
)

func TestReadPatternGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 4 3
1 1
3 2
2 4
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NRows != 3 || m.NCols != 4 || m.NNZ() != 3 {
		t.Fatalf("dims/nnz = %dx%d/%d", m.NRows, m.NCols, m.NNZ())
	}
	for _, e := range [][2]int{{0, 0}, {2, 1}, {1, 3}} {
		if !m.Has(e[0], e[1]) {
			t.Errorf("missing (%d,%d)", e[0], e[1])
		}
	}
}

func TestReadRealValuesDiscarded(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 2
1 2 3.25
2 1 -1e-3
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has(0, 1) || !m.Has(1, 0) {
		t.Fatal("pattern wrong")
	}
}

func TestReadSymmetricExpansion(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer symmetric
3 3 3
1 1 5
2 1 7
3 2 9
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 5 { // diagonal not duplicated
		t.Fatalf("nnz = %d, want 5", m.NNZ())
	}
	if !m.Has(0, 1) || !m.Has(1, 0) || !m.Has(1, 2) || !m.Has(2, 1) || !m.Has(0, 0) {
		t.Fatal("symmetric expansion wrong")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad banner":    "%%NotMatrixMarket matrix coordinate pattern general\n1 1 0\n",
		"bad object":    "%%MatrixMarket vector coordinate pattern general\n1 1 0\n",
		"array format":  "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"complex field": "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"skew symmetry": "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1\n",
		"no size":       "%%MatrixMarket matrix coordinate pattern general\n% only comments\n",
		"bad size":      "%%MatrixMarket matrix coordinate pattern general\nx y z\n",
		"out of range":  "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n",
		"zero index":    "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n",
		"short line":    "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1\n",
		"missing value": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"bad row":       "%%MatrixMarket matrix coordinate pattern general\n2 2 1\na 1\n",
		"bad col":       "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 b\n",
		"wrong count":   "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		nr, nc := 1+rng.Intn(30), 1+rng.Intn(30)
		c := spmat.NewCOO(nr, nc)
		for k := 0; k < rng.Intn(100); k++ {
			c.Add(rng.Intn(nr), rng.Intn(nc))
		}
		m := c.ToCSC()
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(back) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.mtx")
	c := spmat.NewCOO(5, 7)
	c.Add(0, 0)
	c.Add(4, 6)
	c.Add(2, 3)
	m := c.ToCSC()
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Fatal("file round trip mismatch")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.mtx")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestBlankLinesTolerated(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n\n2 2 1\n\n1 2\n\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1 || !m.Has(0, 1) {
		t.Fatal("blank-line parse wrong")
	}
}

func TestReadPaperExampleFixture(t *testing.T) {
	m, err := ReadFile("../../testdata/paper_example.mtx")
	if err != nil {
		t.Fatal(err)
	}
	if m.NRows != 5 || m.NCols != 5 || m.NNZ() != 10 {
		t.Fatalf("fixture %dx%d nnz %d", m.NRows, m.NCols, m.NNZ())
	}
	// Spot-check the worked example's structure: c2 (0-indexed) touches
	// r1, r2, r3.
	for _, i := range []int{1, 2, 3} {
		if !m.Has(i, 2) {
			t.Fatalf("fixture missing (%d,2)", i)
		}
	}
}

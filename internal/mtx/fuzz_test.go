package mtx

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead drives the Matrix Market parser with arbitrary input: it must
// never panic, and anything it accepts must round-trip through Write/Read
// to an equal matrix.
func FuzzRead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 5.0\n3 1 -2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n0 0 0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 9\n1 1\n")
	f.Add("junk\n1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected: fine, as long as no panic
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("write of accepted matrix failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read of own output failed: %v", err)
		}
		if !m.Equal(back) {
			t.Fatal("round trip changed the matrix")
		}
	})
}

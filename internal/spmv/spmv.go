// Package spmv implements the distributed sparse matrix–sparse vector
// multiplication over BFS semirings that is "at the heart of the matrix
// algebraic formulation" (paper Sections III-B and IV-B). It follows the 2D
// CombBLAS algorithm: an "expand" phase (allgather of the frontier along the
// grid column), a work-efficient local multiply over the DCSC submatrix, and
// a "fold" phase (personalized all-to-all along the grid row) that merges
// partial results with the semiring addition.
package spmv

import (
	"fmt"

	"mcmdist/internal/dvec"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// Mul computes y = A·x over the (select2nd, op) semiring. A is the calling
// rank's local block of the globally distributed matrix, x a ColAligned
// frontier over the matrix's columns, and outL the RowAligned layout of the
// result. Collective: every rank of the grid must call it together.
//
// The result has one entry per row vertex reachable from the frontier; its
// parent is the frontier column that discovered it (op resolving conflicts)
// and its root is inherited from that column.
func Mul(a *spmat.LocalMatrix, x *dvec.SparseV, op semiring.AddOp, outL dvec.Layout) *dvec.SparseV {
	g := x.L.G
	if x.L.Kind != dvec.ColAligned {
		panic("spmv: frontier must be column-aligned")
	}
	if outL.Kind != dvec.RowAligned {
		panic("spmv: output layout must be row-aligned")
	}
	if outL.G != g {
		panic("spmv: layouts on different grids")
	}
	if a.Cols.Hi > x.L.N || a.Rows.Hi > outL.N {
		panic(fmt.Sprintf("spmv: local block %v x %v outside vector lengths %d, %d",
			a.Rows, a.Cols, outL.N, x.L.N))
	}

	ctx := g.RT

	// Expand: allgather the frontier pieces along my grid column into one
	// flat arena buffer. The union of the pieces is exactly my column slab,
	// i.e. the frontier entries my local block can act on.
	payload := ctx.GetInts(3 * len(x.Idx))
	for k, gi := range x.Idx {
		payload = append(payload, int64(gi), x.Val[k].Parent, x.Val[k].Root)
	}
	slab := g.Col.AllgathervInto(payload, ctx.GetInts(3*len(x.Idx)*g.PR))
	ctx.PutInts(payload)

	// Local multiply into the rank's persistent dense scratch; the epoch
	// stamp replaces the per-call present bitmap.
	sc := ctx.Scratch("spmv.rows", a.Rows.Len())
	work := 0
	for off := 0; off < len(slab); off += 3 {
		gcol := int(slab[off])
		v := semiring.Vertex{Parent: slab[off+1], Root: slab[off+2]}
		lcol := gcol - a.Cols.Lo
		if lcol < 0 || lcol >= a.Cols.Len() {
			panic(fmt.Sprintf("spmv: expanded column %d outside block %v", gcol, a.Cols))
		}
		rows := a.M.FindCol(lcol)
		work += len(rows) + 1
		cand := semiring.Multiply(int64(gcol), v)
		for _, r := range rows {
			if !sc.Has(r) {
				sc.Set(r, cand)
			} else {
				sc.Val[r] = op.Combine(sc.Val[r], cand)
			}
		}
	}
	g.World.AddWork(work)
	ctx.PutInts(slab)

	// Fold: route each discovered row to its owner within my grid row and
	// merge with the semiring addition.
	parts := ctx.GetParts(g.PC)
	for r := 0; r < a.Rows.Len(); r++ {
		if !sc.Has(r) {
			continue
		}
		grow := a.Rows.Lo + r
		_, j := outL.OwnerCoords(grow)
		parts[j] = append(parts[j], int64(grow), sc.Val[r].Parent, sc.Val[r].Root)
	}
	got, fold := g.Row.AlltoallvInto(parts, ctx.GetInts(0))
	ctx.PutParts(parts)

	out := mergeSortedTriples(got, op, outL)
	g.World.AddWork(out.LocalNnz())
	ctx.PutInts(fold)
	return out
}

// mergeSortedTriples k-way merges the per-sender triple streams — each
// already sorted by global index, because senders emit their scratch rows
// in increasing order — into one sparse vector, combining duplicates with
// the semiring addition. Avoiding a hash map here matters: the fold runs
// once per BFS iteration and its output feeds straight into ordered
// Appends.
func mergeSortedTriples(got [][]int64, op semiring.AddOp, outL dvec.Layout) *dvec.SparseV {
	heads := make([]int, len(got))
	out := dvec.NewSparseV(outL)
	for {
		best := -1
		bestIdx := 0
		for s, h := range heads {
			if h >= len(got[s]) {
				continue
			}
			gi := int(got[s][h])
			if best == -1 || gi < bestIdx {
				best, bestIdx = s, gi
			}
		}
		if best == -1 {
			return out
		}
		h := heads[best]
		acc := semiring.Vertex{Parent: got[best][h+1], Root: got[best][h+2]}
		heads[best] += 3
		// Absorb equal indices from every stream (including more from the
		// winner, though each sender emits an index at most once).
		for s := range got {
			for heads[s] < len(got[s]) && int(got[s][heads[s]]) == bestIdx {
				cand := semiring.Vertex{Parent: got[s][heads[s]+1], Root: got[s][heads[s]+2]}
				acc = op.Combine(acc, cand)
				heads[s] += 3
			}
		}
		out.Append(bestIdx, acc)
	}
}

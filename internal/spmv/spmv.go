// Package spmv implements the distributed sparse matrix–sparse vector
// multiplication over BFS semirings that is "at the heart of the matrix
// algebraic formulation" (paper Sections III-B and IV-B). It follows the 2D
// CombBLAS algorithm: an "expand" phase (allgather of the frontier along the
// grid column), a work-efficient local multiply over the DCSC submatrix, and
// a "fold" phase (personalized all-to-all along the grid row) that merges
// partial results with the semiring addition.
package spmv

import (
	"fmt"
	"sort"

	"mcmdist/internal/dvec"
	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
	"mcmdist/internal/parallel"
	"mcmdist/internal/rt"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// Grain sizes for the intra-rank parallel regions: below these per-chunk
// element counts the pool runs the loop inline, because dispatch overhead
// would dominate the work.
const (
	multGrain  = 256  // expanded frontier entries per local-multiply chunk
	mergeGrain = 2048 // fold triples per k-way-merge segment
	pullGrain  = 256  // local rows per bottom-up scan chunk
)

// Mul computes y = A·x over the (select2nd, op) semiring. A is the calling
// rank's local block of the globally distributed matrix, x a ColAligned
// frontier over the matrix's columns, and outL the RowAligned layout of the
// result. Collective: every rank of the grid must call it together.
//
// The result has one entry per row vertex reachable from the frontier; its
// parent is the frontier column that discovered it (op resolving conflicts)
// and its root is inherited from that column.
func Mul(a *spmat.LocalMatrix, x *dvec.SparseV, op semiring.AddOp, outL dvec.Layout) *dvec.SparseV {
	g := x.L.G
	if x.L.Kind != dvec.ColAligned {
		panic("spmv: frontier must be column-aligned")
	}
	if outL.Kind != dvec.RowAligned {
		panic("spmv: output layout must be row-aligned")
	}
	if outL.G != g {
		panic("spmv: layouts on different grids")
	}
	if a.Cols.Hi > x.L.N || a.Rows.Hi > outL.N {
		panic(fmt.Sprintf("spmv: local block %v x %v outside vector lengths %d, %d",
			a.Rows, a.Cols, outL.N, x.L.N))
	}

	ctx := g.RT
	tr := ctx.Tracer()
	expand0 := tr.Begin()

	// Expand: allgather the frontier pieces along my grid column. The union
	// of the pieces is exactly my column slab, i.e. the frontier entries my
	// local block can act on.
	payload := ctx.GetInts(3 * len(x.Idx))
	for k, gi := range x.Idx {
		payload = append(payload, int64(gi), x.Val[k].Parent, x.Val[k].Root)
	}

	// Local multiply into the rank's persistent dense scratch; the epoch
	// stamp replaces the per-call present bitmap. With a worker pool, each
	// worker combines its contiguous run of slab entries into a private
	// shard, and the shards are then merged into shard 0 by row band. Any
	// regrouping of the per-row combine sequence is bit-identical because
	// op.Combine is associative and commutative for every BFS semiring.
	pool := ctx.Pool()
	var sc *rt.Scratch
	if ctx.Overlap() {
		// Split-phase expand: multiply each frontier piece as it arrives,
		// hiding stragglers' latency behind the multiply of pieces already
		// here. Shards are borrowed once at the pool's full width; each
		// piece is chunked independently.
		rq := g.Col.IAllgathervParts(payload)
		width := 1
		if pool != nil {
			width = pool.Threads()
		}
		shards := ctx.ScratchShards("spmv.rows", width, a.Rows.Len())
		sc = shards[0]
		used := 1
		var work int64
		for {
			_, piece, ok := rq.Next()
			if !ok {
				break
			}
			n := len(piece) / 3
			if w := pool.Width(n, multGrain); w > 1 {
				if w > used {
					used = w
				}
				works := make([]int64, w)
				pool.ForChunked(n, multGrain, func(wi, lo, hi int) {
					works[wi] = int64(multiplyRange(a, piece, lo, hi, shards[wi], op))
				})
				for _, wk := range works {
					work += wk
				}
			} else {
				work += int64(multiplyRange(a, piece, 0, n, sc, op))
			}
		}
		rq.Finish()
		ctx.PutInts(payload)
		g.World.AddWork(int(work))
		mergeShards(pool, shards[:used], op, a.Rows.Len())
	} else {
		slab := g.Col.AllgathervInto(payload, ctx.GetInts(3*len(x.Idx)*g.PR))
		ctx.PutInts(payload)
		nent := len(slab) / 3
		width := pool.Width(nent, multGrain)
		shards := ctx.ScratchShards("spmv.rows", width, a.Rows.Len())
		sc = shards[0]
		if width <= 1 {
			g.World.AddWork(multiplyRange(a, slab, 0, nent, sc, op))
		} else {
			works := make([]int64, width)
			pool.ForChunked(nent, multGrain, func(w, lo, hi int) {
				works[w] = int64(multiplyRange(a, slab, lo, hi, shards[w], op))
			})
			var work int64
			for _, wk := range works {
				work += wk
			}
			g.World.AddWork(int(work))
			mergeShards(pool, shards, op, a.Rows.Len())
		}
		ctx.PutInts(slab)
	}

	tr.End(obs.KindOp, "spmv.expand", expand0, int64(len(x.Idx)))
	fold0 := tr.Begin()

	// Fold: route each discovered row to its owner within my grid row and
	// merge with the semiring addition.
	parts := ctx.GetParts(g.PC)
	for r := 0; r < a.Rows.Len(); r++ {
		if !sc.Has(r) {
			continue
		}
		grow := a.Rows.Lo + r
		_, j := outL.OwnerCoords(grow)
		parts[j] = append(parts[j], int64(grow), sc.Val[r].Parent, sc.Val[r].Root)
	}
	var out *dvec.SparseV
	if ctx.Overlap() {
		out = foldOverlap(ctx, g.Row, parts, op, outL)
	} else {
		got, fold := g.Row.AlltoallvInto(parts, ctx.GetInts(0))
		ctx.PutParts(parts)
		out = mergeSortedTriples(ctx, got, op, outL)
		ctx.PutInts(fold)
	}
	g.World.AddWork(out.LocalNnz())
	tr.End(obs.KindOp, "spmv.fold", fold0, int64(out.LocalNnz()))
	return out
}

// mergeShards folds shards[1:] into shards[0] by row band. Used by both the
// blocking and the split-phase multiply.
func mergeShards(pool *parallel.Pool, shards []*rt.Scratch, op semiring.AddOp, rows int) {
	if len(shards) <= 1 {
		return
	}
	sc := shards[0]
	pool.For(rows, func(lo, hi int) {
		for s := 1; s < len(shards); s++ {
			sh := shards[s]
			for r := lo; r < hi; r++ {
				if !sh.Has(r) {
					continue
				}
				if !sc.Has(r) {
					sc.Set(r, sh.Val[r])
				} else {
					sc.Val[r] = op.Combine(sc.Val[r], sh.Val[r])
				}
			}
		}
	})
}

// foldOverlap is the split-phase fold: the personalized all-to-all is
// drained progressively and streams already here are pairwise-merged while
// stragglers are still sending — mergesort-style run collapsing keeps the
// early-merge work O(n log k). Whatever runs remain when the last stream
// lands go through the usual banded k-way merge. Zero-copy streams from the
// request are only read before Finish, after which the send parts are
// recycled.
func foldOverlap(ctx *rt.Ctx, row *mpi.Comm, parts [][]int64, op semiring.AddOp, outL dvec.Layout) *dvec.SparseV {
	rq := row.IAlltoallvParts(parts)
	var runs [][]int64
	var owned []bool // runs[i] is an arena buffer (vs a zero-copy stream)
	for {
		_, stream, ok := rq.Next()
		if !ok {
			break
		}
		if len(stream) == 0 {
			continue
		}
		runs, owned = append(runs, stream), append(owned, false)
		// Collapse similar-sized neighbouring runs while a straggler is
		// still outstanding to hide the merge behind.
		for len(runs) >= 2 && rq.Pending() > 0 {
			a, b := runs[len(runs)-2], runs[len(runs)-1]
			if len(a) > 2*len(b) {
				break
			}
			merged := merge2Triples(ctx.GetInts(len(a)+len(b)), a, b, op)
			if owned[len(owned)-2] {
				ctx.PutInts(a)
			}
			if owned[len(owned)-1] {
				ctx.PutInts(b)
			}
			runs = append(runs[:len(runs)-2], merged)
			owned = append(owned[:len(owned)-2], true)
		}
	}
	out := mergeSortedTriples(ctx, runs, op, outL)
	rq.Finish()
	for i, r := range runs {
		if owned[i] {
			ctx.PutInts(r)
		}
	}
	ctx.PutParts(parts)
	return out
}

// merge2Triples merges two row-sorted triple runs into dst, combining
// duplicate rows with op, and returns the grown dst. Each input holds a row
// at most once, so the output does too.
func merge2Triples(dst, a, b []int64, op semiring.AddOp) []int64 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i], a[i+1], a[i+2])
			i += 3
		case b[j] < a[i]:
			dst = append(dst, b[j], b[j+1], b[j+2])
			j += 3
		default:
			v := op.Combine(semiring.Vertex{Parent: a[i+1], Root: a[i+2]},
				semiring.Vertex{Parent: b[j+1], Root: b[j+2]})
			dst = append(dst, a[i], v.Parent, v.Root)
			i, j = i+3, j+3
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// multiplyRange runs the work-efficient local multiply over slab entries
// [lo, hi) (in triples), combining into sc under op, and returns the work
// performed. Concurrent calls must target distinct scratch shards.
func multiplyRange(a *spmat.LocalMatrix, slab []int64, lo, hi int, sc *rt.Scratch, op semiring.AddOp) int {
	work := 0
	for k := lo; k < hi; k++ {
		off := 3 * k
		gcol := int(slab[off])
		v := semiring.Vertex{Parent: slab[off+1], Root: slab[off+2]}
		lcol := gcol - a.Cols.Lo
		if lcol < 0 || lcol >= a.Cols.Len() {
			panic(fmt.Sprintf("spmv: expanded column %d outside block %v", gcol, a.Cols))
		}
		rows := a.M.FindCol(lcol)
		work += len(rows) + 1
		cand := semiring.Multiply(int64(gcol), v)
		for _, r := range rows {
			if !sc.Has(r) {
				sc.Set(r, cand)
			} else {
				sc.Val[r] = op.Combine(sc.Val[r], cand)
			}
		}
	}
	return work
}

// mergeSortedTriples k-way merges the per-sender triple streams — each
// already sorted by global index, because senders emit their scratch rows
// in increasing order — into one sparse vector, combining duplicates with
// the semiring addition. Avoiding a hash map here matters: the fold runs
// once per BFS iteration and its output feeds straight into ordered
// Appends. Stream heads sit in a binary min-heap, so each emitted element
// costs O(log k) instead of a scan over all k senders. With a worker pool
// the output row range is cut into bands (stream cut points found by
// binary search), each band merged independently, and the bands
// concatenated — band boundaries respect row order, so the result is
// identical to the single-band merge.
func mergeSortedTriples(ctx *rt.Ctx, got [][]int64, op semiring.AddOp, outL dvec.Layout) *dvec.SparseV {
	total := 0
	for _, s := range got {
		total += len(s) / 3
	}
	pool := ctx.Pool()
	width := pool.Width(total, mergeGrain)
	if width <= 1 {
		out := dvec.NewSparseV(outL)
		mergeTriplesInto(out, got, op)
		return out
	}

	// Cut every stream at the band-boundary rows. Bands split the local row
	// range evenly; fold triples are usually spread across it.
	r := outL.MyRange()
	cuts := make([][]int, width+1) // cuts[b][s] = offset of band b's start in stream s
	cuts[0] = make([]int, len(got))
	for b := 1; b < width; b++ {
		boundary := int64(r.Lo + b*r.Len()/width)
		cut := make([]int, len(got))
		for s, stream := range got {
			n := len(stream) / 3
			cut[s] = 3 * sort.Search(n, func(i int) bool { return stream[3*i] >= boundary })
		}
		cuts[b] = cut
	}
	last := make([]int, len(got))
	for s := range got {
		last[s] = len(got[s])
	}
	cuts[width] = last

	outs := make([]*dvec.SparseV, width)
	pool.ForChunked(width, 1, func(_, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			segs := make([][]int64, len(got))
			for s := range got {
				segs[s] = got[s][cuts[b][s]:cuts[b+1][s]]
			}
			outs[b] = dvec.NewSparseV(outL)
			mergeTriplesInto(outs[b], segs, op)
		}
	})

	out := outs[0]
	for _, o := range outs[1:] {
		out.Idx = append(out.Idx, o.Idx...)
		out.Val = append(out.Val, o.Val...)
	}
	return out
}

// mergeTriplesInto heap-merges the sorted triple streams into out,
// combining duplicate indices with op. The heap orders by (row, stream), so
// equal rows are absorbed in ascending stream order — and op.Combine is
// commutative besides, so duplicate order cannot change the result.
func mergeTriplesInto(out *dvec.SparseV, got [][]int64, op semiring.AddOp) {
	heads := make([]int, len(got))
	heap := make([]int, 0, len(got)) // stream ids, min-heap by head row
	less := func(a, b int) bool {
		ra, rb := got[a][heads[a]], got[b][heads[b]]
		return ra < rb || (ra == rb && a < b)
	}
	push := func(s int) {
		heap = append(heap, s)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	pop := func() int {
		top := heap[0]
		n := len(heap) - 1
		heap[0] = heap[n]
		heap = heap[:n]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < n && less(heap[l], heap[small]) {
				small = l
			}
			if r < n && less(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	for s := range got {
		if len(got[s]) > 0 {
			push(s)
		}
	}
	for len(heap) > 0 {
		s := pop()
		h := heads[s]
		gi := got[s][h]
		acc := semiring.Vertex{Parent: got[s][h+1], Root: got[s][h+2]}
		heads[s] += 3
		if heads[s] < len(got[s]) {
			push(s)
		}
		// Absorb equal indices from the other streams (each sender emits an
		// index at most once, so the winner itself cannot repeat it).
		for len(heap) > 0 && got[heap[0]][heads[heap[0]]] == gi {
			s2 := pop()
			h2 := heads[s2]
			acc = op.Combine(acc, semiring.Vertex{Parent: got[s2][h2+1], Root: got[s2][h2+2]})
			heads[s2] += 3
			if heads[s2] < len(got[s2]) {
				push(s2)
			}
		}
		out.Append(int(gi), acc)
	}
}

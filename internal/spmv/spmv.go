// Package spmv implements the distributed sparse matrix–sparse vector
// multiplication over BFS semirings that is "at the heart of the matrix
// algebraic formulation" (paper Sections III-B and IV-B). It follows the 2D
// CombBLAS algorithm: an "expand" phase (allgather of the frontier along the
// grid column), a work-efficient local multiply over the DCSC submatrix, and
// a "fold" phase (personalized all-to-all along the grid row) that merges
// partial results with the semiring addition.
package spmv

import (
	"fmt"
	"sort"

	"mcmdist/internal/dvec"
	"mcmdist/internal/rt"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// Grain sizes for the intra-rank parallel regions: below these per-chunk
// element counts the pool runs the loop inline, because dispatch overhead
// would dominate the work.
const (
	multGrain  = 256  // expanded frontier entries per local-multiply chunk
	mergeGrain = 2048 // fold triples per k-way-merge segment
	pullGrain  = 256  // local rows per bottom-up scan chunk
)

// Mul computes y = A·x over the (select2nd, op) semiring. A is the calling
// rank's local block of the globally distributed matrix, x a ColAligned
// frontier over the matrix's columns, and outL the RowAligned layout of the
// result. Collective: every rank of the grid must call it together.
//
// The result has one entry per row vertex reachable from the frontier; its
// parent is the frontier column that discovered it (op resolving conflicts)
// and its root is inherited from that column.
func Mul(a *spmat.LocalMatrix, x *dvec.SparseV, op semiring.AddOp, outL dvec.Layout) *dvec.SparseV {
	g := x.L.G
	if x.L.Kind != dvec.ColAligned {
		panic("spmv: frontier must be column-aligned")
	}
	if outL.Kind != dvec.RowAligned {
		panic("spmv: output layout must be row-aligned")
	}
	if outL.G != g {
		panic("spmv: layouts on different grids")
	}
	if a.Cols.Hi > x.L.N || a.Rows.Hi > outL.N {
		panic(fmt.Sprintf("spmv: local block %v x %v outside vector lengths %d, %d",
			a.Rows, a.Cols, outL.N, x.L.N))
	}

	ctx := g.RT

	// Expand: allgather the frontier pieces along my grid column into one
	// flat arena buffer. The union of the pieces is exactly my column slab,
	// i.e. the frontier entries my local block can act on.
	payload := ctx.GetInts(3 * len(x.Idx))
	for k, gi := range x.Idx {
		payload = append(payload, int64(gi), x.Val[k].Parent, x.Val[k].Root)
	}
	slab := g.Col.AllgathervInto(payload, ctx.GetInts(3*len(x.Idx)*g.PR))
	ctx.PutInts(payload)

	// Local multiply into the rank's persistent dense scratch; the epoch
	// stamp replaces the per-call present bitmap. With a worker pool, each
	// worker combines its contiguous run of slab entries into a private
	// shard, and the shards are then merged into shard 0 by row band. The
	// combine sequence per row is exactly the serial slab order regrouped by
	// contiguous chunks, so associativity of op.Combine makes the result
	// bit-identical to the single-thread multiply.
	pool := ctx.Pool()
	nent := len(slab) / 3
	width := pool.Width(nent, multGrain)
	shards := ctx.ScratchShards("spmv.rows", width, a.Rows.Len())
	sc := shards[0]
	if width <= 1 {
		g.World.AddWork(multiplyRange(a, slab, 0, nent, sc, op))
	} else {
		works := make([]int64, width)
		pool.ForChunked(nent, multGrain, func(w, lo, hi int) {
			works[w] = int64(multiplyRange(a, slab, lo, hi, shards[w], op))
		})
		var work int64
		for _, wk := range works {
			work += wk
		}
		g.World.AddWork(int(work))
		pool.For(a.Rows.Len(), func(lo, hi int) {
			for s := 1; s < width; s++ {
				sh := shards[s]
				for r := lo; r < hi; r++ {
					if !sh.Has(r) {
						continue
					}
					if !sc.Has(r) {
						sc.Set(r, sh.Val[r])
					} else {
						sc.Val[r] = op.Combine(sc.Val[r], sh.Val[r])
					}
				}
			}
		})
	}
	ctx.PutInts(slab)

	// Fold: route each discovered row to its owner within my grid row and
	// merge with the semiring addition.
	parts := ctx.GetParts(g.PC)
	for r := 0; r < a.Rows.Len(); r++ {
		if !sc.Has(r) {
			continue
		}
		grow := a.Rows.Lo + r
		_, j := outL.OwnerCoords(grow)
		parts[j] = append(parts[j], int64(grow), sc.Val[r].Parent, sc.Val[r].Root)
	}
	got, fold := g.Row.AlltoallvInto(parts, ctx.GetInts(0))
	ctx.PutParts(parts)

	out := mergeSortedTriples(ctx, got, op, outL)
	g.World.AddWork(out.LocalNnz())
	ctx.PutInts(fold)
	return out
}

// multiplyRange runs the work-efficient local multiply over slab entries
// [lo, hi) (in triples), combining into sc under op, and returns the work
// performed. Concurrent calls must target distinct scratch shards.
func multiplyRange(a *spmat.LocalMatrix, slab []int64, lo, hi int, sc *rt.Scratch, op semiring.AddOp) int {
	work := 0
	for k := lo; k < hi; k++ {
		off := 3 * k
		gcol := int(slab[off])
		v := semiring.Vertex{Parent: slab[off+1], Root: slab[off+2]}
		lcol := gcol - a.Cols.Lo
		if lcol < 0 || lcol >= a.Cols.Len() {
			panic(fmt.Sprintf("spmv: expanded column %d outside block %v", gcol, a.Cols))
		}
		rows := a.M.FindCol(lcol)
		work += len(rows) + 1
		cand := semiring.Multiply(int64(gcol), v)
		for _, r := range rows {
			if !sc.Has(r) {
				sc.Set(r, cand)
			} else {
				sc.Val[r] = op.Combine(sc.Val[r], cand)
			}
		}
	}
	return work
}

// mergeSortedTriples k-way merges the per-sender triple streams — each
// already sorted by global index, because senders emit their scratch rows
// in increasing order — into one sparse vector, combining duplicates with
// the semiring addition. Avoiding a hash map here matters: the fold runs
// once per BFS iteration and its output feeds straight into ordered
// Appends. Stream heads sit in a binary min-heap, so each emitted element
// costs O(log k) instead of a scan over all k senders. With a worker pool
// the output row range is cut into bands (stream cut points found by
// binary search), each band merged independently, and the bands
// concatenated — band boundaries respect row order, so the result is
// identical to the single-band merge.
func mergeSortedTriples(ctx *rt.Ctx, got [][]int64, op semiring.AddOp, outL dvec.Layout) *dvec.SparseV {
	total := 0
	for _, s := range got {
		total += len(s) / 3
	}
	pool := ctx.Pool()
	width := pool.Width(total, mergeGrain)
	if width <= 1 {
		out := dvec.NewSparseV(outL)
		mergeTriplesInto(out, got, op)
		return out
	}

	// Cut every stream at the band-boundary rows. Bands split the local row
	// range evenly; fold triples are usually spread across it.
	r := outL.MyRange()
	cuts := make([][]int, width+1) // cuts[b][s] = offset of band b's start in stream s
	cuts[0] = make([]int, len(got))
	for b := 1; b < width; b++ {
		boundary := int64(r.Lo + b*r.Len()/width)
		cut := make([]int, len(got))
		for s, stream := range got {
			n := len(stream) / 3
			cut[s] = 3 * sort.Search(n, func(i int) bool { return stream[3*i] >= boundary })
		}
		cuts[b] = cut
	}
	last := make([]int, len(got))
	for s := range got {
		last[s] = len(got[s])
	}
	cuts[width] = last

	outs := make([]*dvec.SparseV, width)
	pool.ForChunked(width, 1, func(_, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			segs := make([][]int64, len(got))
			for s := range got {
				segs[s] = got[s][cuts[b][s]:cuts[b+1][s]]
			}
			outs[b] = dvec.NewSparseV(outL)
			mergeTriplesInto(outs[b], segs, op)
		}
	})

	out := outs[0]
	for _, o := range outs[1:] {
		out.Idx = append(out.Idx, o.Idx...)
		out.Val = append(out.Val, o.Val...)
	}
	return out
}

// mergeTriplesInto heap-merges the sorted triple streams into out,
// combining duplicate indices with op. The heap orders by (row, stream), so
// equal rows are absorbed in ascending stream order — and op.Combine is
// commutative besides, so duplicate order cannot change the result.
func mergeTriplesInto(out *dvec.SparseV, got [][]int64, op semiring.AddOp) {
	heads := make([]int, len(got))
	heap := make([]int, 0, len(got)) // stream ids, min-heap by head row
	less := func(a, b int) bool {
		ra, rb := got[a][heads[a]], got[b][heads[b]]
		return ra < rb || (ra == rb && a < b)
	}
	push := func(s int) {
		heap = append(heap, s)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	pop := func() int {
		top := heap[0]
		n := len(heap) - 1
		heap[0] = heap[n]
		heap = heap[:n]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < n && less(heap[l], heap[small]) {
				small = l
			}
			if r < n && less(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	for s := range got {
		if len(got[s]) > 0 {
			push(s)
		}
	}
	for len(heap) > 0 {
		s := pop()
		h := heads[s]
		gi := got[s][h]
		acc := semiring.Vertex{Parent: got[s][h+1], Root: got[s][h+2]}
		heads[s] += 3
		if heads[s] < len(got[s]) {
			push(s)
		}
		// Absorb equal indices from the other streams (each sender emits an
		// index at most once, so the winner itself cannot repeat it).
		for len(heap) > 0 && got[heap[0]][heads[heap[0]]] == gi {
			s2 := pop()
			h2 := heads[s2]
			acc = op.Combine(acc, semiring.Vertex{Parent: got[s2][h2+1], Root: got[s2][h2+2]})
			heads[s2] += 3
			if heads[s2] < len(got[s2]) {
				push(s2)
			}
		}
		out.Append(int(gi), acc)
	}
}

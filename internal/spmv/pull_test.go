package spmv

import (
	"math/rand"
	"testing"

	"mcmdist/internal/dvec"
	"mcmdist/internal/grid"
	"mcmdist/internal/mpi"
	"mcmdist/internal/rmat"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// runPull executes MulPull on a grid and returns the gathered result.
func runPull(t *testing.T, a *spmat.CSC, x map[int]semiring.Vertex,
	visited map[int]bool, op semiring.AddOp, pr, pc int) []semiring.Vertex {
	t.Helper()
	blocks := spmat.Distribute2D(a, pr, pc)
	var result []semiring.Vertex
	_, err := mpi.Run(pr*pc, func(c *mpi.Comm) error {
		g, err := grid.New(c, pr, pc)
		if err != nil {
			return err
		}
		local := blocks[g.MyRow][g.MyCol]
		rowAdj := RowMajor(local)
		xl := dvec.NewLayout(g, a.NCols, dvec.ColAligned)
		yl := dvec.NewLayout(g, a.NRows, dvec.RowAligned)
		fx := dvec.NewSparseV(xl)
		r := xl.MyRange()
		for gi := r.Lo; gi < r.Hi; gi++ {
			if v, ok := x[gi]; ok {
				fx.Append(gi, v)
			}
		}
		vis := dvec.NewDense(yl, semiring.None)
		vr := yl.MyRange()
		for gi := vr.Lo; gi < vr.Hi; gi++ {
			if visited[gi] {
				vis.SetAt(gi, 1)
			}
		}
		y, _ := MulPull(local, rowAdj, fx, vis, op, yl)
		got := y.GatherVertices()
		if c.Rank() == 0 {
			result = got
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return result
}

// TestPullReachesSameRowsAsPush: the set of discovered rows must be exactly
// the push direction's, and every parent must be a frontier neighbor of its
// row carrying that neighbor's root.
func TestPullReachesSameRowsAsPush(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		nr, nc := 10+rng.Intn(40), 10+rng.Intn(40)
		coo := spmat.NewCOO(nr, nc)
		for k := 0; k < 6*(nr+nc); k++ {
			coo.Add(rng.Intn(nr), rng.Intn(nc))
		}
		a := coo.ToCSC()
		x := make(map[int]semiring.Vertex)
		for j := 0; j < nc; j++ {
			if rng.Intn(2) == 0 {
				x[j] = semiring.Self(int64(j))
			}
		}
		for _, shape := range [][2]int{{1, 1}, {2, 2}, {3, 2}} {
			push := runMul(t, a, x, semiring.MinParent, shape[0], shape[1])
			pull := runPull(t, a, x, nil, semiring.MinParent, shape[0], shape[1])
			for i := 0; i < nr; i++ {
				if (push[i].Parent == semiring.None) != (pull[i].Parent == semiring.None) {
					t.Fatalf("trial %d shape %v row %d: push %v pull %v — reach sets differ",
						trial, shape, i, push[i], pull[i])
				}
				if pull[i].Parent == semiring.None {
					continue
				}
				p := int(pull[i].Parent)
				if !a.Has(i, p) {
					t.Fatalf("row %d: pull parent %d is not a neighbor", i, p)
				}
				fv, ok := x[p]
				if !ok {
					t.Fatalf("row %d: pull parent %d not in frontier", i, p)
				}
				if pull[i].Root != fv.Root {
					t.Fatalf("row %d: root %d, want frontier %d's root %d",
						i, pull[i].Root, p, fv.Root)
				}
			}
		}
	}
}

// TestPullSkipsVisitedRows: rows marked visited must not be rediscovered.
func TestPullSkipsVisitedRows(t *testing.T) {
	coo := spmat.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		coo.Add(i, 0)
	}
	a := coo.ToCSC()
	x := map[int]semiring.Vertex{0: semiring.Self(0)}
	visited := map[int]bool{1: true, 3: true}
	got := runPull(t, a, x, visited, semiring.MinParent, 2, 2)
	for i := 0; i < 4; i++ {
		wantHit := !visited[i]
		if (got[i].Parent != semiring.None) != wantHit {
			t.Fatalf("row %d: %v, visited=%v", i, got[i], visited[i])
		}
	}
}

// TestPullWorkSavings: with a full frontier, pull touches at most one edge
// per row plus misses, far fewer than push's full traversal on dense rows.
func TestPullWorkSavings(t *testing.T) {
	// Every row adjacent to every column (a dense 32x32 block).
	const n = 32
	coo := spmat.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			coo.Add(i, j)
		}
	}
	a := coo.ToCSC()
	blocks := spmat.Distribute2D(a, 2, 2)

	measure := func(pull bool) int64 {
		w, err := mpi.Run(4, func(c *mpi.Comm) error {
			g, err := grid.New(c, 2, 2)
			if err != nil {
				return err
			}
			local := blocks[g.MyRow][g.MyCol]
			xl := dvec.NewLayout(g, n, dvec.ColAligned)
			yl := dvec.NewLayout(g, n, dvec.RowAligned)
			fx := dvec.NewSparseV(xl)
			r := xl.MyRange()
			for gi := r.Lo; gi < r.Hi; gi++ {
				fx.Append(gi, semiring.Self(int64(gi)))
			}
			if pull {
				_, _ = MulPull(local, RowMajor(local), fx, dvec.NewDense(yl, semiring.None), semiring.MinParent, yl)
			} else {
				Mul(local, fx, semiring.MinParent, yl)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.TotalMeter().Work
	}

	pushWork := measure(false)
	pullWork := measure(true)
	if pullWork*4 > pushWork {
		t.Fatalf("pull work %d not far below push work %d on a dense block with full frontier",
			pullWork, pushWork)
	}
}

func TestPullEmptyFrontier(t *testing.T) {
	a := rmat.MustGenerate(rmat.ER, 5, 4, 2)
	got := runPull(t, a, nil, nil, semiring.MinParent, 2, 2)
	for i, v := range got {
		if v.Parent != semiring.None {
			t.Fatalf("row %d = %v from empty frontier", i, v)
		}
	}
}

func TestRowMajorShape(t *testing.T) {
	a := rmat.MustGenerate(rmat.G500, 6, 4, 9)
	blocks := spmat.Distribute2D(a, 2, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			lm := blocks[i][j]
			ra := RowMajor(lm)
			if ra.NRows != lm.Cols.Len() || ra.NCols != lm.Rows.Len() {
				t.Fatalf("block (%d,%d): RowMajor dims %dx%d, block %dx%d",
					i, j, ra.NRows, ra.NCols, lm.Rows.Len(), lm.Cols.Len())
			}
			// Every (row, col) of the block appears as (col entry) in
			// RowMajor's column row.
			lc := lm.M.ToCSC()
			for _, e := range lc.Triples() {
				if !ra.Has(e.Col, e.Row) {
					t.Fatalf("block (%d,%d): RowMajor missing (%d,%d)", i, j, e.Col, e.Row)
				}
			}
		}
	}
}

package spmv

import (
	"fmt"
	"math/rand"
	"testing"

	"mcmdist/internal/dvec"
	"mcmdist/internal/grid"
	"mcmdist/internal/mpi"
	"mcmdist/internal/rmat"
	"mcmdist/internal/rt"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// runMulThreads executes the distributed Mul with a worker pool of the given
// size on every rank and returns the gathered result.
func runMulThreads(t *testing.T, a *spmat.CSC, op semiring.AddOp, pr, pc, threads int) []semiring.Vertex {
	t.Helper()
	blocks := spmat.Distribute2D(a, pr, pc)
	var result []semiring.Vertex
	_, err := mpi.Run(pr*pc, func(c *mpi.Comm) error {
		ctx := rt.New(c)
		ctx.EnsureThreads(threads)
		defer ctx.Close()
		g, err := grid.NewWithRT(c, pr, pc, ctx)
		if err != nil {
			return err
		}
		xl := dvec.NewLayout(g, a.NCols, dvec.ColAligned)
		yl := dvec.NewLayout(g, a.NRows, dvec.RowAligned)
		fx := dvec.NewSparseV(xl)
		r := xl.MyRange()
		for gi := r.Lo; gi < r.Hi; gi++ {
			fx.Append(gi, semiring.Self(int64(gi)))
		}
		y := Mul(blocks[g.MyRow][g.MyCol], fx, op, yl)
		full := y.GatherVertices()
		if c.Rank() == 0 {
			result = full
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return result
}

// TestMulThreadedBitIdentical drives the sharded local multiply and the
// banded fold merge with a full frontier (large enough to clear the multGrain
// and mergeGrain clamps) and checks the result is bit-identical across pool
// sizes. The semiring Combine is associative with deterministic tie-breaks,
// so regrouping by chunks must not change a single bit.
func TestMulThreadedBitIdentical(t *testing.T) {
	a := rmat.MustGenerate(rmat.G500, 12, 16, 7)
	for _, op := range []semiring.AddOp{semiring.MinParent, semiring.RandParent} {
		for _, shape := range [][2]int{{1, 1}, {2, 2}} {
			base := runMulThreads(t, a, op, shape[0], shape[1], 1)
			for _, threads := range []int{2, 4, 8} {
				got := runMulThreads(t, a, op, shape[0], shape[1], threads)
				for i := range base {
					if got[i] != base[i] {
						t.Fatalf("op=%v grid=%v threads=%d: row %d = %v, want %v",
							op, shape, threads, i, got[i], base[i])
					}
				}
			}
		}
	}
}

func TestMergeSortedTriplesBandedMatchesSerial(t *testing.T) {
	// Build sender streams big enough that a pooled ctx cuts them into
	// bands, with duplicate rows across streams to exercise the combine.
	rng := rand.New(rand.NewSource(11))
	const n = 20000
	streams := make([][]int64, 3)
	for s := range streams {
		row := int64(0)
		for row < n {
			row += int64(1 + rng.Intn(3))
			if row >= n {
				break
			}
			streams[s] = append(streams[s], row, int64(rng.Intn(100)), int64(rng.Intn(100)))
		}
	}
	_, err := mpi.Run(1, func(c *mpi.Comm) error {
		ctx := rt.New(c)
		ctx.EnsureThreads(4)
		defer ctx.Close()
		g, err := grid.NewWithRT(c, 1, 1, ctx)
		if err != nil {
			return err
		}
		outL := dvec.NewLayout(g, n, dvec.RowAligned)
		want := mergeSortedTriples(nil, streams, semiring.MinParent, outL)
		got := mergeSortedTriples(ctx, streams, semiring.MinParent, outL)
		if len(got.Idx) != len(want.Idx) {
			return fmt.Errorf("nnz %d, want %d", len(got.Idx), len(want.Idx))
		}
		for k := range want.Idx {
			if got.Idx[k] != want.Idx[k] || got.Val[k] != want.Val[k] {
				return fmt.Errorf("entry %d: (%d,%v) want (%d,%v)",
					k, got.Idx[k], got.Val[k], want.Idx[k], want.Val[k])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

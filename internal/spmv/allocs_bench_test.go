package spmv

// Allocation benchmark for the SpMV hot path: one collective Mul across a
// 2x2 grid per iteration, frontier fixed, so allocs/op is the steady-state
// per-level allocation cost of the expand / local-multiply / fold pipeline.
// EXPERIMENTS.md records the before/after numbers for the runtime-context
// buffer-reuse refactor.

import (
	"testing"

	"mcmdist/internal/dvec"
	"mcmdist/internal/grid"
	"mcmdist/internal/mpi"
	"mcmdist/internal/rmat"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

func BenchmarkSpMVAllocs(b *testing.B) {
	a := rmat.MustGenerate(rmat.G500, 12, 16, 1)
	blocks := spmat.Distribute2D(a, 2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	_, err := mpi.Run(4, func(c *mpi.Comm) error {
		g, err := grid.New(c, 2, 2)
		if err != nil {
			return err
		}
		local := blocks[g.MyRow][g.MyCol]
		xl := dvec.NewLayout(g, a.NCols, dvec.ColAligned)
		yl := dvec.NewLayout(g, a.NRows, dvec.RowAligned)
		fx := dvec.NewSparseV(xl)
		r := xl.MyRange()
		for gi := r.Lo; gi < r.Hi; gi += 3 {
			fx.Append(gi, semiring.Self(int64(gi)))
		}
		for i := 0; i < b.N; i++ {
			Mul(local, fx, semiring.MinParent, yl)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSpMVPullAllocs is the same measurement for the bottom-up
// direction (MulPull), whose dense frontier/visited lookups are the other
// per-level scratch consumers.
func BenchmarkSpMVPullAllocs(b *testing.B) {
	a := rmat.MustGenerate(rmat.G500, 12, 16, 1)
	blocks := spmat.Distribute2D(a, 2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	_, err := mpi.Run(4, func(c *mpi.Comm) error {
		g, err := grid.New(c, 2, 2)
		if err != nil {
			return err
		}
		local := blocks[g.MyRow][g.MyCol]
		rowAdj := RowMajor(local)
		xl := dvec.NewLayout(g, a.NCols, dvec.ColAligned)
		yl := dvec.NewLayout(g, a.NRows, dvec.RowAligned)
		fx := dvec.NewSparseV(xl)
		r := xl.MyRange()
		for gi := r.Lo; gi < r.Hi; gi += 3 {
			fx.Append(gi, semiring.Self(int64(gi)))
		}
		vis := dvec.NewDense(yl, semiring.None)
		for i := 0; i < b.N; i++ {
			MulPull(local, rowAdj, fx, vis, semiring.MinParent, yl)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

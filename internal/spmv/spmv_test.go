package spmv

import (
	"fmt"
	"math/rand"
	"testing"

	"mcmdist/internal/dvec"
	"mcmdist/internal/grid"
	"mcmdist/internal/mpi"
	"mcmdist/internal/rmat"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// serialMul is the reference single-process semiring SpMV.
func serialMul(a *spmat.CSC, x map[int]semiring.Vertex, op semiring.AddOp) map[int]semiring.Vertex {
	out := make(map[int]semiring.Vertex)
	for j, v := range x {
		cand := semiring.Multiply(int64(j), v)
		for _, i := range a.Col(j) {
			if old, ok := out[i]; ok {
				out[i] = op.Combine(old, cand)
			} else {
				out[i] = cand
			}
		}
	}
	return out
}

// runMul executes the distributed Mul on a pr x pc grid and returns the full
// result vector.
func runMul(t *testing.T, a *spmat.CSC, x map[int]semiring.Vertex, op semiring.AddOp, pr, pc int) []semiring.Vertex {
	t.Helper()
	blocks := spmat.Distribute2D(a, pr, pc)
	results := make([][]semiring.Vertex, pr*pc)
	_, err := mpi.Run(pr*pc, func(c *mpi.Comm) error {
		g, err := grid.New(c, pr, pc)
		if err != nil {
			return err
		}
		local := blocks[g.MyRow][g.MyCol]
		xl := dvec.NewLayout(g, a.NCols, dvec.ColAligned)
		yl := dvec.NewLayout(g, a.NRows, dvec.RowAligned)
		fx := dvec.NewSparseV(xl)
		r := xl.MyRange()
		for gi := r.Lo; gi < r.Hi; gi++ {
			if v, ok := x[gi]; ok {
				fx.Append(gi, v)
			}
		}
		y := Mul(local, fx, op, yl)
		results[c.Rank()] = y.GatherVertices()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < pr*pc; r++ {
		for i := range results[0] {
			if results[r][i] != results[0][i] {
				t.Fatalf("rank %d disagrees at %d: %v vs %v", r, i, results[r][i], results[0][i])
			}
		}
	}
	return results[0]
}

func assertMatchesSerial(t *testing.T, a *spmat.CSC, x map[int]semiring.Vertex, op semiring.AddOp, pr, pc int) {
	t.Helper()
	got := runMul(t, a, x, op, pr, pc)
	want := serialMul(a, x, op)
	for i := 0; i < a.NRows; i++ {
		w, ok := want[i]
		if !ok {
			w = semiring.Vertex{Parent: semiring.None, Root: semiring.None}
		}
		if got[i] != w {
			t.Fatalf("grid %dx%d row %d: got %v, want %v", pr, pc, i, got[i], w)
		}
	}
}

func TestMulTinyMinParent(t *testing.T) {
	// 3x4 matrix: row 0 adjacent to cols 0,2; row 1 to col 1; row 2 to cols 2,3.
	coo := spmat.NewCOO(3, 4)
	for _, e := range [][2]int{{0, 0}, {0, 2}, {1, 1}, {2, 2}, {2, 3}} {
		coo.Add(e[0], e[1])
	}
	a := coo.ToCSC()
	x := map[int]semiring.Vertex{
		2: semiring.Self(2),
		3: semiring.Self(3),
	}
	got := runMul(t, a, x, semiring.MinParent, 2, 2)
	// Row 0 discovered by col 2, row 2 by min(2, 3) = 2; row 1 untouched.
	if got[0] != (semiring.Vertex{Parent: 2, Root: 2}) {
		t.Errorf("row 0 = %v", got[0])
	}
	if got[1].Parent != semiring.None {
		t.Errorf("row 1 = %v, want missing", got[1])
	}
	if got[2] != (semiring.Vertex{Parent: 2, Root: 2}) {
		t.Errorf("row 2 = %v", got[2])
	}
}

func TestMulMatchesSerialOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	shapes := [][2]int{{1, 1}, {2, 2}, {3, 3}, {2, 3}, {1, 4}}
	for trial := 0; trial < 6; trial++ {
		nr, nc := 10+rng.Intn(40), 10+rng.Intn(40)
		coo := spmat.NewCOO(nr, nc)
		for k := 0; k < 5*(nr+nc); k++ {
			coo.Add(rng.Intn(nr), rng.Intn(nc))
		}
		a := coo.ToCSC()
		x := make(map[int]semiring.Vertex)
		for j := 0; j < nc; j++ {
			if rng.Intn(3) == 0 {
				x[j] = semiring.Vertex{Parent: int64(rng.Intn(nc)), Root: int64(rng.Intn(nc))}
			}
		}
		for _, op := range []semiring.AddOp{semiring.MinParent, semiring.RandRoot, semiring.RandParent} {
			for _, s := range shapes {
				assertMatchesSerial(t, a, x, op, s[0], s[1])
			}
		}
	}
}

func TestMulEmptyFrontier(t *testing.T) {
	a := rmat.MustGenerate(rmat.ER, 5, 4, 1)
	got := runMul(t, a, nil, semiring.MinParent, 2, 2)
	for i, v := range got {
		if v.Parent != semiring.None {
			t.Fatalf("row %d = %v from empty frontier", i, v)
		}
	}
}

func TestMulRootInheritance(t *testing.T) {
	// A path structure: col 7 is the only frontier entry with root 42;
	// every reached row must carry root 42.
	coo := spmat.NewCOO(6, 9)
	for i := 0; i < 6; i++ {
		coo.Add(i, 7)
	}
	a := coo.ToCSC()
	x := map[int]semiring.Vertex{7: {Parent: 3, Root: 42}}
	got := runMul(t, a, x, semiring.RandRoot, 3, 3)
	for i := 0; i < 6; i++ {
		if got[i].Root != 42 || got[i].Parent != 7 {
			t.Fatalf("row %d = %v, want (7, 42)", i, got[i])
		}
	}
}

func TestMulWorkEfficiency(t *testing.T) {
	// Work metered must scale with the edges touched by the frontier, not
	// with nnz(A): a single-column frontier on a large matrix is cheap.
	a := rmat.MustGenerate(rmat.ER, 9, 8, 3)
	blocks := spmat.Distribute2D(a, 2, 2)
	w, err := mpi.Run(4, func(c *mpi.Comm) error {
		g, err := grid.New(c, 2, 2)
		if err != nil {
			return err
		}
		xl := dvec.NewLayout(g, a.NCols, dvec.ColAligned)
		yl := dvec.NewLayout(g, a.NRows, dvec.RowAligned)
		fx := dvec.NewSparseV(xl)
		if xl.MyRange().Contains(0) {
			fx.Append(0, semiring.Self(0))
		}
		Mul(blocks[g.MyRow][g.MyCol], fx, semiring.MinParent, yl)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := w.TotalMeter().Work
	if total > int64(4*a.ColDegree(0)+64) {
		t.Fatalf("work %d for single-column frontier (deg %d): not work-efficient",
			total, a.ColDegree(0))
	}
}

func TestMulCommunicationPattern(t *testing.T) {
	// Expand is an allgather on the column comm (pr-1 msgs), fold an
	// all-to-all on the row comm (pc-1 msgs): pr+pc-2 messages per rank.
	const pr, pc = 3, 3
	a := rmat.MustGenerate(rmat.ER, 7, 8, 5)
	blocks := spmat.Distribute2D(a, pr, pc)
	w, err := mpi.Run(pr*pc, func(c *mpi.Comm) error {
		g, err := grid.New(c, pr, pc)
		if err != nil {
			return err
		}
		xl := dvec.NewLayout(g, a.NCols, dvec.ColAligned)
		yl := dvec.NewLayout(g, a.NRows, dvec.RowAligned)
		fx := dvec.NewSparseV(xl)
		r := xl.MyRange()
		for gi := r.Lo; gi < r.Hi; gi += 2 {
			fx.Append(gi, semiring.Self(int64(gi)))
		}
		Mul(blocks[g.MyRow][g.MyCol], fx, semiring.MinParent, yl)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < pr*pc; rank++ {
		if m := w.RankMeter(rank); m.Msgs != pr+pc-2 {
			t.Errorf("rank %d msgs = %d, want %d", rank, m.Msgs, pr+pc-2)
		}
	}
}

func TestMulPanicsOnWrongAlignment(t *testing.T) {
	_, err := mpi.Run(1, func(c *mpi.Comm) error {
		g, err := grid.New(c, 1, 1)
		if err != nil {
			return err
		}
		a := rmat.MustGenerate(rmat.ER, 4, 4, 1)
		blocks := spmat.Distribute2D(a, 1, 1)
		bad := dvec.NewSparseV(dvec.NewLayout(g, a.NCols, dvec.RowAligned))
		defer func() {
			if recover() == nil {
				panic("expected panic for row-aligned frontier")
			}
		}()
		Mul(blocks[0][0], bad, semiring.MinParent, dvec.NewLayout(g, a.NRows, dvec.RowAligned))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulScale12Grid4(b *testing.B) {
	a := rmat.MustGenerate(rmat.G500, 12, 16, 1)
	blocks := spmat.Distribute2D(a, 2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := mpi.Run(4, func(c *mpi.Comm) error {
			g, err := grid.New(c, 2, 2)
			if err != nil {
				return err
			}
			xl := dvec.NewLayout(g, a.NCols, dvec.ColAligned)
			yl := dvec.NewLayout(g, a.NRows, dvec.RowAligned)
			fx := dvec.NewSparseV(xl)
			r := xl.MyRange()
			for gi := r.Lo; gi < r.Hi; gi += 3 {
				fx.Append(gi, semiring.Self(int64(gi)))
			}
			Mul(blocks[g.MyRow][g.MyCol], fx, semiring.MinParent, yl)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestMergeSortedTriplesDuplicatesAcrossStreams(t *testing.T) {
	_, err := mpi.Run(1, func(c *mpi.Comm) error {
		g, err := grid.New(c, 1, 1)
		if err != nil {
			return err
		}
		outL := dvec.NewLayout(g, 10, dvec.RowAligned)
		// Three streams, overlapping indices, sorted within each stream.
		got := [][]int64{
			{1, 5, 100, 4, 9, 400},
			{1, 3, 101, 7, 2, 700},
			{4, 1, 401},
		}
		out := mergeSortedTriples(nil, got, semiring.MinParent, outL)
		want := map[int]semiring.Vertex{
			1: {Parent: 3, Root: 101}, // min parent of (5,100) and (3,101)
			4: {Parent: 1, Root: 401}, // min parent of (9,400) and (1,401)
			7: {Parent: 2, Root: 700},
		}
		if len(out.Idx) != len(want) {
			return fmt.Errorf("nnz %d, want %d", len(out.Idx), len(want))
		}
		for k, gi := range out.Idx {
			if out.Val[k] != want[gi] {
				return fmt.Errorf("idx %d: %v, want %v", gi, out.Val[k], want[gi])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeSortedTriplesEmpty(t *testing.T) {
	_, err := mpi.Run(1, func(c *mpi.Comm) error {
		g, _ := grid.New(c, 1, 1)
		out := mergeSortedTriples(nil, [][]int64{nil, {}, nil}, semiring.MinParent,
			dvec.NewLayout(g, 5, dvec.RowAligned))
		if out.LocalNnz() != 0 {
			return fmt.Errorf("nonzero from empty streams")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

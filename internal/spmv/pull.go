package spmv

import (
	"mcmdist/internal/dvec"
	"mcmdist/internal/obs"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// MulPull is the bottom-up ("pull") counterpart of Mul, implementing the
// direction optimization the paper lists as future work ("the bottom-up
// BFS in distributed memory"). Instead of scattering from frontier columns
// to rows, every not-yet-visited row scans its own adjacency list and stops
// at the first frontier neighbor, which touches far fewer edges when the
// frontier is a large fraction of the columns — the classic
// Beamer/Buluç-style 2D direction-optimized BFS step.
//
//   - rowAdj is the calling rank's local block in row-major (CSR) form:
//     rowAdj.Col(r) lists the local column neighbors of local row r.
//   - visited marks rows discovered in earlier iterations of the phase
//     (the π_r vector); their identities are allgathered along the grid
//     row so every rank can skip them, mirroring the replicated visited
//     bitmap of real direction-optimized implementations.
//
// The result is semantically interchangeable with Mul's: every reachable
// unvisited row appears exactly once with a parent that is one of its
// frontier neighbors and that parent's root. Under the default MinParent
// semiring the output is bit-identical to Mul's: RowMajor's counting-sort
// transpose lists each row's neighbors in ascending column order, so the
// early-exit first hit IS the minimum local frontier parent, and the fold
// combines cross-rank candidates with the same min — see docs/KERNELS.md.
// Under the randomized semirings (RandRoot, RandParent) the winner is
// hash-keyed rather than positional and the specific parent may differ,
// which is still harmless for MS-BFS: any discovering neighbor yields a
// valid alternating tree. Collective.
//
// The returned PullStats carry this rank's local scan counts so callers can
// adapt the push/pull decision: in matching (unlike plain BFS) a large
// frontier can consist mostly of structurally deficient columns whose
// neighborhoods never hit, making pull scans unproductive.
func MulPull(a *spmat.LocalMatrix, rowAdj *spmat.CSC, x *dvec.SparseV,
	visited *dvec.Dense, op semiring.AddOp, outL dvec.Layout) (*dvec.SparseV, PullStats) {
	g := x.L.G
	if x.L.Kind != dvec.ColAligned {
		panic("spmv: frontier must be column-aligned")
	}
	if outL.Kind != dvec.RowAligned {
		panic("spmv: output layout must be row-aligned")
	}
	if !visited.L.Same(outL) {
		panic("spmv: visited vector must share the output layout")
	}
	if rowAdj.NCols != a.Rows.Len() || rowAdj.NRows != a.Cols.Len() {
		panic("spmv: rowAdj does not match the local block")
	}

	ctx := g.RT
	tr := ctx.Tracer()
	expand0 := tr.Begin()

	// Expand the frontier along my grid column (same as the push direction)
	// into a dense lookup over my column slab: a bitmap answers the hot
	// membership test with one word load + mask (64 columns per cache-resident
	// word), and the rank's persistent scratch holds the per-column Vertex
	// values read only on a hit. The visited-row set is a second bitmap.
	payload := ctx.GetInts(3 * len(x.Idx))
	for k, gi := range x.Idx {
		payload = append(payload, int64(gi), x.Val[k].Parent, x.Val[k].Root)
	}
	frontier := ctx.Scratch("pull.cols", a.Cols.Len())
	fbmBuf := ctx.GetInts(dvec.BitmapWords(a.Cols.Len()))
	fbm := dvec.AsBitmap(fbmBuf, a.Cols.Len())
	skipBuf := ctx.GetInts(dvec.BitmapWords(a.Rows.Len()))
	skip := dvec.AsBitmap(skipBuf, a.Rows.Len())
	var nvis int
	if ctx.Overlap() {
		// Split-phase: start the frontier expand, build the local visited
		// list while peers' frontier pieces are in flight, start the
		// visited replication, then fill both scratches progressively as
		// pieces arrive. Entries land directly in the scratch — no slab
		// staging buffer at all.
		rqF := g.Col.IAllgathervParts(payload)
		lo := visited.L.MyRange().Lo
		mine := ctx.GetInts(0)
		for i, v := range visited.Local {
			if v != semiring.None {
				mine = append(mine, int64(lo+i))
			}
		}
		rqV := g.Row.IAllgathervParts(mine)
		for {
			_, piece, ok := rqF.Next()
			if !ok {
				break
			}
			for off := 0; off < len(piece); off += 3 {
				lcol := int(piece[off]) - a.Cols.Lo
				frontier.Set(lcol, semiring.Vertex{Parent: piece[off+1], Root: piece[off+2]})
				fbm.Set(lcol)
			}
		}
		rqF.Finish()
		ctx.PutInts(payload)
		for {
			_, piece, ok := rqV.Next()
			if !ok {
				break
			}
			skip.SetIndices(piece, a.Rows.Lo)
			nvis += len(piece)
		}
		rqV.Finish()
		ctx.PutInts(mine)
	} else {
		slab := g.Col.AllgathervInto(payload, ctx.GetInts(3*len(x.Idx)*g.PR))
		ctx.PutInts(payload)
		for off := 0; off < len(slab); off += 3 {
			lcol := int(slab[off]) - a.Cols.Lo
			frontier.Set(lcol, semiring.Vertex{Parent: slab[off+1], Root: slab[off+2]})
			fbm.Set(lcol)
		}
		ctx.PutInts(slab)

		// Replicate the visited-row set across my grid row: each rank
		// contributes the visited rows of its own piece of the row slab.
		lo := visited.L.MyRange().Lo
		mine := ctx.GetInts(0)
		for i, v := range visited.Local {
			if v != semiring.None {
				mine = append(mine, int64(lo+i))
			}
		}
		vis := g.Row.AllgathervInto(mine, ctx.GetInts(len(mine)*g.PC))
		ctx.PutInts(mine)
		skip.SetIndices(vis, a.Rows.Lo)
		nvis = len(vis)
		ctx.PutInts(vis)
	}
	// The dense visited/frontier bitmaps are scanned with packed bitwise
	// operations: 64 entries per word.
	g.World.AddWork(len(visited.Local)/64 + len(skip.Words) + nvis + 1)
	tr.End(obs.KindOp, "spmv.pull.expand", expand0, int64(len(x.Idx)))
	scan0 := tr.Begin()

	// Pull: every unvisited local row scans its adjacency and stops at the
	// first frontier neighbor. Hits are staged as (row, parent, root)
	// triples in per-worker arena buffers — the row range is cut into
	// contiguous chunks, so concatenating the buffers in worker order keeps
	// the hits sorted by row, exactly as the serial scan emits them. The
	// frontier and skip scratches are read-only during the scan.
	pool := ctx.Pool()
	width := pool.Width(rowAdj.NCols, pullGrain)
	hitsW := make([][]int64, width)
	for w := range hitsW {
		hitsW[w] = ctx.GetInts(0)
	}
	workW := make([]int64, width)
	pool.ForChunked(rowAdj.NCols, pullGrain, func(w, lo, hi int) {
		buf := hitsW[w]
		var wk int64
		for r := lo; r < hi; r++ {
			if skip.Has(r) {
				continue
			}
			for _, lc := range rowAdj.Col(r) {
				wk++
				if fbm.Has(lc) {
					gcol := int64(a.Cols.Lo + lc)
					cand := semiring.Multiply(gcol, frontier.Val[lc])
					buf = append(buf, int64(a.Rows.Lo+r), cand.Parent, cand.Root)
					break // direction optimization: first hit suffices
				}
			}
		}
		hitsW[w] = buf
		workW[w] = wk
	})
	work := len(skip.Words) // packed scan over the skip bitmap
	for _, wk := range workW {
		work += int(wk)
	}
	g.World.AddWork(work)
	tr.End(obs.KindOp, "spmv.pull.scan", scan0, int64(work))
	ctx.PutInts(fbmBuf)
	ctx.PutInts(skipBuf)
	fold0 := tr.Begin()

	// Fold: identical to the push direction.
	parts := ctx.GetParts(g.PC)
	nhits := 0
	for _, hits := range hitsW {
		nhits += len(hits) / 3
		for off := 0; off < len(hits); off += 3 {
			grow := int(hits[off])
			_, j := outL.OwnerCoords(grow)
			parts[j] = append(parts[j], hits[off], hits[off+1], hits[off+2])
		}
		ctx.PutInts(hits)
	}
	var out *dvec.SparseV
	if ctx.Overlap() {
		out = foldOverlap(ctx, g.Row, parts, op, outL)
	} else {
		got, fold := g.Row.AlltoallvInto(parts, ctx.GetInts(0))
		ctx.PutParts(parts)
		out = mergeSortedTriples(ctx, got, op, outL)
		ctx.PutInts(fold)
	}
	g.World.AddWork(out.LocalNnz())
	tr.End(obs.KindOp, "spmv.fold", fold0, int64(out.LocalNnz()))
	return out, PullStats{Scanned: work, Hits: nhits}
}

// PullStats reports one rank's local bottom-up scan productivity.
type PullStats struct {
	Scanned int // adjacency entries examined (including bitmap words)
	Hits    int // rows that found a frontier parent
}

// RowMajor converts a local block to the row-major (CSR) adjacency MulPull
// needs: the returned matrix's column r lists the local column indices
// adjacent to local row r.
func RowMajor(a *spmat.LocalMatrix) *spmat.CSC {
	return a.M.ToCSC().Transpose()
}

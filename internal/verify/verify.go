// Package verify provides independent certificates for matching results:
// structural validity, maximality (no free edge), and maximum cardinality
// via the König–Egerváry theorem — a minimum vertex cover of the same size
// as the matching, constructed from the alternating-reachability sets. The
// certificate check never runs another matching algorithm, so it cannot
// share a bug with the solvers it audits.
package verify

import (
	"fmt"

	"mcmdist/internal/matching"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// Valid checks mate-vector consistency and that matched pairs are edges.
func Valid(a *spmat.CSC, m *matching.Matching) error {
	return m.Validate(a)
}

// Maximal reports an error when some edge joins two unmatched vertices.
func Maximal(a *spmat.CSC, m *matching.Matching) error {
	for j := 0; j < a.NCols; j++ {
		if m.MateC[j] != semiring.None {
			continue
		}
		for _, i := range a.Col(j) {
			if m.MateR[i] == semiring.None {
				return fmt.Errorf("verify: free edge (%d, %d) — matching not maximal", i, j)
			}
		}
	}
	return nil
}

// alternatingReach computes the sets Z_C ⊆ C and Z_R ⊆ R of vertices
// reachable from unmatched columns along alternating paths (free edge from
// C to R, matched edge from R to C).
func alternatingReach(a *spmat.CSC, m *matching.Matching) (zc, zr []bool) {
	zc = make([]bool, a.NCols)
	zr = make([]bool, a.NRows)
	var queue []int
	for j := 0; j < a.NCols; j++ {
		if m.MateC[j] == semiring.None {
			zc[j] = true
			queue = append(queue, j)
		}
	}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		for _, i := range a.Col(j) {
			if int64(i) == m.MateC[j] || zr[i] {
				continue // matched edges are traversed R->C only
			}
			zr[i] = true
			if mj := m.MateR[i]; mj != semiring.None && !zc[mj] {
				zc[mj] = true
				queue = append(queue, int(mj))
			}
		}
	}
	return zc, zr
}

// Maximum certifies that m is a maximum cardinality matching by König's
// theorem: it builds the vertex cover K = (C \ Z_C) ∪ (R ∩ Z_R) from the
// alternating reachability sets, and checks that (a) K covers every edge
// and (b) |K| equals the matching cardinality. Any matching is at most a
// covering set's size, so equality proves maximality of cardinality.
func Maximum(a *spmat.CSC, m *matching.Matching) error {
	if err := Valid(a, m); err != nil {
		return err
	}
	zc, zr := alternatingReach(a, m)

	coverSize := 0
	inCoverC := make([]bool, a.NCols)
	inCoverR := make([]bool, a.NRows)
	for j := 0; j < a.NCols; j++ {
		if !zc[j] {
			inCoverC[j] = true
			coverSize++
		}
	}
	for i := 0; i < a.NRows; i++ {
		if zr[i] {
			inCoverR[i] = true
			coverSize++
		}
	}
	for j := 0; j < a.NCols; j++ {
		for _, i := range a.Col(j) {
			if !inCoverC[j] && !inCoverR[i] {
				return fmt.Errorf("verify: edge (%d, %d) uncovered — augmenting path exists, matching not maximum", i, j)
			}
		}
	}
	if card := m.Cardinality(); coverSize != card {
		return fmt.Errorf("verify: König cover size %d != matching cardinality %d", coverSize, card)
	}
	return nil
}

// Deficiency returns how far the matching is from perfect on the column
// side: |C| - |M|.
func Deficiency(a *spmat.CSC, m *matching.Matching) int {
	return a.NCols - m.Cardinality()
}

// HallViolator returns, for a graph whose maximum matching leaves columns
// unmatched, a set S of columns with |N(S)| < |S| — the Hall-condition
// violator certifying that no perfect matching of the columns can exist.
// The set is simply the alternating reachability closure of the unmatched
// columns: every row it can reach is matched back into it, so its
// neighborhood is smaller by exactly the deficiency. Returns nil when the
// matching saturates all columns. m must be a maximum matching (callers
// can certify with Maximum first).
func HallViolator(a *spmat.CSC, m *matching.Matching) []int {
	zc, zr := alternatingReach(a, m)
	var s []int
	for j, in := range zc {
		if in {
			s = append(s, j)
		}
	}
	if len(s) == 0 {
		return nil
	}
	// Sanity: |N(S)| must be < |S|; derive |N(S)| = |Z_R| by construction.
	nbr := 0
	for _, in := range zr {
		if in {
			nbr++
		}
	}
	if nbr >= len(s) {
		// Only possible if m was not maximum; refuse to emit a bogus
		// certificate.
		return nil
	}
	return s
}

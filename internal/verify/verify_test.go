package verify

import (
	"math/rand"
	"testing"

	"mcmdist/internal/matching"
	"mcmdist/internal/rmat"
	"mcmdist/internal/spmat"
)

func randomBipartite(rng *rand.Rand, nr, nc, m int) *spmat.CSC {
	c := spmat.NewCOO(nr, nc)
	for k := 0; k < m; k++ {
		c.Add(rng.Intn(nr), rng.Intn(nc))
	}
	return c.ToCSC()
}

func TestMaximumAcceptsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		nr, nc := 1+rng.Intn(50), 1+rng.Intn(50)
		a := randomBipartite(rng, nr, nc, rng.Intn(5*(nr+nc)))
		m := matching.HopcroftKarp(a, nil)
		if err := Maximum(a, m); err != nil {
			t.Fatalf("trial %d: oracle rejected: %v", trial, err)
		}
	}
}

func TestMaximumRejectsSubOptimal(t *testing.T) {
	// Path c0-r0-c1: perfect matching has size 2 (c0-r0? no...). Graph:
	// r0 adjacent to c0 and c1; r1 adjacent to c1. Matching {(r0,c1)} is
	// maximal but not maximum ({(r0,c0),(r1,c1)} is bigger).
	c := spmat.NewCOO(2, 2)
	c.Add(0, 0)
	c.Add(0, 1)
	c.Add(1, 1)
	a := c.ToCSC()
	m := matching.NewMatching(2, 2)
	m.Match(0, 1)
	if err := Maximal(a, m); err != nil {
		t.Fatalf("matching is maximal: %v", err)
	}
	if err := Maximum(a, m); err == nil {
		t.Fatal("sub-optimal matching certified as maximum")
	}
}

func TestMaximalDetectsFreeEdge(t *testing.T) {
	c := spmat.NewCOO(2, 2)
	c.Add(0, 0)
	c.Add(1, 1)
	a := c.ToCSC()
	m := matching.NewMatching(2, 2)
	m.Match(0, 0)
	if err := Maximal(a, m); err == nil {
		t.Fatal("free edge (1,1) not detected")
	}
	m.Match(1, 1)
	if err := Maximal(a, m); err != nil {
		t.Fatalf("perfect matching rejected: %v", err)
	}
}

func TestMaximumRejectsInvalid(t *testing.T) {
	c := spmat.NewCOO(2, 2)
	c.Add(0, 0)
	a := c.ToCSC()
	m := matching.NewMatching(2, 2)
	m.MateR[0] = 1 // not an edge, inconsistent
	if err := Maximum(a, m); err == nil {
		t.Fatal("invalid matching certified")
	}
}

func TestMaximumOnStructures(t *testing.T) {
	for _, p := range []rmat.Params{rmat.G500, rmat.SSCA, rmat.ER} {
		a := rmat.MustGenerate(p, 7, 4, 3)
		m := matching.MSBFSGraft(a, nil)
		if err := Maximum(a, m); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
	}
}

func TestMaximumEmptyGraph(t *testing.T) {
	a := spmat.NewCOO(4, 4).ToCSC()
	m := matching.NewMatching(4, 4)
	if err := Maximum(a, m); err != nil {
		t.Fatalf("empty graph empty matching rejected: %v", err)
	}
}

func TestDeficiency(t *testing.T) {
	c := spmat.NewCOO(3, 3)
	c.Add(0, 0)
	a := c.ToCSC()
	m := matching.HopcroftKarp(a, nil)
	if d := Deficiency(a, m); d != 2 {
		t.Fatalf("deficiency = %d, want 2", d)
	}
}

// TestKoenigCoverSizeAlwaysMatches is the property-based heart of the
// certificate: for every random graph, the cover built from the oracle
// matching has exactly the matching's size and covers all edges.
func TestKoenigCoverSizeAlwaysMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nr, nc := 1+rng.Intn(30), 1+rng.Intn(30)
		a := randomBipartite(rng, nr, nc, rng.Intn(4*(nr+nc)))
		m := matching.PothenFan(a, nil)
		if err := Maximum(a, m); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestHallViolator(t *testing.T) {
	// 3 columns all adjacent only to row 0: deficiency 2, and the violator
	// must contain all three columns with |N(S)| = 1.
	c := spmat.NewCOO(2, 3)
	c.Add(0, 0)
	c.Add(0, 1)
	c.Add(0, 2)
	a := c.ToCSC()
	m := matching.HopcroftKarp(a, nil)
	s := HallViolator(a, m)
	if len(s) != 3 {
		t.Fatalf("violator %v, want all 3 columns", s)
	}
	// Neighborhood check.
	nbr := map[int]bool{}
	for _, j := range s {
		for _, i := range a.Col(j) {
			nbr[i] = true
		}
	}
	if len(nbr) >= len(s) {
		t.Fatalf("|N(S)| = %d not < |S| = %d", len(nbr), len(s))
	}
}

func TestHallViolatorNilWhenSaturated(t *testing.T) {
	c := spmat.NewCOO(2, 2)
	c.Add(0, 0)
	c.Add(1, 1)
	a := c.ToCSC()
	m := matching.HopcroftKarp(a, nil)
	if s := HallViolator(a, m); s != nil {
		t.Fatalf("violator %v on a perfectly matchable graph", s)
	}
}

func TestHallViolatorPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		nr, nc := 1+rng.Intn(30), 1+rng.Intn(30)
		a := randomBipartite(rng, nr, nc, rng.Intn(3*(nr+nc)))
		m := matching.HopcroftKarp(a, nil)
		s := HallViolator(a, m)
		if Deficiency(a, m) == 0 {
			if s != nil {
				t.Fatalf("trial %d: violator on saturated graph", trial)
			}
			continue
		}
		if s == nil {
			t.Fatalf("trial %d: deficiency %d but no violator", trial, Deficiency(a, m))
		}
		nbr := map[int]bool{}
		for _, j := range s {
			for _, i := range a.Col(j) {
				nbr[i] = true
			}
		}
		if len(s)-len(nbr) != Deficiency(a, m) {
			t.Fatalf("trial %d: |S|-|N(S)| = %d, deficiency %d",
				trial, len(s)-len(nbr), Deficiency(a, m))
		}
	}
}

package rt

import (
	"math/rand"
	"sort"
	"testing"

	"mcmdist/internal/mpi"
	"mcmdist/internal/semiring"
)

func TestClassForCapacities(t *testing.T) {
	cases := []struct{ n, cls int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2}, {4096, 6},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.cls {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.cls)
		}
		if c.n > 0 && minClassCap<<classFor(c.n) < c.n {
			t.Errorf("classFor(%d) capacity %d < n", c.n, minClassCap<<classFor(c.n))
		}
	}
}

func TestPutClassInvariant(t *testing.T) {
	// Whatever class a buffer is pooled under, its capacity must satisfy
	// that class, so Get's cap >= n promise holds.
	for _, bufCap := range []int{0, 1, 63, 64, 65, 127, 128, 200, 4095, 4096} {
		cls, ok := putClass(bufCap)
		if bufCap < minClassCap {
			if ok {
				t.Errorf("putClass(%d) pooled a sub-minimum buffer", bufCap)
			}
			continue
		}
		if !ok {
			t.Errorf("putClass(%d) refused a poolable buffer", bufCap)
		}
		if minClassCap<<cls > bufCap {
			t.Errorf("putClass(%d) = class %d needing cap %d", bufCap, cls, minClassCap<<cls)
		}
	}
}

func TestGetPutReusesBacking(t *testing.T) {
	c := New(nil)
	b := c.GetInts(100)
	if len(b) != 0 || cap(b) < 100 {
		t.Fatalf("GetInts(100): len %d cap %d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	first := &b[0]
	c.PutInts(b)
	b2 := c.GetInts(50) // same class (64..128 holds neither; 100→class 1, 50→class 0)
	_ = b2
	b3 := c.GetInts(100)
	if len(b3) != 0 || cap(b3) < 100 {
		t.Fatalf("reborrow: len %d cap %d", len(b3), cap(b3))
	}
	b3 = append(b3, 9)
	if &b3[0] != first {
		t.Error("GetInts did not reuse the pooled backing array")
	}
}

func TestPutDropsTinyBuffers(t *testing.T) {
	c := New(nil)
	c.PutInts(make([]int64, 0, 10))
	b := c.GetInts(5)
	if cap(b) < minClassCap {
		t.Errorf("Get after tiny Put returned cap %d < class capacity %d", cap(b), minClassCap)
	}
	c.PutBools(make([]bool, 10))
	bl := c.GetBools(20)
	if len(bl) != 20 || cap(bl) < minClassCap {
		t.Errorf("GetBools after tiny Put: len %d cap %d", len(bl), cap(bl))
	}
}

func TestOutstandingGetsNeverAlias(t *testing.T) {
	c := New(nil)
	var bufs [][]int64
	for i := 0; i < 8; i++ {
		b := c.GetInts(64)
		b = append(b, int64(i))
		bufs = append(bufs, b)
	}
	for i := range bufs {
		for j := i + 1; j < len(bufs); j++ {
			if &bufs[i][0] == &bufs[j][0] {
				t.Fatalf("outstanding borrows %d and %d share backing", i, j)
			}
		}
	}
	for i, b := range bufs {
		if b[0] != int64(i) {
			t.Fatalf("borrow %d clobbered: %d", i, b[0])
		}
	}
}

func TestMaxPerClassBound(t *testing.T) {
	c := New(nil)
	for i := 0; i < 3*maxPerClass; i++ {
		c.PutInts(make([]int64, 0, minClassCap))
	}
	if got := len(c.ints[0]); got != maxPerClass {
		t.Errorf("class 0 holds %d free buffers, want max %d", got, maxPerClass)
	}
}

func TestGetVertsRoundTrip(t *testing.T) {
	c := New(nil)
	v := c.GetVerts(10)
	v = append(v, semiring.Vertex{Parent: 1, Root: 2})
	p0 := &v[0]
	c.PutVerts(v)
	v2 := c.GetVerts(10)
	v2 = append(v2, semiring.Vertex{Parent: 3, Root: 4})
	if &v2[0] != p0 {
		t.Error("PutVerts/GetVerts did not round-trip the backing array")
	}
}

func TestGetPartsRoundTrip(t *testing.T) {
	c := New(nil)
	ps := c.GetParts(4)
	if len(ps) != 4 {
		t.Fatalf("GetParts(4) len %d", len(ps))
	}
	for d := range ps {
		for k := 0; k < 100; k++ {
			ps[d] = append(ps[d], int64(d*100+k))
		}
	}
	backing := make([]*int64, 4)
	for d := range ps {
		backing[d] = &ps[d][0]
	}
	c.PutParts(ps)
	ps2 := c.GetParts(4)
	for d := range ps2 {
		if len(ps2[d]) != 0 {
			t.Fatalf("reborrowed part %d not reset: len %d", d, len(ps2[d]))
		}
		ps2[d] = append(ps2[d], 1)
		if &ps2[d][0] != backing[d] {
			t.Errorf("part %d backing not reused", d)
		}
	}
	// Growing the set keeps the old backings where possible.
	c.PutParts(ps2)
	ps3 := c.GetParts(6)
	if len(ps3) != 6 {
		t.Fatalf("GetParts(6) len %d", len(ps3))
	}
	ps3[0] = append(ps3[0], 1)
	if &ps3[0][0] != backing[0] {
		t.Error("grown parts set dropped existing backing 0")
	}
}

func TestScratchEpochSemantics(t *testing.T) {
	c := New(nil)
	s := c.Scratch("x", 10)
	if s.Len() < 10 {
		t.Fatalf("scratch len %d", s.Len())
	}
	for i := 0; i < 10; i++ {
		if s.Has(i) {
			t.Fatalf("fresh scratch has %d", i)
		}
	}
	s.Set(3, semiring.Vertex{Parent: 7, Root: 8})
	s.Mark(5)
	if !s.Has(3) || !s.Has(5) || s.Has(4) {
		t.Fatal("Set/Mark/Has broken")
	}
	if s.Val[3] != (semiring.Vertex{Parent: 7, Root: 8}) {
		t.Fatalf("value: %v", s.Val[3])
	}
	// Re-borrowing invalidates without zeroing.
	s2 := c.Scratch("x", 10)
	if s2 != s {
		t.Fatal("same tag, same size should return the same scratch")
	}
	if s2.Has(3) || s2.Has(5) {
		t.Fatal("re-borrow did not invalidate previous epoch")
	}
	// Distinct tags are independent even at the same size.
	a, b := c.Scratch("a", 8), c.Scratch("b", 8)
	if a == b {
		t.Fatal("distinct tags share a scratch")
	}
	a.Mark(1)
	if b.Has(1) {
		t.Fatal("tag b sees tag a's mark")
	}
}

func TestScratchGrowAndEpochWrap(t *testing.T) {
	c := New(nil)
	s := c.Scratch("g", 4)
	s.Mark(0)
	s = c.Scratch("g", 100) // regrow
	if s.Len() < 100 {
		t.Fatalf("regrown len %d", s.Len())
	}
	if s.Has(0) {
		t.Fatal("regrown scratch kept old marks")
	}
	// Force the uint32 epoch to wrap: stale stamps must not read as present.
	s.Mark(2)
	s.epoch = ^uint32(0) // next borrow increments to 0 and must clear
	s2 := c.Scratch("g", 100)
	if s2.epoch == 0 {
		t.Fatal("epoch left at zero after wrap")
	}
	for i := 0; i < 100; i++ {
		if s2.Has(i) {
			t.Fatalf("index %d present after epoch wrap", i)
		}
	}
}

func TestDisabledAndNilArePassThrough(t *testing.T) {
	for _, c := range []*Ctx{nil, NewDisabled(nil)} {
		if c.Enabled() {
			t.Fatal("Enabled on nil/disabled ctx")
		}
		b := c.GetInts(10)
		if len(b) != 0 || cap(b) < 10 {
			t.Fatalf("disabled GetInts: len %d cap %d", len(b), cap(b))
		}
		b = append(b, 1)
		c.PutInts(b)
		b2 := c.GetInts(10)
		b2 = append(b2, 2)
		if &b2[0] == &b[0] {
			t.Fatal("disabled ctx pooled a buffer")
		}
		bl := c.GetBools(7)
		if len(bl) != 7 {
			t.Fatalf("disabled GetBools len %d", len(bl))
		}
		for i, v := range bl {
			if v {
				t.Fatalf("disabled GetBools not zeroed at %d", i)
			}
		}
		c.PutBools(bl)
		ps := c.GetParts(3)
		if len(ps) != 3 {
			t.Fatalf("disabled GetParts len %d", len(ps))
		}
		c.PutParts(ps)
		cost := c.Track("op", func() {})
		if cost.Meter != (mpi.Meter{}) {
			t.Fatalf("nil-comm Track metered %+v", cost.Meter)
		}
	}
	// Disabled scratch is fresh each borrow.
	d := NewDisabled(nil)
	s1 := d.Scratch("t", 5)
	s1.Mark(1)
	s2 := d.Scratch("t", 5)
	if s2.Has(1) {
		t.Fatal("disabled scratch persisted state")
	}
}

func TestSortRecordsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, stride := range []int{1, 2, 3, 4} {
		n := 200
		buf := make([]int64, n*stride)
		for i := range buf {
			buf[i] = int64(rng.Intn(20))
		}
		type rec []int64
		want := make([]rec, n)
		for i := 0; i < n; i++ {
			want[i] = append(rec(nil), buf[i*stride:(i+1)*stride]...)
		}
		sort.SliceStable(want, func(i, j int) bool {
			if want[i][0] != want[j][0] {
				return want[i][0] < want[j][0]
			}
			return stride > 1 && want[i][1] < want[j][1]
		})
		SortRecords(buf, stride)
		for i := 0; i < n; i++ {
			got := buf[i*stride : (i+1)*stride]
			if got[0] != want[i][0] {
				t.Fatalf("stride %d rec %d key: %d, want %d", stride, i, got[0], want[i][0])
			}
			if stride > 1 && got[1] != want[i][1] {
				t.Fatalf("stride %d rec %d tie: %d, want %d", stride, i, got[1], want[i][1])
			}
		}
	}
}

func TestSortRecordsPanicsOnRaggedBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for ragged buffer")
		}
	}()
	SortRecords(make([]int64, 7), 3)
}

// TestCrossRankNoAliasing: each rank's context pools its own storage; a
// buffer borrowed on rank r, filled with r's pattern, must still hold that
// pattern after every rank has borrowed, written, returned, and re-borrowed
// concurrently. Run under -race this is also the data-race guard for the
// arena.
func TestCrossRankNoAliasing(t *testing.T) {
	const p = 8
	_, err := mpi.Run(p, func(c *mpi.Comm) error {
		ctx := New(c)
		for round := 0; round < 50; round++ {
			b := ctx.GetInts(1 << uint(round%10))
			v := ctx.GetVerts(256)
			for k := 0; k < 128; k++ {
				b = append(b, int64(c.Rank()*1_000_000+round*1000+k))
				v = append(v, semiring.Self(int64(c.Rank())))
			}
			c.Barrier() // maximal interleaving across ranks
			for k := 0; k < 128; k++ {
				if b[k] != int64(c.Rank()*1_000_000+round*1000+k) {
					t.Errorf("rank %d round %d: int buffer clobbered at %d", c.Rank(), round, k)
				}
				if v[k] != semiring.Self(int64(c.Rank())) {
					t.Errorf("rank %d round %d: vert buffer clobbered at %d", c.Rank(), round, k)
				}
			}
			ctx.PutInts(b)
			ctx.PutVerts(v)
			s := ctx.Scratch("cross", 64)
			s.Set(c.Rank()%64, semiring.Self(int64(c.Rank())))
			c.Barrier()
			if !s.Has(c.Rank()%64) || s.Val[c.Rank()%64] != semiring.Self(int64(c.Rank())) {
				t.Errorf("rank %d round %d: scratch clobbered", c.Rank(), round)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrackAccumulatesMeterDelta(t *testing.T) {
	_, err := mpi.Run(2, func(c *mpi.Comm) error {
		ctx := New(c)
		m1 := ctx.Track("gather", func() {
			c.Allgatherv([]int64{1, 2, 3})
		}).Meter
		if m1.Msgs != 1 {
			t.Errorf("rank %d: tracked msgs %d, want 1", c.Rank(), m1.Msgs)
		}
		ctx.Track("gather", func() {
			c.Allgatherv([]int64{4})
		})
		ops := ctx.OpCosts()
		if got := ops["gather"].Meter.Msgs; got != 2 {
			t.Errorf("rank %d: ledger msgs %d, want 2", c.Rank(), got)
		}
		if ops["gather"].Wall <= 0 {
			t.Errorf("rank %d: no wall time accumulated", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBindAcrossWorlds: a context reused across two mpi.Run worlds keeps its
// pooled storage and ledger but meters against the newly bound comm.
func TestBindAcrossWorlds(t *testing.T) {
	ctx := New(nil)
	var firstBacking *int64
	for world := 0; world < 2; world++ {
		_, err := mpi.Run(1, func(c *mpi.Comm) error {
			ctx.Bind(c)
			b := ctx.GetInts(100)
			b = append(b, 1)
			if world == 0 {
				firstBacking = &b[0]
			} else if &b[0] != firstBacking {
				t.Error("pooled storage not carried across worlds")
			}
			ctx.PutInts(b)
			ctx.Track("solve", func() { c.Allreduce(mpi.OpSum, 1) })
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := ctx.OpCosts()["solve"].Meter.Msgs; got != 0 {
		// single-rank Allreduce meters 0 msgs (depth 0); the point is the
		// ledger accumulated across both worlds without panicking.
		_ = got
	}
}

func TestScratchShardsInvalidateOnReborrow(t *testing.T) {
	c := New(nil)
	ss := c.ScratchShards("shard.test", 3, 100)
	if len(ss) != 3 {
		t.Fatalf("got %d shards", len(ss))
	}
	for w, s := range ss {
		if s.Len() < 100 {
			t.Fatalf("shard %d len %d", w, s.Len())
		}
		if s.Has(w) {
			t.Fatalf("shard %d has entry %d before Set", w, w)
		}
		s.Set(w, semiring.Vertex{Parent: int64(w)})
	}
	// Distinct shards must not alias.
	for w, s := range ss {
		for i := 0; i < 3; i++ {
			if s.Has(i) != (i == w) {
				t.Fatalf("shard %d aliasing at %d", w, i)
			}
		}
	}
	// Re-borrow invalidates all entries and may grow the set.
	ss2 := c.ScratchShards("shard.test", 4, 100)
	for w, s := range ss2 {
		if s.Has(w % 3) {
			t.Fatalf("shard %d kept stale entry after re-borrow", w)
		}
	}
	if ss2[0] != ss[0] {
		t.Fatal("re-borrow did not reuse shard storage")
	}
}

func TestScratchShardsDisabledCtx(t *testing.T) {
	c := NewDisabled(nil)
	ss := c.ScratchShards("x", 2, 50)
	if len(ss) != 2 || ss[0] == ss[1] {
		t.Fatal("disabled ctx must hand out distinct fresh shards")
	}
	ss[0].Set(7, semiring.Vertex{})
	if !ss[0].Has(7) || ss[1].Has(7) {
		t.Fatal("disabled shards broken")
	}
}

func TestCtxSortRecordsMatchesSerial(t *testing.T) {
	c := New(nil)
	c.EnsureThreads(4)
	defer c.Close()
	rng := rand.New(rand.NewSource(42))
	for _, stride := range []int{1, 2, 3} {
		for _, nrec := range []int{0, 1, 100, sortGrain - 1, sortGrain * 2, sortGrain*4 + 17} {
			buf := make([]int64, nrec*stride)
			for i := 0; i < nrec; i++ {
				buf[i*stride] = int64(rng.Intn(nrec/4 + 1)) // plenty of key ties
				for f := 1; f < stride; f++ {
					buf[i*stride+f] = int64(i) // unique second field, like source indices
				}
			}
			want := append([]int64(nil), buf...)
			SortRecords(want, stride)
			c.SortRecords(buf, stride)
			for i := range buf {
				if buf[i] != want[i] {
					t.Fatalf("stride=%d nrec=%d: parallel sort diverges at %d: %d vs %d",
						stride, nrec, i, buf[i], want[i])
				}
			}
		}
	}
}

func TestEnsureThreadsLifecycle(t *testing.T) {
	c := New(nil)
	if c.Threads() != 1 || c.Pool() != nil {
		t.Fatal("fresh ctx must have inline pool")
	}
	c.EnsureThreads(4)
	p := c.Pool()
	if p.Threads() != 4 {
		t.Fatalf("threads %d", p.Threads())
	}
	c.EnsureThreads(4)
	if c.Pool() != p {
		t.Fatal("same-size EnsureThreads must keep the pool")
	}
	c.EnsureThreads(2)
	if c.Pool() == p || c.Threads() != 2 {
		t.Fatal("resize must replace the pool")
	}
	c.Close()
	if c.Pool() != nil || c.Threads() != 1 {
		t.Fatal("Close must drop to the inline pool")
	}
	c.Close() // idempotent
	var nilCtx *Ctx
	nilCtx.EnsureThreads(8)
	nilCtx.Close()
	if nilCtx.Threads() != 1 {
		t.Fatal("nil ctx must report 1 thread")
	}
}

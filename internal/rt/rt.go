// Package rt provides the per-rank runtime context: the reusable state one
// MPI-style rank carries through a distributed matching computation —
// whether that rank is a goroutine of the in-process backend or an OS
// process on the TCP transport makes no difference here, since a Ctx never
// holds cross-rank state.
// Every MS-BFS level used to re-allocate its world — the SpMV expand
// payload, the dense scratch-and-present pair, the fold part buffers, the
// INVERT record buffers — thousands of short-lived slices per rank per
// level. A Ctx owns that state instead:
//
//   - a size-classed buffer arena (GetInts/PutInts, GetVerts/PutVerts,
//     GetBools/PutBools, GetParts/PutParts) with strict borrow/return
//     discipline: a lent buffer never outlives the primitive call that
//     borrowed it, so pooled storage can never alias live algorithm state;
//   - epoch-stamped dense scratch (Scratch) that replaces the per-call
//     "allocate scratch + present" pattern: instead of re-zeroing, each
//     borrow bumps an epoch and stale entries are simply not Has();
//   - the per-op wall-clock / communication-meter ledger (Track), folded in
//     from the solver so metering hangs off the rank's context rather than
//     off the communicator alone.
//
// A Ctx belongs to exactly one rank goroutine at a time and is not
// internally synchronized. It may be rebound (Bind) to a fresh communicator
// and reused across solves — the session layer does this so repeated
// matchings on one DistributedGraph run allocation-quiet — but never shared
// between concurrently running ranks.
//
// A nil or disabled Ctx is always safe: every Get falls back to a plain
// allocation and every Put is a no-op, which is also the "pooling off"
// arm of the equivalence tests.
package rt

import (
	"sort"
	"time"

	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
	"mcmdist/internal/parallel"
	"mcmdist/internal/semiring"
)

const (
	// minClassCap is the smallest pooled capacity; smaller requests round up.
	minClassCap = 64
	// numClasses spans capacities 64 << 0 .. 64 << 25 (~2 G elements).
	numClasses = 26
	// maxPerClass bounds how many free buffers one class retains, so the
	// arena's footprint stays proportional to the algorithm's live set.
	maxPerClass = 4
)

// Ctx is one rank's runtime context. The zero value is not usable; construct
// with New or NewDisabled.
type Ctx struct {
	comm    *mpi.Comm
	enabled bool
	// noOverlap selects the fully blocking collective paths in the layers
	// above (spmv, dvec, core). Zero value = overlap on, so contexts reused
	// from before the split-phase engine pick up overlap automatically.
	noOverlap bool

	ints  [numClasses][][]int64
	verts [numClasses][][]semiring.Vertex
	bools [numClasses][][]bool
	parts [][][]int64 // free personalized-collective send-buffer sets

	scratch map[string]*Scratch
	shards  map[string][]*Scratch

	pool *parallel.Pool

	ops map[string]OpCost

	// trc is the rank's span tracer (nil = tracing off). Track records one
	// op span per tracked section into it, which is what puts the Table I
	// primitives on the timeline.
	trc *obs.Tracer
}

// New returns an enabled context bound to comm.
func New(comm *mpi.Comm) *Ctx {
	return &Ctx{comm: comm, enabled: true, scratch: make(map[string]*Scratch)}
}

// NewDisabled returns a context whose arena is pass-through: every Get
// allocates fresh storage and every Put discards. Used by the pooling
// on/off equivalence tests and by Config.DisableReuse.
func NewDisabled(comm *mpi.Comm) *Ctx {
	return &Ctx{comm: comm, enabled: false}
}

// Bind re-attaches the context to a new communicator. Buffer and scratch
// contents survive, which is the point: a session reuses one context per
// rank across solves, each solve running on a fresh simulated world.
func (c *Ctx) Bind(comm *mpi.Comm) {
	if c != nil {
		c.comm = comm
	}
}

// Comm returns the bound communicator (nil on a nil context).
func (c *Ctx) Comm() *mpi.Comm {
	if c == nil {
		return nil
	}
	return c.comm
}

// Enabled reports whether the arena actually pools (false for nil or
// disabled contexts).
func (c *Ctx) Enabled() bool { return c != nil && c.enabled }

// SetOverlap selects between the split-phase overlapped communication
// schedules (true, the default) and the fully blocking reference paths
// (false; Config.DisableOverlap). Safe on a nil context (no-op).
func (c *Ctx) SetOverlap(on bool) {
	if c != nil {
		c.noOverlap = !on
	}
}

// Overlap reports whether the compute/communication-overlap schedules are
// active. A nil context runs the blocking reference paths.
func (c *Ctx) Overlap() bool { return c != nil && !c.noOverlap }

// SetTracer attaches (or, with nil, detaches) the rank's span tracer. The
// solver wires the same tracer into the context and its communicator at
// rank setup, so op spans and collective spans land on one timeline. Safe
// on a nil context.
func (c *Ctx) SetTracer(t *obs.Tracer) {
	if c != nil {
		c.trc = t
	}
}

// Tracer returns the rank's span tracer (nil when tracing is off; a nil
// tracer's methods are no-ops, so callers need not check).
func (c *Ctx) Tracer() *obs.Tracer {
	if c == nil {
		return nil
	}
	return c.trc
}

// EnsureThreads sizes the context's persistent worker pool — the rank's
// intra-node thread team, the analogue of the paper's OpenMP threads — to t.
// Idempotent when the size already matches; resizing closes the old team and
// parks a new one. t <= 1 (and a disabled-arena context alike) keeps the
// inline nil pool. Safe on a nil context.
func (c *Ctx) EnsureThreads(t int) {
	if c == nil {
		return
	}
	if t < 1 {
		t = 1
	}
	if c.pool.Threads() == t {
		return
	}
	c.pool.Close()
	c.pool = parallel.NewPool(t)
}

// Pool returns the context's worker pool. A nil return (nil context, or
// EnsureThreads never called / called with t <= 1) is itself a valid pool
// that runs every region inline.
func (c *Ctx) Pool() *parallel.Pool {
	if c == nil {
		return nil
	}
	return c.pool
}

// Threads returns the worker-pool team size (1 when there is no pool).
func (c *Ctx) Threads() int { return c.Pool().Threads() }

// ThreadStats returns the pool's cumulative telemetry (zero-valued with
// Threads=1 when there is no pool).
func (c *Ctx) ThreadStats() parallel.Stats { return c.Pool().Stats() }

// Close releases the context's resources with OS-visible lifetime: the
// parked worker goroutines. Buffers and scratch are plain garbage-collected
// memory and need no release, but parked goroutines are GC roots — a context
// that had EnsureThreads called must be Closed when its rank is done (the
// solver does this for contexts it creates; sessions close their cached
// contexts via DistributedGraph.Close). Safe on a nil context, idempotent,
// and the context remains usable afterwards with an inline pool.
func (c *Ctx) Close() {
	if c == nil {
		return
	}
	c.pool.Close()
	c.pool = nil
}

// classFor returns the size class whose capacity (minClassCap << class)
// holds n elements.
func classFor(n int) int {
	cls, cap := 0, minClassCap
	for cap < n && cls < numClasses-1 {
		cap <<= 1
		cls++
	}
	return cls
}

// putClass returns the largest class whose capacity the buffer satisfies,
// or ok=false when the buffer is too small to pool. Storing under that
// class keeps the Get invariant: every pooled buffer of class c has
// capacity >= minClassCap << c.
func putClass(bufCap int) (cls int, ok bool) {
	if bufCap < minClassCap {
		return 0, false
	}
	cls = classFor(bufCap)
	if minClassCap<<cls > bufCap {
		cls--
	}
	return cls, true
}

// GetInts borrows an int64 buffer with length 0 and capacity >= n. Append
// into it; return it with PutInts before the borrowing call returns.
func (c *Ctx) GetInts(n int) []int64 {
	if !c.Enabled() {
		return make([]int64, 0, n)
	}
	cls := classFor(n)
	if l := len(c.ints[cls]); l > 0 {
		b := c.ints[cls][l-1]
		c.ints[cls] = c.ints[cls][:l-1]
		return b[:0]
	}
	return make([]int64, 0, minClassCap<<cls)
}

// PutInts returns a buffer obtained from GetInts (possibly grown by appends
// or by a buffer-lending collective) to the arena.
func (c *Ctx) PutInts(b []int64) {
	cls, ok := putClass(cap(b))
	if !c.Enabled() || !ok {
		return
	}
	if len(c.ints[cls]) < maxPerClass {
		c.ints[cls] = append(c.ints[cls], b[:0])
	}
}

// GetVerts borrows a semiring.Vertex buffer with length 0, capacity >= n.
func (c *Ctx) GetVerts(n int) []semiring.Vertex {
	if !c.Enabled() {
		return make([]semiring.Vertex, 0, n)
	}
	cls := classFor(n)
	if l := len(c.verts[cls]); l > 0 {
		b := c.verts[cls][l-1]
		c.verts[cls] = c.verts[cls][:l-1]
		return b[:0]
	}
	return make([]semiring.Vertex, 0, minClassCap<<cls)
}

// PutVerts returns a GetVerts buffer to the arena.
func (c *Ctx) PutVerts(b []semiring.Vertex) {
	cls, ok := putClass(cap(b))
	if !c.Enabled() || !ok {
		return
	}
	if len(c.verts[cls]) < maxPerClass {
		c.verts[cls] = append(c.verts[cls], b[:0])
	}
}

// GetBools borrows a bool buffer of length n with UNDEFINED contents — the
// caller must overwrite every element it reads. For full-overwrite scans
// (e.g. the unmatched-column mask) this trades the zeroing of make for
// nothing at all.
func (c *Ctx) GetBools(n int) []bool {
	if !c.Enabled() {
		return make([]bool, n)
	}
	cls := classFor(n)
	if l := len(c.bools[cls]); l > 0 {
		b := c.bools[cls][l-1]
		c.bools[cls] = c.bools[cls][:l-1]
		return b[:n]
	}
	return make([]bool, n, minClassCap<<cls)
}

// PutBools returns a GetBools buffer to the arena.
func (c *Ctx) PutBools(b []bool) {
	cls, ok := putClass(cap(b))
	if !c.Enabled() || !ok {
		return
	}
	if len(c.bools[cls]) < maxPerClass {
		c.bools[cls] = append(c.bools[cls], b[:0])
	}
}

// GetParts borrows a set of p per-destination send buffers for a
// personalized collective, each reset to length 0 but keeping its grown
// backing array across borrows. Return the set with PutParts after the
// collective; the buffer-lending collectives copy out of it, so nothing
// received aliases the parts.
func (c *Ctx) GetParts(p int) [][]int64 {
	if !c.Enabled() {
		return make([][]int64, p)
	}
	var full [][]int64
	if l := len(c.parts); l > 0 {
		full = c.parts[l-1]
		c.parts = c.parts[:l-1]
	}
	if cap(full) < p {
		grown := make([][]int64, p)
		copy(grown, full[:cap(full)])
		full = grown
	}
	ps := full[:cap(full)][:p]
	for i := range ps {
		ps[i] = ps[i][:0]
	}
	return ps
}

// PutParts returns a GetParts set (with whatever the caller appended; the
// backings are kept for the next borrow).
func (c *Ctx) PutParts(ps [][]int64) {
	if !c.Enabled() || cap(ps) == 0 {
		return
	}
	if len(c.parts) < maxPerClass {
		c.parts = append(c.parts, ps[:cap(ps)])
	}
}

// Scratch is a dense (value, present) workspace over a fixed index range,
// epoch-stamped so that re-borrowing it costs an epoch increment instead of
// a re-zeroing pass. Has(i) is true only for indices Set since the last
// borrow.
type Scratch struct {
	Val   []semiring.Vertex
	stamp []uint32
	epoch uint32
}

// Scratch borrows the dense workspace registered under tag, sized to at
// least n entries, with all entries absent. Distinct concurrent uses must
// use distinct tags: re-borrowing a tag invalidates the previous borrow's
// entries (that is the reuse mechanism).
func (c *Ctx) Scratch(tag string, n int) *Scratch {
	if !c.Enabled() {
		return &Scratch{Val: make([]semiring.Vertex, n), stamp: make([]uint32, n), epoch: 1}
	}
	s := c.scratch[tag]
	if s == nil {
		s = &Scratch{}
		c.scratch[tag] = s
	}
	if len(s.Val) < n {
		s.Val = make([]semiring.Vertex, n)
		s.stamp = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: stamps from 2^32 borrows ago could collide
		clear(s.stamp)
		s.epoch = 1
	}
	return s
}

// ScratchShards borrows k dense workspaces registered under tag, each sized
// to at least n entries with all entries absent: one private shard per worker
// of a parallel combine (the SpMV local multiply writes shard w from worker w
// with no synchronization, then the shards are merged under the semiring op).
// Shards persist and grow under their tag exactly like Scratch; re-borrowing
// a tag invalidates all previous borrows of that tag, and asking for fewer
// shards than last time leaves the extras parked.
func (c *Ctx) ScratchShards(tag string, k, n int) []*Scratch {
	if !c.Enabled() {
		out := make([]*Scratch, k)
		for i := range out {
			out[i] = &Scratch{Val: make([]semiring.Vertex, n), stamp: make([]uint32, n), epoch: 1}
		}
		return out
	}
	if c.shards == nil {
		c.shards = make(map[string][]*Scratch)
	}
	ss := c.shards[tag]
	for len(ss) < k {
		ss = append(ss, &Scratch{})
	}
	c.shards[tag] = ss
	out := ss[:k]
	for _, s := range out {
		if len(s.Val) < n {
			s.Val = make([]semiring.Vertex, n)
			s.stamp = make([]uint32, n)
			s.epoch = 0
		}
		s.epoch++
		if s.epoch == 0 {
			clear(s.stamp)
			s.epoch = 1
		}
	}
	return out
}

// Has reports whether index i was Set since this borrow.
func (s *Scratch) Has(i int) bool { return s.stamp[i] == s.epoch }

// Set stores v at index i and marks it present.
func (s *Scratch) Set(i int, v semiring.Vertex) {
	s.stamp[i] = s.epoch
	s.Val[i] = v
}

// Mark marks index i present without storing a value (bitmap-style use).
func (s *Scratch) Mark(i int) { s.stamp[i] = s.epoch }

// Len returns the number of entries the borrow spans.
func (s *Scratch) Len() int { return len(s.stamp) }

// OpCost is one operation category's accumulated wall time, communication
// meter, and communication-time ledger (total vs exposed; their difference
// is the latency the split-phase schedules hid behind local work).
type OpCost struct {
	Wall  time.Duration
	Meter mpi.Meter
	Comm  mpi.CommTimes
}

// Track runs fn, attributes its wall time plus the communication-meter and
// communication-time deltas to op in the context's ledger, and returns the
// delta. The ledger accumulates across solves when the context is reused,
// giving per-rank telemetry that no longer hangs off a single
// communicator's lifetime. A split-phase request started inside one tracked
// op and completed inside another attributes its meter and times to the op
// that completed it.
func (c *Ctx) Track(op string, fn func()) OpCost {
	if c == nil || c.comm == nil {
		start := time.Now()
		fn()
		return OpCost{Wall: time.Since(start)}
	}
	before := c.comm.MeterSnapshot()
	beforeCT := c.comm.CommTimes()
	t0 := c.trc.Begin()
	start := time.Now()
	fn()
	delta := OpCost{
		Wall:  time.Since(start),
		Meter: c.comm.MeterSnapshot().Sub(before),
		Comm:  c.comm.CommTimes().Sub(beforeCT),
	}
	c.trc.End(obs.KindOp, op, t0, delta.Meter.Words)
	if c.ops == nil {
		c.ops = make(map[string]OpCost)
	}
	oc := c.ops[op]
	oc.Wall += delta.Wall
	oc.Meter = oc.Meter.Add(delta.Meter)
	oc.Comm = oc.Comm.Add(delta.Comm)
	c.ops[op] = oc
	return delta
}

// OpCosts returns a copy of the per-op ledger.
func (c *Ctx) OpCosts() map[string]OpCost {
	out := make(map[string]OpCost, len(c.ops))
	for k, v := range c.ops {
		out[k] = v
	}
	return out
}

// MeterSnapshot returns the bound communicator's cumulative meter (zero on
// a nil or unbound context).
func (c *Ctx) MeterSnapshot() mpi.Meter {
	if c == nil || c.comm == nil {
		return mpi.Meter{}
	}
	return c.comm.MeterSnapshot()
}

// recordSorter sorts a flat record buffer of fixed-stride int64 records by
// first field, ties by second. Sorting records in place avoids materializing
// a []struct copy of every INVERT / fold exchange.
type recordSorter struct {
	buf    []int64
	stride int
}

func (r recordSorter) Len() int { return len(r.buf) / r.stride }
func (r recordSorter) Less(i, j int) bool {
	a, b := r.buf[i*r.stride:], r.buf[j*r.stride:]
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return r.stride > 1 && a[1] < b[1]
}
func (r recordSorter) Swap(i, j int) {
	a, b := r.buf[i*r.stride:(i+1)*r.stride], r.buf[j*r.stride:(j+1)*r.stride]
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// SortRecords sorts buf, viewed as consecutive stride-length records, by
// record key (first element, ties by second). len(buf) must be a multiple
// of stride.
func SortRecords(buf []int64, stride int) {
	if stride <= 0 || len(buf)%stride != 0 {
		panic("rt: SortRecords buffer not a whole number of records")
	}
	sort.Sort(recordSorter{buf: buf, stride: stride})
}

// sortGrain is the minimum records per chunk of the parallel record sort;
// below roughly two chunks of this the serial sort wins outright.
const sortGrain = 4096

// SortRecords sorts buf like the package-level SortRecords, but uses the
// context's worker pool when the buffer is large enough to amortize the
// fan-out: each worker sorts a contiguous run of records, then pairwise
// merge rounds (also fanned across the team, with a temp buffer borrowed
// from the arena) combine the runs. The merge compares (first, second) and
// takes the left run on ties, so for the key spaces the solver sorts —
// where (first, second) pairs are unique — the output is bit-identical to
// the serial sort.
func (c *Ctx) SortRecords(buf []int64, stride int) {
	if stride <= 0 || len(buf)%stride != 0 {
		panic("rt: SortRecords buffer not a whole number of records")
	}
	p := c.Pool()
	nrec := len(buf) / stride
	bounds := p.Chunks(nrec, sortGrain)
	if len(bounds) <= 2 {
		sort.Sort(recordSorter{buf: buf, stride: stride})
		return
	}
	p.ForChunked(nrec, sortGrain, func(_, lo, hi int) {
		sort.Sort(recordSorter{buf: buf[lo*stride : hi*stride], stride: stride})
	})
	tmp := c.GetInts(len(buf))
	tmp = tmp[:len(buf)]
	src, dst := buf, tmp
	for len(bounds) > 2 {
		next := append(make([]int, 0, len(bounds)/2+2), bounds[0])
		fns := make([]func(), 0, len(bounds)/2+1)
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i]*stride, bounds[i+1]*stride, bounds[i+2]*stride
			s, d := src, dst
			fns = append(fns, func() {
				mergeRecords(d[lo:hi], s[lo:mid], s[mid:hi], stride)
			})
			next = append(next, bounds[i+2])
		}
		if i+1 < len(bounds) { // odd run left over: carry it through
			lo, hi := bounds[i]*stride, bounds[i+1]*stride
			s, d := src, dst
			fns = append(fns, func() { copy(d[lo:hi], s[lo:hi]) })
			next = append(next, bounds[i+1])
		}
		p.Run(fns...)
		src, dst = dst, src
		bounds = next
	}
	if &src[0] != &buf[0] {
		copy(buf, src)
	}
	c.PutInts(tmp)
}

// mergeRecords merges the sorted record runs a and b into dst
// (len(dst) = len(a)+len(b)), taking from a on equal keys.
func mergeRecords(dst, a, b []int64, stride int) {
	var o int
	for len(a) > 0 && len(b) > 0 {
		bf, af := b[:stride], a[:stride]
		less := bf[0] < af[0] || (bf[0] == af[0] && stride > 1 && bf[1] < af[1])
		if less {
			copy(dst[o:], bf)
			b = b[stride:]
		} else {
			copy(dst[o:], af)
			a = a[stride:]
		}
		o += stride
	}
	copy(dst[o:], a)
	copy(dst[o+len(a):], b)
}

package mpi

import (
	"fmt"

	"mcmdist/internal/obs"
)

// winState is the shared half of an RMA window: every rank's exposed local
// slice plus a lock per rank providing the atomicity MPI guarantees for
// accumulate-style operations.
type winState struct {
	ranks []rankWindow
}

type rankWindow struct {
	mu   chan struct{} // binary semaphore; avoids copying sync.Mutex values
	data []int64
}

// Win is one rank's handle on a remote-memory-access window, the analogue of
// MPI_Win. The paper's path-parallel augmentation (Algorithm 4) manipulates
// the distributed mate and parent vectors through exactly these operations.
type Win struct {
	comm *Comm
	st   *winState
}

// WinCreate collectively exposes each rank's local slice for one-sided
// access. Every rank of the communicator must call it with its own slice
// (which may be nil). The caller retains ownership of the slice; remote
// ranks access it only through Get, Put and FetchAndOp.
func WinCreate(c *Comm, local []int64) *Win {
	size := c.Size()
	// Rendezvous the slice headers through the world registry keyed by a
	// collectively agreed id; the exchange also acts as the barrier
	// MPI_Win_create implies.
	parts := make([]any, size)
	for d := 0; d < size; d++ {
		parts[d] = local
	}
	id := fmt.Sprintf("%s/win@%d", c.st.id, c.nextGen)
	got := c.exchangeAny(parts)
	w := c.st.world
	w.mu.Lock()
	st, ok := w.wins[id]
	if !ok {
		st = &winState{ranks: make([]rankWindow, size)}
		for s := 0; s < size; s++ {
			var data []int64
			if got[s] != nil {
				data = got[s].([]int64)
			}
			sem := make(chan struct{}, 1)
			sem <- struct{}{}
			st.ranks[s] = rankWindow{mu: sem, data: data}
		}
		w.wins[id] = st
	}
	w.mu.Unlock()
	return &Win{comm: c, st: st}
}

// exchangeAny is exchange with arbitrary payloads (used only for rendezvous
// of window ids/slices; no metering).
func (c *Comm) exchangeAny(parts []any) []any {
	return c.exchange(parts, "win-create")
}

func (w *Win) lock(rank int)   { <-w.st.ranks[rank].mu }
func (w *Win) unlock(rank int) { w.st.ranks[rank].mu <- struct{}{} }

// Get reads n elements starting at off from rank's window. One RMA message
// unless the target is the caller itself.
func (w *Win) Get(rank, off, n int) []int64 {
	w.enterRMA("rma-get")
	tr := w.comm.tracer()
	t0 := tr.Begin()
	w.lock(rank)
	out := append([]int64(nil), w.st.ranks[rank].data[off:off+n]...)
	w.unlock(rank)
	if rank != w.comm.Rank() {
		w.comm.addComm(KindRMA, 1, int64(n))
	}
	tr.End(obs.KindRMA, "rma-get", t0, int64(n))
	return out
}

// Get1 reads a single element, the common case in path-parallel augmentation.
func (w *Win) Get1(rank, off int) int64 {
	return w.Get(rank, off, 1)[0]
}

// Put writes data into rank's window starting at off.
func (w *Win) Put(rank, off int, data []int64) {
	w.enterRMA("rma-put")
	tr := w.comm.tracer()
	t0 := tr.Begin()
	w.lock(rank)
	copy(w.st.ranks[rank].data[off:off+len(data)], data)
	w.unlock(rank)
	if rank != w.comm.Rank() {
		w.comm.addComm(KindRMA, 1, int64(len(data)))
	}
	tr.End(obs.KindRMA, "rma-put", t0, int64(len(data)))
}

// Put1 writes a single element.
func (w *Win) Put1(rank, off int, v int64) {
	w.Put(rank, off, []int64{v})
}

// FetchAndOp atomically applies op to the element at (rank, off) with the
// given operand and returns the value held before the update, matching
// MPI_Fetch_and_op. With OpReplace it is an atomic swap.
func (w *Win) FetchAndOp(rank, off int, op ReduceOp, operand int64) int64 {
	w.enterRMA("rma-fetch-and-op")
	tr := w.comm.tracer()
	t0 := tr.Begin()
	w.lock(rank)
	data := w.st.ranks[rank].data
	old := data[off]
	data[off] = op(old, operand)
	w.unlock(rank)
	if rank != w.comm.Rank() {
		w.comm.addComm(KindRMA, 1, 2)
	}
	tr.End(obs.KindRMA, "rma-fetch-and-op", t0, 2)
	return old
}

// OpReplace makes FetchAndOp behave as an atomic swap (MPI_REPLACE).
var OpReplace ReduceOp = func(_, b int64) int64 { return b }

// CompareAndSwap atomically replaces the element at (rank, off) with next if
// it currently equals expect, returning the previous value, matching
// MPI_Compare_and_swap.
func (w *Win) CompareAndSwap(rank, off int, expect, next int64) int64 {
	w.enterRMA("rma-compare-and-swap")
	tr := w.comm.tracer()
	t0 := tr.Begin()
	w.lock(rank)
	data := w.st.ranks[rank].data
	old := data[off]
	if old == expect {
		data[off] = next
	}
	w.unlock(rank)
	if rank != w.comm.Rank() {
		w.comm.addComm(KindRMA, 1, 2)
	}
	tr.End(obs.KindRMA, "rma-compare-and-swap", t0, 2)
	return old
}

// Fence is a collective synchronization closing an RMA epoch, the analogue
// of MPI_Win_fence.
func (w *Win) Fence() {
	w.comm.Barrier()
}

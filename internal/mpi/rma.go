package mpi

import (
	"fmt"

	"mcmdist/internal/obs"
)

// winState is one process's share of an RMA window: the exposed local slice
// of every rank hosted here, plus a lock per rank providing the atomicity
// MPI guarantees for accumulate-style operations. Slices of ranks hosted by
// other processes are absent — operations on them are routed through the
// transport and executed, under the owner's lock, by the owning process.
type winState struct {
	id    string
	ranks []rankWindow
}

type rankWindow struct {
	mu   chan struct{} // binary semaphore; avoids copying sync.Mutex values
	data []int64       // nil for ranks hosted by another process
}

// Win is one rank's handle on a remote-memory-access window, the analogue of
// MPI_Win. The paper's path-parallel augmentation (Algorithm 4) manipulates
// the distributed mate and parent vectors through exactly these operations.
type Win struct {
	comm *Comm
	st   *winState
}

// WinCreate collectively exposes each rank's local slice for one-sided
// access. Every rank of the communicator must call it with its own slice
// (which may be nil). The caller retains ownership of the slice; remote
// ranks access it only through Get, Put and FetchAndOp.
//
// The window id is derived collectively (communicator id plus the call's
// generation), so every process materializes the same window under the same
// id; each process registers only the slices of its own ranks. The exchange
// doubles as the barrier MPI_Win_create implies — on return every member
// has registered, so one-sided traffic may start immediately.
func WinCreate(c *Comm, local []int64) *Win {
	id := fmt.Sprintf("%s/win@%d", c.st.id, c.nextGen)
	w := c.st.world
	st := w.winFor(id, c.Size())
	<-st.ranks[c.member].mu
	st.ranks[c.member].data = local
	st.ranks[c.member].mu <- struct{}{}
	// The rendezvous: an unmetered exchange, exactly one collective entry
	// per member (the fault plane counts it, identically on every backend).
	c.exchange(make([]any, c.Size()), "win-create")
	return &Win{comm: c, st: st}
}

// winFor returns the window state with the given id, materializing it (with
// size member slots) on first touch. Local registration and remote RMA
// requests both resolve windows here, under w.mu.
func (w *World) winFor(id string, size int) *winState {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.winsByID[id]
	if !ok {
		st = &winState{id: id, ranks: make([]rankWindow, size)}
		for s := range st.ranks {
			sem := make(chan struct{}, 1)
			sem <- struct{}{}
			st.ranks[s] = rankWindow{mu: sem}
		}
		w.winsByID[id] = st
	}
	return st
}

func (w *Win) lock(rank int)   { <-w.st.ranks[rank].mu }
func (w *Win) unlock(rank int) { w.st.ranks[rank].mu <- struct{}{} }

// remote reports whether the window slice of the given member rank is owned
// by another process.
func (w *Win) remote(rank int) bool {
	return !w.comm.st.world.isLocalRank(w.comm.st.ranks[rank])
}

// call routes one one-sided operation to the process hosting the target
// member and blocks for the reply. Transport failures abort the world and
// unwind the calling rank through the usual abort plane.
func (w *Win) call(rank int, req *RMAReq) *RMAResp {
	req.Win = w.st.id
	req.Member = rank
	world := w.comm.st.world
	resp, err := world.transport.RMA(world.rankToWorld(w.comm, rank), req)
	if err != nil {
		world.Abort(&TransportError{Backend: world.transport.Name(), Op: "rma", Err: err})
		panic(abortSignal{cause: world.abortReason()})
	}
	return resp
}

// rankToWorld maps a member index of c's communicator to a world rank.
func (w *World) rankToWorld(c *Comm, member int) int { return c.st.ranks[member] }

// ExecRMA executes one one-sided operation against this process's window
// registry, under the target rank's window lock. Called by transport
// receiver goroutines on behalf of remote ranks; the local fast path in
// Get/Put/FetchAndOp/CompareAndSwap performs the same operations directly.
func (w *World) ExecRMA(req *RMAReq) (*RMAResp, error) {
	w.mu.Lock()
	st, ok := w.winsByID[req.Win]
	w.mu.Unlock()
	if !ok || req.Member < 0 || req.Member >= len(st.ranks) {
		return nil, fmt.Errorf("mpi: rma request against unknown window %q member %d", req.Win, req.Member)
	}
	<-st.ranks[req.Member].mu
	defer func() { st.ranks[req.Member].mu <- struct{}{} }()
	data := st.ranks[req.Member].data
	switch req.Op {
	case RMAGet:
		if req.Off < 0 || req.Off+req.N > len(data) {
			return nil, fmt.Errorf("mpi: rma get [%d:%d) outside window %q member %d (len %d)", req.Off, req.Off+req.N, req.Win, req.Member, len(data))
		}
		return &RMAResp{Data: append([]int64(nil), data[req.Off:req.Off+req.N]...)}, nil
	case RMAPut:
		if req.Off < 0 || req.Off+len(req.Data) > len(data) {
			return nil, fmt.Errorf("mpi: rma put [%d:%d) outside window %q member %d (len %d)", req.Off, req.Off+len(req.Data), req.Win, req.Member, len(data))
		}
		copy(data[req.Off:req.Off+len(req.Data)], req.Data)
		return &RMAResp{}, nil
	case RMAFetchAndOp:
		op, ok := opByCode(req.Code)
		if !ok {
			return nil, fmt.Errorf("mpi: rma fetch-and-op with unknown op code %d", req.Code)
		}
		if req.Off < 0 || req.Off >= len(data) {
			return nil, fmt.Errorf("mpi: rma fetch-and-op offset %d outside window %q member %d (len %d)", req.Off, req.Win, req.Member, len(data))
		}
		old := data[req.Off]
		data[req.Off] = op.Apply(old, req.Operand)
		return &RMAResp{Old: old}, nil
	case RMACompareAndSwap:
		if req.Off < 0 || req.Off >= len(data) {
			return nil, fmt.Errorf("mpi: rma compare-and-swap offset %d outside window %q member %d (len %d)", req.Off, req.Win, req.Member, len(data))
		}
		old := data[req.Off]
		if old == req.Expect {
			data[req.Off] = req.Next
		}
		return &RMAResp{Old: old}, nil
	default:
		return nil, fmt.Errorf("mpi: unknown rma op %d", req.Op)
	}
}

// Get reads n elements starting at off from rank's window. One RMA message
// unless the target is the caller itself.
func (w *Win) Get(rank, off, n int) []int64 {
	w.enterRMA("rma-get")
	tr := w.comm.tracer()
	t0 := tr.Begin()
	var out []int64
	if w.remote(rank) {
		out = w.call(rank, &RMAReq{Op: RMAGet, Off: off, N: n}).Data
	} else {
		w.lock(rank)
		out = append([]int64(nil), w.st.ranks[rank].data[off:off+n]...)
		w.unlock(rank)
	}
	if rank != w.comm.Rank() {
		w.comm.addComm(KindRMA, 1, int64(n), w.comm.rawEnc(int64(n)))
	}
	tr.End(obs.KindRMA, "rma-get", t0, int64(n))
	return out
}

// Get1 reads a single element, the common case in path-parallel augmentation.
func (w *Win) Get1(rank, off int) int64 {
	return w.Get(rank, off, 1)[0]
}

// Put writes data into rank's window starting at off.
func (w *Win) Put(rank, off int, data []int64) {
	w.enterRMA("rma-put")
	tr := w.comm.tracer()
	t0 := tr.Begin()
	if w.remote(rank) {
		w.call(rank, &RMAReq{Op: RMAPut, Off: off, Data: data})
	} else {
		w.lock(rank)
		copy(w.st.ranks[rank].data[off:off+len(data)], data)
		w.unlock(rank)
	}
	if rank != w.comm.Rank() {
		w.comm.addComm(KindRMA, 1, int64(len(data)), w.comm.rawEnc(int64(len(data))))
	}
	tr.End(obs.KindRMA, "rma-put", t0, int64(len(data)))
}

// Put1 writes a single element.
func (w *Win) Put1(rank, off int, v int64) {
	w.Put(rank, off, []int64{v})
}

// FetchAndOp atomically applies op to the element at (rank, off) with the
// given operand and returns the value held before the update, matching
// MPI_Fetch_and_op. With OpReplace it is an atomic swap. A CustomOp cannot
// target a rank hosted by another process (the function has no wire form);
// the named package operators work everywhere.
func (w *Win) FetchAndOp(rank, off int, op ReduceOp, operand int64) int64 {
	w.enterRMA("rma-fetch-and-op")
	tr := w.comm.tracer()
	t0 := tr.Begin()
	var old int64
	if w.remote(rank) {
		if op.Code == OpCodeCustom {
			panic("mpi: FetchAndOp with a CustomOp cannot target a remote process; use a named operator")
		}
		old = w.call(rank, &RMAReq{Op: RMAFetchAndOp, Off: off, Code: op.Code, Operand: operand}).Old
	} else {
		w.lock(rank)
		data := w.st.ranks[rank].data
		old = data[off]
		data[off] = op.Apply(old, operand)
		w.unlock(rank)
	}
	if rank != w.comm.Rank() {
		w.comm.addComm(KindRMA, 1, 2, w.comm.rawEnc(2))
	}
	tr.End(obs.KindRMA, "rma-fetch-and-op", t0, 2)
	return old
}

// OpReplace makes FetchAndOp behave as an atomic swap (MPI_REPLACE).
var OpReplace = ReduceOp{Code: OpCodeReplace, fn: func(_, b int64) int64 { return b }}

// CompareAndSwap atomically replaces the element at (rank, off) with next if
// it currently equals expect, returning the previous value, matching
// MPI_Compare_and_swap.
func (w *Win) CompareAndSwap(rank, off int, expect, next int64) int64 {
	w.enterRMA("rma-compare-and-swap")
	tr := w.comm.tracer()
	t0 := tr.Begin()
	var old int64
	if w.remote(rank) {
		old = w.call(rank, &RMAReq{Op: RMACompareAndSwap, Off: off, Expect: expect, Next: next}).Old
	} else {
		w.lock(rank)
		data := w.st.ranks[rank].data
		old = data[off]
		if old == expect {
			data[off] = next
		}
		w.unlock(rank)
	}
	if rank != w.comm.Rank() {
		w.comm.addComm(KindRMA, 1, 2, w.comm.rawEnc(2))
	}
	tr.End(obs.KindRMA, "rma-compare-and-swap", t0, 2)
	return old
}

// Fence is a collective synchronization closing an RMA epoch, the analogue
// of MPI_Win_fence.
func (w *Win) Fence() {
	w.comm.Barrier()
}

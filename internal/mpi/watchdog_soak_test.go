//go:build faultsoak

package mpi

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestSoakWatchdogChaos is the nightly-style long test (enable with
// -tags faultsoak): hundreds of worlds with randomized-but-seeded crash
// points, stragglers, and genuine wedges, checking that every failure
// surfaces as a typed error, no world hangs, and no goroutines leak.
func TestSoakWatchdogChaos(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 300; iter++ {
		seed := int64(iter)
		mode := iter % 3
		var cfg RunConfig
		switch mode {
		case 0: // injected crash somewhere in the collective stream
			cfg.Faults = &FaultPlan{Seed: seed, CrashRank: iter % 4, CrashAtCollective: 1 + iter%40}
		case 1: // straggler plus tight-but-sufficient watchdog
			cfg.Faults = &FaultPlan{Seed: seed, StragglerRank: iter % 4, StragglerDelay: 200 * time.Microsecond, StragglerEvery: 3}
			cfg.WatchdogTimeout = 2 * time.Second
		case 2: // genuine wedge: one rank drops out of the loop early
			cfg.WatchdogTimeout = 50 * time.Millisecond
		}
		_, err := RunWith(cfg, 4, func(c *Comm) error {
			row := c.Split(c.Rank()/2, c.Rank())
			rounds := 20
			if mode == 2 && c.Rank() == (iter+1)%4 {
				rounds = 10 // skips the tail: peers wedge, watchdog must fire
			}
			for i := 0; i < rounds; i++ {
				c.Allreduce(OpSum, int64(i))
				row.Allgatherv([]int64{int64(c.Rank())})
				c.Barrier()
			}
			return nil
		})
		switch mode {
		case 0:
			if !errors.Is(err, ErrInjectedCrash) {
				t.Fatalf("iter %d: want injected crash, got %v", iter, err)
			}
		case 1:
			if err != nil {
				t.Fatalf("iter %d: straggler run must stay clean, got %v", iter, err)
			}
		case 2:
			var de *DeadlockError
			if !errors.As(err, &de) {
				t.Fatalf("iter %d: want DeadlockError, got %v", iter, err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base+4 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: started with %d, now %d", base, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

package mpi

import (
	"errors"

	"mcmdist/internal/obs"
)

// SetTracer attaches t as this rank's span tracer: from now on every
// collective completion, progressive exchange, RMA op and injected fault on
// this rank records into t. Each rank goroutine must set (and later read)
// only its own tracer — the world keeps one slot per rank precisely so no
// two goroutines ever share one. A nil t turns tracing off for the rank.
//
// All communicators of a rank (world, row, column) share the slot, so a
// single SetTracer on any handle covers them all.
//
// Observability collection is strictly per-process: tracers and world-plane
// events never cross the transport. Each process traces only the ranks it
// hosts (a Comm handle exists only for locally hosted ranks, so the slots of
// remote ranks are structurally unreachable), and a whole-world trace over a
// multi-process backend is assembled by merging each process's output —
// obs.Collector outputs are rank-tagged, so the merge is a concatenation.
func (c *Comm) SetTracer(t *obs.Tracer) {
	w := c.st.world
	if w == nil {
		return
	}
	if !w.isLocalRank(c.worldRank) {
		panic("mpi: SetTracer for a rank not hosted by this process")
	}
	w.obsTracers[c.worldRank] = t
}

// tracer returns this rank's span tracer (nil when tracing is off). The
// lookup is one slice index — cheap enough for every collective entry.
func (c *Comm) tracer() *obs.Tracer {
	w := c.st.world
	if w == nil || c.worldRank >= len(w.obsTracers) {
		return nil
	}
	return w.obsTracers[c.worldRank]
}

// addObsEvent appends one world-plane instant (abort, deadlock) under the
// world lock. Rank -1 attributes the event to the world as a whole.
func (w *World) addObsEvent(name string, rank int, arg int64) {
	w.mu.Lock()
	w.obsEvents = append(w.obsEvents, obs.Event{Name: name, Rank: rank, At: obs.Now(), Arg: arg})
	w.mu.Unlock()
}

// RecordObsEvent appends one world-plane instant at the current trace time,
// attributed to rank (-1 for the world as a whole). Exported for transports:
// the heartbeat plane records its RTT samples here, because the event list
// is mutex-protected and safe from any goroutine — unlike the per-rank span
// tracers, which are single-writer by contract.
func (w *World) RecordObsEvent(name string, rank int, arg int64) {
	w.addObsEvent(name, rank, arg)
}

// ObsEvents returns the world-plane events recorded so far (abort causes,
// deadlock diagnoses). Callers hand them to an obs.Collector after the
// world joins. Like tracers, events are per-process: each process records
// only what it observed locally (a propagated abort appears in every
// process, attributed by the RemoteAbortError cause on the receiving side),
// and cross-process aggregation happens outside the transport.
func (w *World) ObsEvents() []obs.Event {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]obs.Event, len(w.obsEvents))
	copy(out, w.obsEvents)
	return out
}

// obsAbortEvent classifies an abort cause for the trace: watchdog deadlocks
// and injected faults get their own instant names so they stand out on the
// runtime track.
func (w *World) obsAbortEvent(cause error) {
	name, rank := "abort", -1
	var de *DeadlockError
	var re *RankError
	switch {
	case errors.As(cause, &de):
		name = "deadlock"
	case errors.As(cause, &re):
		rank = re.Rank
		if errors.Is(re, ErrInjectedCrash) || errors.Is(re, ErrInjectedRMAFailure) {
			name = "fault-abort"
		}
	}
	w.addObsEvent(name, rank, 0)
}

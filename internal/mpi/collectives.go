package mpi

import "fmt"

// Barrier blocks until every rank of the communicator has entered it.
func (c *Comm) Barrier() {
	c.start("barrier", make([]any, c.Size()), false, nil).Wait()
}

// Bcast distributes root's data to every rank and returns it. Non-root
// callers pass nil. The result is a fresh copy on every rank except root;
// root gets its own slice back uncopied, so a root that mutates the result
// mutates data (matching MPI_Bcast, where root's buffer is both input and
// output). An empty or nil broadcast moves no bytes along the tree, so it
// meters nothing — ranks are not charged depth messages for a zero-length
// payload.
func (c *Comm) Bcast(root int, data []int64) []int64 {
	return c.IBcast(root, data).Wait()
}

// Allgatherv gathers each rank's contribution on every rank. The result has
// one slice per rank, in rank order; slices received from other ranks are
// copies. This is the "expand" primitive of the 2D SpMV and the
// communication step of PRUNE; the paper costs it with the ring algorithm:
// p-1 messages and the received volume.
func (c *Comm) Allgatherv(data []int64) [][]int64 {
	return c.IAllgatherv(data).Wait()
}

// Alltoallv sends parts[d] to rank d and returns the slices received, one
// per source rank. Received slices alias the sender's slice only through an
// explicit copy. This is the personalized all-to-all used by the "fold"
// phase of SpMV and by INVERT.
func (c *Comm) Alltoallv(parts [][]int64) [][]int64 {
	return c.IAlltoallv(parts).Wait()
}

// AllgathervInto is the buffer-lending Allgatherv for hot paths: every
// rank's contribution is appended into buf in rank order (the flat
// concatenation the expand and PRUNE consumers actually want) and the grown
// buffer is returned. buf may be nil or a recycled arena buffer; the result
// never aliases data or another rank's memory, so the caller may return it
// to an arena once done. Metering is identical to Allgatherv: p-1 messages
// and the words received from other ranks.
func (c *Comm) AllgathervInto(data []int64, buf []int64) []int64 {
	return c.IAllgathervInto(data, buf).Wait()
}

// AlltoallvInto is the buffer-lending Alltoallv: everything received is
// stored contiguously in buf (grown as needed and returned second), and the
// first result holds one subslice of that buffer per source rank, in source
// order. Unlike Alltoallv, the self part is copied too — no subslice aliases
// parts — so the caller may recycle both parts and buf afterwards. buf is
// presized to the full receive volume before any subslice is taken, which
// keeps every subslice valid. Metering is identical to Alltoallv: p-1
// messages and the words sent to other ranks.
func (c *Comm) AlltoallvInto(parts [][]int64, buf []int64) ([][]int64, []int64) {
	return c.IAlltoallvInto(parts, buf).Wait()
}

// AlltoallvFlat is AlltoallvInto without the per-source boundaries: the
// received parts are appended into buf in source-rank order and the grown
// buffer returned. It serves consumers (INVERT, redistribution) that sort
// the union anyway and never look at who sent what. Metering is identical
// to Alltoallv.
func (c *Comm) AlltoallvFlat(parts [][]int64, buf []int64) []int64 {
	return c.IAlltoallvFlat(parts, buf).Wait()
}

// Gatherv collects every rank's contribution on root, in rank order. Non-root
// ranks receive nil.
func (c *Comm) Gatherv(root int, data []int64) [][]int64 {
	size := c.Size()
	parts := make([]any, size)
	parts[root] = data
	var out [][]int64
	c.start("gatherv", parts, true, func(got []any) {
		if c.member != root {
			c.addComm(KindGather, 1, int64(len(data)), c.encWords(data))
			return
		}
		out = make([][]int64, size)
		var words, wordsEnc int64
		for s := 0; s < size; s++ {
			in := asInts(got[s])
			if s == root {
				out[s] = data
				continue
			}
			words += int64(len(in))
			wordsEnc += c.encWords(in)
			out[s] = append([]int64(nil), in...)
		}
		c.addComm(KindGather, int64(size-1), words, wordsEnc)
	}).Wait()
	return out
}

// Scatterv distributes parts[d] from root to rank d and returns each rank's
// slice. Non-root callers pass nil.
func (c *Comm) Scatterv(root int, parts [][]int64) []int64 {
	size := c.Size()
	anyParts := make([]any, size)
	if c.member == root {
		if len(parts) != size {
			panic(fmt.Sprintf("mpi: Scatterv with %d parts on %d ranks", len(parts), size))
		}
		for d := 0; d < size; d++ {
			anyParts[d] = parts[d]
		}
	}
	var out []int64
	c.start("scatterv", anyParts, true, func(got []any) {
		in := asInts(got[root])
		if c.member == root {
			var words, wordsEnc int64
			for d := 0; d < size; d++ {
				if d != root {
					words += int64(len(parts[d]))
					wordsEnc += c.encWords(parts[d])
				}
			}
			c.addComm(KindScatter, int64(size-1), words, wordsEnc)
			out = in
			return
		}
		c.addComm(KindScatter, 1, int64(len(in)), c.encWords(in))
		out = append([]int64(nil), in...)
	}).Wait()
	return out
}

// OpCode names a reduction operator on the wire, so FetchAndOp can be
// executed by the process owning the target window. OpCodeCustom marks an
// operator built with CustomOp, which only works against local windows.
type OpCode uint8

// The coded reduction operators.
const (
	// OpCodeCustom is a caller-supplied operator with no wire form.
	OpCodeCustom OpCode = iota
	// OpCodeSum is addition.
	OpCodeSum
	// OpCodeMax is the maximum.
	OpCodeMax
	// OpCodeMin is the minimum.
	OpCodeMin
	// OpCodeLor is logical or (nonzero → 1).
	OpCodeLor
	// OpCodeReplace ignores the prior value (MPI_REPLACE).
	OpCodeReplace
)

// ReduceOp is an associative, commutative reduction operator. The package's
// named operators carry an OpCode so one-sided FetchAndOp calls can cross a
// process boundary; operators built with CustomOp are local-only there
// (Allreduce always evaluates locally, so any operator works in it on every
// backend).
type ReduceOp struct {
	// Code is the operator's wire name (OpCodeCustom for CustomOp).
	Code OpCode
	fn   func(a, b int64) int64
}

// Apply evaluates the operator.
func (op ReduceOp) Apply(a, b int64) int64 { return op.fn(a, b) }

// CustomOp wraps an arbitrary associative, commutative function as a
// ReduceOp. Usable in Allreduce on every backend; rejected by FetchAndOp on
// remote windows (the function cannot be shipped to the owning process).
func CustomOp(fn func(a, b int64) int64) ReduceOp {
	return ReduceOp{Code: OpCodeCustom, fn: fn}
}

// Standard reduction operators.
var (
	OpSum = ReduceOp{Code: OpCodeSum, fn: func(a, b int64) int64 { return a + b }}
	OpMax = ReduceOp{Code: OpCodeMax, fn: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}}
	OpMin = ReduceOp{Code: OpCodeMin, fn: func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}}
	OpLor = ReduceOp{Code: OpCodeLor, fn: func(a, b int64) int64 {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}}
)

// opByCode resolves a wire code back to its operator.
func opByCode(code OpCode) (ReduceOp, bool) {
	switch code {
	case OpCodeSum:
		return OpSum, true
	case OpCodeMax:
		return OpMax, true
	case OpCodeMin:
		return OpMin, true
	case OpCodeLor:
		return OpLor, true
	case OpCodeReplace:
		return OpReplace, true
	default:
		return ReduceOp{}, false
	}
}

// Allreduce reduces val across all ranks with op and returns the result on
// every rank. Costed as a binomial reduce-broadcast tree.
func (c *Comm) Allreduce(op ReduceOp, val int64) int64 {
	return c.IAllreduce(op, val).Wait()
}

// Split partitions the communicator: ranks passing the same color form a new
// communicator, ordered by (key, rank). Every rank must call Split; a
// negative color yields a nil communicator (MPI_COMM_NULL).
func (c *Comm) Split(color, key int) *Comm {
	size := c.Size()
	parts := make([]any, size)
	for d := 0; d < size; d++ {
		parts[d] = []int64{int64(color), int64(key)}
	}
	got := c.exchange(parts, "split")
	if color < 0 {
		return nil
	}
	type memberInfo struct{ key, member int }
	var members []memberInfo
	for s := 0; s < size; s++ {
		ck := asInts(got[s])
		if int(ck[0]) == color {
			members = append(members, memberInfo{key: int(ck[1]), member: s})
		}
	}
	// Sort by (key, member); insertion sort keeps this dependency-free.
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && (members[j].key < members[j-1].key ||
			(members[j].key == members[j-1].key && members[j].member < members[j-1].member)); j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	worldRanks := make([]int, len(members))
	myIndex := -1
	for i, m := range members {
		worldRanks[i] = c.st.ranks[m.member]
		if m.member == c.member {
			myIndex = i
		}
	}
	// All members derive the same id, so they share one commState via the
	// world registry (remote traffic may even have materialized it first).
	// The parent generation makes repeated Splits distinct. Abort sets the
	// world flag before snapshotting w.comms under w.mu, so either the
	// snapshot saw the insert (Abort marks st) or commStateFor's load sees
	// the flag — a freshly split comm can never miss an abort.
	id := fmt.Sprintf("%s/split@%d/c%d", c.st.id, c.nextGen, color)
	st := c.st.world.commStateFor(id, worldRanks)
	return &Comm{st: st, member: myIndex, worldRank: c.worldRank}
}

func asInts(v any) []int64 {
	if v == nil {
		return nil
	}
	return v.([]int64)
}

package mpi

import "time"

// ObsShipper is the optional observability-collection capability of a
// multi-process Transport. A backend that implements it can move one
// process's encoded observability state (an internal/obs payload — the
// format stays opaque at this seam) to the coordinator process, where the
// per-process collectors are merged into one world-level artifact. The
// in-process backend never needs it: a single process already holds every
// rank's collector.
//
// The flow is one-shot per endpoint: worker processes call ShipObs after
// their ranks finish (Close ships as a last act before BYE if nobody did),
// and the coordinator calls CollectObs to gather everything its peers sent.
type ObsShipper interface {
	// SetObsProvider registers the callback that renders this process's
	// observability payload. The transport invokes it at most once — from
	// ShipObs or from the BYE-drain fallback in Close — strictly after the
	// local rank goroutines have returned, so the render may read the
	// collector without locking.
	SetObsProvider(render func() []byte)

	// ShipObs renders the payload (via the registered provider) and sends it
	// to the coordinator. Shipping is idempotent: only the first call (or
	// the Close fallback) transmits. On the coordinator it is a no-op.
	ShipObs() error

	// CollectObs waits — bounded by timeout — until every live peer's
	// payload has arrived (a peer that said BYE or died without shipping is
	// not waited for) and returns the payloads by world rank.
	CollectObs(timeout time.Duration) map[int][]byte

	// ClockOffsets returns the per-peer clock-offset estimates from the
	// heartbeat probes, by world rank: adding the offset to a peer's trace
	// timestamp maps it into this process's trace timebase. Peers without an
	// estimate yet are absent (treat as offset zero).
	ClockOffsets() map[int]int64
}

// RTTObservable is the optional heartbeat round-trip-time reporting
// capability of a Transport. The observer is invoked from the transport's
// receive plane on every completed PING/PONG exchange; it must be fast and
// must not call back into the transport.
type RTTObservable interface {
	SetRTTObserver(func(peerRank int, rttNs int64))
}

package mpi

// Tests for the buffer-lending collective variants (AllgathervInto,
// AlltoallvInto, AlltoallvFlat): each must agree byte-for-byte with its
// copying counterpart, meter identically, and never alias caller memory —
// plus the Bcast metering rule that an empty broadcast is free.

import (
	"fmt"
	"testing"
)

func rankPayload(rank, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rank*1000 + i)
	}
	return out
}

// TestAllgathervIntoMatchesCopy: flat result equals the rank-order
// concatenation of Allgatherv, with identical metering, and the result does
// not alias the caller's send buffer.
func TestAllgathervIntoMatchesCopy(t *testing.T) {
	const p = 4
	w, err := Run(p, func(c *Comm) error {
		data := rankPayload(c.Rank(), c.Rank()+1) // ragged sizes
		before := c.MeterSnapshot()
		copied := c.Allgatherv(data)
		copyCost := c.MeterSnapshot().Sub(before)

		buf := make([]int64, 0, 4)
		before = c.MeterSnapshot()
		flat := c.AllgathervInto(data, buf)
		intoCost := c.MeterSnapshot().Sub(before)

		if copyCost != intoCost {
			return fmt.Errorf("rank %d: Into metered %+v, copy metered %+v", c.Rank(), intoCost, copyCost)
		}
		var want []int64
		for _, part := range copied {
			want = append(want, part...)
		}
		if len(flat) != len(want) {
			return fmt.Errorf("rank %d: flat len %d, want %d", c.Rank(), len(flat), len(want))
		}
		for i := range want {
			if flat[i] != want[i] {
				return fmt.Errorf("rank %d: flat[%d] = %d, want %d", c.Rank(), i, flat[i], want[i])
			}
		}
		// Mutating the send buffer must not change the gathered result.
		for i := range data {
			data[i] = -1
		}
		for i := range want {
			if flat[i] != want[i] {
				return fmt.Errorf("rank %d: result aliases send buffer at %d", c.Rank(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if m := w.RankMeter(r); m.Msgs != 2*(p-1) {
			t.Errorf("rank %d msgs = %d, want %d", r, m.Msgs, 2*(p-1))
		}
	}
}

// TestAlltoallvIntoMatchesCopy: per-source subslices equal Alltoallv's
// output, metering matches, and neither the self part nor any other part is
// aliased by the result.
func TestAlltoallvIntoMatchesCopy(t *testing.T) {
	const p = 3
	_, err := Run(p, func(c *Comm) error {
		mkParts := func() [][]int64 {
			parts := make([][]int64, p)
			for d := 0; d < p; d++ {
				parts[d] = rankPayload(c.Rank(), d+1)
			}
			return parts
		}
		before := c.MeterSnapshot()
		want := c.Alltoallv(mkParts())
		copyCost := c.MeterSnapshot().Sub(before)

		parts := mkParts()
		before = c.MeterSnapshot()
		got, buf := c.AlltoallvInto(parts, nil)
		intoCost := c.MeterSnapshot().Sub(before)

		if copyCost != intoCost {
			return fmt.Errorf("rank %d: Into metered %+v, copy metered %+v", c.Rank(), intoCost, copyCost)
		}
		total := 0
		for s := 0; s < p; s++ {
			if len(got[s]) != len(want[s]) {
				return fmt.Errorf("rank %d src %d: len %d, want %d", c.Rank(), s, len(got[s]), len(want[s]))
			}
			for i := range want[s] {
				if got[s][i] != want[s][i] {
					return fmt.Errorf("rank %d src %d idx %d: %d, want %d", c.Rank(), s, i, got[s][i], want[s][i])
				}
			}
			total += len(got[s])
		}
		if len(buf) != total {
			return fmt.Errorf("rank %d: buf len %d, want %d", c.Rank(), len(buf), total)
		}
		// Scribble over the send parts (including the self part, which the
		// copying Alltoallv aliases): the Into result must be unaffected.
		for d := range parts {
			for i := range parts[d] {
				parts[d][i] = -9
			}
		}
		for s := 0; s < p; s++ {
			for i := range want[s] {
				if got[s][i] != want[s][i] {
					return fmt.Errorf("rank %d: result aliases parts[%d]", c.Rank(), s)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallvIntoPresizedBuf: when the lent buffer must grow, earlier
// subslices must remain valid (the buffer is presized before slicing).
func TestAlltoallvIntoPresizedBuf(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) error {
		parts := make([][]int64, p)
		for d := 0; d < p; d++ {
			parts[d] = rankPayload(c.Rank(), 100)
		}
		got, buf := c.AlltoallvInto(parts, make([]int64, 0, 8))
		off := 0
		for s := 0; s < p; s++ {
			for i := range got[s] {
				if &got[s][i] != &buf[off+i] {
					return fmt.Errorf("rank %d: src %d not backed by returned buf", c.Rank(), s)
				}
				if wantv := int64(s*1000 + i); got[s][i] != wantv {
					return fmt.Errorf("rank %d src %d idx %d: %d, want %d", c.Rank(), s, i, got[s][i], wantv)
				}
			}
			off += len(got[s])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallvFlatMatchesCopy: flat concatenation in source order, same
// metering as the copying API.
func TestAlltoallvFlatMatchesCopy(t *testing.T) {
	const p = 3
	_, err := Run(p, func(c *Comm) error {
		mkParts := func() [][]int64 {
			parts := make([][]int64, p)
			for d := 0; d < p; d++ {
				parts[d] = rankPayload(c.Rank()+d, (c.Rank()+d)%3)
			}
			return parts
		}
		before := c.MeterSnapshot()
		want := c.Alltoallv(mkParts())
		copyCost := c.MeterSnapshot().Sub(before)

		before = c.MeterSnapshot()
		flat := c.AlltoallvFlat(mkParts(), nil)
		flatCost := c.MeterSnapshot().Sub(before)

		if copyCost != flatCost {
			return fmt.Errorf("rank %d: Flat metered %+v, copy metered %+v", c.Rank(), flatCost, copyCost)
		}
		var wantFlat []int64
		for _, part := range want {
			wantFlat = append(wantFlat, part...)
		}
		if len(flat) != len(wantFlat) {
			return fmt.Errorf("rank %d: len %d, want %d", c.Rank(), len(flat), len(wantFlat))
		}
		for i := range wantFlat {
			if flat[i] != wantFlat[i] {
				return fmt.Errorf("rank %d idx %d: %d, want %d", c.Rank(), i, flat[i], wantFlat[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBcastEmptyMetersNothing: a zero-length broadcast charges neither
// messages nor words on any rank, while a non-empty one still meters the
// binomial tree.
func TestBcastEmptyMetersNothing(t *testing.T) {
	const p = 4
	w, err := Run(p, func(c *Comm) error {
		var data []int64
		if c.Rank() == 0 {
			data = []int64{} // empty but non-nil on root
		}
		c.Bcast(0, data)
		c.Bcast(1, nil) // nil payload from root too
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if m := w.RankKindMeter(r, KindBcast); m.Msgs != 0 || m.Words != 0 {
			t.Errorf("rank %d: empty Bcast metered %+v", r, m)
		}
	}
}

// TestBcastRootNoCopy: root's return value is its own send buffer, not a
// copy (documented root fast path).
func TestBcastRootNoCopy(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		var data []int64
		if c.Rank() == 0 {
			data = []int64{7, 8, 9}
		}
		out := c.Bcast(0, data)
		if c.Rank() == 0 && &out[0] != &data[0] {
			return fmt.Errorf("root Bcast copied its own payload")
		}
		if len(out) != 3 || out[0] != 7 || out[2] != 9 {
			return fmt.Errorf("rank %d: got %v", c.Rank(), out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

package mpi

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mcmdist/internal/obs"
)

// DeadlockError reports a world aborted by the progress watchdog: no mailbox
// generation advanced and no RMA op ran for at least Timeout. It names the
// communicator and operation the world is wedged on and which ranks did and
// did not post, turning a silent hang into an actionable diagnostic.
type DeadlockError struct {
	Comm    string        // communicator id ("world", "world/split@3/c1", ...)
	Op      string        // collective the stuck generation belongs to
	Gen     int64         // stuck generation number on that communicator
	Posted  []int         // world ranks that posted the stuck collective
	Missing []int         // world ranks that have not posted it
	Timeout time.Duration // the watchdog deadline that expired
}

// Error formats the stuck op and the lagging ranks.
func (e *DeadlockError) Error() string {
	if e.Op == "" {
		return fmt.Sprintf("mpi: no progress for %v and no pending collective (ranks stuck outside the mailbox)", e.Timeout)
	}
	return fmt.Sprintf("mpi: no progress for %v: %s gen %d on comm %q posted by ranks %v, missing ranks %v",
		e.Timeout, e.Op, e.Gen, e.Comm, e.Posted, e.Missing)
}

// abortSignal unwinds a rank goroutine blocked (or about to block) in the
// mailbox of an aborted world. It is converted to a RankError{Op: "abort"}
// by the panic containment in RunWith and never escapes the package.
type abortSignal struct{ cause error }

// abortReason returns the recorded abort cause (nil before Abort).
func (w *World) abortReason() error {
	w.mu.Lock()
	cause := w.abortCause
	w.mu.Unlock()
	return cause
}

// Abort marks the world dead with the given cause and wakes every rank
// blocked in a mailbox wait; they unwind with an abortSignal panic that
// RunTransport contains. On a multi-process backend the abort is propagated
// to every peer process, which aborts its share of the world the same way.
// Idempotent — only the first cause is kept. Safe to call from any goroutine
// (the watchdog, a context watcher, a rank's deferred error handler).
func (w *World) Abort(cause error) {
	w.abort(cause, true)
}

// abort is Abort with control over peer propagation: DeliverAbort passes
// propagate=false because the originating process already notified every
// peer, which keeps abort storms from ping-ponging across the fabric.
func (w *World) abort(cause error, propagate bool) {
	if !w.aborted.CompareAndSwap(false, true) {
		return
	}
	w.obsAbortEvent(cause)
	w.mu.Lock()
	w.abortCause = cause
	states := make([]*commState, 0, len(w.comms))
	for _, st := range w.comms {
		states = append(states, st)
	}
	w.mu.Unlock()
	for _, st := range states {
		st.markAborted(cause)
	}
	if propagate && w.hasRemote {
		w.transport.Abort(cause.Error())
	}
}

// Aborted reports whether the world has been aborted.
func (w *World) Aborted() bool { return w.aborted.Load() }

// markAborted flags one communicator state dead and wakes its waiters.
func (st *commState) markAborted(cause error) {
	st.mu.Lock()
	if !st.aborted {
		st.aborted = true
		st.abortErr = cause
		st.cond.Broadcast()
	}
	st.mu.Unlock()
}

// deadlockError inspects every communicator's mailbox for the stuck
// generation and builds the diagnostic. Preference order: a generation some
// ranks have not posted (classic wedge), then a fully posted generation not
// yet consumed (a rank died between posting and reading), then a generic
// no-pending-collective report (ranks stuck in compute or RMA).
func (w *World) deadlockError(timeout time.Duration) *DeadlockError {
	w.mu.Lock()
	states := make([]*commState, 0, len(w.comms))
	for _, st := range w.comms {
		states = append(states, st)
	}
	w.mu.Unlock()
	// Deterministic scan order across runs (map iteration is not).
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })

	var unconsumed *DeadlockError
	for _, st := range states {
		st.mu.Lock()
		// Lowest pending generation on this comm is the one the group is
		// actually stuck on (later gens can only be ahead-runners).
		var gens []int64
		for gen := range st.arrived {
			gens = append(gens, gen)
		}
		sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
		for _, gen := range gens {
			if st.arrived[gen] < len(st.ranks) {
				var posted, missing []int
				for m := range st.ranks {
					if _, ok := st.posted[m][gen]; ok {
						posted = append(posted, st.ranks[m])
					} else {
						missing = append(missing, st.ranks[m])
					}
				}
				sort.Ints(posted)
				sort.Ints(missing)
				e := &DeadlockError{
					Comm: st.id, Op: st.ops[gen], Gen: gen,
					Posted: posted, Missing: missing, Timeout: timeout,
				}
				st.mu.Unlock()
				return e
			}
			if unconsumed == nil && st.taken[gen] < len(st.ranks) {
				all := append([]int(nil), st.ranks...)
				sort.Ints(all)
				unconsumed = &DeadlockError{
					Comm: st.id, Op: st.ops[gen], Gen: gen,
					Posted: all, Timeout: timeout,
				}
			}
		}
		st.mu.Unlock()
	}
	if unconsumed != nil {
		return unconsumed
	}
	return &DeadlockError{Timeout: timeout}
}

// RunConfig configures a fault-aware SPMD execution. The zero value behaves
// exactly like plain Run: no fault injection, no watchdog, no cancellation.
type RunConfig struct {
	// Context cancels the run: on Done the world aborts with ctx.Err() and
	// every rank unwinds. Nil means no cancellation.
	Context context.Context
	// Faults is the fault injector to attach to the world (nil for none).
	Faults *FaultPlan
	// WatchdogTimeout arms the progress watchdog: if no collective posts,
	// none retires, and no RMA op runs for this long, the world aborts
	// with a DeadlockError. It must comfortably exceed the longest
	// communication-free stretch of the program (local compute between
	// collectives does not count as progress) and any injected straggler
	// delay. Zero disables the watchdog.
	WatchdogTimeout time.Duration
	// WatchdogPoll overrides how often the watchdog samples the progress
	// counter (default WatchdogTimeout/8, at least 1ms).
	WatchdogPoll time.Duration
	// Compress enables the delta-varint wire codec for this world: backends
	// that serialize payloads (tcpnet) encode them on the wire, and every
	// backend meters the encoded volume as Meter.WordsEnc (see the package
	// metering conventions). Results are bit-identical with it on or off.
	Compress bool
}

// Run launches fn on size ranks and waits for all of them. It returns the
// world (for meter inspection) and the first error any rank returned. A rank
// panic is contained into a *RankError rather than crashing the process, and
// any rank failure aborts the world so the surviving ranks unwind instead of
// blocking forever in the mailbox.
func Run(size int, fn func(c *Comm) error) (*World, error) {
	return RunWith(RunConfig{}, size, fn)
}

// RunCtx is Run with cancellation: when ctx is done the world aborts and
// RunCtx returns ctx.Err().
func RunCtx(ctx context.Context, size int, fn func(c *Comm) error) (*World, error) {
	return RunWith(RunConfig{Context: ctx}, size, fn)
}

// RunWith is Run under a RunConfig: fault injection, progress watchdog, and
// context cancellation. It always runs over the in-process backend, hosting
// every rank as a goroutine — the package's historical semantics.
func RunWith(cfg RunConfig, size int, fn func(c *Comm) error) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: size %d must be positive", size)
	}
	return RunTransport(cfg, NewInproc(size), fn)
}

// RunTransport launches fn on every world rank hosted by this process's
// transport endpoint and waits for all of them. Over Inproc that is every
// rank and the call is self-contained; over a multi-process backend each
// participating process calls RunTransport with its own endpoint and fn runs
// only on the locally hosted ranks, with remote mailbox and RMA traffic
// riding the transport. The caller retains ownership of tr and must Close it
// after inspecting the returned world.
//
// Error semantics match the historical Run: the first locally hosted rank's
// own failure (in ascending rank order) wins, then the world abort cause
// (which may have originated in a peer process), then any abort-derived rank
// unwinding.
func RunTransport(cfg RunConfig, tr Transport, fn func(c *Comm) error) (*World, error) {
	size := tr.WorldSize()
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size %d must be positive", size)
	}
	local := append([]int(nil), tr.LocalRanks()...)
	if len(local) == 0 {
		return nil, fmt.Errorf("mpi: transport %q hosts no local ranks", tr.Name())
	}
	isLocal := make([]bool, size)
	for _, r := range local {
		if r < 0 || r >= size {
			return nil, fmt.Errorf("mpi: transport %q hosts rank %d outside world of size %d", tr.Name(), r, size)
		}
		isLocal[r] = true
	}
	w := &World{
		size:       size,
		local:      local,
		isLocal:    isLocal,
		hasRemote:  len(local) < size,
		transport:  tr,
		compress:   cfg.Compress,
		meters:     make([]meterCell, size),
		comms:      make(map[string]*commState),
		winsByID:   make(map[string]*winState),
		faults:     cfg.Faults,
		faultColl:  make([]atomic.Int64, size),
		faultRMA:   make([]atomic.Int64, size),
		obsTracers: make([]*obs.Tracer, size),
	}
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = i
	}
	st := w.commStateFor("world", ranks)
	w.mu.Lock()
	w.root = st
	w.mu.Unlock()
	if err := tr.Bind(w); err != nil {
		return nil, fmt.Errorf("mpi: binding transport %q: %w", tr.Name(), err)
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	if cfg.WatchdogTimeout > 0 {
		aux.Add(1)
		go func() {
			defer aux.Done()
			w.watchdog(cfg.WatchdogTimeout, cfg.WatchdogPoll, stop)
		}()
	}
	if cfg.Context != nil {
		aux.Add(1)
		go func() {
			defer aux.Done()
			select {
			case <-cfg.Context.Done():
				w.Abort(cfg.Context.Err())
			case <-stop:
			}
		}()
	}

	errs := make([]error, len(local))
	var wg sync.WaitGroup
	for i, r := range local {
		wg.Add(1)
		go func(i, r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = containPanic(r, p)
				}
				// Any rank failure — returned error, contained panic,
				// injected fault — kills the world so peers blocked in
				// the mailbox unwind instead of leaking. Abort-derived
				// unwindings don't re-abort (the cause is already set).
				if errs[i] != nil && !isAbortDerived(errs[i]) {
					w.Abort(errs[i])
				}
			}()
			errs[i] = fn(&Comm{st: st, member: r, worldRank: r})
		}(i, r)
	}
	wg.Wait()
	close(stop)
	aux.Wait()

	// Error selection: the first rank's own failure (in rank order) wins,
	// matching historical Run semantics; ranks that merely unwound from an
	// abort are reported only through the abort cause.
	for _, err := range errs {
		if err != nil && !isAbortDerived(err) {
			return w, err
		}
	}
	if cause := w.abortReason(); cause != nil {
		return w, cause
	}
	for _, err := range errs {
		if err != nil {
			return w, err
		}
	}
	return w, nil
}

// watchdog samples the world's progress counter until stop closes, aborting
// with a DeadlockError when it stalls past timeout.
func (w *World) watchdog(timeout, poll time.Duration, stop <-chan struct{}) {
	if poll <= 0 {
		poll = timeout / 8
	}
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	last := w.progress.Load()
	lastChange := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			cur := w.progress.Load()
			if cur != last {
				last, lastChange = cur, time.Now()
				continue
			}
			if time.Since(lastChange) >= timeout {
				w.Abort(w.deadlockError(timeout))
				return
			}
		}
	}
}

// containPanic converts a recovered rank panic into a *RankError. The
// package's own abortSignal unwinding becomes a RankError{Op: "abort"}
// wrapping the abort cause; injected-fault RankErrors pass through; anything
// else is a genuine bug in rank code, captured with its stack.
func containPanic(rank int, p any) error {
	switch v := p.(type) {
	case abortSignal:
		cause := v.cause
		if cause == nil {
			cause = errors.New("mpi: world aborted")
		}
		return &RankError{Rank: rank, Op: "abort", Err: cause}
	case *RankError:
		return v
	case error:
		return &RankError{Rank: rank, Op: "panic", Err: v, Stack: debug.Stack()}
	default:
		return &RankError{Rank: rank, Op: "panic", Err: fmt.Errorf("%v", v), Stack: debug.Stack()}
	}
}

// isAbortDerived reports whether err is a rank unwinding caused by a world
// abort (as opposed to the rank's own failure).
func isAbortDerived(err error) bool {
	var re *RankError
	return errors.As(err, &re) && re.Op == "abort"
}

package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestPanicContainment: a rank panic becomes a *RankError naming the rank,
// the process survives, and the sibling ranks (blocked in a Barrier the
// panicking rank never joins) unwind instead of leaking.
func TestPanicContainment(t *testing.T) {
	_, err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			panic("kaboom")
		}
		c.Barrier()
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("want *RankError, got %T: %v", err, err)
	}
	if re.Rank != 2 || re.Op != "panic" {
		t.Fatalf("want rank 2 op panic, got rank %d op %q", re.Rank, re.Op)
	}
	if len(re.Stack) == 0 {
		t.Fatal("contained panic should capture a stack")
	}
}

// TestInjectedCrash: the configured rank dies at exactly its Nth collective,
// the error wraps ErrInjectedCrash, and peers unwind via the abort path.
func TestInjectedCrash(t *testing.T) {
	plan := &FaultPlan{CrashRank: 1, CrashAtCollective: 3}
	counts := make([]int, 4)
	_, err := RunWith(RunConfig{Faults: plan}, 4, func(c *Comm) error {
		for i := 0; i < 10; i++ {
			c.Barrier()
			counts[c.Rank()]++
		}
		return nil
	})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("want ErrInjectedCrash, got %v", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("crash should be attributed to rank 1, got %v", err)
	}
	if counts[1] != 2 {
		t.Fatalf("rank 1 should complete exactly 2 barriers before dying at its 3rd, completed %d", counts[1])
	}
	if plan.Fired() != 1 {
		t.Fatalf("plan should have fired once, fired %d", plan.Fired())
	}
}

// TestCrashBudgetExhausted: once MaxFires is spent, the same plan injects
// nothing — the property the checkpoint/restart retry loop builds on.
func TestCrashBudgetExhausted(t *testing.T) {
	plan := &FaultPlan{CrashRank: 0, CrashAtCollective: 1}
	if _, err := RunWith(RunConfig{Faults: plan}, 2, func(c *Comm) error {
		c.Barrier()
		return nil
	}); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("first run should crash, got %v", err)
	}
	if _, err := RunWith(RunConfig{Faults: plan}, 2, func(c *Comm) error {
		c.Barrier()
		return nil
	}); err != nil {
		t.Fatalf("budget exhausted, second run should be clean, got %v", err)
	}
}

// TestStraggler: injected latency perturbs timing only — the collective
// results stay bit-identical to a clean run, and no error surfaces.
func TestStraggler(t *testing.T) {
	run := func(plan *FaultPlan) ([][]int64, error) {
		out := make([][]int64, 4)
		_, err := RunWith(RunConfig{Faults: plan}, 4, func(c *Comm) error {
			data := []int64{int64(c.Rank()) * 10, int64(c.Rank())*10 + 1}
			flat := c.AllgathervInto(data, nil)
			sum := c.Allreduce(OpSum, int64(c.Rank()))
			out[c.Rank()] = append(flat, sum)
			return nil
		})
		return out, err
	}
	clean, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := run(&FaultPlan{Seed: 7, StragglerRank: 2, StragglerDelay: time.Millisecond, StragglerJitter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for r := range clean {
		if fmt.Sprint(clean[r]) != fmt.Sprint(slow[r]) {
			t.Fatalf("rank %d: straggler changed results: %v vs %v", r, clean[r], slow[r])
		}
	}
}

// TestInjectedRMAFailure: the configured rank dies on its Nth one-sided op
// with ErrInjectedRMAFailure.
func TestInjectedRMAFailure(t *testing.T) {
	plan := &FaultPlan{RMAFailRank: 1, RMAFailAt: 2}
	_, err := RunWith(RunConfig{Faults: plan}, 2, func(c *Comm) error {
		local := make([]int64, 4)
		win := WinCreate(c, local)
		for i := 0; i < 4; i++ {
			win.Put1((c.Rank()+1)%2, i, int64(c.Rank()))
		}
		win.Fence()
		return nil
	})
	if !errors.Is(err, ErrInjectedRMAFailure) {
		t.Fatalf("want ErrInjectedRMAFailure, got %v", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 || re.Op != "rma-put" {
		t.Fatalf("want rank 1 rma-put, got %v", err)
	}
}

// TestRankErrorReturnedFirst: a plain returned error aborts the world, peers
// unwind, and Run reports the original error (not the abort unwindings).
func TestRankErrorReturnedFirst(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(4, func(c *Comm) error {
		if c.Rank() == 3 {
			return boom
		}
		for i := 0; i < 100; i++ {
			c.Barrier()
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the rank's own error, got %v", err)
	}
	if isAbortDerived(err) {
		t.Fatalf("returned error should not be an abort unwinding: %v", err)
	}
}

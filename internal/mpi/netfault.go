package mpi

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrInjectedNetFault marks a world killed by a NetFaultSpec drop or
// partition. Like the FaultPlan sentinels, it lets callers distinguish an
// injected network failure (retryable by design) from a genuine algorithm
// error with errors.Is.
var ErrInjectedNetFault = errors.New("mpi: injected network fault")

// PeerDownError reports that the process hosting a peer rank died or became
// unreachable: its connection returned EOF/reset (Op "read"), a write to it
// failed (Op "write"), or it went silent past the heartbeat deadline
// (Op "heartbeat"). A multi-process backend aborts the world with one, so
// every mailbox waiter wakes immediately instead of stalling into the
// watchdog; the retry plane treats it as restartable.
type PeerDownError struct {
	// Rank is the world rank of the dead peer.
	Rank int
	// Op is how the death was observed: "read", "write" or "heartbeat".
	Op string
	// Err is the underlying cause (io.EOF, a syscall error, a deadline).
	Err error
}

// Error formats the dead rank and how its death was observed.
func (e *PeerDownError) Error() string {
	return fmt.Sprintf("mpi: peer rank %d down (%s): %v", e.Rank, e.Op, e.Err)
}

// Unwrap returns the underlying cause for errors.Is / errors.As.
func (e *PeerDownError) Unwrap() error { return e.Err }

// NetFaultSpec is the network half of the fault plane: a deterministic,
// seeded injector of link failures for multi-process backends, mirroring
// FaultPlan's discipline. Faults trigger at fixed points in each sender's
// own data-frame stream — the Nth mailbox or RMA-request frame it ships on a
// link — so a given spec reproduces the same failure at the same point on
// every execution of the same program. The zero value injects nothing.
//
// Only frames the rank's own goroutine initiates (posts, read-retirement
// notices, RMA requests) count toward the triggers; reactive traffic (RMA
// responses) and control traffic (heartbeats, aborts, byes, bootstrap) is
// exempt, because its interleaving is timer- or peer-driven and counting it
// would make the trigger point racy.
//
// Terminal faults (drop, partition) draw from a shared budget of MaxFires
// (default 1) spanning every world the spec is attached to — the first
// generation faults, the budget is exhausted, and the restarted generation
// runs clean, exactly like FaultPlan's crash budget.
type NetFaultSpec struct {
	// Seed drives the slow-link jitter; same seed, same delays.
	Seed int64

	// DropFrom/DropTo sever that directed link when the sender is about to
	// ship its DropAtFrame-th data frame on it (1-based). The sender's world
	// aborts with ErrInjectedNetFault naming the link and frame; the receiver
	// observes the closed connection as a PeerDownError. DropAtFrame 0
	// disables.
	DropFrom, DropTo int
	DropAtFrame      int

	// Partition severs every link between the Partition rank set and its
	// complement. The cut is enacted deterministically at the lowest rank of
	// the set: when that sender is about to ship its PartitionAtFrame-th
	// cross-cut data frame (1-based), it closes all of its cross-cut links
	// and aborts with ErrInjectedNetFault. PartitionAtFrame 0 disables.
	Partition        []int
	PartitionAtFrame int

	// SlowFrom/SlowTo delay every SlowEvery-th data frame (default every
	// one) on that directed link by SlowDelay plus seeded jitter up to
	// SlowJitter. Timing only — results stay bit-identical — and never
	// consumes MaxFires. SlowDelay 0 disables.
	SlowFrom, SlowTo int
	SlowDelay        time.Duration
	SlowEvery        int
	SlowJitter       time.Duration

	// MaxFires bounds how many terminal faults (drop + partition) the spec
	// injects in total, across all worlds sharing it. Zero means 1.
	MaxFires int

	fired atomic.Int64
}

// Fired returns how many terminal faults the spec has injected so far.
func (f *NetFaultSpec) Fired() int { return int(f.fired.Load()) }

// fire consumes one unit of the terminal-fault budget, returning false once
// MaxFires is exhausted.
func (f *NetFaultSpec) fire() bool {
	limit := int64(f.MaxFires)
	if limit <= 0 {
		limit = 1
	}
	for {
		cur := f.fired.Load()
		if cur >= limit {
			return false
		}
		if f.fired.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// DropsLink reports whether the sender's n-th data frame on the directed
// link from→to severs it, consuming budget when it does.
func (f *NetFaultSpec) DropsLink(from, to int, n int64) bool {
	return f.DropAtFrame > 0 && from == f.DropFrom && to == f.DropTo &&
		n == int64(f.DropAtFrame) && f.fire()
}

// PartitionSender returns the rank that enacts the partition cut (the lowest
// rank of the set), or -1 when no partition is configured.
func (f *NetFaultSpec) PartitionSender() int {
	if f.PartitionAtFrame <= 0 || len(f.Partition) == 0 {
		return -1
	}
	min := f.Partition[0]
	for _, r := range f.Partition[1:] {
		if r < min {
			min = r
		}
	}
	return min
}

// InPartition reports whether rank is in the configured partition set.
func (f *NetFaultSpec) InPartition(rank int) bool {
	for _, r := range f.Partition {
		if r == rank {
			return true
		}
	}
	return false
}

// CrossesCut reports whether the directed link from→to crosses the
// partition cut.
func (f *NetFaultSpec) CrossesCut(from, to int) bool {
	if len(f.Partition) == 0 {
		return false
	}
	return f.InPartition(from) != f.InPartition(to)
}

// DropsCut reports whether the enacting sender's n-th cross-cut data frame
// triggers the partition, consuming budget when it does. Callers must only
// count cross-cut frames at PartitionSender().
func (f *NetFaultSpec) DropsCut(n int64) bool {
	return f.PartitionAtFrame > 0 && n == int64(f.PartitionAtFrame) && f.fire()
}

// Delay returns the injected latency for the sender's n-th data frame on
// the directed link from→to (zero for none). Deterministic in (spec, link,
// n); never consumes budget.
func (f *NetFaultSpec) Delay(from, to int, n int64) time.Duration {
	if f.SlowDelay <= 0 || from != f.SlowFrom || to != f.SlowTo {
		return 0
	}
	every := f.SlowEvery
	if every <= 0 {
		every = 1
	}
	if n%int64(every) != 0 {
		return 0
	}
	d := f.SlowDelay
	if f.SlowJitter > 0 {
		d += time.Duration(splitmix64(uint64(f.Seed)^uint64(from)<<40^uint64(to)<<20^uint64(n)) % uint64(f.SlowJitter))
	}
	return d
}

// Restartable reports whether err is the kind of failure a supervisor should
// retry with a fresh world generation: an injected or genuine transport
// fault, a dead peer, a watchdog deadlock, a remote abort, or a rank that
// merely unwound from one of those. Genuine algorithm errors and contained
// rank panics are not restartable — restarting would reproduce them.
func Restartable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrInjectedCrash) || errors.Is(err, ErrInjectedRMAFailure) || errors.Is(err, ErrInjectedNetFault) {
		return true
	}
	var pd *PeerDownError
	var te *TransportError
	var ra *RemoteAbortError
	var de *DeadlockError
	if errors.As(err, &pd) || errors.As(err, &te) || errors.As(err, &ra) || errors.As(err, &de) {
		return true
	}
	// A rank unwound by a world abort: the cause (possibly remote) is what
	// failed, and it already passed through Abort — restartable.
	var re *RankError
	if errors.As(err, &re) && re.Op == "abort" {
		return true
	}
	return false
}

package mpi

import (
	"fmt"
	"sync"
	"time"

	"mcmdist/internal/obs"
)

// Request is one rank's handle on a split-phase collective. The call has
// already been posted to the mailbox (starting never blocks); it completes
// in Wait or in a successful Test. Completion assembles the result, meters
// the transfer exactly once with the same counts as the blocking
// counterpart, and — for collectives whose peers read this rank's send
// buffer (all of them except Allreduce and Barrier) — waits until every
// peer has finished reading, so the MPI contract "the send buffer may be
// reused after completion" carries over to recycled arena buffers.
//
// A Request is safe for concurrent Wait/Test from multiple goroutines; the
// result on the typed wrappers is valid once any of them observes
// completion.
type Request struct {
	c   *Comm
	gen int64
	op  string

	mu       sync.Mutex
	started  time.Time
	exposed  time.Duration
	readDone bool // result assembled, finishRead declared
	done     bool
	lending  bool        // completion additionally waits for consumption
	finish   func([]any) // assembles the result and meters; nil for Barrier
}

// start posts parts as this communicator's next collective and returns the
// request handle. It never blocks (beyond the fault plane's injected
// straggler delay, when one is configured). op labels the collective for
// watchdog diagnostics and fault injection.
func (c *Comm) start(op string, parts []any, lending bool, finish func([]any)) *Request {
	c.enterCollective(op)
	gen := c.nextGen
	c.nextGen++
	r := &Request{c: c, gen: gen, op: op, started: time.Now(), lending: lending, finish: finish}
	c.st.post(c.member, gen, parts, op)
	return r
}

// Wait blocks until the collective completes. Idempotent.
func (r *Request) Wait() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	begin := time.Now()
	r.advance()
	if r.lending {
		r.c.st.waitConsumed(r.gen)
	}
	r.exposed += time.Since(begin)
	r.complete()
}

// Test polls for completion without blocking. Once it returns true the
// collective is complete and Wait returns immediately.
func (r *Request) Test() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return true
	}
	begin := time.Now()
	defer func() { r.exposed += time.Since(begin) }()
	if !r.readDone {
		if !r.c.st.allPosted(r.gen) {
			return false
		}
		r.advance()
	}
	if r.lending && !r.c.st.isConsumed(r.gen) {
		return false
	}
	r.complete()
	return true
}

// advance assembles the result and retires this rank's read. Caller holds
// r.mu; the collect inside only blocks when reached from Wait.
func (r *Request) advance() {
	if r.readDone {
		return
	}
	got := r.c.st.collect(r.c.member, r.gen)
	if r.finish != nil {
		r.finish(got)
	}
	r.c.st.finishRead(r.c.member, r.gen)
	r.readDone = true
}

// complete records the time ledger once, plus a collective span (post to
// completion) on the rank's comm track when tracing is on. Caller holds
// r.mu.
func (r *Request) complete() {
	r.done = true
	r.c.addCommTimes(time.Since(r.started), r.exposed)
	if tr := r.c.tracer(); tr != nil {
		tr.EndFlow(obs.KindCollective, r.op, obs.At(r.started), r.gen, obs.FlowID(r.c.st.id, r.gen))
	}
}

// SlicesRequest is a split-phase collective resolving to one slice per
// source rank (IAllgatherv, IAlltoallv).
type SlicesRequest struct {
	r   *Request
	out [][]int64
}

// Wait blocks until the collective completes and returns the result.
func (q *SlicesRequest) Wait() [][]int64 {
	q.r.Wait()
	return q.out
}

// Test polls for completion; once true, Wait returns without blocking.
func (q *SlicesRequest) Test() bool { return q.r.Test() }

// IntsRequest is a split-phase collective resolving to one flat []int64
// (IBcast, IAllgathervInto, IAlltoallvFlat).
type IntsRequest struct {
	r   *Request
	out []int64
}

// Wait blocks until the collective completes and returns the result.
func (q *IntsRequest) Wait() []int64 {
	q.r.Wait()
	return q.out
}

// Test polls for completion; once true, Wait returns without blocking.
func (q *IntsRequest) Test() bool { return q.r.Test() }

// IntoRequest is a split-phase AlltoallvInto: per-source subslices plus the
// grown backing buffer.
type IntoRequest struct {
	r   *Request
	out [][]int64
	buf []int64
}

// Wait blocks until the collective completes and returns the per-source
// subslices and the grown buffer.
func (q *IntoRequest) Wait() ([][]int64, []int64) {
	q.r.Wait()
	return q.out, q.buf
}

// Test polls for completion; once true, Wait returns without blocking.
func (q *IntoRequest) Test() bool { return q.r.Test() }

// ValueRequest is a split-phase collective resolving to a single value
// (IAllreduce).
type ValueRequest struct {
	r   *Request
	out int64
}

// Wait blocks until the collective completes and returns the result.
func (q *ValueRequest) Wait() int64 {
	q.r.Wait()
	return q.out
}

// Test polls for completion; once true, Wait returns without blocking.
func (q *ValueRequest) Test() bool { return q.r.Test() }

// IBcast starts a split-phase broadcast of root's data; result and metering
// as Bcast. The root must not mutate data before completion.
func (c *Comm) IBcast(root int, data []int64) *IntsRequest {
	size := c.Size()
	parts := make([]any, size)
	if c.member == root {
		for d := 0; d < size; d++ {
			parts[d] = data
		}
	}
	q := &IntsRequest{}
	q.r = c.start("bcast", parts, true, func(got []any) {
		payload := asInts(got[root])
		if len(payload) > 0 {
			depth := logTreeDepth(size)
			c.addComm(KindBcast, depth, depth*int64(len(payload)), depth*c.encWords(payload))
		}
		if c.member == root {
			q.out = data
		} else {
			q.out = append([]int64(nil), payload...)
		}
	})
	return q
}

// IAllgatherv starts a split-phase allgather of data; result and metering
// as Allgatherv. The caller must not mutate data before completion.
func (c *Comm) IAllgatherv(data []int64) *SlicesRequest {
	size := c.Size()
	parts := make([]any, size)
	for d := 0; d < size; d++ {
		parts[d] = data
	}
	q := &SlicesRequest{}
	q.r = c.start("allgatherv", parts, true, func(got []any) {
		out := make([][]int64, size)
		var words, wordsEnc int64
		for s := 0; s < size; s++ {
			in := asInts(got[s])
			if s == c.member {
				out[s] = data
				continue
			}
			words += int64(len(in))
			wordsEnc += c.encWords(in)
			out[s] = append([]int64(nil), in...)
		}
		c.addComm(KindAllgather, int64(size-1), words, wordsEnc)
		q.out = out
	})
	return q
}

// IAllgathervInto starts a split-phase buffer-lending allgather; result and
// metering as AllgathervInto. On completion every peer has finished reading
// data, so both data and the returned buffer may be recycled.
func (c *Comm) IAllgathervInto(data []int64, buf []int64) *IntsRequest {
	size := c.Size()
	parts := make([]any, size)
	for d := 0; d < size; d++ {
		parts[d] = data
	}
	q := &IntsRequest{}
	q.r = c.start("allgatherv", parts, true, func(got []any) {
		var words, wordsEnc int64
		for s := 0; s < size; s++ {
			in := asInts(got[s])
			if s != c.member {
				words += int64(len(in))
				wordsEnc += c.encWords(in)
			}
			buf = append(buf, in...)
		}
		c.addComm(KindAllgather, int64(size-1), words, wordsEnc)
		q.out = buf
	})
	return q
}

// IAlltoallv starts a split-phase personalized all-to-all; result and
// metering as Alltoallv. The caller must not mutate parts before
// completion.
func (c *Comm) IAlltoallv(parts [][]int64) *SlicesRequest {
	anyParts, words, wordsEnc := c.checkParts("Alltoallv", parts)
	size := c.Size()
	q := &SlicesRequest{}
	q.r = c.start("alltoallv", anyParts, true, func(got []any) {
		out := make([][]int64, size)
		for s := 0; s < size; s++ {
			in := asInts(got[s])
			if s == c.member {
				out[s] = in
				continue
			}
			out[s] = append([]int64(nil), in...)
		}
		c.addComm(KindAlltoall, int64(size-1), words, wordsEnc)
		q.out = out
	})
	return q
}

// IAlltoallvInto starts a split-phase buffer-lending personalized
// all-to-all; result and metering as AlltoallvInto. On completion every
// peer has finished reading parts, so parts and the buffer may be recycled.
func (c *Comm) IAlltoallvInto(parts [][]int64, buf []int64) *IntoRequest {
	anyParts, words, wordsEnc := c.checkParts("AlltoallvInto", parts)
	size := c.Size()
	q := &IntoRequest{}
	q.r = c.start("alltoallv", anyParts, true, func(got []any) {
		total := 0
		for s := 0; s < size; s++ {
			total += len(asInts(got[s]))
		}
		if cap(buf)-len(buf) < total {
			grown := make([]int64, len(buf), len(buf)+total)
			copy(grown, buf)
			buf = grown
		}
		out := make([][]int64, size)
		for s := 0; s < size; s++ {
			start := len(buf)
			buf = append(buf, asInts(got[s])...)
			out[s] = buf[start:len(buf):len(buf)]
		}
		c.addComm(KindAlltoall, int64(size-1), words, wordsEnc)
		q.out, q.buf = out, buf
	})
	return q
}

// IAlltoallvFlat starts a split-phase flat personalized all-to-all; result
// and metering as AlltoallvFlat. On completion parts and the buffer may be
// recycled.
func (c *Comm) IAlltoallvFlat(parts [][]int64, buf []int64) *IntsRequest {
	anyParts, words, wordsEnc := c.checkParts("AlltoallvFlat", parts)
	size := c.Size()
	q := &IntsRequest{}
	q.r = c.start("alltoallv", anyParts, true, func(got []any) {
		for s := 0; s < size; s++ {
			buf = append(buf, asInts(got[s])...)
		}
		c.addComm(KindAlltoall, int64(size-1), words, wordsEnc)
		q.out = buf
	})
	return q
}

// IAllreduce starts a split-phase allreduce of val; result and metering as
// Allreduce. Nothing is lent (payloads are copied at start), so completion
// does not wait for peers to read — the natural fit for pipelined scalar
// reductions like the frontier count.
func (c *Comm) IAllreduce(op ReduceOp, val int64) *ValueRequest {
	size := c.Size()
	parts := make([]any, size)
	for d := 0; d < size; d++ {
		parts[d] = []int64{val}
	}
	q := &ValueRequest{}
	q.r = c.start("allreduce", parts, false, func(got []any) {
		acc := asInts(got[0])[0]
		for s := 1; s < size; s++ {
			acc = op.Apply(acc, asInts(got[s])[0])
		}
		depth := logTreeDepth(size)
		c.addComm(KindReduce, 2*depth, 2*depth, c.rawEnc(2*depth))
		q.out = acc
	})
	return q
}

// checkParts validates a personalized-all-to-all parts slice before
// anything is posted (so a malformed call panics without corrupting the
// collective stream) and returns the boxed parts plus the raw and encoded
// words sent to other ranks.
func (c *Comm) checkParts(name string, parts [][]int64) ([]any, int64, int64) {
	size := c.Size()
	if len(parts) != size {
		panic(fmt.Sprintf("mpi: %s with %d parts on %d ranks", name, len(parts), size))
	}
	anyParts := make([]any, size)
	var words, wordsEnc int64
	for d := 0; d < size; d++ {
		anyParts[d] = parts[d]
		if d != c.member {
			words += int64(len(parts[d]))
			wordsEnc += c.encWords(parts[d])
		}
	}
	return anyParts, words, wordsEnc
}

// PartsRequest is a progressive split-phase collective: instead of waiting
// for every peer, Next hands back each source's payload as it arrives, so
// the caller can fold local work (multiply, merge, copy-out) into the wait
// for stragglers. Payloads returned by Next alias the sender's buffer —
// they are read-only and valid until Finish. Finish retires the exchange:
// it meters once (identically to the blocking counterpart), declares this
// rank done reading, and waits until all peers are too, after which the
// caller may recycle its send parts.
type PartsRequest struct {
	c   *Comm
	gen int64
	op  string

	mu        sync.Mutex
	delivered []bool
	ndeliv    int
	kind      CommKind
	msgs      int64
	words     int64 // alltoall: fixed at start; allgather: grows per arrival
	wordsEnc  int64 // encoded counterpart of words, same accrual rule
	recvWords bool  // words counted from received payloads (allgather rule)
	started   time.Time
	exposed   time.Duration
	finished  bool
}

// IAllgathervParts starts a progressive allgather of data: each peer's
// contribution is surfaced by Next as it arrives. Metering (at Finish) is
// identical to Allgatherv.
func (c *Comm) IAllgathervParts(data []int64) *PartsRequest {
	size := c.Size()
	parts := make([]any, size)
	for d := 0; d < size; d++ {
		parts[d] = data
	}
	c.enterCollective("allgatherv")
	gen := c.nextGen
	c.nextGen++
	pr := &PartsRequest{
		c: c, gen: gen, op: "allgatherv",
		delivered: make([]bool, size),
		kind:      KindAllgather,
		msgs:      int64(size - 1),
		recvWords: true,
		started:   time.Now(),
	}
	c.st.post(c.member, gen, parts, "allgatherv")
	return pr
}

// IAlltoallvParts starts a progressive personalized all-to-all: each
// source's part is surfaced by Next as it arrives. Metering (at Finish) is
// identical to Alltoallv.
func (c *Comm) IAlltoallvParts(parts [][]int64) *PartsRequest {
	anyParts, words, wordsEnc := c.checkParts("AlltoallvParts", parts)
	size := c.Size()
	c.enterCollective("alltoallv")
	gen := c.nextGen
	c.nextGen++
	pr := &PartsRequest{
		c: c, gen: gen, op: "alltoallv",
		delivered: make([]bool, size),
		kind:      KindAlltoall,
		msgs:      int64(size - 1),
		words:     words,
		wordsEnc:  wordsEnc,
		started:   time.Now(),
	}
	c.st.post(c.member, gen, anyParts, "alltoallv")
	return pr
}

// Next blocks until an undelivered source's payload has arrived and returns
// (src, payload, true); sources come back in arrival order, not rank order.
// It returns ok=false once every source has been delivered. The payload
// aliases the sender's buffer: treat it as read-only and do not retain it
// past Finish.
func (pr *PartsRequest) Next() (src int, payload []int64, ok bool) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.next()
}

// next is Next with pr.mu held.
func (pr *PartsRequest) next() (int, []int64, bool) {
	if pr.ndeliv == len(pr.delivered) {
		return -1, nil, false
	}
	begin := time.Now()
	src, part := pr.c.st.nextArrived(pr.c.member, pr.gen, pr.delivered)
	pr.exposed += time.Since(begin)
	pr.delivered[src] = true
	pr.ndeliv++
	in := asInts(part)
	if pr.recvWords && src != pr.c.member {
		pr.words += int64(len(in))
		pr.wordsEnc += pr.c.encWords(in)
	}
	return src, in, true
}

// Pending returns how many sources have not yet been delivered by Next.
func (pr *PartsRequest) Pending() int {
	pr.mu.Lock()
	n := len(pr.delivered) - pr.ndeliv
	pr.mu.Unlock()
	return n
}

// Ready reports whether some undelivered source has already arrived, i.e.
// whether Next would return without blocking. It returns false when all
// sources have been delivered.
func (pr *PartsRequest) Ready() bool {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.ndeliv == len(pr.delivered) {
		return false
	}
	st := pr.c.st
	st.mu.Lock()
	defer st.mu.Unlock()
	for s := range pr.delivered {
		if pr.delivered[s] {
			continue
		}
		if _, ok := st.posted[s][pr.gen]; ok {
			return true
		}
	}
	return false
}

// Drain appends every remaining source's payload into buf in arrival order
// and returns the grown buffer. The copy means buf stays valid after
// Finish; arrival order is fine for consumers that sort the union anyway.
func (pr *PartsRequest) Drain(buf []int64) []int64 {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	for {
		_, part, ok := pr.next()
		if !ok {
			return buf
		}
		buf = append(buf, part...)
	}
}

// Finish completes the exchange: any undelivered sources are drained (their
// payloads discarded, but still counted), the transfer is metered exactly
// once, and the call blocks until every peer has finished reading this
// rank's parts — after which the send buffers may be recycled. Idempotent.
func (pr *PartsRequest) Finish() {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.finished {
		return
	}
	for {
		if _, _, ok := pr.next(); !ok {
			break
		}
	}
	begin := time.Now()
	pr.c.st.finishRead(pr.c.member, pr.gen)
	pr.c.st.waitConsumed(pr.gen)
	pr.exposed += time.Since(begin)
	pr.c.addComm(pr.kind, pr.msgs, pr.words, pr.wordsEnc)
	pr.c.addCommTimes(time.Since(pr.started), pr.exposed)
	if tr := pr.c.tracer(); tr != nil {
		tr.EndFlow(obs.KindCollective, pr.op, obs.At(pr.started), pr.gen, obs.FlowID(pr.c.st.id, pr.gen))
	}
	pr.finished = true
}

package mpi

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// driveCollectives issues one of every collective family. With split set it
// routes everything expressible through the request layer (including the
// progressive Parts variants); otherwise it uses the blocking forms with
// the same payloads. The two schedules must leave identical meters.
func driveCollectives(c *Comm, split bool) {
	p := c.Size()
	data := make([]int64, 8+c.Rank())
	for i := range data {
		data[i] = int64(c.Rank()*100 + i)
	}
	parts := make([][]int64, p)
	for d := range parts {
		parts[d] = []int64{int64(c.Rank()), int64(d), 7}
	}
	if split {
		c.IAllgatherv(data).Wait()
		c.IAlltoallv(parts).Wait()
		c.IBcast(1, data).Wait()
		c.IAllreduce(OpSum, int64(c.Rank())).Wait()
		rq := c.IAllgathervParts(data)
		for {
			if _, _, ok := rq.Next(); !ok {
				break
			}
		}
		rq.Finish()
		rq = c.IAlltoallvParts(parts)
		rq.Drain(nil)
		rq.Finish()
	} else {
		c.Allgatherv(data)
		c.Alltoallv(parts)
		c.Bcast(1, data)
		c.Allreduce(OpSum, int64(c.Rank()))
		c.Allgatherv(data) // blocking counterpart of the Parts allgather
		c.Alltoallv(parts) // blocking counterpart of the Parts alltoall
	}
	c.Barrier()
	c.Gatherv(0, data)
	var sc [][]int64
	if c.Rank() == 0 {
		sc = make([][]int64, p)
		for d := range sc {
			sc[d] = []int64{int64(d), 11}
		}
	}
	c.Scatterv(0, sc)
	c.AddWork(10)
}

// TestRequestMeterConservation: the request layer counts every transfer
// exactly once. Per rank the per-kind meters sum to the rank total, the
// rank totals sum to TotalMeter, and a split-phase schedule's meters are
// identical to the blocking schedule's, rank by rank and kind by kind.
func TestRequestMeterConservation(t *testing.T) {
	const p = 4
	worlds := make(map[bool]*World)
	for _, split := range []bool{false, true} {
		w, err := Run(p, func(c *Comm) error {
			driveCollectives(c, split)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		worlds[split] = w
	}
	for _, split := range []bool{false, true} {
		w := worlds[split]
		var sum Meter
		for r := 0; r < p; r++ {
			total := w.RankMeter(r)
			sum = sum.Add(total)
			var kMsgs, kWords int64
			for k := CommKind(0); k < numKinds; k++ {
				km := w.RankKindMeter(r, k)
				kMsgs += km.Msgs
				kWords += km.Words
			}
			if kMsgs != total.Msgs || kWords != total.Words {
				t.Fatalf("split=%v rank %d: kinds sum (%d,%d) != rank total (%d,%d)",
					split, r, kMsgs, kWords, total.Msgs, total.Words)
			}
		}
		if got := w.TotalMeter(); got != sum {
			t.Fatalf("split=%v: rank sum %+v != TotalMeter %+v", split, sum, got)
		}
	}
	for r := 0; r < p; r++ {
		if b, s := worlds[false].RankMeter(r), worlds[true].RankMeter(r); b != s {
			t.Fatalf("rank %d: blocking meter %+v != split-phase meter %+v", r, b, s)
		}
		for k := CommKind(0); k < numKinds; k++ {
			b := worlds[false].RankKindMeter(r, k)
			s := worlds[true].RankKindMeter(r, k)
			if b != s {
				t.Fatalf("rank %d kind %v: blocking %+v != split-phase %+v", r, k, b, s)
			}
		}
	}
}

// TestCompressedMeterConservation: with wire compression on, WordsEnc obeys
// the same conservation laws as Words — per-kind sums equal the rank total,
// rank totals sum to TotalMeter, blocking and split-phase schedules agree —
// and is strictly positive for every kind that moved payload. Turning
// compression on must not perturb the raw ledger: Msgs/Words/Work are
// bit-identical to the uncompressed run, where WordsEnc is exactly zero.
func TestCompressedMeterConservation(t *testing.T) {
	const p = 4
	type key struct{ split, compress bool }
	worlds := make(map[key]*World)
	for _, split := range []bool{false, true} {
		for _, compress := range []bool{false, true} {
			w, err := RunWith(RunConfig{Compress: compress}, p, func(c *Comm) error {
				driveCollectives(c, split)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			worlds[key{split, compress}] = w
		}
	}
	for _, split := range []bool{false, true} {
		w := worlds[key{split, true}]
		var sum Meter
		for r := 0; r < p; r++ {
			total := w.RankMeter(r)
			sum = sum.Add(total)
			var kEnc int64
			for k := CommKind(0); k < numKinds; k++ {
				km := w.RankKindMeter(r, k)
				kEnc += km.WordsEnc
				if km.Words > 0 && km.WordsEnc <= 0 {
					t.Fatalf("split=%v rank %d kind %v: Words %d but WordsEnc %d",
						split, r, k, km.Words, km.WordsEnc)
				}
			}
			if kEnc != total.WordsEnc {
				t.Fatalf("split=%v rank %d: kinds WordsEnc sum %d != rank total %d",
					split, r, kEnc, total.WordsEnc)
			}
		}
		if got := w.TotalMeter(); got != sum {
			t.Fatalf("split=%v: rank sum %+v != TotalMeter %+v", split, sum, got)
		}
		// Blocking and split-phase schedules leave identical encoded ledgers.
		b, s := worlds[key{false, true}], worlds[key{true, true}]
		for r := 0; r < p; r++ {
			if bm, sm := b.RankMeter(r), s.RankMeter(r); bm != sm {
				t.Fatalf("rank %d: blocking %+v != split-phase %+v", r, bm, sm)
			}
		}
		// Compression only adds the WordsEnc column: the raw ledger matches
		// the uncompressed run, which itself carries WordsEnc == 0.
		off := worlds[key{split, false}]
		for r := 0; r < p; r++ {
			om, cm := off.RankMeter(r), w.RankMeter(r)
			if om.WordsEnc != 0 {
				t.Fatalf("split=%v rank %d: WordsEnc %d with compression off", split, r, om.WordsEnc)
			}
			om.WordsEnc = cm.WordsEnc
			if om != cm {
				t.Fatalf("split=%v rank %d: raw ledger changed under compression: off %+v on %+v",
					split, r, off.RankMeter(r), cm)
			}
		}
	}
}

// TestRequestWaitTestConcurrent hammers shared requests from multiple
// goroutines per rank — one Test-spinning, one calling Wait, plus the rank
// goroutine's own Wait — across many rounds. Run under -race this is the
// thread-safety stress for the split-phase request state machine.
func TestRequestWaitTestConcurrent(t *testing.T) {
	const p = 4
	const rounds = 25
	_, err := Run(p, func(c *Comm) error {
		payload := []int64{int64(c.Rank()), int64(c.Rank() * 3)}
		for i := 0; i < rounds; i++ {
			vr := c.IAllreduce(OpSum, int64(c.Rank()+i))
			gr := c.IAllgatherv(payload)
			want := int64(p*(p-1)/2 + p*i)
			errs := make(chan error, 2)
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for !vr.Test() {
					runtime.Gosched()
				}
				if got := vr.Wait(); got != want {
					errs <- fmt.Errorf("allreduce got %d want %d", got, want)
				}
			}()
			go func() {
				defer wg.Done()
				gr.Test() // probe once, then block
				out := gr.Wait()
				if len(out) != p || out[c.Rank()][1] != payload[1] {
					errs <- fmt.Errorf("allgather round %d: bad result %v", i, out)
				}
			}()
			if got := vr.Wait(); got != want {
				return fmt.Errorf("main allreduce got %d want %d", got, want)
			}
			out := gr.Wait()
			if len(out) != p {
				return fmt.Errorf("main allgather got %d parts", len(out))
			}
			wg.Wait()
			select {
			case e := <-errs:
				return e
			default:
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

package tcpnet

// Failure-detector and teardown-bound tests, built on hand-assembled
// endpoints over net.Pipe: a pipe gives us the one thing a loopback world
// cannot — a peer that is connected but perfectly silent (nothing reads,
// nothing writes, the socket never closes), which is exactly how a SIGSTOPed
// or wedged process looks from the outside.

import (
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"mcmdist/internal/mpi"
)

// pipeNet builds a bound-ready 2-rank endpoint hosting rank 0 whose only
// peer (rank 1) is the near end of a net.Pipe. The far end is returned to
// the test: left untouched it models a silent peer; closed it models a
// crashed one.
func pipeNet(opts Options) (*Net, net.Conn) {
	here, there := net.Pipe()
	n := &Net{rank: 0, size: 2, opts: opts.withDefaults(), peers: make([]*peer, 2)}
	n.peers[1] = newPeer(1, here)
	return n, there
}

// waitNetGoroutinesGone polls until no tcpnet read/flush/heartbeat goroutine
// remains, failing the test if any survives the deadline — the leak check of
// the silent-peer regression.
func waitNetGoroutinesGone(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	buf := make([]byte, 1<<20)
	for {
		stacks := string(buf[:runtime.Stack(buf, true)])
		leaked := strings.Contains(stacks, "(*Net).readLoop") ||
			strings.Contains(stacks, "(*Net).flushLoop") ||
			strings.Contains(stacks, "(*Net).heartbeats")
		if !leaked {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tcpnet goroutines leaked past Close:\n%s", stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHeartbeatDetectsSilentPeer pins the failure detector: a peer that
// stays connected but never sends a frame is declared down within the
// heartbeat timeout, and the world aborts with a PeerDownError naming the
// rank and the heartbeat plane — not a deadlock, not a hang.
func TestHeartbeatDetectsSilentPeer(t *testing.T) {
	n, there := pipeNet(Options{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  80 * time.Millisecond,
		CloseTimeout:      200 * time.Millisecond,
	})
	defer there.Close()

	// The rank does no communication of its own: peer death must surface
	// through the detector alone, as the abort cause of the world.
	_, err := mpi.RunTransport(mpi.RunConfig{}, n, func(c *mpi.Comm) error {
		time.Sleep(time.Second)
		return nil
	})
	var pd *mpi.PeerDownError
	if !errors.As(err, &pd) {
		t.Fatalf("silent peer surfaced as %v, want PeerDownError", err)
	}
	if pd.Rank != 1 || pd.Op != "heartbeat" {
		t.Fatalf("detector blamed rank %d op %q, want rank 1 op heartbeat", pd.Rank, pd.Op)
	}
	if !mpi.Restartable(err) {
		t.Fatalf("heartbeat death not restartable: %v", err)
	}
	start := time.Now()
	n.Close()
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Close of aborted endpoint took %v", d)
	}
	waitNetGoroutinesGone(t)
}

// TestCloseBoundedBySilentPeer is the regression test for Close with one
// silent peer: a peer that accepts the connection but never drains it used
// to hold Close for the full write timeout. Now every step of the drain is
// bounded by CloseTimeout and the goroutines are reaped regardless.
func TestCloseBoundedBySilentPeer(t *testing.T) {
	n, there := pipeNet(Options{
		WriteTimeout:      10 * time.Second, // would be the hang, pre-fix
		CloseTimeout:      200 * time.Millisecond,
		HeartbeatInterval: -1, // this test is about the drain, not the detector
	})
	defer there.Close()
	if err := n.Bind(nil); err != nil {
		t.Fatalf("bind: %v", err)
	}

	// Wedge the write plane: the pipe has no reader, so the flusher blocks
	// mid-Write with more frames queued behind it.
	p := n.peers[1]
	for i := 0; i < 4; i++ {
		if err := n.enqueue(p, framePost, make([]byte, 64<<10)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	time.Sleep(20 * time.Millisecond) // let the flusher pick up and block

	start := time.Now()
	n.Close()
	elapsed := time.Since(start)
	if elapsed > 3*time.Second {
		t.Fatalf("Close took %v with a silent peer, want ~CloseTimeout (200ms)", elapsed)
	}
	p.qmu.Lock()
	stuck := p.qtimeout || p.qerr != nil
	p.qmu.Unlock()
	if !stuck {
		t.Fatal("silent peer's queue neither timed out nor errored — what did Close wait for?")
	}
	waitNetGoroutinesGone(t)
}

// TestCloseCleanPeerStillGraceful guards the other side of the bound: a
// healthy peer that drains and answers BYE gets the full graceful path, no
// spurious timeouts.
func TestCloseCleanPeerStillGraceful(t *testing.T) {
	n, there := pipeNet(Options{
		CloseTimeout:      2 * time.Second,
		HeartbeatInterval: -1,
	})
	if err := n.Bind(nil); err != nil {
		t.Fatalf("bind: %v", err)
	}
	// A cooperative far side: drain everything, answer the BYE in kind.
	go func() {
		for {
			typ, _, err := readFrame(there)
			if err != nil {
				return
			}
			if typ == frameBye {
				writeFrame(there, frameBye, nil)
			}
		}
	}()
	defer there.Close()
	if err := n.enqueue(n.peers[1], framePost, []byte("payload")); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	start := time.Now()
	n.Close()
	if d := time.Since(start); d > time.Second {
		t.Fatalf("graceful Close took %v against a cooperative peer", d)
	}
	p := n.peers[1]
	p.qmu.Lock()
	defer p.qmu.Unlock()
	if p.qtimeout {
		t.Fatal("cooperative peer's drain was marked timed out")
	}
	if p.qerr != nil {
		t.Fatalf("cooperative peer's write plane errored: %v", p.qerr)
	}
}

// TestDialRetryWindowBounded pins that dialRetry gives up within (roughly)
// its window when nobody ever listens, instead of retrying forever.
func TestDialRetryWindowBounded(t *testing.T) {
	// A listener we immediately close: the port is real but refuses.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	conn, err := dialRetry(addr, 300*time.Millisecond)
	if err == nil {
		conn.Close()
		t.Fatal("dialRetry connected to a closed port")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("dialRetry held a 300ms window open for %v", d)
	}
}

package tcpnet_test

// Loopback integration tests for the transport-level concerns the
// conformance suite deliberately abstracts away: the bytes actually written
// to the sockets (compression must shrink them) and the write-plane counters
// (aggregation can only reduce syscalls, never lose frames).

import (
	"fmt"
	"sync"
	"testing"

	"mcmdist/internal/mpi"
	"mcmdist/internal/mpi/tcpnet"
)

// runLoopback executes fn over a size-rank loopback TCP world and returns
// the per-endpoint wire stats plus each rank's world.
func runLoopback(t *testing.T, cfg mpi.RunConfig, size int, fn func(c *mpi.Comm) error) []tcpnet.WireStats {
	t.Helper()
	eps, err := mpi.NewTransportSet("tcp", size)
	if err != nil {
		t.Fatalf("building tcp endpoints: %v", err)
	}
	errs := make([]error, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep mpi.Transport) {
			defer wg.Done()
			_, errs[i] = mpi.RunTransport(cfg, ep, fn)
		}(i, ep)
	}
	wg.Wait()
	stats := make([]tcpnet.WireStats, len(eps))
	for i, ep := range eps {
		n, ok := ep.(*tcpnet.Net)
		if !ok {
			t.Fatalf("endpoint %d is %T, not *tcpnet.Net", i, ep)
		}
		stats[i] = n.WireStats()
	}
	if err := mpi.CloseAll(eps); err != nil {
		t.Errorf("closing endpoints: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
	}
	return stats
}

// exchange is the shared workload: id-stream-shaped (sorted, small-delta)
// payloads through both mailbox collectives, the traffic compression is for.
func exchange(c *mpi.Comm) error {
	p := c.Size()
	ids := make([]int64, 4096)
	for i := range ids {
		ids[i] = int64(c.Rank()) + int64(i)*3
	}
	got := c.Allgatherv(ids)
	for s := 0; s < p; s++ {
		if len(got[s]) != len(ids) || got[s][1] != int64(s)+3 {
			return fmt.Errorf("rank %d: bad allgather part from %d: %v...", c.Rank(), s, got[s][:2])
		}
	}
	parts := make([][]int64, p)
	for d := range parts {
		parts[d] = ids[:1024]
	}
	recv := c.Alltoallv(parts)
	for s := 0; s < p; s++ {
		if len(recv[s]) != 1024 || recv[s][0] != int64(s) {
			return fmt.Errorf("rank %d: bad alltoall part from %d", c.Rank(), s)
		}
	}
	return nil
}

// TestCompressionShrinksWireBytes pins the point of the codec: the same
// program with Compress on writes at least 2x fewer bytes to the sockets.
func TestCompressionShrinksWireBytes(t *testing.T) {
	const p = 4
	sum := func(stats []tcpnet.WireStats) (bytes int64) {
		for _, s := range stats {
			bytes += s.Bytes
		}
		return
	}
	raw := sum(runLoopback(t, mpi.RunConfig{}, p, exchange))
	enc := sum(runLoopback(t, mpi.RunConfig{Compress: true}, p, exchange))
	if raw <= 0 || enc <= 0 {
		t.Fatalf("no wire traffic recorded: raw=%d enc=%d", raw, enc)
	}
	if 2*enc >= raw {
		t.Fatalf("compression shrank wire bytes only %d -> %d (< 2x)", raw, enc)
	}
}

// TestWireStatsAccounting pins the write-plane invariants: every endpoint
// framed something, aggregation never writes more often than it frames, and
// the counters are internally consistent (no bytes without writes).
func TestWireStatsAccounting(t *testing.T) {
	const p = 4
	for _, stats := range [][]tcpnet.WireStats{
		runLoopback(t, mpi.RunConfig{}, p, exchange),
		runLoopback(t, mpi.RunConfig{Compress: true}, p, exchange),
	} {
		for i, s := range stats {
			if s.Frames <= 0 || s.Writes <= 0 || s.Bytes <= 0 {
				t.Fatalf("endpoint %d: empty wire stats %+v", i, s)
			}
			if s.Writes > s.Frames {
				t.Fatalf("endpoint %d: %d writes for %d frames — aggregation added writes", i, s.Writes, s.Frames)
			}
		}
	}
}

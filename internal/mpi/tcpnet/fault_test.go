package tcpnet_test

// Network fault-injection tests: the deterministic wire-level failures
// (dropped link, partition, slow link) that the recovery plane is tested
// against. The key property pinned here is reproducibility — the same
// NetFaultSpec fails the same world at the same frame with the same error
// text on every run — because that is what makes recovery tests debuggable
// and the failure matrix in internal/core meaningful.

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mcmdist/internal/mpi"
	"mcmdist/internal/mpi/tcpnet"
)

// runFaulted executes exchange over a size-rank loopback world under opts
// (typically carrying a fault injector) and returns each endpoint's
// RunTransport error. Faulted worlds end dirty, so Close errors are ignored.
func runFaulted(t *testing.T, size int, opts tcpnet.Options) []error {
	t.Helper()
	eps, err := tcpnet.LoopbackOpts(size, nil, opts)
	if err != nil {
		t.Fatalf("building faulted loopback world: %v", err)
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep mpi.Transport) {
			defer wg.Done()
			_, errs[i] = mpi.RunTransport(mpi.RunConfig{}, ep, exchange)
		}(i, ep)
	}
	wg.Wait()
	mpi.CloseAll(eps)
	return errs
}

// injectedFrom picks the endpoint error that carries the injected fault
// sentinel — the failure as the faulting side itself reported it.
func injectedFrom(errs []error) error {
	for _, err := range errs {
		if errors.Is(err, mpi.ErrInjectedNetFault) {
			return err
		}
	}
	return nil
}

// TestDropLinkDeterministic pins the injector's core promise: the same drop
// spec fails the same link at the same data frame with the identical error
// rendering on every execution, and every rank's failure is restartable.
func TestDropLinkDeterministic(t *testing.T) {
	spec := func() *mpi.NetFaultSpec {
		return &mpi.NetFaultSpec{DropFrom: 1, DropTo: 2, DropAtFrame: 2}
	}
	var texts []string
	for run := 0; run < 2; run++ {
		f := spec()
		errs := runFaulted(t, 3, tcpnet.Options{Faults: f})
		inj := injectedFrom(errs)
		if inj == nil {
			t.Fatalf("run %d: no injected fault surfaced: %v", run, errs)
		}
		if got := f.Fired(); got != 1 {
			t.Fatalf("run %d: %d faults fired, want 1", run, got)
		}
		if !strings.Contains(inj.Error(), "link 1->2 dropped at data frame") {
			t.Fatalf("run %d: injected error names no trigger point: %v", run, inj)
		}
		for i, err := range errs {
			if err == nil {
				t.Fatalf("run %d: endpoint %d survived a dropped link", run, i)
			}
			if !mpi.Restartable(err) {
				t.Fatalf("run %d: endpoint %d error not restartable: %v", run, i, err)
			}
		}
		texts = append(texts, inj.Error())
	}
	if texts[0] != texts[1] {
		t.Fatalf("drop fault not deterministic:\n run 0: %s\n run 1: %s", texts[0], texts[1])
	}
}

// TestPartitionDeterministic pins the same promise for the partition fault:
// the cut fires at a fixed cross-cut frame counted at the partition's lowest
// rank, reproducibly.
func TestPartitionDeterministic(t *testing.T) {
	var texts []string
	for run := 0; run < 2; run++ {
		f := &mpi.NetFaultSpec{Partition: []int{0, 1}, PartitionAtFrame: 2}
		errs := runFaulted(t, 4, tcpnet.Options{Faults: f})
		inj := injectedFrom(errs)
		if inj == nil {
			t.Fatalf("run %d: no injected fault surfaced: %v", run, errs)
		}
		if !strings.Contains(inj.Error(), "partition [0 1] cut at cross frame") {
			t.Fatalf("run %d: injected error names no cut point: %v", run, inj)
		}
		for i, err := range errs {
			if err == nil {
				t.Fatalf("run %d: endpoint %d survived the partition", run, i)
			}
		}
		texts = append(texts, inj.Error())
	}
	if texts[0] != texts[1] {
		t.Fatalf("partition fault not deterministic:\n run 0: %s\n run 1: %s", texts[0], texts[1])
	}
}

// TestSlowLinkPerturbsTimingOnly pins that a slow link is not a failure: the
// workload completes, validates its payloads, fires no fault budget, and
// ships exactly as many frames as a clean run — delay must never change what
// flows, only when.
func TestSlowLinkPerturbsTimingOnly(t *testing.T) {
	const p = 3
	clean := runLoopback(t, mpi.RunConfig{}, p, exchange)
	f := &mpi.NetFaultSpec{
		Seed: 7, SlowFrom: 0, SlowTo: 1,
		SlowDelay: 200 * time.Microsecond, SlowEvery: 2, SlowJitter: 100 * time.Microsecond,
	}
	eps, err := tcpnet.LoopbackOpts(p, nil, tcpnet.Options{Faults: f})
	if err != nil {
		t.Fatalf("building slow loopback world: %v", err)
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep mpi.Transport) {
			defer wg.Done()
			_, errs[i] = mpi.RunTransport(mpi.RunConfig{}, ep, exchange)
		}(i, ep)
	}
	wg.Wait()
	slow := make([]tcpnet.WireStats, p)
	for i, ep := range eps {
		slow[i] = ep.(*tcpnet.Net).WireStats()
	}
	if err := mpi.CloseAll(eps); err != nil {
		t.Errorf("closing slow world: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("endpoint %d failed under a slow link: %v", i, err)
		}
	}
	if f.Fired() != 0 {
		t.Fatalf("slow link consumed %d of the terminal fault budget", f.Fired())
	}
	for i := range clean {
		if clean[i].Frames != slow[i].Frames {
			t.Fatalf("endpoint %d framed %d slow vs %d clean — delay changed the traffic",
				i, slow[i].Frames, clean[i].Frames)
		}
	}
}

// TestFaultBudgetSpansWorlds pins the retry contract: one spec shared across
// consecutive worlds (as SolveRecoverable shares it across attempts) faults
// the first world, exhausts its MaxFires budget, and lets the next world run
// clean end to end.
func TestFaultBudgetSpansWorlds(t *testing.T) {
	f := &mpi.NetFaultSpec{DropFrom: 0, DropTo: 1, DropAtFrame: 1}
	errs := runFaulted(t, 3, tcpnet.Options{Faults: f})
	if injectedFrom(errs) == nil {
		t.Fatalf("first world did not observe the injected drop: %v", errs)
	}
	if f.Fired() != 1 {
		t.Fatalf("budget after first world: %d fired, want 1", f.Fired())
	}
	errs = runFaulted(t, 3, tcpnet.Options{Faults: f})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("second world endpoint %d failed with the budget spent: %v", i, err)
		}
	}
	if f.Fired() != 1 {
		t.Fatalf("budget after second world: %d fired, want still 1", f.Fired())
	}
}

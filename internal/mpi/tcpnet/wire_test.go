package tcpnet

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestPartRoundtrip: every payload survives wbuf.part → rbuf.part under both
// encodings, and the delta encoding is the smaller one on the sorted-run
// payloads POST actually carries (id streams from fold/expand exchanges).
func TestPartRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sorted := make([]int64, 2048)
	for i := range sorted {
		sorted[i] = int64(i)*3 + rng.Int63n(3)
	}
	hostile := make([]int64, 257)
	for i := range hostile {
		hostile[i] = rng.Int63() - rng.Int63()
	}
	payloads := [][]int64{
		nil,
		{},
		{0},
		{-1, 1 << 62, -(1 << 62), 0},
		sorted,
		hostile,
	}
	for pi, v := range payloads {
		for _, compress := range []bool{false, true} {
			var w wbuf
			w.part(v, compress)
			r := &rbuf{b: w.b}
			got := r.part()
			if err := r.err(framePost); err != nil {
				t.Fatalf("payload %d compress=%v: decode error: %v", pi, compress, err)
			}
			if r.off != len(r.b) {
				t.Fatalf("payload %d compress=%v: %d trailing bytes", pi, compress, len(r.b)-r.off)
			}
			if want, have := fmt.Sprint(v), fmt.Sprint(got); len(v) > 0 && want != have {
				t.Fatalf("payload %d compress=%v: roundtrip %s != %s", pi, compress, have, want)
			}
			if len(v) == 0 && len(got) != 0 {
				t.Fatalf("payload %d compress=%v: empty payload decoded as %v", pi, compress, got)
			}
		}
	}
	var raw, enc wbuf
	raw.part(sorted, false)
	enc.part(sorted, true)
	if len(enc.b)*2 >= len(raw.b) {
		t.Fatalf("delta encoding of a sorted run is not at least 2x smaller: %d vs %d bytes", len(enc.b), len(raw.b))
	}
}

// TestPartDecodeRejectsTruncation: a delta part whose nbytes runs past the
// buffer, or whose varint stream decodes to fewer values than count, must
// poison the rbuf instead of panicking or returning garbage.
func TestPartDecodeRejectsTruncation(t *testing.T) {
	var w wbuf
	w.part([]int64{5, 9, 12, 40, 41}, true)
	for cut := 1; cut < len(w.b); cut++ {
		r := &rbuf{b: w.b[:cut]}
		r.part()
		if err := r.err(framePost); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", cut, len(w.b))
		}
	}
}

package tcpnet

// Fuzz targets for the MCMNET1 codec: every frame-body decoder plus the
// stream-level readFrame. The contract under fuzzing is the one readLoop
// relies on — arbitrary peer bytes either decode to a well-formed value or
// return an error, and never panic, hang, or allocate unboundedly. Seeds
// cover one valid encoding of every frame kind (built with the real wbuf
// encoders, so they stay in sync with the wire format) plus the malformed
// shapes the decoders reject; go test -fuzz grows the corpus from there
// under testdata/fuzz/.

import (
	"bytes"
	"testing"
)

// seedBodies builds one valid body per frame kind with the production
// encoders — the corpus entries that start the fuzzer inside the happy path.
func seedBodies() [][]byte {
	var post wbuf
	post.str("world")
	post.ranks([]int{0, 1, 2})
	post.u32(1) // src
	post.i64(7) // gen
	post.str("allgatherv")
	post.u32(3)
	post.u8(1)
	post.part([]int64{3, 5, 9}, false)
	post.u8(0)
	post.part(nil, false)
	post.u8(1)
	post.part([]int64{100, 101, 104, 109}, true) // delta-varint branch

	var finish wbuf
	finish.str("world")
	finish.ranks([]int{0, 1})
	finish.u32(1)
	finish.i64(3)

	var rmaReq wbuf
	rmaReq.u64(42)
	rmaReq.str("mate")
	rmaReq.u32(1)
	rmaReq.u8(2)
	rmaReq.i64(16)
	rmaReq.i64(4)
	rmaReq.ints([]int64{1, 2, 3, 4})
	rmaReq.u8(1)
	rmaReq.i64(-1)
	rmaReq.i64(0)
	rmaReq.i64(5)

	var rmaOK wbuf
	rmaOK.u64(42)
	rmaOK.u8(1)
	rmaOK.ints([]int64{9, 9})
	rmaOK.i64(-3)

	var rmaErr wbuf
	rmaErr.u64(43)
	rmaErr.u8(0)
	rmaErr.str("window out of range")

	var abort wbuf
	abort.u32(2)
	abort.str("injected: link 1->2 dropped")

	var hello wbuf
	hello.b = append(hello.b, wireMagic...)
	hello.u8(wireVersion)
	hello.u32(3)
	hello.str("127.0.0.1:9301")

	var roster wbuf
	roster.u32(2)
	roster.str("127.0.0.1:9301")
	roster.str("127.0.0.1:9302")
	roster.bytes([]byte(`{"v":3,"rmat":"g500","procs":2}`))

	ping := encodePing(123456789)
	pong := encodePong(123456789, 123450000)
	obsFrame := encodeObs(2, []byte("MCMOBS1 not really, but shaped like a payload"))

	return [][]byte{post.b, finish.b, rmaReq.b, rmaOK.b, rmaErr.b, abort.b, hello.b, roster.b, ping, pong, obsFrame}
}

// FuzzFrameDecode throws one body at every decoder. No decoder may panic on
// any input; whether it returns a value or an error is its own business.
func FuzzFrameDecode(f *testing.F) {
	for _, body := range seedBodies() {
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte("MCMNET1"))            // hello cut off after the magic
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // a length field pointing past the body
	f.Fuzz(func(t *testing.T, body []byte) {
		if msg, err := decodePost(body); err == nil {
			if len(msg.Parts) != len(msg.Ranks) || len(msg.Present) != len(msg.Ranks) {
				t.Fatalf("POST decoded with parts/ranks mismatch: %d parts, %d ranks", len(msg.Parts), len(msg.Ranks))
			}
		}
		decodeFinish(body)
		if _, req, err := decodeRMAReq(body); err == nil && req == nil {
			t.Fatal("RMA_REQ decoded successfully to nil")
		}
		if _, resp, _, ok, err := decodeRMAResp(body); err == nil && ok && resp == nil {
			t.Fatal("RMA_RESP ok decoded to nil")
		}
		decodeAbort(body)
		parseHello(body)
		parseRoster(body)
		decodePing(body)
		decodePong(body)
		if _, payload, err := decodeObs(body); err == nil && len(payload) > len(body) {
			t.Fatalf("OBS decoded %d payload bytes from %d input bytes", len(payload), len(body))
		}
	})
}

// FuzzReadFrame feeds an arbitrary byte stream to the frame reader. A
// corrupt length prefix must fail the read, not drive an unbounded
// allocation; a well-formed prefix must hand back exactly the body.
func FuzzReadFrame(f *testing.F) {
	frame := func(typ byte, body []byte) []byte {
		var buf bytes.Buffer
		writeFrame(&buf, typ, body)
		return buf.Bytes()
	}
	for _, body := range seedBodies() {
		f.Add(frame(framePost, body))
	}
	f.Add(frame(frameBye, nil))
	f.Add(frame(framePing, nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, byte(framePost)}) // huge length, no body
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(body) > len(data) {
			t.Fatalf("readFrame produced %d body bytes from %d input bytes", len(body), len(data))
		}
		// A frame that reads must re-read identically from its own re-encoding.
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, body); err != nil {
			t.Fatalf("re-encoding a read frame: %v", err)
		}
		typ2, body2, err := readFrame(&buf)
		if err != nil || typ2 != typ || !bytes.Equal(body2, body) {
			t.Fatalf("frame did not round-trip: %v", err)
		}
	})
}

// FuzzDecodePostDelivery goes one level deeper than decodePost: a POST that
// decodes must also be deliverable — its shape invariants are what
// World.DeliverPost indexes by without re-checking.
func FuzzDecodePostDelivery(f *testing.F) {
	f.Add(seedBodies()[0])
	f.Fuzz(func(t *testing.T, body []byte) {
		msg, err := decodePost(body)
		if err != nil {
			return
		}
		if msg == nil {
			t.Fatal("nil POST without error")
		}
		for i := range msg.Parts {
			if msg.Present[i] && msg.Parts[i] == nil {
				// Present parts decode to empty-but-non-nil slices at worst.
				t.Fatalf("part %d present but nil", i)
			}
		}
	})
}

//go:build faultsoak

package tcpnet_test

// Nightly network-chaos soak for the tcp backend: many loopback worlds in a
// row cycling through the network fault plans (dropped link, partition, slow
// link, clean), with typed-error assertions per mode and a goroutine-leak
// check at the end. This is the wire-level sibling of the in-process
// watchdog soak in internal/mpi — run with `make soak` (faultsoak tag).

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"mcmdist/internal/mpi"
	"mcmdist/internal/mpi/tcpnet"
)

// TestSoakNetFaultChaos cycles loopback TCP worlds through the fault modes.
// Every iteration builds a fresh injector with trigger points derived from
// the iteration index, so the faults land on different frames each cycle
// while staying fully deterministic for a given run count.
func TestSoakNetFaultChaos(t *testing.T) {
	const iters = 80
	baseline := runtime.NumGoroutine()

	for i := 0; i < iters; i++ {
		size := 3 + i%2 // alternate 3- and 4-rank worlds
		var f *mpi.NetFaultSpec
		mode := i % 4
		switch mode {
		case 0: // dropped link, rotating endpoints and trigger frame
			f = &mpi.NetFaultSpec{
				DropFrom: i % size, DropTo: (i + 1) % size, DropAtFrame: 1 + i%3,
			}
		case 1: // partition splitting off the low ranks
			f = &mpi.NetFaultSpec{
				Partition: []int{0, 1}, PartitionAtFrame: 1 + i%3,
			}
		case 2: // slow link: timing perturbation only, must still succeed
			f = &mpi.NetFaultSpec{
				Seed: int64(i), SlowFrom: i % size, SlowTo: (i + 1) % size,
				SlowDelay: 50 * time.Microsecond, SlowEvery: 2,
				SlowJitter: 25 * time.Microsecond,
			}
		case 3: // clean control world
		}

		var opts tcpnet.Options
		if f != nil {
			opts.Faults = f
		}
		errs := runFaulted(t, size, opts)

		terminal := mode == 0 || mode == 1
		if terminal {
			inj := injectedFrom(errs)
			if inj == nil {
				t.Fatalf("iter %d (mode %d): no injected fault surfaced: %v", i, mode, errs)
			}
			if got := f.Fired(); got != 1 {
				t.Fatalf("iter %d (mode %d): %d faults fired, want 1", i, mode, got)
			}
			for rank, err := range errs {
				if err == nil {
					t.Fatalf("iter %d (mode %d): endpoint %d survived the fault", i, mode, rank)
				}
				if !mpi.Restartable(err) {
					t.Fatalf("iter %d (mode %d): endpoint %d error not restartable: %v", i, mode, rank, err)
				}
				// Every failure must be typed — either the injected sentinel
				// itself or one of the transport-plane error types the
				// recovery engine dispatches on.
				var pd *mpi.PeerDownError
				var ra *mpi.RemoteAbortError
				var te *mpi.TransportError
				if !errors.Is(err, mpi.ErrInjectedNetFault) &&
					!errors.As(err, &pd) && !errors.As(err, &ra) && !errors.As(err, &te) {
					t.Fatalf("iter %d (mode %d): endpoint %d died with an untyped error: %v", i, mode, rank, err)
				}
			}
		} else {
			for rank, err := range errs {
				if err != nil {
					t.Fatalf("iter %d (mode %d): endpoint %d failed a survivable world: %v", i, mode, rank, err)
				}
			}
			if f != nil && f.Fired() != 0 {
				t.Fatalf("iter %d: timing-only injector reported %d terminal fires", i, f.Fired())
			}
		}
	}

	// Every world torn down: the soak must not leak read loops, flushers, or
	// heartbeat monitors. Allow a grace period for the last teardowns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after %d worlds: baseline %d, now %d\n%s",
				iters, baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Package tcpnet is the TCP backend of the mpi package's Transport seam:
// one OS process per rank, full-mesh TCP connections, and a versioned
// length-prefixed codec for the []int64 mailbox payloads. Rank bootstrap is
// a rendezvous at rank 0 — it listens, every other rank dials in and
// announces itself, and rank 0 replies with the full roster (plus an opaque
// job-configuration blob) from which the peers wire up the remaining mesh
// edges among themselves.
//
// The backend moves exactly the three traffic kinds of the Transport
// contract — collective posts, read-retirement notices, and one-sided RMA
// operations — so everything above the seam (metering, CommTimes, fault
// injection, the watchdog, tracing) behaves identically to the in-process
// oracle; the conformance suite in package mpi pins that bit-for-bit.
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
)

// Options tunes the backend's timeouts. The zero value selects the defaults.
type Options struct {
	// DialTimeout bounds how long Join (and the mesh dials) retry an
	// unreachable peer before giving up; peers start in any order, so dials
	// retry until the window closes. Default 15s.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write; a peer that stops draining its
	// socket surfaces as a transport error instead of a silent hang.
	// Default 30s.
	WriteTimeout time.Duration
	// CloseTimeout bounds the graceful BYE drain in Close before the
	// connections are torn down regardless. Default 5s.
	CloseTimeout time.Duration
	// HeartbeatInterval is how often the failure detector pings each peer
	// while the endpoint is bound. Any inbound frame counts as liveness, so
	// pings only flow on otherwise-idle links. Default 500ms; negative
	// disables the detector entirely.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a peer may stay silent — no frames of any
	// kind — before the detector declares it down and aborts the world with
	// a PeerDownError. It must comfortably exceed the longest stretch a
	// healthy peer can go without writing (pings bound that by
	// HeartbeatInterval plus scheduling noise). Default 10s.
	HeartbeatTimeout time.Duration
	// Faults attaches the deterministic network fault injector to this
	// endpoint's write plane (nil injects nothing). Loopback test worlds
	// share one spec across endpoints so drop/partition budgets span the
	// world, mirroring mpi.FaultPlan.
	Faults *mpi.NetFaultSpec
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.CloseTimeout <= 0 {
		o.CloseTimeout = 5 * time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * time.Second
	}
	return o
}

// peer is one mesh connection. Writers serialize on wmu and build each frame
// as a single Write, so frames never interleave; the reader goroutine owns
// the receive side exclusively.
//
// Mailbox frames (POST, FINISH) do not write the socket directly: they are
// framed into a per-peer pending buffer and a flusher goroutine drains it,
// so frames queued while a write is in flight coalesce into one Write — the
// small-message aggregation of the wire layer. The queue is FIFO, which
// preserves the POST-before-FINISH order the mailbox relies on; bootstrap,
// RMA, ABORT and BYE frames keep writing directly under wmu (RMA never
// overtakes a fence, because a fence only completes after the remote side
// acknowledged reading its posts).
type peer struct {
	rank int
	conn net.Conn
	wmu  sync.Mutex
	bye  chan struct{} // closed when the peer's BYE arrives
	byeO sync.Once

	lastRecv atomic.Int64 // UnixNano of the last inbound frame (liveness)
	faultN   atomic.Int64 // outbound data frames on this link (fault triggers)

	// Cristian clock-probe state, fed by the PONG handler: the best (lowest)
	// round-trip seen and the offset estimated from that exchange — peer
	// trace time + clockOff ≈ local trace time. pingN sequences outbound
	// probes for the slow-link injector only; it never feeds faultN, so the
	// deterministic data-frame fault schedule ignores heartbeat traffic.
	minRTT   atomic.Int64
	clockOff atomic.Int64
	hasOff   atomic.Bool
	pingN    atomic.Int64

	qmu      sync.Mutex
	qcv      *sync.Cond
	qbuf     []byte // framed mailbox bytes awaiting the flusher
	qbusy    bool   // a flusher Write is in flight
	qstop    bool   // no further enqueues; flusher exits once drained
	qtimeout bool   // drainWrites gave up waiting; Close is tearing down
	qerr     error  // first write error; poisons subsequent enqueues
}

// Net is one process's TCP endpoint of a world: it hosts exactly one rank
// and holds one connection to every other rank. It implements mpi.Transport.
type Net struct {
	rank   int
	size   int
	opts   Options
	config []byte // the coordinator's job blob (as received by Join)

	peers []*peer // indexed by world rank; peers[rank] == nil

	world atomic.Pointer[mpi.World]

	callID  atomic.Uint64
	pending sync.Map // callID → chan rmaReply

	closed   atomic.Bool
	readers  sync.WaitGroup
	flushers sync.WaitGroup

	cutN   atomic.Int64  // outbound cross-cut data frames (partition trigger)
	hbStop chan struct{} // closes to stop the heartbeat monitor
	hb     sync.WaitGroup

	frames atomic.Int64 // frames handed to the write plane
	writes atomic.Int64 // socket Write calls that carried them
	bytes  atomic.Int64 // bytes written

	// The observability shipping plane (wire v4): a worker renders its
	// collector state via obsProvider and ships it to the coordinator once
	// (obsShipped); the coordinator accumulates inbound payloads in obsIn.
	// rttObs, when set, receives every completed heartbeat RTT sample.
	obsProvider atomic.Value // func() []byte
	obsShipped  atomic.Bool
	obsMu       sync.Mutex
	obsIn       map[int][]byte
	rttObs      atomic.Value // func(peerRank int, rttNs int64)
}

// WireStats counts this endpoint's outbound wire activity. Frames is the
// number of frames sent, Writes the number of socket writes that carried
// them — aggregation shows up as Writes < Frames — and Bytes the total
// bytes written, which with compression on is smaller than the same
// solve writes raw.
type WireStats struct {
	// Frames counts frames handed to the write plane.
	Frames int64
	// Writes counts the socket Write calls that carried them.
	Writes int64
	// Bytes counts bytes written, header included.
	Bytes int64
}

// WireStats returns a snapshot of the endpoint's outbound counters.
func (n *Net) WireStats() WireStats {
	return WireStats{Frames: n.frames.Load(), Writes: n.writes.Load(), Bytes: n.bytes.Load()}
}

type rmaReply struct {
	resp *mpi.RMAResp
	err  error
}

// Rendezvous is rank 0's bootstrap listener, split from Coordinate so the
// address (which may have been chosen by the kernel, ":0") is known before
// the peers are told to dial it.
type Rendezvous struct {
	ln   net.Listener
	opts Options
}

// Listen opens rank 0's rendezvous listener on addr ("host:port"; a zero
// port lets the kernel pick).
func Listen(addr string, opts Options) (*Rendezvous, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: rendezvous listen on %q: %w", addr, err)
	}
	return &Rendezvous{ln: ln, opts: opts.withDefaults()}, nil
}

// Addr returns the rendezvous address peers must Join.
func (rv *Rendezvous) Addr() string { return rv.ln.Addr().String() }

// Close abandons the rendezvous without coordinating (Coordinate closes the
// listener itself).
func (rv *Rendezvous) Close() error { return rv.ln.Close() }

// Coordinate completes rank 0's bootstrap of a size-rank world: it accepts
// one dial-in per peer rank, replies to each with the roster (every rank's
// mesh listen address) and the opaque config blob, and keeps the accepted
// connections as its mesh edges. It returns rank 0's transport endpoint.
// config is typically an encoded job spec that tells worker processes what
// to solve; nil is fine.
func (rv *Rendezvous) Coordinate(size int, config []byte) (*Net, error) {
	defer rv.ln.Close()
	if size <= 0 {
		return nil, fmt.Errorf("tcpnet: world size %d must be positive", size)
	}
	n := &Net{rank: 0, size: size, opts: rv.opts, config: config, peers: make([]*peer, size)}
	addrs := make([]string, size)
	addrs[0] = rv.Addr()
	deadline := time.Now().Add(rv.opts.DialTimeout)
	for accepted := 0; accepted < size-1; accepted++ {
		rv.ln.(*net.TCPListener).SetDeadline(deadline)
		conn, err := rv.ln.Accept()
		if err != nil {
			n.teardown()
			return nil, fmt.Errorf("tcpnet: rendezvous accept (%d/%d peers in): %w", accepted, size-1, err)
		}
		rank, listenAddr, err := readHello(conn, rv.opts)
		if err != nil {
			conn.Close()
			n.teardown()
			return nil, err
		}
		if rank <= 0 || rank >= size {
			conn.Close()
			n.teardown()
			return nil, fmt.Errorf("tcpnet: peer announced rank %d outside world of size %d", rank, size)
		}
		if n.peers[rank] != nil {
			conn.Close()
			n.teardown()
			return nil, fmt.Errorf("tcpnet: rank %d joined twice", rank)
		}
		n.peers[rank] = newPeer(rank, conn)
		addrs[rank] = listenAddr
	}
	var body wbuf
	body.u32(uint32(size))
	for _, a := range addrs {
		body.str(a)
	}
	body.bytes(config)
	for r := 1; r < size; r++ {
		p := n.peers[r]
		if err := n.send(p, frameRoster, body.b); err != nil {
			n.teardown()
			return nil, fmt.Errorf("tcpnet: sending roster to rank %d: %w", r, err)
		}
	}
	return n, nil
}

// Join is a worker rank's bootstrap: open a mesh listener, dial the
// coordinator (retrying while it comes up), announce the rank, receive the
// roster and config blob, then complete the mesh — dialing every lower
// nonzero rank and accepting every higher one. It returns this rank's
// transport endpoint and the coordinator's config blob.
func Join(addr string, rank int, opts Options) (*Net, []byte, error) {
	opts = opts.withDefaults()
	if rank <= 0 {
		return nil, nil, fmt.Errorf("tcpnet: Join with rank %d (rank 0 coordinates via Listen/Coordinate)", rank)
	}
	ln, err := net.Listen("tcp", meshListenAddr(addr))
	if err != nil {
		return nil, nil, fmt.Errorf("tcpnet: mesh listen: %w", err)
	}
	defer ln.Close()

	conn, err := dialRetry(addr, opts.DialTimeout)
	if err != nil {
		return nil, nil, fmt.Errorf("tcpnet: dialing coordinator %q: %w", addr, err)
	}
	if err := writeHello(conn, rank, ln.Addr().String(), opts); err != nil {
		conn.Close()
		return nil, nil, err
	}
	typ, body, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("tcpnet: awaiting roster: %w", err)
	}
	if typ != frameRoster {
		conn.Close()
		return nil, nil, fmt.Errorf("tcpnet: expected ROSTER, got %s", frameName(typ))
	}
	addrs, config, err := parseRoster(body)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	size := len(addrs)
	if rank >= size {
		conn.Close()
		return nil, nil, fmt.Errorf("tcpnet: rank %d outside world of size %d", rank, size)
	}

	n := &Net{rank: rank, size: size, opts: opts, config: config, peers: make([]*peer, size)}
	n.peers[0] = newPeer(0, conn)
	// Mesh edge (i, j), i > j ≥ 1, is dialed by i and accepted by j; the
	// bootstrap connection already covers every (r, 0) edge.
	for j := 1; j < rank; j++ {
		c, err := dialRetry(addrs[j], opts.DialTimeout)
		if err != nil {
			n.teardown()
			return nil, nil, fmt.Errorf("tcpnet: dialing rank %d at %q: %w", j, addrs[j], err)
		}
		if err := writeHello(c, rank, "", opts); err != nil {
			c.Close()
			n.teardown()
			return nil, nil, err
		}
		n.peers[j] = newPeer(j, c)
	}
	deadline := time.Now().Add(opts.DialTimeout)
	for need := size - rank - 1; need > 0; need-- {
		ln.(*net.TCPListener).SetDeadline(deadline)
		c, err := ln.Accept()
		if err != nil {
			n.teardown()
			return nil, nil, fmt.Errorf("tcpnet: mesh accept (awaiting %d higher ranks): %w", need, err)
		}
		r, _, err := readHello(c, opts)
		if err != nil {
			c.Close()
			n.teardown()
			return nil, nil, err
		}
		if r <= rank || r >= size || n.peers[r] != nil {
			c.Close()
			n.teardown()
			return nil, nil, fmt.Errorf("tcpnet: unexpected mesh hello from rank %d at rank %d", r, rank)
		}
		n.peers[r] = newPeer(r, c)
	}
	return n, config, nil
}

// meshListenAddr picks the worker's mesh listen address: the coordinator
// host's wildcard port when the host is explicit, plain ":0" otherwise.
// Loopback coordinators get loopback mesh listeners, which keeps multi-rank
// tests and the smoke script off external interfaces.
func meshListenAddr(coord string) string {
	host, _, err := net.SplitHostPort(coord)
	if err != nil || host == "" {
		return ":0"
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsLoopback() {
		return net.JoinHostPort(host, "0")
	}
	return ":0"
}

// dialRetry dials addr until it answers or the window closes; peers start in
// any order, so connection-refused is an expected transient. Each attempt
// gets a capped per-attempt timeout (not the whole window, which would let a
// single black-holed SYN eat every retry), and attempts are spaced by
// jittered exponential backoff so a herd of restarting workers does not
// hammer the coordinator in lockstep.
func dialRetry(addr string, window time.Duration) (net.Conn, error) {
	const (
		attemptCap = 2 * time.Second
		backoff0   = 10 * time.Millisecond
		backoffCap = 500 * time.Millisecond
	)
	deadline := time.Now().Add(window)
	backoff := backoff0
	for attempt := uint64(0); ; attempt++ {
		per := attemptCap
		if remain := time.Until(deadline); remain < per {
			per = remain
		}
		if per <= 0 {
			per = time.Millisecond
		}
		conn, err := net.DialTimeout("tcp", addr, per)
		if err == nil {
			return conn, nil
		}
		// Jitter is deterministic per (address, attempt) but differs across
		// dialers of distinct addresses; half fixed, half mixed keeps the
		// average pause at backoff while decorrelating the herd.
		pause := backoff/2 + time.Duration(splitmixDial(uint64(len(addr))<<32^attempt)%uint64(backoff/2+1))
		if time.Now().Add(pause).After(deadline) {
			return nil, err
		}
		time.Sleep(pause)
		if backoff *= 2; backoff > backoffCap {
			backoff = backoffCap
		}
	}
}

// splitmixDial is the SplitMix64 mixer, deriving the dial backoff jitter.
func splitmixDial(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newPeer(rank int, conn net.Conn) *peer {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p := &peer{rank: rank, conn: conn, bye: make(chan struct{})}
	p.lastRecv.Store(time.Now().UnixNano()) // the connection just opened; clearly alive
	p.qcv = sync.NewCond(&p.qmu)
	return p
}

func writeHello(conn net.Conn, rank int, listenAddr string, opts Options) error {
	var b wbuf
	b.b = append(b.b, wireMagic...)
	b.u8(wireVersion)
	b.u32(uint32(rank))
	b.str(listenAddr)
	conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
	err := writeFrame(conn, frameHello, b.b)
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		return fmt.Errorf("tcpnet: sending hello: %w", err)
	}
	return nil
}

func readHello(conn net.Conn, opts Options) (rank int, listenAddr string, err error) {
	conn.SetReadDeadline(time.Now().Add(opts.DialTimeout))
	typ, body, err := readFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		return 0, "", fmt.Errorf("tcpnet: awaiting hello: %w", err)
	}
	if typ != frameHello {
		return 0, "", fmt.Errorf("tcpnet: expected HELLO, got %s", frameName(typ))
	}
	return parseHello(body)
}

// teardown closes every connection established so far (bootstrap failure
// path only; the graceful path is Close).
func (n *Net) teardown() {
	for _, p := range n.peers {
		if p != nil {
			p.conn.Close()
		}
	}
}

// Name returns "tcp".
func (n *Net) Name() string { return "tcp" }

// WorldSize returns the rank count of the world.
func (n *Net) WorldSize() int { return n.size }

// LocalRanks returns the single rank this process hosts.
func (n *Net) LocalRanks() []int { return []int{n.rank} }

// Rank returns this process's world rank.
func (n *Net) Rank() int { return n.rank }

// Config returns the coordinator's opaque config blob (what Join received;
// on rank 0, what Coordinate was given).
func (n *Net) Config() []byte { return n.config }

// Bind attaches the world and starts one reader goroutine per peer
// connection; from here on inbound frames flow into the mailbox.
func (n *Net) Bind(w *mpi.World) error {
	if !n.world.CompareAndSwap(nil, w) {
		return fmt.Errorf("tcpnet: endpoint bound twice")
	}
	for _, p := range n.peers {
		if p == nil {
			continue
		}
		n.readers.Add(1)
		go n.readLoop(p)
		n.flushers.Add(1)
		go n.flushLoop(p)
	}
	if n.opts.HeartbeatInterval > 0 {
		n.hbStop = make(chan struct{})
		n.hb.Add(1)
		go n.heartbeats()
	}
	return nil
}

// heartbeats is the failure detector: every HeartbeatInterval it pings each
// live peer (so an idle but healthy link keeps refreshing liveness on the
// other side) and checks how long each peer has stayed silent; one quiet past
// HeartbeatTimeout is declared down and the world aborts with a
// PeerDownError, waking every mailbox waiter instead of stalling into the
// watchdog.
func (n *Net) heartbeats() {
	defer n.hb.Done()
	// Probe every peer immediately: a solve shorter than one interval still
	// deserves a clock-offset sample for its trace merge.
	for _, p := range n.peers {
		if p != nil {
			n.sendPing(p)
		}
	}
	tick := time.NewTicker(n.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.hbStop:
			return
		case <-tick.C:
		}
		now := time.Now()
		for _, p := range n.peers {
			if p == nil {
				continue
			}
			select {
			case <-p.bye:
				continue // the peer drained politely; its silence is expected
			default:
			}
			quiet := now.Sub(time.Unix(0, p.lastRecv.Load()))
			if quiet > n.opts.HeartbeatTimeout {
				cause := &mpi.PeerDownError{Rank: p.rank, Op: "heartbeat",
					Err: fmt.Errorf("silent for %v (timeout %v)", quiet.Round(time.Millisecond), n.opts.HeartbeatTimeout)}
				n.failPending(cause)
				if w := n.world.Load(); w != nil {
					w.Abort(cause)
				}
				return
			}
			n.sendPing(p)
		}
	}
}

// sendPing writes one PING directly, bypassing both the write queue and the
// wire counters: pings are timer-driven, so counting them would make
// WireStats — pinned bit-identical by the conformance suite — depend on
// wall-clock timing. The deadline is the ping interval: a write that cannot
// complete by the next tick is pointless, and a stuck peer must not pin the
// detector for the full WriteTimeout. Failures are ignored; a genuinely dead
// peer surfaces through its own silence or the read plane.
//
// The PING doubles as the Cristian clock probe: it carries the sender's
// trace clock, captured before any injected slow-link delay — the delay
// models network latency, so it must land inside the measured round trip
// (that is what makes slow-link injection visible in the RTT estimates).
// The probe sequence is its own counter: heartbeat traffic never advances
// the data-frame fault triggers.
func (n *Net) sendPing(p *peer) {
	t0 := obs.Now()
	if f := n.opts.Faults; f != nil {
		if d := f.Delay(n.rank, p.rank, p.pingN.Add(1)); d > 0 {
			time.Sleep(d)
		}
	}
	n.sendQuiet(p, framePing, encodePing(t0), time.Now().Add(n.opts.HeartbeatInterval))
}

// sendPong answers one clock probe, echoing t0 next to this side's own
// trace clock. Like PING it is quiet traffic — uncounted, best-effort, and
// bounded by the ping interval so a stuck peer cannot pin the read loop.
func (n *Net) sendPong(p *peer, t0 int64) {
	n.sendQuiet(p, framePong, encodePong(t0, obs.Now()), time.Now().Add(n.opts.HeartbeatInterval))
}

// observePong folds one completed probe into the peer's clock state: if the
// exchange was the fastest seen, its midpoint estimate wins (Cristian's
// algorithm with minimum-RTT filtering — the tightest round trip bounds the
// true offset best). The RTT also feeds the observer hook and the world's
// event list, so injected slow links show up in metrics and traces.
func (n *Net) observePong(p *peer, t0, tPeer int64) {
	rtt := obs.Now() - t0
	if rtt < 0 {
		return
	}
	if cur := p.minRTT.Load(); cur == 0 || rtt < cur {
		p.minRTT.Store(rtt)
		p.clockOff.Store(t0 + rtt/2 - tPeer)
		p.hasOff.Store(true)
	}
	if f, ok := n.rttObs.Load().(func(peerRank int, rttNs int64)); ok && f != nil {
		f(p.rank, rtt)
	}
	if w := n.world.Load(); w != nil {
		w.RecordObsEvent(fmt.Sprintf("hb.rtt to %d", p.rank), n.rank, rtt)
	}
}

// sendQuiet writes one frame directly under the peer's write lock without
// touching the wire counters: runtime plumbing (PING, PONG, OBS) must not
// perturb the conformance-pinned WireStats. Failures are the caller's to
// interpret; the heartbeat paths ignore them.
func (n *Net) sendQuiet(p *peer, typ byte, body []byte, deadline time.Time) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.conn.SetWriteDeadline(deadline)
	err := writeFrame(p.conn, typ, body)
	p.conn.SetWriteDeadline(time.Time{})
	return err
}

// send writes one frame to a peer under its write lock and deadline —
// the direct path for bootstrap, RMA, ABORT and BYE traffic.
func (n *Net) send(p *peer, typ byte, body []byte) error {
	return n.sendTimed(p, typ, body, time.Now().Add(n.opts.WriteTimeout))
}

// sendTimed is send with an explicit write deadline; Close uses it for BYE,
// where the graceful window (CloseTimeout) is tighter than WriteTimeout.
func (n *Net) sendTimed(p *peer, typ byte, body []byte, deadline time.Time) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.conn.SetWriteDeadline(deadline)
	err := writeFrame(p.conn, typ, body)
	p.conn.SetWriteDeadline(time.Time{})
	if err == nil {
		n.frames.Add(1)
		n.writes.Add(1)
		n.bytes.Add(int64(5 + len(body)))
	}
	return err
}

// faultData applies the injector (if any) to the next outbound data frame on
// the link n.rank→p.rank: it sleeps first when the link is slow, and returns
// a non-nil error when the frame must not be sent because the link was
// dropped or the partition cut fired. Terminal faults sever the affected
// connections — so the far side observes real peer death — and abort the
// local world with ErrInjectedNetFault naming the exact trigger point, which
// is what makes the same spec reproduce the same failure on every run.
func (n *Net) faultData(p *peer) error {
	f := n.opts.Faults
	if f == nil {
		return nil
	}
	seq := p.faultN.Add(1)
	if d := f.Delay(n.rank, p.rank, seq); d > 0 {
		time.Sleep(d)
	}
	if f.DropsLink(n.rank, p.rank, seq) {
		err := fmt.Errorf("%w: link %d->%d dropped at data frame %d", mpi.ErrInjectedNetFault, n.rank, p.rank, seq)
		// Abort before severing: closing the connection wakes this endpoint's
		// own read loop with a PeerDownError, and the abort cause must already
		// be the injected error when it does — first cause wins, and the
		// injected one is the deterministic one.
		if w := n.world.Load(); w != nil {
			w.Abort(err)
		}
		n.sever(p, err)
		return err
	}
	if n.rank == f.PartitionSender() && f.CrossesCut(n.rank, p.rank) {
		cut := n.cutN.Add(1)
		if f.DropsCut(cut) {
			err := fmt.Errorf("%w: partition %v cut at cross frame %d", mpi.ErrInjectedNetFault, f.Partition, cut)
			if w := n.world.Load(); w != nil {
				w.Abort(err)
			}
			for _, q := range n.peers {
				if q != nil && f.CrossesCut(n.rank, q.rank) {
					n.sever(q, err)
				}
			}
			return err
		}
	}
	return nil
}

// sever kills the link to p as an injected fault would: the queue is
// poisoned so writers fail fast, and the connection is closed so the far
// side observes EOF — genuine peer death, as far as it can tell.
func (n *Net) sever(p *peer, cause error) {
	p.qmu.Lock()
	if p.qerr == nil {
		p.qerr = cause
	}
	p.qcv.Broadcast()
	p.qmu.Unlock()
	p.conn.Close()
}

// enqueue frames one mailbox message into the peer's pending buffer and
// wakes the flusher; it fails fast once the peer's write plane has errored
// or stopped.
func (n *Net) enqueue(p *peer, typ byte, body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("tcpnet: %s frame body %d bytes exceeds cap %d", frameName(typ), len(body), maxFrame)
	}
	p.qmu.Lock()
	defer p.qmu.Unlock()
	if p.qerr != nil {
		return p.qerr
	}
	if p.qstop {
		return fmt.Errorf("tcpnet: writer to rank %d stopped", p.rank)
	}
	p.qbuf = binary.LittleEndian.AppendUint32(p.qbuf, uint32(len(body)))
	p.qbuf = append(p.qbuf, typ)
	p.qbuf = append(p.qbuf, body...)
	n.frames.Add(1)
	p.qcv.Signal()
	return nil
}

// flushLoop drains a peer's pending buffer: everything queued since the
// last Write goes out as one Write. A write error poisons the queue and
// aborts the world (unless the endpoint is already closing).
func (n *Net) flushLoop(p *peer) {
	defer n.flushers.Done()
	p.qmu.Lock()
	for {
		for len(p.qbuf) == 0 && !p.qstop {
			p.qcv.Wait()
		}
		if len(p.qbuf) == 0 {
			p.qmu.Unlock()
			return
		}
		buf := p.qbuf
		p.qbuf = nil
		p.qbusy = true
		p.qmu.Unlock()

		p.wmu.Lock()
		p.conn.SetWriteDeadline(time.Now().Add(n.opts.WriteTimeout))
		_, err := p.conn.Write(buf)
		p.conn.SetWriteDeadline(time.Time{})
		p.wmu.Unlock()
		if err == nil {
			n.writes.Add(1)
			n.bytes.Add(int64(len(buf)))
		}

		p.qmu.Lock()
		p.qbusy = false
		if err != nil {
			injected := p.qerr != nil // sever poisoned the queue first
			if p.qerr == nil {
				p.qerr = err
			}
			p.qcv.Broadcast()
			p.qmu.Unlock()
			// An injected sever already aborted the world with its own cause;
			// a genuine write failure means the peer's process is gone.
			if !n.closed.Load() && !injected {
				cause := &mpi.PeerDownError{Rank: p.rank, Op: "write", Err: err}
				n.failPending(cause)
				if w := n.world.Load(); w != nil {
					w.Abort(cause)
				}
			}
			return
		}
		p.qcv.Broadcast()
	}
}

// drainWrites blocks until the peer's pending buffer is flushed (or its
// write plane has errored), then stops the flusher. Close uses it so BYE —
// a direct send — cannot overtake queued mailbox frames. The wait is bounded
// by deadline: a peer that stopped draining its socket must not hold Close
// hostage for the full WriteTimeout, so past the deadline the queue is
// marked timed out and the in-flight Write is abandoned to the connection
// teardown (conn.Close kicks it loose).
func (p *peer) drainWrites(deadline time.Time) {
	var expired atomic.Bool
	timer := time.AfterFunc(time.Until(deadline), func() {
		p.qmu.Lock()
		expired.Store(true)
		p.qcv.Broadcast()
		p.qmu.Unlock()
	})
	defer timer.Stop()
	p.qmu.Lock()
	for (len(p.qbuf) > 0 || p.qbusy) && p.qerr == nil && !expired.Load() {
		p.qcv.Wait()
	}
	if expired.Load() && p.qerr == nil && (len(p.qbuf) > 0 || p.qbusy) {
		p.qtimeout = true
	}
	p.qstop = true
	p.qcv.Broadcast()
	p.qmu.Unlock()
}

// Post ships msg's parts to each remote member's process. Every remote
// member gets exactly one POST frame carrying only its own part (plus the
// envelope), so the receiving mailbox counts exactly one arrival per
// (source, generation) and wire volume matches the addressed payloads.
// Frames ride the per-peer write queue; when the bound world runs with
// compression the part payload travels delta-varint encoded.
func (n *Net) Post(msg *mpi.PostMsg) error {
	compress := false
	if w := n.world.Load(); w != nil {
		compress = w.Compress()
	}
	for i, dst := range msg.Ranks {
		if dst == n.rank {
			continue
		}
		p := n.peers[dst]
		if p == nil {
			return fmt.Errorf("tcpnet: no connection to rank %d", dst)
		}
		if err := n.faultData(p); err != nil {
			return fmt.Errorf("tcpnet: posting %s gen %d to rank %d: %w", msg.Op, msg.Gen, dst, err)
		}
		var b wbuf
		b.str(msg.Comm)
		b.ranks(msg.Ranks)
		b.u32(uint32(msg.Src))
		b.i64(msg.Gen)
		b.str(msg.Op)
		b.u32(uint32(len(msg.Ranks)))
		for j := range msg.Ranks {
			if j == i && j < len(msg.Present) && msg.Present[j] {
				b.u8(1)
				b.part(msg.Parts[j], compress)
			} else {
				b.u8(0)
				b.part(nil, false)
			}
		}
		if err := n.enqueue(p, framePost, b.b); err != nil {
			return fmt.Errorf("tcpnet: posting %s gen %d to rank %d: %w", msg.Op, msg.Gen, dst, err)
		}
	}
	return nil
}

// FinishRead notifies every remote member's process that member m has
// finished reading generation gen on the communicator.
func (n *Net) FinishRead(comm string, ranks []int, m int, gen int64) error {
	var b wbuf
	b.str(comm)
	b.ranks(ranks)
	b.u32(uint32(m))
	b.i64(gen)
	for _, dst := range ranks {
		if dst == n.rank {
			continue
		}
		p := n.peers[dst]
		if p == nil {
			return fmt.Errorf("tcpnet: no connection to rank %d", dst)
		}
		if err := n.faultData(p); err != nil {
			return fmt.Errorf("tcpnet: finish notice gen %d to rank %d: %w", gen, dst, err)
		}
		if err := n.enqueue(p, frameFinish, b.b); err != nil {
			return fmt.Errorf("tcpnet: finish notice gen %d to rank %d: %w", gen, dst, err)
		}
	}
	return nil
}

// RMA sends one one-sided operation to the process hosting rank and blocks
// for its reply.
func (n *Net) RMA(rank int, req *mpi.RMAReq) (*mpi.RMAResp, error) {
	p := n.peers[rank]
	if p == nil {
		return nil, fmt.Errorf("tcpnet: no connection to rank %d", rank)
	}
	if err := n.faultData(p); err != nil {
		return nil, fmt.Errorf("tcpnet: rma to rank %d: %w", rank, err)
	}
	id := n.callID.Add(1)
	ch := make(chan rmaReply, 1)
	n.pending.Store(id, ch)
	defer n.pending.Delete(id)

	var b wbuf
	b.u64(id)
	b.str(req.Win)
	b.u32(uint32(req.Member))
	b.u8(byte(req.Op))
	b.i64(int64(req.Off))
	b.i64(int64(req.N))
	b.ints(req.Data)
	b.u8(byte(req.Code))
	b.i64(req.Operand)
	b.i64(req.Expect)
	b.i64(req.Next)
	if err := n.send(p, frameRMAReq, b.b); err != nil {
		return nil, fmt.Errorf("tcpnet: rma call %d to rank %d: %w", id, rank, err)
	}
	reply := <-ch
	return reply.resp, reply.err
}

// Abort best-effort broadcasts the world abort to every peer; dead
// connections are skipped (the local abort must never block on them).
// The broadcast is bounded by CloseTimeout, not WriteTimeout: the world is
// dying, so a peer that cannot take the frame promptly gets torn down
// instead of pinning the write lock — and with it BYE and Close — for the
// full write window. In-flight RMA calls are failed too; their replies may
// never come from a world that is dying, and the callers must unwind
// through the abort plane.
func (n *Net) Abort(msg string) {
	var b wbuf
	b.u32(uint32(n.rank))
	b.str(msg)
	deadline := time.Now().Add(n.opts.CloseTimeout)
	for _, p := range n.peers {
		if p != nil {
			n.sendTimed(p, frameAbort, b.b, deadline)
		}
	}
	n.failPending(fmt.Errorf("tcpnet: world aborted: %s", msg))
}

// Net implements the optional observability capabilities of the seam.
var (
	_ mpi.ObsShipper    = (*Net)(nil)
	_ mpi.RTTObservable = (*Net)(nil)
)

// SetObsProvider registers the callback that renders this process's
// observability payload (mpi.ObsShipper).
func (n *Net) SetObsProvider(render func() []byte) {
	if render != nil {
		n.obsProvider.Store(render)
	}
}

// ShipObs renders this process's observability payload and sends it to the
// coordinator as one OBS frame (mpi.ObsShipper). Only the first call
// transmits; the coordinator itself never ships. Like the heartbeat, the
// frame is quiet traffic — invisible to WireStats and the fault triggers.
func (n *Net) ShipObs() error {
	if n.rank == 0 {
		return nil
	}
	render, _ := n.obsProvider.Load().(func() []byte)
	if render == nil {
		return nil
	}
	if !n.obsShipped.CompareAndSwap(false, true) {
		return nil
	}
	payload := render()
	if len(payload) == 0 {
		return nil
	}
	p := n.peers[0]
	if p == nil {
		return nil
	}
	return n.sendQuiet(p, frameObs, encodeObs(n.rank, payload), time.Now().Add(n.opts.WriteTimeout))
}

// CollectObs returns the payloads the peers shipped, waiting — bounded by
// timeout — until every peer has either delivered one or clearly never will
// (its BYE arrived, so nothing more is in flight on the ordered connection;
// or the world aborted). mpi.ObsShipper.
func (n *Net) CollectObs(timeout time.Duration) map[int][]byte {
	deadline := time.Now().Add(timeout)
	for {
		pending := 0
		n.obsMu.Lock()
		for _, p := range n.peers {
			if p == nil {
				continue
			}
			if _, ok := n.obsIn[p.rank]; ok {
				continue
			}
			select {
			case <-p.bye:
			default:
				pending++
			}
		}
		n.obsMu.Unlock()
		aborted := false
		if w := n.world.Load(); w != nil {
			aborted = w.Aborted()
		}
		if pending == 0 || aborted || n.closed.Load() || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	out := make(map[int][]byte, len(n.obsIn))
	for r, b := range n.obsIn {
		out[r] = b
	}
	return out
}

// ClockOffsets returns the per-peer Cristian offset estimates gathered by
// the heartbeat probes (mpi.ObsShipper). Adding a peer's offset to its
// trace timestamps maps them into this process's timebase.
func (n *Net) ClockOffsets() map[int]int64 {
	out := make(map[int]int64)
	for _, p := range n.peers {
		if p != nil && p.hasOff.Load() {
			out[p.rank] = p.clockOff.Load()
		}
	}
	return out
}

// SetRTTObserver registers the heartbeat round-trip hook
// (mpi.RTTObservable); it runs on the read plane, so it must be fast.
func (n *Net) SetRTTObserver(f func(peerRank int, rttNs int64)) {
	if f != nil {
		n.rttObs.Store(f)
	}
}

// Close drains the mesh gracefully: send BYE to every peer, wait (bounded by
// CloseTimeout) until each peer's BYE arrives — a peer only says BYE once
// its world has joined, so our window service is no longer needed — then
// tear the connections down and join the readers. Every step is bounded by
// CloseTimeout end to end: a peer that went silent without BYE cannot stall
// the drain past the deadline or leak this endpoint's goroutines, and after
// a world abort the BYE wait is skipped outright — dead peers will never say
// goodbye.
func (n *Net) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	if n.hbStop != nil {
		close(n.hbStop)
		n.hb.Wait()
	}
	deadline := time.Now().Add(n.opts.CloseTimeout)
	aborted := false
	if w := n.world.Load(); w != nil {
		aborted = w.Aborted()
	}
	// Last-act shipping: a worker whose caller never shipped explicitly
	// sends its observability payload now, before any BYE goes out, so the
	// coordinator knows a drained peer has nothing more in flight.
	if !aborted {
		n.ShipObs()
	}
	for _, p := range n.peers {
		if p == nil {
			continue
		}
		p.drainWrites(deadline)
		p.qmu.Lock()
		// A stuck or errored write plane means the flusher may still hold the
		// write lock; skip BYE rather than queue behind it — the peer is not
		// listening anyway.
		stuck := p.qtimeout || p.qerr != nil
		p.qmu.Unlock()
		if !stuck {
			n.sendTimed(p, frameBye, nil, deadline)
		}
	}
	// Wait for the peers' BYEs only on a bound, healthy endpoint: without
	// readers no BYE can be observed, an unbound world never owed its peers
	// any service, and an aborted world's peers may already be gone.
	if n.world.Load() != nil && !aborted {
		timer := time.NewTimer(time.Until(deadline))
	drain:
		for _, p := range n.peers {
			if p == nil {
				continue
			}
			select {
			case <-p.bye:
			case <-timer.C:
				break drain
			}
		}
		timer.Stop()
	}
	for _, p := range n.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	n.failPending(fmt.Errorf("tcpnet: endpoint closed"))
	n.readers.Wait()
	n.flushers.Wait()
	return nil
}

// failPending resolves every in-flight RMA call with err.
func (n *Net) failPending(err error) {
	n.pending.Range(func(key, value any) bool {
		select {
		case value.(chan rmaReply) <- rmaReply{err: err}:
		default:
		}
		return true
	})
}

// readLoop owns a peer connection's receive side: it decodes frames and
// feeds them to the bound world until BYE, EOF, or a transport fault. A
// fault with the world still live aborts it with a PeerDownError — EOF or a
// reset here is how a silently killed peer process announces itself — so
// every mailbox waiter wakes immediately; after BYE or Close the loop just
// winds down.
func (n *Net) readLoop(p *peer) {
	defer n.readers.Done()
	// However the loop ends — BYE, EOF, fault — the peer needs nothing more
	// from us; marking it drained lets Close stop waiting for it.
	defer p.byeO.Do(func() { close(p.bye) })
	for {
		typ, body, err := readFrame(p.conn)
		if err != nil {
			if n.closed.Load() {
				return
			}
			select {
			case <-p.bye:
				// The peer drained politely and closed; nothing is lost.
				return
			default:
			}
			cause := &mpi.PeerDownError{Rank: p.rank, Op: "read", Err: err}
			n.failPendingPeer(cause)
			if w := n.world.Load(); w != nil {
				w.Abort(cause)
			}
			return
		}
		p.lastRecv.Store(time.Now().UnixNano())
		if err := n.handle(p, typ, body); err != nil {
			if w := n.world.Load(); w != nil {
				w.Abort(&mpi.TransportError{Backend: "tcp", Op: "decode", Err: err})
			}
			return
		}
		if typ == frameBye {
			return
		}
	}
}

// failPendingPeer fails in-flight RMA calls when a connection dies. Call ids
// are not tracked per peer; failing all of them is correct because the world
// is about to abort anyway.
func (n *Net) failPendingPeer(err error) { n.failPending(err) }

// handle dispatches one inbound frame through the shared body decoders (the
// same pure functions the fuzz targets exercise).
func (n *Net) handle(p *peer, typ byte, body []byte) error {
	w := n.world.Load()
	switch typ {
	case framePost:
		msg, err := decodePost(body)
		if err != nil {
			return fmt.Errorf("%w (from rank %d)", err, p.rank)
		}
		w.DeliverPost(msg)
	case frameFinish:
		comm, ranks, gen, err := decodeFinish(body)
		if err != nil {
			return fmt.Errorf("%w (from rank %d)", err, p.rank)
		}
		w.DeliverFinish(comm, ranks, gen)
	case frameRMAReq:
		id, req, err := decodeRMAReq(body)
		if err != nil {
			return fmt.Errorf("%w (from rank %d)", err, p.rank)
		}
		resp, rmaErr := w.ExecRMA(req)
		var b wbuf
		b.u64(id)
		if rmaErr != nil {
			b.u8(0)
			b.str(rmaErr.Error())
		} else {
			b.u8(1)
			b.ints(resp.Data)
			b.i64(resp.Old)
		}
		if err := n.send(p, frameRMAResp, b.b); err != nil {
			return fmt.Errorf("tcpnet: rma reply %d to rank %d: %w", id, p.rank, err)
		}
	case frameRMAResp:
		id, resp, remoteErr, ok, err := decodeRMAResp(body)
		if err != nil {
			return fmt.Errorf("%w (from rank %d)", err, p.rank)
		}
		var reply rmaReply
		if ok {
			reply.resp = resp
		} else {
			reply.err = fmt.Errorf("tcpnet: remote rma failed on rank %d: %s", p.rank, remoteErr)
		}
		if ch, found := n.pending.Load(id); found {
			select {
			case ch.(chan rmaReply) <- reply:
			default:
			}
		}
	case frameAbort:
		from, msg, err := decodeAbort(body)
		if err != nil {
			return fmt.Errorf("%w (from rank %d)", err, p.rank)
		}
		w.DeliverAbort(from, msg)
		n.failPending(fmt.Errorf("tcpnet: world aborted by rank %d: %s", from, msg))
	case framePing:
		// readLoop already refreshed liveness; answer the clock probe.
		t0, err := decodePing(body)
		if err != nil {
			return fmt.Errorf("%w (from rank %d)", err, p.rank)
		}
		n.sendPong(p, t0)
	case framePong:
		t0, tPeer, err := decodePong(body)
		if err != nil {
			return fmt.Errorf("%w (from rank %d)", err, p.rank)
		}
		n.observePong(p, t0, tPeer)
	case frameObs:
		from, payload, err := decodeObs(body)
		if err != nil {
			return fmt.Errorf("%w (from rank %d)", err, p.rank)
		}
		n.obsMu.Lock()
		if n.obsIn == nil {
			n.obsIn = make(map[int][]byte)
		}
		n.obsIn[from] = payload
		n.obsMu.Unlock()
	case frameBye:
		p.byeO.Do(func() { close(p.bye) })
	default:
		return fmt.Errorf("tcpnet: unexpected %s frame from rank %d", frameName(typ), p.rank)
	}
	return nil
}

// Loopback builds every endpoint of a size-rank world over 127.0.0.1, for
// tests and the conformance suite. Endpoint i hosts rank i.
func Loopback(size int) ([]mpi.Transport, error) {
	return LoopbackConfig(size, nil)
}

// LoopbackConfig is Loopback with a coordinator config blob (each Join-side
// endpoint will report it from Config).
func LoopbackConfig(size int, config []byte) ([]mpi.Transport, error) {
	return LoopbackOpts(size, config, Options{})
}

// LoopbackOpts is LoopbackConfig with explicit Options applied to every
// endpoint; the fault and failure-detector tests use it to attach a shared
// NetFaultSpec (so drop/partition budgets span the world, like FaultPlan)
// and tight heartbeat windows.
func LoopbackOpts(size int, config []byte, opts Options) ([]mpi.Transport, error) {
	if size <= 0 {
		return nil, fmt.Errorf("tcpnet: world size %d must be positive", size)
	}
	rv, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		return nil, err
	}
	eps := make([]mpi.Transport, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	wg.Add(size)
	go func() {
		defer wg.Done()
		n, err := rv.Coordinate(size, config)
		if err == nil {
			eps[0] = n
		}
		errs[0] = err
	}()
	for r := 1; r < size; r++ {
		go func(r int) {
			defer wg.Done()
			n, _, err := Join(rv.Addr(), r, opts)
			if err == nil {
				eps[r] = n
			}
			errs[r] = err
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, ep := range eps {
				if ep != nil {
					ep.(*Net).teardown()
				}
			}
			return nil, err
		}
	}
	return eps, nil
}

func init() {
	mpi.RegisterTransport("tcp", Loopback)
}

// Package tcpnet is the TCP backend of the mpi package's Transport seam:
// one OS process per rank, full-mesh TCP connections, and a versioned
// length-prefixed codec for the []int64 mailbox payloads. Rank bootstrap is
// a rendezvous at rank 0 — it listens, every other rank dials in and
// announces itself, and rank 0 replies with the full roster (plus an opaque
// job-configuration blob) from which the peers wire up the remaining mesh
// edges among themselves.
//
// The backend moves exactly the three traffic kinds of the Transport
// contract — collective posts, read-retirement notices, and one-sided RMA
// operations — so everything above the seam (metering, CommTimes, fault
// injection, the watchdog, tracing) behaves identically to the in-process
// oracle; the conformance suite in package mpi pins that bit-for-bit.
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mcmdist/internal/mpi"
)

// Options tunes the backend's timeouts. The zero value selects the defaults.
type Options struct {
	// DialTimeout bounds how long Join (and the mesh dials) retry an
	// unreachable peer before giving up; peers start in any order, so dials
	// retry until the window closes. Default 15s.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write; a peer that stops draining its
	// socket surfaces as a transport error instead of a silent hang.
	// Default 30s.
	WriteTimeout time.Duration
	// CloseTimeout bounds the graceful BYE drain in Close before the
	// connections are torn down regardless. Default 5s.
	CloseTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.CloseTimeout <= 0 {
		o.CloseTimeout = 5 * time.Second
	}
	return o
}

// peer is one mesh connection. Writers serialize on wmu and build each frame
// as a single Write, so frames never interleave; the reader goroutine owns
// the receive side exclusively.
//
// Mailbox frames (POST, FINISH) do not write the socket directly: they are
// framed into a per-peer pending buffer and a flusher goroutine drains it,
// so frames queued while a write is in flight coalesce into one Write — the
// small-message aggregation of the wire layer. The queue is FIFO, which
// preserves the POST-before-FINISH order the mailbox relies on; bootstrap,
// RMA, ABORT and BYE frames keep writing directly under wmu (RMA never
// overtakes a fence, because a fence only completes after the remote side
// acknowledged reading its posts).
type peer struct {
	rank int
	conn net.Conn
	wmu  sync.Mutex
	bye  chan struct{} // closed when the peer's BYE arrives
	byeO sync.Once

	qmu   sync.Mutex
	qcv   *sync.Cond
	qbuf  []byte // framed mailbox bytes awaiting the flusher
	qbusy bool   // a flusher Write is in flight
	qstop bool   // no further enqueues; flusher exits once drained
	qerr  error  // first write error; poisons subsequent enqueues
}

// Net is one process's TCP endpoint of a world: it hosts exactly one rank
// and holds one connection to every other rank. It implements mpi.Transport.
type Net struct {
	rank   int
	size   int
	opts   Options
	config []byte // the coordinator's job blob (as received by Join)

	peers []*peer // indexed by world rank; peers[rank] == nil

	world atomic.Pointer[mpi.World]

	callID  atomic.Uint64
	pending sync.Map // callID → chan rmaReply

	closed   atomic.Bool
	readers  sync.WaitGroup
	flushers sync.WaitGroup

	frames atomic.Int64 // frames handed to the write plane
	writes atomic.Int64 // socket Write calls that carried them
	bytes  atomic.Int64 // bytes written
}

// WireStats counts this endpoint's outbound wire activity. Frames is the
// number of frames sent, Writes the number of socket writes that carried
// them — aggregation shows up as Writes < Frames — and Bytes the total
// bytes written, which with compression on is smaller than the same
// solve writes raw.
type WireStats struct {
	// Frames counts frames handed to the write plane.
	Frames int64
	// Writes counts the socket Write calls that carried them.
	Writes int64
	// Bytes counts bytes written, header included.
	Bytes int64
}

// WireStats returns a snapshot of the endpoint's outbound counters.
func (n *Net) WireStats() WireStats {
	return WireStats{Frames: n.frames.Load(), Writes: n.writes.Load(), Bytes: n.bytes.Load()}
}

type rmaReply struct {
	resp *mpi.RMAResp
	err  error
}

// Rendezvous is rank 0's bootstrap listener, split from Coordinate so the
// address (which may have been chosen by the kernel, ":0") is known before
// the peers are told to dial it.
type Rendezvous struct {
	ln   net.Listener
	opts Options
}

// Listen opens rank 0's rendezvous listener on addr ("host:port"; a zero
// port lets the kernel pick).
func Listen(addr string, opts Options) (*Rendezvous, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: rendezvous listen on %q: %w", addr, err)
	}
	return &Rendezvous{ln: ln, opts: opts.withDefaults()}, nil
}

// Addr returns the rendezvous address peers must Join.
func (rv *Rendezvous) Addr() string { return rv.ln.Addr().String() }

// Close abandons the rendezvous without coordinating (Coordinate closes the
// listener itself).
func (rv *Rendezvous) Close() error { return rv.ln.Close() }

// Coordinate completes rank 0's bootstrap of a size-rank world: it accepts
// one dial-in per peer rank, replies to each with the roster (every rank's
// mesh listen address) and the opaque config blob, and keeps the accepted
// connections as its mesh edges. It returns rank 0's transport endpoint.
// config is typically an encoded job spec that tells worker processes what
// to solve; nil is fine.
func (rv *Rendezvous) Coordinate(size int, config []byte) (*Net, error) {
	defer rv.ln.Close()
	if size <= 0 {
		return nil, fmt.Errorf("tcpnet: world size %d must be positive", size)
	}
	n := &Net{rank: 0, size: size, opts: rv.opts, config: config, peers: make([]*peer, size)}
	addrs := make([]string, size)
	addrs[0] = rv.Addr()
	deadline := time.Now().Add(rv.opts.DialTimeout)
	for accepted := 0; accepted < size-1; accepted++ {
		rv.ln.(*net.TCPListener).SetDeadline(deadline)
		conn, err := rv.ln.Accept()
		if err != nil {
			n.teardown()
			return nil, fmt.Errorf("tcpnet: rendezvous accept (%d/%d peers in): %w", accepted, size-1, err)
		}
		rank, listenAddr, err := readHello(conn, rv.opts)
		if err != nil {
			conn.Close()
			n.teardown()
			return nil, err
		}
		if rank <= 0 || rank >= size {
			conn.Close()
			n.teardown()
			return nil, fmt.Errorf("tcpnet: peer announced rank %d outside world of size %d", rank, size)
		}
		if n.peers[rank] != nil {
			conn.Close()
			n.teardown()
			return nil, fmt.Errorf("tcpnet: rank %d joined twice", rank)
		}
		n.peers[rank] = newPeer(rank, conn)
		addrs[rank] = listenAddr
	}
	var body wbuf
	body.u32(uint32(size))
	for _, a := range addrs {
		body.str(a)
	}
	body.bytes(config)
	for r := 1; r < size; r++ {
		p := n.peers[r]
		if err := n.send(p, frameRoster, body.b); err != nil {
			n.teardown()
			return nil, fmt.Errorf("tcpnet: sending roster to rank %d: %w", r, err)
		}
	}
	return n, nil
}

// Join is a worker rank's bootstrap: open a mesh listener, dial the
// coordinator (retrying while it comes up), announce the rank, receive the
// roster and config blob, then complete the mesh — dialing every lower
// nonzero rank and accepting every higher one. It returns this rank's
// transport endpoint and the coordinator's config blob.
func Join(addr string, rank int, opts Options) (*Net, []byte, error) {
	opts = opts.withDefaults()
	if rank <= 0 {
		return nil, nil, fmt.Errorf("tcpnet: Join with rank %d (rank 0 coordinates via Listen/Coordinate)", rank)
	}
	ln, err := net.Listen("tcp", meshListenAddr(addr))
	if err != nil {
		return nil, nil, fmt.Errorf("tcpnet: mesh listen: %w", err)
	}
	defer ln.Close()

	conn, err := dialRetry(addr, opts.DialTimeout)
	if err != nil {
		return nil, nil, fmt.Errorf("tcpnet: dialing coordinator %q: %w", addr, err)
	}
	if err := writeHello(conn, rank, ln.Addr().String(), opts); err != nil {
		conn.Close()
		return nil, nil, err
	}
	typ, body, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("tcpnet: awaiting roster: %w", err)
	}
	if typ != frameRoster {
		conn.Close()
		return nil, nil, fmt.Errorf("tcpnet: expected ROSTER, got %s", frameName(typ))
	}
	rb := rbuf{b: body}
	size := int(rb.u32())
	if rb.bad || size <= 0 || size > 1<<20 {
		conn.Close()
		return nil, nil, fmt.Errorf("tcpnet: malformed roster size")
	}
	addrs := make([]string, size)
	for i := range addrs {
		addrs[i] = rb.str()
	}
	config := rb.bytesField()
	if err := rb.err(frameRoster); err != nil {
		conn.Close()
		return nil, nil, err
	}
	if rank >= size {
		conn.Close()
		return nil, nil, fmt.Errorf("tcpnet: rank %d outside world of size %d", rank, size)
	}

	n := &Net{rank: rank, size: size, opts: opts, config: config, peers: make([]*peer, size)}
	n.peers[0] = newPeer(0, conn)
	// Mesh edge (i, j), i > j ≥ 1, is dialed by i and accepted by j; the
	// bootstrap connection already covers every (r, 0) edge.
	for j := 1; j < rank; j++ {
		c, err := dialRetry(addrs[j], opts.DialTimeout)
		if err != nil {
			n.teardown()
			return nil, nil, fmt.Errorf("tcpnet: dialing rank %d at %q: %w", j, addrs[j], err)
		}
		if err := writeHello(c, rank, "", opts); err != nil {
			c.Close()
			n.teardown()
			return nil, nil, err
		}
		n.peers[j] = newPeer(j, c)
	}
	deadline := time.Now().Add(opts.DialTimeout)
	for need := size - rank - 1; need > 0; need-- {
		ln.(*net.TCPListener).SetDeadline(deadline)
		c, err := ln.Accept()
		if err != nil {
			n.teardown()
			return nil, nil, fmt.Errorf("tcpnet: mesh accept (awaiting %d higher ranks): %w", need, err)
		}
		r, _, err := readHello(c, opts)
		if err != nil {
			c.Close()
			n.teardown()
			return nil, nil, err
		}
		if r <= rank || r >= size || n.peers[r] != nil {
			c.Close()
			n.teardown()
			return nil, nil, fmt.Errorf("tcpnet: unexpected mesh hello from rank %d at rank %d", r, rank)
		}
		n.peers[r] = newPeer(r, c)
	}
	return n, config, nil
}

// meshListenAddr picks the worker's mesh listen address: the coordinator
// host's wildcard port when the host is explicit, plain ":0" otherwise.
// Loopback coordinators get loopback mesh listeners, which keeps multi-rank
// tests and the smoke script off external interfaces.
func meshListenAddr(coord string) string {
	host, _, err := net.SplitHostPort(coord)
	if err != nil || host == "" {
		return ":0"
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsLoopback() {
		return net.JoinHostPort(host, "0")
	}
	return ":0"
}

// dialRetry dials addr until it answers or the window closes; peers start in
// any order, so connection-refused is an expected transient.
func dialRetry(addr string, window time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(window)
	for {
		conn, err := net.DialTimeout("tcp", addr, window)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func newPeer(rank int, conn net.Conn) *peer {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p := &peer{rank: rank, conn: conn, bye: make(chan struct{})}
	p.qcv = sync.NewCond(&p.qmu)
	return p
}

func writeHello(conn net.Conn, rank int, listenAddr string, opts Options) error {
	var b wbuf
	b.b = append(b.b, wireMagic...)
	b.u8(wireVersion)
	b.u32(uint32(rank))
	b.str(listenAddr)
	conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
	err := writeFrame(conn, frameHello, b.b)
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		return fmt.Errorf("tcpnet: sending hello: %w", err)
	}
	return nil
}

func readHello(conn net.Conn, opts Options) (rank int, listenAddr string, err error) {
	conn.SetReadDeadline(time.Now().Add(opts.DialTimeout))
	typ, body, err := readFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		return 0, "", fmt.Errorf("tcpnet: awaiting hello: %w", err)
	}
	if typ != frameHello {
		return 0, "", fmt.Errorf("tcpnet: expected HELLO, got %s", frameName(typ))
	}
	rb := rbuf{b: body}
	if len(rb.b) < len(wireMagic) || string(rb.b[:len(wireMagic)]) != wireMagic {
		return 0, "", fmt.Errorf("tcpnet: bad magic in hello (foreign peer?)")
	}
	rb.off = len(wireMagic)
	if v := rb.u8(); v != wireVersion {
		return 0, "", fmt.Errorf("tcpnet: peer speaks wire version %d, this build speaks %d", v, wireVersion)
	}
	rank = int(rb.u32())
	listenAddr = rb.str()
	if err := rb.err(frameHello); err != nil {
		return 0, "", err
	}
	return rank, listenAddr, nil
}

// teardown closes every connection established so far (bootstrap failure
// path only; the graceful path is Close).
func (n *Net) teardown() {
	for _, p := range n.peers {
		if p != nil {
			p.conn.Close()
		}
	}
}

// Name returns "tcp".
func (n *Net) Name() string { return "tcp" }

// WorldSize returns the rank count of the world.
func (n *Net) WorldSize() int { return n.size }

// LocalRanks returns the single rank this process hosts.
func (n *Net) LocalRanks() []int { return []int{n.rank} }

// Rank returns this process's world rank.
func (n *Net) Rank() int { return n.rank }

// Config returns the coordinator's opaque config blob (what Join received;
// on rank 0, what Coordinate was given).
func (n *Net) Config() []byte { return n.config }

// Bind attaches the world and starts one reader goroutine per peer
// connection; from here on inbound frames flow into the mailbox.
func (n *Net) Bind(w *mpi.World) error {
	if !n.world.CompareAndSwap(nil, w) {
		return fmt.Errorf("tcpnet: endpoint bound twice")
	}
	for _, p := range n.peers {
		if p == nil {
			continue
		}
		n.readers.Add(1)
		go n.readLoop(p)
		n.flushers.Add(1)
		go n.flushLoop(p)
	}
	return nil
}

// send writes one frame to a peer under its write lock and deadline —
// the direct path for bootstrap, RMA, ABORT and BYE traffic.
func (n *Net) send(p *peer, typ byte, body []byte) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.conn.SetWriteDeadline(time.Now().Add(n.opts.WriteTimeout))
	err := writeFrame(p.conn, typ, body)
	p.conn.SetWriteDeadline(time.Time{})
	if err == nil {
		n.frames.Add(1)
		n.writes.Add(1)
		n.bytes.Add(int64(5 + len(body)))
	}
	return err
}

// enqueue frames one mailbox message into the peer's pending buffer and
// wakes the flusher; it fails fast once the peer's write plane has errored
// or stopped.
func (n *Net) enqueue(p *peer, typ byte, body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("tcpnet: %s frame body %d bytes exceeds cap %d", frameName(typ), len(body), maxFrame)
	}
	p.qmu.Lock()
	defer p.qmu.Unlock()
	if p.qerr != nil {
		return p.qerr
	}
	if p.qstop {
		return fmt.Errorf("tcpnet: writer to rank %d stopped", p.rank)
	}
	p.qbuf = binary.LittleEndian.AppendUint32(p.qbuf, uint32(len(body)))
	p.qbuf = append(p.qbuf, typ)
	p.qbuf = append(p.qbuf, body...)
	n.frames.Add(1)
	p.qcv.Signal()
	return nil
}

// flushLoop drains a peer's pending buffer: everything queued since the
// last Write goes out as one Write. A write error poisons the queue and
// aborts the world (unless the endpoint is already closing).
func (n *Net) flushLoop(p *peer) {
	defer n.flushers.Done()
	p.qmu.Lock()
	for {
		for len(p.qbuf) == 0 && !p.qstop {
			p.qcv.Wait()
		}
		if len(p.qbuf) == 0 {
			p.qmu.Unlock()
			return
		}
		buf := p.qbuf
		p.qbuf = nil
		p.qbusy = true
		p.qmu.Unlock()

		p.wmu.Lock()
		p.conn.SetWriteDeadline(time.Now().Add(n.opts.WriteTimeout))
		_, err := p.conn.Write(buf)
		p.conn.SetWriteDeadline(time.Time{})
		p.wmu.Unlock()
		if err == nil {
			n.writes.Add(1)
			n.bytes.Add(int64(len(buf)))
		}

		p.qmu.Lock()
		p.qbusy = false
		if err != nil {
			if p.qerr == nil {
				p.qerr = err
			}
			p.qcv.Broadcast()
			p.qmu.Unlock()
			if !n.closed.Load() {
				if w := n.world.Load(); w != nil {
					w.Abort(&mpi.TransportError{Backend: "tcp", Op: "write",
						Err: fmt.Errorf("tcpnet: connection to rank %d: %w", p.rank, err)})
				}
			}
			return
		}
		p.qcv.Broadcast()
	}
}

// drainWrites blocks until the peer's pending buffer is flushed (or its
// write plane has errored), then stops the flusher. Close uses it so BYE —
// a direct send — cannot overtake queued mailbox frames.
func (p *peer) drainWrites() {
	p.qmu.Lock()
	for (len(p.qbuf) > 0 || p.qbusy) && p.qerr == nil {
		p.qcv.Wait()
	}
	p.qstop = true
	p.qcv.Broadcast()
	p.qmu.Unlock()
}

// Post ships msg's parts to each remote member's process. Every remote
// member gets exactly one POST frame carrying only its own part (plus the
// envelope), so the receiving mailbox counts exactly one arrival per
// (source, generation) and wire volume matches the addressed payloads.
// Frames ride the per-peer write queue; when the bound world runs with
// compression the part payload travels delta-varint encoded.
func (n *Net) Post(msg *mpi.PostMsg) error {
	compress := false
	if w := n.world.Load(); w != nil {
		compress = w.Compress()
	}
	for i, dst := range msg.Ranks {
		if dst == n.rank {
			continue
		}
		p := n.peers[dst]
		if p == nil {
			return fmt.Errorf("tcpnet: no connection to rank %d", dst)
		}
		var b wbuf
		b.str(msg.Comm)
		b.ranks(msg.Ranks)
		b.u32(uint32(msg.Src))
		b.i64(msg.Gen)
		b.str(msg.Op)
		b.u32(uint32(len(msg.Ranks)))
		for j := range msg.Ranks {
			if j == i && j < len(msg.Present) && msg.Present[j] {
				b.u8(1)
				b.part(msg.Parts[j], compress)
			} else {
				b.u8(0)
				b.part(nil, false)
			}
		}
		if err := n.enqueue(p, framePost, b.b); err != nil {
			return fmt.Errorf("tcpnet: posting %s gen %d to rank %d: %w", msg.Op, msg.Gen, dst, err)
		}
	}
	return nil
}

// FinishRead notifies every remote member's process that member m has
// finished reading generation gen on the communicator.
func (n *Net) FinishRead(comm string, ranks []int, m int, gen int64) error {
	var b wbuf
	b.str(comm)
	b.ranks(ranks)
	b.u32(uint32(m))
	b.i64(gen)
	for _, dst := range ranks {
		if dst == n.rank {
			continue
		}
		p := n.peers[dst]
		if p == nil {
			return fmt.Errorf("tcpnet: no connection to rank %d", dst)
		}
		if err := n.enqueue(p, frameFinish, b.b); err != nil {
			return fmt.Errorf("tcpnet: finish notice gen %d to rank %d: %w", gen, dst, err)
		}
	}
	return nil
}

// RMA sends one one-sided operation to the process hosting rank and blocks
// for its reply.
func (n *Net) RMA(rank int, req *mpi.RMAReq) (*mpi.RMAResp, error) {
	p := n.peers[rank]
	if p == nil {
		return nil, fmt.Errorf("tcpnet: no connection to rank %d", rank)
	}
	id := n.callID.Add(1)
	ch := make(chan rmaReply, 1)
	n.pending.Store(id, ch)
	defer n.pending.Delete(id)

	var b wbuf
	b.u64(id)
	b.str(req.Win)
	b.u32(uint32(req.Member))
	b.u8(byte(req.Op))
	b.i64(int64(req.Off))
	b.i64(int64(req.N))
	b.ints(req.Data)
	b.u8(byte(req.Code))
	b.i64(req.Operand)
	b.i64(req.Expect)
	b.i64(req.Next)
	if err := n.send(p, frameRMAReq, b.b); err != nil {
		return nil, fmt.Errorf("tcpnet: rma call %d to rank %d: %w", id, rank, err)
	}
	reply := <-ch
	return reply.resp, reply.err
}

// Abort best-effort broadcasts the world abort to every peer; dead
// connections are skipped (the local abort must never block on them).
// In-flight RMA calls are failed too — their replies may never come from a
// world that is dying, and the callers must unwind through the abort plane.
func (n *Net) Abort(msg string) {
	var b wbuf
	b.u32(uint32(n.rank))
	b.str(msg)
	for _, p := range n.peers {
		if p != nil {
			n.send(p, frameAbort, b.b)
		}
	}
	n.failPending(fmt.Errorf("tcpnet: world aborted: %s", msg))
}

// Close drains the mesh gracefully: send BYE to every peer, wait (bounded by
// CloseTimeout) until each peer's BYE arrives — a peer only says BYE once
// its world has joined, so our window service is no longer needed — then
// tear the connections down and join the readers.
func (n *Net) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, p := range n.peers {
		if p != nil {
			p.drainWrites()
			n.send(p, frameBye, nil)
		}
	}
	// Drain only applies to a bound endpoint: without readers no BYE can be
	// observed, and an unbound world never owed its peers any service.
	if n.world.Load() != nil {
		deadline := time.NewTimer(n.opts.CloseTimeout)
	drain:
		for _, p := range n.peers {
			if p == nil {
				continue
			}
			select {
			case <-p.bye:
			case <-deadline.C:
				break drain
			}
		}
		deadline.Stop()
	}
	for _, p := range n.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	n.failPending(fmt.Errorf("tcpnet: endpoint closed"))
	n.readers.Wait()
	n.flushers.Wait()
	return nil
}

// failPending resolves every in-flight RMA call with err.
func (n *Net) failPending(err error) {
	n.pending.Range(func(key, value any) bool {
		select {
		case value.(chan rmaReply) <- rmaReply{err: err}:
		default:
		}
		return true
	})
}

// readLoop owns a peer connection's receive side: it decodes frames and
// feeds them to the bound world until BYE, EOF, or a transport fault. A
// fault with the world still live aborts it (the peer process died
// mid-solve); after BYE or Close the loop just winds down.
func (n *Net) readLoop(p *peer) {
	defer n.readers.Done()
	// However the loop ends — BYE, EOF, fault — the peer needs nothing more
	// from us; marking it drained lets Close stop waiting for it.
	defer p.byeO.Do(func() { close(p.bye) })
	for {
		typ, body, err := readFrame(p.conn)
		if err != nil {
			if n.closed.Load() {
				return
			}
			select {
			case <-p.bye:
				// The peer drained politely and closed; nothing is lost.
				return
			default:
			}
			cause := fmt.Errorf("tcpnet: connection to rank %d: %w", p.rank, err)
			n.failPendingPeer(cause)
			if w := n.world.Load(); w != nil {
				w.Abort(&mpi.TransportError{Backend: "tcp", Op: "read", Err: cause})
			}
			return
		}
		if err := n.handle(p, typ, body); err != nil {
			if w := n.world.Load(); w != nil {
				w.Abort(&mpi.TransportError{Backend: "tcp", Op: "decode", Err: err})
			}
			return
		}
		if typ == frameBye {
			return
		}
	}
}

// failPendingPeer fails in-flight RMA calls when a connection dies. Call ids
// are not tracked per peer; failing all of them is correct because the world
// is about to abort anyway.
func (n *Net) failPendingPeer(err error) { n.failPending(err) }

// handle dispatches one inbound frame.
func (n *Net) handle(p *peer, typ byte, body []byte) error {
	w := n.world.Load()
	switch typ {
	case framePost:
		rb := rbuf{b: body}
		msg := &mpi.PostMsg{Comm: rb.str(), Ranks: rb.ranks()}
		msg.Src = int(rb.u32())
		msg.Gen = rb.i64()
		msg.Op = rb.str()
		nparts := int(rb.u32())
		if rb.bad || nparts != len(msg.Ranks) {
			return fmt.Errorf("tcpnet: POST parts/ranks mismatch from rank %d", p.rank)
		}
		msg.Parts = make([][]int64, nparts)
		msg.Present = make([]bool, nparts)
		for i := 0; i < nparts; i++ {
			msg.Present[i] = rb.u8() != 0
			msg.Parts[i] = rb.part()
		}
		if err := rb.err(typ); err != nil {
			return err
		}
		w.DeliverPost(msg)
	case frameFinish:
		rb := rbuf{b: body}
		comm := rb.str()
		ranks := rb.ranks()
		rb.u32() // member index; retirement only counts readers
		gen := rb.i64()
		if err := rb.err(typ); err != nil {
			return err
		}
		w.DeliverFinish(comm, ranks, gen)
	case frameRMAReq:
		rb := rbuf{b: body}
		id := rb.u64()
		req := &mpi.RMAReq{Win: rb.str(), Member: int(rb.u32()), Op: mpi.RMAOp(rb.u8()),
			Off: int(rb.i64()), N: int(rb.i64()), Data: rb.ints(), Code: mpi.OpCode(rb.u8())}
		req.Operand = rb.i64()
		req.Expect = rb.i64()
		req.Next = rb.i64()
		if err := rb.err(typ); err != nil {
			return err
		}
		resp, rmaErr := w.ExecRMA(req)
		var b wbuf
		b.u64(id)
		if rmaErr != nil {
			b.u8(0)
			b.str(rmaErr.Error())
		} else {
			b.u8(1)
			b.ints(resp.Data)
			b.i64(resp.Old)
		}
		if err := n.send(p, frameRMAResp, b.b); err != nil {
			return fmt.Errorf("tcpnet: rma reply %d to rank %d: %w", id, p.rank, err)
		}
	case frameRMAResp:
		rb := rbuf{b: body}
		id := rb.u64()
		ok := rb.u8() != 0
		var reply rmaReply
		if ok {
			reply.resp = &mpi.RMAResp{Data: rb.ints(), Old: rb.i64()}
		} else {
			reply.err = fmt.Errorf("tcpnet: remote rma failed on rank %d: %s", p.rank, rb.str())
		}
		if err := rb.err(typ); err != nil {
			return err
		}
		if ch, found := n.pending.Load(id); found {
			select {
			case ch.(chan rmaReply) <- reply:
			default:
			}
		}
	case frameAbort:
		rb := rbuf{b: body}
		from := int(rb.u32())
		msg := rb.str()
		if err := rb.err(typ); err != nil {
			return err
		}
		w.DeliverAbort(from, msg)
		n.failPending(fmt.Errorf("tcpnet: world aborted by rank %d: %s", from, msg))
	case frameBye:
		p.byeO.Do(func() { close(p.bye) })
	default:
		return fmt.Errorf("tcpnet: unexpected %s frame from rank %d", frameName(typ), p.rank)
	}
	return nil
}

// Loopback builds every endpoint of a size-rank world over 127.0.0.1, for
// tests and the conformance suite. Endpoint i hosts rank i.
func Loopback(size int) ([]mpi.Transport, error) {
	return LoopbackConfig(size, nil)
}

// LoopbackConfig is Loopback with a coordinator config blob (each Join-side
// endpoint will report it from Config).
func LoopbackConfig(size int, config []byte) ([]mpi.Transport, error) {
	if size <= 0 {
		return nil, fmt.Errorf("tcpnet: world size %d must be positive", size)
	}
	rv, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		return nil, err
	}
	eps := make([]mpi.Transport, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	wg.Add(size)
	go func() {
		defer wg.Done()
		n, err := rv.Coordinate(size, config)
		if err == nil {
			eps[0] = n
		}
		errs[0] = err
	}()
	for r := 1; r < size; r++ {
		go func(r int) {
			defer wg.Done()
			n, _, err := Join(rv.Addr(), r, Options{})
			if err == nil {
				eps[r] = n
			}
			errs[r] = err
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, ep := range eps {
				if ep != nil {
					ep.(*Net).teardown()
				}
			}
			return nil, err
		}
	}
	return eps, nil
}

func init() {
	mpi.RegisterTransport("tcp", Loopback)
}

package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"

	"mcmdist/internal/mpi"
	"mcmdist/internal/wire"
)

// Wire format (version 4, magic "MCMNET1"):
//
//	frame   := u32 bodyLen | u8 type | body
//	u32/u64 := little-endian; int64 values travel as their two's-complement u64
//	str     := u32 len | bytes (UTF-8, no terminator)
//	ints    := u32 count | count × u64
//	part    := u8 enc | enc 0: ints
//	                  | enc 1: u32 count | u32 nbytes | delta-varint bytes
//
// Frame bodies:
//
//	HELLO    := magic "MCMNET1" | u8 version | u32 rank | str listenAddr
//	ROSTER   := u32 size | size × str addr | str config
//	POST     := str comm | u32 n | n × u32 rank | u32 src | u64 gen |
//	            str op | u32 n | n × (u8 present | part)
//	FINISH   := str comm | u32 n | n × u32 rank | u32 member | u64 gen
//	RMA_REQ  := u64 callID | str win | u32 member | u8 op | u64 off |
//	            u64 n | ints data | u8 code | u64 operand | u64 expect | u64 next
//	RMA_RESP := u64 callID | u8 ok | ok: (ints data | u64 old) / !ok: str error
//	ABORT    := u32 from | str msg
//	BYE      := (empty)
//	PING     := u64 t0 (sender's trace clock at send)
//	PONG     := u64 t0 (echoed) | u64 tPeer (responder's trace clock at reply)
//	OBS      := u32 from | u32 nbytes | bytes (an internal/obs MCMOBS1 payload)
//
// Version 2 adds the per-part encoding byte on POST: encoding 1 carries the
// payload through the delta-varint codec of internal/wire (the compression
// the metering layer accounts as Meter.WordsEnc). Senders pick the encoding
// per world — raw unless the world runs with mpi.RunConfig.Compress — and
// receivers accept either, so the choice is a sender-local matter; the
// version byte still fences off v1 binaries, which cannot parse the part
// header at all.
//
// Version 3 adds the PING frame, the heartbeat of the failure detector: any
// inbound frame refreshes the sender's liveness, and PING exists so an idle
// but healthy peer keeps refreshing it. A v2 binary would treat PING as a
// protocol error, hence the bump.
//
// Version 4 turns the heartbeat into a Cristian clock probe and adds the
// observability shipping path. PING now carries the sender's trace
// timestamp and is answered with a PONG echoing it next to the responder's
// own clock; the sender combines the echo with its receive time into a
// per-peer clock-offset estimate (minimum-RTT filtered, applied only when
// traces merge — see internal/obs). OBS ships one process's encoded
// observability state to the coordinator at solve end (or as a last act
// before BYE). A v3 binary would reject the non-empty PING body and the
// two new frame types, hence the bump. PING, PONG and OBS are runtime
// plumbing, not solver traffic: none of them is counted by the fault
// injector's data-frame sequence or by Net.WireStats, so the deterministic
// fault schedule and the conformance-pinned wire accounting are identical
// with observability on or off (a slow link's injected delay does apply to
// them, so injected latency shows up in the RTT estimates).
//
// The HELLO magic and version open every connection (both the rendezvous
// dial and the mesh dials), so a version-skewed or foreign peer is rejected
// before any traffic flows. A frame body is capped at maxFrame bytes;
// payloads are []int64 throughout, matching the mailbox model.

// wireMagic and wireVersion identify the protocol on every new connection.
const (
	wireMagic   = "MCMNET1"
	wireVersion = 4
)

// maxFrame caps one frame body (1 GiB), a guard against corrupted length
// prefixes rather than a practical limit.
const maxFrame = 1 << 30

// The POST part payload encodings.
const (
	encRaw   byte = 0 // ints: u32 count | count × u64
	encDelta byte = 1 // delta-varint: u32 count | u32 nbytes | bytes
)

// The frame types.
const (
	frameHello byte = iota + 1
	frameRoster
	framePost
	frameFinish
	frameRMAReq
	frameRMAResp
	frameAbort
	frameBye
	framePing
	framePong
	frameObs
)

// frameName renders a frame type for error messages.
func frameName(t byte) string {
	switch t {
	case frameHello:
		return "HELLO"
	case frameRoster:
		return "ROSTER"
	case framePost:
		return "POST"
	case frameFinish:
		return "FINISH"
	case frameRMAReq:
		return "RMA_REQ"
	case frameRMAResp:
		return "RMA_RESP"
	case frameAbort:
		return "ABORT"
	case frameBye:
		return "BYE"
	case framePing:
		return "PING"
	case framePong:
		return "PONG"
	case frameObs:
		return "OBS"
	default:
		return fmt.Sprintf("frame(%d)", t)
	}
}

// wbuf builds a frame body.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)    { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)  { w.u64(uint64(v)) }

func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

func (w *wbuf) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}

func (w *wbuf) ints(v []int64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.i64(x)
	}
}

// part writes one POST part payload under the chosen encoding.
func (w *wbuf) part(v []int64, compress bool) {
	if !compress {
		w.u8(encRaw)
		w.ints(v)
		return
	}
	w.u8(encDelta)
	w.u32(uint32(len(v)))
	lenOff := len(w.b)
	w.u32(0) // nbytes backpatched below
	w.b = wire.AppendEncoded(w.b, v)
	binary.LittleEndian.PutUint32(w.b[lenOff:], uint32(len(w.b)-lenOff-4))
}

func (w *wbuf) ranks(rs []int) {
	w.u32(uint32(len(rs)))
	for _, r := range rs {
		w.u32(uint32(r))
	}
}

// rbuf decodes a frame body. The first malformed field poisons the buffer;
// err() reports it after decoding.
type rbuf struct {
	b   []byte
	off int
	bad bool
}

func (r *rbuf) fail() {
	r.bad = true
}

func (r *rbuf) u8() byte {
	if r.bad || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u32() uint32 {
	if r.bad || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.bad || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) i64() int64 { return int64(r.u64()) }

func (r *rbuf) str() string {
	n := int(r.u32())
	if r.bad || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *rbuf) bytesField() []byte {
	n := int(r.u32())
	if r.bad || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	p := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return p
}

func (r *rbuf) ints() []int64 {
	n := int(r.u32())
	if r.bad || n < 0 || r.off+8*n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return []int64{}
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = r.i64()
	}
	return v
}

// part reads one POST part payload, dispatching on its encoding byte.
func (r *rbuf) part() []int64 {
	switch r.u8() {
	case encRaw:
		return r.ints()
	case encDelta:
		count := int(r.u32())
		nb := int(r.u32())
		if r.bad || count < 0 || nb < 0 || r.off+nb > len(r.b) {
			r.fail()
			return nil
		}
		// Every delta-varint value is at least one byte, so a count beyond
		// the payload length is malformed; rejecting it here keeps a corrupt
		// header from forcing a count-sized allocation before Decode fails.
		if count > nb {
			r.fail()
			return nil
		}
		v, err := wire.Decode(make([]int64, 0, count), count, r.b[r.off:r.off+nb])
		if err != nil {
			r.fail()
			return nil
		}
		r.off += nb
		return v
	default:
		r.fail()
		return nil
	}
}

func (r *rbuf) ranks() []int {
	n := int(r.u32())
	if r.bad || n < 0 || r.off+4*n > len(r.b) {
		r.fail()
		return nil
	}
	rs := make([]int, n)
	for i := range rs {
		rs[i] = int(r.u32())
	}
	return rs
}

// err reports the first decode failure, also flagging trailing garbage.
func (r *rbuf) err(frame byte) error {
	if r.bad {
		return fmt.Errorf("tcpnet: malformed %s frame (%d bytes)", frameName(frame), len(r.b))
	}
	if r.off != len(r.b) {
		return fmt.Errorf("tcpnet: %s frame has %d trailing bytes", frameName(frame), len(r.b)-r.off)
	}
	return nil
}

// writeFrame sends one frame: length prefix, type byte, body.
func writeFrame(w io.Writer, typ byte, body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("tcpnet: %s frame body %d bytes exceeds cap %d", frameName(typ), len(body), maxFrame)
	}
	hdr := make([]byte, 0, 5+len(body))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(body)))
	hdr = append(hdr, typ)
	hdr = append(hdr, body...)
	_, err := w.Write(hdr)
	return err
}

// readFrame receives one frame, enforcing the body cap.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	typ := hdr[4]
	if n > maxFrame {
		return 0, nil, fmt.Errorf("tcpnet: %s frame body %d bytes exceeds cap %d", frameName(typ), n, maxFrame)
	}
	// The body is read in bounded chunks: a corrupt or hostile length prefix
	// then costs at most one chunk of memory before the missing payload bytes
	// fail the read, instead of a maxFrame-sized up-front allocation.
	body := make([]byte, 0, min(int(n), frameReadChunk))
	for len(body) < int(n) {
		step := int(n) - len(body)
		if step > frameReadChunk {
			step = frameReadChunk
		}
		off := len(body)
		body = append(body, make([]byte, step)...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return 0, nil, fmt.Errorf("tcpnet: short %s frame: %w", frameName(typ), err)
		}
	}
	return typ, body, nil
}

// frameReadChunk bounds how much body memory readFrame commits per read.
const frameReadChunk = 1 << 20

// The body decoders below are pure functions of the frame bytes, shared by
// the read loop and the fuzz targets: whatever a peer (or the fuzzer) puts
// on the wire either decodes to a well-formed value or returns an error —
// never a panic, never a silently wrong message.

// decodePost decodes a POST frame body.
func decodePost(body []byte) (*mpi.PostMsg, error) {
	rb := rbuf{b: body}
	msg := &mpi.PostMsg{Comm: rb.str(), Ranks: rb.ranks()}
	msg.Src = int(rb.u32())
	msg.Gen = rb.i64()
	msg.Op = rb.str()
	nparts := int(rb.u32())
	if rb.bad || nparts != len(msg.Ranks) {
		return nil, fmt.Errorf("tcpnet: POST parts/ranks mismatch")
	}
	msg.Parts = make([][]int64, nparts)
	msg.Present = make([]bool, nparts)
	for i := 0; i < nparts; i++ {
		msg.Present[i] = rb.u8() != 0
		msg.Parts[i] = rb.part()
	}
	if err := rb.err(framePost); err != nil {
		return nil, err
	}
	return msg, nil
}

// decodeFinish decodes a FINISH frame body. The member index travels on the
// wire but retirement only counts readers, so it is validated and dropped.
func decodeFinish(body []byte) (comm string, ranks []int, gen int64, err error) {
	rb := rbuf{b: body}
	comm = rb.str()
	ranks = rb.ranks()
	rb.u32() // member index
	gen = rb.i64()
	if err := rb.err(frameFinish); err != nil {
		return "", nil, 0, err
	}
	return comm, ranks, gen, nil
}

// decodeRMAReq decodes an RMA_REQ frame body.
func decodeRMAReq(body []byte) (id uint64, req *mpi.RMAReq, err error) {
	rb := rbuf{b: body}
	id = rb.u64()
	req = &mpi.RMAReq{Win: rb.str(), Member: int(rb.u32()), Op: mpi.RMAOp(rb.u8()),
		Off: int(rb.i64()), N: int(rb.i64()), Data: rb.ints(), Code: mpi.OpCode(rb.u8())}
	req.Operand = rb.i64()
	req.Expect = rb.i64()
	req.Next = rb.i64()
	if err := rb.err(frameRMAReq); err != nil {
		return 0, nil, err
	}
	return id, req, nil
}

// decodeRMAResp decodes an RMA_RESP frame body; remoteErr carries the
// remote side's failure rendering when ok is false.
func decodeRMAResp(body []byte) (id uint64, resp *mpi.RMAResp, remoteErr string, ok bool, err error) {
	rb := rbuf{b: body}
	id = rb.u64()
	ok = rb.u8() != 0
	if ok {
		resp = &mpi.RMAResp{Data: rb.ints(), Old: rb.i64()}
	} else {
		remoteErr = rb.str()
	}
	if err := rb.err(frameRMAResp); err != nil {
		return 0, nil, "", false, err
	}
	return id, resp, remoteErr, ok, nil
}

// decodeAbort decodes an ABORT frame body.
func decodeAbort(body []byte) (from int, msg string, err error) {
	rb := rbuf{b: body}
	from = int(rb.u32())
	msg = rb.str()
	if err := rb.err(frameAbort); err != nil {
		return 0, "", err
	}
	return from, msg, nil
}

// encodePing builds a PING body: the sender's trace clock at send time.
func encodePing(t0 int64) []byte {
	var wb wbuf
	wb.i64(t0)
	return wb.b
}

// decodePing decodes a PING frame body.
func decodePing(body []byte) (t0 int64, err error) {
	rb := rbuf{b: body}
	t0 = rb.i64()
	if err := rb.err(framePing); err != nil {
		return 0, err
	}
	return t0, nil
}

// encodePong builds a PONG body: the probe's echoed timestamp plus the
// responder's own trace clock at reply time.
func encodePong(t0, tPeer int64) []byte {
	var wb wbuf
	wb.i64(t0)
	wb.i64(tPeer)
	return wb.b
}

// decodePong decodes a PONG frame body.
func decodePong(body []byte) (t0, tPeer int64, err error) {
	rb := rbuf{b: body}
	t0 = rb.i64()
	tPeer = rb.i64()
	if err := rb.err(framePong); err != nil {
		return 0, 0, err
	}
	return t0, tPeer, nil
}

// encodeObs builds an OBS body: the shipping rank plus its opaque
// internal/obs payload.
func encodeObs(from int, payload []byte) []byte {
	wb := wbuf{b: make([]byte, 0, 8+len(payload))}
	wb.u32(uint32(from))
	wb.bytes(payload)
	return wb.b
}

// decodeObs decodes an OBS frame body. The payload stays opaque here — the
// internal/obs decoder owns its format and is fuzz-hardened separately.
func decodeObs(body []byte) (from int, payload []byte, err error) {
	rb := rbuf{b: body}
	from = int(rb.u32())
	payload = rb.bytesField()
	if err := rb.err(frameObs); err != nil {
		return 0, nil, err
	}
	return from, payload, nil
}

// parseHello decodes a HELLO frame body: magic, version, rank, mesh
// listen address.
func parseHello(body []byte) (rank int, listenAddr string, err error) {
	rb := rbuf{b: body}
	if len(rb.b) < len(wireMagic) || string(rb.b[:len(wireMagic)]) != wireMagic {
		return 0, "", fmt.Errorf("tcpnet: bad magic in hello (foreign peer?)")
	}
	rb.off = len(wireMagic)
	if v := rb.u8(); v != wireVersion {
		return 0, "", fmt.Errorf("tcpnet: peer speaks wire version %d, this build speaks %d", v, wireVersion)
	}
	rank = int(rb.u32())
	listenAddr = rb.str()
	if err := rb.err(frameHello); err != nil {
		return 0, "", err
	}
	return rank, listenAddr, nil
}

// parseRoster decodes a ROSTER frame body: the world's mesh addresses plus
// the coordinator's opaque config blob.
func parseRoster(body []byte) (addrs []string, config []byte, err error) {
	rb := rbuf{b: body}
	size := int(rb.u32())
	if rb.bad || size <= 0 || size > 1<<20 {
		return nil, nil, fmt.Errorf("tcpnet: malformed roster size")
	}
	addrs = make([]string, size)
	for i := range addrs {
		addrs[i] = rb.str()
	}
	config = rb.bytesField()
	if err := rb.err(frameRoster); err != nil {
		return nil, nil, err
	}
	return addrs, config, nil
}

package mpi

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestWatchdogDeadlock: rank 1 calls one fewer Barrier than its peers, so
// ranks 0 and 2 wedge forever. The watchdog must abort the world with a
// DeadlockError naming the stuck op and exactly the lagging rank.
func TestWatchdogDeadlock(t *testing.T) {
	_, err := RunWith(RunConfig{WatchdogTimeout: 50 * time.Millisecond}, 3, func(c *Comm) error {
		c.Barrier()
		if c.Rank() == 1 {
			return nil // skips the second barrier: a classic SPMD bug
		}
		c.Barrier()
		return nil
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %T: %v", err, err)
	}
	if de.Op != "barrier" {
		t.Fatalf("stuck op should be barrier, got %q", de.Op)
	}
	if len(de.Missing) != 1 || de.Missing[0] != 1 {
		t.Fatalf("missing ranks should be [1], got %v", de.Missing)
	}
	if len(de.Posted) != 2 || de.Posted[0] != 0 || de.Posted[1] != 2 {
		t.Fatalf("posted ranks should be [0 2], got %v", de.Posted)
	}
}

// TestWatchdogNoFalsePositive: a healthy workload that keeps communicating
// (with compute gaps well under the deadline) must not trip the watchdog.
func TestWatchdogNoFalsePositive(t *testing.T) {
	_, err := RunWith(RunConfig{WatchdogTimeout: 2 * time.Second}, 4, func(c *Comm) error {
		row := c.Split(c.Rank()/2, c.Rank())
		for i := 0; i < 50; i++ {
			c.Allreduce(OpSum, int64(i))
			row.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", err)
	}
}

// TestRunCtxCancel: cancelling the context aborts the world and RunCtx
// returns the context error; the wedged ranks unwind.
func TestRunCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := RunCtx(ctx, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Long local compute; the barrier post rank 1 is waiting on
			// comes far later than the cancel.
			time.Sleep(200 * time.Millisecond)
			return nil
		}
		c.Barrier()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestNoGoroutineLeakOnRankError is the regression test for the historical
// leak: one rank errors out early while its peers block in the mailbox.
// Before the abort plane, those peers waited forever and every such Run
// leaked size-1 goroutines; now teardown must unblock them all.
func TestNoGoroutineLeakOnRankError(t *testing.T) {
	base := runtime.NumGoroutine()
	boom := errors.New("boom")
	for i := 0; i < 20; i++ {
		_, err := Run(4, func(c *Comm) error {
			if c.Rank() == 0 {
				return boom
			}
			for j := 0; j < 1000; j++ {
				c.Barrier()
				c.Allgatherv([]int64{int64(c.Rank())})
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("iteration %d: want boom, got %v", i, err)
		}
	}
	// Unwinding ranks finish a hair after Run returns only if they were
	// mid-panic; poll briefly rather than assuming instant teardown.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: started with %d, now %d", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchdogLeakFree: after a watchdog abort every rank goroutine exits,
// including the ones that were blocked inside the wedged collective.
func TestWatchdogLeakFree(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		_, err := RunWith(RunConfig{WatchdogTimeout: 30 * time.Millisecond}, 4, func(c *Comm) error {
			if c.Rank() == 2 {
				return nil
			}
			c.Barrier() // rank 2 never joins
			return nil
		})
		var de *DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("iteration %d: want DeadlockError, got %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: started with %d, now %d", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

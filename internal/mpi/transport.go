package mpi

import (
	"fmt"
	"sort"
	"sync"
)

// Transport is the fabric between the OS processes hosting a world's ranks.
//
// The mailbox model is the seam: every collective is a generation-stamped
// post(member, gen, parts, op) / collect pair, and a Transport only has to
// move three kinds of traffic between processes — posted parts addressed to
// remote members (Post), read-retirement notices that let lending senders
// recycle their buffers (FinishRead), and one-sided RMA operations executed
// on the process owning the target window (RMA). Everything above the seam
// (collectives, requests, metering, CommTimes, fault injection, the
// watchdog, span tracing) is backend-agnostic and runs identically on every
// Transport.
//
// A Transport instance is one process's endpoint of exactly one world: it
// hosts LocalRanks() of the WorldSize() ranks and is handed to RunTransport,
// which launches one goroutine per local rank. The in-process backend
// (Inproc) hosts every rank, so its fabric methods are never invoked and
// the historical chan/cond mailbox engine carries all traffic — that is what
// keeps it the bit-for-bit oracle. The tcpnet backend hosts one rank per
// process and ships the same messages over sockets.
//
// Fabric methods are called from rank goroutines (Post, FinishRead, RMA,
// Abort) and must be safe for concurrent use. Inbound traffic is delivered
// by the transport's own receiver goroutines through the World's Deliver*
// methods after Bind.
type Transport interface {
	// Name identifies the backend ("inproc", "tcp") in bench envelopes,
	// conformance tests and logs.
	Name() string

	// WorldSize returns the total number of ranks in the world.
	WorldSize() int

	// LocalRanks returns the world ranks hosted by this process, in
	// ascending order. Every rank of the world must be hosted by exactly
	// one endpoint.
	LocalRanks() []int

	// Bind attaches the endpoint to the world that will consume its inbound
	// traffic and starts delivery. Called exactly once, by RunTransport,
	// before any rank goroutine runs.
	Bind(w *World) error

	// Post ships the remote-addressed parts of one mailbox post to the
	// processes hosting them. The caller has already deposited the local
	// parts; implementations must deliver to each remote process exactly
	// one DeliverPost per (source, generation). Never called when every
	// member of the communicator is local.
	Post(msg *PostMsg) error

	// FinishRead announces that member m of the communicator has finished
	// reading generation gen, so remote processes can retire it once all
	// members have. ranks lists the communicator's members as world ranks,
	// in member order (the receiving process may not have materialized the
	// communicator yet).
	FinishRead(comm string, ranks []int, m int, gen int64) error

	// RMA executes one one-sided operation against the window registry of
	// the process hosting the given world rank, blocking for the reply.
	// Never called when the target rank is local.
	RMA(rank int, req *RMAReq) (*RMAResp, error)

	// Abort propagates a world abort to every other process. Best-effort:
	// a dead connection must not block the local abort.
	Abort(msg string)

	// Close tears down the endpoint. Implementations should drain politely
	// (peers may still need this process's window service for a moment)
	// but must return within a bounded time. The world is unusable after.
	Close() error
}

// PostMsg is one rank's mailbox contribution to one collective generation,
// as it crosses a process boundary.
type PostMsg struct {
	// Comm is the communicator id ("world", "world/split@3/c1", ...). Ids
	// are derived collectively, so every process computes the same id for
	// the same communicator.
	Comm string
	// Ranks lists the communicator's members as world ranks, in member
	// order. Carried on the wire so a process can materialize a
	// communicator it has not split yet.
	Ranks []int
	// Src is the posting member's index within Ranks.
	Src int
	// Gen is the collective-call generation on this communicator.
	Gen int64
	// Op labels the collective for watchdog diagnostics ("bcast", ...).
	Op string
	// Parts[i] is the payload addressed to member i; Present[i]
	// distinguishes an empty part from a nil one (both move zero words).
	Parts [][]int64
	// Present reports, per member, whether a part was posted at all.
	Present []bool
}

// RMAOp codes the one-sided operation an RMAReq carries.
type RMAOp uint8

// The one-sided operations of the Win API.
const (
	// RMAGet reads N elements at Off.
	RMAGet RMAOp = iota
	// RMAPut writes Data at Off.
	RMAPut
	// RMAFetchAndOp applies the coded ReduceOp with Operand at Off and
	// returns the prior value.
	RMAFetchAndOp
	// RMACompareAndSwap installs Next at Off if the element equals Expect,
	// returning the prior value.
	RMACompareAndSwap
)

// RMAReq is one one-sided operation crossing a process boundary, executed
// atomically by the process owning the target window slice.
type RMAReq struct {
	// Win is the collectively derived window id.
	Win string
	// Member is the target rank's index within the window's communicator.
	Member int
	// Op selects the operation.
	Op RMAOp
	// Off is the element offset into the target's window slice.
	Off int
	// N is the element count for RMAGet.
	N int
	// Data is the RMAPut payload.
	Data []int64
	// Code names the reduction for RMAFetchAndOp; custom (uncoded) ops
	// cannot cross a process boundary.
	Code OpCode
	// Operand, Expect and Next are the scalar arguments of RMAFetchAndOp
	// and RMACompareAndSwap.
	Operand, Expect, Next int64
}

// RMAResp is the reply to an RMAReq.
type RMAResp struct {
	// Data is the RMAGet result.
	Data []int64
	// Old is the prior value returned by RMAFetchAndOp / RMACompareAndSwap.
	Old int64
}

// TransportError wraps a fabric failure (socket error, codec mismatch, peer
// gone). A world whose transport fails aborts with one, so ranks unwind
// through the usual abort plane instead of hanging.
type TransportError struct {
	// Backend is the transport's Name.
	Backend string
	// Op is the fabric operation that failed ("post", "finish", "rma", ...).
	Op string
	// Err is the underlying cause.
	Err error
}

// Error formats the backend, operation and cause.
func (e *TransportError) Error() string {
	return fmt.Sprintf("mpi: transport %s: %s: %v", e.Backend, e.Op, e.Err)
}

// Unwrap returns the underlying cause for errors.Is / errors.As.
func (e *TransportError) Unwrap() error { return e.Err }

// RemoteAbortError is the abort cause observed by processes other than the
// one where a world died: the originating process keeps its own structured
// cause (the failing rank's error, a DeadlockError, ...), peers receive its
// rendering. errors.Is matching against the original sentinel is therefore
// only possible on the originating process — callers coordinating a
// multi-process retry must treat any RemoteAbortError as "some peer failed".
type RemoteAbortError struct {
	// From is the world rank whose endpoint propagated the abort (-1 when
	// the origin is unknown).
	From int
	// Msg is the originating process's rendering of the cause.
	Msg string
}

// Error formats the origin and the propagated cause.
func (e *RemoteAbortError) Error() string {
	return fmt.Sprintf("mpi: world aborted by remote rank %d: %s", e.From, e.Msg)
}

// TransportMaker builds every endpoint of a size-rank world on one backend,
// returned in no particular order. For the in-process backend that is a
// single endpoint hosting all ranks; for loopback TCP it is size endpoints
// wired over 127.0.0.1. The conformance suite runs the same SPMD program
// over every registered maker and pins results to the in-process oracle.
type TransportMaker func(size int) ([]Transport, error)

var (
	transportsMu sync.Mutex
	transports   = map[string]TransportMaker{}
)

// RegisterTransport registers a backend maker under a name. Backends
// register themselves in init (the tcpnet package registers "tcp"), so a
// blank import is enough to make a backend available to NewTransportSet.
func RegisterTransport(name string, maker TransportMaker) {
	transportsMu.Lock()
	defer transportsMu.Unlock()
	if _, dup := transports[name]; dup {
		panic(fmt.Sprintf("mpi: transport %q registered twice", name))
	}
	transports[name] = maker
}

// Transports returns the registered backend names, sorted.
func Transports() []string {
	transportsMu.Lock()
	defer transportsMu.Unlock()
	names := make([]string, 0, len(transports))
	for name := range transports {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewTransportSet builds every endpoint of a size-rank world on the named
// registered backend.
func NewTransportSet(name string, size int) ([]Transport, error) {
	transportsMu.Lock()
	maker, ok := transports[name]
	transportsMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("mpi: unknown transport %q (registered: %v)", name, Transports())
	}
	return maker(size)
}

// CloseAll closes a set of endpoints concurrently and returns the first
// error. Concurrency matters: a graceful Close drains until its peers say
// BYE, which the peer endpoints of a loopback set only do in their own Close
// — closing them sequentially would serialize full drain timeouts.
func CloseAll(eps []Transport) error {
	errs := make([]error, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep Transport) {
			defer wg.Done()
			errs[i] = ep.Close()
		}(i, ep)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

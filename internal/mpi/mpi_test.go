package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestRunBasics(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	w, err := Run(4, func(c *Comm) error {
		if c.Size() != 4 {
			return fmt.Errorf("size %d", c.Size())
		}
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 4 || len(seen) != 4 {
		t.Fatalf("world size %d, ranks seen %d", w.Size(), len(seen))
	}
}

func TestRunPropagatesError(t *testing.T) {
	want := errors.New("rank failure")
	_, err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if _, err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestBarrierManyRounds(t *testing.T) {
	const p, rounds = 5, 50
	counter := make([]int, rounds)
	var mu sync.Mutex
	_, err := Run(p, func(c *Comm) error {
		for r := 0; r < rounds; r++ {
			mu.Lock()
			counter[r]++
			mine := counter[r]
			mu.Unlock()
			if mine > p {
				return fmt.Errorf("round %d overshot", r)
			}
			c.Barrier()
			mu.Lock()
			done := counter[r]
			mu.Unlock()
			if done != p {
				return fmt.Errorf("round %d: %d/%d ranks after barrier", r, done, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(6, func(c *Comm) error {
		var data []int64
		if c.Rank() == 2 {
			data = []int64{10, 20, 30}
		}
		got := c.Bcast(2, data)
		if !reflect.DeepEqual(got, []int64{10, 20, 30}) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		// Mutating the received copy must not affect other ranks.
		if c.Rank() != 2 {
			got[0] = -1
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherv(t *testing.T) {
	_, err := Run(4, func(c *Comm) error {
		mine := make([]int64, c.Rank()+1) // ragged sizes
		for i := range mine {
			mine[i] = int64(c.Rank()*100 + i)
		}
		got := c.Allgatherv(mine)
		if len(got) != 4 {
			return fmt.Errorf("got %d slices", len(got))
		}
		for s := 0; s < 4; s++ {
			if len(got[s]) != s+1 {
				return fmt.Errorf("slice %d has len %d", s, len(got[s]))
			}
			for i, v := range got[s] {
				if v != int64(s*100+i) {
					return fmt.Errorf("got[%d][%d] = %d", s, i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	const p = 5
	_, err := Run(p, func(c *Comm) error {
		parts := make([][]int64, p)
		for d := 0; d < p; d++ {
			// send d copies of rank*10+d to rank d
			for k := 0; k < d; k++ {
				parts[d] = append(parts[d], int64(c.Rank()*10+d))
			}
		}
		got := c.Alltoallv(parts)
		for s := 0; s < p; s++ {
			if len(got[s]) != c.Rank() {
				return fmt.Errorf("from %d: len %d, want %d", s, len(got[s]), c.Rank())
			}
			for _, v := range got[s] {
				if v != int64(s*10+c.Rank()) {
					return fmt.Errorf("from %d: value %d", s, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGathervScatterv(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) error {
		got := c.Gatherv(0, []int64{int64(c.Rank() * 7)})
		if c.Rank() == 0 {
			for s := 0; s < p; s++ {
				if got[s][0] != int64(s*7) {
					return fmt.Errorf("gather from %d: %v", s, got[s])
				}
			}
		} else if got != nil {
			return fmt.Errorf("non-root received %v", got)
		}

		var parts [][]int64
		if c.Rank() == 0 {
			parts = make([][]int64, p)
			for d := 0; d < p; d++ {
				parts[d] = []int64{int64(d * 11)}
			}
		}
		mine := c.Scatterv(0, parts)
		if len(mine) != 1 || mine[0] != int64(c.Rank()*11) {
			return fmt.Errorf("scatter got %v", mine)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceOps(t *testing.T) {
	const p = 7
	_, err := Run(p, func(c *Comm) error {
		r := int64(c.Rank())
		if got := c.Allreduce(OpSum, r); got != 21 {
			return fmt.Errorf("sum = %d", got)
		}
		if got := c.Allreduce(OpMax, r); got != 6 {
			return fmt.Errorf("max = %d", got)
		}
		if got := c.Allreduce(OpMin, r); got != 0 {
			return fmt.Errorf("min = %d", got)
		}
		var flag int64
		if c.Rank() == 3 {
			flag = 1
		}
		if got := c.Allreduce(OpLor, flag); got != 1 {
			return fmt.Errorf("lor = %d", got)
		}
		if got := c.Allreduce(OpLor, 0); got != 0 {
			return fmt.Errorf("lor all-zero = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitGrid(t *testing.T) {
	// 6 ranks -> 2x3 grid: row comm = ranks with same rank/3, col comm = same rank%3.
	_, err := Run(6, func(c *Comm) error {
		row := c.Split(c.Rank()/3, c.Rank()%3)
		col := c.Split(c.Rank()%3, c.Rank()/3)
		if row.Size() != 3 || col.Size() != 2 {
			return fmt.Errorf("row %d col %d", row.Size(), col.Size())
		}
		if row.Rank() != c.Rank()%3 || col.Rank() != c.Rank()/3 {
			return fmt.Errorf("rank %d: row rank %d col rank %d", c.Rank(), row.Rank(), col.Rank())
		}
		// Collectives on sub-communicators stay within the subgroup.
		sum := row.Allreduce(OpSum, int64(c.Rank()))
		wantRow := int64(0 + 1 + 2)
		if c.Rank() >= 3 {
			wantRow = 3 + 4 + 5
		}
		if sum != wantRow {
			return fmt.Errorf("rank %d row sum %d want %d", c.Rank(), sum, wantRow)
		}
		csum := col.Allreduce(OpSum, int64(c.Rank()))
		if want := int64(c.Rank()%3 + c.Rank()%3 + 3); csum != want {
			return fmt.Errorf("rank %d col sum %d want %d", c.Rank(), csum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitNegativeColor(t *testing.T) {
	_, err := Run(4, func(c *Comm) error {
		color := c.Rank() % 2
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				return errors.New("negative color got a communicator")
			}
			return nil
		}
		want := 2
		if color == 1 {
			want = 1
		}
		if sub.Size() != want {
			return fmt.Errorf("rank %d sub size %d want %d", c.Rank(), sub.Size(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAGetPut(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) error {
		local := make([]int64, 8)
		for i := range local {
			local[i] = int64(c.Rank()*1000 + i)
		}
		win := WinCreate(c, local)
		// Everyone reads rank (r+1)%p's element 3.
		peer := (c.Rank() + 1) % p
		if got := win.Get1(peer, 3); got != int64(peer*1000+3) {
			return fmt.Errorf("Get1 = %d", got)
		}
		// Everyone writes into peer's slot equal to its own rank index.
		win.Put1(peer, c.Rank(), int64(-c.Rank()))
		win.Fence()
		// local[r'] was written by the rank whose (rank+1)%p == me, i.e. me-1.
		writer := (c.Rank() + p - 1) % p
		if local[writer] != int64(-writer) {
			return fmt.Errorf("rank %d: local[%d] = %d, want %d", c.Rank(), writer, local[writer], -writer)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAFetchAndOpAtomicity(t *testing.T) {
	const p, iters = 8, 200
	w, err := Run(p, func(c *Comm) error {
		var local []int64
		if c.Rank() == 0 {
			local = make([]int64, 1)
		}
		win := WinCreate(c, local)
		for i := 0; i < iters; i++ {
			win.FetchAndOp(0, 0, OpSum, 1)
		}
		win.Fence()
		if c.Rank() == 0 && local[0] != p*iters {
			return fmt.Errorf("counter = %d, want %d", local[0], p*iters)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = w
}

func TestRMACompareAndSwap(t *testing.T) {
	const p = 6
	winners := make([]int64, 0, p)
	var mu sync.Mutex
	_, err := Run(p, func(c *Comm) error {
		var local []int64
		if c.Rank() == 0 {
			local = []int64{-1}
		}
		win := WinCreate(c, local)
		old := win.CompareAndSwap(0, 0, -1, int64(c.Rank()))
		if old == -1 {
			mu.Lock()
			winners = append(winners, int64(c.Rank()))
			mu.Unlock()
		}
		win.Fence()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 1 {
		t.Fatalf("%d ranks won the CAS, want exactly 1", len(winners))
	}
}

func TestRMAReplace(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		local := []int64{int64(c.Rank() + 40)}
		win := WinCreate(c, local)
		if c.Rank() == 0 {
			old := win.FetchAndOp(1, 0, OpReplace, 99)
			if old != 41 {
				return fmt.Errorf("old = %d", old)
			}
		}
		win.Fence()
		if c.Rank() == 1 && local[0] != 99 {
			return fmt.Errorf("replace missed: %d", local[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMetersAlltoallv(t *testing.T) {
	const p = 4
	w, err := Run(p, func(c *Comm) error {
		parts := make([][]int64, p)
		for d := 0; d < p; d++ {
			parts[d] = make([]int64, 10)
		}
		c.Alltoallv(parts)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		m := w.RankMeter(r)
		if m.Msgs != p-1 {
			t.Errorf("rank %d msgs = %d, want %d", r, m.Msgs, p-1)
		}
		if m.Words != 30 { // 10 words to each of 3 others
			t.Errorf("rank %d words = %d, want 30", r, m.Words)
		}
	}
}

func TestMetersRMALocalFree(t *testing.T) {
	w, err := Run(2, func(c *Comm) error {
		local := make([]int64, 4)
		win := WinCreate(c, local)
		win.Get(c.Rank(), 0, 4) // local: free
		win.Put1(c.Rank(), 0, 5)
		win.Fence()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if m := w.RankMeter(r); m.Msgs != 0 || m.Words != 0 {
			t.Errorf("rank %d meter %+v, want zero for local RMA", r, m)
		}
	}
}

func TestMeterWork(t *testing.T) {
	w, err := Run(3, func(c *Comm) error {
		c.AddWork(10 * (c.Rank() + 1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.MaxMeter().Work; got != 30 {
		t.Errorf("max work = %d, want 30", got)
	}
	if got := w.TotalMeter().Work; got != 60 {
		t.Errorf("total work = %d, want 60", got)
	}
}

func TestMeterArithmetic(t *testing.T) {
	a := Meter{Msgs: 1, Words: 10, Work: 100, WordsEnc: 4}
	b := Meter{Msgs: 2, Words: 5, Work: 200, WordsEnc: 3}
	if got := a.Add(b); got != (Meter{3, 15, 300, 7}) {
		t.Errorf("Add = %+v", got)
	}
	if got := b.Sub(a); got != (Meter{1, -5, 100, -1}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Max(b); got != (Meter{2, 10, 200, 4}) {
		t.Errorf("Max = %+v", got)
	}
}

func TestLogTreeDepth(t *testing.T) {
	cases := map[int]int64{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for p, want := range cases {
		if got := logTreeDepth(p); got != want {
			t.Errorf("logTreeDepth(%d) = %d, want %d", p, got, want)
		}
	}
}

// TestCollectiveStress interleaves many collective types across many ranks to
// shake out rendezvous bugs.
func TestCollectiveStress(t *testing.T) {
	const p = 9
	_, err := Run(p, func(c *Comm) error {
		rng := rand.New(rand.NewSource(int64(17))) // same sequence everywhere
		for round := 0; round < 40; round++ {
			switch rng.Intn(4) {
			case 0:
				c.Barrier()
			case 1:
				sum := c.Allreduce(OpSum, 1)
				if sum != p {
					return fmt.Errorf("round %d: sum %d", round, sum)
				}
			case 2:
				got := c.Allgatherv([]int64{int64(c.Rank())})
				for s := range got {
					if got[s][0] != int64(s) {
						return fmt.Errorf("round %d: allgather %v", round, got)
					}
				}
			case 3:
				parts := make([][]int64, p)
				for d := range parts {
					parts[d] = []int64{int64(c.Rank()*p + d)}
				}
				got := c.Alltoallv(parts)
				for s := range got {
					if got[s][0] != int64(s*p+c.Rank()) {
						return fmt.Errorf("round %d: alltoall %v", round, got)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAlltoallv16(b *testing.B) {
	_, err := Run(16, func(c *Comm) error {
		parts := make([][]int64, 16)
		for d := range parts {
			parts[d] = make([]int64, 64)
		}
		c.Barrier()
		for i := 0; i < b.N; i++ {
			c.Alltoallv(parts)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRMAFetchAndOp(b *testing.B) {
	_, err := Run(4, func(c *Comm) error {
		local := make([]int64, 1)
		win := WinCreate(c, local)
		for i := 0; i < b.N; i++ {
			win.FetchAndOp((c.Rank()+1)%4, 0, OpSum, 1)
		}
		win.Fence()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

package mpi

import (
	"fmt"
	"testing"
)

// TestMultipleWindowsConcurrent: several windows created back-to-back must
// stay independent.
func TestMultipleWindowsConcurrent(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) error {
		a := make([]int64, 2)
		b := make([]int64, 2)
		wa := WinCreate(c, a)
		wb := WinCreate(c, b)
		peer := (c.Rank() + 1) % p
		wa.Put1(peer, 0, int64(100+c.Rank()))
		wb.Put1(peer, 0, int64(200+c.Rank()))
		wa.Fence()
		wb.Fence()
		writer := int64((c.Rank() + p - 1) % p)
		if a[0] != 100+writer {
			return fmt.Errorf("window a got %d", a[0])
		}
		if b[0] != 200+writer {
			return fmt.Errorf("window b got %d", b[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitOfSplit: sub-communicators can be split again.
func TestSplitOfSplit(t *testing.T) {
	const p = 8
	_, err := Run(p, func(c *Comm) error {
		half := c.Split(c.Rank()/4, c.Rank()%4) // two groups of 4
		quarter := half.Split(half.Rank()/2, half.Rank()%2)
		if quarter.Size() != 2 {
			return fmt.Errorf("quarter size %d", quarter.Size())
		}
		// Sum of world ranks within each final pair.
		sum := quarter.Allreduce(OpSum, int64(c.Rank()))
		base := (c.Rank() / 2) * 2
		if want := int64(base + base + 1); sum != want {
			return fmt.Errorf("rank %d: pair sum %d, want %d", c.Rank(), sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedSplitsDistinct: calling Split twice yields independent
// communicators with independent collective streams.
func TestRepeatedSplitsDistinct(t *testing.T) {
	_, err := Run(4, func(c *Comm) error {
		s1 := c.Split(c.Rank()%2, 0)
		s2 := c.Split(c.Rank()%2, 0)
		v1 := s1.Allreduce(OpSum, 1)
		v2 := s2.Allreduce(OpSum, 2)
		if v1 != 2 || v2 != 4 {
			return fmt.Errorf("sums %d %d", v1, v2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvWrongPartsPanics(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			panicked := func() (p bool) {
				defer func() { p = recover() != nil }()
				c.Alltoallv([][]int64{nil}) // wrong parts length
				return false
			}()
			if !panicked {
				return fmt.Errorf("wrong parts length accepted")
			}
		}
		// Both ranks complete one well-formed exchange (rank 0's panic fired
		// before it joined the rendezvous, so the streams still match).
		c.Alltoallv([][]int64{nil, nil})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastLargePayload(t *testing.T) {
	const n = 1 << 16
	_, err := Run(3, func(c *Comm) error {
		var data []int64
		if c.Rank() == 1 {
			data = make([]int64, n)
			for i := range data {
				data[i] = int64(i)
			}
		}
		got := c.Bcast(1, data)
		if len(got) != n || got[n-1] != n-1 {
			return fmt.Errorf("bcast lost data: len %d", len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGathervEmptyContributions: zero-length contributions are legal.
func TestGathervEmptyContributions(t *testing.T) {
	_, err := Run(3, func(c *Comm) error {
		var mine []int64
		if c.Rank() == 1 {
			mine = []int64{42}
		}
		got := c.Gatherv(2, mine)
		if c.Rank() == 2 {
			if len(got[0]) != 0 || len(got[1]) != 1 || got[1][0] != 42 || len(got[2]) != 0 {
				return fmt.Errorf("gather: %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorldAccessors covers the remaining World/Comm accessors.
func TestWorldAccessors(t *testing.T) {
	w, err := Run(2, func(c *Comm) error {
		if c.World() == nil {
			return fmt.Errorf("nil world")
		}
		if c.WorldRank() != c.Rank() {
			return fmt.Errorf("world rank mismatch on the world comm")
		}
		sub := c.Split(0, -c.Rank()) // reversed key order
		if sub.WorldRank() != c.Rank() {
			return fmt.Errorf("WorldRank changed by split")
		}
		if sub.Rank() != 1-c.Rank() {
			return fmt.Errorf("split key ordering ignored: rank %d -> %d", c.Rank(), sub.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 2 {
		t.Fatal("world size wrong")
	}
}

// TestRMAGetRange: multi-element Get/Put.
func TestRMAGetRange(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		local := []int64{int64(c.Rank()) * 10, int64(c.Rank())*10 + 1, int64(c.Rank())*10 + 2}
		win := WinCreate(c, local)
		peer := 1 - c.Rank()
		got := win.Get(peer, 1, 2)
		want0, want1 := int64(peer)*10+1, int64(peer)*10+2
		if got[0] != want0 || got[1] != want1 {
			return fmt.Errorf("Get range = %v", got)
		}
		win.Put(peer, 0, []int64{-1, -2})
		win.Fence()
		if local[0] != -1 || local[1] != -2 || local[2] != int64(c.Rank())*10+2 {
			return fmt.Errorf("Put range result %v", local)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestKindMetersAttribute: each collective family accumulates under its own
// kind, and kinds sum to the total.
func TestKindMetersAttribute(t *testing.T) {
	const p = 4
	w, err := Run(p, func(c *Comm) error {
		c.Allgatherv(make([]int64, 8))
		parts := make([][]int64, p)
		for d := range parts {
			parts[d] = make([]int64, 4)
		}
		c.Alltoallv(parts)
		c.Allreduce(OpSum, 1)
		c.Bcast(0, []int64{1, 2})
		c.Gatherv(0, []int64{int64(c.Rank())})
		var sc [][]int64
		if c.Rank() == 0 {
			sc = make([][]int64, p)
			for d := range sc {
				sc[d] = []int64{9}
			}
		}
		c.Scatterv(0, sc)
		win := WinCreate(c, make([]int64, 2))
		win.Put1((c.Rank()+1)%p, 0, 5)
		win.Fence()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		total := w.RankMeter(r)
		var sumMsgs, sumWords int64
		for k := CommKind(0); k < numKinds; k++ {
			km := w.RankKindMeter(r, k)
			sumMsgs += km.Msgs
			sumWords += km.Words
		}
		if sumMsgs != total.Msgs || sumWords != total.Words {
			t.Fatalf("rank %d: kinds sum (%d,%d) != total (%d,%d)",
				r, sumMsgs, sumWords, total.Msgs, total.Words)
		}
		for _, k := range []CommKind{KindAllgather, KindAlltoall, KindReduce, KindBcast, KindRMA} {
			if w.RankKindMeter(r, k).Msgs == 0 {
				t.Errorf("rank %d: kind %v recorded nothing", r, k)
			}
		}
	}
}

func TestCommKindString(t *testing.T) {
	names := map[CommKind]string{
		KindAllgather: "allgather", KindAlltoall: "alltoall", KindGather: "gather",
		KindScatter: "scatter", KindBcast: "bcast", KindReduce: "reduce", KindRMA: "rma",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if CommKind(99).String() != "CommKind(99)" {
		t.Error("unknown kind string wrong")
	}
}

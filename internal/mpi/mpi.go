// Package mpi is an in-process, deterministic stand-in for the MPI runtime
// the paper's implementation relies on (Cray MPICH2 on the Edison Cray XC30).
// Go has no MPI ecosystem, so each MPI process ("rank") is simulated by a
// goroutine; ranks interact only through this package's communicator API, so
// algorithm code written against it has the same structure as true
// distributed-memory SPMD code.
//
// The package provides:
//
//   - SPMD launch (Run), communicators, and sub-communicator Split, used for
//     the 2D process grid's row and column communicators;
//   - the bulk-synchronous collectives CombBLAS uses: Barrier, Bcast,
//     Allgatherv, Alltoallv, Gatherv, Scatterv, Allreduce;
//   - one-sided RMA windows with Get, Put and FetchAndOp, matching the
//     MPI_GET / MPI_PUT / MPI_FETCH_AND_OP calls of the paper's path-parallel
//     augmentation (Algorithm 4);
//   - per-rank communication meters (messages, words, local work) from which
//     the α-β cost model of the paper's Section IV-B is evaluated.
//
// Payloads are []int64 throughout: every object the matching algorithms
// communicate (indices, mates, parents, roots) is an integer, and a flat
// integer payload makes the word-count metering exact.
//
// Metering conventions (per rank, documented so the cost model is auditable):
//
//   - Alltoallv: p-1 messages; words = total sent to other ranks.
//   - Allgatherv (ring algorithm, as in the paper): p-1 messages; words =
//     total received from other ranks.
//   - Gatherv/Scatterv: root counts p-1 messages and the full volume moved;
//     leaves count 1 message and their own contribution.
//   - Bcast/Allreduce (binomial tree): ceil(log2 p) messages and one payload
//     copy per tree level; a zero-length Bcast meters nothing.
//   - RMA Get/Put/FetchAndOp: 1 message per call plus the words moved;
//     operations on the caller's own window are local and cost nothing.
//
// Each copying collective has a buffer-lending variant for hot paths
// (AllgathervInto, AlltoallvInto, AlltoallvFlat): the caller lends a
// destination buffer (typically from an rt arena), received payloads are
// appended into it, and nothing in the result aliases any rank's send
// buffer — so both the lent buffer and the send parts can be recycled the
// moment the call returns. The metering of each variant is identical to its
// copying counterpart; the copying API remains the reference for tests.
package mpi

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// CommKind labels the collective family a transfer belongs to, for the
// per-kind telemetry that attributes algorithm phases to communication
// patterns (e.g. INVERT to personalized all-to-all, PRUNE to allgather).
type CommKind int

// The collective families.
const (
	KindAllgather CommKind = iota
	KindAlltoall
	KindGather
	KindScatter
	KindBcast
	KindReduce
	KindRMA
	numKinds
)

// String names the kind.
func (k CommKind) String() string {
	switch k {
	case KindAllgather:
		return "allgather"
	case KindAlltoall:
		return "alltoall"
	case KindGather:
		return "gather"
	case KindScatter:
		return "scatter"
	case KindBcast:
		return "bcast"
	case KindReduce:
		return "reduce"
	case KindRMA:
		return "rma"
	default:
		return fmt.Sprintf("CommKind(%d)", int(k))
	}
}

// Meter accumulates per-rank communication and computation counts.
type Meter struct {
	Msgs  int64 // messages sent or received (latency units, α)
	Words int64 // 8-byte words moved (bandwidth units, β)
	Work  int64 // local operations recorded via AddWork (compute units, F)
}

// Add returns the element-wise sum of two meters.
func (m Meter) Add(o Meter) Meter {
	return Meter{Msgs: m.Msgs + o.Msgs, Words: m.Words + o.Words, Work: m.Work + o.Work}
}

// Sub returns the element-wise difference m - o.
func (m Meter) Sub(o Meter) Meter {
	return Meter{Msgs: m.Msgs - o.Msgs, Words: m.Words - o.Words, Work: m.Work - o.Work}
}

// Max returns the element-wise maximum of two meters.
func (m Meter) Max(o Meter) Meter {
	out := m
	if o.Msgs > out.Msgs {
		out.Msgs = o.Msgs
	}
	if o.Words > out.Words {
		out.Words = o.Words
	}
	if o.Work > out.Work {
		out.Work = o.Work
	}
	return out
}

// World is one SPMD execution: a set of ranks and their shared runtime state.
type World struct {
	size   int
	meters []meterCell

	mu     sync.Mutex
	splits map[string]*commState
	wins   map[string]*winState
}

type meterCell struct {
	msgs, words, work atomic.Int64
	kinds             [numKinds]kindCell
}

type kindCell struct {
	msgs, words atomic.Int64
}

// commState is the shared half of a communicator: the collective rendezvous
// for one group of ranks. Each participating rank holds a *Comm handle that
// pairs this state with its member index.
type commState struct {
	id      string
	world   *World
	ranks   []int // world ranks of the members, in member order
	mu      sync.Mutex
	cond    *sync.Cond
	gen     int64 // generation currently collecting contributions
	arrived int
	inbox   [][]any           // inbox[src member][dst member]
	results map[int64][][]any // completed gen -> outbox[dst member][src member]
	taken   map[int64]int
}

func newCommState(w *World, id string, ranks []int) *commState {
	st := &commState{
		id:      id,
		world:   w,
		ranks:   ranks,
		inbox:   make([][]any, len(ranks)),
		results: make(map[int64][][]any),
		taken:   make(map[int64]int),
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	st        *commState
	member    int   // index within st.ranks
	worldRank int   // rank in the world
	nextGen   int64 // this rank's collective-call counter on this comm
}

// Run launches fn on size ranks and waits for all of them. It returns the
// world (for meter inspection) and the first error any rank returned.
func Run(size int, fn func(c *Comm) error) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: size %d must be positive", size)
	}
	w := &World{
		size:   size,
		meters: make([]meterCell, size),
		splits: make(map[string]*commState),
		wins:   make(map[string]*winState),
	}
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = i
	}
	st := newCommState(w, "world", ranks)

	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(&Comm{st: st, member: r, worldRank: r})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return w, err
		}
	}
	return w, nil
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.member }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.st.ranks) }

// WorldRank returns this rank's index in the world communicator.
func (c *Comm) WorldRank() int { return c.worldRank }

// World returns the world this communicator belongs to.
func (c *Comm) World() *World { return c.st.world }

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// AddWork records n units of local computation for the cost model.
func (c *Comm) AddWork(n int) {
	c.st.world.meters[c.worldRank].work.Add(int64(n))
}

func (c *Comm) addComm(kind CommKind, msgs, words int64) {
	cell := &c.st.world.meters[c.worldRank]
	cell.msgs.Add(msgs)
	cell.words.Add(words)
	cell.kinds[kind].msgs.Add(msgs)
	cell.kinds[kind].words.Add(words)
}

// MeterSnapshot returns this rank's cumulative meter.
func (c *Comm) MeterSnapshot() Meter {
	cell := &c.st.world.meters[c.worldRank]
	return Meter{Msgs: cell.msgs.Load(), Words: cell.words.Load(), Work: cell.work.Load()}
}

// KindMeter returns this rank's cumulative meter for one collective family
// (Work is always zero: local work has no kind).
func (c *Comm) KindMeter(kind CommKind) Meter {
	cell := &c.st.world.meters[c.worldRank]
	return Meter{Msgs: cell.kinds[kind].msgs.Load(), Words: cell.kinds[kind].words.Load()}
}

// RankKindMeter returns the given world rank's meter for one collective
// family.
func (w *World) RankKindMeter(rank int, kind CommKind) Meter {
	cell := &w.meters[rank]
	return Meter{Msgs: cell.kinds[kind].msgs.Load(), Words: cell.kinds[kind].words.Load()}
}

// RankMeter returns the cumulative meter of the given world rank.
func (w *World) RankMeter(rank int) Meter {
	cell := &w.meters[rank]
	return Meter{Msgs: cell.msgs.Load(), Words: cell.words.Load(), Work: cell.work.Load()}
}

// MaxMeter returns the element-wise maximum meter over all ranks, an
// approximation of the critical-path cost for load-balanced SPMD phases.
func (w *World) MaxMeter() Meter {
	var m Meter
	for r := 0; r < w.size; r++ {
		m = m.Max(w.RankMeter(r))
	}
	return m
}

// TotalMeter returns the element-wise sum of all rank meters.
func (w *World) TotalMeter() Meter {
	var m Meter
	for r := 0; r < w.size; r++ {
		m = m.Add(w.RankMeter(r))
	}
	return m
}

// exchange is the collective rendezvous underlying every collective: member
// r contributes parts (one entry per destination member) and receives one
// entry per source member. All members of the communicator must call
// collectives in the same order (standard MPI semantics); the generation
// counter enforces matching.
func (c *Comm) exchange(parts []any) []any {
	st := c.st
	size := len(st.ranks)
	if len(parts) != size {
		panic(fmt.Sprintf("mpi: exchange with %d parts on a %d-rank comm", len(parts), size))
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	gen := c.nextGen
	c.nextGen++
	for st.gen != gen {
		st.cond.Wait()
	}
	st.inbox[c.member] = parts
	st.arrived++
	if st.arrived == size {
		out := make([][]any, size)
		for d := 0; d < size; d++ {
			out[d] = make([]any, size)
			for s := 0; s < size; s++ {
				out[d][s] = st.inbox[s][d]
			}
		}
		for s := range st.inbox {
			st.inbox[s] = nil
		}
		st.results[gen] = out
		st.arrived = 0
		st.gen++
		st.cond.Broadcast()
	} else {
		for st.results[gen] == nil {
			st.cond.Wait()
		}
	}
	res := st.results[gen][c.member]
	st.taken[gen]++
	if st.taken[gen] == size {
		delete(st.results, gen)
		delete(st.taken, gen)
	}
	return res
}

func logTreeDepth(p int) int64 {
	if p <= 1 {
		return 0
	}
	return int64(bits.Len(uint(p - 1)))
}

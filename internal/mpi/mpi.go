// Package mpi is an in-process, deterministic stand-in for the MPI runtime
// the paper's implementation relies on (Cray MPICH2 on the Edison Cray XC30).
// Go has no MPI ecosystem, so each MPI process ("rank") is simulated by a
// goroutine; ranks interact only through this package's communicator API, so
// algorithm code written against it has the same structure as true
// distributed-memory SPMD code.
//
// The package provides:
//
//   - SPMD launch (Run), communicators, and sub-communicator Split, used for
//     the 2D process grid's row and column communicators;
//   - the bulk-synchronous collectives CombBLAS uses: Barrier, Bcast,
//     Allgatherv, Alltoallv, Gatherv, Scatterv, Allreduce;
//   - split-phase (nonblocking) collectives — IBcast, IAllgatherv,
//     IAlltoallv, IAllreduce and the buffer-lending/progressive variants —
//     returning Request handles with Wait/Test, so callers can overlap
//     local computation with communication (MPI_Iallgatherv & co.);
//   - one-sided RMA windows with Get, Put and FetchAndOp, matching the
//     MPI_GET / MPI_PUT / MPI_FETCH_AND_OP calls of the paper's path-parallel
//     augmentation (Algorithm 4);
//   - per-rank communication meters (messages, words, local work) from which
//     the α-β cost model of the paper's Section IV-B is evaluated, plus a
//     communication-time ledger (CommTimes) splitting comm wall time into
//     exposed and hidden parts.
//
// Collectives ride a non-rendezvous mailbox: posting a contribution never
// blocks, so a rank can start a collective, keep computing, and only pay
// the synchronization when it Waits. The blocking collectives are expressed
// as start(); Wait() on the same engine and keep their exact historical
// semantics and metering.
//
// Payloads are []int64 throughout: every object the matching algorithms
// communicate (indices, mates, parents, roots) is an integer, and a flat
// integer payload makes the word-count metering exact.
//
// Metering conventions (per rank, documented so the cost model is auditable):
//
//   - Alltoallv: p-1 messages; words = total sent to other ranks.
//   - Allgatherv (ring algorithm, as in the paper): p-1 messages; words =
//     total received from other ranks.
//   - Gatherv/Scatterv: root counts p-1 messages and the full volume moved;
//     leaves count 1 message and their own contribution.
//   - Bcast/Allreduce (binomial tree): ceil(log2 p) messages and one payload
//     copy per tree level; a zero-length Bcast meters nothing.
//   - RMA Get/Put/FetchAndOp: 1 message per call plus the words moved;
//     operations on the caller's own window are local and cost nothing.
//
// A split-phase collective meters exactly once, at completion (the first
// Wait or successful Test), with the same counts as its blocking
// counterpart — the request layer never double-counts.
//
// When the world runs with wire compression (RunConfig.Compress), every
// metering site additionally records Meter.WordsEnc: the delta-varint
// encoded size (internal/wire, rounded up to 8-byte words) of the same
// payloads Words counts raw. The encoded size is computed here at the
// collective layer — the codec is deterministic, so sender and receiver
// agree and the count is bit-identical on every backend, whether or not the
// backend's fabric actually encodes (tcpnet does, inproc moves pointers).
// Payloads that cross the wire unencoded — scalar reduction trees, RMA
// frames — count their raw size. With compression off WordsEnc stays zero.
//
// Each copying collective has a buffer-lending variant for hot paths
// (AllgathervInto, AlltoallvInto, AlltoallvFlat): the caller lends a
// destination buffer (typically from an rt arena), received payloads are
// appended into it, and nothing in the result aliases any rank's send
// buffer — so both the lent buffer and the send parts can be recycled the
// moment the call returns. The metering of each variant is identical to its
// copying counterpart; the copying API remains the reference for tests.
package mpi

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"mcmdist/internal/obs"
	"mcmdist/internal/wire"
)

// CommKind labels the collective family a transfer belongs to, for the
// per-kind telemetry that attributes algorithm phases to communication
// patterns (e.g. INVERT to personalized all-to-all, PRUNE to allgather).
type CommKind int

// The collective families.
const (
	KindAllgather CommKind = iota
	KindAlltoall
	KindGather
	KindScatter
	KindBcast
	KindReduce
	KindRMA
	numKinds
)

// String names the kind.
func (k CommKind) String() string {
	switch k {
	case KindAllgather:
		return "allgather"
	case KindAlltoall:
		return "alltoall"
	case KindGather:
		return "gather"
	case KindScatter:
		return "scatter"
	case KindBcast:
		return "bcast"
	case KindReduce:
		return "reduce"
	case KindRMA:
		return "rma"
	default:
		return fmt.Sprintf("CommKind(%d)", int(k))
	}
}

// Meter accumulates per-rank communication and computation counts.
type Meter struct {
	Msgs  int64 // messages sent or received (latency units, α)
	Words int64 // 8-byte words moved (bandwidth units, β)
	Work  int64 // local operations recorded via AddWork (compute units, F)
	// WordsEnc is the wire-compressed counterpart of Words: the delta-varint
	// encoded volume in 8-byte words when the world runs with compression
	// (see the package metering conventions). Zero when compression is off.
	WordsEnc int64
}

// Add returns the element-wise sum of two meters.
func (m Meter) Add(o Meter) Meter {
	return Meter{Msgs: m.Msgs + o.Msgs, Words: m.Words + o.Words,
		Work: m.Work + o.Work, WordsEnc: m.WordsEnc + o.WordsEnc}
}

// Sub returns the element-wise difference m - o.
func (m Meter) Sub(o Meter) Meter {
	return Meter{Msgs: m.Msgs - o.Msgs, Words: m.Words - o.Words,
		Work: m.Work - o.Work, WordsEnc: m.WordsEnc - o.WordsEnc}
}

// Max returns the element-wise maximum of two meters.
func (m Meter) Max(o Meter) Meter {
	out := m
	if o.Msgs > out.Msgs {
		out.Msgs = o.Msgs
	}
	if o.Words > out.Words {
		out.Words = o.Words
	}
	if o.Work > out.Work {
		out.Work = o.Work
	}
	if o.WordsEnc > out.WordsEnc {
		out.WordsEnc = o.WordsEnc
	}
	return out
}

// CommTimes is the split-phase communication-time ledger of one rank.
// Total is the wall time requests spent in flight (start to completion,
// summed over requests; concurrent requests overlap-count by design) and
// Exposed is the part of that the rank actually spent blocked inside
// Wait/Test/Next/Finish. Total - Exposed is the latency hidden behind local
// computation; for fully blocking collectives the two are nearly equal.
type CommTimes struct {
	Total   time.Duration
	Exposed time.Duration
}

// Add returns the element-wise sum of two ledgers.
func (t CommTimes) Add(o CommTimes) CommTimes {
	return CommTimes{Total: t.Total + o.Total, Exposed: t.Exposed + o.Exposed}
}

// Sub returns the element-wise difference t - o.
func (t CommTimes) Sub(o CommTimes) CommTimes {
	return CommTimes{Total: t.Total - o.Total, Exposed: t.Exposed - o.Exposed}
}

// Max returns the element-wise maximum of two ledgers.
func (t CommTimes) Max(o CommTimes) CommTimes {
	out := t
	if o.Total > out.Total {
		out.Total = o.Total
	}
	if o.Exposed > out.Exposed {
		out.Exposed = o.Exposed
	}
	return out
}

// Hidden returns the comm time overlapped with computation, never negative.
func (t CommTimes) Hidden() time.Duration {
	if t.Exposed >= t.Total {
		return 0
	}
	return t.Total - t.Exposed
}

// World is one process's share of an SPMD execution: the ranks this process
// hosts, their mailboxes and meters, and the transport endpoint connecting
// them to the ranks hosted elsewhere. On the in-process backend the process
// hosts every rank and the world is the whole execution, exactly as before
// the transport refactor.
type World struct {
	size      int
	local     []int  // world ranks hosted in this process, ascending
	isLocal   []bool // indexed by world rank
	hasRemote bool   // some ranks live in other processes
	transport Transport
	compress  bool        // wire compression: meter WordsEnc, tcp encodes POST payloads
	meters    []meterCell // indexed by world rank; only local cells ever move

	mu         sync.Mutex
	comms      map[string]*commState // every materialized communicator, by id
	root       *commState            // the world communicator's mailbox (under mu)
	abortCause error                 // first Abort cause (under mu)
	winsByID   map[string]*winState  // RMA window registry (see rma.go)

	aborted  atomic.Bool
	progress atomic.Int64 // bumped on every post/retire/RMA; watchdog food

	// Fault plane (see fault.go): the injector and per-rank operation
	// counters it keys off.
	faults    *FaultPlan
	faultColl []atomic.Int64
	faultRMA  []atomic.Int64

	// Observability plane (see obs.go): one tracer slot per rank (each rank
	// goroutine touches only its own slot) and the world-plane event list
	// (under mu). Collection is strictly per-process — see ObsEvents.
	obsTracers []*obs.Tracer
	obsEvents  []obs.Event
}

type meterCell struct {
	msgs, words, work atomic.Int64
	wordsEnc          atomic.Int64
	commNs, exposedNs atomic.Int64 // split-phase time ledger (CommTimes)
	kinds             [numKinds]kindCell
}

type kindCell struct {
	msgs, words, wordsEnc atomic.Int64
}

// commState is the shared half of a communicator: a non-rendezvous mailbox
// for one group of ranks. A member posts its contribution to collective
// call number gen without blocking (post); readers pull contributions out
// as they arrive (collect, nextArrived). A generation retires once every
// member has declared it finished reading (finishRead); buffer-lending
// collectives wait for retirement (waitConsumed) before letting callers
// recycle their send buffers — the split-phase replacement for the old
// whole-comm quiesce rendezvous. Each participating rank holds a *Comm
// handle that pairs this state with its member index.
type commState struct {
	id        string
	world     *World
	ranks     []int // world ranks of the members, in member order
	hasRemote bool  // some members are hosted by other processes

	mu   sync.Mutex
	cond *sync.Cond
	// posted[src][gen] is src's contribution to collective gen (one entry
	// per destination member), held from post until the gen retires.
	posted  []map[int64][]any
	arrived map[int64]int // gen -> members posted so far
	taken   map[int64]int // gen -> members done reading
	// Retired generations are a watermark plus a sparse set, so the maps
	// above stay bounded no matter how far ahead any rank runs.
	doneLow int64          // every gen < doneLow has retired
	doneSet map[int64]bool // retired gens >= doneLow
	// ops labels each in-flight generation with the collective that opened
	// it (first poster wins), for watchdog diagnostics; entries retire with
	// the generation.
	ops map[int64]string
	// aborted flags a dead world: blocked waiters unwind with abortSignal
	// instead of waiting for posts that will never come.
	aborted  bool
	abortErr error
}

func newCommState(w *World, id string, ranks []int) *commState {
	st := &commState{
		id:      id,
		world:   w,
		ranks:   ranks,
		posted:  make([]map[int64][]any, len(ranks)),
		arrived: make(map[int64]int),
		taken:   make(map[int64]int),
		doneSet: make(map[int64]bool),
		ops:     make(map[int64]string),
	}
	if w != nil {
		for _, r := range ranks {
			if !w.isLocalRank(r) {
				st.hasRemote = true
				break
			}
		}
	}
	for s := range st.posted {
		st.posted[s] = make(map[int64][]any)
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// post deposits member m's contribution to collective gen locally and ships
// the remote-addressed parts through the world's transport. It never blocks
// beyond the transport's own send path: a rank may run arbitrarily far
// ahead of its peers. op labels the generation for watchdog diagnostics.
func (st *commState) post(m int, gen int64, parts []any, op string) {
	st.deposit(m, gen, parts, op)
	if !st.hasRemote {
		return
	}
	msg := &PostMsg{
		Comm: st.id, Ranks: st.ranks, Src: m, Gen: gen, Op: op,
		Parts:   make([][]int64, len(parts)),
		Present: make([]bool, len(parts)),
	}
	for i, p := range parts {
		if p != nil {
			msg.Parts[i] = asInts(p)
			msg.Present[i] = true
		}
	}
	if err := st.world.transport.Post(msg); err != nil {
		st.world.Abort(&TransportError{Backend: st.world.transport.Name(), Op: "post", Err: err})
	}
}

// deposit is the local half of post: it files the contribution in this
// process's mailbox and wakes waiters. Remote contributions arrive here too,
// via World.DeliverPost.
func (st *commState) deposit(m int, gen int64, parts []any, op string) {
	st.mu.Lock()
	st.posted[m][gen] = parts
	st.arrived[gen]++
	if _, ok := st.ops[gen]; !ok {
		st.ops[gen] = op
	}
	st.cond.Broadcast()
	st.mu.Unlock()
	if st.world != nil {
		st.world.progress.Add(1)
	}
}

// allPosted reports whether every member has posted gen (the readiness
// probe behind Request.Test).
func (st *commState) allPosted(gen int64) bool {
	st.mu.Lock()
	ok := st.arrived[gen] == len(st.ranks)
	st.mu.Unlock()
	return ok
}

// collect blocks until every member has posted gen and returns the parts
// addressed to member m, one per source member. If the world aborts while
// waiting, the rank unwinds with an abortSignal panic (contained by
// RunWith); the deferred unlock keeps the mailbox usable for peers doing
// the same.
func (st *commState) collect(m int, gen int64) []any {
	size := len(st.ranks)
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.arrived[gen] < size {
		if st.aborted {
			panic(abortSignal{cause: st.abortErr})
		}
		st.cond.Wait()
	}
	out := make([]any, size)
	for s := 0; s < size; s++ {
		out[s] = st.posted[s][gen][m]
	}
	return out
}

// nextArrived blocks until some member whose delivered flag is unset has
// posted gen, and returns that member and its part addressed to member m.
// The caller marks delivered afterwards (under its own lock) and must not
// ask for more sources than the communicator has.
func (st *commState) nextArrived(m int, gen int64, delivered []bool) (int, any) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		for s := range st.posted {
			if delivered[s] {
				continue
			}
			if parts, ok := st.posted[s][gen]; ok {
				return s, parts[m]
			}
		}
		if st.aborted {
			panic(abortSignal{cause: st.abortErr})
		}
		st.cond.Wait()
	}
}

// finishRead declares one local member done reading gen and notifies the
// processes hosting the other members. When the last member (counting
// remote notices) finishes, the generation retires: its posted buffers are
// dropped and waitConsumed waiters are released.
func (st *commState) finishRead(m int, gen int64) {
	st.takeOne(gen)
	if st.hasRemote {
		if err := st.world.transport.FinishRead(st.id, st.ranks, m, gen); err != nil {
			st.world.Abort(&TransportError{Backend: st.world.transport.Name(), Op: "finish", Err: err})
		}
	}
}

// takeOne counts one member (local or remote) done reading gen, retiring
// the generation when the count reaches the membership.
func (st *commState) takeOne(gen int64) {
	st.mu.Lock()
	st.taken[gen]++
	if st.taken[gen] == len(st.ranks) {
		for s := range st.posted {
			delete(st.posted[s], gen)
		}
		delete(st.arrived, gen)
		delete(st.taken, gen)
		delete(st.ops, gen)
		if gen == st.doneLow {
			st.doneLow++
			for st.doneSet[st.doneLow] {
				delete(st.doneSet, st.doneLow)
				st.doneLow++
			}
		} else {
			st.doneSet[gen] = true
		}
		st.cond.Broadcast()
	}
	st.mu.Unlock()
	if st.world != nil {
		st.world.progress.Add(1)
	}
}

// retired reports whether gen has been read by every member. Caller holds
// st.mu.
func (st *commState) retired(gen int64) bool {
	return gen < st.doneLow || st.doneSet[gen]
}

// isConsumed is retired with locking (the probe behind Request.Test for
// lending requests).
func (st *commState) isConsumed(gen int64) bool {
	st.mu.Lock()
	ok := st.retired(gen)
	st.mu.Unlock()
	return ok
}

// waitConsumed blocks until gen retires. Deadlock-free under the package's
// SPMD discipline (all members call collectives on a communicator in the
// same order): posting never blocks and reads of later generations never
// wait on earlier ones, so every member eventually performs its own
// finishRead of gen.
func (st *commState) waitConsumed(gen int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for !st.retired(gen) {
		if st.aborted {
			panic(abortSignal{cause: st.abortErr})
		}
		st.cond.Wait()
	}
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	st        *commState
	member    int   // index within st.ranks
	worldRank int   // rank in the world
	nextGen   int64 // this rank's collective-call counter on this comm
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.member }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.st.ranks) }

// WorldRank returns this rank's index in the world communicator.
func (c *Comm) WorldRank() int { return c.worldRank }

// World returns the world this communicator belongs to.
func (c *Comm) World() *World { return c.st.world }

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// AddWork records n units of local computation for the cost model.
func (c *Comm) AddWork(n int) {
	c.st.world.meters[c.worldRank].work.Add(int64(n))
}

func (c *Comm) addComm(kind CommKind, msgs, words, wordsEnc int64) {
	cell := &c.st.world.meters[c.worldRank]
	cell.msgs.Add(msgs)
	cell.words.Add(words)
	cell.wordsEnc.Add(wordsEnc)
	cell.kinds[kind].msgs.Add(msgs)
	cell.kinds[kind].words.Add(words)
	cell.kinds[kind].wordsEnc.Add(wordsEnc)
}

// encWords returns the delta-varint encoded size of the payloads (in 8-byte
// words) when this world runs with wire compression, and 0 otherwise — the
// encoded-accounting input to addComm. Computed identically on every
// backend: the codec is deterministic, so recomputing on a received payload
// yields exactly the size the sender shipped.
func (c *Comm) encWords(payloads ...[]int64) int64 {
	if !c.st.world.compress {
		return 0
	}
	var n int64
	for _, p := range payloads {
		n += wire.EncodedWords(p)
	}
	return n
}

// rawEnc is encWords for payloads that cross the wire unencoded (scalar
// reduction trees, RMA frames): words when compression is on, 0 otherwise.
func (c *Comm) rawEnc(words int64) int64 {
	if !c.st.world.compress {
		return 0
	}
	return words
}

// Compress reports whether this world runs with wire compression: the tcp
// backend consults it when framing POST payloads, and the collective layer
// when metering WordsEnc.
func (w *World) Compress() bool { return w.compress }

func (c *Comm) addCommTimes(total, exposed time.Duration) {
	cell := &c.st.world.meters[c.worldRank]
	cell.commNs.Add(int64(total))
	cell.exposedNs.Add(int64(exposed))
}

// MeterSnapshot returns this rank's cumulative meter.
func (c *Comm) MeterSnapshot() Meter {
	cell := &c.st.world.meters[c.worldRank]
	return Meter{Msgs: cell.msgs.Load(), Words: cell.words.Load(),
		Work: cell.work.Load(), WordsEnc: cell.wordsEnc.Load()}
}

// CommTimes returns this rank's cumulative communication-time ledger.
func (c *Comm) CommTimes() CommTimes {
	return c.st.world.RankCommTimes(c.worldRank)
}

// RankCommTimes returns the cumulative communication-time ledger of the
// given world rank.
func (w *World) RankCommTimes(rank int) CommTimes {
	cell := &w.meters[rank]
	return CommTimes{
		Total:   time.Duration(cell.commNs.Load()),
		Exposed: time.Duration(cell.exposedNs.Load()),
	}
}

// KindMeter returns this rank's cumulative meter for one collective family
// (Work is always zero: local work has no kind).
func (c *Comm) KindMeter(kind CommKind) Meter {
	cell := &c.st.world.meters[c.worldRank]
	return Meter{Msgs: cell.kinds[kind].msgs.Load(), Words: cell.kinds[kind].words.Load(),
		WordsEnc: cell.kinds[kind].wordsEnc.Load()}
}

// RankKindMeter returns the given world rank's meter for one collective
// family.
func (w *World) RankKindMeter(rank int, kind CommKind) Meter {
	cell := &w.meters[rank]
	return Meter{Msgs: cell.kinds[kind].msgs.Load(), Words: cell.kinds[kind].words.Load(),
		WordsEnc: cell.kinds[kind].wordsEnc.Load()}
}

// RankMeter returns the cumulative meter of the given world rank.
func (w *World) RankMeter(rank int) Meter {
	cell := &w.meters[rank]
	return Meter{Msgs: cell.msgs.Load(), Words: cell.words.Load(),
		Work: cell.work.Load(), WordsEnc: cell.wordsEnc.Load()}
}

// MaxMeter returns the element-wise maximum meter over all ranks, an
// approximation of the critical-path cost for load-balanced SPMD phases.
func (w *World) MaxMeter() Meter {
	var m Meter
	for r := 0; r < w.size; r++ {
		m = m.Max(w.RankMeter(r))
	}
	return m
}

// TotalMeter returns the element-wise sum of all rank meters.
func (w *World) TotalMeter() Meter {
	var m Meter
	for r := 0; r < w.size; r++ {
		m = m.Add(w.RankMeter(r))
	}
	return m
}

// exchange is the blocking rendezvous retained for Split and WinCreate:
// member r contributes parts (one entry per destination member) and
// receives one entry per source member, returning only after every member
// has posted. All members of a communicator must call collectives in the
// same order (standard MPI semantics); the per-handle generation counter
// does the matching.
func (c *Comm) exchange(parts []any, op string) []any {
	st := c.st
	if len(parts) != len(st.ranks) {
		panic(fmt.Sprintf("mpi: exchange with %d parts on a %d-rank comm", len(parts), len(st.ranks)))
	}
	c.enterCollective(op)
	gen := c.nextGen
	c.nextGen++
	tr := c.tracer()
	var t0 int64
	if tr != nil {
		t0 = obs.Now()
	}
	st.post(c.member, gen, parts, op)
	got := st.collect(c.member, gen)
	st.finishRead(c.member, gen)
	if tr != nil {
		tr.EndFlow(obs.KindCollective, op, t0, gen, obs.FlowID(st.id, gen))
	}
	return got
}

func logTreeDepth(p int) int64 {
	if p <= 1 {
		return 0
	}
	return int64(bits.Len(uint(p - 1)))
}

// LocalRanks returns the world ranks hosted by this process, ascending. On
// the in-process backend that is every rank.
func (w *World) LocalRanks() []int { return w.local }

// Transport returns the backend endpoint this world runs over.
func (w *World) Transport() Transport { return w.transport }

// isLocalRank reports whether the given world rank is hosted here.
func (w *World) isLocalRank(r int) bool {
	return r >= 0 && r < len(w.isLocal) && w.isLocal[r]
}

// commStateFor returns the communicator state with the given id,
// materializing it (with the given membership) on first touch. Remote
// traffic for a communicator can arrive before any local rank has Split it;
// both paths meet here under w.mu. A communicator materialized after the
// world aborted starts aborted, so late waiters unwind immediately.
func (w *World) commStateFor(id string, ranks []int) *commState {
	w.mu.Lock()
	st, ok := w.comms[id]
	if !ok {
		st = newCommState(w, id, ranks)
		w.comms[id] = st
	}
	w.mu.Unlock()
	if w.aborted.Load() {
		st.markAborted(w.abortReason())
	}
	return st
}

// DeliverPost files a remote member's contribution in this process's
// mailbox. Called by transport receiver goroutines; safe concurrently with
// local posts.
func (w *World) DeliverPost(msg *PostMsg) {
	st := w.commStateFor(msg.Comm, msg.Ranks)
	parts := make([]any, len(msg.Ranks))
	for i := range parts {
		if i < len(msg.Present) && msg.Present[i] {
			parts[i] = msg.Parts[i]
		}
	}
	st.deposit(msg.Src, msg.Gen, parts, msg.Op)
}

// DeliverFinish counts a remote member done reading one generation,
// retiring it locally once every member (local and remote) has finished.
// Called by transport receiver goroutines.
func (w *World) DeliverFinish(comm string, ranks []int, gen int64) {
	w.commStateFor(comm, ranks).takeOne(gen)
}

// DeliverAbort aborts this process's share of the world with a cause
// propagated from the process where the world actually died. The abort is
// not re-propagated (the originator already notified every peer). Called by
// transport receiver goroutines.
func (w *World) DeliverAbort(from int, msg string) {
	w.abort(&RemoteAbortError{From: from, Msg: msg}, false)
}

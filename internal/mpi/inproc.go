package mpi

import "fmt"

// Inproc is the in-process backend: every rank of the world is a goroutine
// in this process, so all mailbox traffic rides the package's historical
// chan/cond engine and nothing ever crosses the fabric. It preserves the
// pre-transport semantics bit-for-bit — same metering, same fault and
// watchdog behavior, same buffer aliasing — which is why it stays the test
// and CI oracle that every other backend is pinned against.
type Inproc struct {
	size  int
	local []int
}

// NewInproc returns the in-process endpoint of a size-rank world, hosting
// every rank.
func NewInproc(size int) *Inproc {
	local := make([]int, size)
	for i := range local {
		local[i] = i
	}
	return &Inproc{size: size, local: local}
}

// Name returns "inproc".
func (t *Inproc) Name() string { return "inproc" }

// WorldSize returns the rank count.
func (t *Inproc) WorldSize() int { return t.size }

// LocalRanks returns every world rank: in-process worlds host all of them.
func (t *Inproc) LocalRanks() []int { return t.local }

// Bind is a no-op: inbound delivery is the local mailbox itself.
func (t *Inproc) Bind(*World) error { return nil }

// Post is never invoked — there are no remote members to ship to.
func (t *Inproc) Post(msg *PostMsg) error {
	panic(fmt.Sprintf("mpi: inproc transport asked to ship %s gen %d on %q — no remote ranks exist", msg.Op, msg.Gen, msg.Comm))
}

// FinishRead is never invoked — there are no remote members to notify.
func (t *Inproc) FinishRead(comm string, _ []int, m int, gen int64) error {
	panic(fmt.Sprintf("mpi: inproc transport asked to notify read of gen %d on %q for member %d — no remote ranks exist", gen, comm, m))
}

// RMA is never invoked — every window slice is local.
func (t *Inproc) RMA(rank int, req *RMAReq) (*RMAResp, error) {
	panic(fmt.Sprintf("mpi: inproc transport asked for remote RMA op %d on rank %d — no remote ranks exist", req.Op, rank))
}

// Abort is a no-op: there are no peers to notify.
func (t *Inproc) Abort(string) {}

// Close is a no-op: there is nothing to tear down.
func (t *Inproc) Close() error { return nil }

func init() {
	RegisterTransport("inproc", func(size int) ([]Transport, error) {
		if size <= 0 {
			return nil, fmt.Errorf("mpi: inproc world size %d must be positive", size)
		}
		return []Transport{NewInproc(size)}, nil
	})
}

package mpi

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mcmdist/internal/obs"
)

// Injected fault sentinels. Errors returned from a faulted Run wrap one of
// these, so callers distinguish injected faults (retryable by design) from
// genuine algorithm errors with errors.Is.
var (
	// ErrInjectedCrash marks a rank killed by FaultPlan.CrashAtCollective.
	ErrInjectedCrash = errors.New("mpi: injected rank crash")
	// ErrInjectedRMAFailure marks an RMA op failed by FaultPlan.RMAFailAt.
	ErrInjectedRMAFailure = errors.New("mpi: injected rma failure")
)

// RankError is an error that occurred on (or was attributed to) one rank of
// a world: a contained panic, an injected fault, or an abort unwinding. Run
// recovers every rank panic into a RankError instead of crashing the
// process, so one bad rank cannot take down an embedding server.
type RankError struct {
	Rank  int    // world rank the error occurred on
	Op    string // operation during which it occurred ("barrier", "rma-put", "panic", "abort", ...)
	Err   error  // underlying cause
	Stack []byte // goroutine stack at recovery, for contained panics
}

// Error formats the rank, op and cause.
func (e *RankError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed in %s: %v", e.Rank, e.Op, e.Err)
}

// Unwrap returns the underlying cause for errors.Is / errors.As.
func (e *RankError) Unwrap() error { return e.Err }

// FaultPlan is a deterministic, seeded fault injector configured per Run.
// The zero value injects nothing. Faults trigger at fixed points in each
// rank's own operation stream (its Nth collective entry, Nth RMA op), so a
// given plan reproduces the same failure on every execution of the same
// program — faults are part of the simulation, not noise.
//
// Terminal faults (crash, RMA failure) draw from a shared budget of MaxFires
// (default 1). The budget spans every world the plan is attached to, which
// is what makes checkpoint/restart testable: the first attempt faults, the
// budget is exhausted, and the retry runs clean.
type FaultPlan struct {
	// Seed drives the straggler jitter; unrelated plans with different
	// seeds delay differently, same seed reproduces exactly.
	Seed int64

	// CrashRank dies with ErrInjectedCrash upon entering its
	// CrashAtCollective-th collective (1-based, counted per rank across
	// all communicators including Barrier/Split/WinCreate). Zero disables.
	CrashRank         int
	CrashAtCollective int

	// StragglerRank sleeps StragglerDelay (plus seeded jitter up to
	// StragglerJitter) on entry to every StragglerEvery-th collective
	// (default every one). Zero delay disables. Stragglers perturb timing
	// only — results stay bit-identical — and never consume MaxFires.
	StragglerRank   int
	StragglerDelay  time.Duration
	StragglerEvery  int
	StragglerJitter time.Duration

	// RMAFailRank dies with ErrInjectedRMAFailure on its RMAFailAt-th
	// one-sided op (1-based, per rank). Zero disables.
	RMAFailRank int
	RMAFailAt   int

	// MaxFires bounds how many terminal faults (crash + RMA) the plan
	// injects in total, across all worlds sharing it. Zero means 1.
	MaxFires int

	fired atomic.Int64
}

// Fired returns how many terminal faults the plan has injected so far.
func (f *FaultPlan) Fired() int { return int(f.fired.Load()) }

// fire consumes one unit of the terminal-fault budget, returning false once
// MaxFires is exhausted.
func (f *FaultPlan) fire() bool {
	limit := int64(f.MaxFires)
	if limit <= 0 {
		limit = 1
	}
	for {
		cur := f.fired.Load()
		if cur >= limit {
			return false
		}
		if f.fired.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// onCollective runs the fault checks for one rank entering its n-th
// collective (n is 1-based). It panics with a *RankError for a crash; the
// panic is contained by RunWith. Fired faults leave an instant on the
// rank's trace (tr may be nil) so injected failures are visible in the
// merged timeline.
func (f *FaultPlan) onCollective(rank int, op string, n int64, tr *obs.Tracer) {
	if f.CrashAtCollective > 0 && rank == f.CrashRank && n == int64(f.CrashAtCollective) && f.fire() {
		tr.Instant("fault.crash", n)
		panic(&RankError{Rank: rank, Op: op, Err: ErrInjectedCrash})
	}
	if f.StragglerDelay > 0 && rank == f.StragglerRank {
		every := f.StragglerEvery
		if every <= 0 {
			every = 1
		}
		if n%int64(every) == 0 {
			d := f.StragglerDelay
			if f.StragglerJitter > 0 {
				d += time.Duration(splitmix64(uint64(f.Seed)^uint64(rank)<<40^uint64(n)) % uint64(f.StragglerJitter))
			}
			tr.Instant("fault.straggler", int64(d))
			time.Sleep(d)
		}
	}
}

// onRMA runs the fault checks for one rank entering its n-th one-sided op.
func (f *FaultPlan) onRMA(rank int, op string, n int64, tr *obs.Tracer) {
	if f.RMAFailAt > 0 && rank == f.RMAFailRank && n == int64(f.RMAFailAt) && f.fire() {
		tr.Instant("fault.rma", n)
		panic(&RankError{Rank: rank, Op: op, Err: ErrInjectedRMAFailure})
	}
}

// splitmix64 is the SplitMix64 mixer, used to derive deterministic straggler
// jitter from (seed, rank, op index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// enterCollective is the per-rank gate at the top of every collective entry
// point (start, exchange, the progressive Parts starters). It unwinds the
// rank if the world has been aborted, then runs fault injection.
func (c *Comm) enterCollective(op string) {
	w := c.st.world
	if w == nil {
		return
	}
	if w.aborted.Load() {
		panic(abortSignal{cause: w.abortReason()})
	}
	if f := w.faults; f != nil {
		n := w.faultColl[c.worldRank].Add(1)
		f.onCollective(c.worldRank, op, n, c.tracer())
	}
}

// enterRMA is enterCollective for one-sided ops. RMA ops bump the world's
// progress counter so a long path-parallel augmentation epoch (which is all
// RMA, no collectives) is not mistaken for a hang by the watchdog.
func (w *Win) enterRMA(op string) {
	world := w.comm.st.world
	if world == nil {
		return
	}
	if world.aborted.Load() {
		panic(abortSignal{cause: world.abortReason()})
	}
	world.progress.Add(1)
	if f := world.faults; f != nil {
		n := world.faultRMA[w.comm.worldRank].Add(1)
		f.onRMA(w.comm.worldRank, op, n, w.comm.tracer())
	}
}

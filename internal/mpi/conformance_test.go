package mpi_test

// The backend conformance suite: every registered Transport runs the same
// SPMD programs and is pinned against the in-process oracle — per-rank
// results bit-identical, per-rank meter ledgers (Msgs/Words/Work, per kind)
// bit-identical. The suite is the contract that lets everything above the
// transport seam (core, experiments, cmd) treat backends as interchangeable.
//
// It lives in an external test package so it can import the tcpnet backend
// (which itself imports mpi) without a cycle.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mcmdist/internal/mpi"
	_ "mcmdist/internal/mpi/tcpnet" // register the "tcp" backend
)

// conformanceSizes are the world sizes every program runs at (1 = degenerate
// single-rank world, 3 = odd, 4 = the CI topology).
var conformanceSizes = []int{1, 3, 4}

// backendRun is one backend execution: which world hosted each rank (on
// inproc one world hosts all; on tcp each rank has its own), and each
// endpoint's error keyed by its lowest hosted rank.
type backendRun struct {
	worldOf map[int]*mpi.World
	errOf   map[int]error
}

// runBackend builds every endpooint of a size-rank world on the named
// backend, runs fn over all of them concurrently, closes the endpoints, and
// collects the per-rank worlds and per-endpoint errors.
func runBackend(t *testing.T, backend string, size int, mkcfg func() mpi.RunConfig, fn func(c *mpi.Comm) error) *backendRun {
	t.Helper()
	eps, err := mpi.NewTransportSet(backend, size)
	if err != nil {
		t.Fatalf("building %q endpoints: %v", backend, err)
	}
	run := &backendRun{worldOf: map[int]*mpi.World{}, errOf: map[int]error{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep mpi.Transport) {
			defer wg.Done()
			w, err := mpi.RunTransport(mkcfg(), ep, fn)
			mu.Lock()
			defer mu.Unlock()
			run.errOf[ep.LocalRanks()[0]] = err
			if w != nil {
				for _, r := range ep.LocalRanks() {
					run.worldOf[r] = w
				}
			}
		}(ep)
	}
	wg.Wait()
	if err := mpi.CloseAll(eps); err != nil {
		t.Errorf("closing %q endpoints: %v", backend, err)
	}
	return run
}

// firstErr returns the lowest-rank endpoint error (the aggregate verdict of
// a run; on inproc there is exactly one).
func (r *backendRun) firstErr() error {
	for rank := 0; ; rank++ {
		if err, ok := r.errOf[rank]; ok {
			return err
		}
		if rank > len(r.errOf)+1024 {
			return nil
		}
	}
}

// nonOracleBackends returns every registered backend except the oracle.
func nonOracleBackends(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, name := range mpi.Transports() {
		if name != "inproc" {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		t.Fatal("no non-oracle backends registered")
	}
	return out
}

// pinRanks compares each rank's result rows and meter ledgers against the
// oracle run.
func pinRanks(t *testing.T, backend string, size int, oracle, got *backendRun, oracleRows, gotRows [][]int64) {
	t.Helper()
	for r := 0; r < size; r++ {
		if want, have := fmt.Sprint(oracleRows[r]), fmt.Sprint(gotRows[r]); want != have {
			t.Errorf("%s size %d rank %d result rows:\n  oracle: %s\n  %s: %s", backend, size, r, want, backend, have)
		}
		ow, gw := oracle.worldOf[r], got.worldOf[r]
		if ow == nil || gw == nil {
			t.Fatalf("%s size %d rank %d missing world (oracle %v, got %v)", backend, size, r, ow != nil, gw != nil)
		}
		if want, have := ow.RankMeter(r), gw.RankMeter(r); want != have {
			t.Errorf("%s size %d rank %d meter: oracle %+v, got %+v", backend, size, r, want, have)
		}
		for _, kind := range []mpi.CommKind{mpi.KindAllgather, mpi.KindAlltoall, mpi.KindGather, mpi.KindScatter, mpi.KindBcast, mpi.KindReduce, mpi.KindRMA} {
			if want, have := ow.RankKindMeter(r, kind), gw.RankKindMeter(r, kind); want != have {
				t.Errorf("%s size %d rank %d %v meter: oracle %+v, got %+v", backend, size, r, kind, want, have)
			}
		}
	}
}

// collectiveProgram exercises every blocking collective, the Into variants,
// and a two-level Split, writing a deterministic digest into rows[rank].
func collectiveProgram(size int, rows [][]int64) func(c *mpi.Comm) error {
	return func(c *mpi.Comm) error {
		r := int64(c.Rank())
		var out []int64

		c.Barrier()
		out = append(out, c.Bcast(0, []int64{42, r * 0})...)
		out = append(out, c.Allreduce(mpi.OpSum, r+1))
		out = append(out, c.Allreduce(mpi.OpMax, 100-r))
		out = append(out, c.Allreduce(mpi.CustomOp(func(a, b int64) int64 { return a ^ b }), r+7))

		for _, part := range c.Allgatherv([]int64{r, r * r}) {
			out = append(out, part...)
		}
		parts := make([][]int64, size)
		for d := range parts {
			parts[d] = []int64{r*100 + int64(d), r - int64(d)}
		}
		for _, part := range c.Alltoallv(parts) {
			out = append(out, part...)
		}
		out = append(out, c.AllgathervInto([]int64{r + 5}, nil)...)
		flat := c.AlltoallvFlat(parts, nil)
		out = append(out, flat...)
		into, _ := c.AlltoallvInto(parts, nil)
		for _, part := range into {
			out = append(out, part...)
		}

		for _, part := range c.Gatherv(0, []int64{r * 3}) {
			out = append(out, part...)
		}
		var scat [][]int64
		if c.Rank() == 0 {
			scat = make([][]int64, size)
			for d := range scat {
				scat[d] = []int64{int64(d) * 11, int64(d) * 13}
			}
		}
		out = append(out, c.Scatterv(0, scat)...)

		// Two-way split plus a size-1 sub-split keyed in reverse order.
		half := c.Split(c.Rank()%2, -c.Rank())
		out = append(out, half.Allreduce(mpi.OpSum, r+1))
		out = append(out, int64(half.Rank()), int64(half.Size()))
		solo := half.Split(half.Rank(), 0)
		out = append(out, solo.Allreduce(mpi.OpMax, r))

		c.AddWork(int(r) + 3)
		rows[c.WorldRank()] = out
		return nil
	}
}

// requestProgram exercises the split-phase requests, including progressive
// Parts consumption and compute/communication overlap.
func requestProgram(size int, rows [][]int64) func(c *mpi.Comm) error {
	return func(c *mpi.Comm) error {
		r := int64(c.Rank())
		var out []int64

		breq := c.IBcast(0, []int64{7, 8, 9})
		areq := c.IAllreduce(mpi.OpMin, 50+r)
		c.AddWork(10) // overlapped compute
		out = append(out, breq.Wait()...)
		out = append(out, areq.Wait())

		greq := c.IAllgatherv([]int64{r * 2, r * 2 + 1})
		for _, part := range greq.Wait() {
			out = append(out, part...)
		}

		parts := make([][]int64, size)
		for d := range parts {
			parts[d] = []int64{r + int64(d)*10}
		}
		preq := c.IAlltoallvParts(parts)
		sum := int64(0)
		for {
			src, part, ok := preq.Next()
			if !ok {
				break
			}
			sum += int64(src+1) * part[0]
		}
		preq.Finish()
		out = append(out, sum)

		// Digest must be commutative: Next yields parts in arrival order,
		// which is scheduling-dependent on every backend.
		gp := c.IAllgathervParts([]int64{r + 20})
		mix := int64(0)
		for {
			src, part, ok := gp.Next()
			if !ok {
				break
			}
			mix += (int64(src) + 3) * (part[0]*part[0] + 1)
		}
		gp.Finish()
		out = append(out, mix)

		rows[c.WorldRank()] = out
		return nil
	}
}

// rmaProgram exercises one-sided traffic: ring puts, gets, fetch-and-op with
// every coded operator, compare-and-swap, fenced epochs.
func rmaProgram(size int, rows [][]int64) func(c *mpi.Comm) error {
	return func(c *mpi.Comm) error {
		r := int64(c.Rank())
		local := make([]int64, 8)
		for i := range local {
			local[i] = r*10 + int64(i)
		}
		win := mpi.WinCreate(c, local)
		right := (c.Rank() + 1) % size

		// Epoch 1: everyone puts a stamp into its right neighbor.
		win.Put(right, 0, []int64{1000 + r})
		win.Put1(right, 1, 2000+r)
		win.Fence()

		// Epoch 2: read the left neighbor's slice, accumulate into right.
		var out []int64
		out = append(out, win.Get(right, 0, 4)...)
		out = append(out, win.Get1(right, 5))
		out = append(out, win.FetchAndOp(right, 2, mpi.OpSum, 5))
		out = append(out, win.FetchAndOp(right, 2, mpi.OpMax, 1))
		out = append(out, win.FetchAndOp(right, 3, mpi.OpMin, -r))
		out = append(out, win.FetchAndOp(right, 4, mpi.OpReplace, 77+r))
		win.Fence()

		// Epoch 3: CAS on own slice via the ring (deterministic winner per
		// slot: only one rank targets each).
		out = append(out, win.CompareAndSwap(right, 6, int64(right)*10+6, -9))
		out = append(out, win.CompareAndSwap(right, 6, int64(right)*10+6, -8))
		win.Fence()

		out = append(out, local...)
		rows[c.WorldRank()] = out
		return nil
	}
}

// TestConformanceRegistry pins the registered backend set.
func TestConformanceRegistry(t *testing.T) {
	names := mpi.Transports()
	has := func(n string) bool {
		for _, x := range names {
			if x == n {
				return true
			}
		}
		return false
	}
	if !has("inproc") || !has("tcp") {
		t.Fatalf("registered transports %v, want both inproc and tcp", names)
	}
}

// conformanceCase runs one program on the oracle and every other backend at
// every conformance size, pinning rows and meters.
func conformanceCase(t *testing.T, program func(size int, rows [][]int64) func(c *mpi.Comm) error) {
	t.Helper()
	for _, size := range conformanceSizes {
		oracleRows := make([][]int64, size)
		oracle := runBackend(t, "inproc", size, func() mpi.RunConfig { return mpi.RunConfig{} }, program(size, oracleRows))
		if err := oracle.firstErr(); err != nil {
			t.Fatalf("oracle size %d: %v", size, err)
		}
		for _, backend := range nonOracleBackends(t) {
			gotRows := make([][]int64, size)
			got := runBackend(t, backend, size, func() mpi.RunConfig { return mpi.RunConfig{} }, program(size, gotRows))
			for rank, err := range got.errOf {
				if err != nil {
					t.Fatalf("%s size %d endpoint %d: %v", backend, size, rank, err)
				}
			}
			pinRanks(t, backend, size, oracle, got, oracleRows, gotRows)
		}
	}
}

func TestConformanceCollectives(t *testing.T) { conformanceCase(t, collectiveProgram) }

func TestConformanceRequests(t *testing.T) { conformanceCase(t, requestProgram) }

func TestConformanceRMA(t *testing.T) { conformanceCase(t, rmaProgram) }

// TestConformanceFault pins injected-crash behavior: the endpoint hosting
// the crash rank reports the injected error on every backend, and every
// other endpoint observes the abort (locally structured or propagated).
func TestConformanceFault(t *testing.T) {
	const size = 4
	program := func(c *mpi.Comm) error {
		for i := 0; i < 6; i++ {
			c.Barrier()
		}
		return nil
	}
	for _, backend := range append([]string{"inproc"}, nonOracleBackends(t)...) {
		plan := &mpi.FaultPlan{CrashRank: 2, CrashAtCollective: 3}
		run := runBackend(t, backend, size, func() mpi.RunConfig { return mpi.RunConfig{Faults: plan} }, program)
		if plan.Fired() != 1 {
			t.Errorf("%s: fault fired %d times, want 1", backend, plan.Fired())
		}
		sawInjected := false
		for rank, err := range run.errOf {
			if err == nil {
				t.Errorf("%s endpoint %d: no error from a crashed world", backend, rank)
				continue
			}
			if errors.Is(err, mpi.ErrInjectedCrash) {
				sawInjected = true
				continue
			}
			var remote *mpi.RemoteAbortError
			if !errors.As(err, &remote) || !strings.Contains(err.Error(), "injected") {
				t.Errorf("%s endpoint %d: unexpected abort cause %v", backend, rank, err)
			}
		}
		if !sawInjected {
			t.Errorf("%s: no endpoint reported the injected crash directly", backend)
		}
	}
}

// TestConformanceWatchdog pins watchdog behavior: rank 0 never posts the
// barrier, so every endpoint hosting a blocked rank aborts with a deadlock
// diagnosis (its own watchdog) or the propagated abort, each within the
// configured timeout.
func TestConformanceWatchdog(t *testing.T) {
	const size = 3
	program := func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return nil // never posts; peers wedge in the barrier
		}
		c.Barrier()
		return nil
	}
	cfg := func() mpi.RunConfig {
		return mpi.RunConfig{WatchdogTimeout: 200 * time.Millisecond, WatchdogPoll: 10 * time.Millisecond}
	}
	for _, backend := range append([]string{"inproc"}, nonOracleBackends(t)...) {
		run := runBackend(t, backend, size, cfg, program)
		stuck := 0
		for rank, err := range run.errOf {
			if rank == 0 && err == nil {
				// A rank-0-only endpoint finishes clean (its world hosted no
				// blocked rank); the oracle hosts everyone so it must fail.
				if backend == "inproc" {
					t.Errorf("%s: oracle returned nil despite wedged ranks", backend)
				}
				continue
			}
			if err == nil {
				t.Errorf("%s endpoint %d: wedged world returned nil", backend, rank)
				continue
			}
			if !strings.Contains(err.Error(), "no progress") {
				t.Errorf("%s endpoint %d: abort cause %v does not carry the deadlock diagnosis", backend, rank, err)
			}
			stuck++
		}
		if stuck == 0 {
			t.Errorf("%s: no endpoint diagnosed the deadlock", backend)
		}
	}
}

// TestConformanceStraggler pins that stragglers perturb timing only: results
// and meters stay bit-identical to the oracle run without any fault plan.
func TestConformanceStraggler(t *testing.T) {
	const size = 3
	oracleRows := make([][]int64, size)
	oracle := runBackend(t, "inproc", size, func() mpi.RunConfig { return mpi.RunConfig{} }, collectiveProgram(size, oracleRows))
	if err := oracle.firstErr(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	plan := func() *mpi.FaultPlan {
		return &mpi.FaultPlan{Seed: 7, StragglerRank: 1, StragglerDelay: time.Millisecond, StragglerEvery: 2}
	}
	for _, backend := range append([]string{"inproc"}, nonOracleBackends(t)...) {
		gotRows := make([][]int64, size)
		shared := plan()
		got := runBackend(t, backend, size, func() mpi.RunConfig { return mpi.RunConfig{Faults: shared} }, collectiveProgram(size, gotRows))
		if err := got.firstErr(); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		pinRanks(t, backend, size, oracle, got, oracleRows, gotRows)
	}
}

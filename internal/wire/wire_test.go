package wire

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func roundtrip(t *testing.T, v []int64) {
	t.Helper()
	enc := AppendEncoded(nil, v)
	if want := EncodedLen(v); len(enc) != want {
		t.Fatalf("EncodedLen = %d, encoding produced %d bytes", want, len(enc))
	}
	got, err := Decode(nil, len(v), enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(v) {
		t.Fatalf("decoded %d values, want %d", len(got), len(v))
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("value %d: got %d, want %d", i, got[i], v[i])
		}
	}
}

func TestRoundtripFixed(t *testing.T) {
	cases := [][]int64{
		nil,
		{},
		{0},
		{-1},
		{math.MaxInt64},
		{math.MinInt64},
		{math.MinInt64, math.MaxInt64},           // max-gap delta wraps uint64
		{math.MaxInt64, math.MinInt64},           // max negative gap
		{0, 1, 2, 3, 4, 5, 6, 7},                 // adversarially dense run
		{5, 5, 5, 5},                             // zero deltas
		{-1, 0, 1 << 40, 1<<40 + 1},              // mixed signs and magnitudes
		{3, 1, 4, 1, 5, 9, 2, 6},                 // unsorted still roundtrips
		{math.MinInt64, -1, 0, 1, math.MaxInt64}, // full range sorted
	}
	for _, v := range cases {
		roundtrip(t, v)
	}
}

// TestRoundtripPropertySorted is the property test the wire format is built
// for: arbitrary sorted id streams, covering empty, single, dense runs,
// huge gaps, duplicates, and negative sentinels like semiring.None.
func TestRoundtripPropertySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(200)
		v := make([]int64, n)
		for i := range v {
			switch rng.Intn(4) {
			case 0: // dense small ids
				v[i] = int64(rng.Intn(64))
			case 1: // typical vertex ids
				v[i] = int64(rng.Intn(1 << 20))
			case 2: // huge ids, huge gaps
				v[i] = rng.Int63()
			default: // negatives (None sentinels, adversarial)
				v[i] = -rng.Int63()
			}
		}
		sort.Slice(v, func(a, b int) bool { return v[a] < v[b] })
		roundtrip(t, v)
	}
}

func TestRoundtripPropertyUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		v := make([]int64, rng.Intn(100))
		for i := range v {
			v[i] = int64(uint64(rng.Int63())<<1 | uint64(rng.Intn(2))) // all 64 bits exercised
		}
		roundtrip(t, v)
	}
}

func TestSortedStreamsCompress(t *testing.T) {
	v := make([]int64, 4096)
	for i := range v {
		v[i] = int64(i) * 3 // sorted, small gaps: ~1 byte per value
	}
	raw := int64(len(v)) // words
	if enc := EncodedWords(v); enc*2 > raw {
		t.Fatalf("sorted stream encoded to %d words, want <= half of %d raw", enc, raw)
	}
}

func TestDecodeErrors(t *testing.T) {
	enc := AppendEncoded(nil, []int64{1, 2, 3})
	if _, err := Decode(nil, 3, enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	if _, err := Decode(nil, 2, enc); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
	if _, err := Decode(nil, 4, enc); err == nil {
		t.Fatal("over-count decoded without error")
	}
	// A varint longer than 10 bytes is malformed.
	bad := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, err := Decode(nil, 1, bad); err == nil {
		t.Fatal("malformed varint decoded without error")
	}
}

func TestDecodeAppends(t *testing.T) {
	enc := AppendEncoded(nil, []int64{10, 20})
	got, err := Decode([]int64{7}, 2, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 7 || got[1] != 10 || got[2] != 20 {
		t.Fatalf("append decode got %v", got)
	}
}

// Package wire implements the delta-varint codec the transports use to
// compress []int64 payloads. Frontier expands, visited-row replications and
// fold triples are streams of vertex ids that are sorted (or piecewise
// sorted), so consecutive differences are small and a varint of the zigzag
// delta packs most entries into one or two bytes instead of eight.
//
// The codec is total: any []int64 round-trips, sorted or not, because the
// delta is computed with wrap-around uint64 arithmetic (so even the
// MaxInt64-MinInt64 gap is representable) and zigzag-mapped before the
// varint. Unsorted or adversarial inputs merely compress poorly — they can
// never fail to encode, which is what lets the tcp backend apply the codec
// to every mailbox payload without classifying them first.
//
// Layout: value 0 is encoded directly (zigzag varint), every later value as
// the zigzag varint of its wrap-around delta from the previous value. The
// element count travels outside the byte stream (the transport frame already
// carries it), so an empty stream encodes to zero bytes.
package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// zigzag maps signed deltas to unsigned so small negative gaps stay short:
// 0,-1,1,-2,2,... -> 0,1,2,3,4,...
func zigzag(x uint64) uint64 {
	return (x << 1) ^ uint64(int64(x)>>63)
}

// unzigzag inverts zigzag.
func unzigzag(z uint64) uint64 {
	return (z >> 1) ^ (-(z & 1))
}

// AppendEncoded appends the delta-varint encoding of v to dst and returns
// the extended slice.
func AppendEncoded(dst []byte, v []int64) []byte {
	var prev uint64
	for _, x := range v {
		d := uint64(x) - prev // wrap-around delta: total over all of int64
		dst = binary.AppendUvarint(dst, zigzag(d))
		prev = uint64(x)
	}
	return dst
}

// Decode appends count values decoded from src to dst and returns the
// extended slice. It errors on a truncated stream, a malformed varint, or
// trailing bytes — a frame that does not decode exactly is corrupt.
func Decode(dst []int64, count int, src []byte) ([]int64, error) {
	var prev uint64
	for i := 0; i < count; i++ {
		z, n := binary.Uvarint(src)
		if n <= 0 {
			return dst, fmt.Errorf("wire: truncated or malformed varint at value %d of %d", i, count)
		}
		src = src[n:]
		prev += unzigzag(z)
		dst = append(dst, int64(prev))
	}
	if len(src) != 0 {
		return dst, fmt.Errorf("wire: %d trailing bytes after %d values", len(src), count)
	}
	return dst, nil
}

// uvarintLen is the encoded size of one uvarint, without writing it.
func uvarintLen(z uint64) int {
	return (bits.Len64(z|1) + 6) / 7
}

// EncodedLen returns the exact byte length AppendEncoded would produce,
// without encoding.
func EncodedLen(v []int64) int {
	var prev uint64
	n := 0
	for _, x := range v {
		n += uvarintLen(zigzag(uint64(x) - prev))
		prev = uint64(x)
	}
	return n
}

// EncodedWords returns EncodedLen rounded up to 8-byte words — the unit the
// communication meters count, so raw (one word per value) and encoded
// volumes compare directly.
func EncodedWords(v []int64) int64 {
	return int64((EncodedLen(v) + 7) / 8)
}

// MaxEncodedLen bounds the encoding of any n values (10 bytes per varint).
func MaxEncodedLen(n int) int {
	return n * binary.MaxVarintLen64
}

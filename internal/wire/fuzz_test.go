package wire

// Fuzz target for the delta-varint decoder, the other half of what a hostile
// or corrupt peer can put on the wire (the tcp backend feeds it every
// compressed POST part). Decode must never panic, and anything it accepts
// must survive a semantic round trip through the encoder.

import (
	"reflect"
	"testing"
)

// FuzzDecode drives Decode with arbitrary streams and counts. Each varint is
// at least one byte, so the loop is bounded by len(src) no matter how large
// count claims to be — that boundedness is part of what this target guards.
func FuzzDecode(f *testing.F) {
	f.Add(0, []byte{})
	f.Add(3, AppendEncoded(nil, []int64{3, 5, 9}))
	f.Add(4, AppendEncoded(nil, []int64{100, 101, 104, 109}))
	f.Add(2, AppendEncoded(nil, []int64{-1 << 62, 1<<62 - 1}))
	f.Add(1, []byte{0x80})                   // truncated varint
	f.Add(1, []byte{0x00, 0x00})             // trailing byte
	f.Add(1 << 30, []byte{0x02, 0x02, 0x02}) // count far beyond the stream
	f.Fuzz(func(t *testing.T, count int, src []byte) {
		v, err := Decode(nil, count, src)
		if err != nil {
			return
		}
		if count >= 0 && len(v) != count {
			t.Fatalf("Decode returned %d values for count %d without error", len(v), count)
		}
		// Whatever decoded is a value stream the codec must own completely:
		// encode it back and the bytes must decode to the same values. (The
		// bytes themselves may differ — Uvarint accepts overlong encodings
		// the encoder never emits.)
		again, err := Decode(nil, len(v), AppendEncoded(nil, v))
		if err != nil {
			t.Fatalf("re-decoding the re-encoding failed: %v", err)
		}
		if !reflect.DeepEqual(v, again) {
			t.Fatalf("semantic round trip diverged:\n first %v\n again %v", v, again)
		}
	})
}

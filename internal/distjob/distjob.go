// Package distjob defines the job description a multi-process solve ships
// through the transport bootstrap: the coordinator (cmd/mcm -transport tcp)
// encodes a Spec into the rendezvous config blob, every worker
// (cmd/mcmrank) decodes it, and both sides rebuild a bit-identical input
// matrix and solver configuration from it. Determinism of the generators
// and of MCM-DIST then guarantees every process computes the same matching
// without ever moving the graph over the wire.
//
// The codec is versioned JSON: a decoder rejects blobs whose "v" field it
// does not understand, so coordinator and worker binaries from different
// builds fail loudly instead of diverging silently.
package distjob

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mcmdist/internal/core"
	_ "mcmdist/internal/engine" // register the out-of-core engines for worker solves
	"mcmdist/internal/gen"
	"mcmdist/internal/mpi"
	"mcmdist/internal/mtx"
	"mcmdist/internal/obs"
	"mcmdist/internal/rmat"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// Run decodes a job blob and solves it on the given transport endpoint: the
// whole worker side of a distributed job, shared by cmd/mcmrank and
// cmd/mcm's worker mode. The matrix and configuration are rebuilt locally
// from the spec, so only the blob ever crosses the wire.
func Run(tr mpi.Transport, blob []byte) (*core.Result, error) {
	spec, err := Decode(blob)
	if err != nil {
		return nil, err
	}
	res, _, err := spec.Solve(tr, nil)
	return res, err
}

// Solve runs an already-decoded spec on the given endpoint, rebuilding the
// matrix and configuration locally. onCheckpoint, when non-nil, receives
// each phase-boundary checkpoint on the process hosting rank 0 (the
// supervisor captures the freshest one there to seed the next generation);
// other processes keep the symmetric noop handler CoreConfig installs, so
// the collective checkpoint gathers stay SPMD.
//
// The returned collector is the process's observability state (nil when the
// spec enables none of it): on the coordinator of a successful tcp solve it
// holds the whole world's merged observation; on workers and failed solves
// it holds the local ranks. When the spec arms the flight recorder and the
// solve dies, the collector's state is persisted to FlightDir before
// returning — that dump is the post-mortem, written even though the error
// unwinds.
func (s *Spec) Solve(tr mpi.Transport, onCheckpoint func(*core.Checkpoint)) (*core.Result, *obs.Collector, error) {
	if s.Procs != tr.WorldSize() {
		return nil, nil, fmt.Errorf("distjob: job spec procs %d != transport world size %d", s.Procs, tr.WorldSize())
	}
	a, err := s.BuildMatrix()
	if err != nil {
		return nil, nil, err
	}
	cfg, err := s.CoreConfig()
	if err != nil {
		return nil, nil, err
	}
	if onCheckpoint != nil && cfg.CheckpointEvery > 0 {
		cfg.OnCheckpoint = onCheckpoint
	}
	res, err := core.SolveOn(tr, a, cfg)
	if err != nil && s.FlightDir != "" {
		s.writeFlightDump(tr, cfg.Obs, err)
	}
	return res, cfg.Obs, err
}

// writeFlightDump persists the crash flight recorder for this process: the
// span-ring tails and last meter points of its local ranks, the generation,
// and the rendered cause, as FlightDir/flight-g<gen>-r<rank>.dump. Best
// effort — the world is dying, so a failed dump must not mask the solve
// error — and atomic, so a dump that exists always decodes.
func (s *Spec) writeFlightDump(tr mpi.Transport, col *obs.Collector, cause error) string {
	if err := os.MkdirAll(s.FlightDir, 0o755); err != nil {
		return ""
	}
	ranks := tr.LocalRanks()
	d := col.BuildFlightDump(ranks, int64(s.Generation), cause.Error())
	path := filepath.Join(s.FlightDir, fmt.Sprintf("flight-g%d-r%d.dump", s.Generation, ranks[0]))
	if err := d.WriteFile(path); err != nil {
		return ""
	}
	return path
}

// Version is the current Spec codec version. Version 2 added the engine
// field; the bump is deliberate even though the field is optional, because a
// worker that silently dropped an unknown engine would solve with a
// different algorithm than the coordinator asked for. Version 3 adds the
// recovery plane: generation counter, restart policy, and the checkpoint a
// restarted world resumes from — a v2 worker joining a recovering world
// would neither checkpoint nor resume, so the bump is again load-bearing.
// Version 4 adds the observability plane (the enables from which every
// process builds the same collector) and the flight-recorder directory — a
// v3 worker would silently trace nothing and dump nothing, leaving holes in
// the merged world artifact, hence the bump.
const Version = 4

// Spec describes one distributed solve: the graph source (exactly one of
// RMAT, Matrix or MTX) and the solver options, mirroring cmd/mcm's flags.
type Spec struct {
	// V is the codec version; Encode stamps it, Decode validates it.
	V int `json:"v"`

	// RMAT selects a synthetic R-MAT matrix by class: "g500", "ssca" or
	// "er" (Section V-B of the paper).
	RMAT string `json:"rmat,omitempty"`
	// Matrix selects a Table II stand-in by generator name.
	Matrix string `json:"matrix,omitempty"`
	// MTX carries a Matrix Market file inline. Workers may start in a
	// different filesystem namespace than the coordinator, so the content
	// travels in the spec rather than as a path.
	MTX string `json:"mtx,omitempty"`
	// Scale sizes generated matrices (2^scale vertices per side).
	Scale int `json:"scale,omitempty"`
	// EdgeFactor overrides the R-MAT nonzeros per row; 0 means the
	// class default (32, or 16 for SSCA).
	EdgeFactor int `json:"edge_factor,omitempty"`
	// Seed drives the generators and the load-balancing permutation.
	Seed int64 `json:"seed,omitempty"`

	// Procs is the world size; it must match the transport's.
	Procs int `json:"procs"`
	// Threads is the modeled thread count per rank.
	Threads int `json:"threads,omitempty"`
	// Init names the initializer: "none", "greedy", "karpsipser" or
	// "mindegree".
	Init string `json:"init,omitempty"`
	// Semiring names the SpMV addition: "minparent", "randroot" or
	// "randparent".
	Semiring string `json:"semiring,omitempty"`
	// Augment names the augmentation strategy: "auto", "level" or "path".
	Augment string `json:"augment,omitempty"`
	// NoPrune disables tree pruning (the Fig. 8 ablation).
	NoPrune bool `json:"no_prune,omitempty"`
	// DirectionOptimized enables the bottom-up BFS direction.
	DirectionOptimized bool `json:"direction_optimized,omitempty"`
	// Direction pins or frees the per-iteration SpMV kernel: "push", "pull",
	// "auto", or "" for the DirectionOptimized-derived default.
	Direction string `json:"direction,omitempty"`
	// Compress enables the delta-varint wire codec on the solve's
	// communication layer.
	Compress bool `json:"compress,omitempty"`
	// Engine names the matching engine ("bfs", "bfs-ss", "bfs-graft",
	// "auction", "auto", or "" for the Graft-derived legacy default). Every
	// process resolves it identically from the spec.
	Engine string `json:"engine,omitempty"`
	// Graft selects the tree-grafting MCM variant.
	//
	// Deprecated: set Engine to "bfs-graft"; Graft remains as an alias and
	// is ignored when Engine is non-empty.
	Graft bool `json:"graft,omitempty"`
	// NoPermute skips the load-balancing random permutation.
	NoPermute bool `json:"no_permute,omitempty"`

	// Generation counts world restarts of this job; 0 is the initial world.
	// Every restart re-runs the rendezvous under a fresh generation, so a
	// worker can tell a new world from a stale reconnect.
	Generation int `json:"generation,omitempty"`
	// Recover marks the job as supervised: a worker whose solve dies of a
	// restartable transport failure rejoins the rendezvous for the next
	// generation instead of exiting (see WorkLoop).
	Recover bool `json:"recover,omitempty"`
	// MaxRestarts bounds the generations after the first; 0 under Recover
	// means the supervisor default.
	MaxRestarts int `json:"max_restarts,omitempty"`
	// CheckpointEvery takes a phase-boundary checkpoint every Nth phase on
	// all processes (collective); the supervisor holds the freshest one.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// WatchdogMillis arms the progress watchdog, so a world stalled by a
	// failure mode the detector cannot see still aborts (and restarts).
	WatchdogMillis int64 `json:"watchdog_millis,omitempty"`
	// Checkpoint carries the previous generation's freshest snapshot
	// (MCMCKPT bytes) into a restarted world; every process decodes it into
	// its resume state, so generation g+1 starts exactly where g left off.
	Checkpoint []byte `json:"checkpoint,omitempty"`

	// ObsSpans enables span tracing on every process of the world. The
	// observability fields travel in the spec so the whole world observes
	// symmetrically — workers ship their share back to the coordinator at
	// solve end, where one merged artifact is produced.
	ObsSpans bool `json:"obs_spans,omitempty"`
	// ObsSeries enables the per-iteration time-series on every process.
	ObsSeries bool `json:"obs_series,omitempty"`
	// ObsMetrics gives every process a live metrics registry; the
	// coordinator absorbs the workers' registries into world aggregates.
	ObsMetrics bool `json:"obs_metrics,omitempty"`
	// FlightDir, when non-empty, arms the crash flight recorder: a process
	// whose solve dies persists its span-ring tail, last meter points,
	// generation and cause to FlightDir/flight-g<gen>-r<rank>.dump. Arming
	// the recorder implies span tracing (a dump without spans names
	// nothing). The path is interpreted in each process's own filesystem
	// namespace.
	FlightDir string `json:"flight_dir,omitempty"`
}

// Encode serializes the spec, stamping the codec version.
func (s *Spec) Encode() ([]byte, error) {
	c := *s
	c.V = Version
	if err := c.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(&c)
}

// Decode parses and validates a blob produced by Encode.
func Decode(blob []byte) (*Spec, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("distjob: empty job spec (coordinator sent no config blob)")
	}
	var s Spec
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("distjob: bad job spec: %w", err)
	}
	if s.V != Version {
		return nil, fmt.Errorf("distjob: job spec version %d, this build speaks %d", s.V, Version)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Spec) validate() error {
	n := 0
	for _, src := range []string{s.RMAT, s.Matrix, s.MTX} {
		if src != "" {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("distjob: spec needs exactly one graph source (rmat, matrix or mtx), got %d", n)
	}
	if s.Procs <= 0 {
		return fmt.Errorf("distjob: procs %d must be positive", s.Procs)
	}
	if s.Generation < 0 || s.MaxRestarts < 0 || s.CheckpointEvery < 0 || s.WatchdogMillis < 0 {
		return fmt.Errorf("distjob: negative recovery field (generation %d, max_restarts %d, checkpoint_every %d, watchdog_millis %d)",
			s.Generation, s.MaxRestarts, s.CheckpointEvery, s.WatchdogMillis)
	}
	if _, err := s.rmatParams(); err != nil {
		return err
	}
	if _, err := initByName(s.Init); err != nil {
		return err
	}
	if _, err := addOpByName(s.Semiring); err != nil {
		return err
	}
	if _, err := augmentByName(s.Augment); err != nil {
		return err
	}
	if _, err := core.ParseEngine(s.Engine); err != nil {
		return err
	}
	if _, err := core.ParseDirection(s.Direction); err != nil {
		return err
	}
	return nil
}

func (s *Spec) rmatParams() (rmat.Params, error) {
	switch strings.ToLower(s.RMAT) {
	case "", "g500":
		return rmat.G500, nil
	case "ssca":
		return rmat.SSCA, nil
	case "er":
		return rmat.ER, nil
	default:
		return rmat.Params{}, fmt.Errorf("distjob: unknown rmat class %q", s.RMAT)
	}
}

func initByName(name string) (core.Init, error) {
	switch name {
	case "", "mindegree":
		return core.InitDynMinDegree, nil
	case "none":
		return core.InitNone, nil
	case "greedy":
		return core.InitGreedy, nil
	case "karpsipser":
		return core.InitKarpSipser, nil
	default:
		return 0, fmt.Errorf("distjob: unknown init %q", name)
	}
}

func addOpByName(name string) (semiring.AddOp, error) {
	switch name {
	case "", "minparent":
		return semiring.MinParent, nil
	case "randroot":
		return semiring.RandRoot, nil
	case "randparent":
		return semiring.RandParent, nil
	default:
		return 0, fmt.Errorf("distjob: unknown semiring %q", name)
	}
}

func augmentByName(name string) (core.AugmentMode, error) {
	switch name {
	case "", "auto":
		return core.AugmentAuto, nil
	case "level":
		return core.AugmentLevelParallel, nil
	case "path":
		return core.AugmentPathParallel, nil
	default:
		return 0, fmt.Errorf("distjob: unknown augment %q", name)
	}
}

// BuildMatrix rebuilds the input matrix from the spec. The generators are
// deterministic in the spec fields, so every process gets a bit-identical
// matrix.
func (s *Spec) BuildMatrix() (*spmat.CSC, error) {
	switch {
	case s.MTX != "":
		return mtx.Read(strings.NewReader(s.MTX))
	case s.Matrix != "":
		sp, err := gen.FindSpec(s.Matrix)
		if err != nil {
			return nil, err
		}
		return gen.Generate(sp, s.Scale)
	default:
		p, err := s.rmatParams()
		if err != nil {
			return nil, err
		}
		ef := s.EdgeFactor
		if ef == 0 {
			ef = p.EdgeFactor()
		}
		return rmat.Generate(p, s.Scale, ef, s.Seed)
	}
}

// CoreConfig maps the spec onto a core solver configuration. Every process
// must derive its config from the same spec so the solve stays SPMD.
func (s *Spec) CoreConfig() (core.Config, error) {
	cfg := core.Config{
		Engine:             s.Engine,
		Procs:              s.Procs,
		Threads:            s.Threads,
		DisablePrune:       s.NoPrune,
		DirectionOptimized: s.DirectionOptimized,
		TreeGrafting:       s.Graft,
		Compress:           s.Compress,
		Permute:            !s.NoPermute,
		Seed:               s.Seed,
	}
	var err error
	if cfg.Init, err = initByName(s.Init); err != nil {
		return core.Config{}, err
	}
	if cfg.AddOp, err = addOpByName(s.Semiring); err != nil {
		return core.Config{}, err
	}
	if cfg.Augment, err = augmentByName(s.Augment); err != nil {
		return core.Config{}, err
	}
	if cfg.Direction, err = core.ParseDirection(s.Direction); err != nil {
		return core.Config{}, err
	}
	cfg.CheckpointEvery = s.CheckpointEvery
	if s.WatchdogMillis > 0 {
		cfg.WatchdogTimeout = time.Duration(s.WatchdogMillis) * time.Millisecond
	}
	if s.CheckpointEvery > 0 {
		// The checkpoint gathers are collective, so every process must install
		// a handler symmetrically or the world deadlocks; rank 0's supervisor
		// replaces this noop with its capture hook (Spec.Solve).
		cfg.OnCheckpoint = func(*core.Checkpoint) {}
	}
	if len(s.Checkpoint) > 0 {
		ck, err := core.DecodeCheckpoint(s.Checkpoint)
		if err != nil {
			return core.Config{}, fmt.Errorf("distjob: generation %d resume checkpoint: %w", s.Generation, err)
		}
		cfg.Resume = ck
	}
	if s.ObsSpans || s.ObsSeries || s.ObsMetrics || s.FlightDir != "" {
		opt := obs.Options{Spans: s.ObsSpans || s.FlightDir != "", TimeSeries: s.ObsSeries}
		if s.ObsMetrics {
			opt.Metrics = obs.NewRegistry()
		}
		cfg.Obs = obs.NewCollector(s.Procs, opt)
	}
	return cfg, nil
}

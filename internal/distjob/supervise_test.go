package distjob

// In-process integration test of the full recovery protocol: a real
// Supervise coordinator and real WorkLoop workers, wired over loopback TCP,
// with a deterministic network fault killing generation 0. Everything a
// multi-process deployment does — rendezvous, spec v3 with generation and
// checkpoint, world teardown, re-listen, rejoin — happens here, just with
// goroutines standing in for processes.

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mcmdist/internal/core"
	"mcmdist/internal/mpi"
	"mcmdist/internal/mpi/tcpnet"
	"mcmdist/internal/obs"
)

// TestSuperviseRecoversFromDroppedLink runs a 3-rank supervised solve where
// worker rank 1's link to rank 2 drops mid-solve in generation 0. The
// supervisor must run exactly one restart, every worker must rejoin, and the
// recovered matching must be bit-identical to a clean in-process solve of
// the same spec.
func TestSuperviseRecoversFromDroppedLink(t *testing.T) {
	const procs = 4
	mkSpec := func() *Spec {
		return &Spec{RMAT: "g500", Scale: 7, Seed: 11, Procs: procs, Init: "greedy", CheckpointEvery: 1}
	}

	clean, _, err := mkSpec().Solve(mpi.NewInproc(procs), nil)
	if err != nil {
		t.Fatalf("clean reference solve: %v", err)
	}

	// One injector for the faulty worker, shared across its rejoins: the
	// MaxFires budget (default 1) makes generation 0 fault and generation 1
	// run clean.
	fault := &mpi.NetFaultSpec{DropFrom: 1, DropTo: 2, DropAtFrame: 3}

	addrCh := make(chan string, 1)
	var (
		res   *core.Result
		stats *SuperviseStats
		supErr error
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, stats, supErr = Supervise("127.0.0.1:0", mkSpec(), tcpnet.Options{}, SupervisePolicy{
			Backoff:  10 * time.Millisecond,
			OnListen: func(addr string) { addrCh <- addr },
			Log:      t.Logf,
		})
	}()
	addr := <-addrCh

	workerRes := make([]*core.Result, procs)
	workerErr := make([]error, procs)
	for rank := 1; rank < procs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			opts := tcpnet.Options{}
			if rank == 1 {
				opts.Faults = fault
			}
			workerRes[rank], workerErr[rank] = WorkLoop(addr, rank, opts, t.Logf)
		}(rank)
	}
	wg.Wait()

	if supErr != nil {
		t.Fatalf("supervisor failed: %v (stats %+v)", supErr, stats)
	}
	if stats.Generations != 2 || stats.Restarts != 1 {
		t.Fatalf("generations %d restarts %d, want 2/1 (errors: %v)", stats.Generations, stats.Restarts, stats.Errors)
	}
	if len(stats.Errors) != 1 {
		t.Fatalf("%d generation errors recorded, want 1: %v", len(stats.Errors), stats.Errors)
	}
	if fault.Fired() != 1 {
		t.Fatalf("fault fired %d times, want exactly 1", fault.Fired())
	}
	for rank := 1; rank < procs; rank++ {
		if workerErr[rank] != nil {
			t.Fatalf("worker %d failed: %v", rank, workerErr[rank])
		}
	}

	if res.Stats.Cardinality != clean.Stats.Cardinality {
		t.Fatalf("recovered cardinality %d, clean %d", res.Stats.Cardinality, clean.Stats.Cardinality)
	}
	for i := range clean.Matching.MateR {
		if res.Matching.MateR[i] != clean.Matching.MateR[i] {
			t.Fatalf("MateR[%d] = %d, clean %d", i, res.Matching.MateR[i], clean.Matching.MateR[i])
		}
	}
	// Mate vectors are allgathered, so the workers' final generation holds
	// the same matching the supervisor reports.
	for rank := 1; rank < procs; rank++ {
		if workerRes[rank].Stats.Cardinality != clean.Stats.Cardinality {
			t.Fatalf("worker %d cardinality %d, clean %d", rank, workerRes[rank].Stats.Cardinality, clean.Stats.Cardinality)
		}
	}
}

// TestSuperviseCleanRunNoRestart pins the no-fault path: one generation, no
// restarts, result identical to the in-process reference.
func TestSuperviseCleanRunNoRestart(t *testing.T) {
	const procs = 4
	mkSpec := func() *Spec {
		return &Spec{RMAT: "er", Scale: 6, Seed: 4, Procs: procs, Init: "karpsipser", CheckpointEvery: 1}
	}
	clean, _, err := mkSpec().Solve(mpi.NewInproc(procs), nil)
	if err != nil {
		t.Fatalf("clean reference solve: %v", err)
	}

	addrCh := make(chan string, 1)
	var (
		res    *core.Result
		stats  *SuperviseStats
		supErr error
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, stats, supErr = Supervise("127.0.0.1:0", mkSpec(), tcpnet.Options{}, SupervisePolicy{
			OnListen: func(addr string) { addrCh <- addr },
		})
	}()
	addr := <-addrCh
	workerRes := make([]*core.Result, procs)
	workerErr := make([]error, procs)
	for rank := 1; rank < procs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			workerRes[rank], workerErr[rank] = WorkLoop(addr, rank, tcpnet.Options{}, nil)
		}(rank)
	}
	wg.Wait()

	if supErr != nil {
		t.Fatalf("supervisor failed: %v", supErr)
	}
	if stats.Generations != 1 || stats.Restarts != 0 || len(stats.Errors) != 0 {
		t.Fatalf("clean run stats %+v, want one generation, no restarts", stats)
	}
	for rank := 1; rank < procs; rank++ {
		if workerErr[rank] != nil {
			t.Fatalf("worker %d failed: %v", rank, workerErr[rank])
		}
		if workerRes[rank].Stats.Cardinality != clean.Stats.Cardinality {
			t.Fatalf("worker %d cardinality %d, clean %d", rank, workerRes[rank].Stats.Cardinality, clean.Stats.Cardinality)
		}
	}
	if res.Stats.Cardinality != clean.Stats.Cardinality {
		t.Fatalf("supervisor cardinality %d, clean %d", res.Stats.Cardinality, clean.Stats.Cardinality)
	}
}

// TestSuperviseFlightRecorder runs a supervised solve whose generation 0
// dies of a dropped link, with the flight recorder and the observability
// planes on. The failed generation must leave decodable dumps in the
// flight directory — the supervisor's post-mortem bundle — and the
// recovered generation's collector must hold the merged whole-world
// observation.
func TestSuperviseFlightRecorder(t *testing.T) {
	const procs = 4
	dir := t.TempDir()
	mkSpec := func() *Spec {
		return &Spec{
			RMAT: "g500", Scale: 7, Seed: 11, Procs: procs, Init: "greedy",
			CheckpointEvery: 1,
			ObsSpans:        true, ObsSeries: true, ObsMetrics: true,
			FlightDir: dir,
		}
	}
	fault := &mpi.NetFaultSpec{DropFrom: 1, DropTo: 2, DropAtFrame: 3}

	addrCh := make(chan string, 1)
	var (
		stats  *SuperviseStats
		supErr error
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, stats, supErr = Supervise("127.0.0.1:0", mkSpec(), tcpnet.Options{}, SupervisePolicy{
			Backoff:  10 * time.Millisecond,
			OnListen: func(addr string) { addrCh <- addr },
			Log:      t.Logf,
		})
	}()
	addr := <-addrCh
	for rank := 1; rank < procs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			opts := tcpnet.Options{}
			if rank == 1 {
				opts.Faults = fault
			}
			WorkLoop(addr, rank, opts, t.Logf)
		}(rank)
	}
	wg.Wait()

	if supErr != nil {
		t.Fatalf("supervisor failed: %v (stats %+v)", supErr, stats)
	}
	if stats.Restarts != 1 {
		t.Fatalf("restarts %d, want 1 (errors: %v)", stats.Restarts, stats.Errors)
	}

	// The failed generation left dumps; every one decodes, is stamped with
	// generation 0, and carries a cause plus its rank's final span.
	if len(stats.FlightDumps) == 0 {
		t.Fatal("no flight dumps after a failed generation")
	}
	withSpans := 0
	for _, path := range stats.FlightDumps {
		d, err := obs.ReadFlightDump(path)
		if err != nil {
			t.Fatalf("dump %s does not decode: %v", path, err)
		}
		if d.Gen != 0 {
			t.Errorf("dump %s from generation %d, want 0", path, d.Gen)
		}
		if d.Cause == "" {
			t.Errorf("dump %s has no cause", path)
		}
		if len(d.Ranks) == 0 {
			t.Errorf("dump %s carries no ranks", path)
			continue
		}
		if _, ok := d.LastSpan(d.Ranks[0].Rank); ok {
			withSpans++
		}
		if want := filepath.Join(dir, "flight-g0-r"); !strings.HasPrefix(path, want) {
			t.Errorf("dump path %s does not match the versioned naming %s*", path, want)
		}
	}
	// A rank that aborted before finishing any span dumps an empty tail —
	// legal — but the world died mid-solve, so somebody was mid-flight.
	if withSpans == 0 {
		t.Error("no dump carries a final span; the flight tails are all empty")
	}

	// The recovered generation's collector holds the merged world: spans
	// and samples for every rank, on the supervisor's side alone.
	if stats.Obs == nil {
		t.Fatal("no collector on SuperviseStats despite obs fields set")
	}
	for r := 0; r < procs; r++ {
		if len(stats.Obs.Tracer(r).Spans()) == 0 {
			t.Errorf("supervisor collector has no spans for rank %d", r)
		}
		if len(stats.Obs.Recorder(r).Samples()) == 0 {
			t.Errorf("supervisor collector has no samples for rank %d", r)
		}
	}
}

// TestSuperviseTerminalErrorSurfacesImmediately pins that a non-restartable
// failure is not retried into a restart storm: a rendezvous that never fills
// (no worker ever dials) is not a transport-plane death of a running world,
// so the supervisor surfaces it after a single generation.
func TestSuperviseTerminalErrorSurfacesImmediately(t *testing.T) {
	spec := &Spec{RMAT: "g500", Scale: 6, Seed: 1, Procs: 2, CheckpointEvery: 1}
	opts := tcpnet.Options{DialTimeout: 300 * time.Millisecond}
	_, stats, err := Supervise("127.0.0.1:0", spec, opts, SupervisePolicy{
		MaxRestarts: 3,
		Backoff:     time.Millisecond,
	})
	if err == nil {
		t.Fatal("supervisor succeeded with no workers")
	}
	if stats.Generations != 1 || stats.Restarts != 0 {
		t.Fatalf("empty rendezvous ran %d generations, %d restarts — want 1/0 (terminal)",
			stats.Generations, stats.Restarts)
	}
}

package distjob

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mcmdist/internal/core"
	"mcmdist/internal/rmat"
	"mcmdist/internal/semiring"
)

// TestRoundTrip pins that Encode/Decode is lossless and version-stamped.
func TestRoundTrip(t *testing.T) {
	s := &Spec{
		RMAT: "ssca", Scale: 9, EdgeFactor: 8, Seed: 42,
		Procs: 4, Threads: 6,
		Init: "karpsipser", Semiring: "randroot", Augment: "level",
		Engine:  "auction",
		NoPrune: true, DirectionOptimized: true, Graft: true, NoPermute: true,
	}
	blob, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := *s
	want.V = Version
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, want)
	}
}

// TestDecodeRejects pins the decoder's failure modes: empty blobs, garbage,
// unknown versions and invalid field values.
func TestDecodeRejects(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("accepted empty blob")
	}
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := Decode([]byte(`{"v":99,"rmat":"g500","procs":4}`)); err == nil {
		t.Error("accepted unknown version")
	}
	bad := []string{
		fmt.Sprintf(`{"v":%d,"procs":4}`, Version),                                   // no source
		fmt.Sprintf(`{"v":%d,"rmat":"g500","matrix":"road_usa","procs":4}`, Version), // two sources
		fmt.Sprintf(`{"v":%d,"rmat":"g500","procs":0}`, Version),                     // bad procs
		fmt.Sprintf(`{"v":%d,"rmat":"bogus","procs":4}`, Version),                    // bad class
		fmt.Sprintf(`{"v":%d,"rmat":"g500","procs":4,"init":"x"}`, Version),          // bad init
		fmt.Sprintf(`{"v":%d,"rmat":"g500","procs":4,"semiring":"x"}`, Version),      // bad semiring
		fmt.Sprintf(`{"v":%d,"rmat":"g500","procs":4,"augment":"x"}`, Version),       // bad augment
		fmt.Sprintf(`{"v":%d,"rmat":"g500","procs":4,"engine":"x"}`, Version),        // bad engine
	}
	for _, blob := range bad {
		if _, err := Decode([]byte(blob)); err == nil {
			t.Errorf("accepted %s", blob)
		}
	}
}

// TestBuildMatrix pins that the spec rebuilds the same matrices as direct
// generator calls, including the class-default edge factor.
func TestBuildMatrix(t *testing.T) {
	s := &Spec{RMAT: "g500", Scale: 6, Seed: 3, Procs: 1}
	a, err := s.BuildMatrix()
	if err != nil {
		t.Fatal(err)
	}
	want := rmat.MustGenerate(rmat.G500, 6, 32, 3)
	if fmt.Sprint(a.ColPtr) != fmt.Sprint(want.ColPtr) || fmt.Sprint(a.RowIdx) != fmt.Sprint(want.RowIdx) {
		t.Fatal("rmat spec diverges from direct generation")
	}

	mtxSrc := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
	s = &Spec{MTX: mtxSrc, Procs: 1}
	a, err = s.BuildMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if a.NRows != 2 || a.NCols != 2 || a.NNZ() != 2 {
		t.Fatalf("embedded mtx built %dx%d nnz %d", a.NRows, a.NCols, a.NNZ())
	}
	if !strings.Contains(mtxSrc, "MatrixMarket") {
		t.Fatal("unreachable")
	}
}

// TestCoreConfig pins the name-to-enum mapping.
func TestCoreConfig(t *testing.T) {
	s := &Spec{
		RMAT: "er", Scale: 5, Seed: 9,
		Procs: 9, Threads: 2,
		Init: "greedy", Semiring: "randparent", Augment: "path",
		NoPrune: true, Graft: true, NoPermute: true,
	}
	cfg, err := s.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Procs != 9 || cfg.Threads != 2 || cfg.Seed != 9 {
		t.Fatalf("sizing: %+v", cfg)
	}
	if cfg.Init != core.InitGreedy || cfg.AddOp != semiring.RandParent || cfg.Augment != core.AugmentPathParallel {
		t.Fatalf("enums: %+v", cfg)
	}
	if !cfg.DisablePrune || !cfg.TreeGrafting || cfg.Permute {
		t.Fatalf("bools: %+v", cfg)
	}

	// Defaults mirror cmd/mcm's flag defaults.
	cfg, err = (&Spec{RMAT: "g500", Procs: 4}).CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Init != core.InitDynMinDegree || cfg.AddOp != semiring.MinParent || cfg.Augment != core.AugmentAuto || !cfg.Permute {
		t.Fatalf("defaults: %+v", cfg)
	}

	// The engine name flows through verbatim (resolution happens in core,
	// identically on every process).
	cfg, err = (&Spec{RMAT: "g500", Procs: 4, Engine: "auction"}).CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Engine != core.EngineAuction {
		t.Fatalf("engine not forwarded: %+v", cfg)
	}
}

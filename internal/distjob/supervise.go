// Coordinator-led world restart: the recovery protocol that lets a solve
// spanning OS processes survive a killed worker, a dropped link, or a
// partition. The coordinator (Supervise) owns a generation counter; each
// generation is one complete world — rendezvous, solve attempt, teardown.
// When an attempt dies of a restartable failure, the coordinator re-listens
// on the same address and re-runs the rendezvous with a spec carrying the
// bumped generation and the freshest phase-boundary checkpoint; surviving
// workers (WorkLoop) rejoin, and a SIGKILLed worker's slot is filled by
// whatever replacement process dials in. The MCM-DIST invariant — any valid
// matching is a legal starting state — is what makes the resumed generation
// correct: it restores the checkpoint's matching and continues as if the
// checkpoint had been its initializer.
package distjob

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"mcmdist/internal/core"
	"mcmdist/internal/mpi"
	"mcmdist/internal/mpi/tcpnet"
	"mcmdist/internal/obs"
)

// SupervisePolicy bounds the coordinator's restart loop.
type SupervisePolicy struct {
	// MaxRestarts is how many fresh generations a failed world may get
	// before the last error is surfaced. Zero means 3.
	MaxRestarts int
	// Backoff is the pause before re-listening for the next generation
	// (letting the failed generation's sockets die down), doubling each
	// restart up to MaxBackoff. Zero means 50ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero means 2s.
	MaxBackoff time.Duration
	// Log, when non-nil, receives one progress line per generation event.
	Log func(format string, args ...any)
	// OnListen, when non-nil, receives the pinned rendezvous address once
	// the first generation's listener is up — the address workers must
	// Join. With an explicit addr it echoes it; with ":0" it is the only
	// way to learn the kernel-chosen port (the in-process tests depend on
	// this; a deployment would pass a concrete address).
	OnListen func(addr string)
}

func (p SupervisePolicy) withDefaults() SupervisePolicy {
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Log == nil {
		p.Log = func(string, ...any) {}
	}
	return p
}

// SuperviseStats reports what the supervisor did across generations.
type SuperviseStats struct {
	// Generations counts worlds run (1 when no restart was needed);
	// Restarts is Generations minus one unless the last world also failed.
	Generations, Restarts int
	// ResumedPhase is the phase the final generation restarted from
	// (0 when it started fresh or from the initializer snapshot).
	ResumedPhase int
	// Errors collects each failed generation's error, in order.
	Errors []error
	// FlightDumps lists the flight-recorder dump files accumulated in the
	// spec's FlightDir across failed generations — the coordinator's own
	// dumps plus those of any worker sharing the directory — sorted by
	// path, so the post-mortem bundle of a recovered solve survives the
	// generations that produced it.
	FlightDumps []string
	// Obs is the final generation's collector (nil when the spec enables no
	// observability): after a successful generation it holds the merged
	// whole-world observation, ready for WriteTrace and friends.
	Obs *obs.Collector
}

// collectFlightDumps scans dir for flight-recorder dumps and folds any new
// paths into the stats, keeping the list sorted and duplicate-free.
func (st *SuperviseStats) collectFlightDumps(dir string) {
	if dir == "" {
		return
	}
	paths, err := filepath.Glob(filepath.Join(dir, "flight-g*.dump"))
	if err != nil {
		return
	}
	have := make(map[string]bool, len(st.FlightDumps))
	for _, p := range st.FlightDumps {
		have[p] = true
	}
	for _, p := range paths {
		if !have[p] {
			st.FlightDumps = append(st.FlightDumps, p)
		}
	}
	sort.Strings(st.FlightDumps)
}

// Supervise is the coordinator side of a recoverable multi-process solve:
// rank 0's supervisor loop. Each generation it listens on addr, coordinates
// a spec.Procs-rank rendezvous shipping the spec (stamped with the
// generation number and, after a failure, the freshest checkpoint), runs
// rank 0's share of the solve, and tears the world down. Failures that
// mpi.Restartable classifies as transport-level start the next generation;
// anything else — an algorithm error, a genuine panic — surfaces
// immediately, because restarting would only reproduce it.
//
// The spec's CheckpointEvery should be positive for restarts to resume
// mid-solve; with checkpointing off a restarted generation simply starts
// from scratch. Supervise overwrites spec.Recover, spec.Generation,
// spec.MaxRestarts and spec.Checkpoint; everything else is the caller's.
func Supervise(addr string, spec *Spec, opts tcpnet.Options, pol SupervisePolicy) (*core.Result, *SuperviseStats, error) {
	pol = pol.withDefaults()
	stats := &SuperviseStats{}
	spec.Recover = true
	spec.MaxRestarts = pol.MaxRestarts

	var last *core.Checkpoint
	backoff := pol.Backoff
	for gen := 0; ; gen++ {
		stats.Generations++
		spec.Generation = gen
		spec.Checkpoint = nil
		if last != nil {
			spec.Checkpoint = last.Encode()
			stats.ResumedPhase = last.Phase
		}
		blob, err := spec.Encode()
		if err != nil {
			return nil, stats, err
		}
		rv, err := tcpnet.Listen(addr, opts)
		if err != nil {
			return nil, stats, fmt.Errorf("distjob: generation %d listen: %w", gen, err)
		}
		if gen == 0 {
			// Pin the kernel-chosen port (":0" listens) so every later
			// generation rendezvouses at the address the workers know.
			addr = rv.Addr()
			if pol.OnListen != nil {
				pol.OnListen(addr)
			}
		}
		pol.Log("generation %d: coordinating %d-rank world at %s", gen, spec.Procs, addr)
		res, col, err := superviseGeneration(rv, spec, blob, &last)
		stats.Obs = col
		if err == nil {
			pol.Log("generation %d: solve complete", gen)
			return res, stats, nil
		}
		stats.Errors = append(stats.Errors, err)
		stats.collectFlightDumps(spec.FlightDir)
		if !mpi.Restartable(err) {
			return nil, stats, fmt.Errorf("distjob: generation %d failed terminally: %w", gen, err)
		}
		if stats.Restarts >= pol.MaxRestarts {
			return nil, stats, fmt.Errorf("distjob: giving up after %d generations: %w", stats.Generations, err)
		}
		stats.Restarts++
		resume := "from scratch"
		if last != nil {
			resume = fmt.Sprintf("from phase %d checkpoint", last.Phase)
		}
		pol.Log("generation %d failed (%v); restarting %s", gen, err, resume)
		time.Sleep(backoff)
		if backoff *= 2; backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}

// superviseGeneration runs one world: coordinate the rendezvous, solve rank
// 0's share, capture the freshest checkpoint, and always tear the endpoint
// down before returning so the next generation can re-listen cleanly.
func superviseGeneration(rv *tcpnet.Rendezvous, spec *Spec, blob []byte, last **core.Checkpoint) (*core.Result, *obs.Collector, error) {
	n, err := rv.Coordinate(spec.Procs, blob)
	if err != nil {
		rv.Close()
		return nil, nil, fmt.Errorf("distjob: rendezvous: %w", err)
	}
	defer n.Close()
	return spec.Solve(n, func(ck *core.Checkpoint) { *last = ck })
}

// WorkLoop is the worker side of a recoverable multi-process solve: Join the
// rendezvous, solve, and — when the job is supervised and the attempt died
// of a restartable failure — rejoin for the next generation, until a
// generation completes or fails terminally. With an unsupervised job
// (spec.Recover false, as every pre-v3 coordinator ships) it behaves exactly
// like a single Join+Run: any failure surfaces immediately.
//
// Join's dial retry bridges the gap while the coordinator tears down the
// failed world and re-listens; a Join failure after the retry window means
// the coordinator is gone (it finished, gave up, or died), and its error
// surfaces alongside the generation's.
func WorkLoop(addr string, rank int, opts tcpnet.Options, logf func(format string, args ...any)) (*core.Result, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for {
		n, blob, err := tcpnet.Join(addr, rank, opts)
		if err != nil {
			return nil, err
		}
		spec, err := Decode(blob)
		if err != nil {
			n.Close()
			return nil, err
		}
		if spec.Generation > 0 {
			logf("rejoined as generation %d", spec.Generation)
		}
		res, _, err := spec.Solve(n, nil)
		n.Close()
		if err == nil {
			return res, nil
		}
		if !spec.Recover || !mpi.Restartable(err) {
			return nil, err
		}
		logf("generation %d failed (%v); rejoining %s", spec.Generation, err, addr)
	}
}

package gen

import (
	"testing"
)

func TestSuiteHasThirteenEntries(t *testing.T) {
	s := Suite()
	if len(s) != 13 {
		t.Fatalf("suite has %d entries, want 13 (Table II)", len(s))
	}
	seen := map[string]bool{}
	for _, sp := range s {
		if seen[sp.Name] {
			t.Fatalf("duplicate name %q", sp.Name)
		}
		seen[sp.Name] = true
	}
}

func TestFindSpec(t *testing.T) {
	sp, err := FindSpec("road_usa")
	if err != nil || sp.Class != ClassRoad {
		t.Fatalf("FindSpec(road_usa) = %+v, %v", sp, err)
	}
	if _, err := FindSpec("definitely-not-a-matrix"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestGenerateAllClassesSmall(t *testing.T) {
	for _, sp := range Suite() {
		m, err := Generate(sp, 8)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if m.NRows == 0 || m.NCols == 0 || m.NNZ() == 0 {
			t.Fatalf("%s: degenerate matrix %dx%d nnz=%d", sp.Name, m.NRows, m.NCols, m.NNZ())
		}
		// Structural sanity: every nonzero in range is implied by CSC
		// construction; check average degree is in a plausible sparse range.
		avg := float64(m.NNZ()) / float64(m.NCols)
		if avg < 0.5 || avg > 64 {
			t.Fatalf("%s: average column degree %.1f outside sparse regime", sp.Name, avg)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, sp := range Suite()[:4] {
		a := MustGenerate(sp, 8)
		b := MustGenerate(sp, 8)
		if !a.Equal(b) {
			t.Fatalf("%s: not deterministic", sp.Name)
		}
	}
}

func TestGenerateScaleBounds(t *testing.T) {
	sp := Suite()[0]
	if _, err := Generate(sp, 3); err == nil {
		t.Error("scale 3 accepted")
	}
	if _, err := Generate(sp, 27); err == nil {
		t.Error("scale 27 accepted")
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassRoad: "road", ClassTriangulation: "triangulation", ClassBanded: "banded",
		ClassPowerLaw: "powerlaw", ClassCircuit: "circuit", ClassKKT: "kkt",
		ClassCoPurchase: "copurchase",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Errorf("unknown class string = %q", Class(99).String())
	}
}

func TestRoadIsSymmetricAndSparse(t *testing.T) {
	sp, _ := FindSpec("road_usa")
	m := MustGenerate(sp, 10)
	if !m.Equal(m.Transpose()) {
		t.Fatal("road graph not symmetric")
	}
	avg := float64(m.NNZ()) / float64(m.NCols)
	if avg > 4 {
		t.Fatalf("road average degree %.2f too high", avg)
	}
}

func TestTriangulationDegreeRegime(t *testing.T) {
	sp, _ := FindSpec("delaunay_n24")
	m := MustGenerate(sp, 10)
	if !m.Equal(m.Transpose()) {
		t.Fatal("triangulation not symmetric")
	}
	avg := float64(m.NNZ()) / float64(m.NCols)
	if avg < 4 || avg > 7 {
		t.Fatalf("triangulation average degree %.2f, want ~6", avg)
	}
}

func TestKKTTrailingBlockEmpty(t *testing.T) {
	sp, _ := FindSpec("nlpkkt200")
	m := MustGenerate(sp, 10)
	nH := (2 * m.NCols) / 3
	for j := nH; j < m.NCols; j++ {
		for _, i := range m.Col(j) {
			if i >= nH {
				t.Fatalf("KKT (2,2) block has entry (%d,%d)", i, j)
			}
		}
	}
}

func TestKKTIsSymmetric(t *testing.T) {
	sp, _ := FindSpec("kkt_power")
	m := MustGenerate(sp, 9)
	if !m.Equal(m.Transpose()) {
		t.Fatal("KKT pattern not symmetric")
	}
}

func TestBandedHasFullDiagonal(t *testing.T) {
	sp, _ := FindSpec("cage15")
	m := MustGenerate(sp, 9)
	for i := 0; i < m.NRows; i++ {
		if !m.Has(i, i) {
			t.Fatalf("banded matrix missing diagonal at %d", i)
		}
	}
}

func TestCircuitHasFullDiagonal(t *testing.T) {
	sp, _ := FindSpec("rajat31")
	m := MustGenerate(sp, 9)
	for i := 0; i < m.NRows; i++ {
		if !m.Has(i, i) {
			t.Fatalf("circuit matrix missing diagonal at %d", i)
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	sp, _ := FindSpec("wikipedia-20070206")
	m := MustGenerate(sp, 11)
	maxDeg := 0
	for j := 0; j < m.NCols; j++ {
		if d := m.ColDegree(j); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(m.NNZ()) / float64(m.NCols)
	if float64(maxDeg) < 10*avg {
		t.Fatalf("power-law max degree %d not skewed vs avg %.1f", maxDeg, avg)
	}
}

// Package gen generates deterministic structural stand-ins for the 13
// University of Florida (SuiteSparse) matrices of the paper's Table II. The
// collection itself is not available offline, so each matrix is replaced by a
// synthetic generator reproducing its structural class — sparsity, degree
// distribution, diameter regime, and (after a maximal matching) a nontrivial
// number of unmatched vertices, which is the selection criterion the paper
// states for its test set.
//
// The `scale` parameter controls size: a stand-in has on the order of
// 2^scale vertices per side, so the suite can be sized down for unit tests
// and up for benchmarks. Every generator is deterministic in (scale, seed).
package gen

import (
	"fmt"
	"math/rand"

	"mcmdist/internal/rmat"
	"mcmdist/internal/spmat"
)

// Class identifies the structural family of a stand-in matrix.
type Class int

const (
	// ClassRoad is a near-planar road network: tiny average degree,
	// enormous diameter (road_usa, europe_osm).
	ClassRoad Class = iota
	// ClassTriangulation is a planar triangulation: average degree ~6,
	// large diameter (delaunay_n24, hugetrace-00020).
	ClassTriangulation
	// ClassBanded is a banded substitution-like matrix with regular row
	// degrees (cage15).
	ClassBanded
	// ClassPowerLaw is a skewed, scale-free link graph (wikipedia,
	// ljournal-2008, wb-edu).
	ClassPowerLaw
	// ClassCircuit is a circuit simulation matrix: strong diagonal,
	// sparse off-diagonals, a few dense rows/columns (Freescale1, rajat31).
	ClassCircuit
	// ClassKKT is a saddle-point KKT system with an empty trailing
	// diagonal block (nlpkkt200, kkt_power).
	ClassKKT
	// ClassCoPurchase is a product co-purchase network with local
	// clustering plus random long links (amazon-2008).
	ClassCoPurchase
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassRoad:
		return "road"
	case ClassTriangulation:
		return "triangulation"
	case ClassBanded:
		return "banded"
	case ClassPowerLaw:
		return "powerlaw"
	case ClassCircuit:
		return "circuit"
	case ClassKKT:
		return "kkt"
	case ClassCoPurchase:
		return "copurchase"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Spec names one Table II stand-in.
type Spec struct {
	Name  string // the paper's matrix name
	Class Class
	Seed  int64 // base seed, so each stand-in differs within a class
}

// Suite returns the 13 stand-ins corresponding to the paper's Table II, in a
// stable order.
func Suite() []Spec {
	return []Spec{
		{Name: "amazon-2008", Class: ClassCoPurchase, Seed: 101},
		{Name: "cage15", Class: ClassBanded, Seed: 102},
		{Name: "delaunay_n24", Class: ClassTriangulation, Seed: 103},
		{Name: "europe_osm", Class: ClassRoad, Seed: 104},
		{Name: "Freescale1", Class: ClassCircuit, Seed: 105},
		{Name: "hugetrace-00020", Class: ClassTriangulation, Seed: 106},
		{Name: "kkt_power", Class: ClassKKT, Seed: 107},
		{Name: "ljournal-2008", Class: ClassPowerLaw, Seed: 108},
		{Name: "nlpkkt200", Class: ClassKKT, Seed: 109},
		{Name: "rajat31", Class: ClassCircuit, Seed: 110},
		{Name: "road_usa", Class: ClassRoad, Seed: 111},
		{Name: "wb-edu", Class: ClassPowerLaw, Seed: 112},
		{Name: "wikipedia-20070206", Class: ClassPowerLaw, Seed: 113},
	}
}

// FindSpec returns the suite entry with the given name.
func FindSpec(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("gen: unknown matrix %q", name)
}

// Generate builds the stand-in for spec at the given scale (roughly 2^scale
// vertices per side). Scale must be in [4, 26].
func Generate(spec Spec, scale int) (*spmat.CSC, error) {
	if scale < 4 || scale > 26 {
		return nil, fmt.Errorf("gen: scale %d out of range [4,26]", scale)
	}
	n := 1 << uint(scale)
	rng := rand.New(rand.NewSource(spec.Seed*1_000_003 + int64(scale)))
	switch spec.Class {
	case ClassRoad:
		return road(n, rng), nil
	case ClassTriangulation:
		return triangulation(n, rng), nil
	case ClassBanded:
		return banded(n, 5, rng), nil
	case ClassPowerLaw:
		return powerLaw(scale, rng), nil
	case ClassCircuit:
		return circuit(n, rng), nil
	case ClassKKT:
		return kkt(n, rng), nil
	case ClassCoPurchase:
		return coPurchase(n, rng), nil
	default:
		return nil, fmt.Errorf("gen: unknown class %v", spec.Class)
	}
}

// MustGenerate is Generate but panics on error, for known-good arguments.
func MustGenerate(spec Spec, scale int) *spmat.CSC {
	m, err := Generate(spec, scale)
	if err != nil {
		panic(err)
	}
	return m
}

// gridSide returns the closest square-ish grid dimensions for n vertices.
func gridSide(n int) (w, h int) {
	w = 1
	for w*w < n {
		w++
	}
	h = (n + w - 1) / w
	return w, h
}

// road builds a symmetric near-planar lattice with dropped edges and rare
// shortcuts, giving average degree ≈ 2.5 and a huge diameter.
func road(n int, rng *rand.Rand) *spmat.CSC {
	w, h := gridSide(n)
	n = w * h
	coo := spmat.NewCOO(n, n)
	add := func(u, v int) {
		coo.Add(u, v)
		coo.Add(v, u)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := y*w + x
			// Drop ~35% of lattice edges to make the network irregular.
			if x+1 < w && rng.Float64() > 0.35 {
				add(u, u+1)
			}
			if y+1 < h && rng.Float64() > 0.35 {
				add(u, u+w)
			}
			// Rare highway shortcut.
			if rng.Float64() < 0.01 {
				add(u, rng.Intn(n))
			}
		}
	}
	return coo.ToCSC()
}

// triangulation builds a symmetric planar-like triangulated grid: lattice
// edges plus one diagonal per cell, average degree ≈ 6.
func triangulation(n int, rng *rand.Rand) *spmat.CSC {
	w, h := gridSide(n)
	n = w * h
	coo := spmat.NewCOO(n, n)
	add := func(u, v int) {
		coo.Add(u, v)
		coo.Add(v, u)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := y*w + x
			if x+1 < w {
				add(u, u+1)
			}
			if y+1 < h {
				add(u, u+w)
			}
			if x+1 < w && y+1 < h {
				if rng.Intn(2) == 0 {
					add(u, u+w+1) // "\" diagonal
				} else {
					add(u+1, u+w) // "/" diagonal
				}
			}
		}
	}
	return coo.ToCSC()
}

// banded builds an unsymmetric band matrix: each row has ~deg nonzeros at
// random offsets within a band, like the cage DNA-electrophoresis family.
func banded(n, deg int, rng *rand.Rand) *spmat.CSC {
	band := 8 * deg
	coo := spmat.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i)
		for k := 0; k < deg-1; k++ {
			off := rng.Intn(2*band+1) - band
			j := i + off
			if j < 0 || j >= n {
				j = i
			}
			coo.Add(i, j)
		}
	}
	return coo.ToCSC()
}

// powerLaw builds a skewed unsymmetric link graph via R-MAT with G500
// parameters at edge factor 8.
func powerLaw(scale int, rng *rand.Rand) *spmat.CSC {
	return rmat.MustGenerate(rmat.G500, scale, 8, rng.Int63())
}

// circuit builds a circuit-like matrix: full diagonal, a few sparse random
// off-diagonals per row, and a handful of dense rows and columns (power and
// ground nets).
func circuit(n int, rng *rand.Rand) *spmat.CSC {
	coo := spmat.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i)
		for k := 0; k < 2; k++ {
			if rng.Float64() < 0.8 {
				coo.Add(i, rng.Intn(n))
			}
		}
	}
	// Dense nets: ~sqrt(n) rows/cols touched by ~sqrt(n) elements each.
	w, _ := gridSide(n)
	for k := 0; k < 4; k++ {
		net := rng.Intn(n)
		for t := 0; t < w; t++ {
			coo.Add(net, rng.Intn(n))
			coo.Add(rng.Intn(n), net)
		}
	}
	return coo.ToCSC()
}

// kkt builds a saddle-point structure [H Aᵀ; A 0]: H is nH x nH sparse SPD-
// patterned, A is nA x nH with ~3 nonzeros per row, and the trailing nA x nA
// block is empty, so structural deficiency is plausible and maximal
// matchings leave many vertices unmatched.
func kkt(n int, rng *rand.Rand) *spmat.CSC {
	nH := (2 * n) / 3
	nA := n - nH
	coo := spmat.NewCOO(n, n)
	for i := 0; i < nH; i++ {
		coo.Add(i, i)
		for k := 0; k < 2; k++ {
			j := rng.Intn(nH)
			coo.Add(i, j)
			coo.Add(j, i)
		}
	}
	for r := 0; r < nA; r++ {
		for k := 0; k < 3; k++ {
			c := rng.Intn(nH)
			coo.Add(nH+r, c) // A
			coo.Add(c, nH+r) // Aᵀ
		}
	}
	return coo.ToCSC()
}

// coPurchase builds an amazon-like directed co-purchase graph: each column
// (product) links to a few locally clustered rows plus occasional random
// rows.
func coPurchase(n int, rng *rand.Rand) *spmat.CSC {
	coo := spmat.NewCOO(n, n)
	for j := 0; j < n; j++ {
		deg := 1 + rng.Intn(8)
		for k := 0; k < deg; k++ {
			var i int
			if rng.Float64() < 0.7 {
				i = j + rng.Intn(201) - 100 // local cluster
				if i < 0 || i >= n {
					i = rng.Intn(n)
				}
			} else {
				i = rng.Intn(n)
			}
			coo.Add(i, j)
		}
	}
	return coo.ToCSC()
}

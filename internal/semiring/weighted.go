package semiring

import "fmt"

// WVertex is the weighted counterpart of Vertex: a (value, id) pair. The
// auction engine folds candidate rows as WVertex{Val: price, Id: row} and
// candidate bids as WVertex{Val: bid, Id: column}; the weighted solvers the
// engine seam leaves room for (maximum-weight matching over a (min, +) or
// (max, +) semiring) use the same carrier.
type WVertex struct {
	Val int64
	Id  int64
}

// WNone is the identity WVertex for folds that may see no candidates: None
// in both fields. Callers test Id against None to detect "no candidate".
var WNone = WVertex{Val: None, Id: None}

// WString formats the pair like Vertex.String: "(val, id)".
func (v WVertex) String() string { return fmt.Sprintf("(%d, %d)", v.Val, v.Id) }

// WOp selects the weighted semiring "addition": which of two (value, id)
// candidates survives a fold. Both orders break value ties toward the
// smaller id, making every fold deterministic regardless of operand order —
// the same SPMD requirement AddOp.Combine satisfies for the BFS semirings.
type WOp int

const (
	// MinVal keeps the candidate with the smaller value (auction: the
	// cheapest row). Ties go to the smaller id.
	MinVal WOp = iota
	// MaxVal keeps the candidate with the larger value (auction: the
	// highest bid). Ties go to the smaller id.
	MaxVal
)

// String names the operation.
func (op WOp) String() string {
	switch op {
	case MinVal:
		return "minVal"
	case MaxVal:
		return "maxVal"
	default:
		return fmt.Sprintf("WOp(%d)", int(op))
	}
}

// Combine returns the surviving candidate of a and b. A WNone operand loses
// to any real candidate (and ties with another WNone). Combine is
// associative and commutative, which the auction's distributed partial-bid
// merges rely on: folding per-rank partials in any grouping yields the same
// winner.
func (op WOp) Combine(a, b WVertex) WVertex {
	if a.Id == None {
		return b
	}
	if b.Id == None {
		return a
	}
	var bWins bool
	switch op {
	case MinVal:
		bWins = b.Val < a.Val || (b.Val == a.Val && b.Id < a.Id)
	case MaxVal:
		bWins = b.Val > a.Val || (b.Val == a.Val && b.Id < a.Id)
	default:
		panic(fmt.Sprintf("semiring: unknown WOp %d", int(op)))
	}
	if bWins {
		return b
	}
	return a
}

// Best2 is a running (best, second-best) pair under a WOp — the fold the
// auction's bid computation needs, since a bidder prices against the
// second-cheapest neighbor. The zero value is not ready; use NewBest2.
type Best2 struct {
	Op     WOp
	First  WVertex
	Second WVertex
}

// NewBest2 returns an empty fold (both slots WNone) under op.
func NewBest2(op WOp) Best2 { return Best2{Op: op, First: WNone, Second: WNone} }

// Add folds one candidate into the pair.
func (b *Best2) Add(v WVertex) {
	if v.Id == None {
		return
	}
	if b.Op.Combine(b.First, v) == v && v.Id != b.First.Id {
		b.First, b.Second = v, b.First
	} else if b.Op.Combine(b.Second, v) == v && v.Id != b.Second.Id {
		b.Second = v
	}
}

// Merge folds another partial pair into this one — the associative merge the
// auction uses to combine per-rank top-2 partials into a global top-2. Two
// partials over disjoint candidate sets merge to the pair a single fold over
// the union would produce.
func (b *Best2) Merge(o Best2) {
	b.Add(o.First)
	b.Add(o.Second)
}

package semiring

import (
	"math/rand"
	"testing"
)

func TestWOpCombineDeterministicTieBreak(t *testing.T) {
	a := WVertex{Val: 5, Id: 2}
	b := WVertex{Val: 5, Id: 7}
	for _, op := range []WOp{MinVal, MaxVal} {
		if got := op.Combine(a, b); got != a {
			t.Fatalf("%v.Combine tie: got %v, want smaller id %v", op, got, a)
		}
		if got := op.Combine(b, a); got != a {
			t.Fatalf("%v.Combine tie (swapped): got %v, want %v", op, got, a)
		}
	}
	if got := MinVal.Combine(WVertex{Val: 1, Id: 9}, b); got.Val != 1 {
		t.Fatalf("MinVal kept %v", got)
	}
	if got := MaxVal.Combine(WVertex{Val: 1, Id: 9}, b); got.Val != 5 {
		t.Fatalf("MaxVal kept %v", got)
	}
}

func TestWOpCombineIdentity(t *testing.T) {
	v := WVertex{Val: 3, Id: 4}
	for _, op := range []WOp{MinVal, MaxVal} {
		if op.Combine(WNone, v) != v || op.Combine(v, WNone) != v {
			t.Fatalf("%v: WNone is not an identity", op)
		}
		if op.Combine(WNone, WNone) != WNone {
			t.Fatalf("%v: WNone fold changed", op)
		}
	}
}

// Combine must be associative and commutative for the distributed partial
// merges to be grouping-independent; exercise it on random triples.
func TestWOpCombineAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, op := range []WOp{MinVal, MaxVal} {
		for trial := 0; trial < 2000; trial++ {
			v := make([]WVertex, 3)
			for i := range v {
				v[i] = WVertex{Val: rng.Int63n(5), Id: rng.Int63n(5)}
			}
			if op.Combine(v[0], v[1]) != op.Combine(v[1], v[0]) {
				t.Fatalf("%v not commutative on %v", op, v)
			}
			l := op.Combine(op.Combine(v[0], v[1]), v[2])
			r := op.Combine(v[0], op.Combine(v[1], v[2]))
			if l != r {
				t.Fatalf("%v not associative on %v: %v vs %v", op, v, l, r)
			}
		}
	}
}

// Best2 partials over disjoint candidate sets must merge to the same pair a
// single sequential fold produces, in any split and order — the property the
// auction's per-rank top-2 reduction depends on.
func TestBest2MergeMatchesSequentialFold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, op := range []WOp{MinVal, MaxVal} {
		for trial := 0; trial < 500; trial++ {
			n := 1 + rng.Intn(12)
			cands := make([]WVertex, n)
			for i := range cands {
				cands[i] = WVertex{Val: rng.Int63n(6), Id: int64(i)}
			}

			seq := NewBest2(op)
			for _, c := range cands {
				seq.Add(c)
			}

			cut := rng.Intn(n + 1)
			left, right := NewBest2(op), NewBest2(op)
			for _, c := range cands[:cut] {
				left.Add(c)
			}
			for _, c := range cands[cut:] {
				right.Add(c)
			}
			merged := left
			merged.Merge(right)
			if merged.First != seq.First || merged.Second != seq.Second {
				t.Fatalf("%v split at %d of %v: merged (%v,%v) vs sequential (%v,%v)",
					op, cut, cands, merged.First, merged.Second, seq.First, seq.Second)
			}
		}
	}
}

func TestBest2SingleAndEmpty(t *testing.T) {
	b := NewBest2(MinVal)
	if b.First != WNone || b.Second != WNone {
		t.Fatalf("empty fold: %+v", b)
	}
	b.Add(WVertex{Val: 9, Id: 1})
	if b.First != (WVertex{Val: 9, Id: 1}) || b.Second != WNone {
		t.Fatalf("single fold: %+v", b)
	}
	b.Add(WNone) // identity must not displace anything
	if b.Second != WNone {
		t.Fatalf("WNone displaced second: %+v", b)
	}
}

package semiring

import (
	"testing"
	"testing/quick"
)

func TestSelf(t *testing.T) {
	v := Self(5)
	if v.Parent != 5 || v.Root != 5 {
		t.Fatalf("Self(5) = %v", v)
	}
}

func TestVertexString(t *testing.T) {
	if got := New(2, 7).String(); got != "(2, 7)" {
		t.Fatalf("String = %q", got)
	}
}

func TestAddOpString(t *testing.T) {
	if MinParent.String() != "minParent" || RandRoot.String() != "randRoot" ||
		RandParent.String() != "randParent" || MinRoot.String() != "minRoot" {
		t.Fatal("AddOp names wrong")
	}
	if AddOp(9).String() != "AddOp(9)" {
		t.Fatal("unknown AddOp name wrong")
	}
}

func TestMinParentCombine(t *testing.T) {
	a, b := New(3, 10), New(1, 20)
	if got := MinParent.Combine(a, b); got != b {
		t.Fatalf("Combine = %v, want %v", got, b)
	}
	if got := MinParent.Combine(b, a); got != b {
		t.Fatalf("Combine reversed = %v, want %v", got, b)
	}
}

func TestCombineCommutative(t *testing.T) {
	for _, op := range []AddOp{MinParent, RandRoot, RandParent, MinRoot} {
		f := func(p1, r1, p2, r2 int16) bool {
			a, b := New(int64(p1), int64(r1)), New(int64(p2), int64(r2))
			return op.Combine(a, b) == op.Combine(b, a)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v not commutative: %v", op, err)
		}
	}
}

func TestCombineAssociative(t *testing.T) {
	for _, op := range []AddOp{MinParent, RandRoot, RandParent, MinRoot} {
		f := func(p1, r1, p2, r2, p3, r3 int16) bool {
			a, b, c := New(int64(p1), int64(r1)), New(int64(p2), int64(r2)), New(int64(p3), int64(r3))
			return op.Combine(op.Combine(a, b), c) == op.Combine(a, op.Combine(b, c))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v not associative: %v", op, err)
		}
	}
}

func TestCombineIdempotent(t *testing.T) {
	for _, op := range []AddOp{MinParent, RandRoot, RandParent, MinRoot} {
		f := func(p, r int16) bool {
			a := New(int64(p), int64(r))
			return op.Combine(a, a) == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v not idempotent: %v", op, err)
		}
	}
}

func TestCombineClosed(t *testing.T) {
	// The winner must be one of the two candidates, never a mixture.
	for _, op := range []AddOp{MinParent, RandRoot, RandParent, MinRoot} {
		f := func(p1, r1, p2, r2 int16) bool {
			a, b := New(int64(p1), int64(r1)), New(int64(p2), int64(r2))
			got := op.Combine(a, b)
			return got == a || got == b
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v not closed: %v", op, err)
		}
	}
}

func TestRandRootSpreads(t *testing.T) {
	// Across many pairwise contests, randRoot should not systematically favor
	// the smaller root (that would be minRoot, not randRoot).
	smallerWins := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		a, b := New(0, int64(i)), New(1, int64(i+trials))
		if RandRoot.Combine(a, b).Root == a.Root {
			smallerWins++
		}
	}
	if smallerWins < trials/4 || smallerWins > 3*trials/4 {
		t.Fatalf("randRoot favored smaller root %d/%d times", smallerWins, trials)
	}
}

func TestMultiplySelect2nd(t *testing.T) {
	x := New(99, 42) // frontier entry: parent 99, root 42
	got := Multiply(7, x)
	if got.Parent != 7 {
		t.Fatalf("Multiply parent = %d, want frontier column 7", got.Parent)
	}
	if got.Root != 42 {
		t.Fatalf("Multiply root = %d, want inherited 42", got.Root)
	}
}

func TestMixDeterministic(t *testing.T) {
	if mix(12345) != mix(12345) {
		t.Fatal("mix not deterministic")
	}
	if mix(1) == mix(2) {
		t.Fatal("mix(1) == mix(2): suspicious collision")
	}
}

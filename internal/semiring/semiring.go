// Package semiring defines the VERTEX data structure and the BFS semirings
// of the paper (Section III-B). The MS-BFS frontier stores a (parent, root)
// pair per vertex; SpMV "multiplication" is select2nd — the discovered row
// vertex adopts the frontier column as parent and inherits its root — and
// "addition" picks one winner among competing discoveries: the minimum
// parent, a pseudo-random root, or a pseudo-random parent.
package semiring

import "fmt"

// None marks an unmatched / unvisited / missing value in all vectors, the
// paper's "-1".
const None int64 = -1

// Vertex is the paper's VERTEX data structure: the (parent, root) pair
// carried by each frontier entry. Roots are inherited from parents along
// alternating trees; parents are rewritten at every BFS level.
type Vertex struct {
	Parent int64
	Root   int64
}

// New returns a Vertex with the given parent and root.
func New(parent, root int64) Vertex { return Vertex{Parent: parent, Root: root} }

// Self returns the Vertex (v, v), used when a phase starts and each
// unmatched column is its own parent and root.
func Self(v int64) Vertex { return Vertex{Parent: v, Root: v} }

// String formats the vertex like the paper's figures: "(parent, root)".
func (v Vertex) String() string { return fmt.Sprintf("(%d, %d)", v.Parent, v.Root) }

// AddOp selects the semiring "addition": which of two competing (parent,
// root) candidates survives when several frontier columns discover the same
// row vertex.
type AddOp int

const (
	// MinParent keeps the candidate with the smaller parent index, the
	// (select2nd, minParent) semiring used in the paper's running example.
	MinParent AddOp = iota
	// RandRoot keeps a pseudo-random candidate keyed by root, the
	// (select2nd, randRoot) semiring; the paper recommends it to balance
	// alternating-tree sizes.
	RandRoot
	// RandParent keeps a pseudo-random candidate keyed by parent.
	RandParent
	// MinRoot keeps the candidate with the smaller root. The distributed
	// dynamic-mindegree initializer uses it with degrees encoded in the
	// root field, so each row picks its minimum-degree neighbor column.
	MinRoot
)

// String names the operation.
func (op AddOp) String() string {
	switch op {
	case MinParent:
		return "minParent"
	case RandRoot:
		return "randRoot"
	case RandParent:
		return "randParent"
	case MinRoot:
		return "minRoot"
	default:
		return fmt.Sprintf("AddOp(%d)", int(op))
	}
}

// mix is a splitmix64-style finalizer: a deterministic hash giving the
// pseudo-random total order used by RandRoot and RandParent. Determinism
// matters: every rank must resolve a tie identically.
func mix(x int64) uint64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Combine returns the surviving candidate of a and b. It is associative and
// commutative for every AddOp, which SpMV's fold phase relies on.
func (op AddOp) Combine(a, b Vertex) Vertex {
	switch op {
	case MinParent:
		if b.Parent < a.Parent {
			return b
		}
		return a
	case RandRoot:
		ha, hb := mix(a.Root), mix(b.Root)
		if hb < ha || (hb == ha && b.Parent < a.Parent) {
			return b
		}
		return a
	case RandParent:
		ha, hb := mix(a.Parent), mix(b.Parent)
		if hb < ha || (hb == ha && b.Root < a.Root) {
			return b
		}
		return a
	case MinRoot:
		if b.Root < a.Root || (b.Root == a.Root && b.Parent < a.Parent) {
			return b
		}
		return a
	default:
		panic(fmt.Sprintf("semiring: unknown AddOp %d", int(op)))
	}
}

// Multiply is the semiring "multiplication" select2nd specialized for BFS
// frontier expansion: the product of matrix entry A(i, j) with frontier
// value x(j) is a Vertex whose parent is the frontier column j and whose
// root is inherited from x(j).
func Multiply(j int64, x Vertex) Vertex { return Vertex{Parent: j, Root: x.Root} }

package grid

import (
	"fmt"
	"testing"

	"mcmdist/internal/mpi"
)

func TestSquare(t *testing.T) {
	cases := map[int]int{0: 0, -3: 0, 1: 1, 2: 1, 3: 1, 4: 2, 8: 2, 9: 3, 15: 3, 16: 4, 24: 4, 25: 5, 10000: 100}
	for p, want := range cases {
		if got := Square(p); got != want {
			t.Errorf("Square(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestNewRejectsBadShape(t *testing.T) {
	_, err := mpi.Run(4, func(c *mpi.Comm) error {
		if _, err := New(c, 3, 2); err == nil {
			return fmt.Errorf("3x2 accepted on 4 ranks")
		}
		// Must still be collectively consistent: no split happened, fine.
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewSquareRejectsNonSquare(t *testing.T) {
	_, err := mpi.Run(6, func(c *mpi.Comm) error {
		if _, err := NewSquare(c); err == nil {
			return fmt.Errorf("6 ranks accepted as square")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGridCoordinates(t *testing.T) {
	_, err := mpi.Run(6, func(c *mpi.Comm) error {
		g, err := New(c, 2, 3)
		if err != nil {
			return err
		}
		if g.MyRow != c.Rank()/3 || g.MyCol != c.Rank()%3 {
			return fmt.Errorf("rank %d at (%d,%d)", c.Rank(), g.MyRow, g.MyCol)
		}
		if g.Row.Size() != 3 || g.Col.Size() != 2 {
			return fmt.Errorf("row size %d col size %d", g.Row.Size(), g.Col.Size())
		}
		if g.Row.Rank() != g.MyCol || g.Col.Rank() != g.MyRow {
			return fmt.Errorf("sub-comm ranks (%d,%d) vs coords (%d,%d)",
				g.Row.Rank(), g.Col.Rank(), g.MyCol, g.MyRow)
		}
		if g.RankAt(g.MyRow, g.MyCol) != c.Rank() {
			return fmt.Errorf("RankAt inverse broken for rank %d", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGridRowColCollectives(t *testing.T) {
	_, err := mpi.Run(9, func(c *mpi.Comm) error {
		g, err := NewSquare(c)
		if err != nil {
			return err
		}
		// Sum of grid columns within a row: 0+1+2 = 3 for every row.
		if got := g.Row.Allreduce(mpi.OpSum, int64(g.MyCol)); got != 3 {
			return fmt.Errorf("row sum = %d", got)
		}
		// Sum of grid rows within a column: 0+1+2 = 3.
		if got := g.Col.Allreduce(mpi.OpSum, int64(g.MyRow)); got != 3 {
			return fmt.Errorf("col sum = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Package grid builds the 2D process grid CombBLAS distributes its matrices
// on (paper Section IV-A): p ranks arranged as pr x pc, with row and column
// sub-communicators for the expand and fold phases of the 2D SpMV.
package grid

import (
	"fmt"
	"math"

	"mcmdist/internal/mpi"
	"mcmdist/internal/rt"
)

// Grid is one rank's view of a 2D process grid. It also carries the rank's
// runtime context: the grid is the object every distributed layer (dvec
// layouts, spmv, core) already holds, so riding RT on it threads one
// per-rank arena through the whole stack without changing primitive
// signatures.
type Grid struct {
	World *mpi.Comm // the full communicator the grid was built on
	Row   *mpi.Comm // this rank's row communicator P(i, :), size pc
	Col   *mpi.Comm // this rank's column communicator P(:, j), size pr
	RT    *rt.Ctx   // this rank's runtime context (arena, scratch, ledger)
	PR    int       // grid rows
	PC    int       // grid columns
	MyRow int       // this rank's grid row i
	MyCol int       // this rank's grid column j
}

// Square returns the side of the largest square grid with at most p ranks,
// mirroring the paper's square-grid-only configuration. 0 for p <= 0.
func Square(p int) int {
	if p <= 0 {
		return 0
	}
	s := int(math.Sqrt(float64(p)))
	for (s+1)*(s+1) <= p {
		s++
	}
	for s*s > p {
		s--
	}
	return s
}

// New arranges the communicator as a pr x pc grid in row-major rank order.
// pr*pc must equal the communicator size. Rank r sits at (r/pc, r%pc). A
// fresh enabled runtime context is created for the rank; use NewWithRT to
// supply one (e.g. a context reused from a previous solve, or a disabled
// one for pooling-off runs).
func New(c *mpi.Comm, pr, pc int) (*Grid, error) {
	return NewWithRT(c, pr, pc, rt.New(c))
}

// NewWithRT is New with a caller-supplied runtime context, which is rebound
// to this communicator. A nil context is allowed and leaves every arena
// operation in pass-through mode.
func NewWithRT(c *mpi.Comm, pr, pc int, ctx *rt.Ctx) (*Grid, error) {
	if pr <= 0 || pc <= 0 || pr*pc != c.Size() {
		return nil, fmt.Errorf("grid: %dx%d grid does not tile %d ranks", pr, pc, c.Size())
	}
	ctx.Bind(c)
	myRow := c.Rank() / pc
	myCol := c.Rank() % pc
	row := c.Split(myRow, myCol)
	col := c.Split(myCol+pr*pc, myRow) // offset colors so debugging ids differ
	return &Grid{
		World: c,
		Row:   row,
		Col:   col,
		RT:    ctx,
		PR:    pr,
		PC:    pc,
		MyRow: myRow,
		MyCol: myCol,
	}, nil
}

// NewSquare builds the largest square grid on the communicator; the
// communicator size must be a perfect square.
func NewSquare(c *mpi.Comm) (*Grid, error) {
	s := Square(c.Size())
	if s*s != c.Size() {
		return nil, fmt.Errorf("grid: %d ranks is not a perfect square", c.Size())
	}
	return New(c, s, s)
}

// RankAt returns the world-communicator rank of grid position (i, j).
func (g *Grid) RankAt(i, j int) int { return i*g.PC + j }

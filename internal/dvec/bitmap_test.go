package dvec

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(200)
	for _, i := range []int{0, 1, 63, 64, 127, 128, 199} {
		b.Set(i)
	}
	for i := 0; i < 200; i++ {
		want := i == 0 || i == 1 || i == 63 || i == 64 || i == 127 || i == 128 || i == 199
		if b.Has(i) != want {
			t.Fatalf("Has(%d) = %v, want %v", i, b.Has(i), want)
		}
	}
	if b.Count() != 7 {
		t.Fatalf("Count = %d, want 7", b.Count())
	}
	got := b.AppendIndices(nil, 1000)
	want := []int64{1000, 1001, 1063, 1064, 1127, 1128, 1199}
	if len(got) != len(want) {
		t.Fatalf("AppendIndices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendIndices = %v, want %v", got, want)
		}
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("Clear left bits set")
	}
}

func TestBitmapSparseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		lo := rng.Intn(1000)
		seen := map[int64]bool{}
		var idx []int64
		for k := 0; k < rng.Intn(n); k++ {
			gi := int64(lo + rng.Intn(n))
			if !seen[gi] {
				seen[gi] = true
				idx = append(idx, gi)
			}
		}
		b := NewBitmap(n)
		b.SetIndices(idx, lo)
		if b.Count() != len(idx) {
			t.Fatalf("Count = %d, want %d", b.Count(), len(idx))
		}
		back := b.AppendIndices(nil, int64(lo))
		sort.Slice(idx, func(a, c int) bool { return idx[a] < idx[c] })
		for i := range idx {
			if back[i] != idx[i] {
				t.Fatalf("roundtrip mismatch at %d: %d != %d", i, back[i], idx[i])
			}
		}
	}
}

func TestBitmapSetWhereNot(t *testing.T) {
	v := []int64{-1, 5, -1, 0, -1, 9}
	b := NewBitmap(len(v))
	b.SetWhereNot(v, -1)
	want := []int64{1, 3, 5}
	got := b.AppendIndices(nil, 0)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestAsBitmapClearsBorrowedBuffer(t *testing.T) {
	buf := []int64{-1, -1, -1}
	b := AsBitmap(buf, 130)
	if b.Count() != 0 {
		t.Fatal("AsBitmap did not clear the borrowed words")
	}
	if len(b.Words) != BitmapWords(130) {
		t.Fatalf("len(Words) = %d, want %d", len(b.Words), BitmapWords(130))
	}
}

package dvec

import (
	"fmt"
	"reflect"
	"testing"

	"mcmdist/internal/grid"
	"mcmdist/internal/mpi"
	"mcmdist/internal/semiring"
)

// onGrid runs fn on a pr x pc grid of simulated ranks.
func onGrid(t *testing.T, pr, pc int, fn func(g *grid.Grid) error) {
	t.Helper()
	_, err := mpi.Run(pr*pc, func(c *mpi.Comm) error {
		g, err := grid.New(c, pr, pc)
		if err != nil {
			return err
		}
		return fn(g)
	})
	if err != nil {
		t.Fatal(err)
	}
}

var gridShapes = [][2]int{{1, 1}, {2, 2}, {2, 3}, {3, 2}, {1, 4}, {4, 1}}

func TestLayoutPartitions(t *testing.T) {
	for _, shape := range gridShapes {
		for _, kind := range []Kind{RowAligned, ColAligned} {
			for _, n := range []int{0, 1, 7, 64, 100} {
				onGrid(t, shape[0], shape[1], func(g *grid.Grid) error {
					l := NewLayout(g, n, kind)
					// Every global index is owned by exactly one rank, and
					// Owner agrees with RangeAt.
					covered := 0
					for i := 0; i < g.PR; i++ {
						for j := 0; j < g.PC; j++ {
							covered += l.RangeAt(i, j).Len()
						}
					}
					if covered != n {
						return fmt.Errorf("%v %v n=%d: ranges cover %d", shape, kind, n, covered)
					}
					for x := 0; x < n; x++ {
						i, j := l.OwnerCoords(x)
						if !l.RangeAt(i, j).Contains(x) {
							return fmt.Errorf("owner of %d wrong", x)
						}
						rank, local := l.Owner(x)
						if rank != g.RankAt(i, j) || local != x-l.RangeAt(i, j).Lo {
							return fmt.Errorf("Owner(%d) inconsistent", x)
						}
					}
					return nil
				})
			}
		}
	}
}

func TestLayoutSlabCoversGridLine(t *testing.T) {
	onGrid(t, 2, 3, func(g *grid.Grid) error {
		// ColAligned: the union of ranges of my grid column equals my slab.
		l := NewLayout(g, 100, ColAligned)
		slab := l.SlabRange()
		covered := 0
		for i := 0; i < g.PR; i++ {
			r := l.RangeAt(i, g.MyCol)
			if r.Len() > 0 && (r.Lo < slab.Lo || r.Hi > slab.Hi) {
				return fmt.Errorf("range %v outside slab %v", r, slab)
			}
			covered += r.Len()
		}
		if covered != slab.Len() {
			return fmt.Errorf("grid column covers %d of slab %d", covered, slab.Len())
		}
		// RowAligned: union over my grid row equals my slab.
		lr := NewLayout(g, 77, RowAligned)
		slabR := lr.SlabRange()
		covered = 0
		for j := 0; j < g.PC; j++ {
			covered += lr.RangeAt(g.MyRow, j).Len()
		}
		if covered != slabR.Len() {
			return fmt.Errorf("grid row covers %d of slab %d", covered, slabR.Len())
		}
		return nil
	})
}

func TestKindString(t *testing.T) {
	if RowAligned.String() != "row" || ColAligned.String() != "col" {
		t.Fatal("kind names wrong")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	global := []int64{5, -1, 7, 0, 3, 9, -1, 2}
	for _, shape := range gridShapes {
		onGrid(t, shape[0], shape[1], func(g *grid.Grid) error {
			l := NewLayout(g, len(global), ColAligned)
			d := NewDenseFrom(l, global)
			got := d.Gather()
			if !reflect.DeepEqual(got, global) {
				return fmt.Errorf("shape %v: gather = %v", shape, got)
			}
			return nil
		})
	}
}

func TestDenseAtSet(t *testing.T) {
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		l := NewLayout(g, 10, RowAligned)
		d := NewDense(l, semiring.None)
		r := l.MyRange()
		for x := r.Lo; x < r.Hi; x++ {
			if d.At(x) != semiring.None {
				return fmt.Errorf("fill missing at %d", x)
			}
			d.SetAt(x, int64(x*2))
		}
		full := d.Gather()
		for x := 0; x < 10; x++ {
			if full[x] != int64(x*2) {
				return fmt.Errorf("full[%d] = %d", x, full[x])
			}
		}
		return nil
	})
}

func TestDenseCountEq(t *testing.T) {
	global := []int64{-1, 3, -1, -1, 9, -1}
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		d := NewDenseFrom(NewLayout(g, len(global), ColAligned), global)
		if n := d.CountEq(-1); n != 4 {
			return fmt.Errorf("CountEq = %d, want 4", n)
		}
		return nil
	})
}

func TestDenseClone(t *testing.T) {
	onGrid(t, 1, 2, func(g *grid.Grid) error {
		d := NewDenseFrom(NewLayout(g, 4, ColAligned), []int64{1, 2, 3, 4})
		cl := d.Clone()
		cl.Fill(0)
		if d.CountEq(0) != 0 {
			return fmt.Errorf("clone shares storage")
		}
		return nil
	})
}

// buildSparseInt distributes the given dense representation (0 = missing,
// Table I convention) into a SparseInt.
func buildSparseInt(l Layout, full []int64) *SparseInt {
	s := NewSparseInt(l)
	r := l.MyRange()
	for g := r.Lo; g < r.Hi; g++ {
		if full[g] != 0 {
			s.Append(g, full[g])
		}
	}
	return s
}

// TestTableIInd reproduces Table I's IND example: x = [3,0,2,2,0] has
// nonzeros at (0-indexed) positions 0, 2, 3.
func TestTableIInd(t *testing.T) {
	x := []int64{3, 0, 2, 2, 0}
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		l := NewLayout(g, len(x), ColAligned)
		s := buildSparseInt(l, x)
		want := map[int]bool{0: true, 2: true, 3: true}
		for _, idx := range s.Ind() {
			if !want[idx] {
				return fmt.Errorf("unexpected index %d", idx)
			}
			if !l.MyRange().Contains(idx) {
				return fmt.Errorf("index %d not local", idx)
			}
		}
		if s.Nnz() != 3 {
			return fmt.Errorf("nnz = %d", s.Nnz())
		}
		return nil
	})
}

// TestTableISelect reproduces the SELECT example: x = [3,0,2,2,0],
// y = [1,-1,-1,2,1], expr: y = -1 keeps only x[2], giving [0,0,2,0,0].
func TestTableISelect(t *testing.T) {
	x := []int64{3, 0, 2, 2, 0}
	y := []int64{1, -1, -1, 2, 1}
	for _, shape := range gridShapes {
		onGrid(t, shape[0], shape[1], func(g *grid.Grid) error {
			l := NewLayout(g, len(x), ColAligned)
			s := buildSparseInt(l, x)
			d := NewDenseFrom(l, y)
			z := s.Select(d, func(v int64) bool { return v == -1 })
			got := z.GatherInt()
			want := []int64{semiring.None, semiring.None, 2, semiring.None, semiring.None}
			if !reflect.DeepEqual(got, want) {
				return fmt.Errorf("shape %v: SELECT = %v", shape, got)
			}
			return nil
		})
	}
}

// TestTableISet reproduces the SET example: overlaying x = [3,0,2,2,0] onto
// a dense vector of -1 gives [3,-1,2,2,-1].
func TestTableISet(t *testing.T) {
	x := []int64{3, 0, 2, 2, 0}
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		l := NewLayout(g, len(x), ColAligned)
		s := buildSparseInt(l, x)
		d := NewDense(l, semiring.None)
		d.Scatter(s)
		got := d.Gather()
		want := []int64{3, -1, 2, 2, -1}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("SET = %v", got)
		}
		return nil
	})
}

// TestTableIInvert checks INVERT on x = [3,0,2,2,0] (0-indexed values as
// targets): z[x[i]] = i. Positions 2 and 3 both hold value 2; our
// implementation keeps the first (smallest) source index, the tie-break the
// paper's prose specifies, so z = [-,-,2,0,-] with z[3] = 0 and z[2] = 2.
func TestTableIInvert(t *testing.T) {
	x := []int64{3, 0, 2, 2, 0}
	for _, shape := range gridShapes {
		onGrid(t, shape[0], shape[1], func(g *grid.Grid) error {
			l := NewLayout(g, len(x), ColAligned)
			outL := NewLayout(g, len(x), RowAligned)
			s := buildSparseInt(l, x)
			z := s.Invert(outL)
			got := z.GatherInt()
			want := []int64{semiring.None, semiring.None, 2, 0, semiring.None}
			if !reflect.DeepEqual(got, want) {
				return fmt.Errorf("shape %v: INVERT = %v", shape, got)
			}
			return nil
		})
	}
}

// TestTableIPrune reproduces the PRUNE example: x = [0,0,5,0,2] pruned by
// q's value set {2,4,1} keeps only the entry with value 5.
func TestTableIPrune(t *testing.T) {
	x := []semiring.Vertex{{}, {}, {Parent: 2, Root: 5}, {}, {Parent: 4, Root: 2}}
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		l := NewLayout(g, len(x), RowAligned)
		s := NewSparseV(l)
		r := l.MyRange()
		for gi := r.Lo; gi < r.Hi; gi++ {
			if x[gi].Root != 0 {
				s.Append(gi, x[gi])
			}
		}
		// q's values distributed: rank 0 contributes {2,4}, rank 1 {1}.
		var local []int64
		switch g.World.Rank() {
		case 0:
			local = []int64{2, 4}
		case 1:
			local = []int64{1}
		}
		z := s.PruneRoots(local)
		if z.Nnz() != 1 {
			return fmt.Errorf("PRUNE kept %d entries", z.Nnz())
		}
		vs := z.GatherVertices()
		if vs[2].Root != 5 {
			return fmt.Errorf("PRUNE kept wrong entry: %v", vs)
		}
		return nil
	})
}

func TestInvertRoundTripOnInjective(t *testing.T) {
	// For an injective sparse vector (a permutation fragment),
	// INVERT(INVERT(x)) = x.
	full := []int64{0, 4, 0, 1, 0, 7, 2, 0} // targets, 0 = missing
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		l := NewLayout(g, len(full), ColAligned)
		s := buildSparseInt(l, full)
		inv := s.Invert(NewLayout(g, 8, RowAligned))
		back := inv.Invert(l)
		got := back.GatherInt()
		for gi, v := range full {
			if v == 0 {
				if got[gi] != semiring.None {
					return fmt.Errorf("extra entry at %d: %d", gi, got[gi])
				}
				continue
			}
			if got[gi] != v {
				return fmt.Errorf("round trip [%d] = %d, want %d", gi, got[gi], v)
			}
		}
		return nil
	})
}

func TestInvertParentsAndRoots(t *testing.T) {
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		lr := NewLayout(g, 6, RowAligned)
		lc := NewLayout(g, 6, ColAligned)
		// Row sparse vector: rows 1, 3, 4 with parents 2, 0, 2 and roots 5, 1, 3.
		data := map[int]semiring.Vertex{
			1: {Parent: 2, Root: 5},
			3: {Parent: 0, Root: 1},
			4: {Parent: 2, Root: 3},
		}
		s := NewSparseV(lr)
		r := lr.MyRange()
		for gi := r.Lo; gi < r.Hi; gi++ {
			if v, ok := data[gi]; ok {
				s.Append(gi, v)
			}
		}
		byParent := s.InvertParents(lc).GatherVertices()
		// Parent 2 claimed by rows 1 and 4: smallest source (1) wins.
		if byParent[2].Parent != 1 || byParent[2].Root != 5 {
			return fmt.Errorf("byParent[2] = %v", byParent[2])
		}
		if byParent[0].Parent != 3 || byParent[0].Root != 1 {
			return fmt.Errorf("byParent[0] = %v", byParent[0])
		}
		if byParent[1].Parent != semiring.None {
			return fmt.Errorf("byParent[1] = %v, want missing", byParent[1])
		}

		byRoot := s.InvertRoots(lc).GatherVertices()
		for _, root := range []int{5, 1, 3} {
			if byRoot[root].Root != int64(root) {
				return fmt.Errorf("byRoot[%d] = %v", root, byRoot[root])
			}
		}
		if byRoot[5].Parent != 1 || byRoot[1].Parent != 3 || byRoot[3].Parent != 4 {
			return fmt.Errorf("byRoot sources wrong: %v", byRoot)
		}
		return nil
	})
}

func TestSetParentsFromAndScatterParents(t *testing.T) {
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		l := NewLayout(g, 5, RowAligned)
		mate := NewDenseFrom(l, []int64{9, 8, 7, 6, 5})
		s := NewSparseV(l)
		r := l.MyRange()
		for gi := r.Lo; gi < r.Hi; gi++ {
			if gi%2 == 0 {
				s.Append(gi, semiring.Self(int64(gi)))
			}
		}
		s.SetParentsFrom(mate)
		for k, gi := range s.Idx {
			if s.Val[k].Parent != mate.At(gi) {
				return fmt.Errorf("parent[%d] = %d", gi, s.Val[k].Parent)
			}
			if s.Val[k].Root != int64(gi) {
				return fmt.Errorf("root[%d] changed", gi)
			}
		}
		pi := NewDense(l, semiring.None)
		pi.ScatterParents(s)
		full := pi.Gather()
		for gi := 0; gi < 5; gi++ {
			want := semiring.None
			if gi%2 == 0 {
				want = 9 - int64(gi)
			}
			if full[gi] != want {
				return fmt.Errorf("pi[%d] = %d, want %d", gi, full[gi], want)
			}
		}
		return nil
	})
}

func TestRootsParentsAccessors(t *testing.T) {
	onGrid(t, 1, 2, func(g *grid.Grid) error {
		l := NewLayout(g, 4, ColAligned)
		s := NewSparseV(l)
		r := l.MyRange()
		for gi := r.Lo; gi < r.Hi; gi++ {
			s.Append(gi, semiring.Vertex{Parent: int64(gi * 10), Root: int64(gi * 100)})
		}
		roots, parents := s.Roots(), s.Parents()
		for k, gi := range s.Idx {
			if roots.Val[k] != int64(gi*100) || parents.Val[k] != int64(gi*10) {
				return fmt.Errorf("accessors wrong at %d", gi)
			}
		}
		return nil
	})
}

func TestSparseWhere(t *testing.T) {
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		l := NewLayout(g, 6, ColAligned)
		d := NewDenseFrom(l, []int64{-1, 5, -1, 3, -1, 8})
		s := d.SparseWhere(func(v int64) bool { return v != semiring.None })
		if s.Nnz() != 3 {
			return fmt.Errorf("nnz = %d", s.Nnz())
		}
		got := s.GatherInt()
		want := []int64{semiring.None, 5, semiring.None, 3, semiring.None, 8}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("SparseWhere = %v", got)
		}
		return nil
	})
}

func TestGatherFrom(t *testing.T) {
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		l := NewLayout(g, 5, RowAligned)
		d := NewDenseFrom(l, []int64{10, 11, 12, 13, 14})
		s := NewSparseInt(l)
		r := l.MyRange()
		for gi := r.Lo; gi < r.Hi; gi++ {
			s.Append(gi, -99)
		}
		s.GatherFrom(d)
		for k, gi := range s.Idx {
			if s.Val[k] != int64(10+gi) {
				return fmt.Errorf("val[%d] = %d", gi, s.Val[k])
			}
		}
		return nil
	})
}

func TestAppendValidation(t *testing.T) {
	onGrid(t, 1, 1, func(g *grid.Grid) error {
		l := NewLayout(g, 5, ColAligned)
		s := NewSparseInt(l)
		s.Append(1, 1)
		mustPanic := func(f func()) error {
			defer func() { recover() }()
			f()
			return fmt.Errorf("expected panic")
		}
		if err := mustPanic(func() { s.Append(1, 2) }); err != nil {
			return fmt.Errorf("duplicate append: %v", err)
		}
		if err := mustPanic(func() { s.Append(0, 2) }); err != nil {
			return fmt.Errorf("decreasing append: %v", err)
		}
		if err := mustPanic(func() { s.Append(9, 2) }); err != nil {
			return fmt.Errorf("out-of-range append: %v", err)
		}
		return nil
	})
}

func TestSelectLayoutMismatchPanics(t *testing.T) {
	onGrid(t, 1, 1, func(g *grid.Grid) error {
		s := NewSparseV(NewLayout(g, 5, RowAligned))
		d := NewDense(NewLayout(g, 5, ColAligned), 0)
		defer func() {
			if recover() == nil {
				panic("expected panic")
			}
		}()
		s.Select(d, func(int64) bool { return true })
		return nil
	})
}

// TestInvertMeterUsesAllToAll verifies INVERT's communication is metered as
// a personalized all-to-all over the whole grid (latency alpha*p per the
// paper's Section IV-B analysis).
func TestInvertMeterUsesAllToAll(t *testing.T) {
	const pr, pc = 2, 2
	w, err := mpi.Run(pr*pc, func(c *mpi.Comm) error {
		g, err := grid.New(c, pr, pc)
		if err != nil {
			return err
		}
		l := NewLayout(g, 40, ColAligned)
		s := NewSparseInt(l)
		r := l.MyRange()
		for gi := r.Lo; gi < r.Hi; gi++ {
			s.Append(gi, int64(39-gi))
		}
		s.Invert(NewLayout(g, 40, RowAligned))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < pr*pc; rank++ {
		if m := w.RankMeter(rank); m.Msgs != pr*pc-1 {
			t.Errorf("rank %d msgs = %d, want %d (all-to-all)", rank, m.Msgs, pr*pc-1)
		}
	}
}

func TestRedistributeRoundTrip(t *testing.T) {
	for _, shape := range gridShapes {
		onGrid(t, shape[0], shape[1], func(g *grid.Grid) error {
			rowL := NewLayout(g, 23, RowAligned)
			colL := NewLayout(g, 23, ColAligned)
			s := NewSparseInt(rowL)
			r := rowL.MyRange()
			for gi := r.Lo; gi < r.Hi; gi += 2 {
				s.Append(gi, int64(gi*10))
			}
			moved := s.Redistribute(colL)
			if moved.Nnz() != s.Nnz() {
				return fmt.Errorf("shape %v: nnz %d -> %d", shape, s.Nnz(), moved.Nnz())
			}
			// Every moved entry must land on the owner under the new layout.
			for _, gi := range moved.Idx {
				if !colL.MyRange().Contains(gi) {
					return fmt.Errorf("entry %d not local under new layout", gi)
				}
			}
			back := moved.Redistribute(rowL)
			got := back.GatherInt()
			want := s.GatherInt()
			if !reflect.DeepEqual(got, want) {
				return fmt.Errorf("shape %v: round trip %v != %v", shape, got, want)
			}
			return nil
		})
	}
}

func TestRedistributeRejectsWrongLength(t *testing.T) {
	onGrid(t, 1, 1, func(g *grid.Grid) error {
		s := NewSparseInt(NewLayout(g, 5, RowAligned))
		defer func() {
			if recover() == nil {
				panic("expected panic")
			}
		}()
		s.Redistribute(NewLayout(g, 6, ColAligned))
		return nil
	})
}

func TestCloneAndFilter(t *testing.T) {
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		l := NewLayout(g, 8, ColAligned)
		s := NewSparseInt(l)
		r := l.MyRange()
		for gi := r.Lo; gi < r.Hi; gi++ {
			s.Append(gi, int64(gi))
		}
		cl := s.Clone()
		if len(cl.Val) > 0 {
			cl.Val[0] = -99
			if s.Val[0] == -99 {
				return fmt.Errorf("clone shares storage")
			}
		}
		even := s.Filter(func(v int64) bool { return v%2 == 0 })
		for _, v := range even.Val {
			if v%2 != 0 {
				return fmt.Errorf("filter kept odd value %d", v)
			}
		}
		if even.Nnz() != 4 {
			return fmt.Errorf("filter kept %d, want 4", even.Nnz())
		}
		sv := NewSparseV(l)
		for gi := r.Lo; gi < r.Hi; gi++ {
			sv.Append(gi, semiring.Self(int64(gi)))
		}
		svc := sv.Clone()
		if len(svc.Val) > 0 {
			svc.Val[0].Parent = -5
			if sv.Val[0].Parent == -5 {
				return fmt.Errorf("SparseV clone shares storage")
			}
		}
		return nil
	})
}

// TestInvertKeepsSmallestSourceProperty: on vectors with many collisions,
// INVERT must deterministically keep the smallest source index.
func TestInvertKeepsSmallestSourceProperty(t *testing.T) {
	onGrid(t, 2, 2, func(g *grid.Grid) error {
		l := NewLayout(g, 30, ColAligned)
		outL := NewLayout(g, 4, RowAligned)
		s := NewSparseInt(l)
		r := l.MyRange()
		for gi := r.Lo; gi < r.Hi; gi++ {
			s.Append(gi, int64(gi%4)) // heavy collisions on 4 targets
		}
		inv := s.Invert(outL)
		got := inv.GatherInt()
		for tgt := 0; tgt < 4; tgt++ {
			if got[tgt] != int64(tgt) { // smallest source with gi%4==tgt is tgt itself
				return fmt.Errorf("target %d kept source %d, want %d", tgt, got[tgt], tgt)
			}
		}
		return nil
	})
}

func TestInvertPanicsOnOutOfRangeTarget(t *testing.T) {
	onGrid(t, 1, 1, func(g *grid.Grid) error {
		l := NewLayout(g, 5, ColAligned)
		s := NewSparseInt(l)
		s.Append(0, 99) // target outside [0, 5)
		defer func() {
			if recover() == nil {
				panic("expected panic")
			}
		}()
		s.Invert(NewLayout(g, 5, RowAligned))
		return nil
	})
}

// Package dvec implements the distributed dense and sparse vectors of the
// paper's matrix-algebraic formulation, along with the primitive set of its
// Table I: IND, SELECT, SET, INVERT and PRUNE. Vectors are distributed on
// the same 2D process grid as the matrix (Section IV-A): a length-n vector
// is split into one slab per grid dimension, and each slab is subdivided
// among the processes of the matching grid row or column, so that the
// "expand" phase of SpMV is an allgather along a grid column and the "fold"
// phase a personalized all-to-all along a grid row, exactly as in CombBLAS.
package dvec

import (
	"fmt"

	"mcmdist/internal/grid"
	"mcmdist/internal/spmat"
)

// Kind says which side of the bipartite graph a vector indexes, which
// determines its alignment on the grid.
type Kind int

const (
	// RowAligned vectors index row vertices (length n1). Slab i of the
	// vector matches matrix row-block i and is owned by grid row i,
	// subdivided among that row's pc processes.
	RowAligned Kind = iota
	// ColAligned vectors index column vertices (length n2). Slab j matches
	// matrix column-block j and is owned by grid column j, subdivided among
	// that column's pr processes.
	ColAligned
)

// String names the kind.
func (k Kind) String() string {
	if k == RowAligned {
		return "row"
	}
	return "col"
}

// Layout is the shared description of how a length-N vector is distributed
// on a grid. Layouts are values: every rank constructs an identical Layout
// and methods are pure.
type Layout struct {
	G    *grid.Grid
	N    int
	Kind Kind
}

// NewLayout builds a layout for a length-n vector of the given kind.
func NewLayout(g *grid.Grid, n int, kind Kind) Layout {
	if n < 0 {
		panic(fmt.Sprintf("dvec: negative length %d", n))
	}
	return Layout{G: g, N: n, Kind: kind}
}

// slabOf returns the global range of the slab with the given index.
func (l Layout) slabOf(slab int) spmat.Block {
	if l.Kind == RowAligned {
		return spmat.BlockAt(l.N, l.G.PR, slab)
	}
	return spmat.BlockAt(l.N, l.G.PC, slab)
}

// RangeAt returns the global index range owned by the rank at grid
// coordinates (i, j).
func (l Layout) RangeAt(i, j int) spmat.Block {
	if l.Kind == RowAligned {
		slab := l.slabOf(i)
		sub := spmat.BlockAt(slab.Len(), l.G.PC, j)
		return spmat.Block{Lo: slab.Lo + sub.Lo, Hi: slab.Lo + sub.Hi}
	}
	slab := l.slabOf(j)
	sub := spmat.BlockAt(slab.Len(), l.G.PR, i)
	return spmat.Block{Lo: slab.Lo + sub.Lo, Hi: slab.Lo + sub.Hi}
}

// MyRange returns the global index range owned by the calling rank.
func (l Layout) MyRange() spmat.Block {
	return l.RangeAt(l.G.MyRow, l.G.MyCol)
}

// OwnerCoords returns the grid coordinates of the rank owning global index g.
func (l Layout) OwnerCoords(g int) (i, j int) {
	if g < 0 || g >= l.N {
		panic(fmt.Sprintf("dvec: index %d outside [0,%d)", g, l.N))
	}
	if l.Kind == RowAligned {
		i = spmat.OwnerOf(l.N, l.G.PR, g)
		slab := l.slabOf(i)
		j = spmat.OwnerOf(slab.Len(), l.G.PC, g-slab.Lo)
		return i, j
	}
	j = spmat.OwnerOf(l.N, l.G.PC, g)
	slab := l.slabOf(j)
	i = spmat.OwnerOf(slab.Len(), l.G.PR, g-slab.Lo)
	return i, j
}

// Owner returns the world rank owning global index g and g's local offset
// within that rank's block.
func (l Layout) Owner(g int) (rank, local int) {
	i, j := l.OwnerCoords(g)
	return l.G.RankAt(i, j), g - l.RangeAt(i, j).Lo
}

// Same reports whether two layouts describe the same distribution, the
// precondition for the communication-free Table I primitives.
func (l Layout) Same(o Layout) bool {
	return l.G == o.G && l.N == o.N && l.Kind == o.Kind
}

// SlabRange returns the global range of this rank's slab: the part of the
// vector collectively owned by this rank's grid column (for ColAligned) or
// grid row (for RowAligned). This is the paper's v_i piece "collected by all
// the processors along the ith processor row or column".
func (l Layout) SlabRange() spmat.Block {
	if l.Kind == RowAligned {
		return l.slabOf(l.G.MyRow)
	}
	return l.slabOf(l.G.MyCol)
}

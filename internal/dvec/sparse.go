package dvec

import (
	"fmt"

	"mcmdist/internal/mpi"
	"mcmdist/internal/rt"
	"mcmdist/internal/semiring"
)

// flatAlltoall routes parts through a personalized all-to-all into one flat
// arena buffer. When the context overlaps communication it runs
// split-phase: arrived payloads are copied out while stragglers are still
// sending, hiding the copy-out behind the wait. Metering is identical
// either way; consumers sort the union, so arrival order is harmless.
func flatAlltoall(c *mpi.Comm, ctx *rt.Ctx, parts [][]int64, hint int) []int64 {
	if ctx.Overlap() {
		rq := c.IAlltoallvParts(parts)
		flat := rq.Drain(ctx.GetInts(hint))
		rq.Finish()
		return flat
	}
	return c.AlltoallvFlat(parts, ctx.GetInts(hint))
}

// flatAllgather is flatAlltoall's allgather counterpart (PRUNE's pattern).
func flatAllgather(c *mpi.Comm, ctx *rt.Ctx, data []int64, hint int) []int64 {
	if ctx.Overlap() {
		rq := c.IAllgathervParts(data)
		flat := rq.Drain(ctx.GetInts(hint))
		rq.Finish()
		return flat
	}
	return c.AllgathervInto(data, ctx.GetInts(hint))
}

// SparseInt is one rank's piece of a distributed sparse vector with int64
// values. Idx holds global indices in strictly increasing order, all within
// MyRange().
type SparseInt struct {
	L   Layout
	Idx []int
	Val []int64
}

// SparseV is one rank's piece of a distributed sparse vector of VERTEX
// (parent, root) pairs — the MS-BFS frontier representation.
type SparseV struct {
	L   Layout
	Idx []int
	Val []semiring.Vertex
}

// NewSparseInt returns an empty sparse vector with the given layout.
func NewSparseInt(l Layout) *SparseInt { return &SparseInt{L: l} }

// NewSparseV returns an empty sparse vector with the given layout.
func NewSparseV(l Layout) *SparseV { return &SparseV{L: l} }

func checkAppend(l Layout, idx []int, g int) {
	if !l.MyRange().Contains(g) {
		panic(fmt.Sprintf("dvec: append index %d outside local range", g))
	}
	if n := len(idx); n > 0 && idx[n-1] >= g {
		panic(fmt.Sprintf("dvec: append index %d not increasing after %d", g, idx[n-1]))
	}
}

// Append adds a nonzero at global index g; indices must arrive in strictly
// increasing order.
func (s *SparseInt) Append(g int, v int64) {
	checkAppend(s.L, s.Idx, g)
	s.Idx = append(s.Idx, g)
	s.Val = append(s.Val, v)
}

// Append adds a nonzero at global index g; indices must arrive in strictly
// increasing order.
func (s *SparseV) Append(g int, v semiring.Vertex) {
	checkAppend(s.L, s.Idx, g)
	s.Idx = append(s.Idx, g)
	s.Val = append(s.Val, v)
}

// LocalNnz returns the number of locally stored nonzeros.
func (s *SparseInt) LocalNnz() int { return len(s.Idx) }

// LocalNnz returns the number of locally stored nonzeros.
func (s *SparseV) LocalNnz() int { return len(s.Idx) }

// Nnz returns the global number of nonzeros. Collective.
func (s *SparseInt) Nnz() int {
	return int(s.L.G.World.Allreduce(mpi.OpSum, int64(len(s.Idx))))
}

// Nnz returns the global number of nonzeros. Collective.
func (s *SparseV) Nnz() int {
	return int(s.L.G.World.Allreduce(mpi.OpSum, int64(len(s.Idx))))
}

// Ind returns the local nonzero indices (the Table I IND primitive). The
// slice aliases the vector.
func (s *SparseInt) Ind() []int { return s.Idx }

// Ind returns the local nonzero indices (the Table I IND primitive).
func (s *SparseV) Ind() []int { return s.Idx }

// Select keeps the entries whose aligned dense value satisfies pred — the
// Table I SELECT primitive, communication-free because x and y share a
// layout. The result is a fresh vector.
func (s *SparseV) Select(y *Dense, pred func(int64) bool) *SparseV {
	if !s.L.Same(y.L) {
		panic("dvec: SELECT layout mismatch")
	}
	lo := s.L.MyRange().Lo
	out := NewSparseV(s.L)
	if n := len(s.Idx); n > 0 {
		out.Idx = make([]int, 0, n)
		out.Val = make([]semiring.Vertex, 0, n)
	}
	for k, g := range s.Idx {
		if pred(y.Local[g-lo]) {
			out.Idx = append(out.Idx, g)
			out.Val = append(out.Val, s.Val[k])
		}
	}
	s.L.G.World.AddWork(len(s.Idx))
	return out
}

// Select keeps the entries whose aligned dense value satisfies pred.
func (s *SparseInt) Select(y *Dense, pred func(int64) bool) *SparseInt {
	if !s.L.Same(y.L) {
		panic("dvec: SELECT layout mismatch")
	}
	lo := s.L.MyRange().Lo
	out := NewSparseInt(s.L)
	if n := len(s.Idx); n > 0 {
		out.Idx = make([]int, 0, n)
		out.Val = make([]int64, 0, n)
	}
	for k, g := range s.Idx {
		if pred(y.Local[g-lo]) {
			out.Idx = append(out.Idx, g)
			out.Val = append(out.Val, s.Val[k])
		}
	}
	s.L.G.World.AddWork(len(s.Idx))
	return out
}

// Scatter stores each sparse value into the aligned dense vector — the
// Table I SET(y, x) primitive (dense updated by sparse). Local.
func (d *Dense) Scatter(x *SparseInt) {
	if !d.L.Same(x.L) {
		panic("dvec: SET layout mismatch")
	}
	lo := d.L.MyRange().Lo
	for k, g := range x.Idx {
		d.Local[g-lo] = x.Val[k]
	}
	d.L.G.World.AddWork(len(x.Idx))
}

// ScatterParents stores each entry's parent into the aligned dense vector,
// the SET(π_r, PARENT(f_r)) step of Algorithm 2. Local.
func (d *Dense) ScatterParents(x *SparseV) {
	if !d.L.Same(x.L) {
		panic("dvec: SET layout mismatch")
	}
	lo := d.L.MyRange().Lo
	for k, g := range x.Idx {
		d.Local[g-lo] = x.Val[k].Parent
	}
	d.L.G.World.AddWork(len(x.Idx))
}

// GatherFrom replaces each sparse value with the aligned dense value at the
// same index — the SET(v_c, π_r) flavor used by AUGMENT (Algorithm 3). Local.
func (s *SparseInt) GatherFrom(y *Dense) {
	if !s.L.Same(y.L) {
		panic("dvec: SET layout mismatch")
	}
	lo := s.L.MyRange().Lo
	for k, g := range s.Idx {
		s.Val[k] = y.Local[g-lo]
	}
	s.L.G.World.AddWork(len(s.Idx))
}

// SetParentsFrom rewrites each entry's parent from the aligned dense vector
// — the SET(PARENT(f_r), mate_r) step building the next frontier. Local.
func (s *SparseV) SetParentsFrom(y *Dense) {
	if !s.L.Same(y.L) {
		panic("dvec: SET layout mismatch")
	}
	lo := s.L.MyRange().Lo
	for k, g := range s.Idx {
		s.Val[k].Parent = y.Local[g-lo]
	}
	s.L.G.World.AddWork(len(s.Idx))
}

// Roots returns a sparse int vector with the same indices and the entries'
// roots as values — the paper's ROOT(x).
func (s *SparseV) Roots() *SparseInt {
	out := &SparseInt{
		L:   s.L,
		Idx: append([]int(nil), s.Idx...),
		Val: make([]int64, len(s.Val)),
	}
	for k, v := range s.Val {
		out.Val[k] = v.Root
	}
	return out
}

// RootVals appends the entries' root values to buf and returns it — the
// buffer-reusing counterpart of Roots().Val for the PRUNE call sites, which
// only need the flat root list and can lend an arena buffer for it.
func (s *SparseV) RootVals(buf []int64) []int64 {
	for _, v := range s.Val {
		buf = append(buf, v.Root)
	}
	return buf
}

// Parents returns a sparse int vector of the entries' parents — PARENT(x).
func (s *SparseV) Parents() *SparseInt {
	out := &SparseInt{
		L:   s.L,
		Idx: append([]int(nil), s.Idx...),
		Val: make([]int64, len(s.Val)),
	}
	for k, v := range s.Val {
		out.Val[k] = v.Parent
	}
	return out
}

// invertExchange buckets flattened records by the owner of their target
// index under outL and exchanges them with a personalized all-to-all over
// the whole grid, the communication pattern Table I specifies for INVERT.
// Each record is stride int64s, the first being the target global index.
// The result is one flat arena buffer of received records, which the caller
// must return with PutInts when done.
func invertExchange(l Layout, outL Layout, records []int64, stride int) []int64 {
	c := l.G.World
	ctx := l.G.RT
	p := c.Size()
	parts := ctx.GetParts(p)
	for off := 0; off < len(records); off += stride {
		tgt := int(records[off])
		if tgt < 0 || tgt >= outL.N {
			panic(fmt.Sprintf("dvec: INVERT target %d outside [0,%d)", tgt, outL.N))
		}
		rank, _ := outL.Owner(tgt)
		parts[rank] = append(parts[rank], records[off:off+stride]...)
	}
	c.AddWork(len(records) / max(stride, 1))
	flat := flatAlltoall(c, ctx, parts, len(records))
	ctx.PutParts(parts)
	return flat
}

// Invert computes the Table I INVERT primitive: a sparse vector z with
// layout outL where z[x[i]] = i for every nonzero of x. When several source
// entries carry the same value, the smallest source index wins ("we keep
// the first index"). Collective: personalized all-to-all.
func (s *SparseInt) Invert(outL Layout) *SparseInt {
	ctx := s.L.G.RT
	records := ctx.GetInts(2 * len(s.Idx))
	for k, g := range s.Idx {
		records = append(records, s.Val[k], int64(g))
	}
	flat := invertExchange(s.L, outL, records, 2)
	ctx.PutInts(records)
	ctx.SortRecords(flat, 2)
	out := NewSparseInt(outL)
	for off := 0; off < len(flat); off += 2 {
		if off > 0 && flat[off-2] == flat[off] {
			continue
		}
		out.Idx = append(out.Idx, int(flat[off]))
		out.Val = append(out.Val, flat[off+1])
	}
	s.L.G.World.AddWork(len(flat) / 2)
	ctx.PutInts(flat)
	return out
}

// InvertParents inverts a VERTEX vector by its parents: the result has one
// entry per distinct parent p, at index p, carrying (source index, source
// root). This is the INVERT(f_r) step constructing the next column frontier.
// Collective.
func (s *SparseV) InvertParents(outL Layout) *SparseV {
	ctx := s.L.G.RT
	records := ctx.GetInts(3 * len(s.Idx))
	for k, g := range s.Idx {
		records = append(records, s.Val[k].Parent, int64(g), s.Val[k].Root)
	}
	out := invertVertex(s.L, outL, records)
	ctx.PutInts(records)
	return out
}

// InvertRoots inverts a VERTEX vector by its roots: the result has one entry
// per distinct root r, at index r, carrying (source index, root). This is
// the INVERT(ROOT(uf_r)) step recording one augmenting path per alternating
// tree. Collective.
func (s *SparseV) InvertRoots(outL Layout) *SparseV {
	ctx := s.L.G.RT
	records := ctx.GetInts(3 * len(s.Idx))
	for k, g := range s.Idx {
		records = append(records, s.Val[k].Root, int64(g), s.Val[k].Root)
	}
	out := invertVertex(s.L, outL, records)
	ctx.PutInts(records)
	return out
}

func invertVertex(l Layout, outL Layout, records []int64) *SparseV {
	flat := invertExchange(l, outL, records, 3)
	ctx := l.G.RT
	ctx.SortRecords(flat, 3)
	out := NewSparseV(outL)
	for off := 0; off < len(flat); off += 3 {
		if off > 0 && flat[off-3] == flat[off] {
			continue
		}
		out.Idx = append(out.Idx, int(flat[off]))
		out.Val = append(out.Val, semiring.Vertex{Parent: flat[off+1], Root: flat[off+2]})
	}
	l.G.World.AddWork(len(flat) / 3)
	ctx.PutInts(flat)
	return out
}

// PruneRoots removes the entries whose root appears in the globally
// combined root set — the Table I PRUNE primitive. Each rank contributes
// its local share of the q vector (the roots of newly found augmenting
// paths); the sets are combined with an allgather, the communication
// pattern and ring cost the paper assigns to PRUNE. Collective.
func (s *SparseV) PruneRoots(localRoots []int64) *SparseV {
	c := s.L.G.World
	ctx := s.L.G.RT
	banned := flatAllgather(c, ctx, localRoots, len(localRoots)*c.Size())
	// Sorted + deduped flat set instead of a per-call hash map: lookups are
	// binary searches and the buffer goes back to the arena afterwards.
	ctx.SortRecords(banned, 1)
	uniq := 0
	for i := range banned {
		if i == 0 || banned[i] != banned[uniq-1] {
			banned[uniq] = banned[i]
			uniq++
		}
	}
	banned = banned[:uniq]
	out := NewSparseV(s.L)
	for k, g := range s.Idx {
		if !sortedHas(banned, s.Val[k].Root) {
			out.Idx = append(out.Idx, g)
			out.Val = append(out.Val, s.Val[k])
		}
	}
	c.AddWork(len(s.Idx) + len(banned))
	ctx.PutInts(banned)
	return out
}

// sortedHas reports whether v occurs in the ascending-sorted slice a.
func sortedHas(a []int64, v int64) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == v
}

// GatherInt reconstructs the full sparse vector as a dense []int64 slice on
// every rank, with semiring.None at missing positions. For tests and result
// extraction.
func (s *SparseInt) GatherInt() []int64 {
	c := s.L.G.World
	payload := make([]int64, 0, 2*len(s.Idx))
	for k, g := range s.Idx {
		payload = append(payload, int64(g), s.Val[k])
	}
	parts := c.Allgatherv(payload)
	out := make([]int64, s.L.N)
	for i := range out {
		out[i] = semiring.None
	}
	for _, p := range parts {
		for off := 0; off < len(p); off += 2 {
			out[p[off]] = p[off+1]
		}
	}
	return out
}

// GatherVertices reconstructs the full VERTEX vector on every rank, with
// (None, None) at missing positions. For tests and result extraction.
func (s *SparseV) GatherVertices() []semiring.Vertex {
	c := s.L.G.World
	payload := make([]int64, 0, 3*len(s.Idx))
	for k, g := range s.Idx {
		payload = append(payload, int64(g), s.Val[k].Parent, s.Val[k].Root)
	}
	parts := c.Allgatherv(payload)
	out := make([]semiring.Vertex, s.L.N)
	for i := range out {
		out[i] = semiring.Vertex{Parent: semiring.None, Root: semiring.None}
	}
	for _, p := range parts {
		for off := 0; off < len(p); off += 3 {
			out[p[off]] = semiring.Vertex{Parent: p[off+1], Root: p[off+2]}
		}
	}
	return out
}

// Clone returns a deep copy.
func (s *SparseInt) Clone() *SparseInt {
	return &SparseInt{
		L:   s.L,
		Idx: append([]int(nil), s.Idx...),
		Val: append([]int64(nil), s.Val...),
	}
}

// Clone returns a deep copy.
func (s *SparseV) Clone() *SparseV {
	return &SparseV{
		L:   s.L,
		Idx: append([]int(nil), s.Idx...),
		Val: append([]semiring.Vertex(nil), s.Val...),
	}
}

// Filter keeps the entries whose value satisfies pred. Local.
func (s *SparseInt) Filter(pred func(int64) bool) *SparseInt {
	out := NewSparseInt(s.L)
	for k, g := range s.Idx {
		if pred(s.Val[k]) {
			out.Idx = append(out.Idx, g)
			out.Val = append(out.Val, s.Val[k])
		}
	}
	s.L.G.World.AddWork(len(s.Idx))
	return out
}

// Redistribute moves the vector to another layout of the same length (e.g.
// RowAligned to ColAligned), preserving indices and values. Collective:
// personalized all-to-all, the same pattern CombBLAS uses when a vector
// changes alignment between operations.
func (s *SparseInt) Redistribute(outL Layout) *SparseInt {
	if outL.N != s.L.N {
		panic(fmt.Sprintf("dvec: redistribute to different length %d != %d", outL.N, s.L.N))
	}
	c := s.L.G.World
	ctx := s.L.G.RT
	parts := ctx.GetParts(c.Size())
	for k, g := range s.Idx {
		rank, _ := outL.Owner(g)
		parts[rank] = append(parts[rank], int64(g), s.Val[k])
	}
	flat := flatAlltoall(c, ctx, parts, 2*len(s.Idx))
	ctx.PutParts(parts)
	ctx.SortRecords(flat, 2)
	out := NewSparseInt(outL)
	n := len(flat) / 2
	if n > 0 {
		out.Idx = make([]int, 0, n)
		out.Val = make([]int64, 0, n)
	}
	for off := 0; off < len(flat); off += 2 {
		out.Idx = append(out.Idx, int(flat[off]))
		out.Val = append(out.Val, flat[off+1])
	}
	c.AddWork(len(s.Idx) + n)
	ctx.PutInts(flat)
	return out
}

// ScatterRoots stores each entry's root into the aligned dense vector —
// used by the tree-grafting MCM variant to persist tree ownership. Local.
func (d *Dense) ScatterRoots(x *SparseV) {
	if !d.L.Same(x.L) {
		panic("dvec: SET layout mismatch")
	}
	lo := d.L.MyRange().Lo
	for k, g := range x.Idx {
		d.Local[g-lo] = x.Val[k].Root
	}
	d.L.G.World.AddWork(len(x.Idx))
}

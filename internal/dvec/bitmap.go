package dvec

import "math/bits"

// Bitmap is a dense bitset over a local index range [0, N): the frontier and
// visited-set representation the pull-direction SpMV uses on dense
// iterations, where a membership test must be one word load + mask instead
// of a stamp-array read. The word type is int64, not uint64, so a bitmap can
// live in a buffer borrowed from the rt.Ctx arena (GetInts) and ride the
// buffer-lending collectives unchanged.
type Bitmap struct {
	Words []int64
	N     int
}

// BitmapWords is the number of int64 words a bitmap over n bits needs.
func BitmapWords(n int) int { return (n + 63) / 64 }

// NewBitmap allocates a cleared bitmap over n bits.
func NewBitmap(n int) Bitmap {
	return Bitmap{Words: make([]int64, BitmapWords(n)), N: n}
}

// AsBitmap wraps a borrowed word buffer (cap >= BitmapWords(n)) as a bitmap
// over n bits and clears it — arena buffers carry whatever the previous
// borrower left.
func AsBitmap(buf []int64, n int) Bitmap {
	b := Bitmap{Words: buf[:BitmapWords(n)], N: n}
	b.Clear()
	return b
}

// Clear zeroes every bit. O(n/64) word stores — cheaper than the epoch
// bump of a stamp scratch is not, but the scan wins it back in cache lines.
func (b Bitmap) Clear() {
	for i := range b.Words {
		b.Words[i] = 0
	}
}

// Set marks bit i.
func (b Bitmap) Set(i int) { b.Words[i>>6] |= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (b Bitmap) Has(i int) bool { return b.Words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b.Words {
		n += bits.OnesCount64(uint64(w))
	}
	return n
}

// AppendIndices appends base+i for every set bit i to dst, in ascending
// order — the bitmap→sparse conversion. It walks set bits word by word, so
// the cost is O(words + popcount), not O(n).
func (b Bitmap) AppendIndices(dst []int64, base int64) []int64 {
	for wi, w := range b.Words {
		u := uint64(w)
		for u != 0 {
			bit := bits.TrailingZeros64(u)
			dst = append(dst, base+int64(wi<<6+bit))
			u &= u - 1
		}
	}
	return dst
}

// SetIndices marks bit idx[k]-lo for every index in idx — the
// sparse→bitmap conversion for an id list over the slab starting at lo.
func (b Bitmap) SetIndices(idx []int64, lo int) {
	for _, gi := range idx {
		b.Set(int(gi) - lo)
	}
}

// SetWhereNot marks bit i for every local entry v[i] != sentinel — the
// dense-vector→bitmap conversion used for the replicated visited set.
func (b Bitmap) SetWhereNot(v []int64, sentinel int64) {
	for i, x := range v {
		if x != sentinel {
			b.Set(i)
		}
	}
}

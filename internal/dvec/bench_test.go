package dvec

// Micro-benchmarks for the Table I primitives, run on a 2x2 simulated grid
// with vectors of 2^16 elements — the per-primitive costs behind
// bench_test.go's table/figure benchmarks.

import (
	"testing"

	"mcmdist/internal/grid"
	"mcmdist/internal/mpi"
	"mcmdist/internal/semiring"
)

const benchN = 1 << 16

// benchOnGrid runs one benchmark body per rank on a 2x2 grid, once per
// b.N iteration.
func benchOnGrid(b *testing.B, fn func(g *grid.Grid, i int)) {
	b.Helper()
	_, err := mpi.Run(4, func(c *mpi.Comm) error {
		g, err := grid.New(c, 2, 2)
		if err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			fn(g, i)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func benchSparse(g *grid.Grid, stride int) *SparseV {
	l := NewLayout(g, benchN, ColAligned)
	s := NewSparseV(l)
	r := l.MyRange()
	for gi := r.Lo; gi < r.Hi; gi += stride {
		s.Append(gi, semiring.Self(int64(gi)))
	}
	return s
}

func BenchmarkTableISelect(b *testing.B) {
	benchOnGrid(b, func(g *grid.Grid, _ int) {
		s := benchSparse(g, 3)
		d := NewDense(s.L, semiring.None)
		s.Select(d, func(v int64) bool { return v == semiring.None })
	})
}

func BenchmarkTableISet(b *testing.B) {
	benchOnGrid(b, func(g *grid.Grid, _ int) {
		s := benchSparse(g, 3)
		d := NewDense(s.L, semiring.None)
		d.ScatterParents(s)
	})
}

func BenchmarkTableIInvert(b *testing.B) {
	benchOnGrid(b, func(g *grid.Grid, _ int) {
		s := benchSparse(g, 3)
		s.InvertParents(NewLayout(g, benchN, RowAligned))
	})
}

func BenchmarkTableIPrune(b *testing.B) {
	benchOnGrid(b, func(g *grid.Grid, _ int) {
		s := benchSparse(g, 3)
		roots := make([]int64, 0, 64)
		r := s.L.MyRange()
		for gi := r.Lo; gi < r.Hi && len(roots) < 64; gi += 97 {
			roots = append(roots, int64(gi))
		}
		s.PruneRoots(roots)
	})
}

func BenchmarkRedistribute(b *testing.B) {
	benchOnGrid(b, func(g *grid.Grid, _ int) {
		l := NewLayout(g, benchN, RowAligned)
		s := NewSparseInt(l)
		r := l.MyRange()
		for gi := r.Lo; gi < r.Hi; gi += 3 {
			s.Append(gi, int64(gi))
		}
		s.Redistribute(NewLayout(g, benchN, ColAligned))
	})
}

func BenchmarkDenseGather(b *testing.B) {
	benchOnGrid(b, func(g *grid.Grid, _ int) {
		d := NewDense(NewLayout(g, benchN, ColAligned), 7)
		d.Gather()
	})
}

// BenchmarkTableIPrimitiveAllocs measures steady-state allocations of the
// communicating Table I primitives (SELECT, INVERT, PRUNE) per iteration on
// a fixed frontier — the per-level allocation cost of Algorithm 2's
// bookkeeping steps. EXPERIMENTS.md records the before/after numbers for
// the runtime-context buffer-reuse refactor.
func BenchmarkTableIPrimitiveAllocs(b *testing.B) {
	b.ReportAllocs()
	_, err := mpi.Run(4, func(c *mpi.Comm) error {
		g, err := grid.New(c, 2, 2)
		if err != nil {
			return err
		}
		s := benchSparse(g, 3)
		d := NewDense(s.L, semiring.None)
		rowL := NewLayout(g, benchN, RowAligned)
		roots := make([]int64, 0, 64)
		r := s.L.MyRange()
		for gi := r.Lo; gi < r.Hi && len(roots) < 64; gi += 97 {
			roots = append(roots, int64(gi))
		}
		for i := 0; i < b.N; i++ {
			s.Select(d, func(v int64) bool { return v == semiring.None })
			s.InvertParents(rowL)
			s.PruneRoots(roots)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

package dvec

import (
	"fmt"

	"mcmdist/internal/mpi"
	"mcmdist/internal/obs"
	"mcmdist/internal/parallel"
)

// Dense is one rank's piece of a distributed dense vector of int64 (the
// paper's mate, parent and path vectors, with semiring.None marking missing
// entries).
type Dense struct {
	L     Layout
	Local []int64 // values for MyRange(), index-shifted by MyRange().Lo
}

// NewDense builds a distributed dense vector with every element fill.
func NewDense(l Layout, fill int64) *Dense {
	local := make([]int64, l.MyRange().Len())
	for i := range local {
		local[i] = fill
	}
	return &Dense{L: l, Local: local}
}

// NewDenseFrom builds a distributed dense vector from a replicated global
// slice (each rank keeps only its block). Intended for tests and input
// loading.
func NewDenseFrom(l Layout, global []int64) *Dense {
	if len(global) != l.N {
		panic(fmt.Sprintf("dvec: global slice length %d != %d", len(global), l.N))
	}
	r := l.MyRange()
	local := make([]int64, r.Len())
	copy(local, global[r.Lo:r.Hi])
	return &Dense{L: l, Local: local}
}

// At returns the value at global index g, which must be owned by this rank.
func (d *Dense) At(g int) int64 {
	r := d.L.MyRange()
	if !r.Contains(g) {
		panic(fmt.Sprintf("dvec: index %d outside local range [%d,%d)", g, r.Lo, r.Hi))
	}
	return d.Local[g-r.Lo]
}

// SetAt stores v at global index g, which must be owned by this rank.
func (d *Dense) SetAt(g int, v int64) {
	r := d.L.MyRange()
	if !r.Contains(g) {
		panic(fmt.Sprintf("dvec: index %d outside local range [%d,%d)", g, r.Lo, r.Hi))
	}
	d.Local[g-r.Lo] = v
}

// Fill overwrites every local element with v.
func (d *Dense) Fill(v int64) {
	for i := range d.Local {
		d.Local[i] = v
	}
}

// Clone returns a deep copy sharing the layout.
func (d *Dense) Clone() *Dense {
	return &Dense{L: d.L, Local: append([]int64(nil), d.Local...)}
}

// CountEq returns the global number of elements equal to v. Collective.
func (d *Dense) CountEq(v int64) int {
	var local int64
	for _, x := range d.Local {
		if x == v {
			local++
		}
	}
	d.L.G.World.AddWork(len(d.Local))
	return int(d.L.G.World.Allreduce(mpi.OpSum, local))
}

// Gather reconstructs the full vector on every rank. Collective; intended
// for verification, result extraction and small outputs, not inner loops.
// The send payload is an rt arena buffer and each peer's block is placed
// straight out of its send buffer as it arrives (progressive split-phase
// allgather, zero staging copies); only the returned global slice is
// allocated. Metering is identical to Allgatherv.
func (d *Dense) Gather() []int64 {
	c := d.L.G.World
	ctx := d.L.G.RT
	tr := ctx.Tracer()
	t0 := tr.Begin()
	r := d.L.MyRange()
	// Ship (offset, values...) so receivers can place blocks.
	payload := ctx.GetInts(len(d.Local) + 1)
	payload = append(payload, int64(r.Lo))
	payload = append(payload, d.Local...)
	out := make([]int64, d.L.N)
	rq := c.IAllgathervParts(payload)
	for {
		_, p, ok := rq.Next()
		if !ok {
			break
		}
		lo := int(p[0])
		copy(out[lo:lo+len(p)-1], p[1:])
	}
	rq.Finish()
	ctx.PutInts(payload)
	tr.End(obs.KindOp, "dvec.gather", t0, int64(d.L.N))
	return out
}

// SparseWhere builds a sparse vector from the dense entries satisfying
// pred, keeping their values. Local (the paper's "sparse vector from path_c
// by removing entries with -1"). The scan runs as the two-pass compaction
// on the rank's worker pool, so both result slices are sized exactly; Val
// is drawn from the rt arena, and hot-path callers may hand it back with
// Ctx.PutInts once the vector is dead (callers that don't simply leave it
// to the garbage collector).
func (d *Dense) SparseWhere(pred func(int64) bool) *SparseInt {
	lo := d.L.MyRange().Lo
	ctx := d.L.G.RT
	pool := ctx.Pool()
	n := len(d.Local)
	bounds := pool.Chunks(n, parallel.DefaultMinChunk)
	w := len(bounds) - 1
	offsets := make([]int, w+1)
	pool.ForChunked(n, parallel.DefaultMinChunk, func(wi, clo, chi int) {
		cnt := 0
		for i := clo; i < chi; i++ {
			if pred(d.Local[i]) {
				cnt++
			}
		}
		offsets[wi+1] = cnt
	})
	for i := 1; i <= w; i++ {
		offsets[i] += offsets[i-1]
	}
	total := offsets[w]
	out := &SparseInt{L: d.L}
	if total > 0 {
		out.Idx = make([]int, total)
		out.Val = ctx.GetInts(total)[:total]
		pool.ForChunked(n, parallel.DefaultMinChunk, func(wi, clo, chi int) {
			o := offsets[wi]
			for i := clo; i < chi; i++ {
				if v := d.Local[i]; pred(v) {
					out.Idx[o] = lo + i
					out.Val[o] = v
					o++
				}
			}
		})
	}
	d.L.G.World.AddWork(len(d.Local))
	return out
}

package dvec

import (
	"fmt"

	"mcmdist/internal/mpi"
)

// Dense is one rank's piece of a distributed dense vector of int64 (the
// paper's mate, parent and path vectors, with semiring.None marking missing
// entries).
type Dense struct {
	L     Layout
	Local []int64 // values for MyRange(), index-shifted by MyRange().Lo
}

// NewDense builds a distributed dense vector with every element fill.
func NewDense(l Layout, fill int64) *Dense {
	local := make([]int64, l.MyRange().Len())
	for i := range local {
		local[i] = fill
	}
	return &Dense{L: l, Local: local}
}

// NewDenseFrom builds a distributed dense vector from a replicated global
// slice (each rank keeps only its block). Intended for tests and input
// loading.
func NewDenseFrom(l Layout, global []int64) *Dense {
	if len(global) != l.N {
		panic(fmt.Sprintf("dvec: global slice length %d != %d", len(global), l.N))
	}
	r := l.MyRange()
	local := make([]int64, r.Len())
	copy(local, global[r.Lo:r.Hi])
	return &Dense{L: l, Local: local}
}

// At returns the value at global index g, which must be owned by this rank.
func (d *Dense) At(g int) int64 {
	r := d.L.MyRange()
	if !r.Contains(g) {
		panic(fmt.Sprintf("dvec: index %d outside local range [%d,%d)", g, r.Lo, r.Hi))
	}
	return d.Local[g-r.Lo]
}

// SetAt stores v at global index g, which must be owned by this rank.
func (d *Dense) SetAt(g int, v int64) {
	r := d.L.MyRange()
	if !r.Contains(g) {
		panic(fmt.Sprintf("dvec: index %d outside local range [%d,%d)", g, r.Lo, r.Hi))
	}
	d.Local[g-r.Lo] = v
}

// Fill overwrites every local element with v.
func (d *Dense) Fill(v int64) {
	for i := range d.Local {
		d.Local[i] = v
	}
}

// Clone returns a deep copy sharing the layout.
func (d *Dense) Clone() *Dense {
	return &Dense{L: d.L, Local: append([]int64(nil), d.Local...)}
}

// CountEq returns the global number of elements equal to v. Collective.
func (d *Dense) CountEq(v int64) int {
	var local int64
	for _, x := range d.Local {
		if x == v {
			local++
		}
	}
	d.L.G.World.AddWork(len(d.Local))
	return int(d.L.G.World.Allreduce(mpi.OpSum, local))
}

// Gather reconstructs the full vector on every rank. Collective; intended
// for verification, result extraction and small outputs, not inner loops.
func (d *Dense) Gather() []int64 {
	c := d.L.G.World
	r := d.L.MyRange()
	// Ship (offset, values...) so receivers can place blocks.
	payload := make([]int64, 0, len(d.Local)+1)
	payload = append(payload, int64(r.Lo))
	payload = append(payload, d.Local...)
	parts := c.Allgatherv(payload)
	out := make([]int64, d.L.N)
	for _, p := range parts {
		lo := int(p[0])
		copy(out[lo:lo+len(p)-1], p[1:])
	}
	return out
}

// SparseWhere builds a sparse vector from the dense entries satisfying
// pred, keeping their values. Local (the paper's "sparse vector from path_c
// by removing entries with -1").
func (d *Dense) SparseWhere(pred func(int64) bool) *SparseInt {
	lo := d.L.MyRange().Lo
	out := &SparseInt{L: d.L}
	for i, v := range d.Local {
		if pred(v) {
			out.Idx = append(out.Idx, lo+i)
			out.Val = append(out.Val, v)
		}
	}
	d.L.G.World.AddWork(len(d.Local))
	return out
}

package costmodel

import (
	"math"
	"testing"

	"mcmdist/internal/mpi"
)

func TestTimeComponents(t *testing.T) {
	m := Machine{Name: "unit", TOp: 1, Alpha: 10, Beta: 100}
	meter := mpi.Meter{Work: 5, Msgs: 3, Words: 2}
	want := 5.0 + 30 + 200
	if got := m.Time(meter, 1); got != want {
		t.Fatalf("Time = %v, want %v", got, want)
	}
}

func TestThreadsDivideWorkOnly(t *testing.T) {
	m := Machine{TOp: 1, Alpha: 1, Beta: 1}
	meter := mpi.Meter{Work: 12, Msgs: 4, Words: 8}
	t1 := m.Time(meter, 1)
	t4 := m.Time(meter, 4)
	if t4 >= t1 {
		t.Fatalf("threads did not help: %v >= %v", t4, t1)
	}
	if want := 12.0/4 + 4 + 8; t4 != want {
		t.Fatalf("t4 = %v, want %v", t4, want)
	}
	// Communication terms unchanged.
	if m.Time(mpi.Meter{Msgs: 4, Words: 8}, 4) != 12 {
		t.Fatal("threads scaled communication")
	}
	if m.Time(meter, 0) != t1 {
		t.Fatal("threads=0 not treated as 1")
	}
}

func TestCriticalTimeIsMax(t *testing.T) {
	m := Machine{TOp: 1, Alpha: 0, Beta: 0}
	per := []mpi.Meter{{Work: 1}, {Work: 9}, {Work: 4}}
	if got := m.CriticalTime(per, 1); got != 9 {
		t.Fatalf("CriticalTime = %v", got)
	}
	if m.CriticalTime(nil, 1) != 0 {
		t.Fatal("empty CriticalTime nonzero")
	}
}

func TestBreakdown(t *testing.T) {
	m := Machine{TOp: 1, Alpha: 1, Beta: 1}
	got := m.Breakdown(map[string]mpi.Meter{
		"spmv":   {Work: 2},
		"invert": {Msgs: 3},
	}, 1)
	if got["spmv"] != 2 || got["invert"] != 3 {
		t.Fatalf("Breakdown = %v", got)
	}
}

func TestGatherScatterGrowsWithEdges(t *testing.T) {
	small := Edison.GatherScatter(1_000_000, 100_000, 2048)
	big := Edison.GatherScatter(1_000_000_000, 100_000_000, 2048)
	if big <= small {
		t.Fatalf("gather cost did not grow: %v <= %v", big, small)
	}
	// Fig. 9's anchor: ~900M nonzeros takes on the order of 10 seconds.
	nlp := Edison.GatherScatter(900_000_000, 100_000_000, 2048)
	if nlp < 1 || nlp > 60 {
		t.Fatalf("nlpkkt200-scale gather = %v s, expected order 10 s", nlp)
	}
	if Edison.GatherScatter(100, 10, 1) != 0 {
		t.Fatal("single-rank gather should be free")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Fatal("speedup wrong")
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
}

func TestEdisonConstantsPlausible(t *testing.T) {
	if Edison.Alpha < 1e-7 || Edison.Alpha > 1e-5 {
		t.Fatalf("alpha %v not in plausible MPI range", Edison.Alpha)
	}
	if Edison.Beta <= 0 || Edison.Beta > 1e-7 {
		t.Fatalf("beta %v implausible", Edison.Beta)
	}
	if Edison.Alpha/Edison.Beta < 100 {
		t.Fatal("alpha/beta ratio too small: latency should dominate short messages")
	}
	if Edison.String() == "" || math.IsNaN(Edison.Alpha) {
		t.Fatal("bad machine formatting")
	}
}

package costmodel

import "math"

// GraphFeatures summarizes a distributed matching instance for online
// engine selection: global shape and density, the column-degree coefficient
// of variation (stddev/mean — 0 for regular graphs, >1 for power-law), and
// the run's parallel configuration.
type GraphFeatures struct {
	N1, N2  int     // global rows and columns
	NNZ     int     // global edges
	DegCV   float64 // column-degree coefficient of variation
	Procs   int     // MPI ranks
	Threads int     // compute threads per rank
}

// EngineChoice is SelectEngine's verdict with the modeled seconds that
// produced it, so callers (and EXPERIMENTS.md tables) can show their work.
type EngineChoice struct {
	Engine         string
	BFSSeconds     float64
	AuctionSeconds float64
}

// SelectEngine picks a matching engine for an instance on machine m using a
// first-order alpha-beta model of the two families. It is deliberately a
// heuristic — deterministic, monotone in each feature, and documented —
// not a fitted predictor (docs/ENGINES.md derives the terms):
//
// MS-BFS (MCM-DIST): with a maximal-matching initializer the number of
// augmentation phases grows like the path-length bound, L ≈ log2(minDim)+1,
// and each phase runs ≈L level-synchronous iterations, each issuing ~6
// collectives of ~√p messages on the 2D grid. Each phase traverses at most
// all nnz edges (pruning makes later phases cheaper; the bound is what the
// model charges) and moves ~nnz/√p words per rank:
//
//	T_bfs = L·(nnz/p)·t_op/t + 6·L²·√p·α + L·(nnz/(p·√p))·β
//
// Auction: Jacobi bidding rounds. On a degree-regular graph most columns
// win a row within ~avgDeg+1 rounds of local price competition, and degree
// skew multiplies that contention, modeled as the (1+2·CV) factor. But the
// dominant term on large-diameter instances is the price war: an eviction
// re-activates the loser, whose next bid can evict a third column, so
// price increments propagate along alternating chains. Chain length is
// bounded by the price range (the price-out bound, ≈minDim ε-units) and
// shrinks when columns have fallback rows (avgDeg+1) or when hubs absorb
// contention quickly — power-law skew collapses the diameter, damped as
// (1+CV)². Road-network meshes (low degree, low CV, huge diameter) land
// squarely in the war regime: measured rounds exceed minDim, against a
// single-digit local estimate. Each round rescans active columns'
// adjacency (charged at half nnz for the decaying active set), issues 4
// collectives, and replicates the price slab (~n1/√p words) plus bids
// (~n2/p words):
//
//	R       = (avgDeg+1)·(1+2·CV) + minDim/((avgDeg+1)·(1+CV)²)
//	T_auc   = R·(nnz/(2p))·t_op/t + 4·R·√p·α + R·(n1/√p + n2/p)/2·β
//
// The cheaper engine wins; ties go to BFS (the paper's algorithm and the
// better-characterized resident). When BFS wins on a skewed instance
// (CV ≥ 0.5) the grafting variant is chosen — cross-phase tree reuse pays
// off exactly when hub-heavy trees are expensive to rebuild — matching the
// EXPERIMENTS.md graft ablation.
func SelectEngine(m Machine, f GraphFeatures) EngineChoice {
	p := float64(maxInt(f.Procs, 1))
	t := maxInt(f.Threads, 1)
	sqrtP := math.Sqrt(p)
	minDim := maxInt(minInt(f.N1, f.N2), 2)
	nnz := float64(maxInt(f.NNZ, 1))
	avgDeg := nnz / float64(maxInt(f.N2, 1))

	L := math.Log2(float64(minDim)) + 1
	bfs := m.Time2(L*nnz/p, 6*L*L*sqrtP, L*nnz/(p*sqrtP), t)

	rounds := (avgDeg+1)*(1+2*f.DegCV) +
		float64(minDim)/((avgDeg+1)*(1+f.DegCV)*(1+f.DegCV))
	aucWords := rounds * (float64(f.N1)/sqrtP + float64(f.N2)/p) / 2
	auction := m.Time2(rounds*nnz/(2*p), 4*rounds*sqrtP, aucWords, t)

	choice := EngineChoice{BFSSeconds: bfs, AuctionSeconds: auction}
	if auction < bfs {
		choice.Engine = "auction"
		return choice
	}
	choice.Engine = "bfs"
	if f.DegCV >= 0.5 {
		choice.Engine = "bfs-graft"
	}
	return choice
}

// Time2 is Time over raw (work, msgs, words) floats instead of an mpi.Meter,
// for modeled quantities that were never metered.
func (m Machine) Time2(work, msgs, words float64, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	return work*m.TOp/float64(threads) + msgs*m.Alpha + words*m.Beta
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

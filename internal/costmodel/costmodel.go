// Package costmodel evaluates the paper's alpha-beta machine model (Section
// IV-B): an algorithm that performs F local operations, sends S messages and
// moves W words takes T = F + alpha*S + beta*W, with alpha the per-message
// latency and beta the per-word inverse bandwidth. The simulated MPI runtime
// meters (F, S, W) exactly per rank; this package turns those meters into
// modeled wall-clock seconds for a target machine, which is how the
// repository reproduces the shape of the paper's Edison (Cray XC30) scaling
// figures at process counts far beyond the host's physical cores.
package costmodel

import (
	"fmt"

	"mcmdist/internal/mpi"
)

// Machine holds the three model constants, all in seconds.
type Machine struct {
	Name  string
	TOp   float64 // time per local graph operation (memory-bound edge visit)
	Alpha float64 // per-message latency
	Beta  float64 // per 8-byte word transfer time
}

// Edison approximates a Cray XC30 node on the Aries dragonfly interconnect:
// ~1.5 microseconds MPI latency, ~6.4 GB/s effective per-process bandwidth
// (beta = 1.25 ns per 8-byte word), and ~2 ns per memory-bound graph edge
// operation on a 2.4 GHz Ivy Bridge core.
var Edison = Machine{Name: "edison-xc30", TOp: 2e-9, Alpha: 1.5e-6, Beta: 1.25e-9}

// Laptop approximates the simulation host itself, for sanity comparisons.
var Laptop = Machine{Name: "laptop", TOp: 1.5e-9, Alpha: 4e-7, Beta: 2.5e-10}

// Time converts one rank's meter into modeled seconds with the given
// intra-rank thread count dividing the local-work term (the paper's hybrid
// OpenMP-MPI model: local computation is fully multithreaded, communication
// is funneled through one thread per rank).
func (m Machine) Time(meter mpi.Meter, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	return float64(meter.Work)*m.TOp/float64(threads) +
		float64(meter.Msgs)*m.Alpha +
		float64(meter.Words)*m.Beta
}

// CriticalTime models the run's critical path as the maximum per-rank
// modeled time, appropriate for the load-balanced bulk-synchronous phases
// the random permutation of Section IV-A aims for.
func (m Machine) CriticalTime(perRank []mpi.Meter, threads int) float64 {
	var worst float64
	for _, meter := range perRank {
		if t := m.Time(meter, threads); t > worst {
			worst = t
		}
	}
	return worst
}

// Breakdown converts a per-category meter map into per-category modeled
// seconds.
func (m Machine) Breakdown(meters map[string]mpi.Meter, threads int) map[string]float64 {
	out := make(map[string]float64, len(meters))
	for k, meter := range meters {
		out[k] = m.Time(meter, threads)
	}
	return out
}

// GatherScatter models the Section VI-E experiment (Fig. 9): collecting a
// distributed graph with nnz edges and n+n mate entries onto one rank and
// scattering the mate vectors back, on p ranks. The gather moves 2 words per
// edge to rank 0 (p-1 messages there, 1 from each leaf); the scatter moves 2n
// words of mate vectors back out. Rank 0's cost dominates and is returned.
func (m Machine) GatherScatter(nnz, n, p int) float64 {
	if p < 2 {
		return 0
	}
	gatherWords := float64(2 * nnz)
	scatterWords := float64(2 * n)
	msgs := float64(2 * (p - 1))
	return msgs*m.Alpha + (gatherWords+scatterWords)*m.Beta
}

// Speedup returns base/t, guarding against division by zero.
func Speedup(base, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return base / t
}

// String formats the machine constants.
func (m Machine) String() string {
	return fmt.Sprintf("%s(t_op=%.2gs, alpha=%.2gs, beta=%.2gs)", m.Name, m.TOp, m.Alpha, m.Beta)
}

// PullCrossover returns the frontier fraction (of the column count) at which
// the alpha-beta model predicts a bottom-up ("pull") SpMV iteration becomes
// cheaper than the top-down ("push") one, used online as the initial switch
// threshold of the direction-optimizing BFS (docs/KERNELS.md). Per frontier
// column, push traverses avgDeg edges and folds ~avgDeg candidate triples
// (three words each); per column of the slab, pull pays one early-exit scan
// step plus roughly one word of visited-set replication. Equating the two
// per-column costs at frontier fraction x:
//
//	x·avgDeg·(TOp/threads + 3β) = TOp/threads + β
//
// and solving for x. The result is clamped to [1/64, 1/2]: below the floor
// the switch would thrash on noise; above the ceiling pull could never
// engage on the frontier shapes MS-BFS produces. Callers pass the machine
// being modeled (the host for real timing, Edison for modeled figures).
func PullCrossover(m Machine, threads int, avgDeg float64) float64 {
	if threads < 1 {
		threads = 1
	}
	if avgDeg < 1 {
		avgDeg = 1
	}
	op := m.TOp / float64(threads)
	x := (op + m.Beta) / (avgDeg * (op + 3*m.Beta))
	if x < 1.0/64 {
		x = 1.0 / 64
	}
	if x > 0.5 {
		x = 0.5
	}
	return x
}

// EdisonMini is Edison rescaled for the miniature inputs this repository
// runs in-process. The stand-in matrices are three to five orders of
// magnitude smaller than the paper's (10^4 vertices instead of 10^7..10^9),
// so per-rank work and message volumes shrink by the same factor while
// Edison's absolute per-message latency does not; using Edison's constants
// directly would place every miniature run in an extreme latency-bound
// regime the paper only reaches beyond ~10^4 cores. EdisonMini keeps TOp,
// scales alpha by the input-size ratio (~1500x) and doubles beta (short
// messages achieve lower effective bandwidth), preserving the relative
// magnitudes of the three cost terms — F, alpha*S, beta*W — that Edison
// exhibits at the paper's input sizes. Scaling *shapes* (who wins, where
// curves flatten) are therefore comparable; absolute times are not, and
// EXPERIMENTS.md only ever compares shapes.
var EdisonMini = Machine{Name: "edison-mini", TOp: 2e-9, Alpha: 1e-9, Beta: 2.5e-9}

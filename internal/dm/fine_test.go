package dm

import (
	"math/rand"
	"testing"

	"mcmdist/internal/matching"
	"mcmdist/internal/spmat"
)

func TestTarjanSimpleCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 plus 3 -> 0: two components, {0,1,2} and {3},
	// with {0,1,2} first (reverse topological).
	adj := [][]int{{1}, {2}, {0}, {0}}
	comps := tarjanSCC(adj)
	if len(comps) != 2 {
		t.Fatalf("%d components", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Fatalf("components %v", comps)
	}
}

func TestTarjanDAG(t *testing.T) {
	// 0 -> 1 -> 2: three singletons, emitted 2, 1, 0.
	comps := tarjanSCC([][]int{{1}, {2}, {}})
	if len(comps) != 3 {
		t.Fatalf("%d components", len(comps))
	}
	order := []int{comps[0][0], comps[1][0], comps[2][0]}
	if order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Fatalf("order %v, want reverse topological", order)
	}
}

func TestTarjanEmpty(t *testing.T) {
	if got := tarjanSCC(nil); len(got) != 0 {
		t.Fatal("nonempty components for empty graph")
	}
}

func TestTarjanSelfLoopsAndBigRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		for k := 0; k < 3; k++ {
			adj[v] = append(adj[v], rng.Intn(n))
		}
	}
	comps := tarjanSCC(adj)
	seen := make([]bool, n)
	total := 0
	for _, comp := range comps {
		for _, v := range comp {
			if seen[v] {
				t.Fatalf("vertex %d in two components", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("components cover %d of %d", total, n)
	}
}

// checkFine validates the fine decomposition invariants: blocks partition
// the square part, each block is square and internally matched, and the
// ordering is block upper triangular (no edge from a later block's row to
// an earlier block's column — i.e. edges only go from a block to itself or
// to blocks emitted before it, which are its descendants in the
// condensation).
func checkFine(t *testing.T, a *spmat.CSC, m *matching.Matching, c *Coarse, blocks []FineBlock) {
	t.Helper()
	colPos := make(map[int]int) // column -> block index
	total := 0
	for bi, b := range blocks {
		if len(b.Rows) != len(b.Cols) {
			t.Fatalf("block %d not square", bi)
		}
		for k, j := range b.Cols {
			colPos[j] = bi
			if int(m.MateC[j]) != b.Rows[k] {
				t.Fatalf("block %d: row/col %d not matched pair", bi, k)
			}
			total++
		}
	}
	if total != len(c.SC) {
		t.Fatalf("fine blocks cover %d of %d square columns", total, len(c.SC))
	}
	// Condensation acyclicity: an edge from block bi's matched row to a
	// column in block bj implies bj <= bi (bj emitted earlier or same,
	// since Tarjan emits descendants first).
	at := a.Transpose()
	for bi, b := range blocks {
		for _, r := range b.Rows {
			for _, j2 := range at.Col(r) {
				if bj, ok := colPos[j2]; ok && bj > bi {
					t.Fatalf("edge from block %d to later block %d breaks triangular form", bi, bj)
				}
			}
		}
	}
}

func TestFineRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		nr, nc := 1+rng.Intn(40), 1+rng.Intn(40)
		a := randomBipartite(rng, nr, nc, rng.Intn(4*(nr+nc)))
		m := matching.HopcroftKarp(a, nil)
		c, err := Decompose(a, m)
		if err != nil {
			t.Fatal(err)
		}
		blocks := Fine(a, m, c)
		checkFine(t, a, m, c, blocks)
	}
}

func TestFineIdentityAllSingletons(t *testing.T) {
	const n = 8
	coo := spmat.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i)
	}
	a := coo.ToCSC()
	m := matching.HopcroftKarp(a, nil)
	c, _ := Decompose(a, m)
	blocks := Fine(a, m, c)
	if len(blocks) != n {
		t.Fatalf("%d blocks, want %d singletons", len(blocks), n)
	}
}

func TestFineFullCycleOneBlock(t *testing.T) {
	// Circulant pattern: diagonal + superdiagonal (wrapping): the
	// contracted digraph is one big cycle -> a single irreducible block.
	const n = 6
	coo := spmat.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i)
		coo.Add(i, (i+1)%n)
	}
	a := coo.ToCSC()
	m := matching.HopcroftKarp(a, nil)
	c, _ := Decompose(a, m)
	if len(c.SC) != n {
		t.Fatalf("square block %d", len(c.SC))
	}
	blocks := Fine(a, m, c)
	if len(blocks) != 1 || len(blocks[0].Cols) != n {
		t.Fatalf("blocks %v, want one n-block", blocks)
	}
}

func TestFineEmptySquare(t *testing.T) {
	// All-vertical graph: no square block, no fine blocks.
	coo := spmat.NewCOO(1, 3)
	for j := 0; j < 3; j++ {
		coo.Add(0, j)
	}
	a := coo.ToCSC()
	m := matching.HopcroftKarp(a, nil)
	c, _ := Decompose(a, m)
	if blocks := Fine(a, m, c); blocks != nil {
		t.Fatalf("blocks %v on empty square part", blocks)
	}
}

// Package dm computes the coarse Dulmage–Mendelsohn decomposition of a
// bipartite graph from a maximum cardinality matching. The decomposition is
// the classic consumer of the matchings this repository computes: sparse
// direct solvers (the paper's motivating application, Section I) use it to
// permute a matrix into block triangular form, splitting it into an
// underdetermined horizontal block, a square block with a perfect matching,
// and an overdetermined vertical block.
package dm

import (
	"fmt"

	"mcmdist/internal/matching"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// Coarse is the coarse Dulmage–Mendelsohn decomposition. Rows partition
// into HR ∪ SR ∪ VR and columns into HC ∪ SC ∪ VC:
//
//   - (HR, HC): the horizontal (underdetermined) block — every vertex
//     reachable by alternating paths from some unmatched row. All unmatched
//     rows live here, |HC| ≤ |HR| is wrong way; |HR| ≥ ... every HC column
//     is matched into HR.
//   - (SR, SC): the square block — untouched by either reachability sweep;
//     the matching restricted to it is perfect, so |SR| = |SC|.
//   - (VR, VC): the vertical (overdetermined) block — reachable from some
//     unmatched column. All unmatched columns live here and every VR row is
//     matched into VC.
//
// Ordering rows (HR, SR, VR) and columns (HC, SC, VC) puts the matrix in
// block upper/lower triangular form: no edge connects VC to a row outside
// VR, and no edge connects HR to a column outside HC.
type Coarse struct {
	HR, SR, VR []int
	HC, SC, VC []int
}

// reach marks vertices reachable by alternating paths. With fromRows=false
// it starts at unmatched columns and alternates free edges C→R with matched
// edges R→C; with fromRows=true it starts at unmatched rows and alternates
// free edges R→C with matched edges C→R (which needs the transpose at).
func reach(a, at *spmat.CSC, m *matching.Matching, fromRows bool) (rows, cols []bool) {
	rows = make([]bool, a.NRows)
	cols = make([]bool, a.NCols)
	var queueR, queueC []int
	if fromRows {
		for i := 0; i < a.NRows; i++ {
			if m.MateR[i] == semiring.None {
				rows[i] = true
				queueR = append(queueR, i)
			}
		}
	} else {
		for j := 0; j < a.NCols; j++ {
			if m.MateC[j] == semiring.None {
				cols[j] = true
				queueC = append(queueC, j)
			}
		}
	}
	for len(queueR) > 0 || len(queueC) > 0 {
		if fromRows {
			// R -> C via any edge, C -> R via the matched edge.
			for len(queueR) > 0 {
				i := queueR[len(queueR)-1]
				queueR = queueR[:len(queueR)-1]
				for _, j := range at.Col(i) {
					if !cols[j] {
						cols[j] = true
						queueC = append(queueC, j)
					}
				}
			}
			for len(queueC) > 0 {
				j := queueC[len(queueC)-1]
				queueC = queueC[:len(queueC)-1]
				if mi := m.MateC[j]; mi != semiring.None && !rows[mi] {
					rows[mi] = true
					queueR = append(queueR, int(mi))
				}
			}
		} else {
			// C -> R via any edge, R -> C via the matched edge.
			for len(queueC) > 0 {
				j := queueC[len(queueC)-1]
				queueC = queueC[:len(queueC)-1]
				for _, i := range a.Col(j) {
					if !rows[i] {
						rows[i] = true
						queueR = append(queueR, i)
					}
				}
			}
			for len(queueR) > 0 {
				i := queueR[len(queueR)-1]
				queueR = queueR[:len(queueR)-1]
				if mj := m.MateR[i]; mj != semiring.None && !cols[mj] {
					cols[mj] = true
					queueC = append(queueC, int(mj))
				}
			}
		}
	}
	return rows, cols
}

// Decompose computes the coarse decomposition. m must be a valid maximum
// cardinality matching of a; Decompose verifies the structural facts the
// decomposition relies on and reports an error otherwise.
func Decompose(a *spmat.CSC, m *matching.Matching) (*Coarse, error) {
	if err := m.Validate(a); err != nil {
		return nil, err
	}
	at := a.Transpose()
	vRows, vCols := reach(a, at, m, false) // from unmatched columns
	hRows, hCols := reach(a, at, m, true)  // from unmatched rows

	// For a maximum matching the two reachability sweeps are disjoint: a
	// vertex in both would lie on an augmenting path.
	for i := 0; i < a.NRows; i++ {
		if vRows[i] && hRows[i] {
			return nil, fmt.Errorf("dm: row %d reachable from both sides — matching is not maximum", i)
		}
	}
	for j := 0; j < a.NCols; j++ {
		if vCols[j] && hCols[j] {
			return nil, fmt.Errorf("dm: column %d reachable from both sides — matching is not maximum", j)
		}
	}

	c := &Coarse{}
	for i := 0; i < a.NRows; i++ {
		switch {
		case hRows[i]:
			c.HR = append(c.HR, i)
		case vRows[i]:
			c.VR = append(c.VR, i)
		default:
			c.SR = append(c.SR, i)
		}
	}
	for j := 0; j < a.NCols; j++ {
		switch {
		case hCols[j]:
			c.HC = append(c.HC, j)
		case vCols[j]:
			c.VC = append(c.VC, j)
		default:
			c.SC = append(c.SC, j)
		}
	}
	if len(c.SR) != len(c.SC) {
		return nil, fmt.Errorf("dm: square block %d x %d is not square (internal error)", len(c.SR), len(c.SC))
	}
	return c, nil
}

// StructuralRank returns the structural rank implied by the decomposition,
// which equals the maximum matching cardinality: every HC and VR vertex is
// matched, plus the perfect matching of the square block.
func (c *Coarse) StructuralRank() int {
	return len(c.HC) + len(c.SC) + len(c.VR)
}

// RowOrder returns the rows in block order (HR, SR, VR): the row
// permutation of the block-triangular form.
func (c *Coarse) RowOrder() []int {
	out := make([]int, 0, len(c.HR)+len(c.SR)+len(c.VR))
	out = append(out, c.HR...)
	out = append(out, c.SR...)
	return append(out, c.VR...)
}

// ColOrder returns the columns in block order (HC, SC, VC).
func (c *Coarse) ColOrder() []int {
	out := make([]int, 0, len(c.HC)+len(c.SC)+len(c.VC))
	out = append(out, c.HC...)
	out = append(out, c.SC...)
	return append(out, c.VC...)
}

// String summarizes the block sizes.
func (c *Coarse) String() string {
	return fmt.Sprintf("dm: horizontal %dx%d, square %dx%d, vertical %dx%d",
		len(c.HR), len(c.HC), len(c.SR), len(c.SC), len(c.VR), len(c.VC))
}

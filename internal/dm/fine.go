package dm

import (
	"mcmdist/internal/matching"
	"mcmdist/internal/spmat"
)

// FineBlock is one diagonal block of the fine Dulmage–Mendelsohn
// decomposition: a strongly connected component of the square block's
// contracted digraph. Rows and Cols have equal length and the matching
// pairs them bijectively.
type FineBlock struct {
	Rows, Cols []int
}

// Fine refines the square block (SR, SC) into its irreducible diagonal
// blocks: contract each matched pair (mate(c), c) into one node, add an arc
// c -> c' whenever A(mate(c), c') != 0 with c' != c in SC, and take the
// strongly connected components in reverse topological order. Ordering the
// square block by the returned blocks makes it block upper triangular with
// irreducible diagonal blocks — the form sparse solvers factorize block by
// block.
func Fine(a *spmat.CSC, m *matching.Matching, c *Coarse) []FineBlock {
	n := len(c.SC)
	if n == 0 {
		return nil
	}
	// Map global column index -> contracted node id.
	id := make(map[int]int, n)
	for k, j := range c.SC {
		id[j] = k
	}
	at := a.Transpose()
	// adj[k] lists contracted successors of node k: columns adjacent to
	// node k's matched row.
	adj := make([][]int, n)
	for k, j := range c.SC {
		row := int(m.MateC[j])
		for _, j2 := range at.Col(row) {
			if k2, ok := id[j2]; ok && k2 != k {
				adj[k] = append(adj[k], k2)
			}
		}
	}

	comps := tarjanSCC(adj)

	blocks := make([]FineBlock, len(comps))
	for bi, comp := range comps {
		for _, k := range comp {
			j := c.SC[k]
			blocks[bi].Cols = append(blocks[bi].Cols, j)
			blocks[bi].Rows = append(blocks[bi].Rows, int(m.MateC[j]))
		}
	}
	return blocks
}

// tarjanSCC computes strongly connected components with an iterative
// Tarjan's algorithm. Components are emitted in reverse topological order
// of the condensation (Tarjan's natural output order).
func tarjanSCC(adj [][]int) [][]int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: close the frame.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if low[v] < low[frames[len(frames)-1].v] {
					low[frames[len(frames)-1].v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

package dm

import (
	"math/rand"
	"testing"

	"mcmdist/internal/gen"
	"mcmdist/internal/matching"
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

func randomBipartite(rng *rand.Rand, nr, nc, m int) *spmat.CSC {
	c := spmat.NewCOO(nr, nc)
	for k := 0; k < m; k++ {
		c.Add(rng.Intn(nr), rng.Intn(nc))
	}
	return c.ToCSC()
}

// checkCoarse validates every invariant of a coarse decomposition.
func checkCoarse(t *testing.T, a *spmat.CSC, m *matching.Matching, c *Coarse) {
	t.Helper()
	// Partition.
	if len(c.HR)+len(c.SR)+len(c.VR) != a.NRows {
		t.Fatalf("rows partition %d+%d+%d != %d", len(c.HR), len(c.SR), len(c.VR), a.NRows)
	}
	if len(c.HC)+len(c.SC)+len(c.VC) != a.NCols {
		t.Fatalf("cols partition %d+%d+%d != %d", len(c.HC), len(c.SC), len(c.VC), a.NCols)
	}
	rowBlock := make(map[int]byte)
	for _, i := range c.HR {
		rowBlock[i] = 'H'
	}
	for _, i := range c.SR {
		rowBlock[i] = 'S'
	}
	for _, i := range c.VR {
		rowBlock[i] = 'V'
	}
	colBlock := make(map[int]byte)
	for _, j := range c.HC {
		colBlock[j] = 'H'
	}
	for _, j := range c.SC {
		colBlock[j] = 'S'
	}
	for _, j := range c.VC {
		colBlock[j] = 'V'
	}
	if len(rowBlock) != a.NRows || len(colBlock) != a.NCols {
		t.Fatal("blocks overlap")
	}

	// Unmatched vertices live in their designated blocks.
	for i, mj := range m.MateR {
		if mj == semiring.None && rowBlock[i] != 'H' {
			t.Fatalf("unmatched row %d in block %c, want H", i, rowBlock[i])
		}
	}
	for j, mi := range m.MateC {
		if mi == semiring.None && colBlock[j] != 'V' {
			t.Fatalf("unmatched col %d in block %c, want V", j, colBlock[j])
		}
	}

	// Square block carries a perfect matching; matched pairs stay within a
	// block class.
	if len(c.SR) != len(c.SC) {
		t.Fatalf("square block %dx%d", len(c.SR), len(c.SC))
	}
	for _, i := range c.SR {
		mj := m.MateR[i]
		if mj == semiring.None || colBlock[int(mj)] != 'S' {
			t.Fatalf("square row %d matched to %d (block %c)", i, mj, colBlock[int(mj)])
		}
	}
	for _, j := range c.HC {
		mi := m.MateC[j]
		if mi == semiring.None || rowBlock[int(mi)] != 'H' {
			t.Fatalf("horizontal col %d not matched into HR", j)
		}
	}
	for _, i := range c.VR {
		mj := m.MateR[i]
		if mj == semiring.None || colBlock[int(mj)] != 'V' {
			t.Fatalf("vertical row %d not matched into VC", i)
		}
	}

	// Zero-block structure: edges incident to VC stay in VR; edges incident
	// to HR stay in HC.
	for j := 0; j < a.NCols; j++ {
		for _, i := range a.Col(j) {
			if colBlock[j] == 'V' && rowBlock[i] != 'V' {
				t.Fatalf("edge (%d,%d) leaves the vertical block", i, j)
			}
			if rowBlock[i] == 'H' && colBlock[j] != 'H' {
				t.Fatalf("edge (%d,%d) leaves the horizontal block", i, j)
			}
		}
	}

	// Structural rank equals the matching cardinality.
	if c.StructuralRank() != m.Cardinality() {
		t.Fatalf("structural rank %d != |M| %d", c.StructuralRank(), m.Cardinality())
	}

	// Orders are permutations.
	ro, co := c.RowOrder(), c.ColOrder()
	if len(ro) != a.NRows || len(co) != a.NCols {
		t.Fatal("orders have wrong length")
	}
}

func TestDecomposeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		nr, nc := 1+rng.Intn(50), 1+rng.Intn(50)
		a := randomBipartite(rng, nr, nc, rng.Intn(4*(nr+nc)))
		m := matching.HopcroftKarp(a, nil)
		c, err := Decompose(a, m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkCoarse(t, a, m, c)
	}
}

func TestDecomposeSuite(t *testing.T) {
	for _, sp := range gen.Suite()[:5] {
		a := gen.MustGenerate(sp, 7)
		m := matching.PothenFan(a, nil)
		c, err := Decompose(a, m)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		checkCoarse(t, a, m, c)
	}
}

func TestDecomposeRejectsNonMaximum(t *testing.T) {
	// r0-c0, r0-c1, r1-c1: matching {(r0,c1)} is maximal but not maximum.
	coo := spmat.NewCOO(2, 2)
	coo.Add(0, 0)
	coo.Add(0, 1)
	coo.Add(1, 1)
	a := coo.ToCSC()
	m := matching.NewMatching(2, 2)
	m.Match(0, 1)
	if _, err := Decompose(a, m); err == nil {
		t.Fatal("non-maximum matching accepted")
	}
}

func TestDecomposeRejectsInvalid(t *testing.T) {
	a := randomBipartite(rand.New(rand.NewSource(1)), 3, 3, 4)
	m := matching.NewMatching(3, 3)
	m.MateR[0] = 2 // inconsistent
	if _, err := Decompose(a, m); err == nil {
		t.Fatal("invalid matching accepted")
	}
}

func TestPerfectMatchingAllSquare(t *testing.T) {
	const n = 10
	coo := spmat.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i)
	}
	a := coo.ToCSC()
	m := matching.HopcroftKarp(a, nil)
	c, err := Decompose(a, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.SR) != n || len(c.SC) != n || len(c.HR) != 0 || len(c.VC) != 0 {
		t.Fatalf("identity should be all square: %v", c)
	}
}

func TestWideMatrixHorizontal(t *testing.T) {
	// 1 row, 3 columns all adjacent to it: MCM = 1, two unmatched columns:
	// the whole thing is the vertical block (reachable from unmatched cols).
	coo := spmat.NewCOO(1, 3)
	for j := 0; j < 3; j++ {
		coo.Add(0, j)
	}
	a := coo.ToCSC()
	m := matching.HopcroftKarp(a, nil)
	c, err := Decompose(a, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.VR) != 1 || len(c.VC) != 3 {
		t.Fatalf("expected pure vertical block, got %v", c)
	}
	if c.StructuralRank() != 1 {
		t.Fatalf("structural rank %d", c.StructuralRank())
	}
}

func TestTallMatrixVertical(t *testing.T) {
	// 3 rows, 1 column: mirror case — pure horizontal block.
	coo := spmat.NewCOO(3, 1)
	for i := 0; i < 3; i++ {
		coo.Add(i, 0)
	}
	a := coo.ToCSC()
	m := matching.HopcroftKarp(a, nil)
	c, err := Decompose(a, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.HR) != 3 || len(c.HC) != 1 {
		t.Fatalf("expected pure horizontal block, got %v", c)
	}
}

func TestStringFormat(t *testing.T) {
	c := &Coarse{HR: []int{1}, HC: []int{}, SR: []int{2}, SC: []int{3}}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

// Package matching implements the serial and shared-memory bipartite
// matching algorithms the paper builds on and compares against:
//
//   - the three maximal-matching initializers of Section II-A and VI-A:
//     greedy, Karp–Sipser, and dynamic mindegree;
//   - Hopcroft–Karp, the asymptotically best augmenting-path MCM algorithm,
//     used here as the correctness oracle;
//   - Pothen–Fan (multi-source DFS with lookahead);
//   - MS-BFS, the serial form of the algorithm the paper parallelizes;
//   - MS-BFS-Graft, the tree-grafting variant [Azad, Buluç, Pothen] that is
//     the paper's shared-memory comparator (Section VI-E).
//
// The bipartite graph G = (R, C, E) is given as an n1 x n2 pattern matrix:
// rows are R vertices, columns are C vertices.
package matching

import (
	"fmt"

	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// Matching holds the mate vectors of a bipartite matching: MateR[i] is the
// column matched to row i and MateC[j] the row matched to column j, with
// semiring.None (-1) marking unmatched vertices.
type Matching struct {
	MateR, MateC []int64
}

// NewMatching returns an empty matching for an n1 x n2 graph.
func NewMatching(n1, n2 int) *Matching {
	m := &Matching{MateR: make([]int64, n1), MateC: make([]int64, n2)}
	for i := range m.MateR {
		m.MateR[i] = semiring.None
	}
	for j := range m.MateC {
		m.MateC[j] = semiring.None
	}
	return m
}

// Clone returns a deep copy.
func (m *Matching) Clone() *Matching {
	return &Matching{
		MateR: append([]int64(nil), m.MateR...),
		MateC: append([]int64(nil), m.MateC...),
	}
}

// Cardinality returns the number of matched edges.
func (m *Matching) Cardinality() int {
	n := 0
	for _, v := range m.MateC {
		if v != semiring.None {
			n++
		}
	}
	return n
}

// Match records the edge (row i, column j) as matched.
func (m *Matching) Match(i, j int) {
	m.MateR[i] = int64(j)
	m.MateC[j] = int64(i)
}

// Validate checks structural soundness against the graph: mate vectors are
// mutually consistent, within range, and every matched pair is an edge.
func (m *Matching) Validate(a *spmat.CSC) error {
	if len(m.MateR) != a.NRows || len(m.MateC) != a.NCols {
		return fmt.Errorf("matching: mate vector lengths %d, %d vs graph %d x %d",
			len(m.MateR), len(m.MateC), a.NRows, a.NCols)
	}
	for i, j := range m.MateR {
		if j == semiring.None {
			continue
		}
		if j < 0 || int(j) >= a.NCols {
			return fmt.Errorf("matching: MateR[%d] = %d out of range", i, j)
		}
		if m.MateC[j] != int64(i) {
			return fmt.Errorf("matching: MateR[%d] = %d but MateC[%d] = %d", i, j, j, m.MateC[j])
		}
		if !a.Has(i, int(j)) {
			return fmt.Errorf("matching: matched pair (%d, %d) is not an edge", i, j)
		}
	}
	for j, i := range m.MateC {
		if i == semiring.None {
			continue
		}
		if i < 0 || int(i) >= a.NRows {
			return fmt.Errorf("matching: MateC[%d] = %d out of range", j, i)
		}
		if m.MateR[i] != int64(j) {
			return fmt.Errorf("matching: MateC[%d] = %d but MateR[%d] = %d", j, i, i, m.MateR[i])
		}
	}
	return nil
}

// IsMaximal reports whether no edge joins two unmatched vertices.
func (m *Matching) IsMaximal(a *spmat.CSC) bool {
	for j := 0; j < a.NCols; j++ {
		if m.MateC[j] != semiring.None {
			continue
		}
		for _, i := range a.Col(j) {
			if m.MateR[i] == semiring.None {
				return false
			}
		}
	}
	return true
}

// cloneOrEmpty duplicates init, or builds an empty matching when init is nil.
func cloneOrEmpty(a *spmat.CSC, init *Matching) *Matching {
	if init == nil {
		return NewMatching(a.NRows, a.NCols)
	}
	return init.Clone()
}

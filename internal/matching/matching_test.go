package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcmdist/internal/gen"
	"mcmdist/internal/rmat"
	"mcmdist/internal/spmat"
)

func tiny(t *testing.T, nr, nc int, edges ...[2]int) *spmat.CSC {
	t.Helper()
	c := spmat.NewCOO(nr, nc)
	for _, e := range edges {
		c.Add(e[0], e[1])
	}
	return c.ToCSC()
}

func randomBipartite(rng *rand.Rand, nr, nc, m int) *spmat.CSC {
	c := spmat.NewCOO(nr, nc)
	for k := 0; k < m; k++ {
		c.Add(rng.Intn(nr), rng.Intn(nc))
	}
	return c.ToCSC()
}

func TestMatchingBasics(t *testing.T) {
	m := NewMatching(3, 4)
	if m.Cardinality() != 0 {
		t.Fatal("fresh matching not empty")
	}
	m.Match(1, 2)
	if m.Cardinality() != 1 || m.MateR[1] != 2 || m.MateC[2] != 1 {
		t.Fatalf("Match bookkeeping wrong: %+v", m)
	}
	cl := m.Clone()
	cl.Match(0, 0)
	if m.Cardinality() != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	a := tiny(t, 2, 2, [2]int{0, 0}, [2]int{1, 1})
	m := NewMatching(2, 2)
	m.Match(0, 0)
	if err := m.Validate(a); err != nil {
		t.Fatalf("valid matching rejected: %v", err)
	}
	bad := m.Clone()
	bad.MateR[0] = 1 // (0,1) is not an edge and MateC[1] disagrees
	if err := bad.Validate(a); err == nil {
		t.Fatal("inconsistent mates accepted")
	}
	bad2 := NewMatching(2, 2)
	bad2.MateR[0] = 1
	bad2.MateC[1] = 0
	if err := bad2.Validate(a); err == nil {
		t.Fatal("non-edge matching accepted")
	}
	bad3 := NewMatching(2, 2)
	bad3.MateR[0] = 5
	if err := bad3.Validate(a); err == nil {
		t.Fatal("out-of-range mate accepted")
	}
	if err := NewMatching(3, 2).Validate(a); err == nil {
		t.Fatal("wrong-size matching accepted")
	}
}

func TestIsMaximal(t *testing.T) {
	a := tiny(t, 2, 2, [2]int{0, 0}, [2]int{1, 1})
	m := NewMatching(2, 2)
	if m.IsMaximal(a) {
		t.Fatal("empty matching reported maximal on a matchable graph")
	}
	m.Match(0, 0)
	m.Match(1, 1)
	if !m.IsMaximal(a) {
		t.Fatal("perfect matching not maximal")
	}
}

func maximalAlgos() map[string]func(*spmat.CSC) *Matching {
	return map[string]func(*spmat.CSC) *Matching{
		"greedy":       Greedy,
		"karp-sipser":  func(a *spmat.CSC) *Matching { return KarpSipser(a, 1) },
		"dynmindegree": DynMinDegree,
	}
}

func mcmAlgos() map[string]func(*spmat.CSC, *Matching) *Matching {
	return map[string]func(*spmat.CSC, *Matching) *Matching{
		"hopcroft-karp": HopcroftKarp,
		"ms-bfs":        MSBFS,
		"pothen-fan":    PothenFan,
		"ms-bfs-graft":  MSBFSGraft,
		"push-relabel":  PushRelabel,
	}
}

func TestMaximalAlgorithmsAreValidAndMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		nr, nc := 1+rng.Intn(60), 1+rng.Intn(60)
		a := randomBipartite(rng, nr, nc, rng.Intn(6*(nr+nc)))
		for name, algo := range maximalAlgos() {
			m := algo(a)
			if err := m.Validate(a); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if !m.IsMaximal(a) {
				t.Fatalf("trial %d %s: not maximal", trial, name)
			}
		}
	}
}

func TestMaximalApproximationRatio(t *testing.T) {
	// Any maximal matching has cardinality >= MCM/2 (Section II).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		a := randomBipartite(rng, 50, 50, 200)
		opt := HopcroftKarp(a, nil).Cardinality()
		for name, algo := range maximalAlgos() {
			c := algo(a).Cardinality()
			if 2*c < opt {
				t.Fatalf("trial %d %s: cardinality %d < half of optimal %d", trial, name, c, opt)
			}
		}
	}
}

func TestKarpSipserDegreeOneChains(t *testing.T) {
	// A path graph r0-c0-r1-c1-...: Karp-Sipser's degree-1 rule finds the
	// perfect matching where pure random matching can fail.
	const n = 20
	c := spmat.NewCOO(n, n)
	for k := 0; k < n; k++ {
		c.Add(k, k)
		if k+1 < n {
			c.Add(k+1, k)
		}
	}
	a := c.ToCSC()
	m := KarpSipser(a, 7)
	if m.Cardinality() != n {
		t.Fatalf("Karp-Sipser found %d on a chain with perfect matching %d", m.Cardinality(), n)
	}
}

func TestMCMAlgorithmsAgreeWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		nr, nc := 1+rng.Intn(50), 1+rng.Intn(50)
		a := randomBipartite(rng, nr, nc, rng.Intn(5*(nr+nc)))
		want := HopcroftKarp(a, nil).Cardinality()
		for name, algo := range mcmAlgos() {
			m := algo(a, nil)
			if err := m.Validate(a); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if got := m.Cardinality(); got != want {
				t.Fatalf("trial %d %s: cardinality %d, oracle %d", trial, name, got, want)
			}
		}
	}
}

func TestMCMWithInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 8; trial++ {
		a := randomBipartite(rng, 40, 45, 250)
		want := HopcroftKarp(a, nil).Cardinality()
		for initName, initAlgo := range maximalAlgos() {
			init := initAlgo(a)
			for name, algo := range mcmAlgos() {
				m := algo(a, init)
				if err := m.Validate(a); err != nil {
					t.Fatalf("%s+%s: %v", initName, name, err)
				}
				if got := m.Cardinality(); got != want {
					t.Fatalf("%s+%s: %d, oracle %d", initName, name, got, want)
				}
			}
			// init must not have been mutated.
			if err := init.Validate(a); err != nil {
				t.Fatalf("%s: init mutated: %v", initName, err)
			}
		}
	}
}

func TestMCMOnStructuredGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("structured suite in -short mode")
	}
	for _, sp := range gen.Suite() {
		a := gen.MustGenerate(sp, 7)
		want := HopcroftKarp(a, nil).Cardinality()
		for name, algo := range mcmAlgos() {
			if got := algo(a, nil).Cardinality(); got != want {
				t.Errorf("%s on %s: %d, oracle %d", name, sp.Name, got, want)
			}
		}
	}
}

func TestMCMOnRMAT(t *testing.T) {
	for _, p := range []rmat.Params{rmat.G500, rmat.SSCA, rmat.ER} {
		a := rmat.MustGenerate(p, 8, 4, 11)
		want := HopcroftKarp(a, nil).Cardinality()
		for name, algo := range mcmAlgos() {
			if got := algo(a, nil).Cardinality(); got != want {
				t.Errorf("%s on rmat %+v: %d, oracle %d", name, p, got, want)
			}
		}
	}
}

func TestPerfectMatchingOnIdentity(t *testing.T) {
	const n = 30
	c := spmat.NewCOO(n, n)
	for k := 0; k < n; k++ {
		c.Add(k, k)
	}
	a := c.ToCSC()
	for name, algo := range mcmAlgos() {
		if got := algo(a, nil).Cardinality(); got != n {
			t.Errorf("%s: %d on identity, want %d", name, got, n)
		}
	}
}

func TestStructurallyDeficient(t *testing.T) {
	// 4 columns all adjacent only to row 0: MCM = 1.
	a := tiny(t, 3, 4, [2]int{0, 0}, [2]int{0, 1}, [2]int{0, 2}, [2]int{0, 3})
	for name, algo := range mcmAlgos() {
		m := algo(a, nil)
		if got := m.Cardinality(); got != 1 {
			t.Errorf("%s: %d, want 1", name, got)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	a := tiny(t, 5, 5)
	for name, algo := range mcmAlgos() {
		if got := algo(a, nil).Cardinality(); got != 0 {
			t.Errorf("%s: %d on empty graph", name, got)
		}
	}
	for name, algo := range maximalAlgos() {
		if got := algo(a).Cardinality(); got != 0 {
			t.Errorf("%s: %d on empty graph", name, got)
		}
	}
}

func TestZeroDimensions(t *testing.T) {
	a := tiny(t, 0, 0)
	for name, algo := range mcmAlgos() {
		if got := algo(a, nil).Cardinality(); got != 0 {
			t.Errorf("%s: %d on 0x0", name, got)
		}
	}
}

// TestAugmentationRaisesCardinalityByPathCount checks the Section II
// invariant |M ⊕ P| = |M| + |P| indirectly: starting MCM algorithms from a
// maximal matching must close exactly the deficiency.
func TestDeficiencyClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomBipartite(rng, 80, 80, 240)
	init := Greedy(a)
	opt := HopcroftKarp(a, nil).Cardinality()
	got := MSBFS(a, init).Cardinality()
	if got != opt {
		t.Fatalf("MSBFS from greedy: %d, want %d", got, opt)
	}
	if init.Cardinality() > got {
		t.Fatal("augmentation lost edges")
	}
}

// TestLongPathAugmentation exercises a graph whose only augmenting path is
// long: a ladder forcing O(n)-length alternating paths.
func TestLongPathAugmentation(t *testing.T) {
	// Columns c0..c{n-1}, rows r0..r{n-1}; ci adjacent to ri and r{i+1};
	// initial matching ci-r{i+1} for i<n-1 leaves c{n-1} and r0 unmatched,
	// with the unique augmenting path traversing the whole ladder.
	const n = 400
	c := spmat.NewCOO(n, n)
	for k := 0; k < n; k++ {
		c.Add(k, k)
		if k+1 < n {
			c.Add(k+1, k)
		}
	}
	a := c.ToCSC()
	init := NewMatching(n, n)
	for k := 0; k < n-1; k++ {
		init.Match(k+1, k)
	}
	for name, algo := range mcmAlgos() {
		m := algo(a, init)
		if err := m.Validate(a); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Cardinality() != n {
			t.Errorf("%s: %d, want perfect %d", name, m.Cardinality(), n)
		}
	}
}

func TestKarpSipserSeedsAllValid(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomBipartite(rng, 30, 30, 120)
	for seed := int64(0); seed < 5; seed++ {
		m := KarpSipser(a, seed)
		if err := m.Validate(a); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !m.IsMaximal(a) {
			t.Fatalf("seed %d: not maximal", seed)
		}
	}
}

func BenchmarkMaximalInitializers(b *testing.B) {
	a := rmat.MustGenerate(rmat.G500, 13, 8, 5)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Greedy(a)
		}
	})
	b.Run("karp-sipser", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KarpSipser(a, int64(i))
		}
	})
	b.Run("dynmindegree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DynMinDegree(a)
		}
	})
}

func BenchmarkMCMAlgorithms(b *testing.B) {
	a := rmat.MustGenerate(rmat.G500, 13, 8, 5)
	for name, algo := range mcmAlgos() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo(a, nil)
			}
		})
	}
}

// TestQuickAllAlgorithmsAgree is the property-based heart of the package:
// for arbitrary random graphs, every MCM algorithm (with and without every
// initializer) agrees with Hopcroft-Karp and every result is certified
// structurally valid.
func TestQuickAllAlgorithmsAgree(t *testing.T) {
	f := func(nr, nc uint8, seed int64) bool {
		rows, cols := int(nr%40)+1, int(nc%40)+1
		rng := rand.New(rand.NewSource(seed))
		a := randomBipartite(rng, rows, cols, rng.Intn(4*(rows+cols)))
		want := HopcroftKarp(a, nil).Cardinality()
		for _, algo := range mcmAlgos() {
			m := algo(a, nil)
			if m.Validate(a) != nil || m.Cardinality() != want {
				return false
			}
		}
		for _, init := range maximalAlgos() {
			im := init(a)
			if im.Validate(a) != nil || !im.IsMaximal(a) {
				return false
			}
			if MSBFS(a, im).Cardinality() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSymmetricDifferenceInvariant: augmenting a matching along one
// augmenting path raises cardinality by exactly one — checked by comparing
// the sequence of cardinalities PothenFan reaches pass by pass against the
// size deltas (indirect, via monotonicity plus final agreement).
func TestMonotoneImprovement(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randomBipartite(rng, 60, 60, 200)
	prev := 0
	for _, init := range maximalAlgos() {
		m := init(a)
		if c := m.Cardinality(); c < prev/2 {
			t.Fatalf("wild cardinality swings between heuristics")
		} else {
			prev = c
		}
		full := HopcroftKarp(a, m)
		if full.Cardinality() < m.Cardinality() {
			t.Fatal("HK lost cardinality from warm start")
		}
	}
}

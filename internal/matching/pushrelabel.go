package matching

import (
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// PushRelabel computes a maximum cardinality matching with the push–relabel
// method, the other major MCM family the paper discusses (Section II-A; the
// distributed push-relabel attempt of Langguth et al. is the paper's
// closest prior work). This is the bipartite specialization: each unmatched
// column carries one unit of excess; a push matches the column to its
// minimum-label neighbor row (evicting that row's previous column back to
// excess, the "double push"), and the row's label rises by 2, so the FIFO
// loop terminates.
//
// Two standard engineering measures keep it fast and sound on structurally
// deficient inputs, where labels would otherwise churn up to O(n):
//
//   - when a column's minimum neighbor label reaches a small limit, a
//     global "hopelessness sweep" (one reverse alternating BFS from the
//     unmatched rows, O(m)) retires every column that provably has no
//     augmenting path — the role the gap heuristic plays in max-flow
//     push-relabel;
//   - a column that hits the limit but is *not* hopeless gets its
//     augmenting path applied directly by one explicit BFS, guaranteeing
//     progress and overall soundness regardless of label dynamics.
//
// init (optional) is not modified.
func PushRelabel(a *spmat.CSC, init *Matching) *Matching {
	m := cloneOrEmpty(a, init)
	n1, n2 := a.NRows, a.NCols
	if n1 == 0 || n2 == 0 {
		return m
	}
	at := a.Transpose()

	psi := make([]int, n1) // row labels; rise by 2 per push received

	queue := make([]int, 0, n2)
	inQueue := make([]bool, n2)
	for j := 0; j < n2; j++ {
		if m.MateC[j] == semiring.None && a.ColDegree(j) > 0 {
			queue = append(queue, j)
			inQueue[j] = true
		}
	}

	// A low limit bounds label churn; correctness never depends on it.
	limit := 64
	retired := make([]bool, n2)
	sweepStale := true // matching changed since the last hopelessness sweep

	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		inQueue[j] = false
		if m.MateC[j] != semiring.None || retired[j] {
			continue
		}
		best, bestPsi := -1, int(^uint(0)>>1)
		for _, i := range a.Col(j) {
			if psi[i] < bestPsi {
				best, bestPsi = i, psi[i]
			}
		}
		if best < 0 {
			continue // isolated
		}
		if bestPsi >= limit {
			if sweepStale {
				retireHopeless(a, at, m, retired)
				sweepStale = false
			}
			if retired[j] {
				continue
			}
			// Not hopeless: an augmenting path exists; apply it directly.
			if augmentFromColumn(a, m, j) {
				sweepStale = true
			} else {
				retired[j] = true // defensive; unreachable for a fresh sweep
			}
			continue
		}
		prev := m.MateR[best]
		m.Match(best, j)
		sweepStale = true
		psi[best] = bestPsi + 2
		if prev != semiring.None {
			pj := int(prev)
			m.MateC[pj] = semiring.None
			if !inQueue[pj] {
				queue = append(queue, pj)
				inQueue[pj] = true
			}
		}
	}
	return m
}

// retireHopeless marks every column with no augmenting path under the
// current matching: a column can be augmented iff it is reachable by the
// reverse alternating BFS from the unmatched rows (row -> column along any
// free edge, column -> its mate row). One O(m) sweep; retirement is
// permanent because augmenting paths never reappear once gone.
func retireHopeless(a, at *spmat.CSC, m *Matching, retired []bool) {
	canAugment := make([]bool, a.NCols)
	visitedR := make([]bool, a.NRows)
	var queueR []int
	for i := 0; i < a.NRows; i++ {
		if m.MateR[i] == semiring.None {
			visitedR[i] = true
			queueR = append(queueR, i)
		}
	}
	for len(queueR) > 0 {
		r := queueR[len(queueR)-1]
		queueR = queueR[:len(queueR)-1]
		for _, c := range at.Col(r) {
			if canAugment[c] {
				continue
			}
			canAugment[c] = true
			if mi := m.MateC[c]; mi != semiring.None && !visitedR[mi] {
				visitedR[mi] = true
				queueR = append(queueR, int(mi))
			}
		}
	}
	for j := range retired {
		if !canAugment[j] && m.MateC[j] == semiring.None {
			retired[j] = true
		}
	}
}

// augmentFromColumn runs one alternating BFS from unmatched column j and
// augments along a discovered path, reporting success. O(m).
func augmentFromColumn(a *spmat.CSC, m *Matching, j int) bool {
	if m.MateC[j] != semiring.None {
		return false
	}
	parent := make(map[int]int) // row -> column that discovered it
	frontier := []int{j}
	endRow := -1
	for len(frontier) > 0 && endRow < 0 {
		var next []int
		for _, c := range frontier {
			for _, r := range a.Col(c) {
				if _, seen := parent[r]; seen {
					continue
				}
				parent[r] = c
				if m.MateR[r] == semiring.None {
					endRow = r
					break
				}
				next = append(next, int(m.MateR[r]))
			}
			if endRow >= 0 {
				break
			}
		}
		frontier = next
	}
	if endRow < 0 {
		return false
	}
	r := endRow
	for {
		c := parent[r]
		prev := m.MateC[c]
		m.Match(r, c)
		if prev == semiring.None {
			return true
		}
		r = int(prev)
	}
}

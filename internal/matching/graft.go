package matching

import (
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// MSBFSGraft computes a maximum cardinality matching with the tree-grafting
// variant of multi-source BFS [Azad, Buluç, Pothen], the paper's
// shared-memory comparator (Section VI-E) and declared future work for the
// distributed algorithm. The key idea: after a phase augments some trees,
// only the vertices of those (now dead) trees are released; the alternating
// structure of the surviving "active" trees is still valid, so the next
// phase resumes from their frontiers instead of re-traversing the graph from
// scratch. Released rows are grafted onto active trees when rediscovered.
//
// Rendition note: when a grafted phase discovers no augmenting path, this
// implementation falls back to one full-reset MS-BFS phase before declaring
// the matching maximum. The fallback keeps the termination condition
// identical to Algorithm 1's ("no augmenting path in a fresh sweep") while
// preserving the traversal savings of grafting in the common case.
func MSBFSGraft(a *spmat.CSC, init *Matching) *Matching {
	m := cloneOrEmpty(a, init)
	n1, n2 := a.NRows, a.NCols

	parentR := make([]int64, n1)
	rootR := make([]int64, n1)
	rootC := make([]int64, n2) // tree owning each column, None if free
	pathEnd := make([]int64, n2)

	resetAll := func() {
		for i := range parentR {
			parentR[i] = semiring.None
			rootR[i] = semiring.None
		}
		for j := range rootC {
			rootC[j] = semiring.None
		}
	}
	resetAll()

	// releaseTrees frees every vertex owned by a root in dead, so later
	// phases can graft them onto surviving trees.
	releaseTrees := func(dead map[int64]bool) {
		for i := 0; i < n1; i++ {
			if rootR[i] != semiring.None && dead[rootR[i]] {
				parentR[i] = semiring.None
				rootR[i] = semiring.None
			}
		}
		for j := 0; j < n2; j++ {
			if rootC[j] != semiring.None && dead[rootC[j]] {
				rootC[j] = semiring.None
			}
		}
	}

	// phase runs one level-synchronous sweep starting from the given column
	// frontier, honoring existing tree ownership, and augments what it
	// finds. It returns the number of augmentations.
	phase := func(frontier []int64) int {
		for j := range pathEnd {
			pathEnd[j] = semiring.None
		}
		dead := make(map[int64]bool)
		found := 0
		for len(frontier) > 0 {
			var next []int64
			for _, j := range frontier {
				root := rootC[j]
				if root == semiring.None || dead[root] {
					continue
				}
				for _, i := range a.Col(int(j)) {
					if rootR[i] != semiring.None {
						continue // owned by an active tree (possibly mine)
					}
					if dead[root] {
						break
					}
					parentR[i] = j
					rootR[i] = root
					if m.MateR[i] == semiring.None {
						pathEnd[root] = int64(i)
						dead[root] = true
						found++
					} else {
						mate := m.MateR[i]
						rootC[mate] = root
						next = append(next, mate)
					}
				}
			}
			frontier = frontier[:0]
			for _, j := range next {
				if !dead[rootC[j]] {
					frontier = append(frontier, j)
				}
			}
		}
		// Augment and release the dead trees.
		for root := 0; root < n2; root++ {
			if pathEnd[root] == semiring.None {
				continue
			}
			i := pathEnd[root]
			for {
				j := parentR[i]
				prevMate := m.MateC[j]
				m.Match(int(i), int(j))
				if prevMate == semiring.None {
					break
				}
				i = prevMate
			}
		}
		releaseTrees(dead)
		return found
	}

	freshFrontier := func() []int64 {
		var f []int64
		for j := 0; j < n2; j++ {
			if m.MateC[j] == semiring.None {
				rootC[j] = int64(j)
				f = append(f, int64(j))
			}
		}
		return f
	}

	for {
		// Grafted phase: new trees start at unmatched columns; rows released
		// from dead trees are up for grabs; active trees persist but their
		// frontiers were exhausted, so growth happens by grafting released
		// rows onto whichever tree reaches them first.
		if phase(freshFrontier()) > 0 {
			continue
		}
		// Nothing found with grafting: verify with one full-reset sweep.
		resetAll()
		if phase(freshFrontier()) == 0 {
			return m
		}
	}
}

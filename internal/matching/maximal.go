package matching

import (
	"math/rand"

	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// Greedy computes a maximal matching by scanning columns in index order and
// matching each to its first unmatched row neighbor. O(m).
func Greedy(a *spmat.CSC) *Matching {
	m := NewMatching(a.NRows, a.NCols)
	for j := 0; j < a.NCols; j++ {
		for _, i := range a.Col(j) {
			if m.MateR[i] == semiring.None {
				m.Match(i, j)
				break
			}
		}
	}
	return m
}

// KarpSipser computes a maximal matching with the Karp–Sipser heuristic:
// while any vertex has exactly one unmatched neighbor, that edge is forced
// (it is always safe); otherwise a random unmatched vertex is matched to a
// random unmatched neighbor. The degree-1 rule gives Karp–Sipser the highest
// approximation ratio of the three initializers on most inputs (Section
// VI-A). O(m) with lazy degree maintenance.
func KarpSipser(a *spmat.CSC, seed int64) *Matching {
	rng := rand.New(rand.NewSource(seed))
	at := a.Transpose()
	m := NewMatching(a.NRows, a.NCols)

	// Residual degrees: number of unmatched neighbors.
	degR := a.RowDegrees()
	degC := make([]int, a.NCols)
	for j := range degC {
		degC[j] = a.ColDegree(j)
	}

	// Queue of (side, vertex) candidates with residual degree 1. Entries can
	// be stale; they are re-checked when popped.
	type cand struct {
		isRow bool
		v     int
	}
	var queue []cand
	for i, d := range degR {
		if d == 1 {
			queue = append(queue, cand{isRow: true, v: i})
		}
	}
	for j, d := range degC {
		if d == 1 {
			queue = append(queue, cand{isRow: false, v: j})
		}
	}

	// matchPair matches (i, j) and updates residual degrees of the pair's
	// still-unmatched neighbors, enqueueing new degree-1 vertices.
	matchPair := func(i, j int) {
		m.Match(i, j)
		for _, jj := range at.Col(i) {
			if m.MateC[jj] == semiring.None {
				degC[jj]--
				if degC[jj] == 1 {
					queue = append(queue, cand{isRow: false, v: jj})
				}
			}
		}
		for _, ii := range a.Col(j) {
			if m.MateR[ii] == semiring.None {
				degR[ii]--
				if degR[ii] == 1 {
					queue = append(queue, cand{isRow: true, v: ii})
				}
			}
		}
	}

	// findFree returns an unmatched counterpart of v, or -1.
	findFreeRow := func(j int) int {
		for _, i := range a.Col(j) {
			if m.MateR[i] == semiring.None {
				return i
			}
		}
		return -1
	}
	findFreeCol := func(i int) int {
		for _, j := range at.Col(i) {
			if m.MateC[j] == semiring.None {
				return j
			}
		}
		return -1
	}

	// Random processing order for the non-degree-1 fallback.
	order := rng.Perm(a.NCols)
	oi := 0
	for {
		// Phase 1: drain forced degree-1 vertices.
		for len(queue) > 0 {
			c := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if c.isRow {
				if m.MateR[c.v] != semiring.None || degR[c.v] != 1 {
					continue
				}
				if j := findFreeCol(c.v); j >= 0 {
					matchPair(c.v, j)
				}
			} else {
				if m.MateC[c.v] != semiring.None || degC[c.v] != 1 {
					continue
				}
				if i := findFreeRow(c.v); i >= 0 {
					matchPair(i, c.v)
				}
			}
		}
		// Phase 2: match one random unmatched column, then return to the
		// degree-1 rule.
		progressed := false
		for oi < len(order) {
			j := order[oi]
			oi++
			if m.MateC[j] != semiring.None {
				continue
			}
			if i := findFreeRow(j); i >= 0 {
				matchPair(i, j)
				progressed = true
				break
			}
		}
		if !progressed {
			break
		}
	}
	return m
}

// DynMinDegree computes a maximal matching with the dynamic-mindegree
// heuristic the paper selects as its default initializer (Section VI-A):
// repeatedly match the unmatched column of minimum residual degree to its
// row neighbor of minimum residual degree. Bucket queues give O(m) total.
func DynMinDegree(a *spmat.CSC) *Matching {
	at := a.Transpose()
	m := NewMatching(a.NRows, a.NCols)

	degR := a.RowDegrees()
	degC := make([]int, a.NCols)
	maxDeg := 1
	for j := range degC {
		degC[j] = a.ColDegree(j)
		if degC[j] > maxDeg {
			maxDeg = degC[j]
		}
	}

	// buckets[d] holds columns whose residual degree was d when enqueued
	// (entries go stale; re-checked on pop).
	buckets := make([][]int, maxDeg+1)
	for j, d := range degC {
		if d > 0 {
			buckets[d] = append(buckets[d], j)
		}
	}

	decC := func(j int) {
		if m.MateC[j] != semiring.None {
			return
		}
		degC[j]--
		if degC[j] > 0 {
			buckets[degC[j]] = append(buckets[degC[j]], j)
		}
	}

	for d := 1; d <= maxDeg; d++ {
		for len(buckets[d]) > 0 {
			j := buckets[d][len(buckets[d])-1]
			buckets[d] = buckets[d][:len(buckets[d])-1]
			if m.MateC[j] != semiring.None || degC[j] != d {
				continue // stale entry
			}
			// Min-residual-degree unmatched row neighbor.
			best, bestDeg := -1, int(^uint(0)>>1)
			for _, i := range a.Col(j) {
				if m.MateR[i] == semiring.None && degR[i] < bestDeg {
					best, bestDeg = i, degR[i]
				}
			}
			if best < 0 {
				continue
			}
			m.Match(best, j)
			for _, jj := range at.Col(best) {
				decC(jj)
			}
			for _, ii := range a.Col(j) {
				if m.MateR[ii] == semiring.None {
					degR[ii]--
				}
			}
			// Matching can create columns with degree < d; restart from 1.
			if d > 1 {
				d = 0 // loop increment brings it back to 1
				break
			}
		}
	}
	// Safety sweep: the bucket restart logic above could in principle leave
	// a matchable column behind; greedy-finish guarantees maximality.
	for j := 0; j < a.NCols; j++ {
		if m.MateC[j] != semiring.None {
			continue
		}
		for _, i := range a.Col(j) {
			if m.MateR[i] == semiring.None {
				m.Match(i, j)
				break
			}
		}
	}
	return m
}

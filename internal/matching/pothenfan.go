package matching

import (
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// PothenFan computes a maximum cardinality matching with the Pothen–Fan
// algorithm (Section II-A): repeated passes of multi-source depth-first
// searches with lookahead. Each pass runs one DFS from every unmatched
// column; row vertices visited in a pass are never revisited within it, so
// the paths found in a pass are vertex-disjoint. The lookahead pointer scans
// each column's adjacency list at most once per pass for an unmatched row,
// which is the optimization that makes the algorithm fast in practice. init
// (optional) is not modified.
func PothenFan(a *spmat.CSC, init *Matching) *Matching {
	m := cloneOrEmpty(a, init)
	n1, n2 := a.NRows, a.NCols

	visitedR := make([]int, n1)  // pass number when row was last visited
	lookahead := make([]int, n2) // per-column scan position for lookahead
	iter := make([]int, n2)      // per-column scan position for DFS descent
	colStack := make([]int, 0, n2)
	rowTrail := make([]int, 0, n2) // row chosen at each stack level
	pass := 0

	for {
		pass++
		for j := range lookahead {
			lookahead[j] = 0
			iter[j] = 0
		}
		augmented := 0

		for j0 := 0; j0 < n2; j0++ {
			if m.MateC[j0] != semiring.None {
				continue
			}
			// Iterative DFS from unmatched column j0 along alternating paths.
			colStack = colStack[:0]
			rowTrail = rowTrail[:0]
			colStack = append(colStack, j0)
			found := false
			for len(colStack) > 0 && !found {
				j := colStack[len(colStack)-1]
				col := a.Col(j)
				// Lookahead: is any neighbor of j unmatched?
				for lookahead[j] < len(col) {
					i := col[lookahead[j]]
					lookahead[j]++
					if m.MateR[i] == semiring.None && visitedR[i] != pass {
						visitedR[i] = pass
						rowTrail = append(rowTrail, i)
						found = true
						break
					}
				}
				if found {
					break
				}
				// Descend: advance to the next unvisited matched row.
				descended := false
				for iter[j] < len(col) {
					i := col[iter[j]]
					iter[j]++
					if visitedR[i] == pass || m.MateR[i] == semiring.None {
						continue
					}
					visitedR[i] = pass
					rowTrail = append(rowTrail, i)
					colStack = append(colStack, int(m.MateR[i]))
					descended = true
					break
				}
				if !descended {
					// Backtrack.
					colStack = colStack[:len(colStack)-1]
					if len(rowTrail) > 0 {
						rowTrail = rowTrail[:len(rowTrail)-1]
					}
				}
			}
			if found {
				// colStack[k] -- rowTrail[k] are the path edges to flip.
				for k := len(colStack) - 1; k >= 0; k-- {
					m.Match(rowTrail[k], colStack[k])
				}
				augmented++
			}
		}
		if augmented == 0 {
			return m
		}
	}
}

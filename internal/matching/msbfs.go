package matching

import (
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// MSBFS computes a maximum cardinality matching with the serial form of the
// paper's Algorithm 1: level-synchronous multi-source BFS phases that grow
// vertex-disjoint alternating trees from every unmatched column at once,
// collect at most one augmenting path per tree, and augment them all. This
// is the algorithm MCM-DIST parallelizes; the serial version doubles as a
// readable specification and a differential-testing partner. init
// (optional) is not modified.
func MSBFS(a *spmat.CSC, init *Matching) *Matching {
	m := cloneOrEmpty(a, init)
	n1, n2 := a.NRows, a.NCols

	parentR := make([]int64, n1) // parent column of each visited row, per phase
	rootR := make([]int64, n1)   // tree root of each visited row, per phase
	pathEnd := make([]int64, n2) // root column -> unmatched row ending its augmenting path

	for {
		for i := range parentR {
			parentR[i] = semiring.None
			rootR[i] = semiring.None
		}
		for j := range pathEnd {
			pathEnd[j] = semiring.None
		}
		// Initial frontier: every unmatched column, its own root.
		frontier := make([]int64, 0, n2)
		for j := 0; j < n2; j++ {
			if m.MateC[j] == semiring.None {
				frontier = append(frontier, int64(j))
			}
		}
		rootC := make(map[int64]int64, len(frontier))
		for _, j := range frontier {
			rootC[j] = j
		}
		deadTree := make(map[int64]bool) // roots whose tree found a path this phase

		found := 0
		for len(frontier) > 0 {
			next := frontier[:0:0]
			nextRoots := make(map[int64]int64)
			for _, j := range frontier {
				root := rootC[j]
				if deadTree[root] {
					continue // pruned: its tree already has a path
				}
				for _, i := range a.Col(int(j)) {
					if parentR[i] != semiring.None {
						continue // visited this phase
					}
					if deadTree[root] {
						break
					}
					parentR[i] = j
					rootR[i] = root
					if m.MateR[i] == semiring.None {
						// Augmenting path discovered: record its end row and
						// kill the tree.
						pathEnd[root] = int64(i)
						deadTree[root] = true
						found++
					} else {
						mate := m.MateR[i]
						next = append(next, mate)
						nextRoots[mate] = root
					}
				}
			}
			// Drop pruned trees' columns from the next frontier.
			frontier = frontier[:0]
			for _, j := range next {
				if !deadTree[nextRoots[j]] {
					frontier = append(frontier, j)
					rootC[j] = nextRoots[j]
				}
			}
		}
		if found == 0 {
			return m
		}
		// Augment along each recorded path by walking parent/mate chains.
		for root := 0; root < n2; root++ {
			if pathEnd[root] == semiring.None {
				continue
			}
			i := pathEnd[root]
			for {
				j := parentR[i]
				prevMate := m.MateC[j]
				m.Match(int(i), int(j))
				if prevMate == semiring.None {
					break // reached the root column
				}
				i = prevMate
			}
		}
	}
}

package matching

import (
	"mcmdist/internal/semiring"
	"mcmdist/internal/spmat"
)

// HopcroftKarp computes a maximum cardinality matching in O(m*sqrt(n)) by
// alternating BFS layering and layered DFS augmentation (Section II-A). It
// serves as this repository's correctness oracle. init (optional) is a
// matching to start from; it is not modified.
func HopcroftKarp(a *spmat.CSC, init *Matching) *Matching {
	m := cloneOrEmpty(a, init)
	n2 := a.NCols

	const inf = int(^uint(0) >> 1)
	distC := make([]int, n2)
	queue := make([]int, 0, n2)

	// bfs layers unmatched columns at distance 0 and alternates
	// column -> row (free edge) -> column (matched edge); it reports whether
	// any unmatched row is reachable.
	bfs := func() bool {
		queue = queue[:0]
		for j := 0; j < n2; j++ {
			if m.MateC[j] == semiring.None {
				distC[j] = 0
				queue = append(queue, j)
			} else {
				distC[j] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			for _, i := range a.Col(j) {
				mj := m.MateR[i]
				if mj == semiring.None {
					found = true
					continue
				}
				if distC[mj] == inf {
					distC[mj] = distC[j] + 1
					queue = append(queue, int(mj))
				}
			}
		}
		return found
	}

	// dfs searches for a vertex-disjoint augmenting path from column j along
	// the BFS layering, flipping it on success.
	var dfs func(j int) bool
	dfs = func(j int) bool {
		for _, i := range a.Col(j) {
			mj := m.MateR[i]
			if mj == semiring.None {
				m.Match(i, j)
				return true
			}
			if distC[mj] == distC[j]+1 && dfs(int(mj)) {
				m.Match(i, j)
				return true
			}
		}
		distC[j] = inf // dead end: exclude from this phase
		return false
	}

	for bfs() {
		for j := 0; j < n2; j++ {
			if m.MateC[j] == semiring.None {
				dfs(j)
			}
		}
	}
	return m
}

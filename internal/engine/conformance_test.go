package engine

// The engine conformance suite: every engine registered in this binary must
// produce a valid MAXIMUM matching on both transports at every thread count,
// survive the fault plans under checkpoint/restart (in-process only — the
// retry driver cannot restart OS processes, see docs/TRANSPORT.md), and the
// BFS engines must stay bit-identical to the legacy Config entry points they
// replaced.

import (
	"fmt"
	"strings"
	"testing"

	"mcmdist/internal/core"
	"mcmdist/internal/matching"
	"mcmdist/internal/mpi"
	_ "mcmdist/internal/mpi/tcpnet" // register the "tcp" backend
	"mcmdist/internal/rmat"
	"mcmdist/internal/spmat"
	"mcmdist/internal/verify"
)

func mustMaximum(t *testing.T, a *spmat.CSC, m *matching.Matching, label string) {
	t.Helper()
	if err := verify.Valid(a, m); err != nil {
		t.Fatalf("%s: invalid matching: %v", label, err)
	}
	if err := verify.Maximum(a, m); err != nil {
		t.Fatalf("%s: not maximum: %v", label, err)
	}
}

// TestEngineConformance sweeps every registered engine over both transports
// and threads 1..4 on one RMAT instance. The in-process result is the oracle
// for the tcp run of the same configuration, which must match bit-for-bit —
// mate vectors and the per-rank meter ledgers.
func TestEngineConformance(t *testing.T) {
	a := rmat.MustGenerate(rmat.G500, 6, 4, 21)
	for _, name := range Names() {
		for threads := 1; threads <= 4; threads++ {
			t.Run(fmt.Sprintf("%s/t%d", name, threads), func(t *testing.T) {
				cfg := core.Config{Engine: name, Procs: 4, Threads: threads, Seed: 5}
				oracle, err := core.Solve(a, cfg)
				if err != nil {
					t.Fatalf("inproc solve: %v", err)
				}
				mustMaximum(t, a, oracle.Matching, "inproc")
				if oracle.Stats.Engine != name {
					t.Fatalf("Stats.Engine = %q, want %q", oracle.Stats.Engine, name)
				}

				eps, err := mpi.NewTransportSet("tcp", cfg.Procs)
				if err != nil {
					t.Fatalf("building tcp endpoints: %v", err)
				}
				results, err := core.SolveEndpoints(eps, a, cfg)
				if cerr := mpi.CloseAll(eps); cerr != nil {
					t.Errorf("closing endpoints: %v", cerr)
				}
				if err != nil {
					t.Fatalf("tcp solve: %v", err)
				}
				for i, res := range results {
					if want, got := fmt.Sprint(oracle.Matching.MateR), fmt.Sprint(res.Matching.MateR); want != got {
						t.Errorf("endpoint %d MateR diverges:\n  inproc: %s\n  tcp:    %s", i, want, got)
					}
					if want, got := fmt.Sprint(oracle.Matching.MateC), fmt.Sprint(res.Matching.MateC); want != got {
						t.Errorf("endpoint %d MateC diverges", i)
					}
					r := eps[i].LocalRanks()[0]
					if want, got := oracle.PerRank[r], res.PerRank[r]; want != got {
						t.Errorf("rank %d meter: inproc %+v, tcp %+v", r, want, got)
					}
				}
			})
		}
	}
}

// TestEngineConformanceUnderFaults runs every engine under every fault plan
// with checkpoint/restart and requires a maximum matching after recovery.
func TestEngineConformanceUnderFaults(t *testing.T) {
	a := rmat.MustGenerate(rmat.ER, 6, 4, 9)
	plans := map[string]func() *mpi.FaultPlan{
		"crash": func() *mpi.FaultPlan {
			return &mpi.FaultPlan{CrashRank: 1, CrashAtCollective: 25}
		},
		"crash-late": func() *mpi.FaultPlan {
			return &mpi.FaultPlan{CrashRank: 3, CrashAtCollective: 60}
		},
	}
	for _, name := range Names() {
		for pname, plan := range plans {
			t.Run(name+"/"+pname, func(t *testing.T) {
				cfg := core.Config{
					Engine: name, Procs: 4, Seed: 7,
					CheckpointEvery: 1, OnCheckpoint: func(*core.Checkpoint) {},
					Fault: plan(),
				}
				res, rec, err := core.SolveRecoverable(a, cfg, core.RecoveryPolicy{})
				if err != nil {
					t.Fatalf("recoverable solve: %v", err)
				}
				if rec.Attempts < 2 {
					t.Fatalf("fault plan never fired: %+v", rec)
				}
				mustMaximum(t, a, res.Matching, "recovered")
			})
		}
	}
}

// TestBFSEnginesBitIdenticalToLegacyConfig pins the seam refactor: routing a
// solve through Config.Engine must reproduce the legacy boolean-knob entry
// points bit for bit — mate vectors, cardinality and iteration counts.
func TestBFSEnginesBitIdenticalToLegacyConfig(t *testing.T) {
	a := rmat.MustGenerate(rmat.G500, 7, 4, 3)
	for _, tc := range []struct {
		name    string
		legacy  core.Config
		engined core.Config
	}{
		{"bfs", core.Config{Procs: 4, Seed: 2}, core.Config{Engine: core.EngineBFS, Procs: 4, Seed: 2}},
		{"bfs-do", core.Config{Procs: 4, DirectionOptimized: true, Seed: 2},
			core.Config{Engine: core.EngineBFS, Procs: 4, DirectionOptimized: true, Seed: 2}},
		{"bfs-graft", core.Config{Procs: 4, TreeGrafting: true, Seed: 2},
			core.Config{Engine: core.EngineBFSGraft, Procs: 4, Seed: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := core.Solve(a, tc.legacy)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.Solve(a, tc.engined)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(want.Matching.MateR) != fmt.Sprint(got.Matching.MateR) ||
				fmt.Sprint(want.Matching.MateC) != fmt.Sprint(got.Matching.MateC) {
				t.Fatal("engine route diverges from legacy route")
			}
			if want.Stats.Iterations != got.Stats.Iterations || want.Stats.Phases != got.Stats.Phases {
				t.Fatalf("trajectory diverges: legacy %d/%d iters/phases, engine %d/%d",
					want.Stats.Iterations, want.Stats.Phases, got.Stats.Iterations, got.Stats.Phases)
			}
		})
	}
}

// TestCrossEngineResumeRefused takes a checkpoint under bfs and asserts the
// auction engine refuses to resume from it (and vice versa).
func TestCrossEngineResumeRefused(t *testing.T) {
	a := rmat.MustGenerate(rmat.G500, 6, 4, 11)
	var cks []*core.Checkpoint
	cfg := core.Config{Engine: core.EngineBFS, Procs: 4, Seed: 1,
		CheckpointEvery: 1, OnCheckpoint: func(ck *core.Checkpoint) { cks = append(cks, ck) }}
	if _, err := core.Solve(a, cfg); err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 {
		t.Fatal("no checkpoints taken")
	}
	_, err := core.Solve(a, core.Config{Engine: core.EngineAuction, Procs: 4, Seed: 1, Resume: cks[len(cks)-1]})
	if err == nil || !strings.Contains(err.Error(), "refusing cross-engine resume") {
		t.Fatalf("cross-engine resume not refused: %v", err)
	}
}

// TestAutoEngineResolvesAndSolves pins the online selection path: "auto"
// must resolve to some registered engine and still produce a maximum
// matching, with Stats.Engine reporting the concrete choice.
func TestAutoEngineResolvesAndSolves(t *testing.T) {
	a := rmat.MustGenerate(rmat.G500, 6, 4, 13)
	res, err := core.Solve(a, core.Config{Engine: core.EngineAuto, Procs: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mustMaximum(t, a, res.Matching, "auto")
	found := false
	for _, n := range Names() {
		if res.Stats.Engine == n {
			found = true
		}
	}
	if !found {
		t.Fatalf("Stats.Engine = %q, not a registered engine %v", res.Stats.Engine, Names())
	}
}

// TestFacade covers the registry façade: the canonical names are present,
// aliases parse, and capability flags are visible.
func TestFacade(t *testing.T) {
	names := Names()
	for _, want := range []string{core.EngineBFS, core.EngineBFSSingleSource, core.EngineBFSGraft, core.EngineAuction} {
		ok := false
		for _, n := range names {
			if n == want {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("engine %q not registered (have %v)", want, names)
		}
	}
	if got, err := Parse("graft"); err != nil || got != core.EngineBFSGraft {
		t.Fatalf("Parse(graft) = %q, %v", got, err)
	}
	if _, err := Parse("nope"); err == nil {
		t.Fatal("Parse accepted an unknown engine")
	}
	caps, ok := Caps(core.EngineAuction)
	if !ok || !caps.Checkpointable || caps.Augmenting {
		t.Fatalf("auction caps wrong: %+v ok=%v", caps, ok)
	}
	if _, ok := Caps("nope"); ok {
		t.Fatal("Caps found an unregistered engine")
	}
}

// Package engine hosts the matching engines that plug into core's Engine
// seam from outside the core package, plus a small façade over the registry
// for callers (cmd/bench, the session API) that want to enumerate or
// validate engines without reaching into core.
//
// Placement: the three MS-BFS engines live inside internal/core — their
// phase kernels are core's private SpMV/select/augment machinery and core's
// in-package tests drive them directly — while algorithm families that only
// need core's exported surface (the Solver fields, the Track/Checkpoint
// hooks, the mpi/dvec primitives) register themselves here. The auction
// engine is the first such plug-in. Importing this package (typically as a
// blank import) is what makes those engines available; see docs/ENGINES.md.
package engine

import "mcmdist/internal/core"

// Names returns every engine registered in this binary, sorted. With this
// package imported that is at least bfs, bfs-graft, bfs-ss and auction.
func Names() []string { return core.EngineNames() }

// Parse canonicalizes an engine spelling (accepting the deprecated aliases)
// without checking registration; see core.ParseEngine.
func Parse(s string) (string, error) { return core.ParseEngine(s) }

// Caps returns the capability flags of a registered engine.
func Caps(name string) (core.EngineCaps, bool) {
	e, ok := core.EngineByName(name)
	if !ok {
		return core.EngineCaps{}, false
	}
	return e.Caps(), true
}
